package meshlayer

// One benchmark per experiment in DESIGN.md's index. Benchmarks use
// shortened measurement windows so `go test -bench=.` finishes in
// minutes; cmd/meshbench runs the same experiments at paper scale.
// Custom metrics carry the quantities the paper reports (milliseconds
// and speedup ratios), so the bench output doubles as the reproduction
// record.

import (
	"testing"
	"time"

	"meshlayer/internal/admission"
)

// benchWindow is the shortened measured window used by benchmarks.
const benchWindow = 6 * time.Second

func msf(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// BenchmarkFig4 reproduces E1 (Fig. 4): LS latency vs RPS with and
// without cross-layer prioritization, at the sweep's endpoints.
func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points := RunSweep(SweepConfig{
			RPSLevels: []float64{10, 50},
			Opt:       PaperOptimizations(),
			Seed:      1,
			Warmup:    2 * time.Second,
			Measure:   benchWindow,
		})
		lo, hi := points[0], points[1]
		b.ReportMetric(msf(lo.Base.LS.P50), "rps10_base_p50_ms")
		b.ReportMetric(msf(lo.Opt.LS.P50), "rps10_opt_p50_ms")
		b.ReportMetric(msf(hi.Base.LS.P99), "rps50_base_p99_ms")
		b.ReportMetric(msf(hi.Opt.LS.P99), "rps50_opt_p99_ms")
		b.ReportMetric(float64(hi.Base.LS.P99)/float64(hi.Opt.LS.P99), "rps50_p99_speedup_x")
	}
}

// BenchmarkLICost reproduces E2: the latency-insensitive workload's
// p99 cost of prioritization at the top of the sweep.
func BenchmarkLICost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mixed := MixedConfig{RPS: 50, Seed: 1, Warmup: 2 * time.Second, Measure: benchWindow}
		base := RunMixedOnce(None(), mixed)
		opt := RunMixedOnce(PaperOptimizations(), mixed)
		b.ReportMetric(msf(base.LI.P99), "li_base_p99_ms")
		b.ReportMetric(msf(opt.LI.P99), "li_opt_p99_ms")
		b.ReportMetric(100*(float64(opt.LI.P99)/float64(base.LI.P99)-1), "li_p99_delta_pct")
	}
}

// BenchmarkSidecarOverhead reproduces E4: latency added by the two
// interposed sidecars on an unloaded call (§3.6).
func BenchmarkSidecarOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := RunSidecarOverhead(1000, 1)
		b.ReportMetric(msf(rows[0].P99), "noproxy_p99_ms")
		b.ReportMetric(msf(rows[1].P99), "sidecars_p99_ms")
		b.ReportMetric(msf(rows[1].OverheadP99), "added_p99_ms")
	}
}

// BenchmarkAblation reproduces E5: each optimization's contribution at
// 40 RPS per workload.
func BenchmarkAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := RunAblation(40, 1, MixedConfig{Warmup: 2 * time.Second, Measure: benchWindow})
		names := []string{"baseline", "routing", "routing_tc", "routing_tc_scav", "all"}
		for j, r := range rows {
			b.ReportMetric(msf(r.LSP99), names[j]+"_ls_p99_ms")
		}
	}
}

// BenchmarkScavenger reproduces E6: short-transfer FCT against a bulk
// flow per congestion controller.
func BenchmarkScavenger(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := RunScavenger(1)
		for _, r := range rows {
			b.ReportMetric(msf(r.LSP99), r.CC+"_ls_fct_p99_ms")
		}
	}
}

// BenchmarkAdaptiveLB reproduces E7: LB policies against a degraded
// replica.
func BenchmarkAdaptiveLB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := RunAdaptiveLB(50, 1)
		for _, r := range rows {
			b.ReportMetric(msf(r.P99), string(r.Policy)+"_p99_ms")
		}
	}
}

// BenchmarkRedundant reproduces E8: hedged requests against a
// heavy-tailed replica.
func BenchmarkRedundant(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := RunRedundant(30, 1)
		b.ReportMetric(msf(rows[0].P99), "nohedge_p99_ms")
		b.ReportMetric(msf(rows[1].P99), "hedge_p99_ms")
	}
}

// BenchmarkHopDepth reproduces E9: latency accumulation across chain
// depth (§3.6 "tens of hops").
func BenchmarkHopDepth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := RunHopDepth([]int{1, 8, 32}, 200, 1)
		b.ReportMetric(msf(rows[0].P50), "depth1_p50_ms")
		b.ReportMetric(msf(rows[1].P50), "depth8_p50_ms")
		b.ReportMetric(msf(rows[2].P50), "depth32_p50_ms")
	}
}

// BenchmarkBottleneckSweep runs E10: prioritization win vs bottleneck
// capacity (extension experiment).
func BenchmarkBottleneckSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := RunBottleneckSweep([]float64{0.5, 2}, 1, MixedConfig{Warmup: 2 * time.Second, Measure: benchWindow})
		b.ReportMetric(float64(rows[0].BaseP99)/float64(rows[0].OptP99), "tight_p99_speedup_x")
		b.ReportMetric(float64(rows[1].BaseP99)/float64(rows[1].OptP99), "loose_p99_speedup_x")
	}
}

// BenchmarkSkewSweep runs E11: prioritization win vs workload skew
// (extension experiment).
func BenchmarkSkewSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := RunSkewSweep([]float64{0.5, 4}, 1, MixedConfig{Warmup: 2 * time.Second, Measure: benchWindow})
		b.ReportMetric(float64(rows[0].BaseP99)/float64(rows[0].OptP99), "lowskew_p99_speedup_x")
		b.ReportMetric(float64(rows[1].BaseP99)/float64(rows[1].OptP99), "highskew_p99_speedup_x")
	}
}

// BenchmarkResilience runs E12: a replica partition masked (or not) by
// the mesh's retries and circuit breaking.
func BenchmarkResilience(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := RunResilience(30, 1)
		// rows: [0..2] without resilience, [3..5] with.
		b.ReportMetric(100*rows[1].ErrorRate, "norez_partition_err_pct")
		b.ReportMetric(100*rows[4].ErrorRate, "rez_partition_err_pct")
		b.ReportMetric(msf(rows[4].P99), "rez_partition_p99_ms")
	}
}

// BenchmarkQdiscComparison runs E13: AQM vs class-aware scheduling at
// the bottleneck.
func BenchmarkQdiscComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := RunQdiscComparison(40, 1, MixedConfig{Warmup: 2 * time.Second, Measure: benchWindow})
		names := []string{"fifo", "red", "codel", "nearstrict"}
		for j, r := range rows {
			b.ReportMetric(msf(r.LSP99), names[j]+"_ls_p99_ms")
		}
	}
}

// BenchmarkOverload runs E14 (extension): LS latency and goodput at 2x
// capacity with admission control on vs off.
func BenchmarkOverload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := RunOverload(1, 2*time.Second, benchWindow)
		// rows alternate (0.5x, 2.0x) per config: disabled, deadline
		// only, admission, admission+deadline.
		b.ReportMetric(msf(rows[1].LSP99), "disabled_2x_ls_p99_ms")
		b.ReportMetric(msf(rows[5].LSP99), "admission_2x_ls_p99_ms")
		b.ReportMetric(100*rows[5].LSGoodput, "admission_2x_ls_goodput_pct")
		b.ReportMetric(float64(rows[3].Cancelled), "deadline_2x_cancelled")
	}
}

// BenchmarkChaos reproduces E15: the e-library under the scripted
// chaos suite, undefended vs the full self-healing stack.
func BenchmarkChaos(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := RunChaos(1, 2*time.Second, benchWindow)
		// rows: fault-free, no defenses, retries+breaker, +hc+outlier,
		// +budgets+backoff.
		undefended, full := rows[1], rows[4]
		b.ReportMetric(msf(rows[0].LSP99), "faultfree_ls_p99_ms")
		b.ReportMetric(100*undefended.LSErrRate, "undefended_ls_err_pct")
		b.ReportMetric(msf(undefended.LSP99), "undefended_ls_p99_ms")
		b.ReportMetric(100*full.LSErrRate, "defended_ls_err_pct")
		b.ReportMetric(msf(full.LSP99), "defended_ls_p99_ms")
		b.ReportMetric(float64(rows[3].Retries), "unbudgeted_retries")
		b.ReportMetric(float64(full.Retries), "budgeted_retries")
	}
}

// BenchmarkZoneFail reproduces E17: correlated zone failures against
// the zone-aware failover and degradation ladder.
func BenchmarkZoneFail(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := RunZoneFail(1, 2*time.Second, benchWindow)
		// rows: fault-free, no defenses, strict locality, +failover,
		// +degradation.
		undefended, failover, degraded := rows[1], rows[3], rows[4]
		b.ReportMetric(msf(rows[0].LSP99), "faultfree_ls_p99_ms")
		b.ReportMetric(100*undefended.OutageAvail, "undefended_outage_avail_pct")
		b.ReportMetric(100*failover.OutageAvail, "failover_outage_avail_pct")
		b.ReportMetric(100*degraded.OutageAvail, "degraded_outage_avail_pct")
		b.ReportMetric(msf(degraded.LSP99), "degraded_ls_p99_ms")
		b.ReportMetric(100*degraded.DegradedFrac, "degraded_served_pct")
		b.ReportMetric(float64(degraded.CrossZone), "cross_zone_selections")
	}
}

// BenchmarkCtrlPlane reproduces E18: control-plane propagation under a
// deploy storm, instant propagation vs a short and a long debounce.
func BenchmarkCtrlPlane(b *testing.B) {
	for i := 0; i < b.N; i++ {
		instant := runCtrlPlaneOnce("instant", CtrlStormZones, false, 0, false, 1, 2*time.Second, benchWindow)
		fresh := runCtrlPlaneOnce("fresh", CtrlStormZones, true, 100*time.Millisecond, false, 1, 2*time.Second, benchWindow)
		stale := runCtrlPlaneOnce("stale", CtrlStormZones, true, 2*time.Second, false, 1, 2*time.Second, benchWindow)
		b.ReportMetric(100*instant.StormAvail, "instant_storm_avail_pct")
		b.ReportMetric(100*fresh.StormAvail, "debounce100ms_storm_avail_pct")
		b.ReportMetric(100*stale.StormAvail, "debounce2s_storm_avail_pct")
		b.ReportMetric(float64(fresh.DeltaPushes+fresh.FullPushes), "debounce100ms_pushes")
		b.ReportMetric(float64(stale.DeltaPushes+stale.FullPushes), "debounce2s_pushes")
		b.ReportMetric(msf(fresh.StaleP99), "debounce100ms_stale_p99_ms")
		b.ReportMetric(msf(stale.StaleP99), "debounce2s_stale_p99_ms")
		b.ReportMetric(float64(stale.MaxLag), "debounce2s_max_version_lag")
	}
}

// BenchmarkCtrlScale reproduces E21 at bench scale (1000 subscribers):
// a deploy storm with a mid-storm control-plane crash, undefended
// stampede vs the full defense ladder.
func BenchmarkCtrlScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := RunCtrlScale(1, 1000, time.Second, 12*time.Second)
		l0, l3 := rows[0], rows[3]
		recovered := -1.0 // DNF sentinel
		if l3.Recovered {
			recovered = msf(l3.RecoveredIn)
		}
		b.ReportMetric(float64(l0.Timeouts), "l0_push_timeouts")
		b.ReportMetric(float64(l0.ResyncBytes)/(1<<20), "l0_resync_mb")
		b.ReportMetric(float64(l0.PeakInflight), "l0_peak_inflight")
		b.ReportMetric(recovered, "l3_recovery_ms")
		b.ReportMetric(float64(l3.Timeouts), "l3_push_timeouts")
		b.ReportMetric(float64(l3.PeakInflight), "l3_peak_inflight")
		b.ReportMetric(float64(l3.PeakResyncs), "l3_peak_resyncs")
		b.ReportMetric(100*l3.TailAvail, "l3_tail_avail_pct")
	}
}

// BenchmarkFederation reproduces E19: region evacuation plus a WAN
// partition against the failover-ladder sweep.
func BenchmarkFederation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		flat := runFederationOnce("flat", "off", false, true, 1, 2*time.Second, benchWindow)
		region := runFederationOnce("region", "region", false, true, 1, 2*time.Second, benchWindow)
		full := runFederationOnce("full", "full", true, true, 1, 2*time.Second, benchWindow)
		b.ReportMetric(100*flat.EvacAvail, "flat_evac_avail_pct")
		b.ReportMetric(100*region.EvacAvail, "regiononly_evac_avail_pct")
		b.ReportMetric(100*full.EvacAvail, "ladder_evac_avail_pct")
		b.ReportMetric(100*full.PartAvail, "ladder_partition_avail_pct")
		b.ReportMetric(msf(full.LSP99), "ladder_ls_p99_ms")
		b.ReportMetric(float64(full.CrossRegion), "ladder_cross_region_selections")
		b.ReportMetric(float64(full.EastWest), "ladder_eastwest_hops")
		b.ReportMetric(msf(full.StaleP99), "ladder_stale_p99_ms")
	}
}

// BenchmarkAdmissionQueue microbenchmarks the admission queue's
// enqueue/shed hot path: a full queue absorbing LS arrivals by
// displacing queued LI requests, and the CoDel pop law draining a
// stale backlog.
func BenchmarkAdmissionQueue(b *testing.B) {
	b.Run("push_displace", func(b *testing.B) {
		q := admission.NewQueue(admission.QueueConfig{Limit: 256})
		noop := func() {}
		noopShed := func(admission.Reason) {}
		for i := 0; i < 256; i++ {
			q.Push(admission.Item{Class: admission.LI, Run: noop, Shed: noopShed}, 0)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Full queue: every LS push displaces the newest LI, and
			// the LI push refills it.
			q.Push(admission.Item{Class: admission.LS, Run: noop, Shed: noopShed}, 0)
			q.Push(admission.Item{Class: admission.LI, Run: noop, Shed: noopShed}, 0)
		}
	})
	b.Run("pop_shed_drain", func(b *testing.B) {
		noop := func() {}
		noopShed := func(admission.Reason) {}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			q := admission.NewQueue(admission.QueueConfig{Limit: 1024, Target: time.Millisecond, Interval: time.Millisecond})
			for j := 0; j < 512; j++ {
				q.Push(admission.Item{Class: admission.LI, Run: noop, Shed: noopShed}, 0)
			}
			b.StartTimer()
			// Stale backlog: the delay law sheds almost everything.
			now := 100 * time.Millisecond
			for {
				if _, ok := q.Pop(now); !ok {
					break
				}
				now += time.Microsecond
			}
		}
	})
}
