package meshlayer

import (
	"testing"
	"time"

	"meshlayer/internal/lint/leakcheck"
)

// withParallelism runs fn with MaxParallel forced to n, restoring the
// previous value afterwards.
func withParallelism(n int, fn func()) {
	old := MaxParallel
	MaxParallel = n
	defer func() { MaxParallel = old }()
	fn()
}

// TestParallelSweepDeterminism is the property the parallel sweeps are
// gated on: every run in a sweep is an independent simulation, so the
// rendered tables must be byte-identical whether the arms execute
// sequentially or on a worker pool.
func TestParallelSweepDeterminism(t *testing.T) {
	leakcheck.Check(t)
	cfg := SweepConfig{
		RPSLevels: []float64{15, 35},
		Opt:       PaperOptimizations(),
		Seed:      3,
		Warmup:    time.Second,
		Measure:   2 * time.Second,
	}
	var seq, par string
	withParallelism(1, func() { seq = FormatFig4(RunSweep(cfg)) })
	withParallelism(4, func() { par = FormatFig4(RunSweep(cfg)) })
	if seq != par {
		t.Fatalf("parallel sweep diverged from sequential:\n--- sequential ---\n%s--- parallel ---\n%s", seq, par)
	}
}

// TestParallelChaosDeterminism covers the heaviest multi-arm runner:
// the chaos ladder shares a scripted fault suite across five defense
// configurations, and its table (error rates, retry counters, TTR)
// must not depend on execution interleaving.
func TestParallelChaosDeterminism(t *testing.T) {
	leakcheck.Check(t)
	var seq, par string
	withParallelism(1, func() { seq = FormatChaos(RunChaos(7, time.Second, 2*time.Second)) })
	withParallelism(4, func() { par = FormatChaos(RunChaos(7, time.Second, 2*time.Second)) })
	if seq != par {
		t.Fatalf("parallel chaos run diverged from sequential:\n--- sequential ---\n%s--- parallel ---\n%s", seq, par)
	}
}
