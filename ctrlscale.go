package meshlayer

import (
	"fmt"
	"strings"
	"time"

	"meshlayer/internal/chaos"
	"meshlayer/internal/cluster"
	"meshlayer/internal/ctrlplane"
	"meshlayer/internal/httpsim"
	"meshlayer/internal/mesh"
	"meshlayer/internal/simnet"
	"meshlayer/internal/workload"
)

// ---------- E21: control-plane survivability at 10k subscribers ----------
//
// E21 is ROADMAP item 2 at the paper-scale rung: 10,000 worker
// sidecars subscribed to one distributing control plane, simulated
// under hybrid fidelity so the full-state resync pushes (hundreds of
// KB each, >= transport.FluidCutover) ride the PR 8 fluid fast path.
// The scenario is the one that kills real control planes: a rolling
// deploy storm across the whole fleet with a control-plane crash in
// the middle of it. While the control plane is down, sidecars route on
// their last-good snapshots (static stability) — availability must not
// collapse. When it recovers, every subscriber needs a full resync at
// once, and the defense ladder decides whether that storm converges or
// thrashes:
//
//	L0  fixed resync delay, unlimited fan-out — every desynced
//	    subscriber retries at the same instant, all sharing the CP
//	    egress link, so every transfer exceeds the push timeout and
//	    the stampede repeats forever;
//	L1  +exponential backoff with deterministic per-subscriber jitter
//	    (retries spread out; some waves partially succeed);
//	L2  +MaxInflightPushes backpressure (oldest-lag-first admission
//	    keeps each transfer fast enough to beat the timeout);
//	L3  +MaxConcurrentResyncs admission window (bounds concurrent
//	    full resyncs themselves; peak state is bounded too).
//
// The control-plane egress link is provisioned so a whole-fleet resync
// takes ~4 s of line rate — twice the push timeout. That ratio is the
// experiment's physics: an uncoordinated stampede divides the link
// 10k ways and nothing finishes; paced pushes finish two orders of
// magnitude faster than the timeout.

const (
	// CtrlScaleSubs is the default worker-sidecar count (meshbench
	// -subs overrides; the smoke runs 1000).
	CtrlScaleSubs = 10000
	// ctrlScalePodsPerShard is each worker service's replica count; the
	// shard count is subs/ctrlScalePodsPerShard.
	ctrlScalePodsPerShard = 20
	// ctrlScaleFrontends is the frontend replica count: the tier whose
	// snapshot staleness decides whether requests keep dialing killed
	// worker pods.
	ctrlScaleFrontends = 8
)

// CtrlScaleRow is one defense-ladder rung measured under the deploy
// storm + mid-storm control-plane crash.
type CtrlScaleRow struct {
	Config string
	Subs   int

	// Recovered reports whether every subscriber completed its
	// post-crash resync within the run; RecoveredIn is the time from
	// control-plane restart to full convergence.
	Recovered   bool
	RecoveredIn time.Duration

	// Avail is served/total over the whole measured window; StormAvail
	// over the deploy storm; TailAvail from the crash to the end of the
	// storm — the window where stale snapshots meet ongoing restarts.
	Avail, StormAvail, TailAvail float64
	// ReqP99 is the end-to-end request latency p99.
	ReqP99 time.Duration

	// Control-plane cost: pushes by kind, total wire bytes, push
	// timeouts, full resyncs and their bytes, config staleness p99, the
	// widest version gap, and the concurrency high-water marks.
	DeltaPushes, FullPushes   uint64
	WireBytes                 uint64
	Timeouts                  uint64
	Resyncs                   uint64
	ResyncBytes               uint64
	StaleP99                  time.Duration
	MaxLag                    uint64
	PeakInflight, PeakResyncs int
	Crashes                   uint64
}

// ctrlScaleDefense is one rung of the ladder.
type ctrlScaleDefense struct {
	name     string
	backoff  bool // exponential backoff + deterministic jitter
	inflight int  // MaxInflightPushes (0 = unlimited)
	resyncs  int  // MaxConcurrentResyncs (0 = unlimited)
}

// RunCtrlScale measures the defense ladder at the given fleet size.
// subs <= 0 selects the full 10k; warmup/measure <= 0 select 2s/30s.
func RunCtrlScale(seed int64, subs int, warmup, measure time.Duration) []CtrlScaleRow {
	if subs <= 0 {
		subs = CtrlScaleSubs
	}
	if warmup <= 0 {
		warmup = 2 * time.Second
	}
	if measure <= 0 {
		measure = 30 * time.Second
	}
	defenses := []ctrlScaleDefense{
		{name: "L0: none (fixed resync, unlimited fan-out)"},
		{name: "L1: +backoff+jitter", backoff: true},
		{name: "L2: +push backpressure (256 in flight)", backoff: true, inflight: 256},
		{name: "L3: +resync admission (64 slots)", backoff: true, inflight: 256, resyncs: 64},
	}
	out := make([]CtrlScaleRow, len(defenses))
	runIndexed(len(defenses), func(i int) {
		out[i] = runCtrlScaleOnce(defenses[i], subs, seed, warmup, measure)
	})
	return out
}

func runCtrlScaleOnce(def ctrlScaleDefense, subs int, seed int64, warmup, measure time.Duration) CtrlScaleRow {
	sched := simnet.NewScheduler()
	net := simnet.NewNetwork(sched)
	net.SetFidelity(simnet.FidelityHybrid)
	cl := cluster.New(net)

	shards := subs / ctrlScalePodsPerShard
	if shards < 1 {
		shards = 1
	}
	shardSvc := func(k int) string { return fmt.Sprintf("w%03d", k) }

	gwPod := cl.AddPod(cluster.PodSpec{Name: "gateway", Labels: map[string]string{"app": "gateway"}})
	m := mesh.New(cl, mesh.Config{Seed: seed})
	gw := m.NewGateway(gwPod)

	// Frontend tier: routes /s/<k> to worker shard w<k>. Its snapshots
	// are the ones that matter for availability — a frontend on a stale
	// endpoint list keeps dialing a killed worker.
	for i := 0; i < ctrlScaleFrontends; i++ {
		pod := cl.AddPod(cluster.PodSpec{
			Name:    fmt.Sprintf("frontend-%d", i),
			Labels:  map[string]string{"app": "frontend"},
			Workers: 8,
		})
		sc := m.InjectSidecar(pod)
		sc.RegisterApp(func(req *httpsim.Request, respond func(*httpsim.Response)) {
			target := "w" + strings.TrimPrefix(req.Path, "/s/")
			pod.Exec(time.Millisecond, func() {
				child := httpsim.NewRequest("GET", req.Path)
				child.Headers.Set(mesh.HeaderHost, target)
				sc.Call(child, func(resp *httpsim.Response, err error) {
					if err != nil {
						respond(httpsim.NewResponse(httpsim.StatusBadGateway))
						return
					}
					out := httpsim.NewResponse(resp.Status)
					out.BodyBytes = 512
					respond(out)
				})
			})
		})
	}
	cl.AddService("frontend", 9080, map[string]string{"app": "frontend"})

	// Worker fleet: shards of ctrlScalePodsPerShard replicas. Every
	// worker sidecar subscribes to the control plane — these are the
	// 10k subscribers.
	for k := 0; k < shards; k++ {
		svc := shardSvc(k)
		for i := 0; i < ctrlScalePodsPerShard; i++ {
			pod := cl.AddPod(cluster.PodSpec{
				Name:   fmt.Sprintf("%s-%d", svc, i),
				Labels: map[string]string{"app": svc},
			})
			sc := m.InjectSidecar(pod)
			sc.RegisterApp(func(_ *httpsim.Request, respond func(*httpsim.Response)) {
				pod.Exec(2*time.Millisecond, func() {
					out := httpsim.NewResponse(httpsim.StatusOK)
					out.BodyBytes = 2 << 10
					respond(out)
				})
			})
		}
		cl.AddService(svc, 9080, map[string]string{"app": svc})
	}

	// Single attempts with a bounded per-try timeout: a dial to a
	// killed pod is a visible failure, not a retried one — snapshot
	// staleness is exactly what availability measures (the E18 logic).
	cp := m.ControlPlane()
	cp.SetRetryPolicy("frontend", mesh.RetryPolicy{PerTryTimeout: time.Second})
	for k := 0; k < shards; k++ {
		cp.SetRetryPolicy(shardSvc(k), mesh.RetryPolicy{PerTryTimeout: 500 * time.Millisecond})
	}

	// Provision the control-plane egress so one whole-fleet full-state
	// resync takes ~4 s of line rate — 2x the push timeout. The ladder
	// decides whether that capacity is used or thrashed.
	nSubs := subs + ctrlScaleFrontends + 1
	fullBytes := 64 + // update header
		shards*(24+48+24*ctrlScalePodsPerShard+40) + // worker resources (+retry policy)
		(24 + 48 + 24*ctrlScaleFrontends + 40) // frontend resource
	cpRate := int64(fullBytes) * int64(nSubs) * 8 / 4
	if cpRate < simnet.Mbps {
		cpRate = simnet.Mbps
	}

	dc := mesh.DistributionConfig{
		Debounce:      200 * time.Millisecond,
		PushTimeout:   2 * time.Second,
		ResyncDelay:   500 * time.Millisecond,
		GateReadiness: true,
		Link:          simnet.LinkConfig{Rate: cpRate, Delay: 100 * time.Microsecond},
	}
	if def.backoff {
		dc.ResyncMax = 8 * time.Second
		dc.ResyncJitter = 1.0
	}
	dc.MaxInflightPushes = def.inflight
	dc.MaxConcurrentResyncs = def.resyncs
	cp.EnableDistribution(dc)

	// The deploy storm: replica 1 of every shard restarts once —
	// drained, killed, back, and re-subscribed (a fresh proxy process)
	// — staggered across the storm window. The control plane crashes a
	// quarter of the way in and recovers mid-storm, so the storm's tail
	// runs against a control plane that is busy resyncing the world.
	stormAt := warmup + measure/10
	stormLen := measure / 2
	crashAt := stormAt + stormLen/4
	outage := measure / 6
	recoverAt := crashAt + outage
	stormEnd := stormAt + stormLen
	downFor := time.Second
	stagger := stormLen / time.Duration(shards)
	events := make([]chaos.Event, 0, shards+1)
	for k := 0; k < shards; k++ {
		events = append(events, chaos.Event{
			At: stormAt + time.Duration(k)*stagger, Duration: downFor,
			Fault: chaos.Restart{Pod: shardSvc(k) + "-1", Grace: 200 * time.Millisecond, Resubscribe: true},
		})
	}
	events = append(events, chaos.Event{At: crashAt, Duration: outage, Fault: chaos.ControlPlaneCrash{}})
	eng := chaos.NewEngine(&chaos.Target{Sched: sched, Cluster: cl, Mesh: m})
	eng.Schedule(chaos.Scenario{Name: "e21-ctrl-crash", Events: events})

	// Convergence probe: after the control plane restarts, poll until
	// every subscriber has completed its resync.
	srv := cp.Distribution()
	recoveredAt := time.Duration(-1)
	horizon := warmup + measure
	var probe func()
	probe = func() {
		if srv.UnsyncedCount() == 0 {
			recoveredAt = sched.Now()
			return
		}
		if sched.Now() >= horizon {
			return
		}
		sched.After(100*time.Millisecond, probe)
	}
	sched.After(recoverAt+100*time.Millisecond, probe)

	rec := chaos.NewRecorder(measure / 40)
	reqN := 0
	g := workload.Start(sched, gw, workload.Spec{
		Name: "ctrlscale", Rate: 100, Seed: seed + 11,
		NewRequest: func() *httpsim.Request {
			k := reqN % shards
			reqN++
			r := httpsim.NewRequest("GET", fmt.Sprintf("/s/%03d", k))
			r.Headers.Set(mesh.HeaderHost, "frontend")
			return r
		},
		Warmup: warmup, Measure: measure, Cooldown: time.Second,
		OnComplete: rec.Observe,
	})
	sched.RunFor(warmup + measure + 3*time.Second)

	avail := func(from, to time.Duration) float64 {
		ok, fail := rec.Counts(from, to)
		if ok+fail == 0 {
			return 1
		}
		return float64(ok) / float64(ok+fail)
	}
	st := srv.Stats()
	row := CtrlScaleRow{
		Config:       def.name,
		Subs:         subs,
		Recovered:    recoveredAt >= 0,
		Avail:        avail(warmup, warmup+measure),
		StormAvail:   avail(stormAt, stormEnd),
		TailAvail:    avail(crashAt, stormEnd),
		ReqP99:       g.Results().P99(),
		DeltaPushes:  st.DeltaPushes,
		FullPushes:   st.FullPushes,
		WireBytes:    st.WireBytes,
		Timeouts:     st.Timeouts,
		Resyncs:      st.Resyncs,
		ResyncBytes:  st.ResyncBytes,
		MaxLag:       st.MaxLag,
		PeakInflight: st.PeakInflight,
		PeakResyncs:  st.PeakResyncs,
		Crashes:      st.Crashes,
		StaleP99: m.Metrics().
			Histogram(ctrlplane.MetricStalenessSeconds, nil).QuantileDuration(0.99),
	}
	if row.Recovered {
		row.RecoveredIn = recoveredAt - recoverAt
	}
	return row
}

// FormatCtrlScale renders the E21 table.
func FormatCtrlScale(rows []CtrlScaleRow) string {
	t := newTable("defense ladder", "recovery", "avail", "storm avail", "tail avail",
		"req p99", "pushes (Δ/full)", "resyncs", "resync MB", "timeouts",
		"peak infl", "peak rsync", "stale p99", "max lag")
	for _, r := range rows {
		recovery := "DNF"
		if r.Recovered {
			recovery = ms(r.RecoveredIn)
		}
		t.row(r.Config, recovery,
			fmt.Sprintf("%.2f%%", 100*r.Avail),
			fmt.Sprintf("%.2f%%", 100*r.StormAvail),
			fmt.Sprintf("%.2f%%", 100*r.TailAvail),
			ms(r.ReqP99),
			fmt.Sprintf("%d/%d", r.DeltaPushes, r.FullPushes),
			fmt.Sprint(r.Resyncs),
			fmt.Sprintf("%.1f", float64(r.ResyncBytes)/(1<<20)),
			fmt.Sprint(r.Timeouts),
			fmt.Sprint(r.PeakInflight),
			fmt.Sprint(r.PeakResyncs),
			ms(r.StaleP99),
			fmt.Sprint(r.MaxLag))
	}
	subs := 0
	if len(rows) > 0 {
		subs = rows[0].Subs
	}
	return fmt.Sprintf("E21 — control-plane crash + deploy storm at %d subscribers (hybrid fidelity, 100 RPS, mid-storm crash)\n", subs) +
		t.String()
}
