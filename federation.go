package meshlayer

import (
	"fmt"
	"strings"
	"time"

	"meshlayer/internal/app"
	"meshlayer/internal/chaos"
	"meshlayer/internal/ctrlplane"
	"meshlayer/internal/mesh"
)

// ---------- E19: multi-region federation under WAN-scale chaos ----------

// FederationRegions is the region count of the E19 topology: the zoned
// e-library replicated across this many regions (two zones each),
// joined by 25 ms WAN links between region spines.
const FederationRegions = 3

// FederationRow is one (ladder mode x fallback) configuration measured
// under the federation chaos suite.
type FederationRow struct {
	Config string
	// Ladder is the failover reach: "off" (the pre-federation flat mesh
	// with a global view), "region" (per-region control planes, no WAN
	// spillover), or "full" (the complete priority ladder riding the
	// east-west gateways).
	Ladder   string
	Fallback bool
	// Federated is true when per-region control planes distribute
	// region-scoped snapshots (false only for the flat-mesh arm).
	Federated bool

	LSP50, LSP99 time.Duration
	// Avail is served/total over the whole measured window; EvacAvail
	// the same over the region-a evacuation, PartAvail over the
	// region-b WAN partition. Degraded-but-served counts as served.
	Avail, EvacAvail, PartAvail float64
	// DegradedFrac is the fraction of served external responses
	// carrying the x-mesh-degraded provenance stamp.
	DegradedFrac float64
	CrossRegion  uint64
	EastWest     uint64
	Fallbacks    uint64
	// StaleP99 is the p99 config age at apply time across all regional
	// control planes (zero for the flat-mesh arm).
	StaleP99 time.Duration
	Faults   bool
}

// applyFederationDefenses configures one arm of the E19 sweep. Every
// arm gets the full E15 self-healing stack (retries with budgets,
// breakers, health checks, outlier detection) so the axis under test is
// failover reach, not generic resilience.
func applyFederationDefenses(cp *mesh.ControlPlane, ladder string, fallback bool) {
	applyChaosDefenses(cp, 3)
	services := []string{"frontend", "details", "reviews", "ratings"}
	switch ladder {
	case "region":
		for _, svc := range services {
			cp.SetLocalityPolicy(svc, mesh.LocalityPolicy{Mode: mesh.LocalityRegionOnly})
		}
	case "full":
		for _, svc := range services {
			cp.SetLocalityPolicy(svc, mesh.LocalityPolicy{
				Mode:                   mesh.LocalityLadder,
				OverprovisioningFactor: 1.4,
				PanicThreshold:         0.5,
			})
		}
	}
	if fallback {
		// As in E17: reviews serves its page without the ratings column
		// when ratings is unreachable.
		cp.SetFallbackPolicy("ratings", mesh.FallbackPolicy{
			Enabled: true, BodyBytes: 256, After: 400 * time.Millisecond,
		})
	}
}

// federationSuite scripts the WAN-scale sequence E19 replays against
// every arm: region-a (the ingress region) is evacuated — its pods
// drained one at a time across a quarter of the measured window, the
// edge gateway and regional infrastructure spared — and mid-evacuation
// the WAN around region-b partitions, leaving region-c as the only
// honestly reachable capacity while control planes route on frozen
// summaries of region-b. A gray SlowWAN failure brushes region-c's
// links during the partition, and near the end every ratings replica
// crashes at once — the dependency-wide loss only graceful degradation
// survives. Returns the scenario plus the evacuation and partition
// windows [from, to) for availability scoring.
func federationSuite(seed int64, warmup, measure time.Duration, zones []string) (chaos.Scenario, [4]time.Duration) {
	w, m := warmup, measure
	evacAt, evacFor := w+m/10, m/2
	partAt, partFor := w+m/4, m/5
	events := []chaos.Event{
		{At: evacAt, Duration: evacFor, Fault: &chaos.RegionEvacuate{
			Region: "region-a", Window: m / 4,
			Except: []string{
				"gateway",
				mesh.EWGatewayService("region-a"),
				mesh.CtrlPlanePod + "-region-a",
			},
		}},
		{At: partAt, Duration: partFor, Fault: chaos.WANPartition{Region: "region-b"}},
		{At: w + 3*m/10, Duration: m / 10, Fault: chaos.SlowWAN{
			Region: "region-c", Extra: 5 * time.Millisecond, Loss: 0.01, Seed: seed*3 + 7,
		}},
	}
	for _, z := range zones {
		events = append(events, chaos.Event{
			At: w + 8*m/10, Duration: m / 10,
			Fault: chaos.PodCrash{Pod: "ratings-" + strings.TrimPrefix(z, "zone-")},
		})
	}
	return chaos.Scenario{Name: "e19-suite", Events: events},
		[4]time.Duration{evacAt, evacAt + evacFor, partAt, partAt + partFor}
}

// RunFederation measures the three-region e-library under the
// federation chaos suite, sweeping failover reach {off, region-only,
// full ladder} x graceful degradation, plus a fault-free baseline.
func RunFederation(seed int64, warmup, measure time.Duration) []FederationRow {
	if warmup <= 0 {
		warmup = 2 * time.Second
	}
	if measure <= 0 {
		measure = 20 * time.Second
	}
	configs := []struct {
		name     string
		ladder   string
		fallback bool
		faults   bool
	}{
		{"fault-free baseline (full ladder)", "full", true, false},
		{"flat mesh (global view, zone-blind)", "off", false, true},
		{"flat mesh + degradation", "off", true, true},
		{"region-only isolation", "region", false, true},
		{"region-only + degradation", "region", true, true},
		{"failover ladder", "full", false, true},
		{"failover ladder + degradation", "full", true, true},
	}
	out := make([]FederationRow, len(configs))
	runIndexed(len(configs), func(i int) {
		c := configs[i]
		out[i] = runFederationOnce(c.name, c.ladder, c.fallback, c.faults, seed, warmup, measure)
	})
	return out
}

func runFederationOnce(name, ladder string, fallback, withFaults bool,
	seed int64, warmup, measure time.Duration) FederationRow {
	appCfg := app.DefaultELibraryConfig()
	appCfg.Regions = FederationRegions
	s := NewScenario(ScenarioConfig{Seed: seed, App: appCfg})
	e := s.App
	cp := e.Mesh.ControlPlane()
	applyFederationDefenses(cp, ladder, fallback)

	// The flat-mesh arm is the pre-federation deployment: one shared
	// control plane, instant global discovery, direct cross-region
	// dials. Every other arm runs per-region control planes with
	// config-sync-gated readiness, so restored capacity re-enters
	// routing only once its sidecar has resynced.
	federated := ladder != "off"
	if federated {
		cp.EnableDistribution(mesh.DistributionConfig{
			PerRegion:     true,
			Debounce:      100 * time.Millisecond,
			PushTimeout:   500 * time.Millisecond,
			ResyncDelay:   100 * time.Millisecond,
			GateReadiness: true,
		})
	}

	suite, win := federationSuite(seed, warmup, measure, e.Zones)
	if withFaults {
		eng := chaos.NewEngine(&chaos.Target{Sched: e.Sched, Cluster: e.Cluster, Mesh: e.Mesh})
		eng.Schedule(suite)
	}

	lsRec := chaos.NewRecorder(measure / 40)
	liRec := chaos.NewRecorder(measure / 40)
	r := s.RunMixed(MixedConfig{
		RPS: 30, Seed: seed, Warmup: warmup, Measure: measure,
		LSObserver: lsRec.Observe, LIObserver: liRec.Observe,
	})

	avail := func(from, to time.Duration) float64 {
		ok1, fail1 := lsRec.Counts(from, to)
		ok2, fail2 := liRec.Counts(from, to)
		total := ok1 + ok2 + fail1 + fail2
		if total == 0 {
			return 1
		}
		return float64(ok1+ok2) / float64(total)
	}
	served := r.LS.Count + r.LI.Count
	degraded := e.Mesh.Metrics().CounterTotal("gateway_degraded_total")
	degFrac := 0.0
	if served > 0 {
		degFrac = float64(degraded) / float64(served)
	}
	row := FederationRow{
		Config: name, Ladder: ladder, Fallback: fallback, Federated: federated,
		LSP50:        r.LS.P50,
		LSP99:        r.LS.P99,
		Avail:        avail(warmup, warmup+measure),
		EvacAvail:    avail(win[0], win[1]),
		PartAvail:    avail(win[2], win[3]),
		DegradedFrac: degFrac,
		CrossRegion:  e.Mesh.Metrics().CounterTotal("mesh_cross_region_total"),
		EastWest:     e.Mesh.Metrics().CounterTotal("gateway_eastwest_ingress_total"),
		Fallbacks:    e.Mesh.Metrics().CounterTotal("mesh_fallback_served_total"),
		Faults:       withFaults,
	}
	if federated {
		row.StaleP99 = e.Mesh.Metrics().
			Histogram(ctrlplane.MetricStalenessSeconds, nil).QuantileDuration(0.99)
	}
	return row
}

// FormatFederation renders the E19 table.
func FormatFederation(rows []FederationRow) string {
	t := newTable("configuration", "LS p50", "LS p99", "avail", "evac avail",
		"part avail", "degraded", "x-region", "eastwest", "fallbacks", "stale p99")
	for _, r := range rows {
		evac, part := "-", "-"
		if r.Faults {
			evac = fmt.Sprintf("%.2f%%", 100*r.EvacAvail)
			part = fmt.Sprintf("%.2f%%", 100*r.PartAvail)
		}
		stale := "-"
		if r.Federated {
			stale = ms(r.StaleP99)
		}
		t.row(r.Config, ms(r.LSP50), ms(r.LSP99),
			fmt.Sprintf("%.2f%%", 100*r.Avail), evac, part,
			fmt.Sprintf("%.2f%%", 100*r.DegradedFrac),
			fmt.Sprint(r.CrossRegion), fmt.Sprint(r.EastWest),
			fmt.Sprint(r.Fallbacks), stale)
	}
	return "E19 — multi-region federation: region evacuation + WAN partition vs the priority failover ladder (3 regions x 2 zones, 30 RPS mixed)\n" + t.String()
}
