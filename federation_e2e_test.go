package meshlayer

import (
	"testing"
	"time"

	"meshlayer/internal/lint/leakcheck"
)

// Short windows keep the simulated runs affordable under -race;
// cmd/meshbench -exp federation is the paper-scale version. The
// evacuation spans half the measured window and the WAN partition a
// fifth, so even at test scale region-a drains for 2 s with region-b
// unreachable for most of it.
const (
	federationTestWarmup  = 1 * time.Second
	federationTestMeasure = 4 * time.Second
)

// TestFederationLadderOrdering is E19's headline claim at test scale:
// under a region-a evacuation with a mid-evacuation region-b WAN
// partition, region-only isolation collapses (its callers cannot leave
// the draining region), the flat global mesh measurably degrades, and
// the full failover ladder rides the east-west gateways to sustain
// availability through both windows.
func TestFederationLadderOrdering(t *testing.T) {
	leakcheck.Check(t)
	flat := runFederationOnce("flat", "off", false, true, 1, federationTestWarmup, federationTestMeasure)
	region := runFederationOnce("region", "region", false, true, 1, federationTestWarmup, federationTestMeasure)
	full := runFederationOnce("full", "full", false, true, 1, federationTestWarmup, federationTestMeasure)

	if region.EvacAvail >= 0.7 {
		t.Fatalf("region-only evacuation availability = %.1f%%, want a collapse (nothing may leave the region)",
			100*region.EvacAvail)
	}
	// The acceptance bar: the full ladder holds >= 99% through both the
	// evacuation and the WAN partition.
	if full.EvacAvail < 0.99 || full.PartAvail < 0.99 {
		t.Fatalf("full-ladder availability evac %.2f%% / partition %.2f%%, want >= 99%%",
			100*full.EvacAvail, 100*full.PartAvail)
	}
	if full.Avail <= region.Avail || full.Avail <= flat.Avail {
		t.Fatalf("full-ladder availability %.2f%% does not materially exceed region-only %.2f%% and flat %.2f%%",
			100*full.Avail, 100*region.Avail, 100*flat.Avail)
	}
	if full.CrossRegion == 0 || full.EastWest == 0 {
		t.Fatalf("full ladder recorded no gateway-mediated cross-region traffic: %+v", full)
	}
	if region.CrossRegion != 0 || region.EastWest != 0 {
		t.Fatalf("region-only arm crossed regions: %+v", region)
	}
	// Split-brain is honest, not oracle: the federated arms route on
	// pushed summaries, so config age is bounded below by the debounce.
	if full.StaleP99 <= 0 {
		t.Fatal("federated arm recorded no control-plane staleness")
	}
}

// TestFederationDegradationServesFallbacks: the dependency-wide ratings
// crash near the end of the suite must actually exercise graceful
// degradation on the fallback arms, with provenance at the edge.
func TestFederationDegradationServesFallbacks(t *testing.T) {
	leakcheck.Check(t)
	row := runFederationOnce("degraded", "full", true, true, 1, federationTestWarmup, federationTestMeasure)
	if row.Fallbacks == 0 {
		t.Fatal("no fallback responses served under the dependency-wide ratings loss")
	}
	if row.DegradedFrac <= 0 {
		t.Fatal("no degraded responses observed at the gateway (provenance lost)")
	}
}

// TestFederationFaultFreeOverheadFree: with three regions, per-region
// control planes, and the full ladder — but no faults — every request
// stays in its caller's zone: no gateway hops, no fallbacks.
func TestFederationFaultFreeOverheadFree(t *testing.T) {
	leakcheck.Check(t)
	row := runFederationOnce("baseline", "full", true, false, 1, federationTestWarmup, federationTestMeasure)
	if row.Avail < 0.999 {
		t.Fatalf("fault-free availability = %.2f%%", 100*row.Avail)
	}
	if row.CrossRegion != 0 || row.EastWest != 0 {
		t.Fatalf("fault-free run crossed regions (%d selections, %d gateway hops) with all-healthy locality",
			row.CrossRegion, row.EastWest)
	}
	if row.Fallbacks != 0 || row.DegradedFrac != 0 {
		t.Fatalf("fault-free run served %d fallbacks (%.2f%% degraded)", row.Fallbacks, 100*row.DegradedFrac)
	}
}

// TestFederationDeterministic: equal seeds reproduce the federated
// scenario — evacuation stagger, WAN partition, summary exchange and
// all — byte-for-byte.
func TestFederationDeterministic(t *testing.T) {
	leakcheck.Check(t)
	a := runFederationOnce("run", "full", true, true, 9, federationTestWarmup, federationTestMeasure)
	b := runFederationOnce("run", "full", true, true, 9, federationTestWarmup, federationTestMeasure)
	if a != b {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
	if FormatFederation([]FederationRow{a}) != FormatFederation([]FederationRow{b}) {
		t.Fatal("formatted output diverged")
	}
}
