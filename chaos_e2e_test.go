package meshlayer

import (
	"testing"
	"time"

	"meshlayer/internal/lint/leakcheck"
)

// Short windows keep the three simulated runs affordable under -race;
// cmd/meshbench -exp chaos is the paper-scale version of the same
// comparison.
// The 2 s warmup matters: it keeps the first fault clear of the
// cold-start congestion transient, which otherwise dominates short
// windows.
const (
	chaosTestWarmup  = 2 * time.Second
	chaosTestMeasure = 4 * time.Second
)

// TestChaosDefensesBeatUndefended is E15's headline claim at test
// scale: under the scripted chaos suite the fully-defended mesh keeps
// the LS error rate near zero while the undefended run degrades.
func TestChaosDefensesBeatUndefended(t *testing.T) {
	leakcheck.Check(t)
	undefended := runChaosOnce("undefended", 0, true, 1, chaosTestWarmup, chaosTestMeasure)
	defended := runChaosOnce("defended", 3, true, 1, chaosTestWarmup, chaosTestMeasure)

	if undefended.LSErrRate <= 0.01 {
		t.Fatalf("undefended LS error rate = %.2f%%, want measurable degradation", 100*undefended.LSErrRate)
	}
	if defended.LSErrRate >= 0.01 {
		t.Fatalf("defended LS error rate = %.2f%%, want < 1%%", 100*defended.LSErrRate)
	}
	if defended.LSErrRate >= undefended.LSErrRate {
		t.Fatalf("defended err %.2f%% not better than undefended %.2f%%",
			100*defended.LSErrRate, 100*undefended.LSErrRate)
	}
}

// TestChaosRetryBudgetCutsRetries: with the same faults, adding retry
// budgets (level 3) must issue strictly fewer retries than the
// unbudgeted defense stack (level 2), and must actually deny some.
func TestChaosRetryBudgetCutsRetries(t *testing.T) {
	leakcheck.Check(t)
	unbudgeted := runChaosOnce("unbudgeted", 2, true, 1, chaosTestWarmup, chaosTestMeasure)
	budgeted := runChaosOnce("budgeted", 3, true, 1, chaosTestWarmup, chaosTestMeasure)

	if unbudgeted.Retries == 0 {
		t.Fatal("unbudgeted run issued no retries; faults not exercising the retry path")
	}
	if budgeted.Retries >= unbudgeted.Retries {
		t.Fatalf("budgeted retries = %d, want strictly fewer than unbudgeted %d",
			budgeted.Retries, unbudgeted.Retries)
	}
	if budgeted.BudgetDenied == 0 {
		t.Fatal("budgeted run denied no retries; budget never bound")
	}
}

// TestChaosDeterministic: equal seeds must reproduce the scenario
// byte-for-byte, recorder buckets and all.
func TestChaosDeterministic(t *testing.T) {
	leakcheck.Check(t)
	a := runChaosOnce("run", 3, true, 9, chaosTestWarmup, chaosTestMeasure)
	b := runChaosOnce("run", 3, true, 9, chaosTestWarmup, chaosTestMeasure)
	if a != b {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
	if FormatChaos([]ChaosRow{a}) != FormatChaos([]ChaosRow{b}) {
		t.Fatal("formatted output diverged")
	}
}
