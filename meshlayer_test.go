package meshlayer

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func shortMixed(rps float64) MixedConfig {
	return MixedConfig{RPS: rps, Seed: 3, Warmup: time.Second, Measure: 4 * time.Second, Cooldown: 500 * time.Millisecond}
}

func TestOptimizationString(t *testing.T) {
	if None().String() != "baseline" {
		t.Fatalf("None() = %q", None().String())
	}
	if got := PaperOptimizations().String(); got != "routing+tc" {
		t.Fatalf("paper opts = %q", got)
	}
	if got := AllOptimizations().String(); got != "routing+scavenger+tc+sdn" {
		t.Fatalf("all opts = %q", got)
	}
	if None().Any() || !AllOptimizations().Any() {
		t.Fatal("Any() broken")
	}
}

func TestScenarioBaselineHasNoController(t *testing.T) {
	s := NewScenario(ScenarioConfig{})
	if s.CrossLayer != nil || s.SDN != nil {
		t.Fatal("baseline scenario must not install cross-layer machinery")
	}
}

func TestScenarioSDNVariantWiresController(t *testing.T) {
	s := NewScenario(ScenarioConfig{Opt: AllOptimizations(), Seed: 2})
	if s.CrossLayer == nil || s.SDN == nil {
		t.Fatal("full scenario missing controllers")
	}
	// The alternate ratings uplink must exist: ratings node has 2 NICs.
	if got := len(s.App.Ratings.Node().NICs()); got != 2 {
		t.Fatalf("ratings NICs = %d, want 2 (primary + TE alternate)", got)
	}
}

func TestServeBothClasses(t *testing.T) {
	s := NewScenario(ScenarioConfig{Opt: PaperOptimizations(), Seed: 1})
	var prodLat, anaLat time.Duration
	s.Serve(ProductRequest, func(lat time.Duration, status int, err error) {
		if err != nil || status != 200 {
			t.Fatalf("product: status=%d err=%v", status, err)
		}
		prodLat = lat
	})
	s.Serve(AnalyticsRequest, func(lat time.Duration, status int, err error) {
		if err != nil || status != 200 {
			t.Fatalf("analytics: status=%d err=%v", status, err)
		}
		anaLat = lat
	})
	s.Run()
	if prodLat == 0 || anaLat == 0 {
		t.Fatal("callbacks did not fire")
	}
	if anaLat < prodLat {
		t.Fatalf("analytics (%v) should be slower than product (%v): 2MB over 1Gbps", anaLat, prodLat)
	}
}

func TestTraceTreesAnnotated(t *testing.T) {
	s := NewScenario(ScenarioConfig{Opt: PaperOptimizations(), Seed: 1})
	s.Serve(ProductRequest, nil)
	s.Run()
	trees := s.TraceTrees()
	if len(trees) != 1 {
		t.Fatalf("trees = %d", len(trees))
	}
	if !strings.Contains(trees[0], "priority=high") || !strings.Contains(trees[0], "ratings") {
		t.Fatalf("tree missing annotations:\n%s", trees[0])
	}
}

func TestRunMixedProducesBothResults(t *testing.T) {
	r := RunMixedOnce(PaperOptimizations(), shortMixed(20))
	if r.LS.Count == 0 || r.LI.Count == 0 {
		t.Fatalf("counts: LS=%d LI=%d", r.LS.Count, r.LI.Count)
	}
	if r.LS.Errors != 0 || r.LI.Errors != 0 {
		t.Fatalf("errors: LS=%d LI=%d", r.LS.Errors, r.LI.Errors)
	}
	if r.LS.P99 < r.LS.P50 || r.LI.P99 < r.LI.P50 {
		t.Fatal("percentile ordering broken")
	}
	if r.LI.P50 < r.LS.P50 {
		t.Fatalf("LI p50 (%v) should exceed LS p50 (%v)", r.LI.P50, r.LS.P50)
	}
}

func TestScenarioDeterminism(t *testing.T) {
	run := func() MixedResult { return RunMixedOnce(AllOptimizations(), shortMixed(25)) }
	a, b := run(), run()
	if a.LS.P99 != b.LS.P99 || a.LI.P99 != b.LI.P99 || a.LS.Count != b.LS.Count {
		t.Fatalf("nondeterministic: %+v vs %+v", a.LS, b.LS)
	}
}

func TestCrossLayerHelpsAtHighLoad(t *testing.T) {
	base := RunMixedOnce(None(), shortMixed(45))
	opt := RunMixedOnce(PaperOptimizations(), shortMixed(45))
	if float64(base.LS.P99) < 1.5*float64(opt.LS.P99) {
		t.Fatalf("LS p99 improvement < 1.5x: base=%v opt=%v", base.LS.P99, opt.LS.P99)
	}
}

func TestRunSweepDefaults(t *testing.T) {
	pts := RunSweep(SweepConfig{RPSLevels: []float64{15}, Warmup: time.Second, Measure: 3 * time.Second})
	if len(pts) != 1 || pts[0].RPS != 15 {
		t.Fatalf("points = %+v", pts)
	}
	out := FormatFig4(pts)
	if !strings.Contains(out, "15") || !strings.Contains(out, "p99") {
		t.Fatalf("format missing columns:\n%s", out)
	}
	li := FormatLICost(pts)
	if !strings.Contains(li, "delta") {
		t.Fatalf("LI cost table malformed:\n%s", li)
	}
}

func TestSidecarOverheadMonotone(t *testing.T) {
	rows := RunSidecarOverhead(300, 1)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].P50 >= rows[1].P50 {
		t.Fatalf("proxy overhead did not increase p50: %v vs %v", rows[0].P50, rows[1].P50)
	}
	if rows[1].P99 >= rows[2].P99 {
		t.Fatalf("4x proxy cost did not increase p99: %v vs %v", rows[1].P99, rows[2].P99)
	}
	if rows[1].OverheadP99 <= 0 {
		t.Fatal("added p99 must be positive")
	}
	if !strings.Contains(FormatOverhead(rows), "sidecars") {
		t.Fatal("format broken")
	}
}

func TestHopDepthScaling(t *testing.T) {
	rows := RunHopDepth([]int{1, 8}, 100, 1)
	if rows[1].P50 < 4*rows[0].P50 {
		t.Fatalf("depth-8 p50 (%v) not ~8x depth-1 (%v)", rows[1].P50, rows[0].P50)
	}
	if !strings.Contains(FormatHopDepth(rows), "per hop") {
		t.Fatal("format broken")
	}
}

func TestAdaptiveLBTableShape(t *testing.T) {
	rows := RunAdaptiveLB(40, 2)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	var ewma, rr *LBRow
	for i := range rows {
		switch string(rows[i].Policy) {
		case "ewma":
			ewma = &rows[i]
		case "round_robin":
			rr = &rows[i]
		}
	}
	if ewma == nil || rr == nil {
		t.Fatal("policies missing")
	}
	if ewma.P99 >= rr.P99 {
		t.Fatalf("EWMA p99 (%v) should beat round robin (%v)", ewma.P99, rr.P99)
	}
	if ewma.SlowShare >= 0.15 {
		t.Fatalf("EWMA slow share = %.2f, want near 0", ewma.SlowShare)
	}
}

func TestRedundantCutsTail(t *testing.T) {
	rows := RunRedundant(20, 1)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1].P99 >= rows[0].P99 {
		t.Fatalf("hedging did not cut p99: %v vs %v", rows[1].P99, rows[0].P99)
	}
}

func TestScavengerOrdering(t *testing.T) {
	rows := RunScavenger(1)
	byCC := map[string]ScavengerRow{}
	for _, r := range rows {
		byCC[r.CC] = r
	}
	// Scavengers must give the short transfers far better tails than
	// loss-based controllers.
	if float64(byCC["reno"].LSP99) < 2*float64(byCC["ledbat"].LSP99) {
		t.Fatalf("ledbat did not yield: reno p99=%v ledbat p99=%v", byCC["reno"].LSP99, byCC["ledbat"].LSP99)
	}
	// And still use an idle link substantially.
	if byCC["ledbat"].BulkAloneMbps < 70 {
		t.Fatalf("ledbat idle-link goodput = %.1f Mbps", byCC["ledbat"].BulkAloneMbps)
	}
}

func TestAblationBaselineWorst(t *testing.T) {
	rows := RunAblation(40, 1, MixedConfig{Warmup: time.Second, Measure: 4 * time.Second})
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	base := rows[0].LSP99
	full := rows[2].LSP99 // routing+tc
	if float64(base) < 1.5*float64(full) {
		t.Fatalf("routing+tc did not clearly beat baseline: %v vs %v", base, full)
	}
	if !strings.Contains(FormatAblation(rows, 40), "baseline") {
		t.Fatal("format broken")
	}
}

func TestResilienceMasksPartition(t *testing.T) {
	rows := RunResilience(20, 2)
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	noRez, rez := rows[1], rows[4]
	if noRez.Phase != "during partition" || rez.Phase != "during partition" {
		t.Fatalf("row order wrong: %+v", rows)
	}
	if noRez.ErrorRate == 0 {
		t.Fatal("partition caused no errors without resilience")
	}
	if rez.ErrorRate >= noRez.ErrorRate/2 {
		t.Fatalf("resilience did not reduce errors: %.2f vs %.2f", rez.ErrorRate, noRez.ErrorRate)
	}
	// After healing, the resilient config fully recovers.
	after := rows[5]
	if after.ErrorRate != 0 {
		t.Fatalf("errors after heal: %.2f", after.ErrorRate)
	}
	if !strings.Contains(FormatResilience(rows), "partition") {
		t.Fatal("format broken")
	}
}

func TestChartAndCSVOutputs(t *testing.T) {
	pts := RunSweep(SweepConfig{RPSLevels: []float64{20}, Warmup: time.Second, Measure: 3 * time.Second})
	chart := ChartFig4(pts)
	if !strings.Contains(chart, "w/o cross-layer optimization (p99)") {
		t.Fatalf("chart legend missing:\n%s", chart)
	}
	csv := CSVFig4(pts)
	if !strings.HasPrefix(csv, "rps,") || !strings.Contains(csv, "20,") {
		t.Fatalf("csv malformed:\n%s", csv)
	}
}

func TestBottleneckAndSkewSweeps(t *testing.T) {
	short := MixedConfig{Warmup: time.Second, Measure: 3 * time.Second}
	b := RunBottleneckSweep([]float64{1, 4}, 1, short)
	if len(b) != 2 || b[0].RateGbps != 1 {
		t.Fatalf("bottleneck rows: %+v", b)
	}
	// Tighter bottleneck must show a bigger (or equal) win.
	winTight := float64(b[0].BaseP99) / float64(b[0].OptP99)
	winLoose := float64(b[1].BaseP99) / float64(b[1].OptP99)
	if winTight < winLoose {
		t.Fatalf("tight %.1fx < loose %.1fx", winTight, winLoose)
	}
	s := RunSkewSweep([]float64{0.5, 2}, 1, short)
	if len(s) != 2 || s[0].SkewFactor >= s[1].SkewFactor {
		t.Fatalf("skew rows: %+v", s)
	}
	if !strings.Contains(FormatBottleneck(b), "Gbps") || !strings.Contains(FormatSkew(s), "skew") {
		t.Fatal("formats broken")
	}
}

func TestQdiscComparisonShape(t *testing.T) {
	rows := RunQdiscComparison(40, 1, MixedConfig{Warmup: time.Second, Measure: 4 * time.Second})
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	fifo, ns := rows[0], rows[3]
	if float64(fifo.LSP99) < 1.3*float64(ns.LSP99) {
		t.Fatalf("nearstrict (%v) did not clearly beat droptail (%v) for LS p99", ns.LSP99, fifo.LSP99)
	}
	if !strings.Contains(FormatQdiscComparison(rows, 40), "nearstrict") {
		t.Fatal("format broken")
	}
}

func TestParseOptimizations(t *testing.T) {
	cases := map[string]Optimization{
		"":              {},
		"baseline":      {},
		"none":          {},
		"routing":       {Routing: true},
		"routing,tc":    {Routing: true, TC: true},
		"tc, scavenger": {TC: true, Scavenger: true},
		"all":           AllOptimizations(),
		"sdn,routing":   {Routing: true, SDN: true},
	}
	for in, want := range cases {
		got, err := ParseOptimizations(in)
		if err != nil || got != want {
			t.Fatalf("ParseOptimizations(%q) = %+v, %v; want %+v", in, got, err, want)
		}
	}
	if _, err := ParseOptimizations("warpdrive"); err == nil {
		t.Fatal("unknown optimization accepted")
	}
}

// TestOverloadProtection asserts E14's acceptance shape on shortened
// windows: with admission on at 2x offered load the latency-sensitive
// class keeps its goodput and a bounded p99, while the unprotected
// baseline collapses; deadline propagation cancels doomed child calls
// before they reach the backend.
func TestOverloadProtection(t *testing.T) {
	rows := RunOverload(1, 2*time.Second, 6*time.Second)
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	byKey := map[string]OverloadRow{}
	for _, r := range rows {
		byKey[fmt.Sprintf("%s@%.1f", r.Config, r.Load)] = r
	}

	// Unprotected overload collapses LS latency by an order of magnitude.
	dis, disOver := byKey["disabled@0.5"], byKey["disabled@2.0"]
	if float64(disOver.LSP99) < 10*float64(dis.LSP99) {
		t.Fatalf("disabled overload p99 %v vs %v: expected collapse", disOver.LSP99, dis.LSP99)
	}

	// Admission keeps LS p99 within 2x its pre-overload value and LS
	// goodput >= 95% of offered.
	adm, admOver := byKey["admission@0.5"], byKey["admission@2.0"]
	if float64(admOver.LSP99) > 2*float64(adm.LSP99) {
		t.Fatalf("admission overload p99 %v vs %v: bound exceeded", admOver.LSP99, adm.LSP99)
	}
	if admOver.LSGoodput < 0.95 {
		t.Fatalf("admission LS goodput = %.1f%%, want >= 95%%", 100*admOver.LSGoodput)
	}
	if admOver.Shed == 0 {
		t.Fatal("admission shed nothing under 2x overload")
	}

	// Deadline propagation cancels doomed child calls, cutting backend
	// work relative to the unprotected run.
	dl := byKey["deadline only@2.0"]
	if dl.Cancelled == 0 {
		t.Fatal("deadline propagation cancelled no child calls")
	}
	if dl.BackendWork >= disOver.BackendWork {
		t.Fatalf("backend work %d with deadlines vs %d without: no waste cut", dl.BackendWork, disOver.BackendWork)
	}

	if !strings.Contains(FormatOverload(rows), "E14") {
		t.Fatal("format broken")
	}
}
