// Command tracedump serves a few requests through the e-library and
// prints the reconstructed distributed call trees — the visibility
// story of §3.2, and the provenance the prioritization builds on.
//
// Usage:
//
//	tracedump -n 2 -opts routing,tc
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"meshlayer"
	"meshlayer/internal/app"
	"meshlayer/internal/httpsim"
	"meshlayer/internal/trace"
)

func main() {
	var (
		n    = flag.Int("n", 2, "requests of each class to trace")
		opts = flag.String("opts", "routing,tc", "optimizations: routing,tc,scavenger,sdn (empty = baseline)")
		seed = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	opt, err := meshlayer.ParseOptimizations(*opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracedump:", err)
		os.Exit(2)
	}

	s := meshlayer.NewScenario(meshlayer.ScenarioConfig{Opt: opt, Seed: *seed})
	e := s.App
	for i := 0; i < *n; i++ {
		e.Gateway.Serve(app.NewProductRequest(), func(*httpsim.Response, error) {})
		e.Gateway.Serve(app.NewAnalyticsRequest(), func(*httpsim.Response, error) {})
		e.Sched.RunFor(500 * time.Millisecond)
	}
	e.Sched.Run()

	tracer := e.Mesh.Tracer()
	for _, id := range tracer.TraceIDs() {
		tree := tracer.Tree(id)
		if tree == nil {
			continue
		}
		prio := tracer.RootTag(id, "priority")
		fmt.Printf("trace %s (priority=%s, total=%v)\n", id, prio, tree.Span.Duration())
		fmt.Print(tree.Format())
		fmt.Print(trace.FormatCriticalPath(trace.CriticalPath(tree)))
		fmt.Println()
	}

	fmt.Println("slowest traces:", tracer.SlowestTraces(3))
	fmt.Println("\nper-service totals:")
	totals := tracer.ServiceTotals()
	names := make([]string, 0, len(totals))
	for svc := range totals {
		names = append(names, svc)
	}
	sort.Strings(names)
	for _, svc := range names {
		fmt.Printf("  %-18s spans=%-4d busy=%v\n", svc, totals[svc].Spans, totals[svc].TotalTime)
	}
}
