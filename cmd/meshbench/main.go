// Command meshbench reproduces every table and figure of the paper's
// evaluation (and this repo's extensions) and prints them as text
// tables. See DESIGN.md for the experiment index.
//
// Usage:
//
//	meshbench -exp fig4                # the paper's Fig. 4 sweep
//	meshbench -exp all -measure 20s    # everything, paper-scale windows
//	meshbench -exp ablation -rps 40
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"meshlayer"
	"meshlayer/internal/simnet"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: fig4|licost|overhead|ablation|scavenger|adaptivelb|redundant|hops|bottleneck|skew|resilience|qdisc|overload|chaos|zonefail|ctrlplane|federation|engine|fidelity|ctrlscale|all (engine, fidelity, and ctrlscale are never part of all)")
		seed     = flag.Int64("seed", 1, "random seed (same seed = identical run)")
		rps      = flag.Float64("rps", 40, "per-workload RPS for the ablation experiment")
		levels   = flag.String("levels", "10,20,30,40,50", "comma-separated RPS levels for the fig4 sweep")
		warmup   = flag.Duration("warmup", 2*time.Second, "warm-up excluded from measurement")
		measure  = flag.Duration("measure", 20*time.Second, "measured window per run")
		opts     = flag.String("opts", "routing,tc", "optimizations for the fig4 sweep: routing,tc,scavenger,sdn")
		chart    = flag.Bool("chart", false, "also render fig4 as an ASCII chart")
		csv      = flag.Bool("csv", false, "emit fig4 as CSV instead of a table")
		parallel = flag.Int("parallel", meshlayer.MaxParallel, "max concurrent simulation runs per sweep (1 = sequential; output is identical either way)")
		fidelity = flag.String("fidelity", "packet", "simulation fidelity for every experiment: packet|flow|hybrid (E20 compares all three itself, regardless)")
		zones    = flag.Int("zones", 0, "E20 fan-in zone count, 100 pods each (0 = the full 100-zone, 10k-pod sweep)")
		subs     = flag.Int("subs", 0, "E21 subscriber (worker sidecar) count (0 = the full 10k fleet)")
	)
	flag.Parse()
	if *parallel > 0 {
		meshlayer.MaxParallel = *parallel
	}
	fid, err := simnet.ParseFidelity(*fidelity)
	if err != nil {
		fmt.Fprintln(os.Stderr, "meshbench:", err)
		os.Exit(2)
	}
	simnet.SetDefaultFidelity(fid)

	rpsLevels, err := parseLevels(*levels)
	if err != nil {
		fmt.Fprintln(os.Stderr, "meshbench:", err)
		os.Exit(2)
	}
	opt, err := meshlayer.ParseOptimizations(*opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "meshbench:", err)
		os.Exit(2)
	}

	mixed := meshlayer.MixedConfig{Warmup: *warmup, Measure: *measure}
	want := func(name string) bool { return *exp == "all" || *exp == name }
	ran := false

	if want("fig4") || want("licost") {
		ran = true
		fmt.Printf("# sweep: opts=%s levels=%v measure=%v seed=%d\n\n", opt, rpsLevels, *measure, *seed)
		points := meshlayer.RunSweep(meshlayer.SweepConfig{
			RPSLevels: rpsLevels,
			Opt:       opt,
			Seed:      *seed,
			Warmup:    *warmup,
			Measure:   *measure,
		})
		if want("fig4") {
			if *csv {
				fmt.Print(meshlayer.CSVFig4(points))
			} else {
				fmt.Println(meshlayer.FormatFig4(points))
			}
			if *chart {
				fmt.Println(meshlayer.ChartFig4(points))
			}
		}
		if want("licost") && !*csv {
			fmt.Println(meshlayer.FormatLICost(points))
		}
	}
	if want("overhead") {
		ran = true
		fmt.Println(meshlayer.FormatOverhead(meshlayer.RunSidecarOverhead(2000, *seed)))
	}
	if want("ablation") {
		ran = true
		fmt.Println(meshlayer.FormatAblation(meshlayer.RunAblation(*rps, *seed, mixed), *rps))
	}
	if want("scavenger") {
		ran = true
		fmt.Println(meshlayer.FormatScavenger(meshlayer.RunScavenger(*seed)))
	}
	if want("adaptivelb") {
		ran = true
		fmt.Println(meshlayer.FormatAdaptiveLB(meshlayer.RunAdaptiveLB(50, *seed)))
	}
	if want("redundant") {
		ran = true
		fmt.Println(meshlayer.FormatRedundant(meshlayer.RunRedundant(30, *seed)))
	}
	if want("hops") {
		ran = true
		fmt.Println(meshlayer.FormatHopDepth(meshlayer.RunHopDepth(nil, 500, *seed)))
	}
	if want("bottleneck") {
		ran = true
		fmt.Println(meshlayer.FormatBottleneck(meshlayer.RunBottleneckSweep(nil, *seed, mixed)))
	}
	if want("skew") {
		ran = true
		fmt.Println(meshlayer.FormatSkew(meshlayer.RunSkewSweep(nil, *seed, mixed)))
	}
	if want("resilience") {
		ran = true
		fmt.Println(meshlayer.FormatResilience(meshlayer.RunResilience(30, *seed)))
	}
	if want("qdisc") {
		ran = true
		fmt.Println(meshlayer.FormatQdiscComparison(meshlayer.RunQdiscComparison(*rps, *seed, mixed), *rps))
	}
	if want("overload") {
		ran = true
		fmt.Println(meshlayer.FormatOverload(meshlayer.RunOverload(*seed, *warmup, *measure)))
	}
	if want("chaos") {
		ran = true
		fmt.Println(meshlayer.FormatChaos(meshlayer.RunChaos(*seed, *warmup, *measure)))
	}
	if want("zonefail") {
		ran = true
		fmt.Println(meshlayer.FormatZoneFail(meshlayer.RunZoneFail(*seed, *warmup, *measure)))
	}
	if want("ctrlplane") {
		ran = true
		fmt.Println(meshlayer.FormatCtrlPlane(meshlayer.RunCtrlPlane(*seed, *warmup, *measure)))
	}
	if want("federation") {
		ran = true
		fmt.Println(meshlayer.FormatFederation(meshlayer.RunFederation(*seed, *warmup, *measure)))
	}
	// E16 measures the simulator itself (wall-clock, host-dependent), so
	// it runs only when asked for explicitly — never as part of "all".
	if *exp == "engine" {
		ran = true
		fmt.Println(meshlayer.FormatEngine(meshlayer.RunEngineBench(0, 0)))
	}
	// E20 is deterministic but deliberately heavyweight (a 10k-pod
	// sweep), so it too runs only when asked for explicitly.
	if *exp == "fidelity" {
		ran = true
		fmt.Println(meshlayer.FormatFidelity(meshlayer.RunFidelityBench(*zones, 0)))
	}
	// E21 runs a 10k-sidecar fleet under hybrid fidelity (its own
	// per-network setting); explicit-only for the same reason as E20.
	if *exp == "ctrlscale" {
		ran = true
		fmt.Println(meshlayer.FormatCtrlScale(meshlayer.RunCtrlScale(*seed, *subs, *warmup, *measure)))
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "meshbench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

func parseLevels(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad RPS level %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no RPS levels")
	}
	return out, nil
}
