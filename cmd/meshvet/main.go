// Command meshvet runs the meshlayer invariant analyzers (see
// internal/lint) over the module and exits non-zero on any finding.
// It is the machine-checked form of the determinism, pooling, and
// concurrency rules that PRs 2–3 established by hand:
//
//	walltime    no wall-clock reads in sim code
//	globalrand  no process-global randomness in sim code
//	mapiter     no order-dependent work inside range-over-map
//	poolescape  no retention of //meshvet:pooled values past Release
//	indexowned  runIndexed workers write only index-owned slots
//
// Usage:
//
//	go run ./cmd/meshvet [packages]   (default ./...)
//
// Run it from inside the module: package loading and the source
// importer resolve module-local imports through the go command.
// Justified exceptions are annotated in source with
// //meshvet:allow <analyzer> <reason>; `meshvet -doc` prints each
// analyzer's full documentation.
package main

import (
	"flag"
	"fmt"
	"go/token"
	"os"

	"meshlayer/internal/lint"
)

func main() {
	doc := flag.Bool("doc", false, "print each analyzer's documentation and exit")
	flag.Parse()
	if *doc {
		for _, a := range lint.All {
			fmt.Printf("%s\n\t%s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	fset := token.NewFileSet()
	pkgs, err := lint.LoadPackages(fset, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "meshvet: %v\n", err)
		os.Exit(2)
	}
	diags := lint.Run(fset, pkgs, lint.All)
	for _, d := range diags {
		fmt.Println(d.String())
	}
	if n := len(diags); n > 0 {
		fmt.Fprintf(os.Stderr, "meshvet: %d issue(s) in %d package(s)\n", n, len(pkgs))
		os.Exit(1)
	}
}
