// Command meshvet runs the meshlayer invariant analyzers (see
// internal/lint) over the module and exits non-zero on any finding.
// It is the machine-checked form of the determinism, pooling,
// concurrency, and (since the federation/fluid era) header, metric,
// and timer-ownership rules:
//
//	walltime    no wall-clock reads in sim code
//	globalrand  no process-global randomness in sim code
//	mapiter     no order-dependent work inside range-over-map
//	poolescape  no retention of //meshvet:pooled values past Release
//	indexowned  runIndexed workers write only index-owned slots
//	ctlwrite    routing state mutated only by sanctioned writers
//	headerreg   x-mesh-* headers through the internal/mesh registry
//	fluidstate  FlowEngine scratch/pool/timer hygiene
//	metricdecl  metric names as registered constants, one kind each
//	timerown    captured simnet.Timers cancelled, owned once, or returned
//
// Usage:
//
//	go run ./cmd/meshvet [flags] [packages]   (default ./...)
//
//	-doc       print each analyzer's documentation and exit
//	-json      emit diagnostics as a JSON array on stdout
//	-o file    also write the JSON report to file (implies collecting it)
//	-github    emit GitHub Actions workflow annotations (::error ...)
//	-fix       apply suggested fixes (headerreg literal -> constant)
//
// Run it from inside the module: package loading and the source
// importer resolve module-local imports through the go command.
// Justified exceptions are annotated in source with
// //meshvet:allow <analyzer> <reason>.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"meshlayer/internal/lint"
)

// jsonDiagnostic is the machine-readable form of one finding. Offsets
// are byte offsets into the named file, so editors and the -fix
// applier agree on the span without re-tokenizing.
type jsonDiagnostic struct {
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Col      int      `json:"col"`
	Analyzer string   `json:"analyzer"`
	Message  string   `json:"message"`
	Fix      *jsonFix `json:"fix,omitempty"`
}

type jsonFix struct {
	StartOffset int    `json:"start_offset"`
	EndOffset   int    `json:"end_offset"`
	NewText     string `json:"new_text"`
}

func main() {
	doc := flag.Bool("doc", false, "print each analyzer's documentation and exit")
	asJSON := flag.Bool("json", false, "emit diagnostics as JSON on stdout")
	outFile := flag.String("o", "", "write the JSON report to this file")
	github := flag.Bool("github", false, "emit GitHub Actions ::error annotations")
	applyFix := flag.Bool("fix", false, "apply suggested fixes to the source files")
	flag.Parse()
	if *doc {
		for _, a := range lint.All {
			fmt.Printf("%s\n\t%s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	fset := token.NewFileSet()
	pkgs, err := lint.LoadPackages(fset, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "meshvet: %v\n", err)
		os.Exit(2)
	}
	diags := lint.Run(fset, pkgs, lint.All)

	if *applyFix {
		fixed, err := applyFixes(diags)
		if err != nil {
			fmt.Fprintf(os.Stderr, "meshvet: -fix: %v\n", err)
			os.Exit(2)
		}
		diags = remaining(diags)
		fmt.Fprintf(os.Stderr, "meshvet: applied %d fix(es), %d diagnostic(s) remain\n", fixed, len(diags))
	}

	report := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		jd := jsonDiagnostic{
			File:     relPath(d.Pos.Filename),
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		}
		if d.Fix != nil {
			jd.Fix = &jsonFix{
				StartOffset: d.Fix.Start.Offset,
				EndOffset:   d.Fix.End.Offset,
				NewText:     d.Fix.NewText,
			}
		}
		report = append(report, jd)
	}

	if *outFile != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "meshvet: %v\n", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*outFile, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "meshvet: %v\n", err)
			os.Exit(2)
		}
	}

	switch {
	case *asJSON:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintf(os.Stderr, "meshvet: %v\n", err)
			os.Exit(2)
		}
	case *github:
		for _, jd := range report {
			fmt.Printf("::error file=%s,line=%d,col=%d,title=meshvet %s::%s\n",
				jd.File, jd.Line, jd.Col, jd.Analyzer, escapeAnnotation(jd.Message))
		}
	default:
		for _, d := range diags {
			fmt.Println(d.String())
		}
	}

	if n := len(diags); n > 0 {
		fmt.Fprintf(os.Stderr, "meshvet: %d issue(s) in %d package(s)\n", n, len(pkgs))
		os.Exit(1)
	}
}

// relPath renders filename relative to the working directory so
// annotations and reports are repo-relative regardless of how the
// loader resolved them.
func relPath(filename string) string {
	wd, err := os.Getwd()
	if err != nil {
		return filename
	}
	rel, err := filepath.Rel(wd, filename)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filename
	}
	return filepath.ToSlash(rel)
}

// escapeAnnotation applies the GitHub workflow-command escaping rules
// to a message (the data portion of ::error).
func escapeAnnotation(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

// applyFixes rewrites the source files with every suggested fix,
// returning how many were applied. Fixes within one file are applied
// back-to-front so earlier offsets stay valid; overlapping fixes abort
// rather than corrupt the file.
func applyFixes(diags []lint.Diagnostic) (int, error) {
	byFile := map[string][]*lint.SuggestedFix{}
	for i := range diags {
		if f := diags[i].Fix; f != nil {
			byFile[f.Start.Filename] = append(byFile[f.Start.Filename], f)
		}
	}
	applied := 0
	files := make([]string, 0, len(byFile))
	for f := range byFile {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, filename := range files {
		fixes := byFile[filename]
		sort.Slice(fixes, func(i, j int) bool { return fixes[i].Start.Offset > fixes[j].Start.Offset })
		for i := 1; i < len(fixes); i++ {
			if fixes[i].End.Offset > fixes[i-1].Start.Offset {
				return applied, fmt.Errorf("%s: overlapping suggested fixes", filename)
			}
		}
		src, err := os.ReadFile(filename)
		if err != nil {
			return applied, err
		}
		for _, f := range fixes {
			if f.Start.Offset < 0 || f.End.Offset > len(src) || f.Start.Offset > f.End.Offset {
				return applied, fmt.Errorf("%s: fix span [%d,%d) outside file", filename, f.Start.Offset, f.End.Offset)
			}
			src = append(src[:f.Start.Offset], append([]byte(f.NewText), src[f.End.Offset:]...)...)
			applied++
		}
		if err := os.WriteFile(filename, src, 0o644); err != nil {
			return applied, err
		}
	}
	return applied, nil
}

// remaining filters out the diagnostics whose fixes were just applied.
func remaining(diags []lint.Diagnostic) []lint.Diagnostic {
	out := diags[:0]
	for _, d := range diags {
		if d.Fix == nil {
			out = append(out, d)
		}
	}
	return out
}
