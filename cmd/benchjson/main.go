// Command benchjson converts `go test -bench` text output on stdin
// into a small JSON document on stdout, so CI can archive benchmark
// numbers as a machine-readable artifact without external tooling:
//
//	go test ./internal/simnet -run '^$' -bench 'Scheduler|PacketPath' -benchmem | benchjson > BENCH_engine.json
//
// Unrecognized lines are ignored; context lines (goos/goarch/pkg/cpu)
// are captured as metadata.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Metrics holds b.ReportMetric values keyed by their unit, e.g.
	// E17's "degraded_outage_avail_pct".
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

type doc struct {
	Date       string        `json:"date"`
	Goos       string        `json:"goos,omitempty"`
	Goarch     string        `json:"goarch,omitempty"`
	Pkg        string        `json:"pkg,omitempty"`
	CPU        string        `json:"cpu,omitempty"`
	Benchmarks []benchResult `json:"benchmarks"`
}

func main() {
	out := doc{Date: time.Now().UTC().Format(time.RFC3339)} //meshvet:allow walltime bench artifact timestamp; not sim state

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			out.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			out.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			out.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			out.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBench(line); ok {
				out.Benchmarks = append(out.Benchmarks, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseBench parses one result line, e.g.
//
//	BenchmarkScheduler-4  8357056  143.9 ns/op  0 B/op  0 allocs/op
func parseBench(line string) (benchResult, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return benchResult{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return benchResult{}, false
	}
	r := benchResult{Name: f[0], Iterations: iters}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			continue
		}
		switch f[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[f[i+1]] = v
		}
	}
	return r, true
}
