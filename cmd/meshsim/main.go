// Command meshsim runs one mixed-workload scenario and prints a
// wrk2-style report plus mesh telemetry — the interactive tool for
// poking at the testbed.
//
// Usage:
//
//	meshsim -rps 40 -opts routing,tc -measure 30s -telemetry
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"meshlayer"
	"meshlayer/internal/workload"
)

func main() {
	var (
		rps       = flag.Float64("rps", 40, "per-workload requests per second")
		opts      = flag.String("opts", "", "optimizations: routing,tc,scavenger,sdn,all (empty = baseline)")
		seed      = flag.Int64("seed", 1, "random seed")
		warmup    = flag.Duration("warmup", 2*time.Second, "warm-up window")
		measure   = flag.Duration("measure", 20*time.Second, "measured window")
		telemetry = flag.Bool("telemetry", false, "dump mesh telemetry after the run")
		timeline  = flag.Bool("timeline", false, "print per-second latency CSV for both workloads")
	)
	flag.Parse()

	opt, err := meshlayer.ParseOptimizations(*opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "meshsim:", err)
		os.Exit(2)
	}

	s := meshlayer.NewScenario(meshlayer.ScenarioConfig{Opt: opt, Seed: *seed})
	mixed := meshlayer.MixedConfig{RPS: *rps, Seed: *seed, Warmup: *warmup, Measure: *measure}
	var lsTL, liTL *workload.Timeline
	if *timeline {
		lsTL = workload.NewTimeline(0, time.Second)
		liTL = workload.NewTimeline(0, time.Second)
		mixed.LSObserver = lsTL.Observer()
		mixed.LIObserver = liTL.Observer()
	}
	res := s.RunMixed(mixed)

	fmt.Printf("scenario: %s, %.0f RPS per workload, %v measured\n\n", opt, *rps, *measure)
	report := func(name string, w meshlayer.WorkloadStats) {
		fmt.Printf("%-20s n=%-6d errors=%-4d p50=%-10v p90=%-10v p99=%-10v mean=%v\n",
			name, w.Count, w.Errors, w.P50, w.P90, w.P99, w.Mean)
	}
	report("latency-sensitive", res.LS)
	report("latency-insensitive", res.LI)

	if cl := s.CrossLayer; cl != nil {
		st := cl.Stats()
		fmt.Printf("\ncross-layer: provenance records=%d stamped=%d restored=%d qdiscs=%d\n",
			st.Recorded, st.Stamped, st.Restored, st.QdiscsInstalled)
	}
	if s.SDN != nil {
		fmt.Printf("sdn: flows=%d steering-moves=%d\n", s.SDN.FlowCount(), s.SDN.Moves())
	}
	if *timeline {
		fmt.Println("\n--- latency-sensitive timeline ---")
		fmt.Print(lsTL.CSV())
		fmt.Println("\n--- latency-insensitive timeline ---")
		fmt.Print(liTL.CSV())
	}
	if *telemetry {
		fmt.Println("\n--- mesh telemetry ---")
		fmt.Println(s.App.Mesh.Metrics().Dump())
	}
}
