package meshlayer

import (
	"testing"
	"time"

	"meshlayer/internal/lint/leakcheck"
)

// E21 at test scale: 200 worker sidecars, the same deploy storm and
// mid-storm control-plane crash, comparing the undefended rung against
// a fully defended one (knobs scaled to the fleet: 50 in-flight pushes,
// 16 resync slots). cmd/meshbench -exp ctrlscale is the 10k version.
//
// The physics carries over: the control-plane egress is provisioned so
// a whole-fleet resync takes ~4s of line rate (2x the push timeout), so
// the undefended stampede divides the link fleet-ways and no transfer
// beats the timeout, while paced pushes finish comfortably.
func TestCtrlScaleDefenseLadder(t *testing.T) {
	leakcheck.Check(t)
	seed := int64(5)
	warmup, measure := time.Second, 12*time.Second
	l0 := runCtrlScaleOnce(ctrlScaleDefense{name: "l0"}, 200, seed, warmup, measure)
	l3 := runCtrlScaleOnce(ctrlScaleDefense{name: "l3", backoff: true, inflight: 50, resyncs: 16},
		200, seed, warmup, measure)

	for _, r := range []CtrlScaleRow{l0, l3} {
		if r.Crashes != 1 {
			t.Fatalf("%s: crashes = %d, want exactly the scripted one", r.Config, r.Crashes)
		}
		if r.FullPushes == 0 || r.Resyncs == 0 || r.WireBytes == 0 {
			t.Fatalf("%s: the crash should force full resyncs: %+v", r.Config, r)
		}
		// Static stability: sidecars keep routing on last-good snapshots
		// through the outage — availability must not collapse at any rung.
		if r.Avail < 0.95 || r.TailAvail < 0.90 {
			t.Fatalf("%s: availability collapsed despite last-good snapshots: %+v", r.Config, r)
		}
	}

	// The undefended rung stampedes: the whole fleet shares the egress
	// link at once and never converges within the run.
	if l0.Recovered {
		t.Fatalf("undefended rung recovered in %v; the stampede should thrash forever", l0.RecoveredIn)
	}
	if l0.PeakInflight < 150 {
		t.Fatalf("undefended peak inflight = %d, want a fleet-wide stampede", l0.PeakInflight)
	}
	if l0.Timeouts < 4*l3.Timeouts {
		t.Fatalf("timeouts l0=%d l3=%d; the stampede should dwarf the paced rung", l0.Timeouts, l3.Timeouts)
	}
	if l0.ResyncBytes < 2*l3.ResyncBytes {
		t.Fatalf("resync bytes l0=%d l3=%d; repeated failed fulls should dominate", l0.ResyncBytes, l3.ResyncBytes)
	}

	// The defended rung converges with bounded concurrency.
	if !l3.Recovered {
		t.Fatal("defended rung did not converge after the crash")
	}
	if l3.PeakInflight > 50 {
		t.Fatalf("defended peak inflight = %d, want <= 50 (the cap)", l3.PeakInflight)
	}
	if l3.PeakResyncs == 0 || l3.PeakResyncs > 16 {
		t.Fatalf("defended peak resyncs = %d, want in (0, 16] (the admission window)", l3.PeakResyncs)
	}
	if l3.MaxLag == 0 {
		t.Fatal("no version lag recorded across a crash plus deploy storm")
	}
}
