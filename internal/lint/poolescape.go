package lint

import (
	"go/ast"
	"go/types"
)

// Poolescape guards the pooled-object lifecycle. Types marked
// //meshvet:pooled (simnet.Packet, transport.Segment, httpsim.wireMsg)
// are recycled through free lists: once a value reaches its Release /
// free point it is scrubbed and handed to the next allocation, so any
// reference that outlives the owning call reads another packet's data.
// The analyzer flags every construct that can retain such a value past
// its call frame:
//
//   - assignment into a struct field, slice/map element, or global
//   - sending it on a channel
//   - appending it to a slice (a pool's own free list is the one
//     sanctioned retainer and carries //meshvet:allow poolescape)
//   - capturing it in a closure, which may run after the value is freed
//
// This is deliberately flow-insensitive: rather than proving a store
// happens after Release, it treats retention itself as the hazard and
// makes the sanctioned retainers (the pools, scheduled delivery
// carriers) annotate themselves. An annotation at every retention site
// is exactly the audit trail pooling discipline needs.
var Poolescape = &Analyzer{
	Name: "poolescape",
	Doc:  "flag stores of //meshvet:pooled values into fields, globals, channels, slices, or closures",
	Run:  runPoolescape,
}

func runPoolescape(pass *Pass) {
	for _, f := range pass.Files {
		// Closure extents for capture attribution: each pooled-variable
		// use is charged to its innermost enclosing FuncLit, if any.
		var lits []*ast.FuncLit
		ast.Inspect(f, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				lits = append(lits, fl)
			}
			return true
		})

		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, rhs := range n.Rhs {
					name, pooled := pass.pooledType(pass.TypeOf(rhs))
					if !pooled {
						continue
					}
					switch lhs := n.Lhs[i].(type) {
					case *ast.SelectorExpr:
						pass.Reportf(n.Pos(),
							"pooled %s stored into field %s may outlive its Release; only annotated pool internals retain pooled values",
							name, lhs.Sel.Name)
					case *ast.IndexExpr:
						pass.Reportf(n.Pos(),
							"pooled %s stored into a slice/map element may outlive its Release", name)
					case *ast.Ident:
						if obj := pass.Info.ObjectOf(lhs); obj != nil && isPackageLevel(obj) {
							pass.Reportf(n.Pos(),
								"pooled %s stored into package-level %s outlives every Release", name, lhs.Name)
						}
					}
				}
			case *ast.SendStmt:
				if name, pooled := pass.pooledType(pass.TypeOf(n.Value)); pooled {
					pass.Reportf(n.Pos(),
						"pooled %s sent on a channel escapes its owner and may be read after Release", name)
				}
			case *ast.CallExpr:
				if !isBuiltinAppend(pass, n) {
					return true
				}
				for _, arg := range n.Args[1:] {
					if name, pooled := pass.pooledType(pass.TypeOf(arg)); pooled {
						pass.Reportf(n.Pos(),
							"pooled %s appended to a slice is retained past this call; only the owning pool's free list may do this (//meshvet:allow poolescape)",
							name)
					}
				}
			case *ast.Ident:
				checkPooledCapture(pass, n, lits)
			}
			return true
		})
	}
}

// checkPooledCapture reports id if it is a use of a pooled-typed
// variable captured by a closure it was declared outside of.
func checkPooledCapture(pass *Pass, id *ast.Ident, lits []*ast.FuncLit) {
	obj, ok := pass.Info.Uses[id].(*types.Var)
	if !ok || obj.IsField() {
		return
	}
	name, pooled := pass.pooledType(obj.Type())
	if !pooled {
		return
	}
	var inner *ast.FuncLit
	for _, fl := range lits {
		if fl.Pos() <= id.Pos() && id.Pos() < fl.End() {
			if inner == nil || fl.Pos() > inner.Pos() {
				inner = fl
			}
		}
	}
	if inner == nil {
		return
	}
	if obj.Pos() >= inner.Pos() && obj.Pos() < inner.End() {
		return // declared inside the closure: not a capture
	}
	pass.Reportf(id.Pos(),
		"closure captures pooled %s %s; the closure may run after Release returns it to the pool", name, id.Name)
}

func isPackageLevel(obj types.Object) bool {
	return obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
}
