package lint

import (
	"go/types"
	"reflect"
)

// Cross-package facts, the lightweight analogue of go/analysis facts.
//
// An analyzer running on a package may attach a Fact to any
// types.Object it can see — typically an exported declaration, since
// only those are referenceable downstream. When a dependent package is
// analyzed later (Run processes packages in dependency order, and the
// loader type-checks every module-local package exactly once so object
// identity holds across package boundaries), the same analyzer imports
// those facts to reason about declarations it did not itself visit:
// "this const is a registered mesh header", "this type is pooled",
// "this name is already registered as a counter".
//
// Facts are namespaced per analyzer: headerreg cannot see metricdecl's
// facts. The reserved "pooled" namespace carries the //meshvet:pooled
// directive markings the framework itself exports before any analyzer
// runs (see Run), so every analyzer can ask about pooled types through
// Pass.pooledType without re-parsing directives.

// Fact is a marker interface for fact types. Implementations must be
// pointer types so ImportObjectFact can fill the caller's copy.
type Fact interface{ AFact() }

// ObjectFact pairs an object with one fact attached to it.
type ObjectFact struct {
	Object types.Object
	Fact   Fact
}

// pooledNS is the reserved fact namespace for //meshvet:pooled type
// markings, exported by the framework during directive parsing.
const pooledNS = "pooled"

// PooledFact marks a type declaration as pool-recycled
// (//meshvet:pooled). It lives in the reserved "pooled" namespace.
type PooledFact struct{}

func (*PooledFact) AFact() {}

type factKey struct {
	ns  string
	obj types.Object
}

// factStore holds every fact exported during one Run, in deterministic
// insertion order (packages are processed in dependency order, files
// and declarations in source order).
type factStore struct {
	byKey map[factKey][]Fact
	order map[string][]ObjectFact
}

func newFactStore() *factStore {
	return &factStore{
		byKey: map[factKey][]Fact{},
		order: map[string][]ObjectFact{},
	}
}

func (s *factStore) export(ns string, obj types.Object, fact Fact) {
	k := factKey{ns, obj}
	s.byKey[k] = append(s.byKey[k], fact)
	s.order[ns] = append(s.order[ns], ObjectFact{Object: obj, Fact: fact})
}

// get returns the first fact on obj in ns whose dynamic type matches
// fact's, or nil.
func (s *factStore) get(ns string, obj types.Object, fact Fact) Fact {
	want := reflect.TypeOf(fact)
	for _, f := range s.byKey[factKey{ns, obj}] {
		if reflect.TypeOf(f) == want {
			return f
		}
	}
	return nil
}

// all returns every fact in ns with fact's dynamic type, in export
// order.
func (s *factStore) all(ns string, fact Fact) []ObjectFact {
	want := reflect.TypeOf(fact)
	var out []ObjectFact
	for _, of := range s.order[ns] {
		if reflect.TypeOf(of.Fact) == want {
			out = append(out, of)
		}
	}
	return out
}

// ExportObjectFact attaches fact to obj in the running analyzer's
// namespace, making it visible to the same analyzer in this and every
// dependent package.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if obj == nil || fact == nil {
		panic("lint: ExportObjectFact with nil object or fact")
	}
	p.store.export(p.Analyzer.Name, obj, fact)
}

// ImportObjectFact copies into fact the fact of fact's type previously
// exported on obj by this analyzer (in this package or a dependency),
// reporting whether one was found. fact must be a non-nil pointer.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if obj == nil {
		return false
	}
	got := p.store.get(p.Analyzer.Name, obj, fact)
	if got == nil {
		return false
	}
	rv := reflect.ValueOf(fact)
	rv.Elem().Set(reflect.ValueOf(got).Elem())
	return true
}

// AllObjectFacts lists every fact of example's dynamic type exported by
// this analyzer so far, in deterministic export order — declarations in
// dependencies first, then this package's in source order.
func (p *Pass) AllObjectFacts(example Fact) []ObjectFact {
	return p.store.all(p.Analyzer.Name, example)
}
