package lint

import (
	"go/ast"
	"go/types"
)

// Indexowned enforces the parallel-sweep ownership rule from PR 3:
// a closure handed to runIndexed runs concurrently with its siblings,
// so it must write only state owned by its index parameter — slots
// like out[i] or out[2*i+1] — never shared scalars, maps keyed by
// non-index values, or appends to shared slices. The race detector
// catches the timing-dependent subset of violations at runtime; this
// analyzer catches all of them at build time, including ones whose
// interleavings never fire under -race.
//
// Ownership is tracked by taint: the index parameter is owned, any
// local whose initializer mentions an owned value is owned (i := k/2),
// and a write through an index expression whose subscript mentions an
// owned value is legal. Everything declared inside the closure is its
// private state and free to mutate.
var Indexowned = &Analyzer{
	Name: "indexowned",
	Doc:  "inside runIndexed workers, flag writes to shared state not indexed by the worker's index parameter",
	Run:  runIndexowned,
}

func runIndexowned(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := calleeName(call.Fun)
			if !ok || name != "runIndexed" || len(call.Args) < 2 {
				return true
			}
			lit, ok := call.Args[1].(*ast.FuncLit)
			if !ok {
				return true
			}
			checkWorkerBody(pass, lit)
			return true
		})
	}
}

func checkWorkerBody(pass *Pass, lit *ast.FuncLit) {
	owned := map[types.Object]bool{}
	for _, field := range lit.Type.Params.List {
		for _, id := range field.Names {
			if obj := pass.Info.Defs[id]; obj != nil {
				owned[obj] = true
			}
		}
	}

	mentionsOwned := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && owned[pass.Info.ObjectOf(id)] {
				found = true
			}
			return !found
		})
		return found
	}

	// Propagate ownership into locals derived from the index (i := k/2,
	// lo := i*width). A few rounds cover transitive chains.
	for round := 0; round < 3; round++ {
		changed := false
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range assign.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.Info.Defs[id]
				if obj == nil || owned[obj] {
					continue
				}
				rhs := assign.Rhs[0]
				if len(assign.Rhs) == len(assign.Lhs) {
					rhs = assign.Rhs[i]
				}
				if mentionsOwned(rhs) {
					owned[obj] = true
					changed = true
				}
			}
			return true
		})
		if !changed {
			break
		}
	}

	declaredInside := func(obj types.Object) bool {
		return obj != nil && obj.Pos() >= lit.Pos() && obj.Pos() < lit.End()
	}

	checkWrite := func(pos ast.Node, target ast.Expr) {
		// Walk down the selector/index/star chain to the base
		// identifier, remembering whether any subscript on the way
		// mentions an owned value.
		ownedIndex := false
		for {
			switch t := target.(type) {
			case *ast.ParenExpr:
				target = t.X
			case *ast.StarExpr:
				target = t.X
			case *ast.SelectorExpr:
				target = t.X
			case *ast.IndexExpr:
				if mentionsOwned(t.Index) {
					ownedIndex = true
				}
				target = t.X
			default:
				id, ok := target.(*ast.Ident)
				if !ok {
					return // writes through call results etc.: out of scope
				}
				obj := pass.Info.ObjectOf(id)
				if obj == nil || declaredInside(obj) || ownedIndex {
					return
				}
				pass.Reportf(pos.Pos(),
					"runIndexed worker writes shared %s without indexing by its worker index; each worker may only write slots its index owns (PR 3 determinism invariant)",
					id.Name)
				return
			}
		}
	}

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkWrite(n, lhs)
			}
		case *ast.IncDecStmt:
			checkWrite(n, n.X)
		case *ast.SendStmt:
			if id, ok := baseIdent(n.Chan); ok {
				obj := pass.Info.ObjectOf(id)
				if obj != nil && !declaredInside(obj) {
					pass.Reportf(n.Pos(),
						"runIndexed worker sends on shared channel %s; results must land at the worker's own index, not flow through shared channels",
						id.Name)
				}
			}
		}
		return true
	})
}

func baseIdent(e ast.Expr) (*ast.Ident, bool) {
	for {
		switch t := e.(type) {
		case *ast.ParenExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.SelectorExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		default:
			id, ok := e.(*ast.Ident)
			return id, ok
		}
	}
}
