package lint

import (
	"go/token"
)

// Run executes analyzers over pkgs and returns the surviving
// diagnostics in deterministic (file, line, column, analyzer) order.
//
// It makes two passes: first every file's directives are parsed, which
// both builds the per-file suppression tables and collects the
// module-wide //meshvet:pooled type set (so poolescape sees pooled
// types across package boundaries); then each analyzer runs on each
// package and its reports are filtered through the suppression tables.
// Malformed-directive diagnostics carry the reserved analyzer name
// "directive" and cannot be suppressed.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	pooled := map[string]bool{}
	directives := map[string]*fileDirectives{}

	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			fd, pooledNames := parseDirectives(fset, f, pkg.Path, &diags)
			directives[fset.Position(f.Pos()).Filename] = fd
			for _, n := range pooledNames {
				pooled[n] = true
			}
		}
	}

	var raw []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Pooled:   pooled,
				diags:    &raw,
			}
			a.Run(pass)
		}
	}

	for _, d := range raw {
		if fd := directives[d.Pos.Filename]; fd.suppressed(d.Analyzer, d.Pos.Line) {
			continue
		}
		diags = append(diags, d)
	}
	sortDiagnostics(diags)
	return diags
}
