package lint

import (
	"go/token"
)

// Run executes analyzers over pkgs and returns the surviving
// diagnostics in deterministic (file, line, column, analyzer) order.
//
// pkgs must be in dependency order (LoadPackages returns them so):
// facts exported while analyzing a package are imported by the same
// analyzer when it later runs on a dependent package.
//
// It makes two passes: first every file's directives are parsed, which
// both builds the per-file suppression tables and exports a PooledFact
// for every //meshvet:pooled type (so poolescape sees pooled types
// across package boundaries); then each analyzer runs on each package
// and its reports are filtered through the suppression tables.
// Malformed-directive diagnostics carry the reserved analyzer name
// "directive" and cannot be suppressed.
//
// Packages marked FactsOnly (dependencies of the requested patterns,
// loaded so their fact exports are visible) are analyzed but report
// nothing: their own diagnostics belong to runs that match them.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	store := newFactStore()
	directives := map[string]*fileDirectives{}

	for _, pkg := range pkgs {
		var sink []Diagnostic
		for _, f := range pkg.Files {
			fd, pooledNames := parseDirectives(fset, f, pkg.Path, &sink)
			directives[fset.Position(f.Pos()).Filename] = fd
			for _, name := range pooledNames {
				if obj := pkg.Types.Scope().Lookup(name); obj != nil {
					store.export(pooledNS, obj, &PooledFact{})
				}
			}
		}
		if !pkg.FactsOnly {
			diags = append(diags, sink...)
		}
	}

	for _, pkg := range pkgs {
		var raw []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				store:    store,
				diags:    &raw,
			}
			a.Run(pass)
		}
		if pkg.FactsOnly {
			continue
		}
		for _, d := range raw {
			if fd := directives[d.Pos.Filename]; fd.suppressed(d.Analyzer, d.Pos.Line) {
				continue
			}
			diags = append(diags, d)
		}
	}
	sortDiagnostics(diags)
	return diags
}
