package lint

import (
	"go/ast"
	"go/types"
)

// Globalrand forbids drawing from process-global randomness. Every
// random draw in the simulator must come from a *rand.Rand constructed
// as rand.New(rand.NewSource(seed)) with the per-run seed threaded
// through the experiment config — that is what makes a sweep a pure
// function of (config, seed) and lets the chaos goldens demand
// byte-identical reruns.
//
// Flagged: (1) any math/rand package-level function except the
// constructors New, NewSource, NewZipf — rand.Intn, rand.Float64,
// rand.Shuffle, rand.Seed, ... all share the unseeded global source;
// (2) rand.New whose argument is not an inline rand.NewSource(...)
// call, so the seed's provenance is visible at the construction site.
var Globalrand = &Analyzer{
	Name: "globalrand",
	Doc:  "forbid math/rand global functions and un-seeded rand.New in simulation code",
	Run:  runGlobalrand,
}

var randConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func runGlobalrand(pass *Pass) {
	// randNewArgs records the first argument of every rand.New call so
	// the constructor check below can demand an inline NewSource.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if fn := randFunc(pass, n.Fun); fn != nil && fn.Name() == "New" {
					if len(n.Args) != 1 || !isRandNewSourceCall(pass, n.Args[0]) {
						pass.Reportf(n.Pos(),
							"rand.New must be seeded inline as rand.New(rand.NewSource(seed)) with a config-threaded seed")
					}
				}
			case *ast.Ident:
				fn, ok := pass.Info.Uses[n].(*types.Func)
				if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "math/rand" {
					return true
				}
				if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
					return true // methods on *rand.Rand are the sanctioned pattern
				}
				if randConstructors[fn.Name()] {
					return true
				}
				pass.Reportf(n.Pos(),
					"rand.%s draws from the process-global source; use the per-run *rand.Rand seeded from the experiment config",
					fn.Name())
			}
			return true
		})
	}
}

// randFunc resolves a call target to a math/rand package-level
// function, or nil.
func randFunc(pass *Pass, fun ast.Expr) *types.Func {
	var id *ast.Ident
	switch e := fun.(type) {
	case *ast.SelectorExpr:
		id = e.Sel
	case *ast.Ident:
		id = e
	default:
		return nil
	}
	fn, ok := pass.Info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "math/rand" {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return nil
	}
	return fn
}

func isRandNewSourceCall(pass *Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := randFunc(pass, call.Fun)
	return fn != nil && fn.Name() == "NewSource"
}
