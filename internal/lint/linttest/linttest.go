// Package linttest is meshvet's analogue of
// golang.org/x/tools/go/analysis/analysistest: it runs analyzers over
// a testdata package and checks the reported diagnostics against
// `// want "regexp"` comments in the sources.
//
// Expectation syntax, per line:
//
//	code() // want "first diagnostic re" "second diagnostic re"
//
// Every diagnostic on a line must match one unclaimed want-pattern on
// that line and every want-pattern must be claimed by exactly one
// diagnostic, so both false positives and false negatives fail the
// test. A line with a violation plus a //meshvet:allow directive and
// no want comment asserts the suppression path end to end.
//
// An anchor may relocate the expectation: `// want@-1 "re"` claims a
// diagnostic one line above the comment (needed when the diagnostic
// lands on a comment-only line, which cannot hold a second comment).
// An anchor that resolves outside the file — before line 1 or past the
// last line — is a harness error, not a silent never-matching want.
package linttest

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"meshlayer/internal/lint"
)

// wantRe accepts an optional relative-line anchor: `// want@-1 "re"`
// claims a diagnostic one line above the comment. Directives that are
// themselves malformed produce diagnostics on comment-only lines, and
// a line comment cannot share its line with a second comment, so those
// expectations live on the next line and point back up.
var wantRe = regexp.MustCompile(`//\s*want(@[+-]?\d+)?\s+((?:"(?:[^"\\]|\\.)*"\s*)+)`)
var wantArgRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

type want struct {
	file    string
	line    int
	pattern *regexp.Regexp
	claimed bool
}

// Run loads the single package in dir and applies analyzers, failing t
// on any mismatch between reported diagnostics and want comments.
func Run(t *testing.T, dir string, analyzers ...*lint.Analyzer) {
	t.Helper()
	problems, err := run(dir, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Error(p)
	}
}

// run is the testing.T-free core: it returns one problem string per
// unexpected or missing diagnostic, or an error when the package or
// its want comments cannot be processed at all.
func run(dir string, analyzers []*lint.Analyzer) ([]string, error) {
	fset := token.NewFileSet()
	pkg, err := lint.LoadDir(fset, dir, "meshvet/testdata/"+filepath.Base(dir))
	if err != nil {
		return nil, fmt.Errorf("loading %s: %v", dir, err)
	}
	diags := lint.Run(fset, []*lint.Package{pkg}, analyzers)

	wants, err := collectWants(fset, dir)
	if err != nil {
		return nil, err
	}

	var problems []string
	for _, d := range diags {
		if w := claim(wants, d.Pos.Filename, d.Pos.Line, d.Message); w == nil {
			problems = append(problems, fmt.Sprintf("unexpected diagnostic: %s", d))
		}
	}
	for _, w := range wants {
		if !w.claimed {
			problems = append(problems, fmt.Sprintf("%s:%d: no diagnostic matching %q", w.file, w.line, w.pattern))
		}
	}
	return problems, nil
}

func claim(wants []*want, file string, line int, msg string) *want {
	for _, w := range wants {
		if !w.claimed && w.file == file && w.line == line && w.pattern.MatchString(msg) {
			w.claimed = true
			return w
		}
	}
	return nil
}

func collectWants(fset *token.FileSet, dir string) ([]*want, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var wants []*want
	for _, ent := range ents { // ReadDir sorts by name: deterministic want order
		if !strings.HasSuffix(ent.Name(), ".go") {
			continue
		}
		fname := filepath.Join(dir, ent.Name())
		f, err := parser.ParseFile(fset, fname, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		lastLine := fset.File(f.Pos()).LineCount()
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					if strings.Contains(c.Text, "want ") && strings.Contains(c.Text, `"`) {
						return nil, fmt.Errorf("%s: malformed want comment: %s", fname, c.Text)
					}
					continue
				}
				pos := fset.Position(c.Pos())
				line := pos.Line
				if m[1] != "" {
					off, err := strconv.Atoi(m[1][1:])
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want anchor %q", fname, pos.Line, m[1])
					}
					line += off
				}
				if line < 1 || line > lastLine {
					return nil, fmt.Errorf("%s:%d: want anchor %q resolves to line %d, outside the file (1..%d)",
						fname, pos.Line, m[1], line, lastLine)
				}
				for _, q := range wantArgRe.FindAllString(m[2], -1) {
					unq, err := strconv.Unquote(q)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want pattern %s: %v", fname, pos.Line, q, err)
					}
					re, err := regexp.Compile(unq)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", fname, pos.Line, unq, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: line, pattern: re})
				}
			}
		}
	}
	return wants, nil
}
