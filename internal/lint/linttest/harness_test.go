package linttest

import (
	"go/ast"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"meshlayer/internal/lint"
)

// boomAnalyzer reports at every identifier spelled "boom" — a
// deterministic diagnostic source for exercising the harness itself.
var boomAnalyzer = &lint.Analyzer{
	Name: "boomtest",
	Doc:  "reports every identifier named boom",
	Run: func(p *lint.Pass) {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && id.Name == "boom" {
					p.Reportf(id.Pos(), "boom here")
				}
				return true
			})
		}
	},
}

// writePkg materializes one-file packages for the harness to load.
func writePkg(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestWantOnFirstLine anchors an expectation on line 1 of the file —
// the package clause — both directly and via a want@-1 from line 2.
func TestWantOnFirstLine(t *testing.T) {
	dir := writePkg(t, `package boom // want "boom here"
`)
	problems, err := run(dir, []*lint.Analyzer{boomAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Errorf("want on first line must claim the diagnostic, got %q", problems)
	}
}

func TestWantAnchoredToFirstLine(t *testing.T) {
	dir := writePkg(t, `package boom
// want@-1 "boom here"
`)
	problems, err := run(dir, []*lint.Analyzer{boomAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Errorf("want@-1 resolving to line 1 must claim the diagnostic, got %q", problems)
	}
}

// TestWantOnLastLine puts the expectation on the final source line.
func TestWantOnLastLine(t *testing.T) {
	dir := writePkg(t, `package p

var boom = 1 // want "boom here"`)
	problems, err := run(dir, []*lint.Analyzer{boomAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Errorf("want on the last line must claim the diagnostic, got %q", problems)
	}
}

func TestWantAnchoredToLastLine(t *testing.T) {
	dir := writePkg(t, `package p

// want@+1 "boom here"
var boom = 1`)
	problems, err := run(dir, []*lint.Analyzer{boomAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Errorf("want@+1 resolving to the last line must claim the diagnostic, got %q", problems)
	}
}

// TestAnchorBeforeFileStart and TestAnchorPastFileEnd pin the boundary
// contract: an anchor resolving outside the file is a harness error —
// not a panic, and not a silently never-matching expectation.
func TestAnchorBeforeFileStart(t *testing.T) {
	dir := writePkg(t, `package p
// want@-5 "never matches"
var x = 1
`)
	_, err := run(dir, []*lint.Analyzer{boomAnalyzer})
	if err == nil || !strings.Contains(err.Error(), "outside the file") {
		t.Fatalf("anchor resolving before line 1 must error, got %v", err)
	}
}

func TestAnchorPastFileEnd(t *testing.T) {
	dir := writePkg(t, `package p
// want@+10 "never matches"
var x = 1
`)
	_, err := run(dir, []*lint.Analyzer{boomAnalyzer})
	if err == nil || !strings.Contains(err.Error(), "outside the file") {
		t.Fatalf("anchor resolving past the last line must error, got %v", err)
	}
}

// TestUnexpectedAndMissing pins the two mismatch directions: an
// unclaimed diagnostic and an unclaimed want are separate problems.
func TestUnexpectedAndMissing(t *testing.T) {
	dir := writePkg(t, `package p

var boom = 1
var ok = 2 // want "boom here"
`)
	problems, err := run(dir, []*lint.Analyzer{boomAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 2 {
		t.Fatalf("problems = %q, want an unexpected-diagnostic and a no-diagnostic entry", problems)
	}
	if !strings.Contains(problems[0], "unexpected diagnostic") || !strings.Contains(problems[1], "no diagnostic matching") {
		t.Errorf("problems = %q, want [unexpected..., no diagnostic...]", problems)
	}
}

// TestMalformedWantComment: a comment that looks like a want but does
// not parse is an error, not a silently ignored expectation.
func TestMalformedWantComment(t *testing.T) {
	dir := writePkg(t, `package p

var boom = 1 // want "unterminated
`)
	_, err := run(dir, []*lint.Analyzer{boomAnalyzer})
	if err == nil || !strings.Contains(err.Error(), "malformed want comment") {
		t.Fatalf("malformed want must error, got %v", err)
	}
}
