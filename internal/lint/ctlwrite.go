package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Ctlwrite enforces the PR 6 control-plane invariant: with distribution
// enabled, a sidecar routes on the snapshot the control plane pushed to
// it, so the only code allowed to mutate that routing state is the push
// path itself (ControlPlane setters staging updates, the distributor
// applying acknowledged pushes). A direct write anywhere else —
// poking a ControlPlane policy map, swapping a Sidecar's agent,
// editing a pushed Snapshot in place — silently desynchronizes a
// sidecar from the version-numbered state the server believes it has,
// which is exactly the bug class the versioned protocol exists to
// rule out.
//
// Protected state: fields of ControlPlane, sidecarAgent, Snapshot, and
// ewSummaryTable (PR 7: a regional control plane's learned view of
// peer-region capacity — the east-west routing state the failover
// ladder spills onto, mutable only through the summary push path),
// plus the Sidecar.ctrl agent pointer. Methods of a protected type may
// mutate their own receiver's state (that is the push path); everyone
// else needs a //meshvet:allow ctlwrite with justification — e.g.
// instant-propagation registration installing the bootstrap snapshot.
var Ctlwrite = &Analyzer{
	Name: "ctlwrite",
	Doc:  "flag direct mutation of sidecar routing state outside the control-plane push path",
	Run:  runCtlwrite,
}

// ctlProtectedTypes is the set of struct types whose fields form the
// distributed routing state.
var ctlProtectedTypes = map[string]bool{
	"ControlPlane":   true,
	"sidecarAgent":   true,
	"Snapshot":       true,
	"ewSummaryTable": true,
}

// ctlPkgAllowed limits name matching to the packages that actually
// define the protected state, so an unrelated type that happens to be
// called Snapshot elsewhere is not caught.
func ctlPkgAllowed(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	return path == "meshlayer/internal/mesh" ||
		path == "meshlayer/internal/ctrlplane" ||
		strings.HasPrefix(path, "meshvet/testdata/")
}

// ctlNamed unwraps pointers and returns the underlying named type.
func ctlNamed(t types.Type) (*types.Named, bool) {
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return named, ok
}

// ctlProtected reports whether e is a value of a protected type.
func ctlProtected(pass *Pass, e ast.Expr) (string, bool) {
	named, ok := ctlNamed(pass.TypeOf(e))
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj == nil || !ctlProtectedTypes[obj.Name()] || !ctlPkgAllowed(obj.Pkg()) {
		return "", false
	}
	return obj.Name(), true
}

func runCtlwrite(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if ok {
				checkCtlFunc(pass, fn)
			}
		}
	}
}

// checkCtlFunc inspects one top-level function. Closures inside it
// attribute to it: a helper closure inside a ControlPlane method is
// still the push path.
func checkCtlFunc(pass *Pass, fn *ast.FuncDecl) {
	recv := ""
	if fn.Recv != nil && len(fn.Recv.List) > 0 {
		if named, ok := ctlNamed(pass.TypeOf(fn.Recv.List[0].Type)); ok && named.Obj() != nil {
			recv = named.Obj().Name()
		}
	}
	if fn.Body == nil {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkCtlWrite(pass, recv, n, lhs)
			}
		case *ast.IncDecStmt:
			checkCtlWrite(pass, recv, n, n.X)
		}
		return true
	})
}

// checkCtlWrite walks the written expression root-wards. A write lands
// in protected state when any step dereferences into a protected type
// (sel.field, ptr deref, or an index into a protected container field).
func checkCtlWrite(pass *Pass, recv string, n ast.Node, target ast.Expr) {
	for {
		switch t := target.(type) {
		case *ast.ParenExpr:
			target = t.X
		case *ast.IndexExpr:
			target = t.X
		case *ast.StarExpr:
			if name, ok := ctlProtected(pass, t.X); ok && name != recv {
				reportCtl(pass, n, name)
				return
			}
			target = t.X
		case *ast.SelectorExpr:
			if name, ok := ctlProtected(pass, t.X); ok && name != recv {
				reportCtl(pass, n, name)
				return
			}
			if named, ok := ctlNamed(pass.TypeOf(t.X)); ok && named.Obj() != nil &&
				named.Obj().Name() == "Sidecar" && t.Sel.Name == "ctrl" &&
				ctlPkgAllowed(named.Obj().Pkg()) {
				reportCtl(pass, n, "Sidecar.ctrl")
				return
			}
			target = t.X
		default:
			return
		}
	}
}

func reportCtl(pass *Pass, n ast.Node, name string) {
	pass.Reportf(n.Pos(),
		"direct write to %s routing state bypasses the control-plane push path; mutate via ControlPlane setters so the change is versioned and pushed (//meshvet:allow ctlwrite <reason> for sanctioned sites)",
		name)
}
