package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Fluidstate pins the PR 8 FlowEngine hygiene rules — the ones whose
// violation shows up as a wrong rate (stale scratch), a corrupted
// transfer (pooled flow read after free), or a silently stuck
// simulation (orphaned completion timer), none of which fail loudly:
//
//  1. Scratch ownership. The per-NIC fluid scratch fields (fluidRate,
//     fluidCap, fluidCnt, fluidSeen) are owned by FlowEngine's
//     recompute cycle: only FlowEngine methods may write them.
//  2. Reset before rebuild. A FlowEngine method that rebuilds scratch
//     state (writes any non-zero value into it) must first reset all
//     four fields to their zero values — the previous active set's
//     numbers are garbage for the new one.
//  3. No use after free. Once a fluid flow is handed to
//     FlowEngine.free it belongs to the pool; reading it afterwards
//     reads the next transfer's state. Capture what the continuation
//     needs (the callback, the id) before freeing. The check is
//     textual within the enclosing function, matching the engine's
//     straight-line free sites.
//  4. Cancel before re-arm. The engine's single completion timer may
//     only be replaced by a fresh timer after the pending one is
//     cancelled in the same function — an orphaned completion fires
//     into a recomputed flow set and completes the wrong flow. (This
//     is the demotion-path discipline: every demotion funnels through
//     a refresh that cancels before re-arming.)
//
// The analyzer applies inside meshlayer/internal/simnet (and the
// meshvet testdata packages); the types are matched by name there.
var Fluidstate = &Analyzer{
	Name: "fluidstate",
	Doc:  "FlowEngine hygiene: scratch reset before rebuild, no pooled-flow use after free, completion timer cancelled before re-arm",
	Run:  runFluidstate,
}

// fluidScratchFields are the per-NIC scratch fields owned by
// FlowEngine.recompute.
var fluidScratchFields = map[string]bool{
	"fluidRate": true,
	"fluidCap":  true,
	"fluidCnt":  true,
	"fluidSeen": true,
}

func fluidPkgAllowed(path string) bool {
	return path == "meshlayer/internal/simnet" || strings.HasPrefix(path, "meshvet/testdata/")
}

// fluidNamedIs reports whether t (behind pointers) is the named type
// `name` declared in a fluidstate-scoped package.
func fluidNamedIs(pass *Pass, t types.Type, name string) bool {
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == name && obj.Pkg() != nil && fluidPkgAllowed(obj.Pkg().Path())
}

func runFluidstate(pass *Pass) {
	if !fluidPkgAllowed(pass.Pkg.Path()) {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				checkFluidFunc(pass, fn)
			}
		}
	}
}

func checkFluidFunc(pass *Pass, fn *ast.FuncDecl) {
	isEngineMethod := fn.Recv != nil && len(fn.Recv.List) > 0 &&
		fluidNamedIs(pass, pass.TypeOf(fn.Recv.List[0].Type), "FlowEngine")

	// Rule 1 + 2: collect scratch writes, split into resets (zero
	// value) and rebuilds (anything else).
	resetPos := map[string]token.Pos{} // field -> earliest reset position
	var firstBuild token.Pos
	var firstBuildField string
	noteWrite := func(field string, pos token.Pos, reset bool) {
		if !isEngineMethod {
			pass.Reportf(pos,
				"NIC fluid scratch field %s written outside a FlowEngine method; the scratch is owned by the engine's recompute cycle", field)
			return
		}
		if reset {
			if old, ok := resetPos[field]; !ok || pos < old {
				resetPos[field] = pos
			}
			return
		}
		if firstBuild == token.NoPos || pos < firstBuild {
			firstBuild, firstBuildField = pos, field
		}
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				field, ok := fluidScratchTarget(pass, lhs)
				if !ok {
					continue
				}
				reset := false
				if len(n.Lhs) == len(n.Rhs) && n.Tok == token.ASSIGN {
					reset = isZeroExpr(n.Rhs[i])
				}
				noteWrite(field, lhs.Pos(), reset)
			}
			checkFluidTimerArm(pass, fn, n)
		case *ast.IncDecStmt:
			if field, ok := fluidScratchTarget(pass, n.X); ok {
				noteWrite(field, n.X.Pos(), false)
			}
		}
		return true
	})

	if firstBuild != token.NoPos {
		for field := range fluidScratchFields {
			if pos, ok := resetPos[field]; !ok || pos >= firstBuild {
				pass.Reportf(firstBuild,
					"fluid scratch rebuild (%s) without first resetting %s; reset all four scratch fields before reuse — the previous flow set's values are stale",
					firstBuildField, field)
			}
		}
	}

	checkFluidUseAfterFree(pass, fn)
}

// fluidScratchTarget reports whether expr writes a fluid scratch field
// of a NIC, returning the field name.
func fluidScratchTarget(pass *Pass, expr ast.Expr) (string, bool) {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok || !fluidScratchFields[sel.Sel.Name] {
		return "", false
	}
	if !fluidNamedIs(pass, pass.TypeOf(sel.X), "NIC") {
		return "", false
	}
	return sel.Sel.Name, true
}

// isZeroExpr recognizes the zero values the reset idiom uses: 0, 0.0,
// false, and nil.
func isZeroExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.BasicLit:
		return e.Value == "0" || e.Value == "0.0"
	case *ast.Ident:
		return e.Name == "false" || e.Name == "nil"
	}
	return false
}

// checkFluidTimerArm enforces rule 4 on one assignment: replacing the
// engine's completion timer with a freshly scheduled one requires a
// textually earlier <recv>.timer.Cancel() in the same function.
// Assigning the zero Timer (a composite literal) is the "consumed"
// marker and is always allowed.
func checkFluidTimerArm(pass *Pass, fn *ast.FuncDecl, n *ast.AssignStmt) {
	if len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i, lhs := range n.Lhs {
		sel, ok := lhs.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "timer" || !fluidNamedIs(pass, pass.TypeOf(sel.X), "FlowEngine") {
			continue
		}
		if _, isLit := n.Rhs[i].(*ast.CompositeLit); isLit {
			continue
		}
		if !cancelledBefore(pass, fn, types.ExprString(sel), lhs.Pos()) {
			pass.Reportf(lhs.Pos(),
				"completion timer %s re-armed without cancelling the pending timer first; an orphaned completion fires into a recomputed flow set",
				types.ExprString(sel))
		}
	}
}

// cancelledBefore reports whether fn contains a call <target>.Cancel()
// at a position before pos.
func cancelledBefore(pass *Pass, fn *ast.FuncDecl, target string, pos token.Pos) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= pos {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Cancel" {
			return true
		}
		if types.ExprString(sel.X) == target {
			found = true
		}
		return true
	})
	return found
}

// checkFluidUseAfterFree enforces rule 3: after a variable is passed to
// FlowEngine.free, later uses of it in the same function are flagged,
// until (if ever) the variable is wholly reassigned.
func checkFluidUseAfterFree(pass *Pass, fn *ast.FuncDecl) {
	// freed maps a variable object to the end position of its free call.
	freed := map[types.Object]token.Pos{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "free" || !fluidNamedIs(pass, pass.TypeOf(sel.X), "FlowEngine") {
			return true
		}
		if id, ok := call.Args[0].(*ast.Ident); ok {
			if obj := pass.Info.ObjectOf(id); obj != nil {
				if old, dup := freed[obj]; !dup || call.End() < old {
					freed[obj] = call.End()
				}
			}
		}
		return true
	})
	if len(freed) == 0 {
		return
	}

	// A whole-variable reassignment re-validates the handle from that
	// point on.
	revalidated := map[types.Object]token.Pos{}
	reassigned := map[*ast.Ident]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.Info.ObjectOf(id)
			if obj == nil {
				continue
			}
			if end, wasFreed := freed[obj]; wasFreed && id.Pos() > end {
				reassigned[id] = true
				if old, ok := revalidated[obj]; !ok || id.Pos() < old {
					revalidated[obj] = id.Pos()
				}
			}
		}
		return true
	})

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || reassigned[id] {
			return true
		}
		obj := pass.Info.ObjectOf(id)
		if obj == nil {
			return true
		}
		end, wasFreed := freed[obj]
		if !wasFreed || id.Pos() <= end {
			return true
		}
		if rev, ok := revalidated[obj]; ok && id.Pos() > rev {
			return true
		}
		pass.Reportf(id.Pos(),
			"pooled flow %s used after FlowEngine.free returned it to the pool; capture what the continuation needs before freeing", id.Name)
		return true
	})
}
