package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// Headerreg pins the mesh-header provenance invariant that PRs 5–7
// made load-bearing: every `x-mesh-*` header the mesh stamps, reads,
// or strips (`x-mesh-degraded` honesty, `x-mesh-region` provenance,
// the east-west and control-plane envelopes) is a named constant in
// one registry — internal/mesh/headers.go — and every use goes
// through that constant. A raw "x-mesh-..." string anywhere else is
// one typo away from a header that silently never matches, which is
// exactly how a degraded response loses its provenance stamp.
//
// Mechanically:
//
//   - A const whose string value starts with "x-mesh-" declared in the
//     registry file exports a MeshHeaderFact, making the registration
//     visible to every dependent package.
//   - A const with an x-mesh value declared anywhere else is flagged:
//     registrations live in the registry.
//   - Any other string literal starting with "x-mesh-" is flagged.
//     When the literal equals a registered header's value the
//     diagnostic carries a suggested fix replacing the literal with
//     the registry constant (`meshvet -fix` applies it).
//
// The registry file is headers.go in meshlayer/internal/mesh (or in a
// meshvet/testdata package, for the analyzer's own test suite).
var Headerreg = &Analyzer{
	Name: "headerreg",
	Doc:  "require every x-mesh-* header string to be a constant in the internal/mesh header registry, referenced through it",
	Run:  runHeaderreg,
}

// MeshHeaderFact marks a const as a registered mesh header.
type MeshHeaderFact struct {
	Value string
}

func (*MeshHeaderFact) AFact() {}

// meshHeaderPrefix is the namespace the registry owns.
const meshHeaderPrefix = "x-mesh-"

// headerRegistryFile reports whether the file at filename, in the
// package being analyzed, is the header registry.
func headerRegistryFile(pkgPath, filename string) bool {
	if filepath.Base(filename) != "headers.go" {
		return false
	}
	return pkgPath == "meshlayer/internal/mesh" || strings.HasPrefix(pkgPath, "meshvet/testdata/")
}

func runHeaderreg(pass *Pass) {
	// Pass 1: collect registrations (and misplaced registrations) from
	// const declarations, remembering every literal that forms a const
	// value so pass 2 does not double-report it.
	constLits := map[*ast.BasicLit]bool{}
	for _, f := range pass.Files {
		filename := pass.Fset.Position(f.Pos()).Filename
		inRegistry := headerRegistryFile(pass.Pkg.Path(), filename)
		seen := map[string]*ast.Ident{} // registry value -> first declaring ident
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					obj, ok := pass.Info.Defs[name].(*types.Const)
					if !ok || obj.Val().Kind() != constant.String {
						continue
					}
					v := constant.StringVal(obj.Val())
					// The bare prefix is a namespace, not a header name;
					// prefix-matching code may hold it without registering.
					if !strings.HasPrefix(v, meshHeaderPrefix) || v == meshHeaderPrefix {
						continue
					}
					if i < len(vs.Values) {
						if lit, ok := vs.Values[i].(*ast.BasicLit); ok {
							constLits[lit] = true
						}
					}
					if !inRegistry {
						pass.Reportf(name.Pos(),
							"header constant %s = %q declared outside the header registry; mesh headers are registered in internal/mesh/headers.go",
							name.Name, v)
						continue
					}
					if prev, dup := seen[v]; dup {
						pass.Reportf(name.Pos(),
							"header %q registered twice (%s and %s); one header, one constant", v, prev.Name, name.Name)
						continue
					}
					seen[v] = name
					pass.ExportObjectFact(obj, &MeshHeaderFact{Value: v})
				}
			}
		}
	}

	// The full registry visible here: facts from dependencies plus the
	// ones this package just exported.
	registered := pass.AllObjectFacts((*MeshHeaderFact)(nil))

	// Pass 2: every other x-mesh string literal is a violation.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING || constLits[lit] {
				return true
			}
			v, err := stringLitValue(lit.Value)
			if err != nil || !strings.HasPrefix(v, meshHeaderPrefix) || v == meshHeaderPrefix {
				return true
			}
			if obj := headerConstFor(registered, v); obj != nil {
				ref := headerConstRef(pass, f, obj)
				pass.ReportfFix(lit.Pos(), lit.End(), ref,
					"raw mesh header %q; use the registry constant %s", v, ref)
			} else {
				pass.Reportf(lit.Pos(),
					"raw mesh header %q is not in the header registry; add a constant to internal/mesh/headers.go and use it", v)
			}
			return true
		})
	}
}

// headerConstFor returns the const object registered for value v.
func headerConstFor(registered []ObjectFact, v string) types.Object {
	for _, of := range registered {
		if of.Fact.(*MeshHeaderFact).Value == v {
			return of.Object
		}
	}
	return nil
}

// headerConstRef renders the reference to a registry constant as seen
// from file f: bare in the registry's own package, qualified by the
// file's import name for it elsewhere.
func headerConstRef(pass *Pass, f *ast.File, obj types.Object) string {
	if obj.Pkg() == pass.Pkg {
		return obj.Name()
	}
	pkgName := obj.Pkg().Name()
	for _, imp := range f.Imports {
		path, err := stringLitValue(imp.Path.Value)
		if err != nil || path != obj.Pkg().Path() {
			continue
		}
		if imp.Name != nil {
			pkgName = imp.Name.Name
		}
		break
	}
	return pkgName + "." + obj.Name()
}

// stringLitValue unquotes a string literal's source text.
func stringLitValue(src string) (string, error) {
	v := constant.MakeFromLiteral(src, token.STRING, 0)
	if v.Kind() != constant.String {
		return "", errNotString
	}
	return constant.StringVal(v), nil
}

var errNotString = &notStringError{}

type notStringError struct{}

func (*notStringError) Error() string { return "not a string literal" }
