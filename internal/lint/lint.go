// Package lint is meshvet's analysis framework: a small, stdlib-only
// reimplementation of the golang.org/x/tools/go/analysis surface
// (Analyzer, Pass, positional diagnostics) plus the loader and comment
// directives the suite needs. It exists because this module takes no
// external dependencies; the five analyzers it hosts turn the
// simulator's determinism, pooling, and concurrency invariants — held
// by convention since PRs 2–3 — into machine-checked law.
//
// Invariants enforced (see DESIGN.md "Machine-checked invariants"):
//
//   - walltime:   sim code never reads the wall clock (time.Now & co).
//   - globalrand: sim code never draws from process-global randomness.
//   - mapiter:    no order-dependent work inside `range` over a map.
//   - poolescape: pooled values (//meshvet:pooled) are not retained
//     beyond their Release/free point.
//   - indexowned: runIndexed workers write only slots owned by their
//     index parameter.
//   - ctlwrite:   sidecar routing state is mutated only through the
//     control-plane push path.
//   - headerreg:  every x-mesh-* header string is a constant in the
//     header registry (internal/mesh/headers.go) and is referenced
//     through it.
//   - fluidstate: FlowEngine hygiene — per-NIC fluid scratch reset
//     before rebuild, no use of a pooled flow after free, completion
//     timer cancelled before re-arm.
//   - metricdecl: metric names are named constants at registration
//     sites, follow the naming convention, and register as one kind.
//   - timerown:   a captured simnet.Timer is cancelled somewhere or
//     handed to exactly one owner.
//
// Since PR 9 the framework also carries cross-package facts (facts.go):
// analyzers export facts about declarations ("this const is a
// registered mesh header", "this const names a counter"), and the same
// analyzer imports them when it later runs on a dependent package. Run
// processes packages in dependency order and the loader type-checks
// each module-local package exactly once, so a types.Object is the one
// identity for a declaration everywhere it is referenced.
//
// Two comment directives configure the suite in source:
//
//	//meshvet:allow <analyzer> <reason>   suppress, with justification,
//	                                      on this line and the next
//	//meshvet:pooled                      mark a type as pool-recycled
//
// Malformed directives (unknown verb or analyzer, missing reason,
// //meshvet:pooled detached from a type declaration) are themselves
// reported as diagnostics rather than silently ignored.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named check. Run inspects a single type-checked
// package via its Pass and reports findings with Pass.Reportf.
type Analyzer struct {
	Name string // short lowercase identifier, used in //meshvet:allow
	Doc  string // one-paragraph description of the invariant
	Run  func(*Pass)
}

// All is the registry of every meshvet analyzer, in reporting order.
// Directive validation accepts exactly these names (plus the reserved
// "directive" pseudo-analyzer used for malformed-directive reports).
var All = []*Analyzer{Walltime, Globalrand, Mapiter, Poolescape, Indexowned, Ctlwrite, Headerreg, Fluidstate, Metricdecl, Timerown}

// DirectiveAnalyzerName labels diagnostics produced by directive
// validation itself. It is reserved: //meshvet:allow cannot suppress it.
const DirectiveAnalyzerName = "directive"

func knownAnalyzer(name string) bool {
	for _, a := range All {
		if a.Name == name {
			return true
		}
	}
	return false
}

// Pass carries one package's syntax and type information to an
// analyzer, mirroring analysis.Pass.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	store *factStore
	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos attributed to the running
// analyzer.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportfFix records a diagnostic carrying a machine-applicable
// suggested edit: replace source bytes [pos, end) with newText. The
// offsets in the fix are resolved file offsets, so `meshvet -fix` (and
// any -json consumer) can apply it without re-parsing.
func (p *Pass) ReportfFix(pos, end token.Pos, newText string, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Fix: &SuggestedFix{
			Start:   p.Fset.Position(pos),
			End:     p.Fset.Position(end),
			NewText: newText,
		},
	})
}

// TypeOf returns the type of expression e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if t, ok := p.Info.Types[e]; ok {
		return t.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Info.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// SuggestedFix is a machine-applicable edit: replace the source bytes
// from Start.Offset to End.Offset with NewText.
type SuggestedFix struct {
	Start   token.Position
	End     token.Position
	NewText string
}

// Diagnostic is one finding at a resolved source position, optionally
// carrying a suggested edit.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	Fix      *SuggestedFix
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// pooledType reports whether t (possibly behind pointers) is a named
// type marked //meshvet:pooled, returning its display name. The
// marking travels as a framework fact in the reserved "pooled"
// namespace, so cross-package retention (e.g. mesh code holding a
// simnet.Packet) resolves through object identity.
func (p *Pass) pooledType(t types.Type) (string, bool) {
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	if p.store.get(pooledNS, obj, (*PooledFact)(nil)) != nil {
		return obj.Name(), true
	}
	return "", false
}
