// Package fluidstatetest seeds violations for the fluidstate analyzer.
// The type names mirror internal/simnet's fluid fast path (FlowEngine,
// NIC, Timer) so the name-based scoping matches.
package fluidstatetest

type Timer struct{ gen int }

func (t Timer) Cancel() {}

// After stands in for Scheduler.After.
func After(d int, f func()) Timer { return Timer{} }

// NIC carries the per-link fluid scratch fields the engine's recompute
// cycle owns.
type NIC struct {
	fluidRate float64
	fluidCap  float64
	fluidCnt  int
	fluidSeen bool
}

// fluidFlow is a pooled flow record.
type fluidFlow struct {
	id     int
	onDone func()
}

// FlowEngine mirrors the real engine: a flow pool and one completion
// timer.
type FlowEngine struct {
	nics  []*NIC
	pool  []*fluidFlow
	timer Timer
}

func (e *FlowEngine) free(f *fluidFlow) { e.pool = append(e.pool, f) }
func (e *FlowEngine) alloc() *fluidFlow { return &fluidFlow{} }
func (e *FlowEngine) onTimer()          {}

// Rule 1: scratch belongs to the engine; outside writers are flagged.
func poke(n *NIC) {
	n.fluidRate = 1 // want "outside a FlowEngine method"
}

// Rule 2 violation: rebuilds scratch with fluidSeen never reset.
func (e *FlowEngine) recomputeStale(n *NIC) {
	n.fluidRate = 0
	n.fluidCap = 0
	n.fluidCnt = 0
	n.fluidCnt++ // want "without first resetting fluidSeen"
}

// Rule 2 satisfied: all four fields reset before the rebuild.
func (e *FlowEngine) recompute(n *NIC) {
	n.fluidRate = 0
	n.fluidCap = 0
	n.fluidCnt = 0
	n.fluidSeen = false
	n.fluidCnt++
	n.fluidRate = 2.5
}

// Rule 3 violation: reading a pooled flow after freeing it.
func (e *FlowEngine) complete(f *fluidFlow) {
	cb := f.onDone
	e.free(f)
	cb()
	_ = f.id // want "used after FlowEngine.free"
}

// Rule 3 satisfied: a whole-variable reassignment revalidates the
// handle.
func (e *FlowEngine) recycle(f *fluidFlow) {
	e.free(f)
	f = e.alloc()
	f.id = 1
}

// Rule 4 violation: replacing the completion timer over a pending one.
func (e *FlowEngine) rearmBad(d int) {
	e.timer = After(d, e.onTimer) // want "re-armed without cancelling"
}

// Rule 4 satisfied: cancel, then re-arm.
func (e *FlowEngine) rearmGood(d int) {
	e.timer.Cancel()
	e.timer = After(d, e.onTimer)
}

// Assigning the zero Timer is the consumed marker, always allowed.
func (e *FlowEngine) consume() {
	e.timer = Timer{}
}

// Sanctioned: a post-free audit that only logs the stale id.
func (e *FlowEngine) audit(f *fluidFlow) {
	e.free(f)
	//meshvet:allow fluidstate audit log reads the recycled id only
	_ = f.id
}
