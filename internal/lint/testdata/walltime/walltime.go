// Package walltimetest seeds violations for the walltime analyzer.
package walltimetest

import "time"

// simStep stands in for sim-path code: every wall-clock read or timer
// below must be flagged.
func simStep() time.Duration {
	start := time.Now()           // want "time.Now reads the wall clock"
	time.Sleep(time.Millisecond)  // want "time.Sleep blocks on the wall clock"
	ch := time.After(time.Second) // want "time.After schedules on the wall clock"
	<-ch
	t := time.NewTimer(time.Second) // want "time.NewTimer schedules on the wall clock"
	t.Stop()
	k := time.NewTicker(time.Second) // want "time.NewTicker schedules on the wall clock"
	k.Stop()
	return time.Since(start) // want "time.Since reads the wall clock"
}

// durations shows that time.Duration units and arithmetic stay free:
// they are units, not clocks.
func durations(d time.Duration) time.Duration {
	return 3*time.Millisecond + d.Round(time.Microsecond)
}

// hostSide shows a justified exception: the allow directive suppresses
// the diagnostic on its own line and the next.
func hostSide() time.Time {
	//meshvet:allow walltime host-side harness timing for this testdata fixture
	return time.Now()
}
