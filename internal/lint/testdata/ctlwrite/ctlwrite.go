// Package ctlwritetest seeds violations for the ctlwrite analyzer:
// the struct names mirror the real mesh types so the name-based
// protection matches.
package ctlwritetest

// ControlPlane mirrors mesh.ControlPlane: versioned routing intent.
type ControlPlane struct {
	routes  map[string]string
	version uint64
}

// Snapshot mirrors ctrlplane.Snapshot: a sidecar's last-acked state.
type Snapshot struct {
	Version   uint64
	Resources map[string]any
}

// sidecarAgent mirrors mesh.sidecarAgent.
type sidecarAgent struct {
	snap *Snapshot
}

// Sidecar mirrors mesh.Sidecar, with the protected ctrl field.
type Sidecar struct {
	name string
	ctrl *sidecarAgent
}

// SetRoute is the push path: a ControlPlane method may mutate its own
// receiver's state freely.
func (cp *ControlPlane) SetRoute(svc, rule string) {
	cp.routes[svc] = rule
	cp.version++
}

// Apply is likewise sanctioned: Snapshot methods maintain the snapshot.
func (s *Snapshot) Apply(version uint64, res map[string]any) {
	s.Version = version
	for k, v := range res {
		s.Resources[k] = v
	}
}

// rogue pokes routing state from outside the push path: every write
// below must be flagged.
func rogue(cp *ControlPlane, sc *Sidecar, snap *Snapshot) {
	cp.routes["backend"] = "v2" // want "direct write to ControlPlane routing state"
	cp.version++                // want "direct write to ControlPlane routing state"
	sc.ctrl = nil               // want "direct write to Sidecar.ctrl"
	sc.ctrl.snap = snap         // want "direct write to sidecarAgent routing state"
	snap.Version = 7            // want "direct write to Snapshot routing state"
	*snap = Snapshot{}          // want "direct write to Snapshot routing state"
	snap.Resources["backend"] = "eps" // want "direct write to Snapshot routing state"
}

// rogueMethod shows that being a method is not enough — the receiver
// must be the protected type being written.
func (sc *Sidecar) rogueMethod(cp *ControlPlane) {
	cp.version = 0 // want "direct write to ControlPlane routing state"
	sc.ctrl = nil  // want "direct write to Sidecar.ctrl"
	sc.name = "ok" // unprotected field: fine
}

// sanctioned shows the suppression path: instant-propagation
// registration installs the bootstrap snapshot by hand.
func sanctioned(sc *Sidecar, agent *sidecarAgent) {
	//meshvet:allow ctlwrite registration installs the bootstrap snapshot outside the push loop
	sc.ctrl = agent
}

// reads shows that reading protected state is always fine.
func reads(cp *ControlPlane, sc *Sidecar) (string, uint64) {
	return cp.routes["backend"], sc.ctrl.snap.Version
}
