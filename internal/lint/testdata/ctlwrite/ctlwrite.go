// Package ctlwritetest seeds violations for the ctlwrite analyzer:
// the struct names mirror the real mesh types so the name-based
// protection matches.
package ctlwritetest

// ControlPlane mirrors mesh.ControlPlane: versioned routing intent.
type ControlPlane struct {
	routes  map[string]string
	version uint64
}

// Snapshot mirrors ctrlplane.Snapshot: a sidecar's last-acked state.
type Snapshot struct {
	Version   uint64
	Resources map[string]any
}

// sidecarAgent mirrors mesh.sidecarAgent.
type sidecarAgent struct {
	snap *Snapshot
}

// Sidecar mirrors mesh.Sidecar, with the protected ctrl field.
type Sidecar struct {
	name string
	ctrl *sidecarAgent
}

// SetRoute is the push path: a ControlPlane method may mutate its own
// receiver's state freely.
func (cp *ControlPlane) SetRoute(svc, rule string) {
	cp.routes[svc] = rule
	cp.version++
}

// Apply is likewise sanctioned: Snapshot methods maintain the snapshot.
func (s *Snapshot) Apply(version uint64, res map[string]any) {
	s.Version = version
	for k, v := range res {
		s.Resources[k] = v
	}
}

// rogue pokes routing state from outside the push path: every write
// below must be flagged.
func rogue(cp *ControlPlane, sc *Sidecar, snap *Snapshot) {
	cp.routes["backend"] = "v2"       // want "direct write to ControlPlane routing state"
	cp.version++                      // want "direct write to ControlPlane routing state"
	sc.ctrl = nil                     // want "direct write to Sidecar.ctrl"
	sc.ctrl.snap = snap               // want "direct write to sidecarAgent routing state"
	snap.Version = 7                  // want "direct write to Snapshot routing state"
	*snap = Snapshot{}                // want "direct write to Snapshot routing state"
	snap.Resources["backend"] = "eps" // want "direct write to Snapshot routing state"
}

// rogueMethod shows that being a method is not enough — the receiver
// must be the protected type being written.
func (sc *Sidecar) rogueMethod(cp *ControlPlane) {
	cp.version = 0 // want "direct write to ControlPlane routing state"
	sc.ctrl = nil  // want "direct write to Sidecar.ctrl"
	sc.name = "ok" // unprotected field: fine
}

// sanctioned shows the suppression path: instant-propagation
// registration installs the bootstrap snapshot by hand.
func sanctioned(sc *Sidecar, agent *sidecarAgent) {
	//meshvet:allow ctlwrite registration installs the bootstrap snapshot outside the push loop
	sc.ctrl = agent
}

// reads shows that reading protected state is always fine.
func reads(cp *ControlPlane, sc *Sidecar) (string, uint64) {
	return cp.routes["backend"], sc.ctrl.snap.Version
}

// ewSummaryTable mirrors mesh.ewSummaryTable: a regional control
// plane's learned per-region capacity summaries — the east-west
// routing state the failover ladder spills onto.
type ewSummaryTable struct {
	counts map[string]map[string]int
}

// apply is the summary push path: the table's own methods maintain it.
func (t *ewSummaryTable) apply(region string, counts map[string]int) {
	t.counts[region] = counts
}

// regionalCP holds a summary table the way the distributor does.
type regionalCP struct {
	summary *ewSummaryTable
}

// rogueSummary pokes east-west routing state from outside the summary
// push path: every write below must be flagged.
func rogueSummary(t *ewSummaryTable, cp *regionalCP) {
	t.counts["region-b"] = nil                      // want "direct write to ewSummaryTable routing state"
	t.counts["region-b"]["backend"] = 3             // want "direct write to ewSummaryTable routing state"
	cp.summary.counts = map[string]map[string]int{} // want "direct write to ewSummaryTable routing state"
	*t = ewSummaryTable{}                           // want "direct write to ewSummaryTable routing state"
	cp.summary = nil                                // swapping the holder's pointer is not a table write: fine
}

// readsSummary shows reads of summary state are fine, and method calls
// route through the push path.
func readsSummary(t *ewSummaryTable) int {
	t.apply("region-b", map[string]int{"backend": 1})
	return t.counts["region-b"]["backend"]
}
