// Package metricdecltest seeds violations for the metricdecl analyzer.
// Registry mirrors internal/metrics.Registry so the name-based scoping
// matches.
package metricdecltest

type Labels map[string]string

type Registry struct{}

func (r *Registry) Counter(name string, labels Labels) *Counter       { return &Counter{} }
func (r *Registry) Gauge(name string, labels Labels) *Gauge           { return &Gauge{} }
func (r *Registry) Histogram(name string, labels Labels) *Histogram   { return &Histogram{} }
func (r *Registry) ObserveDuration(name string, labels Labels, d int) {}

// observe forwards its name parameter — Registry's own methods are the
// forwarding layer and are exempt from the const rule.
func (r *Registry) observe(name string) { r.Counter(name, nil).Inc() }

type Counter struct{}

func (c *Counter) Inc() {}

type Gauge struct{}

func (g *Gauge) Set(v float64) {}

type Histogram struct{}

const (
	reqTotal        = "mesh_requests_total"
	reqTotalDup     = "mesh_requests_total"
	badPrefix       = "svc_requests_total"
	counterNoSuffix = "mesh_requests"
	histNoSuffix    = "mesh_latency"
	waitSeconds     = "mesh_wait_seconds"
)

func register(r *Registry) {
	r.Counter(reqTotal, nil).Inc() // first registration: exports the fact
	r.Counter(reqTotal, nil).Inc() // same constant, same kind: fine
	r.ObserveDuration(waitSeconds, nil, 5)

	r.Counter("mesh_inline_total", nil).Inc() // want "must be a named constant"
	r.Counter(badPrefix, nil).Inc()           // want "naming convention"
	r.Counter(counterNoSuffix, nil).Inc()     // want "must end in _total"
	_ = r.Histogram(histNoSuffix, nil)        // want "must end in _duration or _seconds"

	r.Gauge(reqTotal, nil).Set(1)     // want "already registered as a counter"
	r.Counter(reqTotalDup, nil).Inc() // want "already registered through constant"

	// Sanctioned: a migration shim keeps the literal until the old
	// dashboard family is renamed.
	//meshvet:allow metricdecl legacy dashboard still scrapes this name
	r.Counter("mesh_legacy_total", nil).Inc()
}
