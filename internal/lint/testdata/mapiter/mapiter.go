// Package mapitertest seeds violations for the mapiter analyzer.
package mapitertest

import (
	"fmt"
	"sort"
)

// sched stands in for the simulator scheduler.
type sched struct{}

func (sched) After(d int, fn func()) {}

// scheduleFromMap enqueues one event per map entry: the events land on
// the clock in random iteration order.
func scheduleFromMap(s sched, m map[string]int) {
	for _, d := range m {
		s.After(d, func() {}) // want "After call inside range over map schedules events in random iteration order"
	}
}

// collectUnsorted accumulates results in iteration order and never
// sorts them: classic golden drift.
func collectUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "append to out inside range over map accumulates in random iteration order"
	}
	return out
}

// collectSorted is the sanctioned pattern: collect, sort, then use.
func collectSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// printFromMap writes output per entry in random order.
func printFromMap(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want "fmt.Printf inside range over map emits output in random iteration order"
	}
}

// sliceRange shows ranging over a slice stays free.
func sliceRange(s []int) []int {
	var out []int
	for _, v := range s {
		out = append(out, v)
	}
	return out
}

// allowed shows a justified exception: accumulation into a
// commutative aggregate is order-independent.
func allowed(m map[string]int) []int {
	var out []int
	for _, v := range m {
		//meshvet:allow mapiter order-independent testdata fixture exercising suppression
		out = append(out, v)
	}
	return out
}
