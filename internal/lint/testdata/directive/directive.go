// Package directivetest seeds malformed meshvet directives: each one
// must surface as a diagnostic, never be silently ignored. The
// expectations use linttest's `want@-1` anchor because a malformed
// directive's diagnostic lands on a comment-only line.
package directivetest

import "time"

// missingEverything has an allow with no analyzer and no reason.
func missingEverything() time.Time {
	//meshvet:allow
	// want@-1 "//meshvet:allow needs an analyzer name and a reason"
	return time.Now() // want "time.Now reads the wall clock"
}

// missingReason names an analyzer but gives no justification, so the
// suppression must NOT take effect even on the adjacent line.
func missingReason() time.Time {
	//meshvet:allow walltime
	// want@-1 "//meshvet:allow walltime is missing its reason"
	return time.Now() // want "time.Now reads the wall clock"
}

// unknownAnalyzer misspells the analyzer name.
func unknownAnalyzer() time.Time {
	//meshvet:allow waltime typo in the analyzer name
	// want@-1 "//meshvet:allow names unknown analyzer \"waltime\""
	return time.Now() // want "time.Now reads the wall clock"
}

// unknownVerb uses a directive meshvet does not define.
func unknownVerb() time.Time {
	//meshvet:suppress walltime wrong verb entirely
	// want@-1 "unknown meshvet directive \"suppress\""
	return time.Now() // want "time.Now reads the wall clock"
}

// detachedPooled is not attached to any type declaration.
func detachedPooled() {
	//meshvet:pooled
	// want@-1 "//meshvet:pooled must be attached to a type declaration"
}

// emptyVerb is the bare prefix with no verb at all.
func emptyVerb() time.Time {
	//meshvet:
	// want@-1 "unknown meshvet directive"
	return time.Now() // want "time.Now reads the wall clock"
}

// reasonIsMoreDirective: an allow whose "reason" is itself another
// directive-looking token still counts as a reason — the validator
// checks presence, not prose quality. Control case: no diagnostic.
func reasonIsMoreDirective() time.Time {
	//meshvet:allow walltime meshvet:allow is not recursive
	return time.Now()
}

// v2AnalyzersKnown: the fact-era analyzers are valid allow targets and
// must not trip the unknown-analyzer validation.
func v2AnalyzersKnown() {
	//meshvet:allow headerreg control case, the name must be recognized
	//meshvet:allow timerown control case, the name must be recognized
}

// wellFormed is the control: a valid allow with analyzer and reason
// suppresses the diagnostic on the next line, and a valid pooled
// marker on a type produces nothing.
func wellFormed() time.Time {
	//meshvet:allow walltime valid directive control case
	return time.Now()
}

// tracked is a correctly marked pooled type: the marker itself must
// produce no diagnostic.
//
//meshvet:pooled
type tracked struct{ id int }

var _ = tracked{id: 1}
