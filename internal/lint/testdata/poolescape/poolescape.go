// Package poolescapetest seeds violations for the poolescape analyzer.
package poolescapetest

// packet is this fixture's pool-recycled type.
//
//meshvet:pooled
type packet struct {
	id      uint64
	payload []byte
}

type holder struct {
	last *packet
}

var lastSeen *packet

// fieldStore retains the packet in a struct field.
func fieldStore(h *holder, p *packet) {
	h.last = p // want "pooled packet stored into field last may outlive its Release"
}

// globalStore retains the packet in a package-level variable.
func globalStore(p *packet) {
	lastSeen = p // want "pooled packet stored into package-level lastSeen outlives every Release"
}

// elementStore retains the packet in a slice element.
func elementStore(s []*packet, p *packet) {
	s[0] = p // want "pooled packet stored into a slice/map element may outlive its Release"
}

// channelSend hands the packet to another owner.
func channelSend(ch chan *packet, p *packet) {
	ch <- p // want "pooled packet sent on a channel escapes its owner"
}

// sliceAppend retains the packet in a growable slice.
func sliceAppend(batch []*packet, p *packet) []*packet {
	return append(batch, p) // want "pooled packet appended to a slice is retained past this call"
}

// closureCapture lets a deferred closure read the packet after the
// caller may have released it.
func closureCapture(p *packet, schedule func(func())) {
	schedule(func() {
		_ = p.id // want "closure captures pooled packet p"
	})
}

// localUse shows that reading fields and passing the value down the
// stack stays free: the call frame is the sanctioned scope.
func localUse(p *packet) uint64 {
	q := p
	return q.id
}

// pool is the sanctioned retainer, annotated like the real pools.
type pool struct {
	free []*packet
}

func (pl *pool) put(p *packet) {
	pl.free = append(pl.free, p) //meshvet:allow poolescape this free list IS the pool: the one sanctioned retainer
}

// --- flow-scheduler shapes ---
//
// The fluid-flow engine recycles flow records through a free list and
// filters its active set in place; these fixtures pin the analyzer
// behavior its pooling discipline relies on.

// fluidflow mirrors the engine's pool-recycled flow record.
//
//meshvet:pooled
type fluidflow struct {
	id   int64
	rate float64
	done func()
}

type engine struct {
	active []*fluidflow
	free   []*fluidflow
}

// batchCollect mirrors a completion/demotion sweep: collecting pooled
// flows into a fresh batch slice is retention and needs an annotation.
func (e *engine) batchCollect(hit func(*fluidflow) bool) []*fluidflow {
	var victims []*fluidflow
	for _, f := range e.active {
		if hit(f) {
			victims = append(victims, f) // want "pooled fluidflow appended to a slice is retained past this call"
		}
	}
	return victims
}

// inPlaceFilter mirrors the engine's keep-filter: refilling the active
// set it already owns is sanctioned, recorded by the annotation.
func (e *engine) inPlaceFilter(hit func(*fluidflow) bool) {
	keep := e.active[:0]
	for _, f := range e.active {
		if !hit(f) {
			keep = append(keep, f) //meshvet:allow poolescape in-place filter of the engine's own active set
		}
	}
	e.active = keep
}

// callbackCapture mirrors deferring a demotion callback that captures
// the pooled flow itself instead of copying out what it needs first.
func callbackCapture(f *fluidflow, after func(func())) {
	after(func() {
		f.done() // want "closure captures pooled fluidflow f"
	})
}

// recycleFlow is the engine's free list, the sanctioned retainer.
func (e *engine) recycleFlow(f *fluidflow) {
	e.free = append(e.free, f) //meshvet:allow poolescape this free list IS the pool: the one sanctioned retainer
}
