// Package timerowntest seeds violations for the timerown analyzer:
// the Timer type mirrors simnet.Timer so the name-based matching
// applies.
package timerowntest

type Timer struct{ gen int }

func (t Timer) Cancel() {}

type sched struct{}

func (s *sched) After(d int, f func()) Timer { return Timer{} }

type conn struct {
	retxTimer Timer
	fbTimer   Timer
	done      bool
}

// Arming straight into a field without cancelling the pending timer.
func (c *conn) armBad(s *sched) {
	c.retxTimer = s.After(1, func() {}) // want "without first cancelling"
}

// Cancel first (a no-op when the field is empty), then arm.
func (c *conn) armGood(s *sched) {
	c.retxTimer.Cancel()
	c.retxTimer = s.After(1, func() {})
}

// Captured and dropped on the floor: nobody can ever cancel it.
func leak(s *sched) {
	t := s.After(1, func() {}) // want "captured but never cancelled"
	_ = t
}

// The three sanctioned fates of a captured timer.
func cancelled(s *sched) {
	t := s.After(1, func() {})
	t.Cancel()
}

func returned(s *sched) Timer {
	t := s.After(1, func() {})
	return t
}

func owned(s *sched, c *conn) {
	t := s.After(1, func() {})
	c.retxTimer = t
}

// Two owning fields race to cancel the same timer.
func doubleOwner(s *sched, c *conn) {
	t := s.After(1, func() {}) // want "stored into 2 fields"
	c.retxTimer = t
	c.fbTimer = t
}

// Discarding the result is the explicit fire-and-forget form; the
// callback guards itself on the settled flag.
func fireAndForget(s *sched, c *conn) {
	s.After(1, func() { c.done = true })
}

// Sanctioned: the timer is handed to a registry that cancels it at
// teardown, which the analyzer cannot see.
func sanctioned(s *sched) {
	//meshvet:allow timerown teardown registry cancels every enrolled timer
	t := s.After(1, func() {})
	enroll(t)
}

func enroll(Timer) {}
