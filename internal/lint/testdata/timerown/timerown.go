// Package timerowntest seeds violations for the timerown analyzer:
// the Timer type mirrors simnet.Timer so the name-based matching
// applies.
package timerowntest

type Timer struct{ gen int }

func (t Timer) Cancel() {}

type sched struct{}

func (s *sched) After(d int, f func()) Timer { return Timer{} }

type conn struct {
	retxTimer Timer
	fbTimer   Timer
	done      bool
}

// Arming straight into a field without cancelling the pending timer.
func (c *conn) armBad(s *sched) {
	c.retxTimer = s.After(1, func() {}) // want "without first cancelling"
}

// Cancel first (a no-op when the field is empty), then arm.
func (c *conn) armGood(s *sched) {
	c.retxTimer.Cancel()
	c.retxTimer = s.After(1, func() {})
}

// Captured and dropped on the floor: nobody can ever cancel it.
func leak(s *sched) {
	t := s.After(1, func() {}) // want "captured but never cancelled"
	_ = t
}

// The three sanctioned fates of a captured timer.
func cancelled(s *sched) {
	t := s.After(1, func() {})
	t.Cancel()
}

func returned(s *sched) Timer {
	t := s.After(1, func() {})
	return t
}

func owned(s *sched, c *conn) {
	t := s.After(1, func() {})
	c.retxTimer = t
}

// Two owning fields race to cancel the same timer.
func doubleOwner(s *sched, c *conn) {
	t := s.After(1, func() {}) // want "stored into 2 fields"
	c.retxTimer = t
	c.fbTimer = t
}

// Discarding the result is the explicit fire-and-forget form; the
// callback guards itself on the settled flag.
func fireAndForget(s *sched, c *conn) {
	s.After(1, func() { c.done = true })
}

// The backoff re-arm shape (the control plane's retry timer): the
// cancel may be separated from the arm by bookkeeping statements — the
// discipline is positional within the function, not adjacency.
func (c *conn) backoffRearm(s *sched) {
	c.retxTimer.Cancel()
	c.done = false
	c.retxTimer = s.After(2, func() {})
}

// The lease shape gone wrong: a slot-grant arms its lease behind a
// guard without cancelling the previous grant's timer — the pending
// lease is orphaned and fires into the next holder's state.
func (c *conn) leaseBad(s *sched, held bool) {
	if held {
		c.fbTimer = s.After(3, func() { c.done = true }) // want "without first cancelling"
	}
}

// Lease done right: every re-grant cancels before arming, and the
// callback guards itself on owner state (the generation-check idiom).
func (c *conn) leaseGood(s *sched, held bool) {
	if held {
		c.fbTimer.Cancel()
		c.fbTimer = s.After(3, func() {
			if c.done {
				return
			}
		})
	}
}

// Sanctioned: the timer is handed to a registry that cancels it at
// teardown, which the analyzer cannot see.
func sanctioned(s *sched) {
	//meshvet:allow timerown teardown registry cancels every enrolled timer
	t := s.After(1, func() {})
	enroll(t)
}

func enroll(Timer) {}
