// Package globalrandtest seeds violations for the globalrand analyzer.
package globalrandtest

import "math/rand"

// globals draws from the process-global source: every call must be
// flagged.
func globals() int {
	n := rand.Intn(10)                 // want "rand.Intn draws from the process-global source"
	f := rand.Float64()                // want "rand.Float64 draws from the process-global source"
	rand.Shuffle(n, func(i, j int) {}) // want "rand.Shuffle draws from the process-global source"
	return n + int(f)
}

// seeded is the sanctioned pattern: a per-run source seeded from a
// config value, with the seed's provenance visible at the call site.
func seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10) // methods on an owned *rand.Rand are free
}

// laundered hides the source's construction, so the seed's provenance
// is invisible at the rand.New site.
func laundered(src rand.Source) *rand.Rand {
	return rand.New(src) // want "rand.New must be seeded inline"
}

// allowed shows a justified exception.
func allowed() int {
	//meshvet:allow globalrand testdata fixture exercising the suppression path
	return rand.Intn(10)
}
