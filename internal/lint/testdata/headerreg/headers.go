// headers.go is this package's header registry: x-mesh-* constants
// declared here export MeshHeaderFact registrations; one header, one
// constant.
package headerregtest

const (
	HeaderSource   = "x-mesh-source"
	HeaderPriority = "x-mesh-priority"
	HeaderDup      = "x-mesh-source" // want "registered twice"
)
