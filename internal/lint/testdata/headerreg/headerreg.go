// Package headerregtest seeds violations for the headerreg analyzer:
// registrations outside the registry file, raw literals with and
// without a registered constant to point at, and the sanctioned
// suppression path.
package headerregtest

type headers map[string]string

func (h headers) Set(k, v string)     { h[k] = v }
func (h headers) Get(k string) string { return h[k] }

// A registration that wandered out of headers.go.
const strayHeader = "x-mesh-stray" // want "declared outside the header registry"

func stamp(h headers) {
	// Through the registry: fine.
	h.Set(HeaderSource, "gateway")
	// Raw spelling of a registered header: flagged, with a suggested
	// fix pointing at the constant.
	h.Set("x-mesh-source", "gateway") // want "use the registry constant HeaderSource"
	// Raw header nobody registered: flagged without a fix.
	h.Set("x-mesh-unregistered", "1") // want "not in the header registry"
	// Sanctioned: a chaos probe stamping a header the mesh must ignore.
	//meshvet:allow headerreg probe header must never match a real one
	h.Set("x-mesh-hypothetical", "1")
	// The bare prefix is a namespace, not a header name.
	_ = h.Get("x-mesh-")
}
