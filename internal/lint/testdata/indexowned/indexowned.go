// Package indexownedtest seeds violations for the indexowned analyzer.
package indexownedtest

// runIndexed mimics the root package's bounded worker pool: fn(i) runs
// concurrently for every index, so the analyzer inspects each closure
// literal handed to any function of this name.
func runIndexed(n int, fn func(i int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

type result struct {
	lat   float64
	count int
}

// ownedWrites is the sanctioned pattern: every write lands in a slot
// addressed by the worker's own index, directly or derived.
func ownedWrites(out []result, halves []result) {
	runIndexed(2*len(out), func(k int) {
		i := k / 2 // derived from the index: still owned
		out[i].lat = float64(k)
		out[k/2].count++
		halves[i] = out[i]
		local := 0 // closure-local state is private
		local++
		_ = local
	})
}

// sharedWrites breaks ownership in every way the analyzer tracks.
func sharedWrites(out []result, byName map[string]int, results chan int) {
	total := 0
	var all []int
	runIndexed(len(out), func(i int) {
		total++              // want "runIndexed worker writes shared total without indexing by its worker index"
		all = append(all, i) // want "runIndexed worker writes shared all without indexing by its worker index"
		byName["x"] = i      // want "runIndexed worker writes shared byName without indexing by its worker index"
		out[0].count = i     // want "runIndexed worker writes shared out without indexing by its worker index"
		results <- i         // want "runIndexed worker sends on shared channel results"
	})
	_ = total
}

// allowed shows a justified exception: a commutative, mutex-guarded
// aggregate can tolerate unordered writes.
func allowed(out []result) {
	total := 0
	runIndexed(len(out), func(i int) {
		//meshvet:allow indexowned testdata fixture: commutative aggregate guarded elsewhere
		total += i
	})
	_ = total
}
