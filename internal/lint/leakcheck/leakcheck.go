// Package leakcheck fails tests that abandon goroutines. The parallel
// sweep pool (runIndexed) must always wind down to zero workers before
// returning — a worker blocked on a hung simulation or an unclosed
// channel would silently serialize later sweeps and, under -race,
// bleed state between tests. The indexowned analyzer proves workers
// write only their own slots; this check proves the workers themselves
// go away.
package leakcheck

import (
	"runtime"
	"testing"
	"time"
)

// slack tolerates runtime-internal goroutines (GC workers, the test
// framework's timeout monitor) that come and go independently of the
// code under test.
const slack = 2

// Check snapshots the goroutine count and registers a cleanup that
// fails t if, after a grace period for normal unwinding, the count
// stays above the snapshot plus slack. Call it first thing in the
// test.
func Check(t testing.TB) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		var after int
		deadline := 50 // ~500ms total grace
		for i := 0; i < deadline; i++ {
			after = runtime.NumGoroutine()
			if after <= before+slack {
				return
			}
			//meshvet:allow walltime host-side test harness polling; the sim clock does not exist here
			time.Sleep(10 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Errorf("goroutine leak: %d before, %d after (slack %d); stacks:\n%s",
			before, after, slack, buf[:n])
	})
}
