package lint

import (
	"go/ast"
	"go/types"
)

// Walltime forbids reading or waiting on the wall clock. The whole
// simulator advances on the virtual clock owned by simnet.Scheduler —
// a single time.Now in a sim path silently couples results to host
// load and makes the chaos-smoke goldens irreproducible. Host-side
// harness code (benchmark timing in engine.go, cmd/ tooling) annotates
// its few legitimate uses with //meshvet:allow walltime <reason>.
//
// Banned: time.Now, Since, Until, Sleep, After, AfterFunc, Tick,
// NewTimer, NewTicker. time.Duration arithmetic and constants remain
// free — they are units, not clocks.
var Walltime = &Analyzer{
	Name: "walltime",
	Doc:  "forbid wall-clock reads and timers (time.Now, time.Sleep, ...) in simulation code",
	Run:  runWalltime,
}

var bannedTime = map[string]string{
	"Now":       "reads the wall clock",
	"Since":     "reads the wall clock",
	"Until":     "reads the wall clock",
	"Sleep":     "blocks on the wall clock",
	"After":     "schedules on the wall clock",
	"AfterFunc": "schedules on the wall clock",
	"Tick":      "schedules on the wall clock",
	"NewTimer":  "schedules on the wall clock",
	"NewTicker": "schedules on the wall clock",
}

func runWalltime(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.Info.Uses[id]
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			why, banned := bannedTime[fn.Name()]
			if !banned {
				return true
			}
			pass.Reportf(id.Pos(),
				"time.%s %s; sim code must use the scheduler's virtual clock (annotate host-side code with //meshvet:allow walltime <reason>)",
				fn.Name(), why)
			return true
		})
	}
}
