package lint_test

import (
	"testing"

	"meshlayer/internal/lint"
	"meshlayer/internal/lint/linttest"
)

// Each analyzer's testdata package seeds at least one positive case
// per rule plus one //meshvet:allow'd case, so both the detection and
// the suppression paths are pinned by `// want` annotations.

func TestWalltime(t *testing.T) {
	linttest.Run(t, "testdata/walltime", lint.Walltime)
}

func TestGlobalrand(t *testing.T) {
	linttest.Run(t, "testdata/globalrand", lint.Globalrand)
}

func TestMapiter(t *testing.T) {
	linttest.Run(t, "testdata/mapiter", lint.Mapiter)
}

func TestPoolescape(t *testing.T) {
	linttest.Run(t, "testdata/poolescape", lint.Poolescape)
}

func TestIndexowned(t *testing.T) {
	linttest.Run(t, "testdata/indexowned", lint.Indexowned)
}

func TestCtlwrite(t *testing.T) {
	linttest.Run(t, "testdata/ctlwrite", lint.Ctlwrite)
}

// TestDirectives runs the full suite over sources whose directives are
// malformed: every bad directive must surface as a diagnostic and must
// not suppress anything.
func TestDirectives(t *testing.T) {
	linttest.Run(t, "testdata/directive", lint.All...)
}

func TestHeaderreg(t *testing.T) {
	linttest.Run(t, "testdata/headerreg", lint.Headerreg)
}

func TestFluidstate(t *testing.T) {
	linttest.Run(t, "testdata/fluidstate", lint.Fluidstate)
}

func TestMetricdecl(t *testing.T) {
	linttest.Run(t, "testdata/metricdecl", lint.Metricdecl)
}

func TestTimerown(t *testing.T) {
	linttest.Run(t, "testdata/timerown", lint.Timerown)
}
