package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Mapiter flags order-dependent work inside `range` over a map — the
// classic golden-drift source: Go randomizes map iteration order per
// run, so scheduling an event, appending to a result slice, or
// printing inside such a loop yields output that differs between
// byte-identical reruns. The sanctioned pattern is collect → sort →
// iterate; an append whose target is sorted after the loop (sort.* or
// slices.Sort* in the same function) is recognized and not flagged.
var Mapiter = &Analyzer{
	Name: "mapiter",
	Doc:  "flag event scheduling, result appends, and output writes inside range-over-map without a sort",
	Run:  runMapiter,
}

// schedulingNames are callee names that enqueue work on the simulator
// clock; calling one per map entry schedules events in random order.
var schedulingNames = map[string]bool{
	"After":     true,
	"AfterFunc": true,
	"At":        true,
	"Schedule":  true,
}

func runMapiter(pass *Pass) {
	for _, f := range pass.Files {
		// Collect function bodies so each range statement can find its
		// innermost enclosing function for the sorted-after check.
		var bodies []*ast.BlockStmt
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					bodies = append(bodies, fn.Body)
				}
			case *ast.FuncLit:
				bodies = append(bodies, fn.Body)
			}
			return true
		})
		enclosing := func(pos token.Pos) *ast.BlockStmt {
			var best *ast.BlockStmt
			for _, b := range bodies {
				if b.Pos() <= pos && pos < b.End() {
					if best == nil || b.Pos() > best.Pos() {
						best = b
					}
				}
			}
			return best
		}

		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRangeBody(pass, rng, enclosing(rng.Pos()))
			return true
		})
	}
}

func checkMapRangeBody(pass *Pass, rng *ast.RangeStmt, fnBody *ast.BlockStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if name, ok := calleeName(n.Fun); ok && schedulingNames[name] {
				pass.Reportf(n.Pos(),
					"%s call inside range over map schedules events in random iteration order; iterate a sorted key slice", name)
			}
			if fn := fmtPrinter(pass, n.Fun); fn != "" {
				pass.Reportf(n.Pos(),
					"fmt.%s inside range over map emits output in random iteration order; iterate a sorted key slice", fn)
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass, call) || i >= len(n.Lhs) {
					continue
				}
				id, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.Info.ObjectOf(id)
				if obj == nil || insideRange(obj.Pos(), rng) {
					continue
				}
				if sortedAfter(pass, fnBody, rng, obj) {
					continue
				}
				pass.Reportf(n.Pos(),
					"append to %s inside range over map accumulates in random iteration order; sort %s after the loop or iterate sorted keys",
					id.Name, id.Name)
			}
		}
		return true
	})
}

func insideRange(pos token.Pos, rng *ast.RangeStmt) bool {
	return rng.Pos() <= pos && pos < rng.End()
}

func calleeName(fun ast.Expr) (string, bool) {
	switch e := fun.(type) {
	case *ast.SelectorExpr:
		return e.Sel.Name, true
	case *ast.Ident:
		return e.Name, true
	}
	return "", false
}

// fmtPrinter returns the function name if fun is an output-producing
// fmt function (Print*, Fprint*); Sprint* is pure and stays free.
func fmtPrinter(pass *Pass, fun ast.Expr) string {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return ""
	}
	switch fn.Name() {
	case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
		return fn.Name()
	}
	return ""
}

func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := pass.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// sortedAfter reports whether obj is passed to a sort.* / slices.*
// call after the range loop within the same function body — the
// collect-then-sort idiom that restores determinism.
func sortedAfter(pass *Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	if fnBody == nil {
		return false
	}
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, ok := a.(*ast.Ident); ok && pass.Info.ObjectOf(id) == obj {
					found = true
				}
				return !found
			})
		}
		return true
	})
	return found
}
