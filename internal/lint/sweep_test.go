package lint_test

import (
	"go/token"
	"testing"

	"meshlayer/internal/lint"
)

// TestRepoSweepClean runs every analyzer over the whole module — the
// same sweep as `go run ./cmd/meshvet ./...` — so plain `go test ./...`
// guards the determinism, pooling, and concurrency invariants even on
// machines that never invoke make lint. Any finding here either needs
// a real fix or a justified //meshvet:allow at the site.
func TestRepoSweepClean(t *testing.T) {
	if testing.Short() {
		t.Skip("module-wide type-check is not short")
	}
	fset := token.NewFileSet()
	pkgs, err := lint.LoadPackages(fset, "meshlayer/...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; the sweep should cover the whole module", len(pkgs))
	}
	diags := lint.Run(fset, pkgs, lint.All)
	for _, d := range diags {
		t.Errorf("%s", d.String())
	}
}
