package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// Timerown pins the PR 7 stuck-pipe bug class: a simnet.Timer that
// somebody captured and then lost track of. The east-west gateway
// wedge happened exactly this way — a timeout timer armed per forward
// and forgotten on one path, leaving the pipe stuck behind a
// partitioned peer. The rule, applied to the timer-heavy packages
// (internal/mesh, internal/transport, internal/ctrlplane):
//
//   - Discarding the Timer result of Scheduler.After/At is the
//     explicit fire-and-forget form: the callback must guard itself
//     (the settled/done flag idiom). Allowed.
//   - A Timer captured into a local must be cancellable: the enclosing
//     function must cancel it on some path, store it into exactly one
//     struct field (transferring ownership), or return it to the
//     caller. A captured-but-never-cancelled timer is a leak waiting
//     to fire; a timer stored into two fields has two owners racing to
//     cancel it.
//   - A Timer assigned directly into a struct field must be preceded,
//     in the same function, by Cancel on that same field: re-arming
//     over a possibly-pending timer orphans it. Cancel of a zero or
//     already-fired Timer is a free no-op, so the discipline costs
//     nothing where the field was empty.
var Timerown = &Analyzer{
	Name: "timerown",
	Doc:  "captured simnet.Timer values are cancelled, stored into exactly one owning field (after cancelling it), or returned",
	Run:  runTimerown,
}

func timerownPkgAllowed(path string) bool {
	switch path {
	case "meshlayer/internal/mesh", "meshlayer/internal/transport", "meshlayer/internal/ctrlplane":
		return true
	}
	return strings.HasPrefix(path, "meshvet/testdata/")
}

// isSimTimer reports whether t is the simnet.Timer type (or a
// testdata package's own Timer, for the analyzer's test suite).
func isSimTimer(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Name() != "Timer" || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == "meshlayer/internal/simnet" || strings.HasPrefix(path, "meshvet/testdata/")
}

func runTimerown(pass *Pass) {
	if !timerownPkgAllowed(pass.Pkg.Path()) {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				checkTimerFunc(pass, fn)
			}
		}
	}
}

func checkTimerFunc(pass *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isSimTimer(pass.TypeOf(call)) {
				continue
			}
			switch lhs := as.Lhs[i].(type) {
			case *ast.SelectorExpr:
				checkTimerFieldArm(pass, fn, lhs)
			case *ast.Ident:
				checkTimerLocal(pass, fn, lhs)
			}
		}
		return true
	})
}

// checkTimerFieldArm enforces cancel-before-re-arm on a direct field
// assignment.
func checkTimerFieldArm(pass *Pass, fn *ast.FuncDecl, lhs *ast.SelectorExpr) {
	if cancelledBefore(pass, fn, types.ExprString(lhs), lhs.Pos()) {
		return
	}
	pass.Reportf(lhs.Pos(),
		"timer armed into %s without first cancelling it; a pending timer would be orphaned — call %s.Cancel() before re-arming (a no-op when empty)",
		types.ExprString(lhs), types.ExprString(lhs))
}

// checkTimerLocal enforces the ownership rule on a timer captured into
// a local variable.
func checkTimerLocal(pass *Pass, fn *ast.FuncDecl, lhs *ast.Ident) {
	obj := pass.Info.ObjectOf(lhs)
	if obj == nil {
		return
	}
	cancelled := false
	returned := false
	fieldStores := map[string]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// <local>.Cancel()
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Cancel" {
				if id, ok := sel.X.(*ast.Ident); ok && pass.Info.ObjectOf(id) == obj {
					cancelled = true
				}
			}
		case *ast.AssignStmt:
			// field = <local>
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				id, ok := rhs.(*ast.Ident)
				if !ok || pass.Info.ObjectOf(id) != obj {
					continue
				}
				if sel, ok := n.Lhs[i].(*ast.SelectorExpr); ok {
					fieldStores[types.ExprString(sel)] = true
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if id, ok := res.(*ast.Ident); ok && pass.Info.ObjectOf(id) == obj {
					returned = true
				}
			}
		}
		return true
	})
	if len(fieldStores) > 1 {
		owners := make([]string, 0, len(fieldStores))
		for o := range fieldStores {
			owners = append(owners, o)
		}
		sort.Strings(owners)
		pass.Reportf(lhs.Pos(),
			"timer %s stored into %d fields (%s); exactly one owner may hold (and cancel) a timer",
			lhs.Name, len(owners), strings.Join(owners, ", "))
		return
	}
	if cancelled || returned || len(fieldStores) == 1 {
		return
	}
	pass.Reportf(lhs.Pos(),
		"timer %s is captured but never cancelled, stored into an owning field, or returned; drop the result for fire-and-forget, or cancel it on every settling path",
		lhs.Name)
}
