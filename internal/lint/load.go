package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Name  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// LoadPackages resolves patterns with `go list` (so ./... behaves
// exactly like the go tool: testdata and ignored dirs excluded), then
// parses and type-checks each matched package from source. Test files
// are not loaded: the invariants gate sim/production code, and tests
// legitimately use wall time for harness timeouts.
//
// The process working directory must be inside the module, because
// both `go list` and the source importer resolve module-local import
// paths through the go command.
func LoadPackages(fset *token.FileSet, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-json=ImportPath,Name,Dir,GoFiles"}, patterns...)
	cmd := exec.Command("go", args...)
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}

	type listPkg struct {
		ImportPath string
		Name       string
		Dir        string
		GoFiles    []string
	}
	var metas []listPkg
	dec := json.NewDecoder(&out)
	for dec.More() {
		var lp listPkg
		if err := dec.Decode(&lp); err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		metas = append(metas, lp)
	}
	sort.Slice(metas, func(i, j int) bool { return metas[i].ImportPath < metas[j].ImportPath })

	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	for _, m := range metas {
		if len(m.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range m.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(m.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		pkg, info, err := typeCheck(fset, m.ImportPath, files, imp)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", m.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path:  m.ImportPath,
			Name:  m.Name,
			Dir:   m.Dir,
			Files: files,
			Types: pkg,
			Info:  info,
		})
	}
	return pkgs, nil
}

// LoadDir parses and type-checks the single package rooted at dir
// without consulting `go list` — the loader the linttest harness uses
// for testdata packages (which the go tool deliberately ignores).
// Testdata packages may import only the standard library.
func LoadDir(fset *token.FileSet, dir, asPath string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var pkgName string
	var files []*ast.File
	for _, ent := range ents { // ReadDir sorts by name: deterministic file order
		name := ent.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkgName = f.Name.Name
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go source in %s", dir)
	}
	imp := importer.ForCompiler(fset, "source", nil)
	pkg, info, err := typeCheck(fset, asPath, files, imp)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", dir, err)
	}
	return &Package{Path: asPath, Name: pkgName, Dir: dir, Files: files, Types: pkg, Info: info}, nil
}

func typeCheck(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}
