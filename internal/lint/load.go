package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Name  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// FactsOnly marks a dependency loaded so its fact exports are
	// visible to the matched packages; Run analyzes it but discards its
	// diagnostics.
	FactsOnly bool
}

// LoadPackages resolves patterns with `go list` (so ./... behaves
// exactly like the go tool: testdata and ignored dirs excluded), then
// parses and type-checks each matched package from source. Test files
// are not loaded: the invariants gate sim/production code, and tests
// legitimately use wall time for harness timeouts.
//
// Packages are returned in dependency order (imports before
// importers, ties broken by import path), and each matched package is
// type-checked exactly once: when package B imports already-checked
// package A, the loader hands the checker A's *types.Package instead
// of letting the source importer re-check A from scratch. That both
// halves the wall-clock of a module-wide sweep and gives every
// declaration a single types.Object identity across packages — the
// property the cross-package fact store (facts.go) relies on.
//
// Non-stdlib dependencies of the matched set are loaded too, marked
// FactsOnly: a single-package run still sees the facts its imports
// export (the registered mesh headers, the pooled types), exactly as
// if the whole module had been analyzed — only the diagnostics are
// scoped to what the patterns matched.
//
// The process working directory must be inside the module, because
// both `go list` and the fallback source importer (stdlib, and any
// dependency outside the loaded set) resolve import paths through
// the go command.
func LoadPackages(fset *token.FileSet, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// First resolve which import paths the patterns themselves match —
	// those report diagnostics; everything -deps adds is facts-only.
	matchCmd := exec.Command("go", append([]string{"list"}, patterns...)...)
	var matchOut, errb bytes.Buffer
	matchCmd.Stdout = &matchOut
	matchCmd.Stderr = &errb
	if err := matchCmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}
	matched := make(map[string]bool)
	for _, p := range strings.Fields(matchOut.String()) {
		matched[p] = true
	}

	args := append([]string{"list", "-deps", "-json=ImportPath,Name,Dir,GoFiles,Imports,Standard"}, patterns...)
	cmd := exec.Command("go", args...)
	var out bytes.Buffer
	errb.Reset()
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list -deps %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}

	type listPkg struct {
		ImportPath string
		Name       string
		Dir        string
		GoFiles    []string
		Imports    []string
		Standard   bool
	}
	var metas []listPkg
	dec := json.NewDecoder(&out)
	for dec.More() {
		var lp listPkg
		if err := dec.Decode(&lp); err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if !lp.Standard && len(lp.GoFiles) > 0 {
			metas = append(metas, lp)
		}
	}
	sort.Slice(metas, func(i, j int) bool { return metas[i].ImportPath < metas[j].ImportPath })

	// Topological order over the matched set: depth-first over each
	// package's in-set imports (already sorted by go list), roots in
	// import-path order, so the result is deterministic.
	index := make(map[string]int, len(metas))
	for i, m := range metas {
		index[m.ImportPath] = i
	}
	order := make([]int, 0, len(metas))
	state := make([]int, len(metas)) // 0 unvisited, 1 visiting, 2 done
	var visit func(i int) error
	visit = func(i int) error {
		switch state[i] {
		case 2:
			return nil
		case 1:
			return fmt.Errorf("import cycle through %s", metas[i].ImportPath)
		}
		state[i] = 1
		for _, imp := range metas[i].Imports {
			if j, ok := index[imp]; ok {
				if err := visit(j); err != nil {
					return err
				}
			}
		}
		state[i] = 2
		order = append(order, i)
		return nil
	}
	for i := range metas {
		if err := visit(i); err != nil {
			return nil, err
		}
	}

	imp := &chainImporter{
		loaded:   make(map[string]*types.Package, len(metas)),
		fallback: importer.ForCompiler(fset, "source", nil),
	}
	var pkgs []*Package
	for _, i := range order {
		m := metas[i]
		var files []*ast.File
		for _, name := range m.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(m.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		pkg, info, err := typeCheck(fset, m.ImportPath, files, imp)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", m.ImportPath, err)
		}
		imp.loaded[m.ImportPath] = pkg
		pkgs = append(pkgs, &Package{
			Path:      m.ImportPath,
			Name:      m.Name,
			Dir:       m.Dir,
			Files:     files,
			Types:     pkg,
			Info:      info,
			FactsOnly: !matched[m.ImportPath],
		})
	}
	return pkgs, nil
}

// chainImporter serves already-type-checked packages from the current
// load and defers everything else (the standard library; dependencies
// outside the matched pattern set) to the source importer.
type chainImporter struct {
	loaded   map[string]*types.Package
	fallback types.Importer
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if p := c.loaded[path]; p != nil {
		return p, nil
	}
	return c.fallback.Import(path)
}

func (c *chainImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p := c.loaded[path]; p != nil {
		return p, nil
	}
	if from, ok := c.fallback.(types.ImporterFrom); ok {
		return from.ImportFrom(path, dir, mode)
	}
	return c.fallback.Import(path)
}

// LoadDir parses and type-checks the single package rooted at dir
// without consulting `go list` — the loader the linttest harness uses
// for testdata packages (which the go tool deliberately ignores).
// Testdata packages may import only the standard library.
func LoadDir(fset *token.FileSet, dir, asPath string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var pkgName string
	var files []*ast.File
	for _, ent := range ents { // ReadDir sorts by name: deterministic file order
		name := ent.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkgName = f.Name.Name
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go source in %s", dir)
	}
	imp := importer.ForCompiler(fset, "source", nil)
	pkg, info, err := typeCheck(fset, asPath, files, imp)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", dir, err)
	}
	return &Package{Path: asPath, Name: pkgName, Dir: dir, Files: files, Types: pkg, Info: info}, nil
}

func typeCheck(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}
