package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strings"
)

// Metricdecl turns the metric naming convention — until now enforced
// only at runtime by internal/mesh's TestMetricNamingConvention, and
// only for the families that test happens to exercise — into a static
// rule at every registration site:
//
//   - the name argument of Registry.Counter/Gauge/Histogram/
//     ObserveDuration must be a named constant, not an inline literal
//     or a computed string, so a family has exactly one authoritative
//     spelling;
//   - the constant's value must follow the convention: a subsystem
//     prefix (mesh_, gateway_, ctrlplane_), lowercase snake_case,
//     counters ending in _total, histograms in _duration or _seconds
//     (gauges name a level and are suffix-exempt);
//   - no double registration: the same name must not be registered as
//     two different kinds, and two constants must not spell the same
//     name.
//
// Each registration exports a MetricNameFact on the constant, so the
// kind-conflict and duplicate-spelling checks see registrations made
// by dependency packages (ctrlplane's families are visible while mesh
// is being analyzed, and both while the root package is).
var Metricdecl = &Analyzer{
	Name: "metricdecl",
	Doc:  "metric names are named constants at registration sites, follow the naming convention, and register as exactly one kind",
	Run:  runMetricdecl,
}

// MetricNameFact records that a constant is used as a metric family
// name of the given kind.
type MetricNameFact struct {
	Value string
	Kind  string // "counter", "gauge", or "histogram"
}

func (*MetricNameFact) AFact() {}

// metricRegMethods maps Registry method names to the family kind they
// register.
var metricRegMethods = map[string]string{
	"Counter":         "counter",
	"Gauge":           "gauge",
	"Histogram":       "histogram",
	"ObserveDuration": "histogram",
}

var metricNameRe = regexp.MustCompile(`^(mesh|gateway|ctrlplane)_[a-z0-9_]+$`)

func metricRegistryType(t types.Type) bool {
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Name() != "Registry" || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == "meshlayer/internal/metrics" || strings.HasPrefix(path, "meshvet/testdata/")
}

func runMetricdecl(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			// Registry's own methods forward a name parameter into each
			// other (ObserveDuration calls Histogram); the const rule
			// applies at their callers, not inside the implementation.
			if fn.Recv != nil && len(fn.Recv.List) > 0 && metricRegistryType(pass.TypeOf(fn.Recv.List[0].Type)) {
				continue
			}
			checkMetricFunc(pass, fn)
		}
	}
}

func checkMetricFunc(pass *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		kind, ok := metricRegMethods[sel.Sel.Name]
		if !ok || !metricRegistryType(pass.TypeOf(sel.X)) {
			return true
		}
		checkMetricName(pass, call.Args[0], kind)
		return true
	})
}

func checkMetricName(pass *Pass, arg ast.Expr, kind string) {
	obj := constObjectOf(pass, arg)
	if obj == nil {
		pass.Reportf(arg.Pos(),
			"metric name must be a named constant (declare `const xyzTotal = \"...\"` next to the subsystem and register through it)")
		return
	}
	v := constant.StringVal(obj.Val())

	if !metricNameRe.MatchString(v) {
		pass.Reportf(arg.Pos(),
			"metric name %q breaks the naming convention: subsystem prefix (mesh_, gateway_, ctrlplane_) plus lowercase snake_case", v)
	} else {
		switch kind {
		case "counter":
			if !strings.HasSuffix(v, "_total") {
				pass.Reportf(arg.Pos(), "counter %q must end in _total", v)
			}
		case "histogram":
			if !strings.HasSuffix(v, "_duration") && !strings.HasSuffix(v, "_seconds") {
				pass.Reportf(arg.Pos(), "histogram %q must end in _duration or _seconds", v)
			}
		}
	}

	// Registration bookkeeping via facts: one constant, one kind, one
	// spelling.
	for _, of := range pass.AllObjectFacts((*MetricNameFact)(nil)) {
		fact := of.Fact.(*MetricNameFact)
		if of.Object == obj {
			if fact.Kind != kind {
				pass.Reportf(arg.Pos(),
					"metric %q already registered as a %s; a family has exactly one kind", v, fact.Kind)
				return
			}
			return // same const, same kind: the normal repeat use
		}
		if fact.Value == v {
			pass.Reportf(arg.Pos(),
				"metric name %q is already registered through constant %s.%s; reuse that constant",
				v, of.Object.Pkg().Name(), of.Object.Name())
			return
		}
	}
	pass.ExportObjectFact(obj, &MetricNameFact{Value: v, Kind: kind})
}

// constObjectOf resolves arg to a declared string constant, or nil.
func constObjectOf(pass *Pass, arg ast.Expr) *types.Const {
	var id *ast.Ident
	switch e := arg.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	c, ok := pass.Info.ObjectOf(id).(*types.Const)
	if !ok || c.Val().Kind() != constant.String {
		return nil
	}
	return c
}
