package lint

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseSrc(t *testing.T, src string) (*token.FileSet, *fileDirectives, []string, []Diagnostic) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "dir_test.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var diags []Diagnostic
	fd, pooled := parseDirectives(fset, f, "example.com/p", &diags)
	return fset, fd, pooled, diags
}

func TestAllowCoversOwnAndNextLine(t *testing.T) {
	src := `package p
//meshvet:allow walltime trailing-position reason
var x = 1
`
	_, fd, _, diags := parseSrc(t, src)
	if len(diags) != 0 {
		t.Fatalf("unexpected diagnostics: %v", diags)
	}
	if !fd.suppressed("walltime", 2) || !fd.suppressed("walltime", 3) {
		t.Errorf("allow on line 2 must suppress walltime on lines 2 and 3")
	}
	if fd.suppressed("walltime", 4) {
		t.Errorf("allow must not reach line 4")
	}
	if fd.suppressed("globalrand", 3) {
		t.Errorf("allow is per-analyzer; globalrand must not be suppressed")
	}
}

func TestAllowNeverSuppressesDirectiveDiagnostics(t *testing.T) {
	src := `package p
//meshvet:allow directive trying to silence the validator
var x = 1
`
	_, _, _, diags := parseSrc(t, src)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "unknown analyzer") {
		t.Fatalf("allow naming the reserved %q pseudo-analyzer must be rejected, got %v",
			DirectiveAnalyzerName, diags)
	}
}

func TestPooledAttachment(t *testing.T) {
	src := `package p
// T is pool-recycled.
//
//meshvet:pooled
type T struct{}

type U struct{} //meshvet:pooled

var NotAType = 1 //meshvet:pooled
`
	_, _, pooled, diags := parseSrc(t, src)
	want := map[string]bool{"T": true, "U": true}
	if len(pooled) != 2 || !want[pooled[0]] || !want[pooled[1]] {
		t.Errorf("pooled = %v, want the bare names T and U (facts key them by object)", pooled)
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "must be attached to a type declaration") {
		t.Errorf("detached pooled marker must be a diagnostic, got %v", diags)
	}
	if len(diags) == 1 && diags[0].Analyzer != DirectiveAnalyzerName {
		t.Errorf("directive diagnostics carry the reserved analyzer name, got %q", diags[0].Analyzer)
	}
}

func TestMalformedAllowVariants(t *testing.T) {
	cases := []struct {
		comment string
		wantMsg string
	}{
		{"//meshvet:allow", "needs an analyzer name and a reason"},
		{"//meshvet:allow mapiter", "missing its reason"},
		{"//meshvet:allow nosuch because reasons", `unknown analyzer "nosuch"`},
		{"//meshvet:frob x", `unknown meshvet directive "frob"`},
	}
	for _, c := range cases {
		_, fd, _, diags := parseSrc(t, "package p\n"+c.comment+"\nvar x = 1\n")
		if len(diags) != 1 || !strings.Contains(diags[0].Message, c.wantMsg) {
			t.Errorf("%s: got %v, want message containing %q", c.comment, diags, c.wantMsg)
		}
		if len(fd.allows) != 0 {
			t.Errorf("%s: malformed directive must not suppress anything, got %v", c.comment, fd.allows)
		}
	}
}

func TestNonDirectiveCommentsIgnored(t *testing.T) {
	src := `package p
// plain comment mentioning meshvet:allow inside prose is not a directive
var x = 1 // meshvet:allow walltime spaced-out prefix is prose too
`
	_, fd, pooled, diags := parseSrc(t, src)
	if len(diags) != 0 || len(fd.allows) != 0 || len(pooled) != 0 {
		t.Errorf("prose mentioning directives must be inert: diags=%v allows=%v pooled=%v",
			diags, fd.allows, pooled)
	}
}
