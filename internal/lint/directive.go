package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// meshvet comment directives.
//
//	//meshvet:allow <analyzer> <reason>
//	    Suppresses <analyzer>'s diagnostics on the directive's own line
//	    and the line immediately below it, so the directive works both
//	    trailing the offending statement and on its own line above it.
//	    The reason is mandatory: an allow is a justified exception, and
//	    the justification lives next to the code it excuses.
//
//	//meshvet:pooled
//	    Marks the type declaration it documents (doc comment or same
//	    line) as pool-recycled. poolescape then treats values of that
//	    type, anywhere in the module, as forbidden from escaping into
//	    fields, globals, channels, pool-external appends, or closures.
//
// Anything else spelled //meshvet: is an error — a typo in a
// suppression must fail the build, not silently stop suppressing.
const directivePrefix = "//meshvet:"

// allowKey identifies one suppressed (analyzer, line) cell in a file.
type allowKey struct {
	analyzer string
	line     int
}

// fileDirectives is the parsed directive state of one file.
type fileDirectives struct {
	allows map[allowKey]bool
}

func (fd *fileDirectives) suppressed(analyzer string, line int) bool {
	if fd == nil {
		return false
	}
	return fd.allows[allowKey{analyzer, line}]
}

// parseDirectives scans every comment in file, validates meshvet
// directives, and returns the suppression table plus the names of
// types this file marks //meshvet:pooled (resolved to objects — and
// exported as PooledFacts — by Run). Malformed directives are appended
// to diags under the reserved "directive" analyzer name.
func parseDirectives(fset *token.FileSet, file *ast.File, pkgPath string, diags *[]Diagnostic) (*fileDirectives, []string) {
	fd := &fileDirectives{allows: map[allowKey]bool{}}
	var pooled []string

	report := func(pos token.Pos, format string, args ...any) {
		p := Pass{Analyzer: &Analyzer{Name: DirectiveAnalyzerName}, Fset: fset, diags: diags}
		p.Reportf(pos, format, args...)
	}

	// pooledDeclLines maps a source line to the type name declared
	// there, so a same-line //meshvet:pooled can find its type. Doc
	// comments are handled via typeSpecForComment below.
	typeLines := map[int]string{}
	ast.Inspect(file, func(n ast.Node) bool {
		gd, ok := n.(*ast.GenDecl)
		if !ok || gd.Tok != token.TYPE {
			return true
		}
		for _, spec := range gd.Specs {
			if ts, ok := spec.(*ast.TypeSpec); ok {
				typeLines[fset.Position(ts.Pos()).Line] = ts.Name.Name
			}
		}
		return false
	})

	// docOwner maps each comment-group position to the type it
	// documents, for //meshvet:pooled inside doc comments.
	docOwner := map[*ast.Comment]string{}
	ast.Inspect(file, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.GenDecl:
			if d.Tok != token.TYPE {
				return true
			}
			for _, spec := range d.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				for _, cg := range []*ast.CommentGroup{d.Doc, ts.Doc, ts.Comment} {
					if cg == nil {
						continue
					}
					for _, c := range cg.List {
						docOwner[c] = ts.Name.Name
					}
				}
			}
		}
		return true
	})

	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := c.Text
			if !strings.HasPrefix(text, directivePrefix) {
				continue
			}
			rest := strings.TrimPrefix(text, directivePrefix)
			verb := rest
			args := ""
			if i := strings.IndexAny(rest, " \t"); i >= 0 {
				verb, args = rest[:i], strings.TrimSpace(rest[i+1:])
			}
			line := fset.Position(c.Pos()).Line
			switch verb {
			case "allow":
				fields := strings.Fields(args)
				if len(fields) == 0 {
					report(c.Pos(), "//meshvet:allow needs an analyzer name and a reason (//meshvet:allow <analyzer> <reason>)")
					continue
				}
				name := fields[0]
				if !knownAnalyzer(name) {
					report(c.Pos(), "//meshvet:allow names unknown analyzer %q (known: %s)", name, analyzerNames())
					continue
				}
				if len(fields) < 2 {
					report(c.Pos(), "//meshvet:allow %s is missing its reason: justify the exception in the directive", name)
					continue
				}
				fd.allows[allowKey{name, line}] = true
				fd.allows[allowKey{name, line + 1}] = true
			case "pooled":
				typeName := docOwner[c]
				if typeName == "" {
					typeName = typeLines[line]
				}
				if typeName == "" {
					report(c.Pos(), "//meshvet:pooled must be attached to a type declaration (doc comment or same line)")
					continue
				}
				pooled = append(pooled, typeName)
			default:
				report(c.Pos(), "unknown meshvet directive %q (known: allow, pooled)", verb)
			}
		}
	}
	return fd, pooled
}

func analyzerNames() string {
	names := make([]string, len(All))
	for i, a := range All {
		names[i] = a.Name
	}
	return strings.Join(names, ", ")
}
