package simnet

import (
	"testing"
	"time"
)

// flowNet builds a -- sw -- b with the given link rates (bps), fidelity
// already set, and returns the pieces tests need.
func flowNet(t *testing.T, fid Fidelity, rateA, rateB int64) (*Scheduler, *Network, *Node, *Node, *Node) {
	t.Helper()
	s := NewScheduler()
	net := NewNetwork(s)
	net.SetFidelity(fid)
	a := net.AddNode("a")
	sw := net.AddNode("sw")
	b := net.AddNode("b")
	net.Connect(a, sw, LinkConfig{Rate: rateA, Delay: time.Millisecond})
	net.Connect(sw, b, LinkConfig{Rate: rateB, Delay: time.Millisecond})
	return s, net, a, sw, b
}

func resolve(t *testing.T, net *Network, from, to *Node) ([]*NIC, time.Duration) {
	t.Helper()
	path, prop, ok := net.FlowEngine().ResolvePath(from, FlowKey{Src: from.Addr(), Dst: to.Addr()})
	if !ok {
		t.Fatalf("ResolvePath %s->%s failed", from.Name(), to.Name())
	}
	return path, prop
}

func TestFlowSingleCompletionTime(t *testing.T) {
	// 8 Mbps = 1e6 bytes/sec; 1e6 bytes should complete in exactly 1s.
	s, net, a, _, b := flowNet(t, FidelityFlow, 8*Mbps, 8*Mbps)
	path, prop := resolve(t, net, a, b)
	if len(path) != 2 {
		t.Fatalf("path length = %d, want 2", len(path))
	}
	if prop != 2*time.Millisecond {
		t.Fatalf("prop delay = %v, want 2ms", prop)
	}
	var doneAt time.Duration = -1
	net.FlowEngine().Start(path, 1_000_000, func() { doneAt = s.Now() }, nil)
	s.Run()
	if doneAt != time.Second {
		t.Fatalf("completion at %v, want exactly 1s", doneAt)
	}
}

func TestFlowFairShareAndBottleneck(t *testing.T) {
	// Two flows a->b share the 8 Mbps second hop; a third constraint:
	// first hop is 80 Mbps so the second hop is the bottleneck. Each
	// flow gets 0.5e6 B/s; 1e6 bytes take 2s.
	s, net, a, _, b := flowNet(t, FidelityFlow, 80*Mbps, 8*Mbps)
	path, _ := resolve(t, net, a, b)
	e := net.FlowEngine()
	var t1, t2 time.Duration
	id1 := e.Start(path, 1_000_000, func() { t1 = s.Now() }, nil)
	id2 := e.Start(path, 1_000_000, func() { t2 = s.Now() }, nil)
	if r, _ := e.Rate(id1); r != 500_000 {
		t.Fatalf("flow1 rate = %v, want 500000 B/s", r)
	}
	if r, _ := e.Rate(id2); r != 500_000 {
		t.Fatalf("flow2 rate = %v, want 500000 B/s", r)
	}
	s.Run()
	if t1 != 2*time.Second || t2 != 2*time.Second {
		t.Fatalf("completions at %v/%v, want 2s/2s", t1, t2)
	}
}

func TestFlowMaxMinFilling(t *testing.T) {
	// Flow X crosses both hops; flow Y only the second. First hop
	// 8 Mbps (1e6 B/s), second 80 Mbps (1e7 B/s). Max-min: X is capped
	// at 1e6 by hop one; Y then takes the rest of hop two, 9e6.
	_, net, a, sw, b := flowNet(t, FidelityFlow, 8*Mbps, 80*Mbps)
	e := net.FlowEngine()
	pathX, _ := resolve(t, net, a, b)
	pathY, _ := resolve(t, net, sw, b)
	x := e.Start(pathX, 1_000_000, nil, nil)
	y := e.Start(pathY, 1_000_000, nil, nil)
	if r, _ := e.Rate(x); r != 1e6 {
		t.Fatalf("X rate = %v, want 1e6", r)
	}
	if r, _ := e.Rate(y); r != 9e6 {
		t.Fatalf("Y rate = %v, want 9e6", r)
	}
}

func TestFlowRatesRecomputeOnCompletion(t *testing.T) {
	// Two equal flows share a link; when the shorter one finishes the
	// longer one doubles its rate. 8 Mbps link: flow1 5e5 bytes, flow2
	// 1.5e6 bytes. Phase 1: both at 5e5 B/s until t=1s (flow1 done,
	// flow2 has 1e6 left). Phase 2: flow2 at 1e6 B/s, done at t=2s.
	s, net, a, _, b := flowNet(t, FidelityFlow, 80*Mbps, 8*Mbps)
	path, _ := resolve(t, net, a, b)
	e := net.FlowEngine()
	var t1, t2 time.Duration
	e.Start(path, 500_000, func() { t1 = s.Now() }, nil)
	e.Start(path, 1_500_000, func() { t2 = s.Now() }, nil)
	s.Run()
	if t1 != time.Second {
		t.Fatalf("short flow done at %v, want 1s", t1)
	}
	if t2 != 2*time.Second {
		t.Fatalf("long flow done at %v, want 2s", t2)
	}
}

func TestFlowCancel(t *testing.T) {
	s, net, a, _, b := flowNet(t, FidelityFlow, 8*Mbps, 8*Mbps)
	path, _ := resolve(t, net, a, b)
	e := net.FlowEngine()
	fired := false
	id := e.Start(path, 1_000_000, func() { fired = true }, func() { fired = true })
	if !e.Cancel(id) {
		t.Fatal("Cancel reported flow not active")
	}
	if e.Cancel(id) {
		t.Fatal("second Cancel should report inactive")
	}
	s.Run()
	if fired {
		t.Fatal("cancelled flow fired a callback")
	}
	if e.Active() != 0 {
		t.Fatalf("Active = %d, want 0", e.Active())
	}
}

func TestFlowDemoteOnImpairment(t *testing.T) {
	s, net, a, _, b := flowNet(t, FidelityFlow, 8*Mbps, 8*Mbps)
	path, _ := resolve(t, net, a, b)
	e := net.FlowEngine()
	var demotedAt time.Duration = -1
	completed := false
	e.Start(path, 1_000_000, func() { completed = true }, func() { demotedAt = s.Now() })
	s.RunFor(100 * time.Millisecond)
	// Impair the reverse direction of the first hop: the ACK path.
	path[0].Peer().Impair(Impairment{LossProb: 0.5, Seed: 1})
	s.Run()
	if completed {
		t.Fatal("flow completed despite impairment demotion")
	}
	if demotedAt != 100*time.Millisecond {
		t.Fatalf("demoted at %v, want 100ms (deferred to same timestamp)", demotedAt)
	}
	if got := e.Stats().Demoted; got != 1 {
		t.Fatalf("Stats.Demoted = %d, want 1", got)
	}
}

func TestFlowDemoteOnLinkDown(t *testing.T) {
	s, net, a, _, b := flowNet(t, FidelityFlow, 8*Mbps, 8*Mbps)
	path, _ := resolve(t, net, a, b)
	e := net.FlowEngine()
	demoted := false
	e.Start(path, 1_000_000, nil, func() { demoted = true })
	s.RunFor(10 * time.Millisecond)
	path[1].Link().SetDown(true)
	s.RunFor(time.Millisecond)
	if !demoted {
		t.Fatal("SetDown did not demote the crossing flow")
	}
}

func TestFlowDemoteOnQdiscChange(t *testing.T) {
	s, net, a, _, b := flowNet(t, FidelityFlow, 8*Mbps, 8*Mbps)
	path, _ := resolve(t, net, a, b)
	e := net.FlowEngine()
	demoted := false
	e.Start(path, 1_000_000, nil, func() { demoted = true })
	s.RunFor(10 * time.Millisecond)
	path[0].SetQdisc(NewFIFO(4096))
	s.RunFor(time.Millisecond)
	if !demoted {
		t.Fatal("SetQdisc did not demote the crossing flow")
	}
}

func TestHybridDemoteOnContention(t *testing.T) {
	// In hybrid fidelity a data-sized packet hitting a fluid-saturated
	// NIC demotes the flows there; control-sized packets never do.
	s, net, a, _, b := flowNet(t, FidelityHybrid, 8*Mbps, 8*Mbps)
	path, _ := resolve(t, net, a, b)
	e := net.FlowEngine()
	demoted := false
	e.Start(path, 1_000_000, nil, func() { demoted = true })
	s.RunFor(10 * time.Millisecond)

	ctrl := net.AllocPacket()
	ctrl.Flow = FlowKey{Src: a.Addr(), Dst: b.Addr()}
	ctrl.Size = 40
	a.Inject(ctrl)
	s.RunFor(time.Millisecond)
	if demoted {
		t.Fatal("control-sized packet demoted the flow")
	}

	data := net.AllocPacket()
	data.Flow = FlowKey{Src: a.Addr(), Dst: b.Addr()}
	data.Size = MTU
	a.Inject(data)
	s.RunFor(time.Millisecond)
	if !demoted {
		t.Fatal("data-sized packet on a saturated NIC did not demote")
	}
}

func TestFlowModeNoContentionDemotion(t *testing.T) {
	// Pure flow fidelity never demotes on contention — only on
	// impairment/down/qdisc — so bulk stays analytic regardless of
	// packet crosstalk.
	s, net, a, _, b := flowNet(t, FidelityFlow, 8*Mbps, 8*Mbps)
	path, _ := resolve(t, net, a, b)
	e := net.FlowEngine()
	demoted := false
	e.Start(path, 1_000_000, nil, func() { demoted = true })
	s.RunFor(10 * time.Millisecond)
	data := net.AllocPacket()
	data.Flow = FlowKey{Src: a.Addr(), Dst: b.Addr()}
	data.Size = MTU
	a.Inject(data)
	s.RunFor(time.Millisecond)
	if demoted {
		t.Fatal("flow fidelity demoted on packet contention")
	}
}

func TestSerializationCoupling(t *testing.T) {
	// A NIC carrying fluid serializes packets at the residual rate.
	// Saturated link => floor of 1% of line rate: a 1500B packet on
	// 8 Mbps floors at 80 kbps = 1e4 B/s => 150ms instead of 1.5ms.
	_, net, a, _, b := flowNet(t, FidelityFlow, 8*Mbps, 8*Mbps)
	path, _ := resolve(t, net, a, b)
	nic := path[0]
	clean := nic.serializeDelay(MTU)
	if clean != nic.Link().serializationDelay(MTU) {
		t.Fatalf("no-fluid serializeDelay %v != link formula %v", clean, nic.Link().serializationDelay(MTU))
	}
	id := net.FlowEngine().Start(path, 10_000_000, nil, nil)
	net.FlowEngine().Rate(id) // force the deferred recompute so the coupling is visible now
	coupled := nic.serializeDelay(MTU)
	if coupled != 100*clean {
		t.Fatalf("saturated serializeDelay = %v, want 100x clean (%v)", coupled, 100*clean)
	}
}

func TestPathEligibility(t *testing.T) {
	_, net, a, _, b := flowNet(t, FidelityHybrid, 8*Mbps, 8*Mbps)
	path, _ := resolve(t, net, a, b)
	e := net.FlowEngine()
	if !e.PathEligible(path) {
		t.Fatal("clean path should be eligible")
	}
	path[1].Peer().Impair(Impairment{JitterMax: time.Millisecond, Seed: 3})
	if e.PathEligible(path) {
		t.Fatal("reverse-impaired path should be ineligible")
	}
	path[1].Peer().Impair(Impairment{})
	if !e.PathEligible(path) {
		t.Fatal("clearing the impairment should restore eligibility")
	}
	path[0].SetQdisc(NewFIFO(4096))
	if !e.PathEligible(path) {
		t.Fatal("a plain FIFO replacement stays eligible")
	}
	path[0].Link().SetDown(true)
	if e.PathEligible(path) {
		t.Fatal("a down link is ineligible")
	}
}

func TestFlowEventCount(t *testing.T) {
	// The point of the engine: a bulk transfer is O(1) events instead
	// of O(bytes/MSS). 10 MB over packet fidelity would be ~7000 data
	// packets plus ACKs; fluid is a handful of scheduler steps.
	s, net, a, _, b := flowNet(t, FidelityFlow, 80*Mbps, 80*Mbps)
	path, _ := resolve(t, net, a, b)
	before := s.Steps()
	done := false
	net.FlowEngine().Start(path, 10_000_000, func() { done = true }, nil)
	s.Run()
	if !done {
		t.Fatal("flow did not complete")
	}
	if steps := s.Steps() - before; steps > 10 {
		t.Fatalf("fluid transfer took %d scheduler steps, want O(1)", steps)
	}
}

func TestFidelityParseAndString(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Fidelity
	}{{"packet", FidelityPacket}, {"", FidelityPacket}, {"flow", FidelityFlow}, {"hybrid", FidelityHybrid}} {
		got, err := ParseFidelity(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseFidelity(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseFidelity("bogus"); err == nil {
		t.Fatal("ParseFidelity accepted bogus")
	}
	if FidelityHybrid.String() != "hybrid" {
		t.Fatalf("String = %q", FidelityHybrid.String())
	}
}
