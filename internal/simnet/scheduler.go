// Package simnet implements a deterministic discrete-event network
// simulator: a virtual clock with an event scheduler, and a packet-level
// model of links, NICs, and nodes connected into routed topologies.
//
// All simulated components run single-threaded on one Scheduler. Time is
// a time.Duration measured from the simulation epoch (t = 0). Components
// never read the wall clock, so a run is a pure function of its inputs
// and seeds: the same program produces byte-identical results on every
// machine.
package simnet

import (
	"container/heap"
	"fmt"
	"time"
)

// Scheduler is the simulation event loop. The zero value is not usable;
// call NewScheduler.
type Scheduler struct {
	now     time.Duration
	events  eventHeap
	seq     uint64
	stopped bool
	steps   uint64
}

// NewScheduler returns a scheduler with the clock at the simulation epoch.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now returns the current simulated time.
func (s *Scheduler) Now() time.Duration { return s.now }

// Steps returns the number of events executed so far. Useful for
// instrumentation and runaway detection in tests.
func (s *Scheduler) Steps() uint64 { return s.steps }

// Timer is a handle to a scheduled event that can be cancelled.
type Timer struct {
	ev *event
}

// Cancel prevents the timer's function from running. Cancelling an
// already-fired or already-cancelled timer is a no-op.
func (t *Timer) Cancel() {
	if t != nil && t.ev != nil {
		t.ev.fn = nil
	}
}

// Stopped reports whether the timer has fired or been cancelled.
func (t *Timer) Stopped() bool { return t == nil || t.ev == nil || t.ev.fn == nil }

// At schedules fn to run at absolute simulated time at. Scheduling in the
// past panics: it would silently reorder causality.
func (s *Scheduler) At(at time.Duration, fn func()) *Timer {
	if fn == nil {
		panic("simnet: nil event function")
	}
	if at < s.now {
		panic(fmt.Sprintf("simnet: event scheduled in the past: %v < %v", at, s.now))
	}
	ev := &event{at: at, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, ev)
	return &Timer{ev: ev}
}

// After schedules fn to run d after the current simulated time.
// Negative d is clamped to zero.
func (s *Scheduler) After(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Step executes the next pending event, advancing the clock to its
// timestamp. It returns false when no events remain.
func (s *Scheduler) Step() bool {
	for len(s.events) > 0 {
		ev := heap.Pop(&s.events).(*event)
		if ev.fn == nil { // cancelled
			continue
		}
		s.now = ev.at
		fn := ev.fn
		ev.fn = nil
		s.steps++
		fn()
		return true
	}
	return false
}

// Run executes events until the queue drains or Stop is called.
func (s *Scheduler) Run() {
	s.stopped = false
	for !s.stopped && s.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then sets the clock to
// t. Events scheduled beyond t remain pending.
func (s *Scheduler) RunUntil(t time.Duration) {
	s.stopped = false
	for !s.stopped {
		next, ok := s.peekTime()
		if !ok || next > t {
			break
		}
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// RunFor executes events for d of simulated time from the current clock.
func (s *Scheduler) RunFor(d time.Duration) { s.RunUntil(s.now + d) }

// Stop halts Run/RunUntil after the currently executing event returns.
func (s *Scheduler) Stop() { s.stopped = true }

// Pending returns the number of scheduled (non-cancelled) events.
func (s *Scheduler) Pending() int {
	n := 0
	for _, ev := range s.events {
		if ev.fn != nil {
			n++
		}
	}
	return n
}

func (s *Scheduler) peekTime() (time.Duration, bool) {
	for len(s.events) > 0 {
		if s.events[0].fn == nil {
			heap.Pop(&s.events)
			continue
		}
		return s.events[0].at, true
	}
	return 0, false
}

type event struct {
	at  time.Duration
	seq uint64 // FIFO tie-break for same-time events
	fn  func()
	idx int
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.idx = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
