// Package simnet implements a deterministic discrete-event network
// simulator: a virtual clock with an event scheduler, and a packet-level
// model of links, NICs, and nodes connected into routed topologies.
//
// All simulated components run single-threaded on one Scheduler. Time is
// a time.Duration measured from the simulation epoch (t = 0). Components
// never read the wall clock, so a run is a pure function of its inputs
// and seeds: the same program produces byte-identical results on every
// machine.
package simnet

import (
	"fmt"
	"time"
)

// Scheduler is the simulation event loop. The zero value is not usable;
// call NewScheduler.
//
// Internally the scheduler keeps events in a pooled arena indexed by a
// 4-ary min-heap of (time, seq, slot) entries: scheduling allocates
// nothing in steady state (slots are recycled through a free list), and
// heap comparisons read keys stored inline in the heap array instead of
// chasing pointers into boxed interface values. Event order is
// a total order on (time, sequence number), so the heap's internal
// shape never influences dispatch order — a property the lazy
// cancellation and compaction below rely on.
type Scheduler struct {
	now   time.Duration
	arena []eventSlot // slot storage, recycled via free
	free  []int32     // free-list of arena slots
	heap  []heapEntry // 4-ary min-heap keyed by (at, seq)
	seq   uint64

	// live counts scheduled, non-cancelled events; cancelled events stay
	// in the heap (lazy deletion) until popped or compacted, so the
	// cancelled backlog is len(heap) - live.
	live    int
	stopped bool
	steps   uint64
}

// eventSlot is one pooled event. gen is the slot's reuse generation:
// it increments every time the slot is released, so a Timer handle held
// across recycling can detect that its event is gone and turn Cancel
// into a no-op instead of killing the unrelated event now in the slot.
type eventSlot struct {
	fn  func()
	gen uint32
}

// heapEntry carries the ordering key inline so heap comparisons read
// contiguous heap memory instead of chasing pointers into the arena.
// The entry is kept to 16 bytes so a 4-ary node's children span one
// cache line; seq is a truncated sequence number compared with
// wraparound arithmetic (see less), which preserves FIFO order for
// same-time events as long as fewer than 2^31 events separate two
// coexisting ones — far beyond any pending-set this simulator reaches.
type heapEntry struct {
	at   time.Duration
	seq  uint32 // FIFO tie-break for same-time events
	slot int32
}

// compactMinHeap is the heap size below which compaction is never
// worth the rebuild; tiny heaps recycle cancelled slots quickly via
// normal pops.
const compactMinHeap = 64

// NewScheduler returns a scheduler with the clock at the simulation epoch.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now returns the current simulated time.
func (s *Scheduler) Now() time.Duration { return s.now }

// Steps returns the number of events executed so far. Useful for
// instrumentation and runaway detection in tests.
func (s *Scheduler) Steps() uint64 { return s.steps }

// Timer is a handle to a scheduled event that can be cancelled. It is a
// small value; the zero Timer is valid and behaves as already stopped.
type Timer struct {
	s    *Scheduler
	slot int32
	gen  uint32
}

// Cancel prevents the timer's function from running. Cancelling an
// already-fired or already-cancelled timer is a no-op, even if the
// underlying event slot has since been recycled for a different event.
func (t Timer) Cancel() {
	if t.s == nil {
		return
	}
	ev := &t.s.arena[t.slot]
	if ev.gen != t.gen || ev.fn == nil {
		return // fired, cancelled, or slot recycled
	}
	ev.fn = nil
	t.s.live--
	t.s.maybeCompact()
}

// Stopped reports whether the timer has fired or been cancelled.
func (t Timer) Stopped() bool {
	if t.s == nil {
		return true
	}
	ev := &t.s.arena[t.slot]
	return ev.gen != t.gen || ev.fn == nil
}

// At schedules fn to run at absolute simulated time at. Scheduling in the
// past panics: it would silently reorder causality.
func (s *Scheduler) At(at time.Duration, fn func()) Timer {
	if fn == nil {
		panic("simnet: nil event function")
	}
	if at < s.now {
		panic(fmt.Sprintf("simnet: event scheduled in the past: %v < %v", at, s.now))
	}
	var slot int32
	if n := len(s.free); n > 0 {
		slot = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		s.arena = append(s.arena, eventSlot{})
		slot = int32(len(s.arena) - 1)
	}
	ev := &s.arena[slot]
	ev.fn = fn
	s.push(heapEntry{at: at, seq: uint32(s.seq), slot: slot})
	s.seq++
	s.live++
	return Timer{s: s, slot: slot, gen: ev.gen}
}

// After schedules fn to run d after the current simulated time.
// Negative d is clamped to zero.
func (s *Scheduler) After(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// releaseSlot returns a slot to the free list, bumping its generation
// so outstanding Timer handles to the old event become inert.
func (s *Scheduler) releaseSlot(slot int32) {
	ev := &s.arena[slot]
	ev.fn = nil
	ev.gen++
	s.free = append(s.free, slot)
}

// Step executes the next pending event, advancing the clock to its
// timestamp. It returns false when no events remain.
func (s *Scheduler) Step() bool {
	for len(s.heap) > 0 {
		e := s.popRoot()
		ev := &s.arena[e.slot]
		if ev.fn == nil { // cancelled: recycle and keep looking
			s.releaseSlot(e.slot)
			continue
		}
		s.now = e.at
		fn := ev.fn
		s.live--
		s.releaseSlot(e.slot)
		s.steps++
		fn()
		return true
	}
	return false
}

// Run executes events until the queue drains or Stop is called.
func (s *Scheduler) Run() {
	s.stopped = false
	for !s.stopped && s.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then sets the clock to
// t. Events scheduled beyond t remain pending.
func (s *Scheduler) RunUntil(t time.Duration) {
	s.stopped = false
	for !s.stopped {
		next, ok := s.peekTime()
		if !ok || next > t {
			break
		}
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// RunFor executes events for d of simulated time from the current clock.
func (s *Scheduler) RunFor(d time.Duration) { s.RunUntil(s.now + d) }

// Stop halts Run/RunUntil after the currently executing event returns.
func (s *Scheduler) Stop() { s.stopped = true }

// Pending returns the number of scheduled (non-cancelled) events.
func (s *Scheduler) Pending() int { return s.live }

func (s *Scheduler) peekTime() (time.Duration, bool) {
	for len(s.heap) > 0 {
		e := s.heap[0]
		if s.arena[e.slot].fn == nil {
			s.popRoot()
			s.releaseSlot(e.slot)
			continue
		}
		return e.at, true
	}
	return 0, false
}

// maybeCompact rebuilds the heap once cancelled events outnumber live
// ones: long chaos runs cancel retry timers far faster than the heap
// pops them, and without compaction those slots pin arena memory until
// their (possibly far-future) deadlines surface at the root.
func (s *Scheduler) maybeCompact() {
	if n := len(s.heap); n >= compactMinHeap && n-s.live > n/2 {
		s.compact()
	}
}

// compact removes cancelled events from the heap and re-heapifies.
// Dispatch order is unaffected: (at, seq) is a total order, so any
// valid heap over the surviving slots pops identically.
func (s *Scheduler) compact() {
	kept := s.heap[:0]
	for _, e := range s.heap {
		if s.arena[e.slot].fn != nil {
			kept = append(kept, e)
		} else {
			s.releaseSlot(e.slot)
		}
	}
	s.heap = kept
	if len(s.heap) < 2 {
		return
	}
	for i := (len(s.heap) - 2) / 4; i >= 0; i-- {
		s.siftDown(i)
	}
}

// --- 4-ary min-heap over arena slots ---
//
// A 4-ary heap halves tree depth versus binary, trading a few extra
// comparisons per level for fewer cache-missing levels — the classic
// d-ary layout calendar-queue simulators and ns-3 use for timer wheels
// of this size.

func less(a, b heapEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	// Wraparound-aware sequence compare: correct whenever coexisting
	// same-time events are fewer than 2^31 apart in scheduling order.
	return int32(a.seq-b.seq) < 0
}

// lessIdx is less as a 0/1 integer, written so the compiler lowers each
// clause to a flag materialization (SETcc) instead of a conditional
// jump — the pop path selects among children with arithmetic on these.
func lessIdx(a, b heapEntry) int {
	lt := 0
	if a.at < b.at {
		lt = 1
	}
	eq := 0
	if a.at == b.at {
		eq = 1
	}
	sl := 0
	if int32(a.seq-b.seq) < 0 {
		sl = 1
	}
	return lt | (eq & sl)
}

func (s *Scheduler) push(e heapEntry) {
	s.heap = append(s.heap, e)
	s.siftUp(len(s.heap) - 1)
}

// popRoot removes and returns the minimum entry. The caller releases
// its slot.
//
// Deletion is bottom-up (Wegener): the root hole is walked down the
// min-child path all the way to a leaf using only child-vs-child
// comparisons, then the detached last element is dropped into the hole
// and sifted up. The classic top-down variant also compares the moved
// last element at every level, and since that element came from the
// bottom it nearly always sinks back to the bottom — making those
// comparisons pure overhead on the simulator's hottest loop.
func (s *Scheduler) popRoot() heapEntry {
	h := s.heap
	root := h[0]
	n := len(h) - 1
	last := h[n]
	s.heap = h[:n]
	if n == 0 {
		return root
	}
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		var best int
		if first+4 <= n {
			// Full node, unrolled and branch-free: heap order is
			// effectively random, so data-dependent branches here
			// mispredict constantly; lessIdx turns each selection into
			// arithmetic, and the two pairwise minima are independent,
			// so they pipeline instead of serializing.
			b0 := first + lessIdx(h[first+1], h[first])
			b1 := first + 2 + lessIdx(h[first+3], h[first+2])
			best = b0 + (b1-b0)*lessIdx(h[b1], h[b0])
		} else {
			best = first
			for c := first + 1; c < n; c++ {
				if less(h[c], h[best]) {
					best = c
				}
			}
		}
		h[i] = h[best]
		i = best
	}
	h[i] = last
	s.siftUp(i)
	return root
}

func (s *Scheduler) siftUp(i int) {
	h := s.heap
	e := h[i]
	for i > 0 {
		p := (i - 1) / 4
		if !less(e, h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = e
}

func (s *Scheduler) siftDown(i int) {
	h := s.heap
	n := len(h)
	e := h[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if less(h[c], h[best]) {
				best = c
			}
		}
		if !less(h[best], e) {
			break
		}
		h[i] = h[best]
		i = best
	}
	h[i] = e
}
