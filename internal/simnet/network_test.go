package simnet

import (
	"testing"
	"time"
)

// twoNodes builds a <- link -> b with the given config.
func twoNodes(t *testing.T, cfg LinkConfig) (*Scheduler, *Network, *Node, *Node) {
	t.Helper()
	s := NewScheduler()
	net := NewNetwork(s)
	a := net.AddNode("a")
	b := net.AddNode("b")
	net.Connect(a, b, cfg)
	return s, net, a, b
}

func mkPacket(net *Network, src, dst *Node, size int) *Packet {
	return &Packet{
		ID:   net.NextPacketID(),
		Flow: FlowKey{Src: src.Addr(), Dst: dst.Addr(), SrcPort: 1000, DstPort: 80, Proto: ProtoTCP},
		Size: size,
	}
}

func TestPointToPointDelivery(t *testing.T) {
	s, net, a, b := twoNodes(t, LinkConfig{Rate: 8 * Mbps, Delay: 10 * time.Millisecond})
	var gotAt time.Duration
	var got *Packet
	b.SetDeliver(func(p *Packet) { got, gotAt = p, s.Now() })

	p := mkPacket(net, a, b, 1000) // 1000B at 8Mbps = 1ms serialization
	a.Inject(p)
	s.Run()

	if got == nil {
		t.Fatal("packet not delivered")
	}
	want := 11 * time.Millisecond // 1ms tx + 10ms propagation
	if gotAt != want {
		t.Fatalf("delivered at %v, want %v", gotAt, want)
	}
}

func TestSerializationQueueing(t *testing.T) {
	s, net, a, b := twoNodes(t, LinkConfig{Rate: 8 * Mbps, Delay: 0})
	var times []time.Duration
	b.SetDeliver(func(p *Packet) { times = append(times, s.Now()) })

	// Three 1000B packets injected together serialize back to back at
	// 1ms each.
	for i := 0; i < 3; i++ {
		a.Inject(mkPacket(net, a, b, 1000))
	}
	s.Run()
	if len(times) != 3 {
		t.Fatalf("delivered %d packets, want 3", len(times))
	}
	for i, want := range []time.Duration{1, 2, 3} {
		if times[i] != want*time.Millisecond {
			t.Fatalf("packet %d delivered at %v, want %vms", i, times[i], want)
		}
	}
}

func TestLoopbackImmediate(t *testing.T) {
	s, net, a, _ := twoNodes(t, LinkConfig{Rate: Gbps})
	var gotAt time.Duration = -1
	a.SetDeliver(func(p *Packet) { gotAt = s.Now() })
	p := mkPacket(net, a, a, 5000)
	p.Flow.Dst = a.Addr()
	a.Inject(p)
	s.Run()
	if gotAt != 0 {
		t.Fatalf("loopback delivered at %v, want immediately", gotAt)
	}
}

func TestMultiHopForwarding(t *testing.T) {
	s := NewScheduler()
	net := NewNetwork(s)
	a := net.AddNode("a")
	sw := net.AddNode("switch")
	b := net.AddNode("b")
	net.Connect(a, sw, LinkConfig{Rate: 8 * Mbps})
	net.Connect(sw, b, LinkConfig{Rate: 8 * Mbps})

	var got *Packet
	b.SetDeliver(func(p *Packet) { got = p })
	a.Inject(mkPacket(net, a, b, 1000))
	s.Run()

	if got == nil {
		t.Fatal("packet not forwarded across switch")
	}
	if got.TTL != DefaultTTL-1 {
		t.Fatalf("TTL = %d, want %d", got.TTL, DefaultTTL-1)
	}
	if sw.forwarded != 1 {
		t.Fatalf("switch forwarded %d, want 1", sw.forwarded)
	}
}

func TestShortestPathPrefersLowWeight(t *testing.T) {
	s := NewScheduler()
	net := NewNetwork(s)
	a := net.AddNode("a")
	b := net.AddNode("b")
	mid := net.AddNode("mid")
	direct := net.Connect(a, b, LinkConfig{Rate: Mbps})
	net.Connect(a, mid, LinkConfig{Rate: Gbps})
	net.Connect(mid, b, LinkConfig{Rate: Gbps})

	// Default weights: direct (1 hop) beats a->mid->b (2 hops).
	b.SetDeliver(func(p *Packet) {})
	a.Inject(mkPacket(net, a, b, 100))
	s.Run()
	if direct.A().TxPackets() != 1 {
		t.Fatal("direct link not used when cheapest")
	}

	// Penalize the direct link; the two-hop path wins.
	direct.SetWeight(10)
	net.ComputeRoutes()
	a.Inject(mkPacket(net, a, b, 100))
	s.Run()
	if direct.A().TxPackets() != 1 {
		t.Fatal("direct link used despite weight penalty")
	}
	if mid.forwarded != 1 {
		t.Fatal("two-hop path not used after reweighting")
	}
}

func TestFlowRouteOverride(t *testing.T) {
	s := NewScheduler()
	net := NewNetwork(s)
	a := net.AddNode("a")
	b := net.AddNode("b")
	mid := net.AddNode("mid")
	net.Connect(a, b, LinkConfig{Rate: Mbps})
	net.Connect(a, mid, LinkConfig{Rate: Mbps})
	viaMid := net.Connect(mid, b, LinkConfig{Rate: Mbps})

	p := mkPacket(net, a, b, 100)
	// Pin this flow through mid.
	a.SetFlowRoute(p.Flow, a.NICs()[1])
	b.SetDeliver(func(*Packet) {})
	a.Inject(p)
	s.Run()
	if viaMid.A().TxPackets() != 1 {
		t.Fatal("flow route override ignored")
	}

	// Remove the pin: back to the direct link.
	p2 := mkPacket(net, a, b, 100)
	a.SetFlowRoute(p2.Flow, nil)
	a.Inject(p2)
	s.Run()
	if viaMid.A().TxPackets() != 1 {
		t.Fatal("flow still pinned after removal")
	}
}

func TestQueueOverflowDrops(t *testing.T) {
	s, net, a, b := twoNodes(t, LinkConfig{Rate: 8 * Kbps, QueueBytes: 2500})
	drops := 0
	net.OnDrop(func(p *Packet, at *NIC) { drops++ })
	delivered := 0
	b.SetDeliver(func(*Packet) { delivered++ })

	// 1000B packets: 1 in flight + 2500B of queue = 3 accepted max at
	// injection time; the rest drop.
	for i := 0; i < 6; i++ {
		a.Inject(mkPacket(net, a, b, 1000))
	}
	s.Run()
	if drops == 0 {
		t.Fatal("no drops despite overflow")
	}
	if delivered+drops != 6 {
		t.Fatalf("delivered %d + drops %d != 6", delivered, drops)
	}
	if a.NICs()[0].Drops() != uint64(drops) {
		t.Fatalf("NIC drop counter %d, want %d", a.NICs()[0].Drops(), drops)
	}
}

func TestNoRouteDrop(t *testing.T) {
	s := NewScheduler()
	net := NewNetwork(s)
	a := net.AddNode("a")
	net.AddNode("island") // not connected
	drops := 0
	net.OnDrop(func(p *Packet, at *NIC) { drops++ })
	p := &Packet{Flow: FlowKey{Src: a.Addr(), Dst: net.Node("island").Addr()}, Size: 100}
	a.Inject(p)
	s.Run()
	if drops != 1 {
		t.Fatalf("drops = %d, want 1 (no route)", drops)
	}
}

func TestAddrString(t *testing.T) {
	a := AddrFromOctets(10, 0, 1, 2)
	if a.String() != "10.0.1.2" {
		t.Fatalf("Addr.String() = %q", a.String())
	}
}

func TestFlowKeyReverse(t *testing.T) {
	f := FlowKey{Src: 1, Dst: 2, SrcPort: 10, DstPort: 20, Proto: ProtoTCP}
	r := f.Reverse()
	if r.Src != 2 || r.Dst != 1 || r.SrcPort != 20 || r.DstPort != 10 {
		t.Fatalf("Reverse() = %+v", r)
	}
	if r.Reverse() != f {
		t.Fatal("double reverse != original")
	}
}

func TestFIFOBacklogAccounting(t *testing.T) {
	f := NewFIFO(3000)
	for i := 0; i < 3; i++ {
		if !f.Enqueue(&Packet{Size: 1000}) {
			t.Fatalf("enqueue %d rejected", i)
		}
	}
	if f.Enqueue(&Packet{Size: 1000}) {
		t.Fatal("enqueue beyond limit accepted")
	}
	if f.Backlog() != 3000 || f.Len() != 3 {
		t.Fatalf("backlog=%d len=%d", f.Backlog(), f.Len())
	}
	f.Dequeue()
	if f.Backlog() != 2000 || f.Len() != 2 {
		t.Fatalf("after dequeue backlog=%d len=%d", f.Backlog(), f.Len())
	}
	if f.Drops() != 1 {
		t.Fatalf("drops=%d, want 1", f.Drops())
	}
}

func TestBandwidthSharingTwoSenders(t *testing.T) {
	// Two senders into one switch, one egress: egress is the bottleneck
	// and total delivery time reflects its rate.
	s := NewScheduler()
	net := NewNetwork(s)
	a := net.AddNode("a")
	c := net.AddNode("c")
	sw := net.AddNode("sw")
	dst := net.AddNode("dst")
	net.Connect(a, sw, LinkConfig{Rate: 80 * Mbps})
	net.Connect(c, sw, LinkConfig{Rate: 80 * Mbps})
	net.Connect(sw, dst, LinkConfig{Rate: 8 * Mbps})

	var last time.Duration
	n := 0
	dst.SetDeliver(func(p *Packet) { last = s.Now(); n++ })
	for i := 0; i < 10; i++ {
		a.Inject(mkPacket(net, a, dst, 1000))
		c.Inject(mkPacket(net, c, dst, 1000))
	}
	s.Run()
	if n != 20 {
		t.Fatalf("delivered %d, want 20", n)
	}
	// 20 KB over 8 Mbps = 20 ms, plus the 0.1ms first-hop pipeline.
	if last < 20*time.Millisecond || last > 21*time.Millisecond {
		t.Fatalf("last delivery at %v, want ~20ms", last)
	}
}
