package simnet

import "fmt"

// Fidelity selects how faithfully a Network simulates data transfer.
//
// FidelityPacket is the classic discrete-event packet model: every MTU
// of every transfer is queued, serialized, propagated, and delivered as
// its own events. It is the reference fidelity — byte-exact queueing,
// AQM, and loss behavior — and the default.
//
// FidelityFlow replaces bulk transfers with analytic fluid flows: each
// transfer becomes one flow whose instantaneous rate is the max-min
// fair share of the links it crosses (progressive filling), and whose
// completion is a single scheduled event. Event cost per transfer is
// O(flow arrivals/departures on shared links) instead of O(bytes/MSS).
//
// FidelityHybrid keeps small messages and contended paths on the
// packet model and promotes only large clean-path transfers to fluid
// flows, demoting them back to packets the moment a bottleneck shows
// real packet contention or an impairment appears — queueing behavior
// stays packet-exact exactly where it shapes results.
//
// Every mode is internally deterministic: same seed, same byte-exact
// output, at any sweep parallelism.
type Fidelity uint8

const (
	FidelityPacket Fidelity = iota
	FidelityFlow
	FidelityHybrid
)

// String renders the fidelity as its flag spelling.
func (f Fidelity) String() string {
	switch f {
	case FidelityPacket:
		return "packet"
	case FidelityFlow:
		return "flow"
	case FidelityHybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("fidelity(%d)", uint8(f))
	}
}

// ParseFidelity parses the -fidelity flag spelling.
func ParseFidelity(s string) (Fidelity, error) {
	switch s {
	case "", "packet":
		return FidelityPacket, nil
	case "flow":
		return FidelityFlow, nil
	case "hybrid":
		return FidelityHybrid, nil
	default:
		return FidelityPacket, fmt.Errorf("simnet: unknown fidelity %q (want packet|flow|hybrid)", s)
	}
}

// defaultFidelity seeds every NewNetwork. Like MaxParallel in the
// experiment driver it is process-wide configuration written once at
// startup (meshbench -fidelity) before any simulation exists; sweeps
// running in parallel only read it.
var defaultFidelity = FidelityPacket

// SetDefaultFidelity sets the fidelity captured by subsequent
// NewNetwork calls. Call it before building simulations — never while
// a parallel sweep is running.
func SetDefaultFidelity(f Fidelity) { defaultFidelity = f }

// DefaultFidelity returns the fidelity NewNetwork will capture.
func DefaultFidelity() Fidelity { return defaultFidelity }

// Fidelity returns the network's simulation fidelity.
func (n *Network) Fidelity() Fidelity { return n.fidelity }

// SetFidelity overrides the network's fidelity, attaching (or
// dropping) the flow engine as needed. It must be called before any
// traffic flows: switching modes mid-simulation would strand active
// fluid flows.
func (n *Network) SetFidelity(f Fidelity) {
	n.fidelity = f
	if f == FidelityPacket {
		n.flowEng = nil
		return
	}
	if n.flowEng == nil {
		n.flowEng = newFlowEngine(n)
	}
}

// FlowEngine returns the network's fluid-flow engine, or nil in packet
// fidelity.
func (n *Network) FlowEngine() *FlowEngine { return n.flowEng }
