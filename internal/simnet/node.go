package simnet

import "fmt"

// DeliverFunc receives packets addressed to the local node. The
// transport layer registers one per node.
type DeliverFunc func(p *Packet)

// Node is a host or switch in the topology. A node has one primary
// address; hosts terminate traffic addressed to them, any node forwards
// other traffic along precomputed shortest-path routes.
type Node struct {
	id    int
	name  string
	addr  Addr
	net   *Network
	nics  []*NIC
	local DeliverFunc

	// flowRoutes overrides the destination-based route for specific
	// flows — the hook SDN-style traffic engineering uses.
	flowRoutes map[FlowKey]*NIC

	forwarded uint64
	delivered uint64
	ttlDrops  uint64
	noRoute   uint64
}

// ID returns the node's index within its network.
func (n *Node) ID() int { return n.id }

// Name returns the node's human-readable name.
func (n *Node) Name() string { return n.name }

// Addr returns the node's primary address.
func (n *Node) Addr() Addr { return n.addr }

// Network returns the owning network.
func (n *Node) Network() *Network { return n.net }

// NICs returns the node's interfaces in attachment order.
func (n *Node) NICs() []*NIC { return n.nics }

// SetDeliver registers the local delivery hook for packets addressed to
// this node.
func (n *Node) SetDeliver(fn DeliverFunc) { n.local = fn }

// SetFlowRoute pins packets of the given flow to egress via nic,
// bypassing destination-based routing. Passing a nil NIC removes the
// pin. This is the mechanism internal/sdn uses for traffic engineering.
func (n *Node) SetFlowRoute(flow FlowKey, nic *NIC) {
	if n.flowRoutes == nil {
		n.flowRoutes = make(map[FlowKey]*NIC)
	}
	if nic == nil {
		delete(n.flowRoutes, flow)
		return
	}
	n.flowRoutes[flow] = nic
}

// Inject sends a locally originated packet into the network. Loopback
// destinations deliver immediately (same-host communication, e.g. the
// app-to-sidecar hop, is architecturally negligible per the paper §3.1
// footnote).
func (n *Node) Inject(p *Packet) {
	if p.TTL == 0 {
		p.TTL = DefaultTTL
	}
	if p.Flow.Dst == n.addr {
		n.deliverLocal(p)
		return
	}
	n.route(p)
}

// receive handles a packet arriving on a NIC.
func (n *Node) receive(p *Packet, _ *NIC) {
	if p.Flow.Dst == n.addr {
		n.deliverLocal(p)
		return
	}
	p.TTL--
	if p.TTL <= 0 {
		n.ttlDrops++
		n.net.notifyDrop(p, nil)
		n.net.freePacket(p)
		return
	}
	n.route(p)
}

func (n *Node) deliverLocal(p *Packet) {
	n.delivered++
	if n.local != nil {
		n.local(p)
	}
	n.net.freePacket(p)
}

func (n *Node) route(p *Packet) {
	if nic, ok := n.flowRoutes[p.Flow]; ok {
		n.forwarded++
		nic.Send(p)
		return
	}
	nic := n.net.nextHop(n, p.Flow.Dst)
	if nic == nil {
		n.noRoute++
		n.net.notifyDrop(p, nil)
		n.net.freePacket(p)
		return
	}
	n.forwarded++
	nic.Send(p)
}

// String renders the node as name(addr).
func (n *Node) String() string { return fmt.Sprintf("%s(%v)", n.name, n.addr) }
