package simnet

import (
	"math/rand"
	"time"
)

// Impairment models stochastic link faults, netem-style: random loss,
// bit-error corruption (treated as loss), and reordering via random
// extra delay. All randomness is drawn from a seeded PRNG owned by the
// link direction, preserving run determinism.
type Impairment struct {
	// LossProb drops each packet independently with this probability.
	LossProb float64
	// JitterMax adds U(0, JitterMax) to each packet's propagation
	// delay. Packets taking different draws can arrive out of order,
	// which is how netem-style reordering emerges.
	JitterMax time.Duration
	// Seed drives the direction's PRNG.
	Seed int64
}

// impairedDir is per-direction impairment state.
type impairedDir struct {
	cfg Impairment
	rng *rand.Rand

	lost     uint64
	jittered uint64
}

// Impair attaches an impairment to the direction transmitting from
// this NIC. Passing a zero Impairment clears it. LossProb of exactly 1
// blackholes the direction — how chaos scenarios model a link going
// down entirely.
func (n *NIC) Impair(cfg Impairment) {
	if cfg.LossProb < 0 || cfg.LossProb > 1 {
		panic("simnet: LossProb must be in [0, 1]")
	}
	if cfg.LossProb == 0 && cfg.JitterMax == 0 {
		n.impair = nil
		return
	}
	n.impair = &impairedDir{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	if e := n.node.net.flowEng; e != nil {
		e.noteImpaired(n)
	}
}

// Impaired reports whether an impairment is currently attached.
func (n *NIC) Impaired() bool { return n.impair != nil }

// ImpairLost returns packets dropped by this direction's impairment.
func (n *NIC) ImpairLost() uint64 {
	if n.impair == nil {
		return 0
	}
	return n.impair.lost
}

// apply decides a packet's fate: dropped (false) or delivered with an
// extra jitter delay.
func (d *impairedDir) apply(p *Packet) (extra time.Duration, deliver bool) {
	if d.cfg.LossProb > 0 && d.rng.Float64() < d.cfg.LossProb {
		d.lost++
		return 0, false
	}
	if d.cfg.JitterMax > 0 {
		d.jittered++
		return time.Duration(d.rng.Int63n(int64(d.cfg.JitterMax))), true
	}
	return 0, true
}
