package simnet

import (
	"math"
	"time"
)

// Fluid-flow engine: the flow-level fast path behind FidelityFlow and
// FidelityHybrid.
//
// A fluid flow models one bulk transfer as a continuous stream instead
// of a train of per-MTU packet events. Every active flow has an
// instantaneous rate — its max-min fair share of the links on its path,
// computed by progressive filling over the current flow set — and the
// engine schedules exactly one event: the earliest flow completion.
// Between events each flow's remaining bytes drain analytically
// (remaining -= rate * dt), so the event cost of a transfer is
// O(flow arrivals and departures that share a link with it) rather than
// O(bytes/MSS). That is the entire speedup.
//
// Packets and fluid coexist on a link: a NIC carrying fluid rate r
// serializes packets at (line rate - r), floored at minResidualFrac of
// line rate, so control traffic sees the bandwidth the bulk transfers
// leave behind. In hybrid fidelity the coexistence is also the demotion
// sensor: a data-sized packet enqueued on a NIC whose fluid share is
// near capacity (or whose queue has a real backlog) is evidence of
// contention the fluid model cannot represent, and every flow crossing
// that NIC is demoted back to packet fidelity. Impairments, link down,
// and qdisc replacement demote unconditionally in both modes — loss,
// jitter, and AQM behavior only exist in the packet model.
//
// Determinism: flows are kept in ascending-id order and every
// computation iterates that slice (or per-path NIC slices); per-NIC
// rate state lives in NIC fields, so no maps are involved at all.
// Demotion callbacks are deferred through the scheduler (After(0)) so
// they run in stable event order rather than reentrantly inside
// whatever send path tripped the sensor. Rate recomputation is also
// deferred (the dirty/flush pair): a batch of flows starting at the
// same virtual instant — the signature of a large fan-in — costs one
// recompute instead of one per arrival, which is the difference
// between O(n) and O(n^2) for an n-flow burst.
const (
	// DemoteBacklog is the egress-queue depth (bytes) above which a path
	// is too contended for the fluid model: a promotion candidate must
	// have every hop's backlog below it, and in hybrid mode crossing it
	// demotes the flows on that NIC.
	DemoteBacklog = 32 * 1024

	// demoteSatFrac: in hybrid mode, a data packet entering a NIC whose
	// aggregate fluid rate is at least this fraction of the line rate
	// demotes the flows there — the link is effectively saturated, so
	// queueing now shapes results and must be simulated exactly.
	demoteSatFrac = 0.9

	// demoteDataBytes separates control traffic (ACKs, HTTP control
	// frames — header-sized) from data: packets at or below this size
	// never trigger demotion, or every ACK crossing a busy link would
	// evict its own flow.
	demoteDataBytes = 256

	// minResidualFrac floors the packet serialization rate on a
	// fluid-carrying NIC at this fraction of the line rate, so control
	// packets always make progress even under full fluid saturation.
	minResidualFrac = 0.01

	// completeEps: flows with at most this many bytes left are complete.
	// Completion timers are ceil-rounded to whole nanoseconds, so the
	// earliest flow reaches exactly 0 up to float error; 1e-3 bytes
	// absorbs that error at any transfer size this simulator reaches.
	completeEps = 1e-3

	// satEps is the relative residual capacity below which a link counts
	// as saturated during progressive filling.
	satEps = 1e-9

	// leafShortcutMin is the topology size at which single-NIC nodes
	// route via their only interface instead of a Dijkstra row. Small
	// topologies keep table routing so drop accounting for unreachable
	// destinations is byte-identical to the historical goldens.
	leafShortcutMin = 2048
)

// FlowID identifies an active fluid flow. IDs are never reused.
type FlowID int64

// fluidFlow is one active bulk transfer under fluid modeling. Flows are
// recycled through the engine's free list.
//
//meshvet:pooled
type fluidFlow struct {
	id        FlowID
	path      []*NIC  // egress NICs, source to destination order
	remaining float64 // bytes left to transfer
	rate      float64 // current fair share, bytes per second
	frozen    bool    // scratch flag during progressive filling
	onDone    func()  // invoked at completion time
	onDemote  func()  // deferred via After(0) when the flow is demoted
}

// FlowStats counts engine activity since creation.
type FlowStats struct {
	Started    uint64
	Completed  uint64
	Demoted    uint64
	Cancelled  uint64
	Recomputes uint64
	PeakActive int
}

// FlowEngine schedules fluid flows for one Network. It shares the
// network's scheduler and is single-threaded like everything else.
type FlowEngine struct {
	net   *Network
	sched *Scheduler

	flows   []*fluidFlow // active flows in ascending id order
	nextID  FlowID
	lastAdv time.Duration // virtual time of the last analytic advance
	timer   Timer         // the single pending completion timer
	timerFn func()        // bound onTimer, allocated once

	// dirty marks a pending recompute: Start/Cancel only mutate the flow
	// set and defer the (advance, recompute, reschedule) triple to a
	// same-timestamp flush event, coalescing bursts. flushFn is the bound
	// flush, allocated once.
	dirty   bool
	flushFn func()

	// nics lists the distinct NICs crossed by the active flows, in
	// first-seen (flow id, path position) order. The per-NIC numbers
	// live on the NICs themselves (fluidRate and the fluid* scratch).
	nics []*NIC

	pool []*fluidFlow // free list

	stats FlowStats
}

func newFlowEngine(n *Network) *FlowEngine {
	e := &FlowEngine{net: n, sched: n.sched}
	e.timerFn = e.onTimer
	e.flushFn = e.flush
	return e
}

// Start begins a fluid transfer of bytes along path. onDone runs at the
// analytic completion time; onDemote runs (deferred via the scheduler)
// if the flow is demoted back to packet fidelity before completing, at
// which point the caller re-sends the remaining range as packets.
func (e *FlowEngine) Start(path []*NIC, bytes int64, onDone, onDemote func()) FlowID {
	if len(path) == 0 {
		panic("simnet: fluid flow needs a non-empty path")
	}
	if bytes <= 0 {
		panic("simnet: fluid flow needs positive bytes")
	}
	f := e.alloc()
	e.nextID++
	f.id = e.nextID
	f.path = append(f.path[:0], path...)
	f.remaining = float64(bytes)
	f.onDone = onDone
	f.onDemote = onDemote
	e.flows = append(e.flows, f) //meshvet:allow poolescape the active set owns a flow until completion/demotion frees it
	e.stats.Started++
	if len(e.flows) > e.stats.PeakActive {
		e.stats.PeakActive = len(e.flows)
	}
	// The new flow joins with rate 0; existing rates stay valid until the
	// deferred flush advances and recomputes, so a same-instant burst of
	// arrivals costs one recompute total.
	e.markDirty()
	return f.id
}

// markDirty schedules a same-timestamp flush if one is not pending.
func (e *FlowEngine) markDirty() {
	if e.dirty {
		return
	}
	e.dirty = true
	e.sched.After(0, e.flushFn)
}

// flush runs the deferred recompute, unless something (a completion, a
// demotion, a rate query) already refreshed the engine.
func (e *FlowEngine) flush() {
	if !e.dirty {
		return
	}
	e.refresh()
}

// flushIfDirty refreshes synchronously so queries observe final rates
// even before the flush event runs.
func (e *FlowEngine) flushIfDirty() {
	if e.dirty {
		e.refresh()
	}
}

// refresh advances analytic state at the pre-mutation rates, then
// recomputes fair shares and re-arms the completion timer.
func (e *FlowEngine) refresh() {
	e.dirty = false
	e.advance()
	e.recompute()
	e.reschedule()
}

// Cancel removes an active flow without firing either callback (e.g.
// its connection tore down). It reports whether the flow was active.
func (e *FlowEngine) Cancel(id FlowID) bool {
	i := e.find(id)
	if i < 0 {
		return false
	}
	f := e.flows[i]
	copy(e.flows[i:], e.flows[i+1:])
	e.flows[len(e.flows)-1] = nil
	e.flows = e.flows[:len(e.flows)-1]
	e.free(f)
	e.stats.Cancelled++
	e.markDirty()
	return true
}

// Active returns the number of in-flight fluid flows.
func (e *FlowEngine) Active() int { return len(e.flows) }

// Stats returns cumulative engine counters.
func (e *FlowEngine) Stats() FlowStats { return e.stats }

// Remaining returns the bytes left in an active flow, advancing the
// analytic state to now first.
func (e *FlowEngine) Remaining(id FlowID) (float64, bool) {
	e.flushIfDirty()
	i := e.find(id)
	if i < 0 {
		return 0, false
	}
	e.advance()
	return e.flows[i].remaining, true
}

// Rate returns an active flow's current fair-share rate in bytes/sec.
func (e *FlowEngine) Rate(id FlowID) (float64, bool) {
	e.flushIfDirty()
	i := e.find(id)
	if i < 0 {
		return 0, false
	}
	return e.flows[i].rate, true
}

// ResolvePath walks the routing tables from src toward flow.Dst,
// returning the ordered egress NICs and the summed one-way propagation
// delay. Loopback (zero-hop) and unroutable destinations report !ok:
// neither benefits from fluid modeling.
func (e *FlowEngine) ResolvePath(src *Node, flow FlowKey) (path []*NIC, prop time.Duration, ok bool) {
	cur := src
	for hops := 0; cur.addr != flow.Dst; hops++ {
		if hops >= DefaultTTL {
			return nil, 0, false
		}
		nic, pinned := cur.flowRoutes[flow]
		if !pinned {
			nic = e.net.nextHop(cur, flow.Dst)
		}
		if nic == nil {
			return nil, 0, false
		}
		path = append(path, nic)
		prop += nic.link.cfg.Delay
		cur = nic.peer.node
	}
	if len(path) == 0 {
		return nil, 0, false
	}
	return path, prop, true
}

// PathEligible reports whether a path is clean enough for the fluid
// model right now: every hop up, unimpaired in both directions (the
// reverse direction carries the ACK), on a plain FIFO (custom qdiscs —
// shapers, AQM, priority — only exist in the packet model), and with a
// shallow egress queue.
func (e *FlowEngine) PathEligible(path []*NIC) bool {
	for _, nic := range path {
		if nic.link.down || nic.impair != nil || nic.peer.impair != nil {
			return false
		}
		if _, plain := nic.qdisc.(*FIFO); !plain {
			return false
		}
		if nic.qdisc.Backlog() >= DemoteBacklog {
			return false
		}
	}
	return true
}

// nicRate returns the aggregate fluid rate (bytes/sec) crossing nic.
func (e *FlowEngine) nicRate(n *NIC) float64 { return n.fluidRate }

// serializeDelay returns the serialization delay for size bytes leaving
// this NIC. A NIC carrying fluid serializes packets at the bandwidth
// the flows leave behind (floored at minResidualFrac of line rate);
// fluidRate is always 0 in packet fidelity, so packet mode takes the
// exact historical formula and stays byte-identical.
func (n *NIC) serializeDelay(size int) time.Duration {
	fluid := n.fluidRate
	if fluid == 0 {
		return n.link.serializationDelay(size)
	}
	avail := float64(n.link.cfg.Rate) - 8*fluid
	if floor := float64(n.link.cfg.Rate) * minResidualFrac; avail < floor {
		avail = floor
	}
	return time.Duration(float64(size*8) / avail * float64(time.Second))
}

// noteSend is the hybrid contention sensor, called for every packet
// accepted by a NIC's egress queue. A data-sized packet on a NIC whose
// fluid share is near line rate — or whose queue is building — means
// the fluid model is hiding real queueing, so the flows there demote.
func (e *FlowEngine) noteSend(n *NIC, size int) {
	if len(e.flows) == 0 || size <= demoteDataBytes || e.net.fidelity != FidelityHybrid {
		return
	}
	r := n.fluidRate
	if r == 0 {
		return
	}
	capBps := float64(n.link.cfg.Rate) / 8
	if r >= demoteSatFrac*capBps || n.qdisc.Backlog() >= DemoteBacklog {
		e.demoteNIC(n)
	}
}

// noteImpaired demotes every flow whose path crosses the impaired NIC
// in either direction — loss and jitter only exist in the packet model.
// Covers Impair, and SetDown via its impairment on both endpoints.
func (e *FlowEngine) noteImpaired(nic *NIC) {
	if len(e.flows) == 0 {
		return
	}
	e.demoteWhere(func(f *fluidFlow) bool {
		return pathHas(f.path, nic) || pathHas(f.path, nic.peer)
	})
}

// demoteNIC demotes every flow whose forward path crosses nic.
func (e *FlowEngine) demoteNIC(nic *NIC) {
	if len(e.flows) == 0 {
		return
	}
	e.demoteWhere(func(f *fluidFlow) bool { return pathHas(f.path, nic) })
}

func pathHas(path []*NIC, nic *NIC) bool {
	for _, n := range path {
		if n == nic {
			return true
		}
	}
	return false
}

// demoteWhere removes every flow matching hit and defers its onDemote
// through the scheduler. Deferral keeps demotion deterministic and
// non-reentrant: the sensor fires inside arbitrary send paths, and the
// owning connection must not re-enter its own send loop mid-send.
func (e *FlowEngine) demoteWhere(hit func(*fluidFlow) bool) {
	e.advance()
	n := len(e.flows)
	var victims []*fluidFlow
	keep := e.flows[:0]
	for _, f := range e.flows {
		if hit(f) {
			victims = append(victims, f) //meshvet:allow poolescape demotion batch: flows are freed below before their callbacks are scheduled
		} else {
			keep = append(keep, f) //meshvet:allow poolescape in-place filter of the engine's own active set
		}
	}
	if len(victims) == 0 {
		return // keep was refilled with the identical contents
	}
	for i := len(keep); i < n; i++ {
		e.flows[i] = nil
	}
	e.flows = keep
	e.stats.Demoted += uint64(len(victims))
	e.dirty = false // the full refresh below covers any pending flush
	e.recompute()
	e.reschedule()
	for _, f := range victims {
		cb := f.onDemote
		e.free(f)
		if cb != nil {
			e.sched.After(0, cb)
		}
	}
}

// advance drains every flow analytically from lastAdv to now. Called at
// the top of every mutation so rates always apply to current state.
func (e *FlowEngine) advance() {
	now := e.sched.Now()
	dt := now - e.lastAdv
	e.lastAdv = now
	if dt <= 0 || len(e.flows) == 0 {
		return
	}
	sec := float64(dt) / float64(time.Second)
	for _, f := range e.flows {
		if f.rate > 0 {
			f.remaining -= f.rate * sec
			if f.remaining < 0 {
				f.remaining = 0
			}
		}
	}
}

// recompute assigns every flow its max-min fair share by progressive
// filling: raise all unfrozen flows' rates uniformly until some link
// saturates, freeze the flows crossing it, repeat. All iteration is
// over slices in deterministic (flow id, path position) order, and all
// per-NIC numbers live in NIC fields — no maps, no allocation.
func (e *FlowEngine) recompute() {
	e.stats.Recomputes++
	// Reset the previous active set's per-NIC state (invariant:
	// fluidSeen is true exactly for members of e.nics).
	for _, nic := range e.nics {
		nic.fluidRate, nic.fluidCap, nic.fluidCnt, nic.fluidSeen = 0, 0, 0, false
	}
	e.nics = e.nics[:0]
	if len(e.flows) == 0 {
		return
	}

	// Collect the distinct NICs in first-seen order and count flows.
	for _, f := range e.flows {
		f.rate = 0
		f.frozen = false
		for _, nic := range f.path {
			if !nic.fluidSeen {
				nic.fluidSeen = true
				nic.fluidCap = float64(nic.link.cfg.Rate) / 8 // bytes/sec
				e.nics = append(e.nics, nic)
			}
			nic.fluidCnt++
		}
	}

	unfrozen := len(e.flows)
	for unfrozen > 0 {
		// The next uniform increment is the tightest per-flow share of
		// residual capacity across links still carrying unfrozen flows.
		inc := math.MaxFloat64
		for _, nic := range e.nics {
			if nic.fluidCnt > 0 {
				if s := nic.fluidCap / float64(nic.fluidCnt); s < inc {
					inc = s
				}
			}
		}
		if inc == math.MaxFloat64 {
			break
		}
		if inc > 0 {
			for _, f := range e.flows {
				if !f.frozen {
					f.rate += inc
				}
			}
			for _, nic := range e.nics {
				if nic.fluidCnt > 0 {
					nic.fluidCap -= inc * float64(nic.fluidCnt)
					if nic.fluidCap < 0 {
						nic.fluidCap = 0
					}
				}
			}
		}
		// Freeze flows crossing any link that just saturated.
		froze := 0
		for _, f := range e.flows {
			if f.frozen {
				continue
			}
			for _, nic := range f.path {
				if nic.fluidCap <= satEps*(float64(nic.link.cfg.Rate)/8) {
					f.frozen = true
					froze++
					for _, m := range f.path {
						m.fluidCnt--
					}
					break
				}
			}
		}
		if froze == 0 {
			break // float-degenerate increment: rates are already fair
		}
		unfrozen -= froze
	}

	for _, f := range e.flows {
		for _, nic := range f.path {
			nic.fluidRate += f.rate
		}
	}
}

// reschedule (re)arms the single completion timer for the earliest
// analytic completion. The delay is ceil-rounded to a whole nanosecond
// so the earliest flow has provably non-positive remaining at fire
// time regardless of float rounding.
func (e *FlowEngine) reschedule() {
	e.timer.Cancel()
	e.timer = Timer{}
	if len(e.flows) == 0 {
		return
	}
	earliest := math.MaxFloat64
	for _, f := range e.flows {
		if f.rate <= 0 {
			continue
		}
		if t := f.remaining / f.rate; t < earliest {
			earliest = t
		}
	}
	if earliest == math.MaxFloat64 {
		return
	}
	d := time.Duration(math.Ceil(earliest * float64(time.Second)))
	if d < 0 {
		d = 0
	}
	e.timer = e.sched.After(d, e.timerFn)
}

// onTimer completes every flow that has drained. Completions are
// removed from the engine — and the survivors' rates recomputed —
// before any callback runs, so callbacks observe a consistent engine
// and may immediately Start follow-on flows.
func (e *FlowEngine) onTimer() {
	e.timer = Timer{}
	e.advance()
	n := len(e.flows)
	var done []*fluidFlow
	keep := e.flows[:0]
	for _, f := range e.flows {
		if f.remaining <= completeEps {
			done = append(done, f) //meshvet:allow poolescape completion batch: flows are freed below before their callbacks run
		} else {
			keep = append(keep, f) //meshvet:allow poolescape in-place filter of the engine's own active set
		}
	}
	for i := len(keep); i < n; i++ {
		e.flows[i] = nil
	}
	e.flows = keep
	e.stats.Completed += uint64(len(done))
	e.dirty = false // the full refresh below covers any pending flush
	e.recompute()
	e.reschedule()
	for _, f := range done {
		cb := f.onDone
		e.free(f)
		if cb != nil {
			cb()
		}
	}
}

func (e *FlowEngine) find(id FlowID) int {
	for i, f := range e.flows {
		if f.id == id {
			return i
		}
	}
	return -1
}

func (e *FlowEngine) alloc() *fluidFlow {
	if k := len(e.pool); k > 0 {
		f := e.pool[k-1]
		e.pool = e.pool[:k-1]
		return f
	}
	return &fluidFlow{}
}

func (e *FlowEngine) free(f *fluidFlow) {
	f.id = 0
	for i := range f.path {
		f.path[i] = nil
	}
	f.path = f.path[:0]
	f.remaining, f.rate = 0, 0
	f.frozen = false
	f.onDone, f.onDemote = nil, nil
	e.pool = append(e.pool, f) //meshvet:allow poolescape this free list IS the pool: the one sanctioned retainer
}
