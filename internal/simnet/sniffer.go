package simnet

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Tap observes every packet a NIC serializes (after qdisc scheduling,
// before any impairment). Taps must not mutate the packet.
type Tap func(p *Packet, at time.Duration)

// SetTap installs (or clears, with nil) the NIC's transmit tap.
func (n *NIC) SetTap(t Tap) { n.tap = t }

// Sniffer is a convenience tap implementation: per-mark packet/byte
// counters plus a bounded ring of the most recent packet summaries —
// the tcpdump of the simulator.
type Sniffer struct {
	byMark  map[Mark]*SnifferCounters
	ring    []PacketRecord
	ringCap int
	next    int
	total   uint64
}

// SnifferCounters aggregate one mark's traffic.
type SnifferCounters struct {
	Packets uint64
	Bytes   uint64
}

// PacketRecord is one captured packet summary.
type PacketRecord struct {
	Time time.Duration
	Flow FlowKey
	Size int
	Mark Mark
}

// NewSniffer returns a sniffer keeping the last ringCap packet records
// (<= 0 keeps none; counters always work).
func NewSniffer(ringCap int) *Sniffer {
	if ringCap < 0 {
		ringCap = 0
	}
	return &Sniffer{byMark: make(map[Mark]*SnifferCounters), ringCap: ringCap}
}

// AttachTo installs the sniffer as the NIC's tap.
func (s *Sniffer) AttachTo(n *NIC) { n.SetTap(s.Observe) }

// Observe records one packet; usable directly as a Tap.
func (s *Sniffer) Observe(p *Packet, at time.Duration) {
	c := s.byMark[p.Mark]
	if c == nil {
		c = &SnifferCounters{}
		s.byMark[p.Mark] = c
	}
	c.Packets++
	c.Bytes += uint64(p.Size)
	s.total++
	if s.ringCap == 0 {
		return
	}
	rec := PacketRecord{Time: at, Flow: p.Flow, Size: p.Size, Mark: p.Mark}
	if len(s.ring) < s.ringCap {
		s.ring = append(s.ring, rec)
	} else {
		s.ring[s.next] = rec
		s.next = (s.next + 1) % s.ringCap
	}
}

// Total returns the number of packets observed.
func (s *Sniffer) Total() uint64 { return s.total }

// Counters returns the aggregate for a mark (zero value if none).
func (s *Sniffer) Counters(m Mark) SnifferCounters {
	if c := s.byMark[m]; c != nil {
		return *c
	}
	return SnifferCounters{}
}

// Recent returns the captured ring, oldest first.
func (s *Sniffer) Recent() []PacketRecord {
	if len(s.ring) < s.ringCap {
		out := make([]PacketRecord, len(s.ring))
		copy(out, s.ring)
		return out
	}
	out := make([]PacketRecord, 0, s.ringCap)
	out = append(out, s.ring[s.next:]...)
	out = append(out, s.ring[:s.next]...)
	return out
}

// Summary renders per-mark counters, sorted by mark.
func (s *Sniffer) Summary() string {
	marks := make([]int, 0, len(s.byMark))
	for m := range s.byMark {
		marks = append(marks, int(m))
	}
	sort.Ints(marks)
	var b strings.Builder
	for _, m := range marks {
		c := s.byMark[Mark(m)]
		fmt.Fprintf(&b, "mark=%d packets=%d bytes=%d\n", m, c.Packets, c.Bytes)
	}
	return b.String()
}
