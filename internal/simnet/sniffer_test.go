package simnet

import (
	"strings"
	"testing"
	"time"
)

func TestSnifferCountsByMark(t *testing.T) {
	s, net, a, b := twoNodes(t, LinkConfig{Rate: Gbps})
	sn := NewSniffer(4)
	sn.AttachTo(a.NICs()[0])
	b.SetDeliver(func(*Packet) {})
	for i := 0; i < 5; i++ {
		p := mkPacket(net, a, b, 1000)
		p.Mark = MarkHigh
		a.Inject(p)
	}
	for i := 0; i < 3; i++ {
		p := mkPacket(net, a, b, 500)
		p.Mark = MarkLow
		a.Inject(p)
	}
	s.Run()
	if sn.Total() != 8 {
		t.Fatalf("total = %d", sn.Total())
	}
	hi := sn.Counters(MarkHigh)
	if hi.Packets != 5 || hi.Bytes != 5000 {
		t.Fatalf("high = %+v", hi)
	}
	lo := sn.Counters(MarkLow)
	if lo.Packets != 3 || lo.Bytes != 1500 {
		t.Fatalf("low = %+v", lo)
	}
	if got := sn.Counters(MarkDefault); got.Packets != 0 {
		t.Fatalf("default = %+v", got)
	}
	if !strings.Contains(sn.Summary(), "mark=2 packets=5") {
		t.Fatalf("summary: %s", sn.Summary())
	}
}

func TestSnifferRingKeepsLatest(t *testing.T) {
	s, net, a, b := twoNodes(t, LinkConfig{Rate: Gbps})
	sn := NewSniffer(3)
	sn.AttachTo(a.NICs()[0])
	b.SetDeliver(func(*Packet) {})
	for i := 1; i <= 5; i++ {
		a.Inject(mkPacket(net, a, b, 100*i))
	}
	s.Run()
	recent := sn.Recent()
	if len(recent) != 3 {
		t.Fatalf("ring = %d", len(recent))
	}
	// Oldest-first: sizes 300, 400, 500.
	for i, want := range []int{300, 400, 500} {
		if recent[i].Size != want {
			t.Fatalf("ring[%d].Size = %d, want %d", i, recent[i].Size, want)
		}
	}
}

func TestSnifferZeroRing(t *testing.T) {
	s, net, a, b := twoNodes(t, LinkConfig{Rate: Gbps})
	sn := NewSniffer(0)
	sn.AttachTo(a.NICs()[0])
	b.SetDeliver(func(*Packet) {})
	a.Inject(mkPacket(net, a, b, 100))
	s.Run()
	if sn.Total() != 1 || len(sn.Recent()) != 0 {
		t.Fatalf("total=%d ring=%d", sn.Total(), len(sn.Recent()))
	}
}

func TestTapClearable(t *testing.T) {
	s, net, a, b := twoNodes(t, LinkConfig{Rate: Gbps})
	n := 0
	nic := a.NICs()[0]
	nic.SetTap(func(*Packet, time.Duration) { n++ })
	b.SetDeliver(func(*Packet) {})
	a.Inject(mkPacket(net, a, b, 100))
	s.Run()
	nic.SetTap(nil)
	a.Inject(mkPacket(net, a, b, 100))
	s.Run()
	if n != 1 {
		t.Fatalf("tap fired %d times, want 1", n)
	}
}
