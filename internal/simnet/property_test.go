package simnet

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// TestPropertyRandomTopologyReachability: on a random connected graph,
// every node can deliver a packet to every other node via the computed
// shortest-path routes.
func TestPropertyRandomTopologyReachability(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewScheduler()
		net := NewNetwork(s)
		n := 3 + rng.Intn(8)
		nodes := make([]*Node, n)
		for i := 0; i < n; i++ {
			nodes[i] = net.AddNode(string(rune('a' + i)))
		}
		// Spanning chain guarantees connectivity; extra random edges
		// add path diversity.
		for i := 1; i < n; i++ {
			net.Connect(nodes[i-1], nodes[i], LinkConfig{Rate: Gbps})
		}
		for e := 0; e < n; e++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i != j {
				net.Connect(nodes[i], nodes[j], LinkConfig{Rate: Gbps})
			}
		}
		delivered := map[Addr]int{}
		for _, dst := range nodes {
			dst := dst
			dst.SetDeliver(func(p *Packet) { delivered[p.Flow.Dst]++ })
		}
		want := 0
		for _, src := range nodes {
			for _, dst := range nodes {
				if src == dst {
					continue
				}
				want++
				src.Inject(&Packet{
					ID:   net.NextPacketID(),
					Flow: FlowKey{Src: src.Addr(), Dst: dst.Addr(), SrcPort: 1, DstPort: 2, Proto: ProtoTCP},
					Size: 100,
				})
			}
		}
		s.RunUntil(10 * time.Second)
		got := 0
		for _, c := range delivered {
			got += c
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyNoPacketInventedOrLostOnCleanLinks: byte conservation
// between injection and delivery on loss-free paths.
func TestPropertyNoPacketInventedOrLostOnCleanLinks(t *testing.T) {
	f := func(seed int64, count uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewScheduler()
		net := NewNetwork(s)
		a := net.AddNode("a")
		mid := net.AddNode("mid")
		b := net.AddNode("b")
		net.Connect(a, mid, LinkConfig{Rate: 100 * Mbps})
		net.Connect(mid, b, LinkConfig{Rate: 100 * Mbps})

		var sentBytes, gotBytes int
		b.SetDeliver(func(p *Packet) { gotBytes += p.Size })
		n := 1 + int(count)%60
		for i := 0; i < n; i++ {
			size := 40 + rng.Intn(1400)
			sentBytes += size
			a.Inject(&Packet{
				ID:   net.NextPacketID(),
				Flow: FlowKey{Src: a.Addr(), Dst: b.Addr(), SrcPort: 1, DstPort: 2, Proto: ProtoTCP},
				Size: size,
			})
		}
		s.Run()
		return gotBytes == sentBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}
