package simnet

import "time"

// Qdisc is a queueing discipline attached to a NIC's egress. The NIC
// enqueues outbound packets and pulls the next packet to serialize
// whenever the link becomes free.
//
// Implementations beyond the basic FIFO live in internal/tc.
type Qdisc interface {
	// Enqueue accepts a packet or drops it (returns false), e.g. when a
	// byte limit is exceeded.
	Enqueue(p *Packet) bool
	// Dequeue returns the next packet to transmit, or nil if none is
	// eligible right now.
	Dequeue() *Packet
	// Len returns the number of queued packets.
	Len() int
	// Backlog returns the queued bytes.
	Backlog() int
}

// Waker is an optional Qdisc extension for disciplines that can hold
// eligible packets until a future time (e.g. token-bucket shapers).
// After a nil Dequeue, the NIC asks for the next time a packet may
// become eligible and schedules a retry.
type Waker interface {
	// NextWake returns the earliest absolute time at which Dequeue may
	// return a packet, and whether such a time exists.
	NextWake(now time.Duration) (time.Duration, bool)
}

// FIFO is a byte-bounded droptail queue, the default qdisc on every NIC.
type FIFO struct {
	limit   int // bytes; <=0 means DefaultFIFOLimit
	queue   []*Packet
	backlog int
	drops   uint64
}

// DefaultFIFOLimit is the byte limit of a zero-configured FIFO,
// comparable to a typical 1000-packet txqueuelen of MTU-sized frames.
const DefaultFIFOLimit = 1000 * MTU

// NewFIFO returns a droptail FIFO holding at most limitBytes of packets.
// limitBytes <= 0 selects DefaultFIFOLimit.
func NewFIFO(limitBytes int) *FIFO {
	if limitBytes <= 0 {
		limitBytes = DefaultFIFOLimit
	}
	return &FIFO{limit: limitBytes}
}

// Enqueue implements Qdisc.
func (f *FIFO) Enqueue(p *Packet) bool {
	if f.limit == 0 {
		f.limit = DefaultFIFOLimit
	}
	if f.backlog+p.Size > f.limit {
		f.drops++
		return false
	}
	f.queue = append(f.queue, p) //meshvet:allow poolescape a queued packet is live; it reaches its terminal free point only after Dequeue
	f.backlog += p.Size
	return true
}

// Dequeue implements Qdisc.
func (f *FIFO) Dequeue() *Packet {
	if len(f.queue) == 0 {
		return nil
	}
	p := f.queue[0]
	f.queue[0] = nil
	f.queue = f.queue[1:]
	f.backlog -= p.Size
	return p
}

// Len implements Qdisc.
func (f *FIFO) Len() int { return len(f.queue) }

// Backlog implements Qdisc.
func (f *FIFO) Backlog() int { return f.backlog }

// Drops returns the number of packets dropped at enqueue.
func (f *FIFO) Drops() uint64 { return f.drops }
