package simnet

import (
	"strings"
	"testing"
	"time"
)

func TestStringFormats(t *testing.T) {
	s := NewScheduler()
	net := NewNetwork(s)
	a := net.AddNode("alpha")
	b := net.AddNode("beta")
	l := net.Connect(a, b, LinkConfig{Rate: Gbps})
	if got := a.String(); !strings.Contains(got, "alpha") || !strings.Contains(got, "10.0.0.1") {
		t.Fatalf("node string: %q", got)
	}
	if got := l.String(); !strings.Contains(got, "alpha") || !strings.Contains(got, "beta") {
		t.Fatalf("link string: %q", got)
	}
	f := FlowKey{Src: a.Addr(), Dst: b.Addr(), SrcPort: 1, DstPort: 2, Proto: ProtoTCP}
	if got := f.String(); !strings.Contains(got, "->") || !strings.Contains(got, "/6") {
		t.Fatalf("flow string: %q", got)
	}
}

func TestSchedulerStepsCounter(t *testing.T) {
	s := NewScheduler()
	for i := 0; i < 5; i++ {
		s.After(time.Duration(i), func() {})
	}
	s.Run()
	if s.Steps() != 5 {
		t.Fatalf("steps = %d", s.Steps())
	}
}

func TestNetworkAccessors(t *testing.T) {
	s := NewScheduler()
	net := NewNetwork(s)
	a := net.AddNode("a")
	if net.Scheduler() != s {
		t.Fatal("scheduler accessor")
	}
	if net.Node("a") != a || net.Node("zz") != nil {
		t.Fatal("node lookup")
	}
	if net.NodeByAddr(a.Addr()) != a || net.NodeByAddr(0) != nil {
		t.Fatal("addr lookup")
	}
	if len(net.Nodes()) != 1 || len(net.Links()) != 0 {
		t.Fatal("listing")
	}
	if a.Network() != net || a.ID() != 0 || a.Name() != "a" {
		t.Fatal("node accessors")
	}
}

func TestConnectValidation(t *testing.T) {
	s := NewScheduler()
	net := NewNetwork(s)
	a := net.AddNode("a")
	b := net.AddNode("b")
	for _, f := range []func(){
		func() { net.Connect(a, b, LinkConfig{}) },
		func() { net.Connect(a, a, LinkConfig{Rate: Gbps}) },
		func() { net.AddNode("a") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid operation accepted")
				}
			}()
			f()
		}()
	}
}

func TestNICAccessors(t *testing.T) {
	s := NewScheduler()
	net := NewNetwork(s)
	a := net.AddNode("a")
	b := net.AddNode("b")
	l := net.Connect(a, b, LinkConfig{Rate: Gbps})
	nic := a.NICs()[0]
	if nic.Node() != a || nic.Link() != l || nic.Peer() != l.B() {
		t.Fatal("NIC topology accessors")
	}
	if nic.Qdisc() == nil {
		t.Fatal("default qdisc missing")
	}
	nic.SetQdisc(nil) // resets to a fresh FIFO
	if nic.Qdisc() == nil {
		t.Fatal("nil SetQdisc did not install a FIFO")
	}
	if l.ID() != 0 || l.Config().Rate != Gbps {
		t.Fatal("link accessors")
	}
}
