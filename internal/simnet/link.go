package simnet

import (
	"fmt"
	"time"
)

// LinkConfig describes one point-to-point link. Links are full duplex:
// Rate applies independently to each direction.
type LinkConfig struct {
	// Rate is the line rate in bits per second. Must be > 0.
	Rate int64
	// Delay is the one-way propagation delay.
	Delay time.Duration
	// QueueBytes bounds each direction's egress FIFO. <= 0 selects
	// DefaultFIFOLimit. Ignored for directions that later have a custom
	// qdisc installed via NIC.SetQdisc.
	QueueBytes int
}

// Gbps and Mbps are convenience multipliers for LinkConfig.Rate.
const (
	Kbps int64 = 1_000
	Mbps int64 = 1_000_000
	Gbps int64 = 1_000_000_000
)

// Link is a full-duplex point-to-point link between two NICs.
type Link struct {
	id     int
	cfg    LinkConfig
	a, b   *NIC
	net    *Network
	weight float64 // routing cost; default 1
	down   bool    // administratively down via SetDown
}

// Config returns the link's configuration.
func (l *Link) Config() LinkConfig { return l.cfg }

// A returns the NIC on the first endpoint (the node passed first to
// Connect); B the second.
func (l *Link) A() *NIC { return l.a }

// B returns the NIC on the second endpoint.
func (l *Link) B() *NIC { return l.b }

// ID returns the link's index within its Network.
func (l *Link) ID() int { return l.id }

// SetWeight overrides the link's routing cost (default 1). Routes must
// be recomputed with Network.ComputeRoutes to take effect.
func (l *Link) SetWeight(w float64) { l.weight = w }

// String identifies the link by its endpoints.
func (l *Link) String() string {
	return fmt.Sprintf("link%d(%s<->%s)", l.id, l.a.node.Name(), l.b.node.Name())
}

// SetDown blackholes (down = true) or restores (down = false) both
// directions of the link by installing a LossProb-1 impairment on each
// NIC — the primitive correlated-failure scenarios use to sever a zone
// uplink or spine link in one call. Restoring clears any impairment on
// the link, including one installed before SetDown(true).
func (l *Link) SetDown(down bool) {
	var cfg Impairment
	if down {
		cfg = Impairment{LossProb: 1}
	}
	l.a.Impair(cfg)
	l.b.Impair(cfg)
	l.down = down
}

// Down reports whether the link is administratively down via SetDown.
func (l *Link) Down() bool { return l.down }

// serializationDelay returns the time to clock size bytes onto the wire.
func (l *Link) serializationDelay(size int) time.Duration {
	return time.Duration(float64(size*8) / float64(l.cfg.Rate) * float64(time.Second))
}

// NIC is one endpoint of a Link. Outbound packets pass through its
// egress qdisc; the NIC serializes one packet at a time at the link
// rate, then the packet propagates for the link delay and is handed to
// the peer node.
type NIC struct {
	node  *Node
	link  *Link
	peer  *NIC
	qdisc Qdisc
	busy  bool

	// Stats.
	txPackets, txBytes uint64
	rxPackets, rxBytes uint64
	dropPackets        uint64

	wakeTimer Timer
	impair    *impairedDir
	tap       Tap

	// txPacket is the packet currently being serialized (one at a time
	// per direction), and txDone the reusable serialization-finished
	// callback — allocated once per NIC instead of once per packet.
	txPacket *Packet
	txDone   func()

	// Flow-engine state, owned by FlowEngine.recompute. fluidRate is the
	// aggregate fluid throughput (bytes/sec) crossing this NIC — always 0
	// in packet fidelity; the rest is progressive-filling scratch. Kept
	// as fields rather than engine-side maps so the recompute hot path
	// and the per-packet serializeDelay lookup stay allocation- and
	// hash-free.
	fluidRate float64
	fluidCap  float64
	fluidCnt  int
	fluidSeen bool
}

// Node returns the node the NIC belongs to.
func (n *NIC) Node() *Node { return n.node }

// Link returns the attached link.
func (n *NIC) Link() *Link { return n.link }

// Peer returns the NIC at the other end of the link.
func (n *NIC) Peer() *NIC { return n.peer }

// Qdisc returns the egress queueing discipline.
func (n *NIC) Qdisc() Qdisc { return n.qdisc }

// SetQdisc replaces the egress qdisc. Packets already queued in the old
// discipline are dropped (mirroring `tc qdisc replace`). Fluid flows
// crossing this NIC demote: custom disciplines only exist in the
// packet model.
func (n *NIC) SetQdisc(q Qdisc) {
	if q == nil {
		q = NewFIFO(0)
	}
	n.qdisc = q
	if e := n.node.net.flowEng; e != nil {
		e.demoteNIC(n)
	}
}

// TxBytes returns cumulative bytes serialized onto the link.
// SDN-style controllers poll this to estimate utilization.
func (n *NIC) TxBytes() uint64 { return n.txBytes }

// TxPackets returns cumulative packets serialized onto the link.
func (n *NIC) TxPackets() uint64 { return n.txPackets }

// RxBytes returns cumulative bytes received from the link.
func (n *NIC) RxBytes() uint64 { return n.rxBytes }

// RxPackets returns cumulative packets received from the link.
func (n *NIC) RxPackets() uint64 { return n.rxPackets }

// Drops returns packets dropped at enqueue by the egress qdisc.
func (n *NIC) Drops() uint64 { return n.dropPackets }

// QueueDepth returns the current egress backlog in bytes.
func (n *NIC) QueueDepth() int { return n.qdisc.Backlog() }

// Send enqueues a packet for transmission. The packet is dropped if the
// qdisc rejects it.
func (n *NIC) Send(p *Packet) {
	sched := n.node.net.sched
	p.EnqueuedAt = sched.Now()
	if !n.qdisc.Enqueue(p) {
		n.dropPackets++
		n.node.net.notifyDrop(p, n)
		n.node.net.freePacket(p)
		return
	}
	if e := n.node.net.flowEng; e != nil {
		e.noteSend(n, p.Size)
	}
	if !n.busy {
		n.transmitNext()
	}
}

// transmitNext pulls the next eligible packet from the qdisc and clocks
// it onto the wire. If the qdisc holds packets that only become eligible
// later (shapers), a wake-up is scheduled.
func (n *NIC) transmitNext() {
	sched := n.node.net.sched
	p := n.qdisc.Dequeue()
	if p == nil {
		n.busy = false
		if w, ok := n.qdisc.(Waker); ok {
			if at, ok := w.NextWake(sched.Now()); ok {
				n.scheduleWake(at)
			}
		}
		return
	}
	n.busy = true
	if p.SentAt == 0 {
		p.SentAt = sched.Now()
	}
	tx := n.serializeDelay(p.Size)
	n.txPackets++
	n.txBytes += uint64(p.Size)
	if n.tap != nil {
		n.tap(p, sched.Now())
	}
	n.txPacket = p //meshvet:allow poolescape NIC owns the packet while it serializes; handed off or freed in onTxDone
	if n.txDone == nil {
		n.txDone = n.onTxDone
	}
	sched.After(tx, n.txDone)
}

// onTxDone runs when the current packet's last bit hits the wire:
// apply any impairment, propagate, then free the line.
func (n *NIC) onTxDone() {
	p := n.txPacket
	n.txPacket = nil
	extra := time.Duration(0)
	deliver := true
	if n.impair != nil {
		extra, deliver = n.impair.apply(p)
	}
	if deliver {
		net := n.node.net
		net.sched.After(n.link.cfg.Delay+extra, net.allocInFlight(n.peer, p).fn)
	} else {
		n.node.net.notifyDrop(p, n)
		n.node.net.freePacket(p)
	}
	n.transmitNext()
}

func (n *NIC) scheduleWake(at time.Duration) {
	sched := n.node.net.sched
	if !n.wakeTimer.Stopped() {
		return
	}
	n.wakeTimer = sched.At(at, func() {
		if !n.busy {
			n.transmitNext()
		}
	})
}

func (n *NIC) receive(p *Packet) {
	n.rxPackets++
	n.rxBytes += uint64(p.Size)
	n.node.receive(p, n)
}
