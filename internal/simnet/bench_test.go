package simnet

import (
	"testing"
	"time"
)

// BenchmarkScheduler measures the event-loop hot path: a steady
// population of outstanding timers, each firing and rescheduling
// itself, so every iteration is one schedule + one heap pop + one
// dispatch. This is the engine cost under every experiment in the
// repo; events/sec here is the ceiling on simulated traffic.
func BenchmarkScheduler(b *testing.B) {
	s := NewScheduler()
	const population = 1024
	scheduled := 0
	var tick func()
	tick = func() {
		if scheduled < b.N {
			scheduled++
			s.After(time.Duration(scheduled%13+1)*time.Microsecond, tick)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < population && scheduled < b.N; i++ {
		scheduled++
		s.After(time.Duration(i%13+1)*time.Microsecond, tick)
	}
	s.Run()
	b.StopTimer()
	if got := s.Steps(); got != uint64(scheduled) {
		b.Fatalf("executed %d events, scheduled %d", got, scheduled)
	}
}

// BenchmarkSchedulerCancel measures timer churn: schedule + cancel
// without firing, the retry-timer pattern that dominates chaos runs.
func BenchmarkSchedulerCancel(b *testing.B) {
	s := NewScheduler()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := s.After(time.Duration(i%977+1)*time.Microsecond, fn)
		t.Cancel()
		if i%1024 == 1023 {
			// Drain occasionally so the heap reflects steady-state
			// cancelled-event handling, not unbounded growth.
			s.RunFor(time.Microsecond)
		}
	}
	b.StopTimer()
	s.Run()
}

// BenchmarkPacketPath measures the packet hot path end to end: inject
// -> route -> qdisc -> serialize at line rate -> propagate -> deliver,
// with a fixed window of packets in flight over one 15 Gbps link.
func BenchmarkPacketPath(b *testing.B) {
	s := NewScheduler()
	net := NewNetwork(s)
	na, nb := net.AddNode("a"), net.AddNode("b")
	net.Connect(na, nb, LinkConfig{Rate: 15 * Gbps, Delay: 10 * time.Microsecond})
	flow := FlowKey{Src: na.Addr(), Dst: nb.Addr(), SrcPort: 1, DstPort: 2, Proto: ProtoUDP}
	const window = 64
	sent, delivered := 0, 0
	var send func()
	send = func() {
		for sent < b.N && sent-delivered < window {
			p := net.AllocPacket()
			p.Flow = flow
			p.Size = MTU
			na.Inject(p)
			sent++
		}
	}
	nb.SetDeliver(func(p *Packet) { delivered++; send() })
	b.ReportAllocs()
	b.ResetTimer()
	send()
	s.Run()
	b.StopTimer()
	if delivered != b.N {
		b.Fatalf("delivered %d packets, want %d", delivered, b.N)
	}
}
