package simnet

import (
	"testing"
	"time"
)

// BenchmarkScheduler measures the event-loop hot path: a steady
// population of outstanding timers, each firing and rescheduling
// itself, so every iteration is one schedule + one heap pop + one
// dispatch. This is the engine cost under every experiment in the
// repo; events/sec here is the ceiling on simulated traffic.
func BenchmarkScheduler(b *testing.B) {
	s := NewScheduler()
	const population = 1024
	scheduled := 0
	var tick func()
	tick = func() {
		if scheduled < b.N {
			scheduled++
			s.After(time.Duration(scheduled%13+1)*time.Microsecond, tick)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < population && scheduled < b.N; i++ {
		scheduled++
		s.After(time.Duration(i%13+1)*time.Microsecond, tick)
	}
	s.Run()
	b.StopTimer()
	if got := s.Steps(); got != uint64(scheduled) {
		b.Fatalf("executed %d events, scheduled %d", got, scheduled)
	}
}

// BenchmarkSchedulerCancel measures timer churn: schedule + cancel
// without firing, the retry-timer pattern that dominates chaos runs.
func BenchmarkSchedulerCancel(b *testing.B) {
	s := NewScheduler()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := s.After(time.Duration(i%977+1)*time.Microsecond, fn)
		t.Cancel()
		if i%1024 == 1023 {
			// Drain occasionally so the heap reflects steady-state
			// cancelled-event handling, not unbounded growth.
			s.RunFor(time.Microsecond)
		}
	}
	b.StopTimer()
	s.Run()
}

// BenchmarkPacketPath measures the packet hot path end to end: inject
// -> route -> qdisc -> serialize at line rate -> propagate -> deliver,
// with a fixed window of packets in flight over one 15 Gbps link.
func BenchmarkPacketPath(b *testing.B) {
	s := NewScheduler()
	net := NewNetwork(s)
	na, nb := net.AddNode("a"), net.AddNode("b")
	net.Connect(na, nb, LinkConfig{Rate: 15 * Gbps, Delay: 10 * time.Microsecond})
	flow := FlowKey{Src: na.Addr(), Dst: nb.Addr(), SrcPort: 1, DstPort: 2, Proto: ProtoUDP}
	const window = 64
	sent, delivered := 0, 0
	var send func()
	send = func() {
		for sent < b.N && sent-delivered < window {
			p := net.AllocPacket()
			p.Flow = flow
			p.Size = MTU
			na.Inject(p)
			sent++
		}
	}
	nb.SetDeliver(func(p *Packet) { delivered++; send() })
	b.ReportAllocs()
	b.ResetTimer()
	send()
	s.Run()
	b.StopTimer()
	if delivered != b.N {
		b.Fatalf("delivered %d packets, want %d", delivered, b.N)
	}
}

// BenchmarkFlowScheduler measures the flow-engine hot path: a steady
// population of fluid flows arriving, sharing a two-hop path, and
// completing, so every iteration is one Start + its share of the
// batched recompute + one completion dispatch. ns/op here is the cost
// of simulating one entire bulk transfer under flow fidelity — compare
// against BenchmarkPacketPath times the packets such a transfer needs.
func BenchmarkFlowScheduler(b *testing.B) {
	s := NewScheduler()
	net := NewNetwork(s)
	net.SetFidelity(FidelityFlow)
	na, sw, nb := net.AddNode("a"), net.AddNode("sw"), net.AddNode("b")
	net.Connect(na, sw, LinkConfig{Rate: 10 * Gbps, Delay: 10 * time.Microsecond})
	net.Connect(sw, nb, LinkConfig{Rate: 10 * Gbps, Delay: 10 * time.Microsecond})
	eng := net.FlowEngine()
	path, _, ok := eng.ResolvePath(na, FlowKey{Src: na.Addr(), Dst: nb.Addr()})
	if !ok {
		b.Fatal("no path")
	}
	const population = 16
	started := 0
	var onDone func()
	start := func() {
		if started < b.N {
			started++
			eng.Start(path, 1<<20, onDone, nil)
		}
	}
	onDone = start
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < population && started < b.N; i++ {
		start()
	}
	s.Run()
	b.StopTimer()
	if got := eng.Stats().Completed; got != uint64(b.N) {
		b.Fatalf("completed %d flows, want %d", got, b.N)
	}
}

// BenchmarkHybridPacketPath measures the packet hot path with the
// hybrid flow engine armed and fluid resident on the link: every
// packet pays the residual-rate serialization coupling plus the
// contention sensor. The delta against BenchmarkPacketPath is the
// per-packet cost of hybrid fidelity.
func BenchmarkHybridPacketPath(b *testing.B) {
	s := NewScheduler()
	net := NewNetwork(s)
	net.SetFidelity(FidelityHybrid)
	na, nb := net.AddNode("a"), net.AddNode("b")
	nc := net.AddNode("c")
	net.Connect(na, nb, LinkConfig{Rate: 15 * Gbps, Delay: 10 * time.Microsecond})
	// A long-lived fluid flow crosses the benchmark link but is
	// bottlenecked by its 1 Gbps first hop, keeping its share below the
	// demotion threshold while exercising the coupled serialization.
	net.Connect(nc, na, LinkConfig{Rate: 1 * Gbps, Delay: 10 * time.Microsecond})
	eng := net.FlowEngine()
	fpath, _, ok := eng.ResolvePath(nc, FlowKey{Src: nc.Addr(), Dst: nb.Addr()})
	if !ok {
		b.Fatal("no fluid path")
	}
	eng.Start(fpath, 1<<50, nil, nil)
	flow := FlowKey{Src: na.Addr(), Dst: nb.Addr(), SrcPort: 1, DstPort: 2, Proto: ProtoUDP}
	// 16-packet window: a deeper burst would cross DemoteBacklog and
	// evict the resident flow mid-benchmark.
	const window = 16
	sent, delivered := 0, 0
	var send func()
	send = func() {
		for sent < b.N && sent-delivered < window {
			p := net.AllocPacket()
			p.Flow = flow
			p.Size = MTU
			na.Inject(p)
			sent++
		}
	}
	nb.SetDeliver(func(p *Packet) { delivered++; send() })
	b.ReportAllocs()
	b.ResetTimer()
	send()
	s.Run()
	b.StopTimer()
	if delivered != b.N {
		b.Fatalf("delivered %d packets, want %d", delivered, b.N)
	}
	if eng.Stats().Demoted != 0 {
		b.Fatal("fluid flow demoted: the benchmark must measure coexistence, not demotion")
	}
}
