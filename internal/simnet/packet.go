package simnet

import (
	"fmt"
	"time"
)

// Addr is a node address, rendered IPv4-style for readability. Address 0
// is the zero/unspecified address.
type Addr uint32

// String renders the address as a dotted quad.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// AddrFromOctets builds an address from four octets.
func AddrFromOctets(a, b, c, d byte) Addr {
	return Addr(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// Protocol numbers carried in FlowKey.Proto. Values mirror IANA where a
// counterpart exists, but are only compared for equality.
const (
	ProtoTCP uint8 = 6
	ProtoUDP uint8 = 17
)

// FlowKey identifies a transport flow (5-tuple). It is comparable and
// usable as a map key.
type FlowKey struct {
	Src, Dst         Addr
	SrcPort, DstPort uint16
	Proto            uint8
}

// Reverse returns the key of the reverse direction of the flow.
func (f FlowKey) Reverse() FlowKey {
	return FlowKey{Src: f.Dst, Dst: f.Src, SrcPort: f.DstPort, DstPort: f.SrcPort, Proto: f.Proto}
}

// String renders the flow as "src:sport->dst:dport/proto".
func (f FlowKey) String() string {
	return fmt.Sprintf("%v:%d->%v:%d/%d", f.Src, f.SrcPort, f.Dst, f.DstPort, f.Proto)
}

// Mark is a packet priority mark, analogous to a DSCP codepoint or an
// fwmark. Cross-layer prioritization stamps marks at the sidecar and TC
// filters match on them. Higher values mean higher priority.
type Mark uint8

// Well-known marks used by the prioritization case study.
const (
	MarkDefault Mark = 0 // unmarked traffic
	MarkLow     Mark = 1 // latency-insensitive (scavenger class)
	MarkHigh    Mark = 2 // latency-sensitive
)

// Packet is the unit of transmission. Payload carries the upper layer's
// segment; Size is the full on-wire size in bytes, which is what links
// and queues account.
//
// Packets are recycled through Network.pktPool: after the terminal
// delivery/drop point a Packet may be scrubbed and reused at any time,
// so references must not outlive the callback they were handed to
// (enforced by meshvet's poolescape analyzer).
//
//meshvet:pooled
type Packet struct {
	ID      uint64
	Flow    FlowKey
	Size    int
	Mark    Mark
	Payload any

	// SentAt is stamped by the first NIC that serializes the packet;
	// EnqueuedAt by the qdisc on enqueue (for queueing-delay stats).
	SentAt     time.Duration
	EnqueuedAt time.Duration

	// TTL guards against routing loops. Forwarding decrements it and
	// drops the packet at zero.
	TTL int
}

// DefaultTTL is assigned to packets injected with a zero TTL.
const DefaultTTL = 64

// MTU is the maximum transmission unit used by the transport layer when
// segmenting byte streams. Links themselves accept any Size; MTU is a
// convention shared with internal/transport.
const MTU = 1500

// HeaderBytes approximates per-packet L3/L4 header overhead, counted in
// Packet.Size on top of the payload bytes.
const HeaderBytes = 40
