package simnet

import (
	"testing"
	"time"
)

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler()
	var got []int
	s.At(30*time.Millisecond, func() { got = append(got, 3) })
	s.At(10*time.Millisecond, func() { got = append(got, 1) })
	s.At(20*time.Millisecond, func() { got = append(got, 2) })
	s.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events ran out of order: %v", got)
	}
	if s.Now() != 30*time.Millisecond {
		t.Fatalf("clock = %v, want 30ms", s.Now())
	}
}

func TestSchedulerSameTimeFIFO(t *testing.T) {
	s := NewScheduler()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Millisecond, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestSchedulerAfterRelative(t *testing.T) {
	s := NewScheduler()
	var at time.Duration
	s.At(5*time.Millisecond, func() {
		s.After(7*time.Millisecond, func() { at = s.Now() })
	})
	s.Run()
	if at != 12*time.Millisecond {
		t.Fatalf("After fired at %v, want 12ms", at)
	}
}

func TestSchedulerCancel(t *testing.T) {
	s := NewScheduler()
	fired := false
	tm := s.At(time.Millisecond, func() { fired = true })
	tm.Cancel()
	s.Run()
	if fired {
		t.Fatal("cancelled timer fired")
	}
	if !tm.Stopped() {
		t.Fatal("cancelled timer not reported stopped")
	}
}

func TestSchedulerRunUntil(t *testing.T) {
	s := NewScheduler()
	count := 0
	for i := 1; i <= 10; i++ {
		s.At(time.Duration(i)*time.Second, func() { count++ })
	}
	s.RunUntil(5 * time.Second)
	if count != 5 {
		t.Fatalf("ran %d events, want 5", count)
	}
	if s.Now() != 5*time.Second {
		t.Fatalf("clock = %v, want 5s", s.Now())
	}
	if s.Pending() != 5 {
		t.Fatalf("pending = %d, want 5", s.Pending())
	}
}

func TestSchedulerRunFor(t *testing.T) {
	s := NewScheduler()
	s.RunUntil(2 * time.Second)
	ran := false
	s.After(time.Second, func() { ran = true })
	s.RunFor(time.Second)
	if !ran {
		t.Fatal("RunFor did not reach the event")
	}
	if s.Now() != 3*time.Second {
		t.Fatalf("clock = %v, want 3s", s.Now())
	}
}

func TestSchedulerStop(t *testing.T) {
	s := NewScheduler()
	count := 0
	for i := 1; i <= 10; i++ {
		s.At(time.Duration(i), func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Fatalf("ran %d events after Stop, want 3", count)
	}
}

func TestSchedulerPastPanics(t *testing.T) {
	s := NewScheduler()
	s.At(time.Second, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.At(time.Millisecond, func() {})
}

func TestSchedulerNegativeAfterClamped(t *testing.T) {
	s := NewScheduler()
	s.RunUntil(time.Second)
	fired := false
	s.After(-time.Minute, func() { fired = true })
	s.Run()
	if !fired {
		t.Fatal("negative After never fired")
	}
	if s.Now() != time.Second {
		t.Fatalf("clock moved backwards: %v", s.Now())
	}
}

// TestSchedulerCancelCompaction is the regression test for lazy
// deletion: cancelling a large batch of timers must (1) keep Pending an
// O(1) counter that reflects only live events, and (2) shrink the heap
// via compaction instead of pinning cancelled entries until their
// (possibly far-future) deadlines surface at the root.
func TestSchedulerCancelCompaction(t *testing.T) {
	s := NewScheduler()
	const cancelled, keep = 10000, 100
	fn := func() {}
	timers := make([]Timer, 0, cancelled)
	for i := 0; i < cancelled; i++ {
		timers = append(timers, s.At(time.Duration(i+1)*time.Hour, fn))
	}
	fires := 0
	for i := 0; i < keep; i++ {
		s.At(time.Duration(i+1)*time.Millisecond, func() { fires++ })
	}
	if got := s.Pending(); got != cancelled+keep {
		t.Fatalf("Pending = %d, want %d", got, cancelled+keep)
	}
	for _, tm := range timers {
		tm.Cancel()
	}
	if got := s.Pending(); got != keep {
		t.Fatalf("Pending after cancel = %d, want %d", got, keep)
	}
	// Compaction keeps the cancelled backlog below the live count (plus
	// the small-heap threshold where compaction never kicks in).
	if max := 2*keep + compactMinHeap; len(s.heap) > max {
		t.Fatalf("heap holds %d entries after cancelling %d, want <= %d", len(s.heap), cancelled, max)
	}
	if len(s.free) < cancelled-keep-compactMinHeap {
		t.Fatalf("only %d slots recycled to the free list", len(s.free))
	}
	s.Run()
	if fires != keep {
		t.Fatalf("surviving timers fired %d times, want %d", fires, keep)
	}
}

// TestTimerGenerationAcrossReuse pins the generation-counter contract:
// a Timer handle whose event has fired (or been cancelled) must stay
// inert even after its arena slot is recycled for an unrelated event.
func TestTimerGenerationAcrossReuse(t *testing.T) {
	s := NewScheduler()
	fired := 0
	stale := s.At(time.Millisecond, func() { fired++ })
	s.Run()
	if fired != 1 || !stale.Stopped() {
		t.Fatalf("fired=%d stopped=%v", fired, stale.Stopped())
	}
	// The freed slot is recycled for the next event.
	fresh := s.At(2*time.Millisecond, func() { fired += 10 })
	if fresh.slot != stale.slot {
		t.Fatalf("slot not recycled: stale=%d fresh=%d", stale.slot, fresh.slot)
	}
	stale.Cancel() // stale handle: must be a no-op
	if fresh.Stopped() {
		t.Fatal("stale Cancel killed the event now occupying the slot")
	}
	s.Run()
	if fired != 11 {
		t.Fatalf("fired = %d, want 11", fired)
	}

	// Same property when the first event is cancelled rather than fired.
	c1 := s.After(time.Millisecond, func() { fired += 100 })
	c1.Cancel()
	s.Run() // pops the cancelled entry, releasing the slot
	c2 := s.After(time.Millisecond, func() { fired += 1000 })
	c1.Cancel()
	if c2.Stopped() {
		t.Fatal("double Cancel of a recycled slot killed the new event")
	}
	s.Run()
	if fired != 1011 {
		t.Fatalf("fired = %d, want 1011", fired)
	}
}

func TestTimerCancelDuringRun(t *testing.T) {
	s := NewScheduler()
	var second Timer
	fired := false
	s.At(1, func() { second.Cancel() })
	second = s.At(2, func() { fired = true })
	s.Run()
	if fired {
		t.Fatal("timer cancelled from an earlier event still fired")
	}
}
