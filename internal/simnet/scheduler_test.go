package simnet

import (
	"testing"
	"time"
)

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler()
	var got []int
	s.At(30*time.Millisecond, func() { got = append(got, 3) })
	s.At(10*time.Millisecond, func() { got = append(got, 1) })
	s.At(20*time.Millisecond, func() { got = append(got, 2) })
	s.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events ran out of order: %v", got)
	}
	if s.Now() != 30*time.Millisecond {
		t.Fatalf("clock = %v, want 30ms", s.Now())
	}
}

func TestSchedulerSameTimeFIFO(t *testing.T) {
	s := NewScheduler()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Millisecond, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestSchedulerAfterRelative(t *testing.T) {
	s := NewScheduler()
	var at time.Duration
	s.At(5*time.Millisecond, func() {
		s.After(7*time.Millisecond, func() { at = s.Now() })
	})
	s.Run()
	if at != 12*time.Millisecond {
		t.Fatalf("After fired at %v, want 12ms", at)
	}
}

func TestSchedulerCancel(t *testing.T) {
	s := NewScheduler()
	fired := false
	tm := s.At(time.Millisecond, func() { fired = true })
	tm.Cancel()
	s.Run()
	if fired {
		t.Fatal("cancelled timer fired")
	}
	if !tm.Stopped() {
		t.Fatal("cancelled timer not reported stopped")
	}
}

func TestSchedulerRunUntil(t *testing.T) {
	s := NewScheduler()
	count := 0
	for i := 1; i <= 10; i++ {
		s.At(time.Duration(i)*time.Second, func() { count++ })
	}
	s.RunUntil(5 * time.Second)
	if count != 5 {
		t.Fatalf("ran %d events, want 5", count)
	}
	if s.Now() != 5*time.Second {
		t.Fatalf("clock = %v, want 5s", s.Now())
	}
	if s.Pending() != 5 {
		t.Fatalf("pending = %d, want 5", s.Pending())
	}
}

func TestSchedulerRunFor(t *testing.T) {
	s := NewScheduler()
	s.RunUntil(2 * time.Second)
	ran := false
	s.After(time.Second, func() { ran = true })
	s.RunFor(time.Second)
	if !ran {
		t.Fatal("RunFor did not reach the event")
	}
	if s.Now() != 3*time.Second {
		t.Fatalf("clock = %v, want 3s", s.Now())
	}
}

func TestSchedulerStop(t *testing.T) {
	s := NewScheduler()
	count := 0
	for i := 1; i <= 10; i++ {
		s.At(time.Duration(i), func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Fatalf("ran %d events after Stop, want 3", count)
	}
}

func TestSchedulerPastPanics(t *testing.T) {
	s := NewScheduler()
	s.At(time.Second, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.At(time.Millisecond, func() {})
}

func TestSchedulerNegativeAfterClamped(t *testing.T) {
	s := NewScheduler()
	s.RunUntil(time.Second)
	fired := false
	s.After(-time.Minute, func() { fired = true })
	s.Run()
	if !fired {
		t.Fatal("negative After never fired")
	}
	if s.Now() != time.Second {
		t.Fatalf("clock moved backwards: %v", s.Now())
	}
}

func TestTimerCancelDuringRun(t *testing.T) {
	s := NewScheduler()
	var second *Timer
	fired := false
	s.At(1, func() { second.Cancel() })
	second = s.At(2, func() { fired = true })
	s.Run()
	if fired {
		t.Fatal("timer cancelled from an earlier event still fired")
	}
}
