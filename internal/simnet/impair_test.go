package simnet

import (
	"testing"
	"time"
)

func TestImpairLossRate(t *testing.T) {
	s, net, a, b := twoNodes(t, LinkConfig{Rate: Gbps})
	a.NICs()[0].Impair(Impairment{LossProb: 0.3, Seed: 42})
	delivered := 0
	b.SetDeliver(func(*Packet) { delivered++ })
	const n = 5000
	for i := 0; i < n; i++ {
		a.Inject(mkPacket(net, a, b, 100))
	}
	s.Run()
	lossRate := 1 - float64(delivered)/float64(n)
	if lossRate < 0.25 || lossRate > 0.35 {
		t.Fatalf("loss rate = %.3f, want ~0.30", lossRate)
	}
	if a.NICs()[0].ImpairLost() != uint64(n-delivered) {
		t.Fatalf("ImpairLost = %d, want %d", a.NICs()[0].ImpairLost(), n-delivered)
	}
}

func TestImpairLossDeterministic(t *testing.T) {
	run := func() int {
		s, net, a, b := twoNodes(t, LinkConfig{Rate: Gbps})
		a.NICs()[0].Impair(Impairment{LossProb: 0.1, Seed: 7})
		got := 0
		b.SetDeliver(func(*Packet) { got++ })
		for i := 0; i < 1000; i++ {
			a.Inject(mkPacket(net, a, b, 100))
		}
		s.Run()
		return got
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed, different outcomes: %d vs %d", a, b)
	}
}

func TestImpairJitterReorders(t *testing.T) {
	s, net, a, b := twoNodes(t, LinkConfig{Rate: Gbps, Delay: time.Millisecond})
	a.NICs()[0].Impair(Impairment{JitterMax: 5 * time.Millisecond, Seed: 3})
	var order []uint64
	b.SetDeliver(func(p *Packet) { order = append(order, p.ID) })
	for i := 0; i < 200; i++ {
		a.Inject(mkPacket(net, a, b, 100))
	}
	s.Run()
	if len(order) != 200 {
		t.Fatalf("delivered %d, want 200 (jitter must not drop)", len(order))
	}
	reordered := false
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			reordered = true
			break
		}
	}
	if !reordered {
		t.Fatal("jitter produced no reordering")
	}
}

func TestImpairClear(t *testing.T) {
	s, net, a, b := twoNodes(t, LinkConfig{Rate: Gbps})
	nic := a.NICs()[0]
	nic.Impair(Impairment{LossProb: 0.9, Seed: 1})
	nic.Impair(Impairment{}) // clear
	got := 0
	b.SetDeliver(func(*Packet) { got++ })
	for i := 0; i < 100; i++ {
		a.Inject(mkPacket(net, a, b, 100))
	}
	s.Run()
	if got != 100 {
		t.Fatalf("delivered %d after clearing impairment, want 100", got)
	}
}

func TestImpairValidation(t *testing.T) {
	s, _, a, _ := twoNodes(t, LinkConfig{Rate: Gbps})
	_ = s
	// LossProb=1 is a valid blackhole (chaos link-down).
	a.NICs()[0].Impair(Impairment{LossProb: 1})
	if !a.NICs()[0].Impaired() {
		t.Fatal("LossProb=1 not attached")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("LossProb>1 accepted")
		}
	}()
	a.NICs()[0].Impair(Impairment{LossProb: 1.5})
}

func TestImpairOnlyAffectsOneDirection(t *testing.T) {
	s, net, a, b := twoNodes(t, LinkConfig{Rate: Gbps})
	a.NICs()[0].Impair(Impairment{LossProb: 0.5, Seed: 9})
	aGot, bGot := 0, 0
	a.SetDeliver(func(*Packet) { aGot++ })
	b.SetDeliver(func(*Packet) { bGot++ })
	for i := 0; i < 500; i++ {
		a.Inject(mkPacket(net, a, b, 100))
		p := mkPacket(net, b, a, 100)
		p.Flow.Src, p.Flow.Dst = b.Addr(), a.Addr()
		b.Inject(p)
	}
	s.Run()
	if aGot != 500 {
		t.Fatalf("reverse direction lost packets: %d/500", aGot)
	}
	if bGot >= 400 {
		t.Fatalf("forward direction unaffected: %d/500", bGot)
	}
}
