package simnet

import (
	"container/heap"
	"fmt"
	"math"
)

// DropFunc observes packets dropped anywhere in the network (queue
// overflow, TTL expiry, no route). The NIC argument is nil for drops not
// attributable to a queue.
type DropFunc func(p *Packet, at *NIC)

// Network owns the topology: nodes, links, and shortest-path routes.
type Network struct {
	sched  *Scheduler
	nodes  []*Node
	links  []*Link
	byAddr map[Addr]*Node
	byName map[string]*Node

	// routes[src][dstID] = egress NIC. Rows are built lazily on first
	// use (see nextHop) and all invalidated together on topology change,
	// so a 10k-node topology never pays for the all-pairs table.
	routes [][]*NIC
	dirty  bool

	// fidelity is captured from defaultFidelity at construction; flowEng
	// is non-nil exactly when fidelity is flow or hybrid (see fidelity.go
	// and flow.go).
	fidelity Fidelity
	flowEng  *FlowEngine

	onDrop DropFunc
	pktSeq uint64

	// pktPool recycles Packet structs across the simulation: a packet is
	// returned here at its single terminal point (local delivery or any
	// drop) and reused by the next AllocPacket. The whole simulation is
	// single-threaded on one scheduler, so a plain slice beats sync.Pool.
	pktPool []*Packet

	// ifPool recycles in-flight propagation carriers (see inFlight).
	ifPool []*inFlight
}

// inFlight carries one propagating packet to its receiving NIC without
// allocating a closure per packet: fn is built once when the entry is
// first created and reads its targets from the struct, which the pool
// refills for each flight.
type inFlight struct {
	nic *NIC
	p   *Packet
	fn  func()
}

// allocInFlight returns a carrier whose fn delivers p to nic and then
// recycles the carrier. The carrier frees itself before delivering so
// that sends triggered by the delivery can reuse it immediately.
func (n *Network) allocInFlight(nic *NIC, p *Packet) *inFlight {
	var f *inFlight
	if k := len(n.ifPool); k > 0 {
		f = n.ifPool[k-1]
		n.ifPool = n.ifPool[:k-1]
	} else {
		f = &inFlight{}
		f.fn = func() {
			nic, p := f.nic, f.p
			f.nic, f.p = nil, nil
			n.ifPool = append(n.ifPool, f)
			nic.receive(p)
		}
	}
	f.nic, f.p = nic, p //meshvet:allow poolescape in-flight carrier owns the packet until its delivery callback runs
	return f
}

// NewNetwork returns an empty topology bound to the scheduler.
func NewNetwork(s *Scheduler) *Network {
	if s == nil {
		panic("simnet: nil scheduler")
	}
	n := &Network{
		sched:    s,
		byAddr:   make(map[Addr]*Node),
		byName:   make(map[string]*Node),
		fidelity: defaultFidelity,
	}
	if n.fidelity != FidelityPacket {
		n.flowEng = newFlowEngine(n)
	}
	return n
}

// Scheduler returns the scheduler driving this network.
func (n *Network) Scheduler() *Scheduler { return n.sched }

// OnDrop registers a global drop observer.
func (n *Network) OnDrop(fn DropFunc) { n.onDrop = fn }

func (n *Network) notifyDrop(p *Packet, at *NIC) {
	if n.onDrop != nil {
		n.onDrop(p, at)
	}
}

// AddNode creates a node with an auto-assigned address in 10.0.0.0/16.
// Names must be unique.
func (n *Network) AddNode(name string) *Node {
	if _, dup := n.byName[name]; dup {
		panic(fmt.Sprintf("simnet: duplicate node name %q", name))
	}
	id := len(n.nodes)
	addr := AddrFromOctets(10, 0, byte((id+1)>>8), byte(id+1))
	node := &Node{id: id, name: name, addr: addr, net: n}
	n.nodes = append(n.nodes, node)
	n.byAddr[addr] = node
	n.byName[name] = node
	n.dirty = true
	return node
}

// Node returns the node with the given name, or nil.
func (n *Network) Node(name string) *Node { return n.byName[name] }

// NodeByAddr returns the node owning addr, or nil.
func (n *Network) NodeByAddr(a Addr) *Node { return n.byAddr[a] }

// Nodes returns all nodes in creation order.
func (n *Network) Nodes() []*Node { return n.nodes }

// Links returns all links in creation order.
func (n *Network) Links() []*Link { return n.links }

// Connect joins two nodes with a full-duplex link.
func (n *Network) Connect(a, b *Node, cfg LinkConfig) *Link {
	if cfg.Rate <= 0 {
		panic("simnet: link rate must be positive")
	}
	if a == b {
		panic("simnet: cannot link a node to itself")
	}
	l := &Link{id: len(n.links), cfg: cfg, net: n, weight: 1}
	na := &NIC{node: a, link: l, qdisc: NewFIFO(cfg.QueueBytes)}
	nb := &NIC{node: b, link: l, qdisc: NewFIFO(cfg.QueueBytes)}
	na.peer, nb.peer = nb, na
	l.a, l.b = na, nb
	a.nics = append(a.nics, na)
	b.nics = append(b.nics, nb)
	n.links = append(n.links, l)
	n.dirty = true
	return l
}

// NextPacketID returns a unique packet ID.
func (n *Network) NextPacketID() uint64 {
	n.pktSeq++
	return n.pktSeq
}

// AllocPacket returns a Packet stamped with a fresh unique ID, recycled
// from the network's free list when one is available. The network
// reclaims the packet at its terminal point — local delivery or any
// drop — so callers must not retain it past that event. Fields are
// scrubbed here rather than at reclaim time, which keeps the packet
// readable within the delivery/drop callback that just observed it.
func (n *Network) AllocPacket() *Packet {
	var p *Packet
	if k := len(n.pktPool); k > 0 {
		p = n.pktPool[k-1]
		n.pktPool = n.pktPool[:k-1]
		*p = Packet{}
	} else {
		p = &Packet{}
	}
	p.ID = n.NextPacketID()
	return p
}

// freePacket returns a packet to the free list. Packets constructed
// directly (tests, benchmarks) funnel in here too; that is harmless —
// they simply join the pool.
func (n *Network) freePacket(p *Packet) {
	n.pktPool = append(n.pktPool, p) //meshvet:allow poolescape this free list IS the pool: the one sanctioned retainer
}

// ComputeRoutes (re)builds all-pairs shortest-path next-hop tables using
// Dijkstra from every node with link weights as costs. Routing itself
// only builds rows on demand (see nextHop); this eager form remains for
// callers that want the full table up front.
func (n *Network) ComputeRoutes() {
	n.invalidateRoutes()
	for _, src := range n.nodes {
		n.routes[src.id] = n.dijkstra(src)
	}
}

// invalidateRoutes resets the route table to all-unbuilt rows.
func (n *Network) invalidateRoutes() {
	if cap(n.routes) < len(n.nodes) {
		n.routes = make([][]*NIC, len(n.nodes))
	} else {
		n.routes = n.routes[:len(n.nodes)]
		for i := range n.routes {
			n.routes[i] = nil
		}
	}
	n.dirty = false
}

func (n *Network) nextHop(from *Node, dst Addr) *NIC {
	if n.dirty {
		n.invalidateRoutes()
	}
	dn, ok := n.byAddr[dst]
	if !ok {
		return nil
	}
	// Leaf shortcut at scale: on topologies large enough that per-source
	// Dijkstra rows dominate memory, a single-homed node needs no table —
	// its only NIC is the next hop. Gated on topology size so drop
	// accounting for unroutable destinations on small topologies stays
	// byte-identical to the historical goldens.
	if len(n.nodes) >= leafShortcutMin && len(from.nics) == 1 {
		return from.nics[0]
	}
	row := n.routes[from.id]
	if row == nil {
		row = n.dijkstra(from)
		n.routes[from.id] = row
	}
	return row[dn.id]
}

// dijkstra returns, for each destination node ID, the egress NIC at src.
func (n *Network) dijkstra(src *Node) []*NIC {
	const inf = math.MaxFloat64
	dist := make([]float64, len(n.nodes))
	firstHop := make([]*NIC, len(n.nodes))
	done := make([]bool, len(n.nodes))
	for i := range dist {
		dist[i] = inf
	}
	dist[src.id] = 0

	pq := &nodeQueue{}
	heap.Push(pq, nodeDist{src.id, 0})
	for pq.Len() > 0 {
		nd := heap.Pop(pq).(nodeDist)
		if done[nd.id] {
			continue
		}
		done[nd.id] = true
		cur := n.nodes[nd.id]
		for _, nic := range cur.nics {
			next := nic.peer.node
			w := nic.link.weight
			if nd.dist+w < dist[next.id] {
				dist[next.id] = nd.dist + w
				if cur == src {
					firstHop[next.id] = nic
				} else {
					firstHop[next.id] = firstHop[cur.id]
				}
				heap.Push(pq, nodeDist{next.id, dist[next.id]})
			}
		}
	}
	return firstHop
}

type nodeDist struct {
	id   int
	dist float64
}

type nodeQueue []nodeDist

func (q nodeQueue) Len() int           { return len(q) }
func (q nodeQueue) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q nodeQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *nodeQueue) Push(x any)        { *q = append(*q, x.(nodeDist)) }
func (q *nodeQueue) Pop() (x any)      { old := *q; n := len(old); x = old[n-1]; *q = old[:n-1]; return }
