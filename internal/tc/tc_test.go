package tc

import (
	"testing"
	"time"

	"meshlayer/internal/simnet"
)

// rig is a two-node topology with a qdisc under test installed on the
// sender's NIC.
type rig struct {
	sched *simnet.Scheduler
	net   *simnet.Network
	a, b  *simnet.Node
	link  *simnet.Link
}

func newRig(t *testing.T, rate int64) *rig {
	t.Helper()
	s := simnet.NewScheduler()
	n := simnet.NewNetwork(s)
	a := n.AddNode("a")
	b := n.AddNode("b")
	l := n.Connect(a, b, simnet.LinkConfig{Rate: rate})
	return &rig{sched: s, net: n, a: a, b: b, link: l}
}

func (r *rig) install(q simnet.Qdisc) { r.a.NICs()[0].SetQdisc(q) }

func (r *rig) packet(size int, mark simnet.Mark, srcPort uint16) *simnet.Packet {
	return &simnet.Packet{
		ID:   r.net.NextPacketID(),
		Flow: simnet.FlowKey{Src: r.a.Addr(), Dst: r.b.Addr(), SrcPort: srcPort, DstPort: 80, Proto: simnet.ProtoTCP},
		Size: size,
		Mark: mark,
	}
}

func TestClassifierFirstMatchWins(t *testing.T) {
	c := Classifier{
		Filters: []Filter{
			{Match: MatchMark(simnet.MarkHigh), Class: 0},
			{Match: MatchDstPort(80), Class: 1},
		},
		Default: 2,
	}
	if got := c.Classify(&simnet.Packet{Mark: simnet.MarkHigh, Flow: simnet.FlowKey{DstPort: 80}}); got != 0 {
		t.Fatalf("class = %d, want 0 (first filter)", got)
	}
	if got := c.Classify(&simnet.Packet{Flow: simnet.FlowKey{DstPort: 80}}); got != 1 {
		t.Fatalf("class = %d, want 1", got)
	}
	if got := c.Classify(&simnet.Packet{Flow: simnet.FlowKey{DstPort: 443}}); got != 2 {
		t.Fatalf("class = %d, want default 2", got)
	}
}

func TestMatchHelpers(t *testing.T) {
	p := &simnet.Packet{
		Mark: simnet.MarkLow,
		Flow: simnet.FlowKey{Src: 1, Dst: 2, SrcPort: 10, DstPort: 20},
	}
	if !MatchMark(simnet.MarkLow)(p) || MatchMark(simnet.MarkHigh)(p) {
		t.Fatal("MatchMark wrong")
	}
	if !MatchMinMark(simnet.MarkLow)(p) || MatchMinMark(simnet.MarkHigh)(p) {
		t.Fatal("MatchMinMark wrong")
	}
	if !MatchDst(2)(p) || MatchDst(3)(p) {
		t.Fatal("MatchDst wrong")
	}
	if !MatchSrc(1)(p) || MatchSrc(9)(p) {
		t.Fatal("MatchSrc wrong")
	}
	if !MatchAny(MatchDst(9), MatchDstPort(20))(p) {
		t.Fatal("MatchAny missed")
	}
	if MatchAny(MatchDst(9), MatchDstPort(9))(p) {
		t.Fatal("MatchAny false positive")
	}
}

func TestPrioStrictOrdering(t *testing.T) {
	r := newRig(t, 8*simnet.Mbps) // 1000B = 1ms
	q := NewPrio(Classifier{
		Filters: []Filter{{Match: MatchMark(simnet.MarkHigh), Class: 0}},
		Default: 1,
	}, simnet.NewFIFO(0), simnet.NewFIFO(0))
	r.install(q)

	var order []simnet.Mark
	r.b.SetDeliver(func(p *simnet.Packet) { order = append(order, p.Mark) })

	// Interleave low/high injections; first packet grabs the line, the
	// rest should come out high-before-low.
	r.a.NICs()[0].Send(r.packet(1000, simnet.MarkLow, 1))
	for i := 0; i < 3; i++ {
		r.a.NICs()[0].Send(r.packet(1000, simnet.MarkLow, 1))
		r.a.NICs()[0].Send(r.packet(1000, simnet.MarkHigh, 2))
	}
	r.sched.Run()

	if len(order) != 7 {
		t.Fatalf("delivered %d, want 7", len(order))
	}
	// After the in-flight first packet: 3 highs, then 3 lows.
	want := []simnet.Mark{simnet.MarkLow, simnet.MarkHigh, simnet.MarkHigh, simnet.MarkHigh,
		simnet.MarkLow, simnet.MarkLow, simnet.MarkLow}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("delivery order %v, want %v", order, want)
		}
	}
	if q.Sent(0) != 3 || q.Sent(1) != 4 {
		t.Fatalf("band sent counts high=%d low=%d", q.Sent(0), q.Sent(1))
	}
}

func TestTBFShapesToRate(t *testing.T) {
	r := newRig(t, 80*simnet.Mbps)
	// Shape to 8 Mbps: 100 x 1000B = 800kb => 100ms.
	q := NewTBF(8*simnet.Mbps, simnet.MTU, nil, r.sched.Now)
	r.install(q)

	var last time.Duration
	n := 0
	r.b.SetDeliver(func(p *simnet.Packet) { last = r.sched.Now(); n++ })
	for i := 0; i < 100; i++ {
		r.a.NICs()[0].Send(r.packet(1000, 0, 1))
	}
	r.sched.Run()
	if n != 100 {
		t.Fatalf("delivered %d, want 100", n)
	}
	// Initial burst credit lets the first ~1.5KB out immediately; the
	// rest are paced at 1ms per 1000B.
	if last < 95*time.Millisecond || last > 105*time.Millisecond {
		t.Fatalf("last delivery at %v, want ~100ms", last)
	}
}

func TestTBFWakesIdleNIC(t *testing.T) {
	r := newRig(t, 80*simnet.Mbps)
	q := NewTBF(8*simnet.Mbps, simnet.MTU, nil, r.sched.Now)
	r.install(q)
	n := 0
	r.b.SetDeliver(func(p *simnet.Packet) { n++ })
	// Exhaust the burst, go idle, and confirm pending packets still
	// drain via the Waker path.
	for i := 0; i < 5; i++ {
		r.a.NICs()[0].Send(r.packet(1400, 0, 1))
	}
	r.sched.Run()
	if n != 5 {
		t.Fatalf("delivered %d, want 5 (NIC never woke)", n)
	}
}

func TestHTBGuaranteesAndBorrowing(t *testing.T) {
	r := newRig(t, 10*simnet.Mbps)
	cls := Classifier{
		Filters: []Filter{{Match: MatchMark(simnet.MarkHigh), Class: 0}},
		Default: 1,
	}
	q := NewHTB(cls, r.sched.Now,
		HTBClass{Rate: 7 * simnet.Mbps, Ceil: 10 * simnet.Mbps, Prio: 0},
		HTBClass{Rate: 3 * simnet.Mbps, Ceil: 10 * simnet.Mbps, Prio: 1},
	)
	r.install(q)

	var hiBytes, loBytes int
	r.b.SetDeliver(func(p *simnet.Packet) {
		if p.Mark == simnet.MarkHigh {
			hiBytes += p.Size
		} else {
			loBytes += p.Size
		}
	})

	// Saturate both classes for 1 simulated second.
	for i := 0; i < 900; i++ {
		r.a.NICs()[0].Send(r.packet(1000, simnet.MarkHigh, 1))
		r.a.NICs()[0].Send(r.packet(1000, simnet.MarkLow, 2))
	}
	r.sched.RunUntil(time.Second)

	total := hiBytes + loBytes
	hiShare := float64(hiBytes) / float64(total)
	if hiShare < 0.62 || hiShare > 0.78 {
		t.Fatalf("high share = %.2f, want ~0.70 (rate guarantee)", hiShare)
	}

	// Drain, then send only low: it should borrow up to the line rate.
	r.sched.Run()
	start := r.sched.Now()
	loBytes = 0
	for i := 0; i < 500; i++ {
		r.a.NICs()[0].Send(r.packet(1000, simnet.MarkLow, 2))
	}
	r.sched.Run()
	elapsed := r.sched.Now() - start
	rate := float64(loBytes*8) / elapsed.Seconds()
	if rate < 8.5e6 {
		t.Fatalf("lone class rate = %.2g bps, want ~1e7 (borrowing to ceil)", rate)
	}
}

func TestDRRProportionalFairness(t *testing.T) {
	r := newRig(t, 10*simnet.Mbps)
	cls := Classifier{
		Filters: []Filter{{Match: MatchMark(simnet.MarkHigh), Class: 0}},
		Default: 1,
	}
	q := NewDRR(cls, 3*simnet.MTU, 1*simnet.MTU)
	r.install(q)

	var hiBytes, loBytes int
	r.b.SetDeliver(func(p *simnet.Packet) {
		if p.Mark == simnet.MarkHigh {
			hiBytes += p.Size
		} else {
			loBytes += p.Size
		}
	})
	for i := 0; i < 1000; i++ {
		r.a.NICs()[0].Send(r.packet(1000, simnet.MarkHigh, 1))
		r.a.NICs()[0].Send(r.packet(1000, simnet.MarkLow, 2))
	}
	r.sched.RunUntil(500 * time.Millisecond)
	ratio := float64(hiBytes) / float64(loBytes)
	if ratio < 2.5 || ratio > 3.6 {
		t.Fatalf("DRR ratio = %.2f, want ~3.0", ratio)
	}
}

func TestNearStrictSharesBandwidth(t *testing.T) {
	r := newRig(t, 10*simnet.Mbps)
	q := NewNearStrict(NearStrictConfig{
		LinkRate:  10 * simnet.Mbps,
		HighShare: 0.95,
	}, r.sched.Now)
	r.install(q)

	var hiBytes, loBytes int
	r.b.SetDeliver(func(p *simnet.Packet) {
		if p.Mark == simnet.MarkHigh {
			hiBytes += p.Size
		} else {
			loBytes += p.Size
		}
	})
	// Both classes saturating: high should get ~95%, low ~5%.
	for i := 0; i < 1500; i++ {
		r.a.NICs()[0].Send(r.packet(1000, simnet.MarkHigh, 1))
	}
	for i := 0; i < 200; i++ {
		r.a.NICs()[0].Send(r.packet(1000, simnet.MarkLow, 2))
	}
	r.sched.RunUntil(time.Second)
	total := hiBytes + loBytes
	if total == 0 {
		t.Fatal("nothing delivered")
	}
	hiShare := float64(hiBytes) / float64(total)
	if hiShare < 0.90 || hiShare > 0.98 {
		t.Fatalf("high share = %.3f, want ~0.95", hiShare)
	}
	if loBytes == 0 {
		t.Fatal("low class fully starved; NearStrict should leave ~5%")
	}
}

func TestNearStrictLowUsesFullLinkWhenHighIdle(t *testing.T) {
	r := newRig(t, 10*simnet.Mbps)
	q := NewNearStrict(NearStrictConfig{LinkRate: 10 * simnet.Mbps, HighShare: 0.95}, r.sched.Now)
	r.install(q)
	var loBytes int
	r.b.SetDeliver(func(p *simnet.Packet) { loBytes += p.Size })
	start := r.sched.Now()
	for i := 0; i < 500; i++ {
		r.a.NICs()[0].Send(r.packet(1000, simnet.MarkLow, 2))
	}
	r.sched.Run()
	rate := float64(loBytes*8) / (r.sched.Now() - start).Seconds()
	if rate < 9.5e6 {
		t.Fatalf("low-only rate = %.3g, want full line rate", rate)
	}
}

func TestNearStrictConfigValidation(t *testing.T) {
	for _, bad := range []NearStrictConfig{
		{LinkRate: 0, HighShare: 0.5},
		{LinkRate: simnet.Mbps, HighShare: 0},
		{LinkRate: simnet.Mbps, HighShare: 1.5},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("config %+v did not panic", bad)
				}
			}()
			s := simnet.NewScheduler()
			NewNearStrict(bad, s.Now)
		}()
	}
}

func TestHTBValidation(t *testing.T) {
	s := simnet.NewScheduler()
	defer func() {
		if recover() == nil {
			t.Fatal("ceil below rate accepted")
		}
	}()
	NewHTB(Classifier{}, s.Now, HTBClass{Rate: 10, Ceil: 5})
}
