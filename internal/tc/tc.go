// Package tc implements Linux-tc-style traffic control for simulated
// NICs: classful queueing disciplines (PRIO, HTB, DRR), a token-bucket
// shaper (TBF), and packet classifiers.
//
// The cross-layer prioritization case study (§4.3 of the paper) installs
// "nearly-strict prioritization (up to 95% of bandwidth)" on the
// sidecar's virtual interface; NewNearStrict builds exactly that
// discipline from a PRIO qdisc whose high band is shaped by a TBF.
package tc

import (
	"time"

	"meshlayer/internal/simnet"
)

// Clock supplies the current simulated time to shaping disciplines.
// Pass scheduler.Now.
type Clock func() time.Duration

// Filter matches packets to a class. Filters are evaluated in order;
// the first match wins.
type Filter struct {
	// Match reports whether the packet belongs to this filter's class.
	Match func(*simnet.Packet) bool
	// Class is the index of the target class/band.
	Class int
}

// MatchMark returns a filter predicate selecting packets with the mark.
func MatchMark(m simnet.Mark) func(*simnet.Packet) bool {
	return func(p *simnet.Packet) bool { return p.Mark == m }
}

// MatchMinMark returns a predicate selecting packets with mark >= m.
func MatchMinMark(m simnet.Mark) func(*simnet.Packet) bool {
	return func(p *simnet.Packet) bool { return p.Mark >= m }
}

// MatchDst returns a predicate selecting packets addressed to dst —
// the paper's prototype matches on the high-priority pod's IP address.
func MatchDst(dst simnet.Addr) func(*simnet.Packet) bool {
	return func(p *simnet.Packet) bool { return p.Flow.Dst == dst }
}

// MatchSrc returns a predicate selecting packets originating from src.
func MatchSrc(src simnet.Addr) func(*simnet.Packet) bool {
	return func(p *simnet.Packet) bool { return p.Flow.Src == src }
}

// MatchDstPort returns a predicate selecting packets to a given port.
func MatchDstPort(port uint16) func(*simnet.Packet) bool {
	return func(p *simnet.Packet) bool { return p.Flow.DstPort == port }
}

// MatchAny combines predicates with OR.
func MatchAny(preds ...func(*simnet.Packet) bool) func(*simnet.Packet) bool {
	return func(p *simnet.Packet) bool {
		for _, f := range preds {
			if f(p) {
				return true
			}
		}
		return false
	}
}

// Classifier routes packets to class indexes via an ordered filter list.
type Classifier struct {
	Filters []Filter
	// Default is the class for packets matching no filter.
	Default int
}

// Classify returns the class index for p.
func (c *Classifier) Classify(p *simnet.Packet) int {
	for _, f := range c.Filters {
		if f.Match(p) {
			return f.Class
		}
	}
	return c.Default
}
