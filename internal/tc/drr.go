package tc

import (
	"meshlayer/internal/simnet"
)

// DRR is a deficit-round-robin fair queueing discipline: each class is
// visited in turn and may send up to its accumulated quantum of bytes.
type DRR struct {
	classes    []*drrClass
	classifier Classifier
	active     []int // round-robin order of backlogged classes
	cursor     int
}

type drrClass struct {
	quantum int
	deficit int
	queue   simnet.Qdisc
	head    *simnet.Packet
	active  bool
	visited bool // quantum already granted for the current visit
	sent    uint64
}

// NewDRR builds a DRR qdisc with one class per quantum (bytes served per
// round). Quanta should be at least one MTU.
func NewDRR(classifier Classifier, quanta ...int) *DRR {
	if len(quanta) == 0 {
		panic("tc: DRR needs at least one class")
	}
	d := &DRR{classifier: classifier}
	for _, q := range quanta {
		if q < simnet.MTU {
			q = simnet.MTU
		}
		d.classes = append(d.classes, &drrClass{quantum: q, queue: simnet.NewFIFO(0)})
	}
	return d
}

// Sent returns the packets sent by class i.
func (d *DRR) Sent(i int) uint64 { return d.classes[i].sent }

// Enqueue implements simnet.Qdisc.
func (d *DRR) Enqueue(p *simnet.Packet) bool {
	i := d.classifier.Classify(p)
	if i < 0 || i >= len(d.classes) {
		i = len(d.classes) - 1
	}
	c := d.classes[i]
	if !c.queue.Enqueue(p) {
		return false
	}
	if !c.active {
		c.active = true
		d.active = append(d.active, i)
	}
	return true
}

// Dequeue implements simnet.Qdisc. The quantum is granted once per
// visit; a class is serviced while its deficit covers the head packet,
// then the scan moves on, carrying the remainder to the next round.
func (d *DRR) Dequeue() *simnet.Packet {
	visits := 0
	for len(d.active) > 0 {
		if d.cursor >= len(d.active) {
			d.cursor = 0
		}
		idx := d.active[d.cursor]
		c := d.classes[idx]
		if c.head == nil {
			c.head = c.queue.Dequeue() //meshvet:allow poolescape peeked head is still queue-owned until the scheduler emits it
		}
		if c.head == nil {
			// Class drained: deactivate and forfeit the deficit.
			c.active = false
			c.visited = false
			c.deficit = 0
			d.active = append(d.active[:d.cursor], d.active[d.cursor+1:]...)
			continue
		}
		if !c.visited {
			c.visited = true
			c.deficit += c.quantum
		}
		if c.deficit >= c.head.Size {
			p := c.head
			c.head = nil
			c.deficit -= p.Size
			c.sent++
			return p
		}
		// Deficit exhausted for this visit: move to the next class.
		c.visited = false
		d.cursor++
		visits++
		if visits > len(d.classes) {
			// All backlogged classes short of deficit in one sweep
			// cannot happen (the grant covers at least one MTU), but
			// guard against pathological packet sizes.
			return nil
		}
	}
	return nil
}

// Len implements simnet.Qdisc.
func (d *DRR) Len() int {
	n := 0
	for _, c := range d.classes {
		n += c.queue.Len()
		if c.head != nil {
			n++
		}
	}
	return n
}

// Backlog implements simnet.Qdisc.
func (d *DRR) Backlog() int {
	n := 0
	for _, c := range d.classes {
		n += c.queue.Backlog()
		if c.head != nil {
			n += c.head.Size
		}
	}
	return n
}
