package tc

import (
	"testing"
	"time"

	"meshlayer/internal/simnet"
	"meshlayer/internal/transport"
)

func TestREDValidation(t *testing.T) {
	for _, bad := range []REDConfig{
		{},
		{MinBytes: 100, MaxBytes: 50},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("config %+v accepted", bad)
				}
			}()
			NewRED(bad)
		}()
	}
}

func TestREDPassesLightLoad(t *testing.T) {
	q := NewRED(REDConfig{MinBytes: 30000, MaxBytes: 90000, Seed: 1})
	for i := 0; i < 10; i++ {
		if !q.Enqueue(&simnet.Packet{Size: 1000}) {
			t.Fatal("light load dropped")
		}
	}
	if q.EarlyDrops() != 0 {
		t.Fatal("early drops under light load")
	}
	n := 0
	for q.Dequeue() != nil {
		n++
	}
	if n != 10 {
		t.Fatalf("dequeued %d", n)
	}
}

func TestREDDropsUnderStandingQueue(t *testing.T) {
	q := NewRED(REDConfig{MinBytes: 10000, MaxBytes: 50000, Seed: 2})
	accepted := 0
	// Fill without draining: the average climbs past min, drops begin.
	for i := 0; i < 500; i++ {
		if q.Enqueue(&simnet.Packet{Size: 1000}) {
			accepted++
		}
	}
	if q.EarlyDrops() == 0 && q.HardDrops() == 0 {
		t.Fatal("no drops with a standing queue way past max")
	}
	if accepted == 0 {
		t.Fatal("everything dropped")
	}
}

func TestREDEarlyDropsBeforeOverflow(t *testing.T) {
	// With a drain keeping the queue in the early region, drops happen
	// probabilistically, not at the hard limit.
	q := NewRED(REDConfig{MinBytes: 5000, MaxBytes: 20000, LimitBytes: 1 << 20, Seed: 3})
	for i := 0; i < 5000; i++ {
		q.Enqueue(&simnet.Packet{Size: 1000})
		if i%3 != 0 {
			q.Dequeue()
		}
	}
	if q.EarlyDrops() == 0 {
		t.Fatal("no early drops in the ramp region")
	}
	if q.HardDrops() > q.EarlyDrops() {
		t.Fatalf("hard drops (%d) dominate early drops (%d)", q.HardDrops(), q.EarlyDrops())
	}
}

func TestCoDelBelowTargetNeverDrops(t *testing.T) {
	s := simnet.NewScheduler()
	q := NewCoDel(CoDelConfig{Target: 5 * time.Millisecond}, s.Now)
	for i := 0; i < 100; i++ {
		q.Enqueue(&simnet.Packet{Size: 1000})
		if q.Dequeue() == nil {
			t.Fatal("packet vanished")
		}
	}
	if q.Drops() != 0 {
		t.Fatalf("drops = %d with zero sojourn", q.Drops())
	}
}

func TestCoDelDropsOnPersistentDelay(t *testing.T) {
	s := simnet.NewScheduler()
	q := NewCoDel(CoDelConfig{Target: 5 * time.Millisecond, Interval: 20 * time.Millisecond}, s.Now)
	// Enqueue a standing queue, then dequeue slowly so sojourn times
	// stay far above target for many intervals.
	fill := func() {
		for q.Backlog() < 100*simnet.MTU {
			q.Enqueue(&simnet.Packet{Size: simnet.MTU})
		}
	}
	fill()
	got := 0
	for i := 0; i < 200; i++ {
		s.RunUntil(s.Now() + 10*time.Millisecond)
		if p := q.Dequeue(); p != nil {
			got++
		}
		fill()
	}
	if q.Drops() == 0 {
		t.Fatal("CoDel never dropped despite persistent >target sojourn")
	}
	if got == 0 {
		t.Fatal("CoDel delivered nothing")
	}
}

func TestCoDelKeepsQueueDelayBounded(t *testing.T) {
	// End-to-end: a Reno bulk flow through a CoDel bottleneck should
	// settle near the target delay instead of filling the buffer
	// (droptail would hold ~a full queue of delay).
	s := simnet.NewScheduler()
	n := simnet.NewNetwork(s)
	a := n.AddNode("a")
	b := n.AddNode("b")
	n.Connect(a, b, simnet.LinkConfig{Rate: 20 * simnet.Mbps, Delay: time.Millisecond})
	nic := a.NICs()[0]
	nic.SetQdisc(NewCoDel(CoDelConfig{Target: 5 * time.Millisecond, Interval: 50 * time.Millisecond}, s.Now))

	ha, hb := transport.NewHost(a), transport.NewHost(b)
	hb.Listen(80, func(c *transport.Conn) { c.SetOnMessage(func(any, int) {}) })
	conn := ha.Dial(b.Addr(), 80, transport.Options{CC: "reno"})
	conn.SendMessage("bulk", 1<<30)

	var maxBacklog int
	probe := func() {}
	probe = func() {
		if nic.QueueDepth() > maxBacklog {
			maxBacklog = nic.QueueDepth()
		}
		s.After(10*time.Millisecond, probe)
	}
	s.After(2*time.Second, probe) // skip slow-start transient
	s.RunUntil(10 * time.Second)

	// 20 Mbps * 5ms target = 12.5 KB; allow generous slack for bursts,
	// but far below the 1.5 MB droptail default.
	if maxBacklog > 300*simnet.MTU {
		t.Fatalf("steady-state backlog reached %d bytes; CoDel not controlling delay", maxBacklog)
	}
	cq := nic.Qdisc().(*CoDel)
	if cq.Drops() == 0 {
		t.Fatal("CoDel never signalled the flow")
	}
}

func TestCoDelValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil clock accepted")
		}
	}()
	NewCoDel(CoDelConfig{}, nil)
}
