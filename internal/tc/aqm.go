package tc

import (
	"math"
	"math/rand"
	"time"

	"meshlayer/internal/simnet"
)

// RED is Random Early Detection: as the average queue grows between
// MinBytes and MaxBytes, packets are dropped with rising probability,
// signalling congestion to loss-based transports before the queue
// overflows (Floyd & Jacobson 1993).
type RED struct {
	min, max   int
	limit      int
	maxP       float64
	wq         float64
	rng        *rand.Rand
	queue      []*simnet.Packet
	backlog    int
	avg        float64
	count      int // packets since last early drop
	earlyDrops uint64
	hardDrops  uint64
}

// REDConfig parameterizes NewRED.
type REDConfig struct {
	// MinBytes / MaxBytes bound the early-drop region of the average
	// queue length.
	MinBytes, MaxBytes int
	// LimitBytes is the hard queue cap. Zero selects 4*MaxBytes.
	LimitBytes int
	// MaxP is the drop probability at MaxBytes (default 0.1).
	MaxP float64
	// Wq is the EWMA weight of the average queue (default 0.002).
	Wq float64
	// Seed drives the drop randomness.
	Seed int64
}

// NewRED builds a RED qdisc.
func NewRED(cfg REDConfig) *RED {
	if cfg.MinBytes <= 0 || cfg.MaxBytes <= cfg.MinBytes {
		panic("tc: RED needs 0 < MinBytes < MaxBytes")
	}
	if cfg.LimitBytes == 0 {
		cfg.LimitBytes = 4 * cfg.MaxBytes
	}
	if cfg.MaxP == 0 {
		cfg.MaxP = 0.1
	}
	if cfg.Wq == 0 {
		cfg.Wq = 0.002
	}
	return &RED{
		min: cfg.MinBytes, max: cfg.MaxBytes, limit: cfg.LimitBytes,
		maxP: cfg.MaxP, wq: cfg.Wq,
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}
}

// EarlyDrops returns probabilistic drops; HardDrops overflow drops.
func (q *RED) EarlyDrops() uint64 { return q.earlyDrops }

// HardDrops returns drops due to the hard byte limit.
func (q *RED) HardDrops() uint64 { return q.hardDrops }

// Enqueue implements simnet.Qdisc.
func (q *RED) Enqueue(p *simnet.Packet) bool {
	q.avg = (1-q.wq)*q.avg + q.wq*float64(q.backlog)
	if q.backlog+p.Size > q.limit {
		q.hardDrops++
		return false
	}
	switch {
	case q.avg < float64(q.min):
		q.count = 0
	case q.avg >= float64(q.max):
		q.earlyDrops++
		q.count = 0
		return false
	default:
		// Linear ramp of drop probability, with the classic count
		// correction spreading drops out.
		pb := q.maxP * (q.avg - float64(q.min)) / float64(q.max-q.min)
		q.count++
		pa := pb / math.Max(1e-9, 1-float64(q.count)*pb)
		if pa >= 1 || q.rng.Float64() < pa {
			q.earlyDrops++
			q.count = 0
			return false
		}
	}
	q.queue = append(q.queue, p) //meshvet:allow poolescape a queued packet is live until Dequeue hands it onward
	q.backlog += p.Size
	return true
}

// Dequeue implements simnet.Qdisc.
func (q *RED) Dequeue() *simnet.Packet {
	if len(q.queue) == 0 {
		return nil
	}
	p := q.queue[0]
	q.queue[0] = nil
	q.queue = q.queue[1:]
	q.backlog -= p.Size
	return p
}

// Len implements simnet.Qdisc.
func (q *RED) Len() int { return len(q.queue) }

// Backlog implements simnet.Qdisc.
func (q *RED) Backlog() int { return q.backlog }

// CoDel is Controlled Delay AQM (Nichols & Jacobson 2012): it tracks
// each packet's sojourn time and, once the minimum sojourn over an
// interval exceeds the target, drops at deques with a rate that
// increases as the square root of the drop count.
type CoDel struct {
	target   time.Duration
	interval time.Duration
	limit    int
	clock    Clock

	queue   []*simnet.Packet
	backlog int

	dropping  bool
	firstTime time.Duration // when sojourn first exceeded target
	dropNext  time.Duration
	dropCount int
	drops     uint64
}

// CoDelConfig parameterizes NewCoDel.
type CoDelConfig struct {
	// Target is the acceptable standing sojourn time (default 5ms).
	Target time.Duration
	// Interval is the measurement window (default 100ms).
	Interval time.Duration
	// LimitBytes is the hard cap (default simnet.DefaultFIFOLimit).
	LimitBytes int
}

// NewCoDel builds a CoDel qdisc on the given clock.
func NewCoDel(cfg CoDelConfig, clock Clock) *CoDel {
	if clock == nil {
		panic("tc: CoDel needs a clock")
	}
	if cfg.Target == 0 {
		cfg.Target = 5 * time.Millisecond
	}
	if cfg.Interval == 0 {
		cfg.Interval = 100 * time.Millisecond
	}
	if cfg.LimitBytes == 0 {
		cfg.LimitBytes = simnet.DefaultFIFOLimit
	}
	return &CoDel{target: cfg.Target, interval: cfg.Interval, limit: cfg.LimitBytes, clock: clock}
}

// Drops returns AQM drops (not counting hard-limit rejections).
func (q *CoDel) Drops() uint64 { return q.drops }

// Enqueue implements simnet.Qdisc.
func (q *CoDel) Enqueue(p *simnet.Packet) bool {
	if q.backlog+p.Size > q.limit {
		return false
	}
	p.EnqueuedAt = q.clock()
	q.queue = append(q.queue, p) //meshvet:allow poolescape a queued packet is live until Dequeue hands it onward
	q.backlog += p.Size
	return true
}

func (q *CoDel) pop() *simnet.Packet {
	p := q.queue[0]
	q.queue[0] = nil
	q.queue = q.queue[1:]
	q.backlog -= p.Size
	return p
}

// Dequeue implements simnet.Qdisc with the CoDel state machine.
func (q *CoDel) Dequeue() *simnet.Packet {
	now := q.clock()
	for len(q.queue) > 0 {
		p := q.pop()
		sojourn := now - p.EnqueuedAt
		if sojourn < q.target || q.backlog < 2*simnet.MTU {
			// Below target: leave drop state.
			q.dropping = false
			q.firstTime = 0
			return p
		}
		// Above target.
		if !q.dropping {
			if q.firstTime == 0 {
				q.firstTime = now + q.interval
				return p
			}
			if now < q.firstTime {
				return p
			}
			// Sojourn exceeded target for a whole interval: start
			// dropping.
			q.dropping = true
			q.dropCount = 1
			q.drops++
			q.dropNext = now + q.interval
			continue // drop p, deliver the next packet
		}
		if now >= q.dropNext {
			q.dropCount++
			q.drops++
			q.dropNext = now + time.Duration(float64(q.interval)/math.Sqrt(float64(q.dropCount)))
			continue // drop p
		}
		return p
	}
	return nil
}

// Len implements simnet.Qdisc.
func (q *CoDel) Len() int { return len(q.queue) }

// Backlog implements simnet.Qdisc.
func (q *CoDel) Backlog() int { return q.backlog }
