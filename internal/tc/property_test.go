package tc

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"meshlayer/internal/simnet"
)

// TestPropertyQdiscConservation: for every discipline, packets are
// conserved — everything accepted at Enqueue is eventually returned by
// Dequeue exactly once (no duplication, no loss inside the qdisc).
func TestPropertyQdiscConservation(t *testing.T) {
	build := map[string]func(s *simnet.Scheduler) simnet.Qdisc{
		"fifo": func(s *simnet.Scheduler) simnet.Qdisc { return simnet.NewFIFO(0) },
		"prio": func(s *simnet.Scheduler) simnet.Qdisc {
			return NewPrio(Classifier{
				Filters: []Filter{{Match: MatchMark(simnet.MarkHigh), Class: 0}},
				Default: 1,
			}, simnet.NewFIFO(0), simnet.NewFIFO(0))
		},
		"tbf": func(s *simnet.Scheduler) simnet.Qdisc {
			return NewTBF(simnet.Gbps, 100*simnet.MTU, nil, s.Now)
		},
		"htb": func(s *simnet.Scheduler) simnet.Qdisc {
			return NewHTB(Classifier{
				Filters: []Filter{{Match: MatchMark(simnet.MarkHigh), Class: 0}},
				Default: 1,
			}, s.Now,
				HTBClass{Rate: simnet.Gbps, Ceil: simnet.Gbps},
				HTBClass{Rate: simnet.Gbps, Ceil: simnet.Gbps})
		},
		"drr": func(s *simnet.Scheduler) simnet.Qdisc {
			return NewDRR(Classifier{
				Filters: []Filter{{Match: MatchMark(simnet.MarkHigh), Class: 0}},
				Default: 1,
			}, 2*simnet.MTU, simnet.MTU)
		},
	}
	for name, mk := range build {
		name, mk := name, mk
		f := func(seed int64, n uint8) bool {
			rng := rand.New(rand.NewSource(seed))
			s := simnet.NewScheduler()
			q := mk(s)
			count := 1 + int(n)%100
			accepted := map[uint64]bool{}
			for i := 0; i < count; i++ {
				p := &simnet.Packet{
					ID:   uint64(i + 1),
					Size: 40 + rng.Intn(simnet.MTU-40),
					Mark: simnet.Mark(rng.Intn(3)),
				}
				if q.Enqueue(p) {
					accepted[p.ID] = true
				}
			}
			// Drain, advancing virtual time so shapers release.
			for i := 0; i < 10*count+10; i++ {
				p := q.Dequeue()
				if p == nil {
					if q.Len() == 0 {
						break
					}
					s.RunUntil(s.Now() + time.Millisecond)
					continue
				}
				if !accepted[p.ID] {
					t.Logf("%s: packet %d duplicated or invented", name, p.ID)
					return false
				}
				delete(accepted, p.ID)
			}
			if len(accepted) != 0 {
				t.Logf("%s: %d packets lost inside qdisc", name, len(accepted))
				return false
			}
			if q.Len() != 0 || q.Backlog() != 0 {
				t.Logf("%s: residual len=%d backlog=%d", name, q.Len(), q.Backlog())
				return false
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(1))}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

// TestPropertyBacklogMatchesContents: Backlog always equals the byte
// sum of queued packets across arbitrary interleavings.
func TestPropertyBacklogMatchesContents(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := simnet.NewScheduler()
		q := NewPrio(Classifier{
			Filters: []Filter{{Match: MatchMark(simnet.MarkHigh), Class: 0}},
			Default: 1,
		}, simnet.NewFIFO(0), simnet.NewFIFO(0))
		_ = s
		inside := 0
		for i := 0; i < 300; i++ {
			if rng.Intn(2) == 0 {
				size := 40 + rng.Intn(1000)
				if q.Enqueue(&simnet.Packet{ID: uint64(i), Size: size, Mark: simnet.Mark(rng.Intn(3))}) {
					inside += size
				}
			} else if p := q.Dequeue(); p != nil {
				inside -= p.Size
			}
			if q.Backlog() != inside {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}
