package tc

import (
	"time"

	"meshlayer/internal/simnet"
)

// HTBClass configures one class of an HTB qdisc.
type HTBClass struct {
	// Rate is the guaranteed rate in bits/s.
	Rate int64
	// Ceil caps the class when borrowing (bits/s). Zero means Ceil=Rate.
	Ceil int64
	// Prio orders borrowing: lower values borrow first.
	Prio int
	// Queue holds the class's packets; nil selects a default FIFO.
	Queue simnet.Qdisc
}

// HTB is a single-level hierarchical token bucket: each class is
// guaranteed its Rate, and spare capacity is lent out up to each class's
// Ceil, lower Prio first. It covers the configurations the paper's
// prototype needs (e.g. high=95% guaranteed/100% ceil, low=5%/100%).
type HTB struct {
	classes    []*htbClass
	classifier Classifier
	clock      Clock
	rrNext     int
}

type htbClass struct {
	cfg        HTBClass
	queue      simnet.Qdisc
	rateTokens float64
	ceilTokens float64
	last       time.Duration
	head       *simnet.Packet
	sent       uint64
	sentBytes  uint64
}

// NewHTB builds an HTB qdisc with the given classes. The classifier's
// class indexes address the classes slice; out-of-range goes to the last
// class.
func NewHTB(classifier Classifier, clock Clock, classes ...HTBClass) *HTB {
	if len(classes) == 0 {
		panic("tc: HTB needs at least one class")
	}
	if clock == nil {
		panic("tc: HTB needs a clock")
	}
	h := &HTB{classifier: classifier, clock: clock}
	for _, c := range classes {
		if c.Rate <= 0 {
			panic("tc: HTB class rate must be positive")
		}
		if c.Ceil == 0 {
			c.Ceil = c.Rate
		}
		if c.Ceil < c.Rate {
			panic("tc: HTB ceil below rate")
		}
		q := c.Queue
		if q == nil {
			q = simnet.NewFIFO(0)
		}
		burst := float64(htbBurst)
		h.classes = append(h.classes, &htbClass{
			cfg: c, queue: q, rateTokens: burst, ceilTokens: burst,
		})
	}
	return h
}

// htbBurst is the per-class token bucket depth in bytes.
const htbBurst = 10 * simnet.MTU

// ClassSent returns packets and bytes sent by class i.
func (h *HTB) ClassSent(i int) (packets, bytes uint64) {
	return h.classes[i].sent, h.classes[i].sentBytes
}

func (c *htbClass) refill(now time.Duration) {
	if now <= c.last {
		return
	}
	dt := (now - c.last).Seconds()
	c.last = now
	c.rateTokens += float64(c.cfg.Rate) / 8 * dt
	c.ceilTokens += float64(c.cfg.Ceil) / 8 * dt
	if c.rateTokens > htbBurst {
		c.rateTokens = htbBurst
	}
	if c.ceilTokens > htbBurst {
		c.ceilTokens = htbBurst
	}
}

func (c *htbClass) peek() *simnet.Packet {
	if c.head == nil {
		c.head = c.queue.Dequeue() //meshvet:allow poolescape peeked head is still queue-owned until the scheduler emits it
	}
	return c.head
}

func (c *htbClass) take() *simnet.Packet {
	p := c.head
	c.head = nil
	size := float64(p.Size)
	c.rateTokens -= size // may go negative: borrowed bandwidth is "owed"
	c.ceilTokens -= size
	c.sent++
	c.sentBytes += uint64(p.Size)
	return p
}

// Enqueue implements simnet.Qdisc.
func (h *HTB) Enqueue(p *simnet.Packet) bool {
	i := h.classifier.Classify(p)
	if i < 0 || i >= len(h.classes) {
		i = len(h.classes) - 1
	}
	return h.classes[i].queue.Enqueue(p)
}

// Dequeue implements simnet.Qdisc. Guaranteed-rate service first
// (round-robin among classes within their Rate), then borrowing in Prio
// order up to Ceil.
func (h *HTB) Dequeue() *simnet.Packet {
	now := h.clock()
	for _, c := range h.classes {
		c.refill(now)
	}
	// Pass 1: guaranteed rate, round-robin for fairness among classes.
	n := len(h.classes)
	for off := 0; off < n; off++ {
		c := h.classes[(h.rrNext+off)%n]
		p := c.peek()
		if p == nil {
			continue
		}
		if c.rateTokens >= float64(p.Size) {
			h.rrNext = (h.rrNext + off + 1) % n
			return c.take()
		}
	}
	// Pass 2: borrow, lowest Prio value first, then declaration order.
	var best *htbClass
	for _, c := range h.classes {
		p := c.peek()
		if p == nil || c.ceilTokens < float64(p.Size) {
			continue
		}
		if best == nil || c.cfg.Prio < best.cfg.Prio {
			best = c
		}
	}
	if best != nil {
		return best.take()
	}
	return nil
}

// Len implements simnet.Qdisc.
func (h *HTB) Len() int {
	n := 0
	for _, c := range h.classes {
		n += c.queue.Len()
		if c.head != nil {
			n++
		}
	}
	return n
}

// Backlog implements simnet.Qdisc.
func (h *HTB) Backlog() int {
	n := 0
	for _, c := range h.classes {
		n += c.queue.Backlog()
		if c.head != nil {
			n += c.head.Size
		}
	}
	return n
}

// NextWake implements simnet.Waker: earliest time any backlogged class
// accumulates ceil tokens for its head packet.
func (h *HTB) NextWake(now time.Duration) (time.Duration, bool) {
	var best time.Duration
	found := false
	for _, c := range h.classes {
		c.refill(now)
		p := c.peek()
		if p == nil {
			continue
		}
		deficit := float64(p.Size) - c.ceilTokens
		var at time.Duration
		if deficit <= 0 {
			at = now
		} else {
			at = now + time.Duration(deficit*8/float64(c.cfg.Ceil)*float64(time.Second))
			if at <= now {
				at = now + time.Nanosecond
			}
		}
		if !found || at < best {
			best, found = at, true
		}
	}
	return best, found
}
