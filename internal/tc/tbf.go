package tc

import (
	"time"

	"meshlayer/internal/simnet"
)

// TBF is a token-bucket filter: packets pass through an inner qdisc and
// are released only while tokens are available, shaping the output to
// Rate with bursts up to Burst bytes.
type TBF struct {
	rate  int64 // bits per second
	burst int64 // bytes
	inner simnet.Qdisc
	clock Clock

	tokens float64 // bytes
	last   time.Duration
	head   *simnet.Packet // dequeued from inner, waiting for tokens
}

// NewTBF shapes the inner qdisc to rate bits/s with the given byte
// burst. A nil inner selects a default FIFO. Burst must cover at least
// one MTU or full-size packets could never be released; smaller values
// are raised to one MTU.
func NewTBF(rate int64, burst int64, inner simnet.Qdisc, clock Clock) *TBF {
	if rate <= 0 {
		panic("tc: TBF rate must be positive")
	}
	if inner == nil {
		inner = simnet.NewFIFO(0)
	}
	if burst < simnet.MTU {
		burst = simnet.MTU
	}
	if clock == nil {
		panic("tc: TBF needs a clock")
	}
	return &TBF{rate: rate, burst: burst, inner: inner, clock: clock, tokens: float64(burst)}
}

// Rate returns the shaping rate in bits per second.
func (q *TBF) Rate() int64 { return q.rate }

func (q *TBF) refill(now time.Duration) {
	if now <= q.last {
		return
	}
	elapsed := now - q.last
	q.last = now
	q.tokens += float64(q.rate) / 8 * elapsed.Seconds()
	if q.tokens > float64(q.burst) {
		q.tokens = float64(q.burst)
	}
}

// Enqueue implements simnet.Qdisc.
func (q *TBF) Enqueue(p *simnet.Packet) bool { return q.inner.Enqueue(p) }

// Dequeue implements simnet.Qdisc: returns the head packet if tokens
// cover it, nil otherwise.
func (q *TBF) Dequeue() *simnet.Packet {
	q.refill(q.clock())
	if q.head == nil {
		q.head = q.inner.Dequeue() //meshvet:allow poolescape peeked head is still queue-owned until tokens cover it
	}
	if q.head == nil {
		return nil
	}
	need := float64(q.head.Size)
	if q.tokens < need {
		return nil
	}
	q.tokens -= need
	p := q.head
	q.head = nil
	return p
}

// Len implements simnet.Qdisc.
func (q *TBF) Len() int {
	n := q.inner.Len()
	if q.head != nil {
		n++
	}
	return n
}

// Backlog implements simnet.Qdisc.
func (q *TBF) Backlog() int {
	n := q.inner.Backlog()
	if q.head != nil {
		n += q.head.Size
	}
	return n
}

// NextWake implements simnet.Waker: the time at which tokens suffice for
// the head packet.
func (q *TBF) NextWake(now time.Duration) (time.Duration, bool) {
	q.refill(now)
	if q.head == nil && q.inner.Len() == 0 {
		return 0, false
	}
	size := simnet.MTU
	if q.head != nil {
		size = q.head.Size
	}
	deficit := float64(size) - q.tokens
	if deficit <= 0 {
		return now, true
	}
	wait := time.Duration(deficit * 8 / float64(q.rate) * float64(time.Second))
	if wait <= 0 {
		wait = time.Nanosecond
	}
	return now + wait, true
}
