package tc

import (
	"meshlayer/internal/simnet"
)

// NearStrictConfig parameterizes the paper's §4.3 discipline: high-mark
// packets get strict priority over the rest, but are capped at a share
// of the link rate so the low class cannot starve completely.
type NearStrictConfig struct {
	// LinkRate is the rate of the link the qdisc feeds, bits/s.
	LinkRate int64
	// HighShare is the fraction of LinkRate granted to the high class,
	// e.g. 0.95 for the paper's "up to 95% of bandwidth". Values outside
	// (0, 1] are rejected.
	HighShare float64
	// HighMatch classifies packets into the high band. Nil selects
	// packets marked simnet.MarkHigh or above.
	HighMatch func(*simnet.Packet) bool
	// QueueBytes bounds each band. <= 0 selects the default FIFO limit.
	QueueBytes int
}

// NewNearStrict composes PRIO + TBF into "nearly-strict prioritization
// (up to HighShare of bandwidth)": the high band is served first
// whenever it is within its shaped rate; the low band gets the line
// whenever the high band is empty or throttled.
func NewNearStrict(cfg NearStrictConfig, clock Clock) *Prio {
	if cfg.LinkRate <= 0 {
		panic("tc: NearStrict needs a positive link rate")
	}
	if cfg.HighShare <= 0 || cfg.HighShare > 1 {
		panic("tc: NearStrict HighShare must be in (0,1]")
	}
	match := cfg.HighMatch
	if match == nil {
		match = MatchMinMark(simnet.MarkHigh)
	}
	highRate := int64(float64(cfg.LinkRate) * cfg.HighShare)
	high := NewTBF(highRate, 20*simnet.MTU, simnet.NewFIFO(cfg.QueueBytes), clock)
	low := simnet.NewFIFO(cfg.QueueBytes)
	cls := Classifier{
		Filters: []Filter{{Match: match, Class: 0}},
		Default: 1,
	}
	return NewPrio(cls, high, low)
}
