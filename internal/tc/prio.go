package tc

import (
	"time"

	"meshlayer/internal/simnet"
)

// Prio is a strict-priority classful qdisc: band 0 is always served
// before band 1, and so on — the discipline of `tc qdisc add ... prio`.
type Prio struct {
	bands      []simnet.Qdisc
	classifier Classifier
	dropStats  []uint64
	sentStats  []uint64
}

// NewPrio builds a strict-priority qdisc over the given bands (band 0
// highest). The classifier's class indexes select bands; out-of-range
// classes go to the last band.
func NewPrio(classifier Classifier, bands ...simnet.Qdisc) *Prio {
	if len(bands) == 0 {
		panic("tc: prio needs at least one band")
	}
	return &Prio{
		bands:      bands,
		classifier: classifier,
		dropStats:  make([]uint64, len(bands)),
		sentStats:  make([]uint64, len(bands)),
	}
}

// Band returns the qdisc of band i.
func (q *Prio) Band(i int) simnet.Qdisc { return q.bands[i] }

// Sent returns packets dequeued from band i.
func (q *Prio) Sent(i int) uint64 { return q.sentStats[i] }

// Dropped returns packets rejected by band i at enqueue.
func (q *Prio) Dropped(i int) uint64 { return q.dropStats[i] }

// Enqueue implements simnet.Qdisc.
func (q *Prio) Enqueue(p *simnet.Packet) bool {
	band := q.classifier.Classify(p)
	if band < 0 || band >= len(q.bands) {
		band = len(q.bands) - 1
	}
	ok := q.bands[band].Enqueue(p)
	if !ok {
		q.dropStats[band]++
	}
	return ok
}

// Dequeue implements simnet.Qdisc: highest-priority non-empty eligible
// band wins.
func (q *Prio) Dequeue() *simnet.Packet {
	for i, b := range q.bands {
		if p := b.Dequeue(); p != nil {
			q.sentStats[i]++
			return p
		}
	}
	return nil
}

// Len implements simnet.Qdisc.
func (q *Prio) Len() int {
	n := 0
	for _, b := range q.bands {
		n += b.Len()
	}
	return n
}

// Backlog implements simnet.Qdisc.
func (q *Prio) Backlog() int {
	n := 0
	for _, b := range q.bands {
		n += b.Backlog()
	}
	return n
}

// NextWake implements simnet.Waker by delegating to shaped bands.
func (q *Prio) NextWake(now time.Duration) (time.Duration, bool) {
	var best time.Duration
	found := false
	for _, b := range q.bands {
		if w, ok := b.(simnet.Waker); ok {
			if at, ok := w.NextWake(now); ok && (!found || at < best) {
				best, found = at, true
			}
		}
	}
	return best, found
}
