package workload

import (
	"testing"
	"time"

	"meshlayer/internal/app"
	"meshlayer/internal/httpsim"
)

func testSpec(rate float64, seed int64) Spec {
	return Spec{
		Name:       "test",
		Rate:       rate,
		NewRequest: app.NewProductRequest,
		Seed:       seed,
		Warmup:     2 * time.Second,
		Measure:    10 * time.Second,
		Cooldown:   time.Second,
	}
}

func TestArrivalRateAccuracy(t *testing.T) {
	e := app.BuildELibrary(app.DefaultELibraryConfig())
	g := Start(e.Sched, e.Gateway, testSpec(50, 1))
	e.Sched.RunUntil(14 * time.Second)
	r := g.Results()
	// 13 s of arrivals at 50 RPS: ~650 expected.
	if r.Issued < 550 || r.Issued > 750 {
		t.Fatalf("issued = %d, want ~650", r.Issued)
	}
	if g.Running() {
		t.Fatal("generator still running after total duration")
	}
}

func TestMeasurementWindowExcludesWarmupCooldown(t *testing.T) {
	e := app.BuildELibrary(app.DefaultELibraryConfig())
	g := Start(e.Sched, e.Gateway, testSpec(20, 2))
	e.Sched.RunUntil(20 * time.Second)
	e.Sched.Run()
	r := g.Results()
	if r.Measured == 0 {
		t.Fatal("nothing measured")
	}
	// Measured arrivals are a strict subset of issued (warmup/cooldown
	// excluded): ~10s/13s of arrivals.
	if r.Measured >= r.Issued {
		t.Fatalf("measured %d >= issued %d", r.Measured, r.Issued)
	}
	frac := float64(r.Measured) / float64(r.Issued)
	if frac < 0.6 || frac > 0.9 {
		t.Fatalf("measured fraction = %.2f, want ~0.77", frac)
	}
	if r.Errors != 0 {
		t.Fatalf("errors = %d", r.Errors)
	}
	if r.P50() <= 0 || r.P99() < r.P50() {
		t.Fatalf("p50=%v p99=%v", r.P50(), r.P99())
	}
}

func TestDeterministicWithSameSeed(t *testing.T) {
	run := func() (uint64, time.Duration) {
		e := app.BuildELibrary(app.DefaultELibraryConfig())
		g := Start(e.Sched, e.Gateway, testSpec(30, 7))
		e.Sched.RunUntil(15 * time.Second)
		r := g.Results()
		return r.Issued, r.P99()
	}
	i1, p1 := run()
	i2, p2 := run()
	if i1 != i2 || p1 != p2 {
		t.Fatalf("nondeterministic: (%d,%v) vs (%d,%v)", i1, p1, i2, p2)
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	e1 := app.BuildELibrary(app.DefaultELibraryConfig())
	g1 := Start(e1.Sched, e1.Gateway, testSpec(30, 1))
	e1.Sched.RunUntil(15 * time.Second)
	e2 := app.BuildELibrary(app.DefaultELibraryConfig())
	g2 := Start(e2.Sched, e2.Gateway, testSpec(30, 99))
	e2.Sched.RunUntil(15 * time.Second)
	if g1.Results().Issued == g2.Results().Issued {
		t.Log("issued counts equal (possible but unlikely); checking p50")
		if g1.Results().P50() == g2.Results().P50() {
			t.Fatal("different seeds produced identical runs")
		}
	}
}

func TestErrorsCounted(t *testing.T) {
	e := app.BuildELibrary(app.DefaultELibraryConfig())
	spec := testSpec(10, 3)
	spec.NewRequest = func() *httpsim.Request {
		r := httpsim.NewRequest("GET", "/x")
		r.Headers.Set("host", "no-such-service")
		return r
	}
	g := Start(e.Sched, e.Gateway, spec)
	e.Sched.RunUntil(14 * time.Second)
	r := g.Results()
	if r.Errors == 0 || r.Errors != r.Completed {
		t.Fatalf("errors = %d, completed = %d", r.Errors, r.Completed)
	}
	if r.Measured != 0 {
		t.Fatal("errored requests must not be measured")
	}
}

func TestSpecValidation(t *testing.T) {
	e := app.BuildELibrary(app.DefaultELibraryConfig())
	for _, bad := range []Spec{
		{Rate: 0, NewRequest: app.NewProductRequest, Measure: time.Second},
		{Rate: 10, Measure: time.Second},
		{Rate: 10, NewRequest: app.NewProductRequest},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("bad spec %+v accepted", bad)
				}
			}()
			Start(e.Sched, e.Gateway, bad)
		}()
	}
}

func TestResultsStringAndThroughput(t *testing.T) {
	e := app.BuildELibrary(app.DefaultELibraryConfig())
	g := Start(e.Sched, e.Gateway, testSpec(25, 5))
	e.Sched.RunUntil(20 * time.Second)
	e.Sched.Run()
	r := g.Results()
	if r.Throughput() < 15 || r.Throughput() > 35 {
		t.Fatalf("throughput = %.1f, want ~25", r.Throughput())
	}
	if len(r.String()) < 10 {
		t.Fatal("string summary empty")
	}
}

func TestPoissonArrivals(t *testing.T) {
	e := app.BuildELibrary(app.DefaultELibraryConfig())
	spec := testSpec(50, 4)
	spec.Arrival = ArrivalPoisson
	g := Start(e.Sched, e.Gateway, spec)
	e.Sched.RunUntil(14 * time.Second)
	r := g.Results()
	// 13s at 50 RPS: ~650 arrivals, wider variance than uniform.
	if r.Issued < 500 || r.Issued > 800 {
		t.Fatalf("issued = %d, want ~650", r.Issued)
	}
}

func TestClosedLoopConcurrencyBound(t *testing.T) {
	e := app.BuildELibrary(app.DefaultELibraryConfig())
	spec := Spec{
		Name:        "closed",
		Arrival:     ArrivalClosed,
		Concurrency: 4,
		ThinkTime:   10 * time.Millisecond,
		NewRequest:  app.NewProductRequest,
		Seed:        5,
		Warmup:      time.Second,
		Measure:     8 * time.Second,
		Cooldown:    time.Second,
	}
	g := Start(e.Sched, e.Gateway, spec)
	e.Sched.RunUntil(12 * time.Second)
	e.Sched.Run()
	r := g.Results()
	if r.Measured == 0 || r.Errors != 0 {
		t.Fatalf("measured=%d errors=%d", r.Measured, r.Errors)
	}
	// Each user cycles in roughly (latency + think) ~ 15ms: about 65
	// req/s/user. Sanity-bound the closed-loop rate.
	rate := r.Throughput()
	if rate < 50 || rate > 400 {
		t.Fatalf("closed-loop throughput = %.1f", rate)
	}
}

func TestClosedLoopValidation(t *testing.T) {
	e := app.BuildELibrary(app.DefaultELibraryConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("closed loop without concurrency accepted")
		}
	}()
	Start(e.Sched, e.Gateway, Spec{
		Arrival: ArrivalClosed, NewRequest: app.NewProductRequest, Measure: time.Second,
	})
}
