package workload

import (
	"fmt"
	"strings"
	"time"

	"meshlayer/internal/hdr"
)

// Timeline records latency distributions in fixed time buckets, giving
// per-interval percentiles — the "latency over time" view that makes
// transient events (a partition, a config push, an arriving batch job)
// visible where a whole-run histogram would smear them out.
type Timeline struct {
	bucket  time.Duration
	start   time.Duration
	buckets []*timeBucket
}

type timeBucket struct {
	hist   hdr.Histogram
	errors uint64
}

// NewTimeline returns a timeline with the given bucket width, starting
// at time start.
func NewTimeline(start, bucket time.Duration) *Timeline {
	if bucket <= 0 {
		panic("workload: timeline bucket must be positive")
	}
	return &Timeline{bucket: bucket, start: start}
}

func (tl *Timeline) at(t time.Duration) *timeBucket {
	idx := int((t - tl.start) / tl.bucket)
	if idx < 0 {
		idx = 0
	}
	for len(tl.buckets) <= idx {
		tl.buckets = append(tl.buckets, &timeBucket{})
	}
	return tl.buckets[idx]
}

// Record adds a completed request's latency at completion time t.
func (tl *Timeline) Record(t time.Duration, latency time.Duration) {
	tl.at(t).hist.RecordDuration(latency)
}

// RecordError adds a failed request at completion time t.
func (tl *Timeline) RecordError(t time.Duration) {
	tl.at(t).errors++
}

// Len returns the number of buckets materialized so far.
func (tl *Timeline) Len() int { return len(tl.buckets) }

// Point is one timeline bucket's summary.
type Point struct {
	Start    time.Duration
	Count    uint64
	Errors   uint64
	P50, P99 time.Duration
}

// Points summarizes all buckets in order.
func (tl *Timeline) Points() []Point {
	out := make([]Point, len(tl.buckets))
	for i, b := range tl.buckets {
		out[i] = Point{
			Start:  tl.start + time.Duration(i)*tl.bucket,
			Count:  b.hist.Count(),
			Errors: b.errors,
			P50:    b.hist.QuantileDuration(0.50),
			P99:    b.hist.QuantileDuration(0.99),
		}
	}
	return out
}

// CSV renders the timeline for external plotting.
func (tl *Timeline) CSV() string {
	var b strings.Builder
	b.WriteString("t_s,count,errors,p50_ms,p99_ms\n")
	for _, p := range tl.Points() {
		fmt.Fprintf(&b, "%.1f,%d,%d,%.3f,%.3f\n",
			p.Start.Seconds(), p.Count, p.Errors,
			float64(p.P50)/float64(time.Millisecond),
			float64(p.P99)/float64(time.Millisecond))
	}
	return b.String()
}

// Observer returns an OnComplete hook recording into the timeline;
// assign it to Spec.OnComplete.
func (tl *Timeline) Observer() func(at, latency time.Duration, failed bool) {
	return func(at, latency time.Duration, failed bool) {
		if failed {
			tl.RecordError(at)
			return
		}
		tl.Record(at, latency)
	}
}
