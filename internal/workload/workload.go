// Package workload implements a wrk2-style open-loop load generator
// for the simulated mesh: requests arrive on their own schedule with
// uniformly random inter-arrival times (as in the paper's §4.3 setup),
// independent of completions, so queueing delay shows up in the
// recorded latencies instead of silently throttling the offered load
// (no coordinated omission).
//
// Each run has warm-up and cool-down periods excluded from measurement,
// again following the paper's methodology.
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"meshlayer/internal/hdr"
	"meshlayer/internal/httpsim"
	"meshlayer/internal/mesh"
	"meshlayer/internal/simnet"
)

// ArrivalMode selects the arrival process.
type ArrivalMode int

// Arrival processes.
const (
	// ArrivalUniform draws inter-arrival gaps from U(0, 2/rate) —
	// the paper's §4.3 setup ("uniformly random inter-arrival times").
	ArrivalUniform ArrivalMode = iota
	// ArrivalPoisson draws exponential gaps (memoryless arrivals).
	ArrivalPoisson
	// ArrivalClosed runs a fixed number of virtual users that issue,
	// wait for the response, think, and repeat. Rate is ignored;
	// Concurrency and ThinkTime apply.
	ArrivalClosed
)

// Spec describes one workload.
type Spec struct {
	// Name labels the workload in results ("latency-sensitive").
	Name string
	// Rate is the average arrival rate in requests per second
	// (open-loop modes only).
	Rate float64
	// Arrival selects the arrival process (default ArrivalUniform).
	Arrival ArrivalMode
	// Concurrency is the virtual-user count for ArrivalClosed.
	Concurrency int
	// ThinkTime is each closed-loop user's pause between requests.
	ThinkTime time.Duration
	// NewRequest builds each request (called once per arrival).
	NewRequest func() *httpsim.Request
	// Seed drives the arrival process. Generators with different seeds
	// produce independent arrival sequences.
	Seed int64
	// Warmup and Cooldown bracket the Measure window: requests issued
	// outside the window are sent but not recorded.
	Warmup, Measure, Cooldown time.Duration
	// OnComplete, if set, observes every completion (including outside
	// the measure window): completion time, latency, and whether the
	// request failed. Timeline.Observer plugs in here.
	OnComplete func(at, latency time.Duration, failed bool)
}

// TotalDuration returns the full run length.
func (s Spec) TotalDuration() time.Duration { return s.Warmup + s.Measure + s.Cooldown }

// Results summarizes one workload's measured window.
type Results struct {
	Name      string
	Issued    uint64 // all arrivals, including outside the window
	Completed uint64
	Errors    uint64
	Measured  uint64 // latency samples within the window
	Hist      *hdr.Histogram
	Window    time.Duration
}

// P50 returns the median latency of the measured window.
func (r *Results) P50() time.Duration { return r.Hist.QuantileDuration(0.50) }

// P99 returns the 99th-percentile latency of the measured window.
func (r *Results) P99() time.Duration { return r.Hist.QuantileDuration(0.99) }

// Mean returns the mean latency of the measured window.
func (r *Results) Mean() time.Duration { return time.Duration(r.Hist.Mean()) }

// Throughput returns measured completions per second.
func (r *Results) Throughput() float64 {
	if r.Window <= 0 {
		return 0
	}
	return float64(r.Measured) / r.Window.Seconds()
}

// String renders a wrk2-style summary line.
func (r *Results) String() string {
	return fmt.Sprintf("%s: issued=%d errors=%d p50=%v p99=%v mean=%v",
		r.Name, r.Issued, r.Errors, r.P50(), r.P99(), r.Mean())
}

// Generator drives one workload against a gateway.
type Generator struct {
	sched *simnet.Scheduler
	gw    *mesh.Gateway
	spec  Spec
	rng   *rand.Rand

	start     time.Duration
	issued    uint64
	completed uint64
	errors    uint64
	measured  uint64
	hist      *hdr.Histogram
	running   bool
}

// Start launches the workload at the scheduler's current time. The
// generator stops issuing after spec.TotalDuration().
func Start(sched *simnet.Scheduler, gw *mesh.Gateway, spec Spec) *Generator {
	if spec.Arrival == ArrivalClosed {
		if spec.Concurrency <= 0 {
			panic("workload: closed-loop needs Concurrency > 0")
		}
	} else if spec.Rate <= 0 {
		panic("workload: rate must be positive")
	}
	if spec.NewRequest == nil {
		panic("workload: NewRequest required")
	}
	if spec.Measure <= 0 {
		panic("workload: measure window required")
	}
	g := &Generator{
		sched: sched,
		gw:    gw,
		spec:  spec,
		rng:   rand.New(rand.NewSource(spec.Seed)),
		start: sched.Now(),
		hist:  hdr.New(),
	}
	g.running = true
	if spec.Arrival == ArrivalClosed {
		for i := 0; i < spec.Concurrency; i++ {
			g.userLoop()
		}
	} else {
		g.scheduleNext()
	}
	return g
}

// scheduleNext draws the next open-loop inter-arrival: U(0, 2/rate)
// for the paper's uniform arrivals, Exp(rate) for Poisson.
func (g *Generator) scheduleNext() {
	var gap time.Duration
	if g.spec.Arrival == ArrivalPoisson {
		gap = time.Duration(g.rng.ExpFloat64() / g.spec.Rate * float64(time.Second))
	} else {
		gap = time.Duration(g.rng.Float64() * 2 / g.spec.Rate * float64(time.Second))
	}
	g.sched.After(gap, g.fire)
}

func (g *Generator) fire() {
	if !g.issue(nil) {
		return
	}
	g.scheduleNext()
}

// userLoop is one closed-loop virtual user: issue, await, think, repeat.
func (g *Generator) userLoop() {
	ok := g.issue(func() {
		g.sched.After(g.spec.ThinkTime, g.userLoop)
	})
	if !ok {
		return
	}
}

// issue sends one request; onDone (if non-nil) runs after its response.
// It returns false once the run is over.
func (g *Generator) issue(onDone func()) bool {
	now := g.sched.Now()
	elapsed := now - g.start
	if elapsed >= g.spec.TotalDuration() {
		g.running = false
		return false
	}
	g.issued++
	issuedAt := now
	inWindow := elapsed >= g.spec.Warmup && elapsed < g.spec.Warmup+g.spec.Measure
	g.gw.Serve(g.spec.NewRequest(), func(resp *httpsim.Response, err error) {
		g.completed++
		now := g.sched.Now()
		failed := err != nil || resp.Status >= 500
		if failed {
			g.errors++
		} else if inWindow {
			g.measured++
			g.hist.RecordDuration(now - issuedAt)
		}
		if g.spec.OnComplete != nil {
			g.spec.OnComplete(now, now-issuedAt, failed)
		}
		if onDone != nil {
			onDone()
		}
	})
	return true
}

// Running reports whether the generator is still issuing.
func (g *Generator) Running() bool { return g.running }

// Results snapshots the workload's measured statistics.
func (g *Generator) Results() *Results {
	return &Results{
		Name:      g.spec.Name,
		Issued:    g.issued,
		Completed: g.completed,
		Errors:    g.errors,
		Measured:  g.measured,
		Hist:      g.hist,
		Window:    g.spec.Measure,
	}
}
