package workload

import (
	"strings"
	"testing"
	"time"

	"meshlayer/internal/app"
)

func TestTimelineBucketsAndPoints(t *testing.T) {
	tl := NewTimeline(0, time.Second)
	tl.Record(100*time.Millisecond, 5*time.Millisecond)
	tl.Record(900*time.Millisecond, 15*time.Millisecond)
	tl.Record(2500*time.Millisecond, 50*time.Millisecond)
	tl.RecordError(2600 * time.Millisecond)
	pts := tl.Points()
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].Count != 2 || pts[1].Count != 0 || pts[2].Count != 1 {
		t.Fatalf("counts: %+v", pts)
	}
	if pts[2].Errors != 1 {
		t.Fatalf("errors: %+v", pts[2])
	}
	if pts[0].P50 < 5*time.Millisecond || pts[0].P99 > 16*time.Millisecond {
		t.Fatalf("bucket0 percentiles: %+v", pts[0])
	}
	if pts[1].Start != time.Second {
		t.Fatalf("bucket start: %v", pts[1].Start)
	}
}

func TestTimelineCSV(t *testing.T) {
	tl := NewTimeline(0, time.Second)
	tl.Record(0, 10*time.Millisecond)
	csv := tl.CSV()
	if !strings.HasPrefix(csv, "t_s,count,errors,p50_ms,p99_ms\n") {
		t.Fatalf("header: %q", csv)
	}
	if !strings.Contains(csv, "0.0,1,0,10") {
		t.Fatalf("row: %q", csv)
	}
}

func TestTimelineValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero bucket accepted")
		}
	}()
	NewTimeline(0, 0)
}

func TestTimelineIntegratesWithGenerator(t *testing.T) {
	e := app.BuildELibrary(app.DefaultELibraryConfig())
	tl := NewTimeline(0, time.Second)
	spec := testSpec(30, 6)
	spec.OnComplete = tl.Observer()
	g := Start(e.Sched, e.Gateway, spec)
	e.Sched.RunUntil(14 * time.Second)
	e.Sched.Run()
	r := g.Results()
	var total uint64
	for _, p := range tl.Points() {
		total += p.Count + p.Errors
	}
	if total != r.Completed {
		t.Fatalf("timeline total %d != completed %d", total, r.Completed)
	}
	if tl.Len() < 10 {
		t.Fatalf("timeline buckets = %d, want >= 10", tl.Len())
	}
}
