package transport

import (
	"fmt"
	"sort"
	"time"

	"meshlayer/internal/simnet"
)

// Host is the per-node transport endpoint: it demultiplexes incoming
// packets to connections and listeners. Create exactly one per node
// that terminates transport traffic.
type Host struct {
	node  *simnet.Node
	net   *simnet.Network
	sched *simnet.Scheduler

	conns     map[simnet.FlowKey]*Conn
	listeners map[uint16]*Listener
	nextPort  uint16

	// segPool recycles Segment structs. Segments are allocated by the
	// sending connection (via Conn.seg) and reclaimed by the receiving
	// host once handled, so within one simulation the pools act as a
	// shared recycling loop between peers. Segments lost in transit
	// simply fall to the garbage collector.
	segPool []*Segment
}

// allocSeg pops a recycled segment (scrubbing it here, at reuse time)
// or allocates a fresh one. The Sacks backing array is kept: it is
// exclusively owned by the segment and reused by the next ACK.
func (h *Host) allocSeg() *Segment {
	if k := len(h.segPool); k > 0 {
		s := h.segPool[k-1]
		h.segPool = h.segPool[:k-1]
		*s = Segment{Sacks: s.Sacks[:0]}
		return s
	}
	return &Segment{}
}

// freeSeg returns a handled segment to the pool. Bounds is dropped
// rather than reused: its backing array aliases the sender's segInfo
// bookkeeping, which outlives this segment for retransmissions.
func (h *Host) freeSeg(s *Segment) {
	s.Bounds = nil
	h.segPool = append(h.segPool, s) //meshvet:allow poolescape this free list IS the pool: the one sanctioned retainer
}

// Listener accepts inbound connections on a port.
type Listener struct {
	host     *Host
	port     uint16
	onAccept func(*Conn)
	accepted uint64
}

// Port returns the listening port.
func (l *Listener) Port() uint16 { return l.port }

// Accepted returns the number of connections accepted.
func (l *Listener) Accepted() uint64 { return l.accepted }

// Close stops accepting new connections.
func (l *Listener) Close() { delete(l.host.listeners, l.port) }

// NewHost attaches a transport endpoint to the node, registering the
// node's local-delivery hook.
func NewHost(node *simnet.Node) *Host {
	h := &Host{
		node:      node,
		net:       node.Network(),
		sched:     node.Network().Scheduler(),
		conns:     make(map[simnet.FlowKey]*Conn),
		listeners: make(map[uint16]*Listener),
		nextPort:  32768,
	}
	node.SetDeliver(h.deliver)
	return h
}

// Node returns the underlying simnet node.
func (h *Host) Node() *simnet.Node { return h.node }

// Attach (re)installs the host's packet-delivery hook on its node —
// used to restore connectivity after a simulated network partition
// replaced the hook with a blackhole.
func (h *Host) Attach() { h.node.SetDeliver(h.deliver) }

// Scheduler returns the simulation scheduler.
func (h *Host) Scheduler() *simnet.Scheduler { return h.sched }

// Listen registers an accept callback for the port. The callback runs
// when the SYN arrives, before any data, so it can install OnMessage.
func (h *Host) Listen(port uint16, onAccept func(*Conn)) (*Listener, error) {
	if _, busy := h.listeners[port]; busy {
		return nil, fmt.Errorf("transport: port %d already listening on %s", port, h.node.Name())
	}
	l := &Listener{host: h, port: port, onAccept: onAccept}
	h.listeners[port] = l
	return l, nil
}

// Dial opens a connection to dst:port. The returned Conn is usable
// immediately — messages queued before the handshake completes are
// sent once it does.
func (h *Host) Dial(dst simnet.Addr, port uint16, opts Options) *Conn {
	flow := simnet.FlowKey{
		Src:     h.node.Addr(),
		Dst:     dst,
		SrcPort: h.allocPort(),
		DstPort: port,
		Proto:   simnet.ProtoTCP,
	}
	c := &Conn{
		host:    h,
		flow:    flow,
		opts:    opts,
		state:   stateSynSent,
		cc:      NewController(opts.CC, h.sched.Now),
		peerWnd: rcvWindow,
	}
	h.conns[flow] = c
	h.sendSYN(c)
	return c
}

func (h *Host) sendSYN(c *Conn) {
	if c.state != stateSynSent {
		return
	}
	c.synTries++
	if c.synTries > 4 {
		c.teardown(ErrConnectTimeout)
		return
	}
	c.emit(c.seg(SegSYN), 0)
	backoff := time.Second << uint(c.synTries-1)
	c.synTimer.Cancel() // fired (we are its callback) or zero; cancel before re-arm
	c.synTimer = h.sched.After(backoff, func() { h.sendSYN(c) })
}

func (h *Host) allocPort() uint16 {
	for {
		p := h.nextPort
		h.nextPort++
		if h.nextPort < 32768 {
			h.nextPort = 32768
		}
		// Cheap collision check against active conns.
		free := true
		for k := range h.conns {
			if k.SrcPort == p {
				free = false
				break
			}
		}
		if free {
			return p
		}
	}
}

func (h *Host) removeConn(c *Conn) { delete(h.conns, c.flow) }

// ConnCount returns the number of live connections (debug/tests).
func (h *Host) ConnCount() int { return len(h.conns) }

// ResetConns aborts every live connection on the host, modeling a
// process crash: sockets die with the process, so no half-open peer
// keeps retransmitting state the restarted process no longer has.
// Connections are torn down in flow-key order for determinism.
func (h *Host) ResetConns() {
	keys := make([]simnet.FlowKey, 0, len(h.conns))
	for k := range h.conns {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return flowLess(keys[i], keys[j]) })
	for _, k := range keys {
		if c, ok := h.conns[k]; ok {
			c.Abort()
		}
	}
}

func flowLess(a, b simnet.FlowKey) bool {
	switch {
	case a.Src != b.Src:
		return a.Src < b.Src
	case a.Dst != b.Dst:
		return a.Dst < b.Dst
	case a.SrcPort != b.SrcPort:
		return a.SrcPort < b.SrcPort
	case a.DstPort != b.DstPort:
		return a.DstPort < b.DstPort
	default:
		return a.Proto < b.Proto
	}
}

func (h *Host) deliver(p *simnet.Packet) {
	seg, ok := p.Payload.(*Segment)
	if !ok {
		return // not transport traffic
	}
	local := p.Flow.Reverse()
	if c, ok := h.conns[local]; ok {
		c.handle(seg)
		h.freeSeg(seg)
		return
	}
	if seg.Kind == SegSYN {
		if l, ok := h.listeners[p.Flow.DstPort]; ok {
			c := &Conn{
				host:      h,
				flow:      local,
				opts:      Options{CC: "reno"},
				state:     stateEstablished,
				cc:        NewController("reno", h.sched.Now),
				peerWnd:   seg.Wnd,
				lastTSVal: seg.TSVal,
			}
			h.conns[local] = c
			l.accepted++
			if l.onAccept != nil {
				l.onAccept(c)
			}
			c.emit(c.seg(SegSYNACK), 0)
		}
		// else: connection refused, silently dropped in this model.
	}
	// Non-SYN for unknown connection: stale packet after close; ignore.
	h.freeSeg(seg)
}
