package transport

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"meshlayer/internal/simnet"
)

// TestPropertyReliableDeliveryUnderLoss is the transport's core
// invariant: whatever the loss rate, jitter, message sizes, and
// congestion controller, every message arrives exactly once, in order,
// with its exact size.
func TestPropertyReliableDeliveryUnderLoss(t *testing.T) {
	f := func(seed int64, rawLoss uint8, ccPick uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		lossProb := float64(rawLoss%30) / 100 // 0..0.29
		cc := []string{"reno", "cubic", "ledbat", "lp"}[int(ccPick)%4]

		s := simnet.NewScheduler()
		n := simnet.NewNetwork(s)
		a := n.AddNode("a")
		b := n.AddNode("b")
		n.Connect(a, b, simnet.LinkConfig{Rate: 50 * simnet.Mbps, Delay: time.Millisecond})
		a.NICs()[0].Impair(simnet.Impairment{LossProb: lossProb, JitterMax: 2 * time.Millisecond, Seed: seed})
		b.NICs()[0].Impair(simnet.Impairment{LossProb: lossProb / 2, Seed: seed + 1})

		ha, hb := NewHost(a), NewHost(b)
		type rcv struct {
			meta any
			size int
		}
		var got []rcv
		hb.Listen(80, func(c *Conn) {
			c.SetOnMessage(func(meta any, size int) { got = append(got, rcv{meta, size}) })
		})
		// Use a tight MinRTO so lossy runs converge quickly.
		conn := ha.Dial(b.Addr(), 80, Options{CC: cc, MinRTO: 20 * time.Millisecond})

		nMsgs := 5 + rng.Intn(20)
		sizes := make([]int, nMsgs)
		for i := range sizes {
			sizes[i] = 1 + rng.Intn(60000)
			conn.SendMessage(i, sizes[i])
		}
		s.RunUntil(5 * time.Minute)

		if len(got) != nMsgs {
			t.Logf("seed=%d loss=%.2f cc=%s: delivered %d/%d", seed, lossProb, cc, len(got), nMsgs)
			return false
		}
		for i, r := range got {
			if r.meta.(int) != i || r.size != sizes[i] {
				t.Logf("seed=%d: message %d got (%v,%d) want (%d,%d)", seed, i, r.meta, r.size, i, sizes[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyBidirectionalEcho: random request/response sizes echo
// back intact over a lossy link.
func TestPropertyBidirectionalEcho(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := simnet.NewScheduler()
		n := simnet.NewNetwork(s)
		a := n.AddNode("a")
		b := n.AddNode("b")
		n.Connect(a, b, simnet.LinkConfig{Rate: 100 * simnet.Mbps, Delay: 500 * time.Microsecond})
		a.NICs()[0].Impair(simnet.Impairment{LossProb: 0.05, Seed: seed})
		b.NICs()[0].Impair(simnet.Impairment{LossProb: 0.05, Seed: seed + 9})

		ha, hb := NewHost(a), NewHost(b)
		hb.Listen(80, func(c *Conn) {
			c.SetOnMessage(func(meta any, size int) {
				c.SendMessage(meta, size) // echo
			})
		})
		conn := ha.Dial(b.Addr(), 80, Options{MinRTO: 20 * time.Millisecond})
		nMsgs := 3 + rng.Intn(8)
		sent := map[int]int{}
		var echoed []int
		conn.SetOnMessage(func(meta any, size int) {
			if sent[meta.(int)] != size {
				size = -1
			}
			echoed = append(echoed, size)
		})
		for i := 0; i < nMsgs; i++ {
			sz := 1 + rng.Intn(30000)
			sent[i] = sz
			conn.SendMessage(i, sz)
		}
		s.RunUntil(2 * time.Minute)
		if len(echoed) != nMsgs {
			return false
		}
		for _, sz := range echoed {
			if sz < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyBytesConservation: acked bytes never exceed sent stream
// length and eventually equal it.
func TestPropertyBytesConservation(t *testing.T) {
	f := func(seed int64, nMsg uint8) bool {
		s := simnet.NewScheduler()
		n := simnet.NewNetwork(s)
		a := n.AddNode("a")
		b := n.AddNode("b")
		n.Connect(a, b, simnet.LinkConfig{Rate: 100 * simnet.Mbps, Delay: time.Millisecond})
		a.NICs()[0].Impair(simnet.Impairment{LossProb: 0.1, Seed: seed})
		ha, hb := NewHost(a), NewHost(b)
		hb.Listen(80, func(c *Conn) { c.SetOnMessage(func(any, int) {}) })
		conn := ha.Dial(b.Addr(), 80, Options{MinRTO: 20 * time.Millisecond})
		total := 0
		rng := rand.New(rand.NewSource(seed))
		count := 1 + int(nMsg)%10
		for i := 0; i < count; i++ {
			sz := 1 + rng.Intn(20000)
			total += sz
			conn.SendMessage(i, sz)
		}
		s.RunUntil(time.Minute)
		return conn.BytesAcked() == uint64(total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

// TestHeavyLossEventuallyDelivers stresses RTO-driven recovery.
func TestHeavyLossEventuallyDelivers(t *testing.T) {
	s := simnet.NewScheduler()
	n := simnet.NewNetwork(s)
	a := n.AddNode("a")
	b := n.AddNode("b")
	n.Connect(a, b, simnet.LinkConfig{Rate: 10 * simnet.Mbps, Delay: time.Millisecond})
	a.NICs()[0].Impair(simnet.Impairment{LossProb: 0.25, Seed: 5})
	ha, hb := NewHost(a), NewHost(b)
	done := false
	hb.Listen(80, func(c *Conn) { c.SetOnMessage(func(any, int) { done = true }) })
	conn := ha.Dial(b.Addr(), 80, Options{MinRTO: 50 * time.Millisecond})
	conn.SendMessage("x", 500_000)
	s.RunUntil(10 * time.Minute)
	if !done {
		t.Fatalf("500KB never delivered at 25%% loss (rtx=%d timeouts=%d acked=%d)",
			conn.Retransmits(), conn.Timeouts(), conn.BytesAcked())
	}
	if conn.Retransmits() == 0 {
		t.Fatal("no retransmissions at 25% loss?")
	}
}
