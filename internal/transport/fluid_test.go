package transport

import (
	"testing"
	"time"

	"meshlayer/internal/simnet"
)

// fluidPair wires two hosts over one link with the given fidelity.
func fluidPair(t *testing.T, fid simnet.Fidelity, cfg simnet.LinkConfig) *pair {
	t.Helper()
	p := newPair(t, cfg)
	p.net.SetFidelity(fid)
	return p
}

func TestFluidDelivery(t *testing.T) {
	// A bulk message rides the fluid path and still delivers exactly
	// once, in order, with the right meta and size.
	for _, fid := range []simnet.Fidelity{simnet.FidelityFlow, simnet.FidelityHybrid} {
		p := fluidPair(t, fid, simnet.LinkConfig{Rate: 100 * simnet.Mbps, Delay: time.Millisecond})
		var got []any
		var sizes []int
		p.hb.Listen(80, func(c *Conn) {
			c.SetOnMessage(func(meta any, size int) { got = append(got, meta); sizes = append(sizes, size) })
		})
		c := p.ha.Dial(p.hb.Node().Addr(), 80, Options{})
		c.SendMessage("small", 100)       // below cutover: packet path
		c.SendMessage("bulk", 10_000_000) // fluid
		c.SendMessage("after", 200)       // packet again, behind the flow
		p.sched.Run()
		if len(got) != 3 || got[0] != "small" || got[1] != "bulk" || got[2] != "after" {
			t.Fatalf("%v: delivered %v, want [small bulk after]", fid, got)
		}
		if sizes[1] != 10_000_000 {
			t.Fatalf("%v: bulk size %d", fid, sizes[1])
		}
		if c.FluidCompleted() != 1 {
			t.Fatalf("%v: FluidCompleted = %d, want 1", fid, c.FluidCompleted())
		}
		if c.BytesAcked() != 100+10_000_000+200 {
			t.Fatalf("%v: BytesAcked = %d", fid, c.BytesAcked())
		}
	}
}

func TestFluidCompletionTimeMatchesRate(t *testing.T) {
	// 80 Mbps = 1e7 B/s. A 1e7-byte message should be delivered at
	// roughly 1s — rate-accurate, not serialization-step accurate.
	p := fluidPair(t, simnet.FidelityFlow, simnet.LinkConfig{Rate: 80 * simnet.Mbps, Delay: time.Millisecond})
	var deliveredAt time.Duration
	p.hb.Listen(80, func(c *Conn) {
		c.SetOnMessage(func(any, int) { deliveredAt = p.sched.Now() })
	})
	c := p.ha.Dial(p.hb.Node().Addr(), 80, Options{})
	c.SendMessage("bulk", 10_000_000)
	p.sched.Run()
	if deliveredAt < time.Second || deliveredAt > 1100*time.Millisecond {
		t.Fatalf("bulk delivered at %v, want ~1s (+handshake+prop)", deliveredAt)
	}
}

func TestFluidEventReduction(t *testing.T) {
	// The whole point: a 10MB transfer is ~7k data packets + ACKs in
	// packet mode, a handful of events in flow mode.
	steps := map[simnet.Fidelity]uint64{}
	for _, fid := range []simnet.Fidelity{simnet.FidelityPacket, simnet.FidelityFlow} {
		p := fluidPair(t, fid, simnet.LinkConfig{Rate: 1 * simnet.Gbps, Delay: time.Millisecond})
		done := false
		p.hb.Listen(80, func(c *Conn) {
			c.SetOnMessage(func(any, int) { done = true })
		})
		c := p.ha.Dial(p.hb.Node().Addr(), 80, Options{})
		c.SendMessage("bulk", 10_000_000)
		p.sched.Run()
		if !done {
			t.Fatalf("%v: message not delivered", fid)
		}
		steps[fid] = p.sched.Steps()
	}
	if steps[simnet.FidelityFlow]*10 > steps[simnet.FidelityPacket] {
		t.Fatalf("flow mode took %d steps vs packet %d — want >=10x reduction",
			steps[simnet.FidelityFlow], steps[simnet.FidelityPacket])
	}
}

func TestFluidScavengerStaysOnPackets(t *testing.T) {
	// ledbat/lp connections must not use the fast path: their point is
	// to yield to foreground traffic, which fair sharing would erase.
	p := fluidPair(t, simnet.FidelityFlow, simnet.LinkConfig{Rate: 100 * simnet.Mbps, Delay: time.Millisecond})
	delivered := false
	p.hb.Listen(80, func(c *Conn) {
		c.SetOnMessage(func(any, int) { delivered = true })
	})
	c := p.ha.Dial(p.hb.Node().Addr(), 80, Options{CC: "ledbat"})
	c.SendMessage("bulk", 1_000_000)
	p.sched.Run()
	if !delivered {
		t.Fatal("scavenger bulk not delivered")
	}
	if c.FluidCompleted() != 0 {
		t.Fatalf("scavenger used the fluid path (%d)", c.FluidCompleted())
	}
}

func TestFluidImpairedPathFallsBack(t *testing.T) {
	// A path that is impaired before the send starts is ineligible:
	// the message goes via packets (where loss is simulated) and still
	// arrives via retransmission.
	p := fluidPair(t, simnet.FidelityFlow, simnet.LinkConfig{Rate: 100 * simnet.Mbps, Delay: time.Millisecond})
	p.link.A().Impair(simnet.Impairment{LossProb: 0.05, Seed: 42})
	delivered := false
	p.hb.Listen(80, func(c *Conn) {
		c.SetOnMessage(func(any, int) { delivered = true })
	})
	c := p.ha.Dial(p.hb.Node().Addr(), 80, Options{})
	c.SendMessage("bulk", 500_000)
	p.sched.Run()
	if !delivered {
		t.Fatal("bulk not delivered over lossy path")
	}
	if c.FluidCompleted() != 0 {
		t.Fatal("fluid path used despite impairment")
	}
}

func TestFluidMidFlightDemotion(t *testing.T) {
	// Impairing the path mid-transfer demotes the flow; the remaining
	// range is re-sent as packets and the message still arrives once.
	p := fluidPair(t, simnet.FidelityFlow, simnet.LinkConfig{Rate: 8 * simnet.Mbps, Delay: time.Millisecond})
	deliveries := 0
	p.hb.Listen(80, func(c *Conn) {
		c.SetOnMessage(func(any, int) { deliveries++ })
	})
	c := p.ha.Dial(p.hb.Node().Addr(), 80, Options{})
	c.SendMessage("bulk", 1_000_000) // ~1s fluid at 1e6 B/s
	p.sched.RunFor(300 * time.Millisecond)
	if c.FluidCompleted() != 0 || deliveries != 0 {
		t.Fatal("flow finished before the fault was injected")
	}
	p.link.A().Impair(simnet.Impairment{LossProb: 0.01, Seed: 7})
	p.sched.Run()
	if deliveries != 1 {
		t.Fatalf("deliveries = %d, want exactly 1", deliveries)
	}
	if c.FluidDemotions() != 1 {
		t.Fatalf("FluidDemotions = %d, want 1", c.FluidDemotions())
	}
	if c.FluidCompleted() != 0 {
		t.Fatal("demoted flow also counted as fluid-completed")
	}
}

func TestFluidCloseAfterBulk(t *testing.T) {
	// FIN sequencing: Close() queued behind a fluid message must only
	// fire after the flow completes, and both sides wind down cleanly.
	p := fluidPair(t, simnet.FidelityFlow, simnet.LinkConfig{Rate: 100 * simnet.Mbps, Delay: time.Millisecond})
	var closed bool
	p.hb.Listen(80, func(c *Conn) { c.SetOnMessage(func(any, int) {}) })
	c := p.ha.Dial(p.hb.Node().Addr(), 80, Options{})
	c.SetOnClose(func(err error) {
		if err != nil {
			t.Fatalf("close error: %v", err)
		}
		closed = true
	})
	c.SendMessage("bulk", 2_000_000)
	c.Close()
	p.sched.Run()
	if !closed {
		t.Fatal("connection never closed")
	}
	if c.FluidCompleted() != 1 {
		t.Fatalf("FluidCompleted = %d, want 1", c.FluidCompleted())
	}
}

func TestFluidBackToBackBulk(t *testing.T) {
	// Multiple queued fluid messages run one after another and deliver
	// in order.
	p := fluidPair(t, simnet.FidelityHybrid, simnet.LinkConfig{Rate: 100 * simnet.Mbps, Delay: time.Millisecond})
	var got []any
	p.hb.Listen(80, func(c *Conn) {
		c.SetOnMessage(func(meta any, _ int) { got = append(got, meta) })
	})
	c := p.ha.Dial(p.hb.Node().Addr(), 80, Options{})
	for i := 0; i < 5; i++ {
		c.SendMessage(i, 1_000_000)
	}
	p.sched.Run()
	if len(got) != 5 {
		t.Fatalf("delivered %d, want 5", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("order broken at %d: %v", i, got)
		}
	}
	if c.FluidCompleted() != 5 {
		t.Fatalf("FluidCompleted = %d, want 5", c.FluidCompleted())
	}
}

func TestFluidDeterminism(t *testing.T) {
	// Two identical hybrid runs produce identical delivery timelines.
	run := func() []time.Duration {
		p := fluidPair(t, simnet.FidelityHybrid, simnet.LinkConfig{Rate: 50 * simnet.Mbps, Delay: 2 * time.Millisecond})
		var times []time.Duration
		p.hb.Listen(80, func(c *Conn) {
			c.SetOnMessage(func(any, int) { times = append(times, p.sched.Now()) })
		})
		c := p.ha.Dial(p.hb.Node().Addr(), 80, Options{})
		for i := 0; i < 8; i++ {
			size := 5_000
			if i%2 == 0 {
				size = 2_000_000
			}
			c.SendMessage(i, size)
		}
		p.sched.Run()
		return times
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) != 8 {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery %d at %v vs %v", i, a[i], b[i])
		}
	}
}
