package transport

import "time"

// Fluid fast path: under flow or hybrid fidelity, bulk messages are
// carried by the simnet flow engine as analytic rate-shared flows
// instead of MSS-sized packet trains.
//
// Stream semantics are preserved exactly. A fluid-eligible message
// occupies its normal range of sequence space; the packet path sends
// everything before it, then the range is handed to the engine
// (startFluid) and sndNxt parks at its start. At the analytic
// completion time the bytes count as sent, sndNxt jumps to the range
// end, and after the path's propagation delay one macro SegDATA
// "notice" materializes at the destination node — delivered locally,
// since the payload already traversed the network as fluid. The
// receiver runs its ordinary processData/ACK machinery on the notice,
// so delivery callbacks, FIN sequencing, and cumulative ACKs are all
// driven by the same code as packet mode, and a lost ACK is repaired
// by the existing RTO (which resends the notice, deduplicated by the
// receiver's lastBound watermark).
//
// Congestion control is bypassed for fluid bytes — the engine's
// max-min fair share replaces it — so acked fluid spans are subtracted
// before cc.OnAck and from the in-flight window math. Only reno/cubic
// connections use the fast path: scavenger controllers (ledbat, lp)
// exist to yield to foreground packets, a behavior fair sharing would
// erase.
//
// If the engine demotes the flow (contention in hybrid mode,
// impairment/down/qdisc in any mode), the whole remaining range is
// re-queued for the packet path — re-sending from the range start is
// the documented approximation; the receiver has seen none of it.

// FluidCutover is the message size, in bytes, at which flow and hybrid
// fidelity promote a message to a fluid flow. Smaller messages —
// RPC-sized — keep exact packet behavior in every mode, which is what
// keeps latency metrics comparable across fidelities.
const FluidCutover = 4096

// fluidRange is one queued fluid-eligible message: the byte range it
// occupies in the send stream and its delivery metadata.
type fluidRange struct {
	seq, end uint64
	meta     any
}

// fluidSpan is a fluid-delivered range that the peer has not yet
// cumulatively acked. Spans gate cc crediting and window accounting,
// and carry enough to resend the delivery notice on RTO.
type fluidSpan struct {
	seq, end uint64
	meta     any
}

// FluidCompleted returns messages delivered via the fluid fast path.
func (c *Conn) FluidCompleted() uint64 { return c.fluidCompleted }

// FluidDemotions returns fluid flows demoted back to the packet path.
func (c *Conn) FluidDemotions() uint64 { return c.fluidDemotions }

// shouldFluid reports whether a message of the given size should ride
// the fluid fast path on this connection.
func (c *Conn) shouldFluid(size int) bool {
	if c.host.net.FlowEngine() == nil || size < FluidCutover {
		return false
	}
	switch c.cc.Name() {
	case "reno", "cubic":
	default:
		return false // scavenger CCs deliberately yield; keep them on packets
	}
	return true
}

// startFluid hands fluidQ[0] to the flow engine. The caller has already
// packet-sent every byte before the range (sndNxt == fluidQ[0].seq).
// Returns false if the path is unusable, in which case the range is
// popped and falls back to the packet path (its bound is still in
// pendBounds).
func (c *Conn) startFluid() bool {
	eng := c.host.net.FlowEngine()
	r := c.fluidQ[0]
	path, prop, ok := eng.ResolvePath(c.host.node, c.flow)
	if ok && !eng.PathEligible(path) {
		// Impaired, down, custom-qdisc, or backlogged hops need exact
		// packet behavior in every fidelity — loss and AQM do not exist
		// in the fluid model.
		ok = false
	}
	if !ok {
		c.fluidQ = c.fluidQ[1:]
		return false
	}
	// The bound rides the flow now; drop it from pendBounds so the
	// packet path cannot deliver it twice.
	if len(c.pendBounds) > 0 && c.pendBounds[0].End == r.end {
		c.pendBounds = c.pendBounds[1:]
	}
	if c.fluidDoneFn == nil {
		c.fluidDoneFn = c.onFluidComplete
		c.fluidDemoteFn = c.onFluidDemote
	}
	c.fluidProp = prop
	c.fluidActive = true
	c.fluidID = eng.Start(path, int64(r.end-r.seq), c.fluidDoneFn, c.fluidDemoteFn)
	return true
}

// onFluidComplete runs at the analytic completion time: the last byte
// has left the source. The bytes count as sent, and the delivery
// notice materializes at the destination after the path's one-way
// propagation delay.
func (c *Conn) onFluidComplete() {
	if c.state != stateEstablished || !c.fluidActive {
		return
	}
	r := c.fluidQ[0]
	c.fluidQ = c.fluidQ[1:]
	c.fluidActive = false
	c.fluidID = 0
	c.fluidCompleted++
	c.bytesSent += r.end - r.seq
	c.sndNxt = r.end
	c.fluidSpans = append(c.fluidSpans, fluidSpan{seq: r.seq, end: r.end, meta: r.meta})
	completed := c.host.sched.Now()
	c.host.sched.After(c.fluidProp, func() {
		c.injectFluidNotice(r.seq, r.end, r.meta, completed)
	})
	c.armRTO()
	c.trySend()
}

// onFluidDemote runs (deferred through the scheduler by the engine)
// when the active flow is demoted to packet fidelity. The remaining
// range goes back to the packet path from its start.
func (c *Conn) onFluidDemote() {
	if c.state != stateEstablished || !c.fluidActive || len(c.fluidQ) == 0 {
		return
	}
	c.fluidActive = false
	c.fluidID = 0
	c.fluidDemotions++
	r := c.fluidQ[0]
	c.fluidQ = c.fluidQ[1:]
	// Restore the message bound at the front of pendBounds (it precedes
	// every bound still there) so sendSegment re-attaches it.
	c.pendBounds = append(c.pendBounds, Bound{})
	copy(c.pendBounds[1:], c.pendBounds)
	c.pendBounds[0] = Bound{End: r.end, Meta: r.meta}
	c.trySend()
}

// injectFluidNotice delivers the macro segment for a completed fluid
// range directly at the destination node: the payload already crossed
// the network as fluid, so the notice takes no link resources and
// cannot be lost. completedAt becomes TSVal so the receiver's ACK
// yields a true path-RTT sample; pass 0 (RTO resends) to suppress the
// sample, Karn-style.
func (c *Conn) injectFluidNotice(seq, end uint64, meta any, completedAt time.Duration) {
	if c.state == stateClosed {
		return
	}
	dst := c.host.net.NodeByAddr(c.flow.Dst)
	if dst == nil {
		return
	}
	s := c.host.allocSeg()
	s.Kind = SegDATA
	s.Wnd = rcvWindow
	s.TSVal = completedAt
	s.TSEcr = c.lastTSVal
	s.Seq = seq
	s.Len = int(end - seq)
	s.Bounds = append(s.Bounds[:0], Bound{End: end, Meta: meta})
	p := c.host.net.AllocPacket()
	p.Flow = c.flow
	p.Size = ctrlSize // the data went fluid; this is only the delivery notice
	p.Mark = c.opts.Mark
	p.Payload = s //meshvet:allow poolescape the segment rides in the packet; the receiving host frees it after handling
	dst.Inject(p)
}

// resendFluidNotice re-announces the oldest unacked fluid span — the
// RTO path for a lost ACK of a fluid delivery. TSVal 0 suppresses RTT
// sampling from the retransmit.
func (c *Conn) resendFluidNotice() {
	if len(c.fluidSpans) == 0 {
		return
	}
	sp := c.fluidSpans[0]
	c.injectFluidNotice(sp.seq, sp.end, sp.meta, 0)
}

// ackFluidSpans consumes fluid spans cumulatively acked up to upTo and
// returns how many fluid bytes that covered — bytes the congestion
// controller must not be credited with.
func (c *Conn) ackFluidSpans(upTo uint64) int {
	if len(c.fluidSpans) == 0 {
		return 0
	}
	n := 0
	keep := c.fluidSpans[:0]
	for _, sp := range c.fluidSpans {
		switch {
		case sp.end <= upTo:
			n += int(sp.end - sp.seq)
		case sp.seq < upTo:
			n += int(upTo - sp.seq)
			sp.seq = upTo
			keep = append(keep, sp)
		default:
			keep = append(keep, sp)
		}
	}
	c.fluidSpans = keep
	return n
}

// fluidOutstanding returns fluid-delivered bytes not yet acked. They
// are excluded from packet window math: the engine's fair share, not
// cwnd, governed them.
func (c *Conn) fluidOutstanding() uint64 {
	var n uint64
	for _, sp := range c.fluidSpans {
		n += sp.end - sp.seq
	}
	return n
}

// cancelFluid releases the active flow at teardown.
func (c *Conn) cancelFluid() {
	if !c.fluidActive {
		return
	}
	if eng := c.host.net.FlowEngine(); eng != nil {
		eng.Cancel(c.fluidID)
	}
	c.fluidActive = false
	c.fluidID = 0
}
