package transport

import (
	"testing"
	"time"

	"meshlayer/internal/simnet"
)

// pair wires two hosts over one configurable link.
type pair struct {
	sched  *simnet.Scheduler
	net    *simnet.Network
	ha, hb *Host
	link   *simnet.Link
}

func newPair(t *testing.T, cfg simnet.LinkConfig) *pair {
	t.Helper()
	s := simnet.NewScheduler()
	n := simnet.NewNetwork(s)
	a := n.AddNode("a")
	b := n.AddNode("b")
	l := n.Connect(a, b, cfg)
	return &pair{sched: s, net: n, ha: NewHost(a), hb: NewHost(b), link: l}
}

func TestHandshakeAndSingleMessage(t *testing.T) {
	p := newPair(t, simnet.LinkConfig{Rate: 100 * simnet.Mbps, Delay: time.Millisecond})
	var got any
	var gotSize int
	if _, err := p.hb.Listen(80, func(c *Conn) {
		c.SetOnMessage(func(meta any, size int) { got, gotSize = meta, size })
	}); err != nil {
		t.Fatal(err)
	}
	c := p.ha.Dial(p.hb.Node().Addr(), 80, Options{})
	established := false
	c.SetOnEstablished(func() { established = true })
	if err := c.SendMessage("hello", 5000); err != nil {
		t.Fatal(err)
	}
	p.sched.Run()
	if !established {
		t.Fatal("handshake never completed")
	}
	if got != "hello" || gotSize != 5000 {
		t.Fatalf("got %v/%d, want hello/5000", got, gotSize)
	}
}

func TestManyMessagesInOrder(t *testing.T) {
	p := newPair(t, simnet.LinkConfig{Rate: 100 * simnet.Mbps, Delay: 500 * time.Microsecond})
	var got []int
	p.hb.Listen(80, func(c *Conn) {
		c.SetOnMessage(func(meta any, _ int) { got = append(got, meta.(int)) })
	})
	c := p.ha.Dial(p.hb.Node().Addr(), 80, Options{})
	for i := 0; i < 50; i++ {
		c.SendMessage(i, 2000+i)
	}
	p.sched.Run()
	if len(got) != 50 {
		t.Fatalf("delivered %d messages, want 50", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("message order broken at %d: %v", i, v)
		}
	}
}

func TestBidirectional(t *testing.T) {
	p := newPair(t, simnet.LinkConfig{Rate: 100 * simnet.Mbps, Delay: time.Millisecond})
	var serverGot, clientGot any
	p.hb.Listen(80, func(c *Conn) {
		c.SetOnMessage(func(meta any, size int) {
			serverGot = meta
			c.SendMessage("response", 100000) // respond on same conn
		})
	})
	c := p.ha.Dial(p.hb.Node().Addr(), 80, Options{})
	c.SetOnMessage(func(meta any, size int) { clientGot = meta })
	c.SendMessage("request", 300)
	p.sched.Run()
	if serverGot != "request" || clientGot != "response" {
		t.Fatalf("server=%v client=%v", serverGot, clientGot)
	}
}

func TestLargeTransferThroughput(t *testing.T) {
	// 10 MB over a 100 Mbps, 1 ms link should take ~0.85 s; allow
	// slow-start and header overhead slack.
	p := newPair(t, simnet.LinkConfig{Rate: 100 * simnet.Mbps, Delay: time.Millisecond})
	done := time.Duration(0)
	p.hb.Listen(80, func(c *Conn) {
		c.SetOnMessage(func(any, int) { done = p.sched.Now() })
	})
	c := p.ha.Dial(p.hb.Node().Addr(), 80, Options{})
	c.SendMessage("blob", 10<<20)
	p.sched.RunUntil(30 * time.Second)
	if done == 0 {
		t.Fatal("transfer never completed")
	}
	if done > 2*time.Second {
		t.Fatalf("10MB took %v, want < 2s on 100Mbps", done)
	}
}

func TestSmallTransferNoLoss(t *testing.T) {
	// 1 MB fits within the default queue even at slow-start overshoot:
	// a clean link must see zero retransmissions.
	p := newPair(t, simnet.LinkConfig{Rate: 100 * simnet.Mbps, Delay: time.Millisecond})
	done := time.Duration(0)
	p.hb.Listen(80, func(c *Conn) {
		c.SetOnMessage(func(any, int) { done = p.sched.Now() })
	})
	c := p.ha.Dial(p.hb.Node().Addr(), 80, Options{})
	c.SendMessage("blob", 1<<20)
	p.sched.RunUntil(10 * time.Second)
	if done == 0 {
		t.Fatal("transfer never completed")
	}
	if c.Retransmits() != 0 {
		t.Fatalf("retransmits on a clean, uncongested link: %d", c.Retransmits())
	}
	if c.Timeouts() != 0 {
		t.Fatalf("timeouts on a clean link: %d", c.Timeouts())
	}
}

func TestLossRecoveryViaQueueOverflow(t *testing.T) {
	// A tiny queue forces drops; the transfer must still complete.
	p := newPair(t, simnet.LinkConfig{Rate: 10 * simnet.Mbps, Delay: 2 * time.Millisecond, QueueBytes: 8 * simnet.MTU})
	var done time.Duration
	p.hb.Listen(80, func(c *Conn) {
		c.SetOnMessage(func(any, int) { done = p.sched.Now() })
	})
	c := p.ha.Dial(p.hb.Node().Addr(), 80, Options{})
	c.SendMessage("blob", 2<<20)
	p.sched.RunUntil(60 * time.Second)
	if done == 0 {
		t.Fatal("transfer never completed under loss")
	}
	if c.Retransmits() == 0 {
		t.Fatal("expected drops and retransmits with an 8-MTU queue")
	}
}

func TestCloseHandshake(t *testing.T) {
	p := newPair(t, simnet.LinkConfig{Rate: 100 * simnet.Mbps, Delay: time.Millisecond})
	var serverClosed, clientClosed bool
	var serverErr, clientErr error = nil, nil
	p.hb.Listen(80, func(c *Conn) {
		c.SetOnMessage(func(any, int) {})
		c.SetOnClose(func(err error) { serverClosed, serverErr = true, err })
	})
	c := p.ha.Dial(p.hb.Node().Addr(), 80, Options{})
	c.SetOnClose(func(err error) { clientClosed, clientErr = true, err })
	c.SendMessage("bye", 1000)
	c.Close()
	p.sched.Run()
	if !clientClosed || clientErr != nil {
		t.Fatalf("client closed=%v err=%v", clientClosed, clientErr)
	}
	if !serverClosed || serverErr != nil {
		t.Fatalf("server closed=%v err=%v", serverClosed, serverErr)
	}
	if p.ha.ConnCount() != 0 || p.hb.ConnCount() != 0 {
		t.Fatalf("conns leaked: a=%d b=%d", p.ha.ConnCount(), p.hb.ConnCount())
	}
}

func TestSendAfterCloseFails(t *testing.T) {
	p := newPair(t, simnet.LinkConfig{Rate: simnet.Gbps})
	p.hb.Listen(80, func(c *Conn) {})
	c := p.ha.Dial(p.hb.Node().Addr(), 80, Options{})
	c.Close()
	if err := c.SendMessage("x", 10); err == nil {
		t.Fatal("send after Close succeeded")
	}
}

func TestConnectTimeout(t *testing.T) {
	// Dial a node with no listener on an isolated network island: SYN
	// retries exhaust and OnClose fires with ErrConnectTimeout.
	s := simnet.NewScheduler()
	n := simnet.NewNetwork(s)
	a := n.AddNode("a")
	n.AddNode("island")
	ha := NewHost(a)
	var got error
	c := ha.Dial(n.Node("island").Addr(), 80, Options{})
	c.SetOnClose(func(err error) { got = err })
	s.RunUntil(2 * time.Minute)
	if got != ErrConnectTimeout {
		t.Fatalf("err = %v, want ErrConnectTimeout", got)
	}
}

func TestAbort(t *testing.T) {
	p := newPair(t, simnet.LinkConfig{Rate: simnet.Gbps})
	p.hb.Listen(80, func(c *Conn) {})
	c := p.ha.Dial(p.hb.Node().Addr(), 80, Options{})
	var got error
	c.SetOnClose(func(err error) { got = err })
	p.sched.RunFor(time.Second)
	c.Abort()
	if got != ErrReset {
		t.Fatalf("err = %v, want ErrReset", got)
	}
	if p.ha.ConnCount() != 0 {
		t.Fatal("aborted conn still registered")
	}
}

func TestMarkStampedOnPackets(t *testing.T) {
	p := newPair(t, simnet.LinkConfig{Rate: simnet.Gbps})
	marks := map[simnet.Mark]int{}
	// Snoop at delivery time on node b by wrapping its deliver hook
	// after the transport host installed its own.
	orig := p.hb
	_ = orig
	p.hb.Listen(80, func(c *Conn) { c.SetOnMessage(func(any, int) {}) })
	// Re-wrap node delivery to count marks then forward.
	node := p.hb.Node()
	inner := p.hb
	node.SetDeliver(func(pkt *simnet.Packet) {
		marks[pkt.Mark]++
		inner.deliver(pkt)
	})
	c := p.ha.Dial(node.Addr(), 80, Options{Mark: simnet.MarkHigh})
	c.SendMessage("x", 50000)
	p.sched.Run()
	if marks[simnet.MarkHigh] == 0 {
		t.Fatal("no packets carried the high mark")
	}
	if marks[simnet.MarkDefault] > 0 {
		t.Fatal("some data packets lost their mark")
	}
}

func TestSetMarkMidStream(t *testing.T) {
	p := newPair(t, simnet.LinkConfig{Rate: 10 * simnet.Mbps})
	seen := map[simnet.Mark]bool{}
	p.hb.Listen(80, func(c *Conn) { c.SetOnMessage(func(any, int) {}) })
	node := p.hb.Node()
	inner := p.hb
	node.SetDeliver(func(pkt *simnet.Packet) {
		seen[pkt.Mark] = true
		inner.deliver(pkt)
	})
	c := p.ha.Dial(node.Addr(), 80, Options{Mark: simnet.MarkLow})
	c.SendMessage("a", 100000)
	p.sched.RunFor(50 * time.Millisecond)
	c.SetMark(simnet.MarkHigh)
	c.SendMessage("b", 100000)
	p.sched.Run()
	if !seen[simnet.MarkLow] || !seen[simnet.MarkHigh] {
		t.Fatalf("marks seen: %v, want both low and high", seen)
	}
}

func TestRTTEstimate(t *testing.T) {
	p := newPair(t, simnet.LinkConfig{Rate: simnet.Gbps, Delay: 5 * time.Millisecond})
	p.hb.Listen(80, func(c *Conn) { c.SetOnMessage(func(any, int) {}) })
	c := p.ha.Dial(p.hb.Node().Addr(), 80, Options{})
	c.SendMessage("x", 100000)
	p.sched.Run()
	// RTT = 2 * 5ms + serialization (~12us/MTU) ≈ 10ms.
	if c.SRTT() < 10*time.Millisecond || c.SRTT() > 12*time.Millisecond {
		t.Fatalf("SRTT = %v, want ~10ms", c.SRTT())
	}
	if c.MinRTT() < 10*time.Millisecond || c.MinRTT() > 11*time.Millisecond {
		t.Fatalf("MinRTT = %v, want ~10ms", c.MinRTT())
	}
}

func TestScavengerYieldsToBestEffort(t *testing.T) {
	// Two flows share a 10 Mbps bottleneck: one Reno, one LEDBAT.
	// The scavenger should take a small share while Reno is active.
	s := simnet.NewScheduler()
	n := simnet.NewNetwork(s)
	src1 := n.AddNode("src1")
	src2 := n.AddNode("src2")
	sw := n.AddNode("sw")
	dst := n.AddNode("dst")
	n.Connect(src1, sw, simnet.LinkConfig{Rate: simnet.Gbps, Delay: time.Millisecond})
	n.Connect(src2, sw, simnet.LinkConfig{Rate: simnet.Gbps, Delay: time.Millisecond})
	n.Connect(sw, dst, simnet.LinkConfig{Rate: 10 * simnet.Mbps, Delay: time.Millisecond, QueueBytes: 100 * simnet.MTU})

	h1, h2, hd := NewHost(src1), NewHost(src2), NewHost(dst)
	var renoBytes, ledbatBytes uint64
	hd.Listen(80, func(c *Conn) { c.SetOnMessage(func(any, int) {}) })

	reno := h1.Dial(dst.Addr(), 80, Options{CC: "reno"})
	scav := h2.Dial(dst.Addr(), 80, Options{CC: "ledbat"})
	reno.SendMessage("r", 100<<20) // far more than the link can move
	scav.SendMessage("s", 100<<20)
	s.RunUntil(20 * time.Second)
	renoBytes = reno.BytesAcked()
	ledbatBytes = scav.BytesAcked()

	if renoBytes == 0 || ledbatBytes == 0 {
		t.Fatalf("reno=%d ledbat=%d; both must progress", renoBytes, ledbatBytes)
	}
	share := float64(ledbatBytes) / float64(renoBytes+ledbatBytes)
	if share > 0.25 {
		t.Fatalf("scavenger share = %.2f, want < 0.25 (should yield)", share)
	}
}

func TestScavengerUsesIdleCapacity(t *testing.T) {
	// Alone on the link, LEDBAT should reach near line rate.
	p := newPair(t, simnet.LinkConfig{Rate: 10 * simnet.Mbps, Delay: time.Millisecond, QueueBytes: 100 * simnet.MTU})
	var done time.Duration
	p.hb.Listen(80, func(c *Conn) { c.SetOnMessage(func(any, int) { done = p.sched.Now() }) })
	c := p.ha.Dial(p.hb.Node().Addr(), 80, Options{CC: "ledbat"})
	c.SendMessage("blob", 5<<20) // 5 MB at 10 Mbps ≈ 4.2 s
	p.sched.RunUntil(60 * time.Second)
	if done == 0 {
		t.Fatal("transfer never completed")
	}
	if done > 8*time.Second {
		t.Fatalf("lone scavenger took %v, want < 8s (near line rate)", done)
	}
}

func TestListenRejectsDuplicatePort(t *testing.T) {
	p := newPair(t, simnet.LinkConfig{Rate: simnet.Gbps})
	if _, err := p.hb.Listen(80, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := p.hb.Listen(80, nil); err == nil {
		t.Fatal("duplicate Listen succeeded")
	}
}

func TestListenerClose(t *testing.T) {
	p := newPair(t, simnet.LinkConfig{Rate: simnet.Gbps})
	accepted := 0
	l, _ := p.hb.Listen(80, func(c *Conn) { accepted++ })
	c1 := p.ha.Dial(p.hb.Node().Addr(), 80, Options{})
	p.sched.RunFor(time.Second)
	l.Close()
	c2 := p.ha.Dial(p.hb.Node().Addr(), 80, Options{})
	var err2 error
	c2.SetOnClose(func(err error) { err2 = err })
	p.sched.RunUntil(3 * time.Minute)
	_ = c1
	if accepted != 1 {
		t.Fatalf("accepted = %d, want 1", accepted)
	}
	if err2 != ErrConnectTimeout {
		t.Fatalf("dial after listener close: err=%v, want timeout", err2)
	}
}

func TestControllersAdvanceWindow(t *testing.T) {
	for _, name := range []string{"reno", "cubic", "ledbat", "lp"} {
		s := simnet.NewScheduler()
		cc := NewController(name, s.Now)
		w0 := cc.Window()
		for i := 0; i < 100; i++ {
			cc.OnAck(MSS, 10*time.Millisecond)
		}
		if cc.Window() <= w0 {
			t.Fatalf("%s window did not grow: %d -> %d", name, w0, cc.Window())
		}
		grown := cc.Window()
		cc.OnLoss()
		if cc.Window() >= grown {
			t.Fatalf("%s window did not shrink on loss", name)
		}
		cc.OnTimeout()
		if cc.Window() > grown/2 {
			t.Fatalf("%s window did not collapse on timeout", name)
		}
	}
}

func TestUnknownControllerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown CC name did not panic")
		}
	}()
	NewController("bbr9000", nil)
}

func TestIsScavenger(t *testing.T) {
	if !IsScavenger("ledbat") || !IsScavenger("lp") {
		t.Fatal("scavengers not recognized")
	}
	if IsScavenger("reno") || IsScavenger("cubic") || IsScavenger("") {
		t.Fatal("best-effort misclassified as scavenger")
	}
}
