package transport

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"meshlayer/internal/simnet"
)

// Options configure a connection at Dial time.
type Options struct {
	// CC names the congestion controller: "reno" (default), "cubic",
	// "ledbat", "lp".
	CC string
	// Mark is stamped on every outgoing packet; TC filters match it.
	Mark simnet.Mark
	// MinRTO lower-bounds the retransmission timeout. Zero selects
	// DefaultMinRTO.
	MinRTO time.Duration
}

// DefaultMinRTO mirrors the Linux default minimum RTO.
const DefaultMinRTO = 200 * time.Millisecond

// maxConsecRTOs bounds back-to-back retransmission timeouts with no
// forward progress before the connection gives up (Linux
// tcp_retries2, scaled down for simulation): a peer that stays
// unreachable kills the connection instead of retransmitting forever.
// High enough that chains of unlucky losses on a merely-lossy link
// essentially never trip it.
const maxConsecRTOs = 12

// rcvWindow is the advertised receive window. Receivers consume
// instantly in this model, so flow control never binds in practice.
const rcvWindow = 8 << 20

type connState uint8

const (
	stateSynSent connState = iota + 1
	stateEstablished
	stateClosed
)

// ErrConnectTimeout is passed to OnClose when the handshake fails.
var ErrConnectTimeout = errors.New("transport: connect timed out")

// ErrReset is passed to OnClose when the connection is torn down
// abruptly by Abort.
var ErrReset = errors.New("transport: connection reset")

// ErrRetransmitLimit is passed to OnClose when maxConsecRTOs
// retransmission timeouts elapse without the peer acking anything.
var ErrRetransmitLimit = errors.New("transport: retransmission limit exceeded")

type segInfo struct {
	seq    uint64
	length int
	bounds []Bound
	rtxed  bool // retransmitted since the last RTO
	sacked bool // covered by a received SACK block
}

// Conn is one endpoint of a reliable message stream. All methods must
// be called from scheduler context (the simulation is single-threaded).
type Conn struct {
	host  *Host
	flow  simnet.FlowKey // local perspective: Src is this host
	opts  Options
	state connState
	cc    Controller

	// Callbacks. Set them before data flows.
	onMessage      func(meta any, size int)
	onEstablished  func()
	onClose        func(err error)
	closeListeners []func(err error)

	// Send side.
	sndUna, sndNxt uint64
	sendEnd        uint64
	pendBounds     []Bound
	segs           []segInfo
	peerWnd        int
	dupAcks        int
	recovering     bool
	recoverPt      uint64
	finQueued      bool
	finSent        bool

	// Receive side.
	rcvNxt     uint64
	ooo        []oooSeg
	recvBounds []Bound
	lastBound  uint64
	peerFinSeq uint64
	peerFin    bool
	lastTSVal  time.Duration

	// RTT estimation / RTO.
	srtt, rttvar  time.Duration
	rto           time.Duration
	minRTT        time.Duration
	lastRTTSample time.Duration
	rtoTimer      simnet.Timer
	synTimer      simnet.Timer
	synTries      int

	// Consecutive RTOs with no ACK progress; the connection dies at
	// maxConsecRTOs.
	consecRTOs int

	// Fluid fast path (flow/hybrid fidelity; see fluid.go).
	fluidQ         []fluidRange  // queued fluid ranges, ascending seq
	fluidActive    bool          // fluidQ[0] is in the engine right now
	fluidID        simnet.FlowID // engine handle for the active flow
	fluidSpans     []fluidSpan   // fluid-delivered, not yet acked
	fluidProp      time.Duration // one-way prop delay of the active path
	fluidDoneFn    func()        // bound callbacks, allocated once
	fluidDemoteFn  func()
	fluidCompleted uint64 // messages delivered via the fast path
	fluidDemotions uint64 // flows demoted back to packets

	// Stats.
	retransmits uint64
	timeouts    uint64
	bytesSent   uint64
	bytesAcked  uint64
	msgsIn      uint64
	msgsOut     uint64
}

type oooSeg struct {
	seq uint64
	end uint64
}

// Flow returns the connection's flow key from the local perspective.
func (c *Conn) Flow() simnet.FlowKey { return c.flow }

// SetOnMessage registers the message-delivery callback.
func (c *Conn) SetOnMessage(fn func(meta any, size int)) { c.onMessage = fn }

// SetOnEstablished registers the handshake-completion callback
// (client side only; server conns are established at accept).
func (c *Conn) SetOnEstablished(fn func()) { c.onEstablished = fn }

// SetOnClose registers the primary teardown callback (replacing any
// previous one).
func (c *Conn) SetOnClose(fn func(err error)) { c.onClose = fn }

// AddCloseListener registers an additional teardown observer that runs
// after the primary callback. Observers cannot be removed; they are
// dropped with the connection.
func (c *Conn) AddCloseListener(fn func(err error)) {
	c.closeListeners = append(c.closeListeners, fn)
}

// SetMark changes the packet mark for all subsequent transmissions —
// the hook the cross-layer controller uses to re-prioritize a pooled
// connection per request.
func (c *Conn) SetMark(m simnet.Mark) { c.opts.Mark = m }

// Mark returns the current packet mark.
func (c *Conn) Mark() simnet.Mark { return c.opts.Mark }

// CCName returns the congestion controller's name.
func (c *Conn) CCName() string { return c.cc.Name() }

// SetCongestionControl swaps the congestion controller (fresh state) —
// used by the cross-layer controller to move latency-insensitive
// transfers onto a scavenger protocol without touching the application.
func (c *Conn) SetCongestionControl(name string) {
	if name == c.cc.Name() {
		return
	}
	c.cc = NewController(name, c.host.sched.Now)
}

// Established reports whether the handshake has completed.
func (c *Conn) Established() bool { return c.state == stateEstablished }

// Closed reports whether the connection is fully closed.
func (c *Conn) Closed() bool { return c.state == stateClosed }

// SRTT returns the smoothed RTT estimate (zero before the first sample).
func (c *Conn) SRTT() time.Duration { return c.srtt }

// MinRTT returns the lowest RTT sample seen.
func (c *Conn) MinRTT() time.Duration { return c.minRTT }

// Retransmits returns the count of retransmitted segments.
func (c *Conn) Retransmits() uint64 { return c.retransmits }

// Timeouts returns the count of RTO expirations.
func (c *Conn) Timeouts() uint64 { return c.timeouts }

// BytesAcked returns cumulatively acknowledged payload bytes. An
// active fluid flow contributes its analytic progress: its bytes are
// governed by the engine's fair share rather than acks, and counting
// them only at the final delivery notice would make the goodput of a
// long-lived bulk transfer read as zero under flow or hybrid fidelity.
// Progress of a flow that is later demoted is re-earned by the packet
// path, so the value can briefly regress across a demotion.
func (c *Conn) BytesAcked() uint64 {
	n := c.bytesAcked
	if c.fluidActive && len(c.fluidQ) > 0 {
		if eng := c.host.net.FlowEngine(); eng != nil {
			if rem, ok := eng.Remaining(c.fluidID); ok {
				if size := float64(c.fluidQ[0].end - c.fluidQ[0].seq); rem < size {
					n += uint64(size - rem)
				}
			}
		}
	}
	return n
}

// InFlight returns unacknowledged bytes.
func (c *Conn) InFlight() int { return int(c.sndNxt - c.sndUna) }

// Window returns the current effective send window in bytes.
func (c *Conn) Window() int { return min(c.cc.Window(), c.peerWnd) }

// SendMessage queues a message of size wire bytes; the peer's OnMessage
// fires with meta when the final byte arrives in order. Sending on a
// closed connection is an error.
func (c *Conn) SendMessage(meta any, size int) error {
	if c.state == stateClosed {
		return fmt.Errorf("transport: send on closed connection %v", c.flow)
	}
	if c.finQueued {
		return fmt.Errorf("transport: send after close on %v", c.flow)
	}
	if size <= 0 {
		size = 1 // a message occupies at least one byte of stream space
	}
	c.sendEnd += uint64(size)
	c.pendBounds = append(c.pendBounds, Bound{End: c.sendEnd, Meta: meta})
	c.msgsOut++
	if c.shouldFluid(size) {
		c.fluidQ = append(c.fluidQ, fluidRange{seq: c.sendEnd - uint64(size), end: c.sendEnd, meta: meta})
	}
	if c.state == stateEstablished {
		c.trySend()
	}
	return nil
}

// Close queues a FIN after all pending data. Delivery callbacks on the
// peer still fire for data ahead of the FIN.
func (c *Conn) Close() {
	if c.state == stateClosed || c.finQueued {
		return
	}
	c.finQueued = true
	if c.state == stateEstablished {
		c.trySend()
	}
}

// Abort tears the connection down immediately without a handshake.
func (c *Conn) Abort() {
	if c.state == stateClosed {
		return
	}
	c.teardown(ErrReset)
}

func (c *Conn) teardown(err error) {
	c.state = stateClosed
	c.cancelFluid()
	c.rtoTimer.Cancel()
	c.synTimer.Cancel()
	c.host.removeConn(c)
	if c.onClose != nil {
		fn := c.onClose
		c.onClose = nil
		fn(err)
	}
	for _, fn := range c.closeListeners {
		fn(err)
	}
	c.closeListeners = nil
}

// --- sending ---

// seg allocates a pooled segment pre-filled with the fields every
// outgoing segment carries: the advertised window and the timestamp
// pair (TSVal now, TSEcr echoing the peer's last TSVal). Callers
// overwrite TSEcr where the echo must come from a specific segment.
func (c *Conn) seg(kind SegKind) *Segment {
	s := c.host.allocSeg()
	s.Kind = kind
	s.Wnd = rcvWindow
	s.TSVal = c.host.sched.Now()
	s.TSEcr = c.lastTSVal
	return s
}

func (c *Conn) emit(seg *Segment, payloadBytes int) {
	p := c.host.net.AllocPacket()
	p.Flow = c.flow
	p.Size = simnet.HeaderBytes + payloadBytes
	p.Mark = c.opts.Mark
	p.Payload = seg //meshvet:allow poolescape the segment rides in the packet; the receiving host frees it after handling
	if seg.Kind != SegDATA && seg.Kind != SegFIN {
		p.Size = ctrlSize
	}
	c.host.node.Inject(p)
}

func (c *Conn) trySend() {
	if c.state != stateEstablished {
		return
	}
	for {
		// Packet-send up to the next fluid range (or everything, when
		// none is queued — the packet-mode hot path, byte-identical to
		// the historical loop).
		limit := c.sendEnd
		if len(c.fluidQ) > 0 {
			limit = c.fluidQ[0].seq
		}
		c.sendWindow(limit)
		if len(c.fluidQ) == 0 || c.fluidActive || c.sndNxt != c.fluidQ[0].seq {
			break
		}
		if c.startFluid() {
			break
		}
		// The range fell back to the packet path; re-derive the limit
		// and keep sending.
	}
	c.maybeSendFIN()
}

// sendWindow emits MSS-sized segments of [sndNxt, limit) as the
// congestion and peer windows allow.
func (c *Conn) sendWindow(limit uint64) {
	wnd := uint64(c.Window())
	for c.sndNxt < limit {
		inFlight := c.sndNxt - c.sndUna - c.fluidOutstanding()
		if inFlight >= wnd {
			break
		}
		n := uint64(MSS)
		if avail := limit - c.sndNxt; avail < n {
			n = avail
		}
		if wnd-inFlight < n {
			// Avoid silly-window syndrome: never chop a full segment
			// to fit a fractional window opening; wait for more ACKs.
			break
		}
		c.sendSegment(c.sndNxt, int(n))
		c.sndNxt += n
	}
}

func (c *Conn) sendSegment(seq uint64, length int) {
	end := seq + uint64(length)
	var bounds []Bound
	for _, b := range c.pendBounds {
		if b.End > seq && b.End <= end {
			bounds = append(bounds, b)
		}
	}
	// Prune pending bounds fully covered by transmitted data; keep them
	// until sent at least once — retransmits read from segs.
	for len(c.pendBounds) > 0 && c.pendBounds[0].End <= end {
		c.pendBounds = c.pendBounds[1:]
	}
	c.segs = append(c.segs, segInfo{seq: seq, length: length, bounds: bounds})
	c.bytesSent += uint64(length)
	s := c.seg(SegDATA)
	s.Seq = seq
	s.Len = length
	s.Bounds = bounds
	c.emit(s, length)
	c.armRTO()
}

func (c *Conn) maybeSendFIN() {
	if !c.finQueued || c.finSent || c.sndNxt != c.sendEnd {
		return
	}
	if c.sndNxt-c.sndUna-c.fluidOutstanding() >= uint64(c.Window()) {
		return
	}
	c.finSent = true
	finSeq := c.sndNxt
	c.sendEnd++ // FIN occupies one sequence byte
	c.sndNxt++
	c.segs = append(c.segs, segInfo{seq: finSeq, length: 1})
	s := c.seg(SegFIN)
	s.Seq = finSeq
	s.Len = 1
	c.emit(s, 0)
	c.armRTO()
}

func (c *Conn) retransmitSeg(s *segInfo) {
	c.retransmits++
	s.rtxed = true
	kind := SegDATA
	payload := s.length
	if c.finSent && s.seq == c.sendEnd-1 {
		kind = SegFIN
		payload = 0
	}
	rs := c.seg(kind)
	rs.Seq = s.seq
	rs.Len = s.length
	rs.Bounds = s.bounds
	c.emit(rs, payload)
}

func (c *Conn) retransmitFirst() {
	if len(c.segs) == 0 {
		return
	}
	c.retransmitSeg(&c.segs[0])
}

// rtxBurst bounds loss-repair retransmissions per incoming ACK.
const rtxBurst = 4

// sackRetransmit repairs holes signalled by SACK: segments below the
// highest sacked byte that are neither sacked nor already repaired are
// presumed lost (RFC 6675 spirit).
func (c *Conn) sackRetransmit() {
	var highest uint64
	for i := range c.segs {
		if c.segs[i].sacked {
			if end := c.segs[i].seq + uint64(c.segs[i].length); end > highest {
				highest = end
			}
		}
	}
	if highest == 0 {
		return
	}
	sent := 0
	for i := range c.segs {
		s := &c.segs[i]
		if s.seq >= highest {
			break
		}
		if s.sacked || s.rtxed {
			continue
		}
		c.retransmitSeg(s)
		sent++
		if sent >= rtxBurst {
			return
		}
	}
}

func (c *Conn) applySacks(sacks []SackBlock) {
	if len(sacks) == 0 {
		return
	}
	for i := range c.segs {
		s := &c.segs[i]
		if s.sacked {
			continue
		}
		end := s.seq + uint64(s.length)
		for _, b := range sacks {
			if s.seq >= b.Start && end <= b.End {
				s.sacked = true
				break
			}
		}
	}
}

// --- RTO ---

func (c *Conn) minRTO() time.Duration {
	if c.opts.MinRTO > 0 {
		return c.opts.MinRTO
	}
	return DefaultMinRTO
}

func (c *Conn) currentRTO() time.Duration {
	if c.rto == 0 {
		return max(c.minRTO(), time.Second)
	}
	return c.rto
}

func (c *Conn) armRTO() {
	c.rtoTimer.Cancel()
	c.rtoTimer = c.host.sched.After(c.currentRTO(), c.onRTO)
}

func (c *Conn) disarmRTO() {
	c.rtoTimer.Cancel()
	c.rtoTimer = simnet.Timer{}
}

func (c *Conn) onRTO() {
	if c.state != stateEstablished || c.sndUna == c.sndNxt {
		return
	}
	c.timeouts++
	c.consecRTOs++
	if c.consecRTOs >= maxConsecRTOs {
		c.teardown(ErrRetransmitLimit)
		return
	}
	if len(c.segs) == 0 && len(c.fluidSpans) > 0 {
		// Only fluid-delivered bytes are unacked: the delivery notice's
		// ACK was lost. Re-announce it — the receiver deduplicates via
		// its lastBound watermark — and leave cc alone: fluid bytes were
		// never under its control.
		c.rto = min(c.currentRTO()*2, 60*time.Second)
		c.resendFluidNotice()
		c.armRTO()
		return
	}
	c.cc.OnTimeout()
	c.dupAcks = 0
	// Stay in loss recovery until everything outstanding at the
	// timeout is acknowledged, so partial ACKs keep driving repairs.
	c.recovering = true
	c.recoverPt = c.sndNxt
	// Everything outstanding may be retransmitted again.
	for i := range c.segs {
		c.segs[i].rtxed = false
	}
	c.rto = min(c.currentRTO()*2, 60*time.Second) // exponential backoff
	c.retransmitFirst()
	c.armRTO()
}

func (c *Conn) sampleRTT(tsecr time.Duration) {
	if tsecr <= 0 {
		return
	}
	rtt := c.host.sched.Now() - tsecr
	if rtt <= 0 {
		rtt = time.Microsecond
	}
	if c.minRTT == 0 || rtt < c.minRTT {
		c.minRTT = rtt
	}
	if c.srtt == 0 {
		c.srtt = rtt
		c.rttvar = rtt / 2
	} else {
		d := c.srtt - rtt
		if d < 0 {
			d = -d
		}
		c.rttvar = (3*c.rttvar + d) / 4
		c.srtt = (7*c.srtt + rtt) / 8
	}
	c.rto = max(c.srtt+4*c.rttvar, c.minRTO())
	c.lastRTTSample = rtt
}

// --- receiving ---

func (c *Conn) handle(seg *Segment) {
	if c.state == stateClosed {
		return
	}
	switch seg.Kind {
	case SegSYN:
		// Duplicate SYN: our SYNACK was lost in transit; resend it.
		c.lastTSVal = seg.TSVal
		c.emit(c.seg(SegSYNACK), 0)
	case SegSYNACK:
		if c.state == stateSynSent {
			c.state = stateEstablished
			c.synTimer.Cancel()
			c.peerWnd = seg.Wnd
			c.sampleRTT(seg.TSEcr)
			ack := c.seg(SegACK)
			ack.TSEcr = seg.TSVal
			c.emit(ack, 0)
			if c.onEstablished != nil {
				c.onEstablished()
			}
			c.trySend()
		}
	case SegACK:
		if seg.Wnd > 0 {
			c.peerWnd = seg.Wnd
		}
		c.processAck(seg)
	case SegDATA, SegFIN:
		c.lastTSVal = seg.TSVal
		c.processData(seg)
	}
}

func (c *Conn) processAck(seg *Segment) {
	c.applySacks(seg.Sacks)
	if seg.Ack > c.sndUna {
		acked := int(seg.Ack - c.sndUna)
		c.sndUna = seg.Ack
		c.bytesAcked += uint64(acked)
		c.dupAcks = 0
		c.consecRTOs = 0
		// Prune fully acked segments.
		i := 0
		for i < len(c.segs) && c.segs[i].seq+uint64(c.segs[i].length) <= c.sndUna {
			i++
		}
		c.segs = c.segs[i:]
		c.sampleRTT(seg.TSEcr)
		// Fluid bytes bypass congestion control: the engine's fair share
		// governed them, so cc is only credited with packet-path bytes.
		if fluid := c.ackFluidSpans(c.sndUna); fluid > 0 {
			acked -= fluid
		}
		if acked > 0 {
			c.cc.OnAck(acked, c.lastRTTSample)
		}
		if c.recovering {
			if c.sndUna >= c.recoverPt {
				c.recovering = false
			} else {
				// Partial ack: repair remaining holes (SACK-guided,
				// falling back to the first unacked segment).
				c.sackRetransmit()
				if len(seg.Sacks) == 0 {
					c.retransmitFirst()
				}
			}
		}
		if c.sndUna == c.sndNxt {
			c.disarmRTO()
			c.rto = max(c.srtt+4*c.rttvar, c.minRTO())
			if c.finSent {
				c.teardown(nil)
				return
			}
		} else {
			c.armRTO()
		}
		c.trySend()
		return
	}
	// Duplicate ACK.
	if c.sndNxt > c.sndUna && seg.Ack == c.sndUna {
		c.dupAcks++
		if c.dupAcks == 3 && !c.recovering {
			c.recovering = true
			c.recoverPt = c.sndNxt
			c.cc.OnLoss()
			c.retransmitFirst()
		}
		if c.recovering {
			c.sackRetransmit()
		}
	}
}

func (c *Conn) processData(seg *Segment) {
	end := seg.Seq + uint64(seg.Len)
	if seg.Kind == SegFIN {
		c.peerFin = true
		c.peerFinSeq = seg.Seq
	}
	for _, b := range seg.Bounds {
		c.addRecvBound(b)
	}
	if end > c.rcvNxt {
		if seg.Seq <= c.rcvNxt {
			c.rcvNxt = end
			c.mergeOOO()
		} else {
			c.addOOO(seg.Seq, end)
		}
	}
	c.ackNow(seg.TSVal)
	c.deliverReady()
}

func (c *Conn) ackNow(tsval time.Duration) {
	s := c.seg(SegACK)
	s.Ack = c.rcvNxt
	s.TSEcr = tsval
	for i := 0; i < len(c.ooo) && i < maxSackBlocks; i++ {
		s.Sacks = append(s.Sacks, SackBlock{Start: c.ooo[i].seq, End: c.ooo[i].end})
	}
	c.emit(s, 0)
}

func (c *Conn) addRecvBound(b Bound) {
	// A retransmitted segment can carry a boundary that was already
	// delivered and popped; re-adding it would deliver the message
	// twice. lastBound is the delivered watermark.
	if b.End <= c.lastBound {
		return
	}
	// Insert keeping order, ignoring duplicates (retransmits).
	i := sort.Search(len(c.recvBounds), func(i int) bool { return c.recvBounds[i].End >= b.End })
	if i < len(c.recvBounds) && c.recvBounds[i].End == b.End {
		return
	}
	c.recvBounds = append(c.recvBounds, Bound{})
	copy(c.recvBounds[i+1:], c.recvBounds[i:])
	c.recvBounds[i] = b
}

// addOOO inserts the range keeping c.ooo sorted and coalesced, so the
// list stays small and SACK blocks are maximal.
func (c *Conn) addOOO(seq, end uint64) {
	i := sort.Search(len(c.ooo), func(i int) bool { return c.ooo[i].seq > seq })
	c.ooo = append(c.ooo, oooSeg{})
	copy(c.ooo[i+1:], c.ooo[i:])
	c.ooo[i] = oooSeg{seq: seq, end: end}
	// Merge overlapping/adjacent neighbours.
	merged := c.ooo[:1]
	for _, o := range c.ooo[1:] {
		last := &merged[len(merged)-1]
		if o.seq <= last.end {
			if o.end > last.end {
				last.end = o.end
			}
		} else {
			merged = append(merged, o)
		}
	}
	c.ooo = merged
}

func (c *Conn) mergeOOO() {
	for {
		advanced := false
		keep := c.ooo[:0]
		for _, o := range c.ooo {
			switch {
			case o.end <= c.rcvNxt:
				// fully consumed
			case o.seq <= c.rcvNxt:
				c.rcvNxt = o.end
				advanced = true
			default:
				keep = append(keep, o)
			}
		}
		c.ooo = keep
		if !advanced {
			return
		}
	}
}

func (c *Conn) deliverReady() {
	for len(c.recvBounds) > 0 && c.recvBounds[0].End <= c.rcvNxt {
		b := c.recvBounds[0]
		c.recvBounds = c.recvBounds[1:]
		size := int(b.End - c.lastBound)
		c.lastBound = b.End
		c.msgsIn++
		if c.onMessage != nil {
			c.onMessage(b.Meta, size)
		}
		if c.state == stateClosed {
			return
		}
	}
	if c.peerFin && c.rcvNxt >= c.peerFinSeq+1 && len(c.recvBounds) == 0 {
		// Peer finished and everything is delivered.
		if c.finSent && c.sndUna == c.sndNxt {
			c.teardown(nil)
		} else if !c.finQueued {
			// Passive close: report EOF-style close once our side is
			// also drained of unsent data.
			c.teardown(nil)
		}
	}
}
