// Package transport implements a reliable, connection-oriented byte
// stream over simnet packets — the sidecar-to-sidecar channel of the
// mesh. It provides window-based congestion control with pluggable
// algorithms, including the scavenger protocols (LEDBAT, TCP-LP style)
// that the paper's cross-layer optimization 3(b) assigns to
// latency-insensitive requests.
//
// Messages, not bytes, are the unit of the API: an upper layer sends
// (meta, wireSize) pairs and the peer receives meta exactly when all
// wireSize bytes have been delivered in order. Bodies are accounted
// byte-accurately on the wire without being materialized.
package transport

import (
	"fmt"
	"time"
)

// SegKind enumerates segment types.
type SegKind uint8

// Segment kinds.
const (
	SegSYN SegKind = iota + 1
	SegSYNACK
	SegACK
	SegDATA
	SegFIN
)

func (k SegKind) String() string {
	switch k {
	case SegSYN:
		return "SYN"
	case SegSYNACK:
		return "SYNACK"
	case SegACK:
		return "ACK"
	case SegDATA:
		return "DATA"
	case SegFIN:
		return "FIN"
	}
	return fmt.Sprintf("SegKind(%d)", uint8(k))
}

// Bound marks the end of an application message within the stream:
// the message's meta is delivered once End bytes are contiguous.
type Bound struct {
	End  uint64
	Meta any
}

// Segment is the transport payload carried in a simnet.Packet.
//
// Segments are recycled through Host.segPool: once freeSeg returns one
// it may be scrubbed and reused, so references must not outlive the
// handling call (enforced by meshvet's poolescape analyzer).
//
//meshvet:pooled
type Segment struct {
	Kind SegKind
	// Seq is the stream offset of the first payload byte (DATA), or of
	// the FIN marker.
	Seq uint64
	// Len is the payload byte count (DATA only).
	Len int
	// Ack is the cumulative acknowledgment (ACK and SYNACK).
	Ack uint64
	// Wnd is the advertised receive window in bytes.
	Wnd int
	// TSVal is the sender's clock at transmission; TSEcr echoes the
	// peer's most recent TSVal (RTT measurement robust to
	// retransmission, per RFC 7323 semantics).
	TSVal, TSEcr time.Duration
	// Bounds lists message boundaries that end inside this segment's
	// payload range.
	Bounds []Bound
	// Sacks reports up to maxSackBlocks received out-of-order ranges
	// (ACK only), letting the sender repair multi-loss windows in one
	// round trip instead of one hole per RTT.
	Sacks []SackBlock
}

// SackBlock is a half-open [Start, End) range of received bytes beyond
// the cumulative ACK.
type SackBlock struct {
	Start, End uint64
}

// maxSackBlocks bounds the SACK option size, mirroring TCP's limit.
const maxSackBlocks = 4

// MSS is the maximum payload bytes per DATA segment.
const MSS = 1460 // simnet.MTU - simnet.HeaderBytes

// ctrlSize is the on-wire size of a control (SYN/ACK/FIN) packet.
const ctrlSize = 40
