package transport

import (
	"fmt"
	"math"
	"time"
)

// Controller is a congestion-control algorithm. The connection reports
// events; the controller exposes the congestion window in bytes.
//
// RTT samples passed to OnAck are timestamp-based and therefore valid
// even in the presence of retransmission.
type Controller interface {
	// Name identifies the algorithm ("reno", "cubic", "ledbat", "lp").
	Name() string
	// OnAck reports acked bytes plus a fresh RTT sample.
	OnAck(acked int, rtt time.Duration)
	// OnLoss reports a fast-retransmit loss (once per window).
	OnLoss()
	// OnTimeout reports an RTO expiry.
	OnTimeout()
	// Window returns the congestion window in bytes.
	Window() int
}

// NewController builds a controller by name. Supported names: "reno",
// "cubic", "ledbat", "lp". Empty selects "reno". Unknown names panic:
// they indicate a configuration typo, not a runtime condition.
func NewController(name string, clock func() time.Duration) Controller {
	switch name {
	case "", "reno":
		return NewReno()
	case "cubic":
		return NewCubic(clock)
	case "ledbat":
		return NewLEDBAT()
	case "lp":
		return NewLP()
	default:
		panic(fmt.Sprintf("transport: unknown congestion controller %q", name))
	}
}

// IsScavenger reports whether the named controller is a
// less-than-best-effort (scavenger) algorithm.
func IsScavenger(name string) bool { return name == "ledbat" || name == "lp" }

const (
	initialWindow = 10 * MSS
	minWindow     = 2 * MSS
	maxWindow     = 16 << 20 // 16 MiB
)

// Reno is classic AIMD with slow start: the baseline best-effort
// transport.
type Reno struct {
	cwnd     float64
	ssthresh float64
}

// NewReno returns a Reno controller with a 10-MSS initial window.
func NewReno() *Reno {
	return &Reno{cwnd: initialWindow, ssthresh: math.MaxFloat64}
}

// Name implements Controller.
func (r *Reno) Name() string { return "reno" }

// OnAck implements Controller.
func (r *Reno) OnAck(acked int, _ time.Duration) {
	if r.cwnd < r.ssthresh {
		r.cwnd += float64(acked) // slow start
	} else {
		r.cwnd += float64(MSS) * float64(acked) / r.cwnd // congestion avoidance
	}
	if r.cwnd > maxWindow {
		r.cwnd = maxWindow
	}
}

// OnLoss implements Controller.
func (r *Reno) OnLoss() {
	r.ssthresh = math.Max(r.cwnd/2, minWindow)
	r.cwnd = r.ssthresh
}

// OnTimeout implements Controller.
func (r *Reno) OnTimeout() {
	r.ssthresh = math.Max(r.cwnd/2, minWindow)
	r.cwnd = minWindow
}

// Window implements Controller.
func (r *Reno) Window() int { return int(r.cwnd) }

// Cubic grows the window as a cubic function of time since the last
// loss, per RFC 8312, including the TCP-friendly region (the window
// never falls below what Reno-style AIMD would achieve, which matters
// on small-BDP paths where the cubic term alone recovers slowly).
// Fast-convergence heuristics are omitted.
type Cubic struct {
	clock    func() time.Duration
	cwnd     float64
	ssthresh float64
	wMax     float64
	epoch    time.Duration
	k        float64
	wEst     float64 // TCP-friendly (Reno-equivalent) window estimate
	lastRTT  time.Duration
	minRTT   time.Duration
}

// cubicC is the RFC 8312 scaling constant (segments/s^3).
const cubicC = 0.4

// NewCubic returns a CUBIC controller driven by the given clock.
func NewCubic(clock func() time.Duration) *Cubic {
	if clock == nil {
		panic("transport: cubic needs a clock")
	}
	return &Cubic{clock: clock, cwnd: initialWindow, ssthresh: math.MaxFloat64, epoch: -1}
}

// Name implements Controller.
func (c *Cubic) Name() string { return "cubic" }

// OnAck implements Controller.
func (c *Cubic) OnAck(acked int, rtt time.Duration) {
	if rtt > 0 {
		c.lastRTT = rtt
		if c.minRTT == 0 || rtt < c.minRTT {
			c.minRTT = rtt
		}
	}
	if c.cwnd < c.ssthresh {
		// HyStart-style delay-based exit: once queueing delay builds,
		// leave slow start before overshooting the buffer.
		if c.minRTT > 0 && rtt > c.minRTT+c.minRTT/2 && c.cwnd > 16*MSS {
			c.ssthresh = c.cwnd
		} else {
			c.cwnd += float64(acked)
			if c.cwnd > maxWindow {
				c.cwnd = maxWindow
			}
			return
		}
	}
	now := c.clock()
	if c.epoch < 0 {
		c.epoch = now
		c.wMax = c.cwnd
		c.k = 0
		c.wEst = c.cwnd
	}
	t := (now - c.epoch).Seconds()
	// Target in segments: W(t) = C(t-K)^3 + Wmax, capped at 1.5*cwnd
	// per RFC 8312 §4.1 so deep-in-the-future cubic targets cannot
	// trigger overshoot bursts on shallow-buffered paths.
	target := (cubicC*math.Pow(t-c.k, 3) + c.wMax/MSS) * MSS
	if target > 1.5*c.cwnd {
		target = 1.5 * c.cwnd
	}
	// TCP-friendly region (RFC 8312 §4.2): Reno-equivalent growth at
	// the matched rate, 3(1-beta)/(1+beta) per RTT with beta = 0.7.
	c.wEst += 3 * 0.3 / 1.7 * float64(MSS) * float64(acked) / c.cwnd
	if target < c.wEst {
		target = c.wEst
	}
	if target > c.cwnd {
		c.cwnd += (target - c.cwnd) * float64(acked) / c.cwnd
	} else {
		c.cwnd += float64(MSS) * float64(acked) / (100 * c.cwnd) // slow probing
	}
	if c.cwnd > maxWindow {
		c.cwnd = maxWindow
	}
}

// OnLoss implements Controller.
func (c *Cubic) OnLoss() {
	c.wMax = c.cwnd
	c.cwnd = math.Max(c.cwnd*0.7, minWindow) // beta = 0.7
	c.ssthresh = c.cwnd
	c.epoch = c.clock()
	c.k = math.Cbrt(c.wMax * 0.3 / MSS / cubicC)
	c.wEst = c.cwnd
}

// OnTimeout implements Controller.
func (c *Cubic) OnTimeout() {
	c.OnLoss()
	c.cwnd = minWindow
}

// Window implements Controller.
func (c *Cubic) Window() int { return int(c.cwnd) }

// LEDBAT is the RFC 6817 less-than-best-effort controller: it targets a
// bounded queueing delay and yields quickly to competing traffic —
// the scavenger class the paper routes latency-insensitive requests
// onto.
type LEDBAT struct {
	cwnd    float64
	baseRTT time.Duration
	target  time.Duration
	gain    float64
}

// DefaultLEDBATTarget is the queueing-delay target. RFC 6817 allows up
// to 100 ms; datacenter deployments use far less so the scavenger
// yields within a handful of RTTs.
const DefaultLEDBATTarget = 5 * time.Millisecond

// NewLEDBAT returns a LEDBAT controller with the default target.
func NewLEDBAT() *LEDBAT {
	return &LEDBAT{cwnd: initialWindow, target: DefaultLEDBATTarget, gain: 1}
}

// SetTarget overrides the queueing-delay target.
func (l *LEDBAT) SetTarget(d time.Duration) {
	if d > 0 {
		l.target = d
	}
}

// Name implements Controller.
func (l *LEDBAT) Name() string { return "ledbat" }

// OnAck implements Controller.
func (l *LEDBAT) OnAck(acked int, rtt time.Duration) {
	if rtt <= 0 {
		return
	}
	if l.baseRTT == 0 || rtt < l.baseRTT {
		l.baseRTT = rtt
	}
	qdelay := rtt - l.baseRTT
	offTarget := float64(l.target-qdelay) / float64(l.target)
	l.cwnd += l.gain * offTarget * float64(acked) * float64(MSS) / l.cwnd
	if l.cwnd < minWindow {
		l.cwnd = minWindow
	}
	if l.cwnd > maxWindow {
		l.cwnd = maxWindow
	}
}

// OnLoss implements Controller.
func (l *LEDBAT) OnLoss() {
	l.cwnd = math.Max(l.cwnd/2, minWindow)
}

// OnTimeout implements Controller.
func (l *LEDBAT) OnTimeout() { l.cwnd = minWindow }

// Window implements Controller.
func (l *LEDBAT) Window() int { return int(l.cwnd) }

// LP approximates TCP-LP (Kuzmanovic & Knightly): additive increase,
// but an *early* backoff to minimum the moment one-way delay inference
// signals that best-effort traffic is present, plus an inference phase
// during which the window is pinned.
type LP struct {
	cwnd      float64
	baseRTT   time.Duration
	maxRTT    time.Duration
	inference bool
	infUntil  time.Duration
	lastRTT   time.Duration
	now       time.Duration
}

// lpThreshold is the fraction of the delay range at which LP infers
// competing traffic (delta in the paper; 0.15 is the suggested value).
const lpThreshold = 0.15

// NewLP returns a TCP-LP-style controller.
func NewLP() *LP { return &LP{cwnd: initialWindow} }

// Name implements Controller.
func (l *LP) Name() string { return "lp" }

// OnAck implements Controller.
func (l *LP) OnAck(acked int, rtt time.Duration) {
	if rtt <= 0 {
		return
	}
	l.now += rtt // virtual per-connection clock advanced by RTT samples
	l.lastRTT = rtt
	if l.baseRTT == 0 || rtt < l.baseRTT {
		l.baseRTT = rtt
	}
	if rtt > l.maxRTT {
		l.maxRTT = rtt
	}
	rng := l.maxRTT - l.baseRTT
	if rng > 0 && rtt-l.baseRTT > time.Duration(float64(rng)*lpThreshold) && rtt-l.baseRTT > time.Millisecond {
		// Early congestion indication: competing traffic detected.
		if !l.inference {
			l.inference = true
			l.infUntil = l.now + 3*rtt
			l.cwnd = math.Max(l.cwnd/2, minWindow)
		} else if l.now > l.infUntil {
			l.cwnd = minWindow
		}
		return
	}
	if l.inference && l.now > l.infUntil {
		l.inference = false
	}
	if !l.inference {
		l.cwnd += float64(MSS) * float64(acked) / l.cwnd
		if l.cwnd > maxWindow {
			l.cwnd = maxWindow
		}
	}
}

// OnLoss implements Controller.
func (l *LP) OnLoss() {
	l.cwnd = math.Max(l.cwnd/2, minWindow)
	l.inference = true
	l.infUntil = l.now + 3*l.lastRTT
}

// OnTimeout implements Controller.
func (l *LP) OnTimeout() { l.cwnd = minWindow }

// Window implements Controller.
func (l *LP) Window() int { return int(l.cwnd) }
