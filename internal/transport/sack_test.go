package transport

import (
	"testing"

	"meshlayer/internal/simnet"
)

// directConn builds a conn with just enough state to unit-test the
// SACK bookkeeping without a network.
func directConn() *Conn {
	s := simnet.NewScheduler()
	n := simnet.NewNetwork(s)
	node := n.AddNode("x")
	h := NewHost(node)
	return &Conn{host: h, state: stateEstablished, cc: NewReno(), peerWnd: rcvWindow}
}

func TestApplySacksMarksCoveredSegments(t *testing.T) {
	c := directConn()
	c.segs = []segInfo{
		{seq: 0, length: 1000},
		{seq: 1000, length: 1000},
		{seq: 2000, length: 1000},
		{seq: 3000, length: 500},
	}
	c.applySacks([]SackBlock{{Start: 1000, End: 2000}, {Start: 3000, End: 3500}})
	want := []bool{false, true, false, true}
	for i, w := range want {
		if c.segs[i].sacked != w {
			t.Fatalf("seg %d sacked=%v, want %v", i, c.segs[i].sacked, w)
		}
	}
	// Partial coverage must NOT mark a segment.
	c2 := directConn()
	c2.segs = []segInfo{{seq: 0, length: 1000}}
	c2.applySacks([]SackBlock{{Start: 0, End: 999}})
	if c2.segs[0].sacked {
		t.Fatal("partially covered segment marked sacked")
	}
	// Empty sack list is a no-op.
	c2.applySacks(nil)
}

func TestAddOOOMergesRanges(t *testing.T) {
	c := directConn()
	c.addOOO(1000, 2000)
	c.addOOO(3000, 4000)
	if len(c.ooo) != 2 {
		t.Fatalf("ooo = %v", c.ooo)
	}
	// Bridging range merges all three.
	c.addOOO(2000, 3000)
	if len(c.ooo) != 1 || c.ooo[0].seq != 1000 || c.ooo[0].end != 4000 {
		t.Fatalf("merge failed: %v", c.ooo)
	}
	// Contained duplicate changes nothing.
	c.addOOO(1500, 1800)
	if len(c.ooo) != 1 || c.ooo[0].end != 4000 {
		t.Fatalf("duplicate mutated: %v", c.ooo)
	}
	// Overlapping extension grows the range.
	c.addOOO(3500, 4500)
	if len(c.ooo) != 1 || c.ooo[0].end != 4500 {
		t.Fatalf("extension failed: %v", c.ooo)
	}
	// Insert before the existing range keeps sorted order.
	c.addOOO(100, 200)
	if len(c.ooo) != 2 || c.ooo[0].seq != 100 {
		t.Fatalf("sorted insert failed: %v", c.ooo)
	}
}

func TestMergeOOOAdvancesRcvNxt(t *testing.T) {
	c := directConn()
	c.rcvNxt = 1000
	c.addOOO(1000, 2000)
	c.addOOO(2000, 2500)
	c.mergeOOO()
	if c.rcvNxt != 2500 {
		t.Fatalf("rcvNxt = %d, want 2500", c.rcvNxt)
	}
	if len(c.ooo) != 0 {
		t.Fatalf("residual ooo: %v", c.ooo)
	}
	// A gap stops the merge.
	c.addOOO(3000, 3500)
	c.mergeOOO()
	if c.rcvNxt != 2500 || len(c.ooo) != 1 {
		t.Fatalf("merged across a gap: rcvNxt=%d ooo=%v", c.rcvNxt, c.ooo)
	}
}

func TestRecvBoundDedupAndWatermark(t *testing.T) {
	c := directConn()
	c.addRecvBound(Bound{End: 100, Meta: "a"})
	c.addRecvBound(Bound{End: 100, Meta: "a"}) // duplicate
	c.addRecvBound(Bound{End: 50, Meta: "b"})
	if len(c.recvBounds) != 2 || c.recvBounds[0].End != 50 {
		t.Fatalf("bounds = %v", c.recvBounds)
	}
	// Deliver both, then re-adding them (late retransmit) is ignored.
	c.rcvNxt = 100
	delivered := 0
	c.onMessage = func(any, int) { delivered++ }
	c.deliverReady()
	if delivered != 2 {
		t.Fatalf("delivered = %d", delivered)
	}
	c.addRecvBound(Bound{End: 100, Meta: "a"})
	c.addRecvBound(Bound{End: 50, Meta: "b"})
	if len(c.recvBounds) != 0 {
		t.Fatalf("stale bounds re-added: %v", c.recvBounds)
	}
}

func TestSackRetransmitLimitsBurst(t *testing.T) {
	// 10 unsacked segments below a sacked tail: only rtxBurst go out
	// per call.
	c := directConn()
	for i := 0; i < 10; i++ {
		c.segs = append(c.segs, segInfo{seq: uint64(i * 1000), length: 1000})
	}
	c.segs = append(c.segs, segInfo{seq: 10000, length: 1000, sacked: true})
	c.sndUna = 0
	c.sendEnd = 11000
	c.sndNxt = 11000
	before := c.retransmits
	c.sackRetransmit()
	if got := c.retransmits - before; got != rtxBurst {
		t.Fatalf("retransmitted %d, want %d", got, rtxBurst)
	}
	// Second call repairs the next batch (rtxed ones skipped).
	c.sackRetransmit()
	if got := c.retransmits - before; got != 2*rtxBurst {
		t.Fatalf("after second call: %d, want %d", got, 2*rtxBurst)
	}
}

func TestSackRetransmitNoSackNoop(t *testing.T) {
	c := directConn()
	c.segs = []segInfo{{seq: 0, length: 1000}}
	c.sackRetransmit()
	if c.retransmits != 0 {
		t.Fatal("retransmitted without any sacked segment")
	}
}
