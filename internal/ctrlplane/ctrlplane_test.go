package ctrlplane

import (
	"testing"
	"time"

	"meshlayer/internal/metrics"
	"meshlayer/internal/simnet"
)

// fakeTransport delivers each push after delay by applying it to the
// subscriber's snapshot, unless the subscriber is marked down (lost
// connection) or forced to NACK.
type fakeTransport struct {
	sched *simnet.Scheduler
	delay time.Duration
	snaps map[string]*Snapshot
	down  map[string]bool
	nack  map[string]bool

	pushes []*Update
}

func newFakeTransport(sched *simnet.Scheduler, delay time.Duration) *fakeTransport {
	return &fakeTransport{
		sched: sched, delay: delay,
		snaps: make(map[string]*Snapshot),
		down:  make(map[string]bool),
		nack:  make(map[string]bool),
	}
}

func (f *fakeTransport) Push(sub string, u *Update, done func(bool, error)) {
	f.pushes = append(f.pushes, u)
	f.sched.After(f.delay, func() {
		switch {
		case f.down[sub]:
			done(false, ErrPushTimeout)
		case f.nack[sub]:
			done(false, nil)
		default:
			done(f.snaps[sub].Apply(u), nil)
		}
	})
}

func newTestServer(t *testing.T, full bool) (*simnet.Scheduler, *fakeTransport, *Server) {
	t.Helper()
	sched := simnet.NewScheduler()
	tr := newFakeTransport(sched, 10*time.Millisecond)
	srv := NewServer(Config{
		Sched: sched, Transport: tr, Metrics: metrics.NewRegistry(),
		Debounce: 50 * time.Millisecond, FullState: full, ResyncDelay: 200 * time.Millisecond,
	})
	return sched, tr, srv
}

func subscribe(tr *fakeTransport, srv *Server, name string) *Snapshot {
	snap := NewSnapshot()
	tr.snaps[name] = snap
	snap.Apply(srv.Subscribe(name))
	return snap
}

func TestBootstrapAndDebouncedDelta(t *testing.T) {
	sched, tr, srv := newTestServer(t, false)
	srv.SetResource("a", "a1", 100)
	srv.SetResource("b", "b1", 100)
	sched.RunFor(time.Second)
	if len(tr.pushes) != 0 {
		t.Fatalf("pushes before any subscriber: %d", len(tr.pushes))
	}

	snap := subscribe(tr, srv, "s1")
	if snap.Version != srv.Version() || snap.Get("a") != "a1" {
		t.Fatalf("bootstrap snapshot: version=%d want %d a=%v", snap.Version, srv.Version(), snap.Get("a"))
	}

	// Two changes inside one debounce window coalesce into one delta
	// carrying only the changed resource.
	srv.SetResource("a", "a2", 100)
	srv.SetResource("a", "a3", 100)
	sched.RunFor(time.Second)
	if len(tr.pushes) != 1 {
		t.Fatalf("pushes = %d, want 1 coalesced delta", len(tr.pushes))
	}
	u := tr.pushes[0]
	if u.Full || len(u.Resources) != 1 || u.Resources[0].Name != "a" {
		t.Fatalf("expected delta with only a, got %+v", u)
	}
	if snap.Get("a") != "a3" || snap.Version != srv.Version() {
		t.Fatalf("snapshot not converged: a=%v version=%d", snap.Get("a"), snap.Version)
	}
	if st := srv.Stats(); st.DeltaPushes != 1 || st.Acks != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFullStateMode(t *testing.T) {
	sched, tr, srv := newTestServer(t, true)
	srv.SetResource("a", "a1", 100)
	srv.SetResource("b", "b1", 100)
	snap := subscribe(tr, srv, "s1")

	srv.SetResource("a", "a2", 100)
	sched.RunFor(time.Second)
	if len(tr.pushes) != 1 || !tr.pushes[0].Full || len(tr.pushes[0].Resources) != 2 {
		t.Fatalf("expected one full push with 2 resources, got %+v", tr.pushes)
	}
	if snap.Get("a") != "a2" || snap.Get("b") != "b1" {
		t.Fatalf("snapshot after full push: a=%v b=%v", snap.Get("a"), snap.Get("b"))
	}
}

func TestRemovalTombstone(t *testing.T) {
	sched, tr, srv := newTestServer(t, false)
	srv.SetResource("a", "a1", 100)
	srv.SetResource("b", "b1", 100)
	snap := subscribe(tr, srv, "s1")

	srv.RemoveResource("b")
	sched.RunFor(time.Second)
	u := tr.pushes[len(tr.pushes)-1]
	if u.Full || len(u.Removed) != 1 || u.Removed[0] != "b" {
		t.Fatalf("expected delta removal of b, got %+v", u)
	}
	if snap.Get("b") != nil {
		t.Fatalf("b still in snapshot after removal")
	}
}

func TestNackTriggersFullResync(t *testing.T) {
	sched, tr, srv := newTestServer(t, false)
	srv.SetResource("a", "a1", 100)
	snap := subscribe(tr, srv, "s1")

	tr.nack["s1"] = true
	srv.SetResource("a", "a2", 100)
	sched.RunFor(100 * time.Millisecond) // delta push -> NACK -> backoff
	tr.nack["s1"] = false
	sched.RunFor(time.Second) // resync

	if snap.Get("a") != "a2" {
		t.Fatalf("snapshot not recovered after NACK: a=%v", snap.Get("a"))
	}
	last := tr.pushes[len(tr.pushes)-1]
	if !last.Full {
		t.Fatalf("recovery push was not full: %+v", last)
	}
	st := srv.Stats()
	if st.Nacks != 1 || st.Resyncs != 1 {
		t.Fatalf("stats = %+v, want 1 nack + 1 resync", st)
	}
}

func TestLostConnectionResyncsOnReconnect(t *testing.T) {
	sched, tr, srv := newTestServer(t, false)
	srv.SetResource("a", "a1", 100)
	snap := subscribe(tr, srv, "s1")

	tr.down["s1"] = true
	srv.SetResource("a", "a2", 100)
	sched.RunFor(3 * time.Second)
	if snap.Get("a") != "a1" {
		t.Fatalf("snapshot advanced while down")
	}
	before := len(tr.pushes)
	if before < 2 {
		t.Fatalf("no retries while down: %d pushes", before)
	}

	tr.down["s1"] = false
	sched.RunFor(time.Second)
	if snap.Get("a") != "a2" || snap.Version != srv.Version() {
		t.Fatalf("snapshot not resynced after reconnect: a=%v", snap.Get("a"))
	}
	if st := srv.Stats(); st.Timeouts == 0 {
		t.Fatalf("stats = %+v, want timeouts > 0", st)
	}
}

func TestHoldSuppressesPushes(t *testing.T) {
	sched, tr, srv := newTestServer(t, false)
	srv.SetResource("a", "a1", 100)
	snap := subscribe(tr, srv, "s1")

	srv.SetHold(10 * time.Second)
	srv.SetResource("a", "a2", 100)
	sched.RunFor(2 * time.Second)
	if len(tr.pushes) != 0 {
		t.Fatalf("push escaped the hold")
	}
	if lag := srv.MaxLag(); lag == 0 {
		t.Fatalf("lag should accumulate under hold")
	}

	srv.SetHold(0)
	sched.RunFor(time.Second)
	if snap.Get("a") != "a2" {
		t.Fatalf("snapshot not updated after hold lifted: a=%v", snap.Get("a"))
	}
	if srv.Stats().MaxLag == 0 {
		t.Fatalf("MaxLag stat not recorded")
	}
}

func TestChangeDuringInflightCoalesces(t *testing.T) {
	sched, tr, srv := newTestServer(t, false)
	srv.SetResource("a", "a1", 100)
	snap := subscribe(tr, srv, "s1")

	srv.SetResource("a", "a2", 100)
	// The first delta departs at the debounce edge (50ms) and is in
	// flight for 10ms; stage another change while it flies.
	sched.RunFor(55 * time.Millisecond)
	srv.SetResource("b", "b1", 100)
	sched.RunFor(time.Second)
	if snap.Get("a") != "a2" || snap.Get("b") != "b1" {
		t.Fatalf("snapshot incomplete: a=%v b=%v", snap.Get("a"), snap.Get("b"))
	}
	if snap.Version != srv.Version() {
		t.Fatalf("subscriber stuck at %d, server at %d", snap.Version, srv.Version())
	}
}

func TestSnapshotNacksBaseMismatch(t *testing.T) {
	snap := NewSnapshot()
	if ok := snap.Apply(&Update{Full: true, Version: 3, Resources: []Resource{{Name: "a", Data: 1}}}); !ok {
		t.Fatalf("full apply failed")
	}
	if ok := snap.Apply(&Update{BaseVersion: 2, Version: 5}); ok {
		t.Fatalf("delta with stale base applied")
	}
	if snap.Version != 3 {
		t.Fatalf("NACKed delta mutated snapshot: version=%d", snap.Version)
	}
	if ok := snap.Apply(&Update{BaseVersion: 3, Version: 5, Removed: []string{"a"}}); !ok {
		t.Fatalf("matching delta rejected")
	}
	if snap.Get("a") != nil || snap.Version != 5 {
		t.Fatalf("delta not applied: %+v", snap)
	}
}

// Two subscribers must be pushed in subscription order every flush —
// the determinism contract the golden checks rely on.
func TestPushOrderIsSubscriptionOrder(t *testing.T) {
	sched := simnet.NewScheduler()
	var order []string
	tr := newFakeTransport(sched, time.Millisecond)
	srv := NewServer(Config{Sched: sched, Transport: orderedTransport{tr, &order}, Debounce: 10 * time.Millisecond})
	snapB := NewSnapshot()
	tr.snaps["b"] = snapB
	snapB.Apply(srv.Subscribe("b"))
	snapA := NewSnapshot()
	tr.snaps["a"] = snapA
	snapA.Apply(srv.Subscribe("a"))

	srv.SetResource("x", 1, 10)
	sched.RunFor(time.Second)
	if len(order) != 2 || order[0] != "b" || order[1] != "a" {
		t.Fatalf("push order = %v, want [b a]", order)
	}
}

type orderedTransport struct {
	inner *fakeTransport
	order *[]string
}

func (o orderedTransport) Push(sub string, u *Update, done func(bool, error)) {
	*o.order = append(*o.order, sub)
	o.inner.Push(sub, u, done)
}
