package ctrlplane

import (
	"testing"
	"time"

	"meshlayer/internal/metrics"
	"meshlayer/internal/simnet"
)

// fakeTransport delivers each push after delay by applying it to the
// subscriber's snapshot, unless the subscriber is marked down (lost
// connection) or forced to NACK.
type fakeTransport struct {
	sched *simnet.Scheduler
	delay time.Duration
	snaps map[string]*Snapshot
	down  map[string]bool
	nack  map[string]bool

	pushes []*Update
}

func newFakeTransport(sched *simnet.Scheduler, delay time.Duration) *fakeTransport {
	return &fakeTransport{
		sched: sched, delay: delay,
		snaps: make(map[string]*Snapshot),
		down:  make(map[string]bool),
		nack:  make(map[string]bool),
	}
}

func (f *fakeTransport) Push(sub string, u *Update, done func(bool, error)) {
	f.pushes = append(f.pushes, u)
	f.sched.After(f.delay, func() {
		switch {
		case f.down[sub]:
			done(false, ErrPushTimeout)
		case f.nack[sub]:
			done(false, nil)
		default:
			done(f.snaps[sub].Apply(u), nil)
		}
	})
}

func newTestServer(t *testing.T, full bool) (*simnet.Scheduler, *fakeTransport, *Server) {
	t.Helper()
	sched := simnet.NewScheduler()
	tr := newFakeTransport(sched, 10*time.Millisecond)
	srv := NewServer(Config{
		Sched: sched, Transport: tr, Metrics: metrics.NewRegistry(),
		Debounce: 50 * time.Millisecond, FullState: full, ResyncDelay: 200 * time.Millisecond,
	})
	return sched, tr, srv
}

func subscribe(tr *fakeTransport, srv *Server, name string) *Snapshot {
	snap := NewSnapshot()
	tr.snaps[name] = snap
	snap.Apply(srv.Subscribe(name))
	return snap
}

func TestBootstrapAndDebouncedDelta(t *testing.T) {
	sched, tr, srv := newTestServer(t, false)
	srv.SetResource("a", "a1", 100)
	srv.SetResource("b", "b1", 100)
	sched.RunFor(time.Second)
	if len(tr.pushes) != 0 {
		t.Fatalf("pushes before any subscriber: %d", len(tr.pushes))
	}

	snap := subscribe(tr, srv, "s1")
	if snap.Version != srv.Version() || snap.Get("a") != "a1" {
		t.Fatalf("bootstrap snapshot: version=%d want %d a=%v", snap.Version, srv.Version(), snap.Get("a"))
	}

	// Two changes inside one debounce window coalesce into one delta
	// carrying only the changed resource.
	srv.SetResource("a", "a2", 100)
	srv.SetResource("a", "a3", 100)
	sched.RunFor(time.Second)
	if len(tr.pushes) != 1 {
		t.Fatalf("pushes = %d, want 1 coalesced delta", len(tr.pushes))
	}
	u := tr.pushes[0]
	if u.Full || len(u.Resources) != 1 || u.Resources[0].Name != "a" {
		t.Fatalf("expected delta with only a, got %+v", u)
	}
	if snap.Get("a") != "a3" || snap.Version != srv.Version() {
		t.Fatalf("snapshot not converged: a=%v version=%d", snap.Get("a"), snap.Version)
	}
	if st := srv.Stats(); st.DeltaPushes != 1 || st.Acks != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFullStateMode(t *testing.T) {
	sched, tr, srv := newTestServer(t, true)
	srv.SetResource("a", "a1", 100)
	srv.SetResource("b", "b1", 100)
	snap := subscribe(tr, srv, "s1")

	srv.SetResource("a", "a2", 100)
	sched.RunFor(time.Second)
	if len(tr.pushes) != 1 || !tr.pushes[0].Full || len(tr.pushes[0].Resources) != 2 {
		t.Fatalf("expected one full push with 2 resources, got %+v", tr.pushes)
	}
	if snap.Get("a") != "a2" || snap.Get("b") != "b1" {
		t.Fatalf("snapshot after full push: a=%v b=%v", snap.Get("a"), snap.Get("b"))
	}
}

func TestRemovalTombstone(t *testing.T) {
	sched, tr, srv := newTestServer(t, false)
	srv.SetResource("a", "a1", 100)
	srv.SetResource("b", "b1", 100)
	snap := subscribe(tr, srv, "s1")

	srv.RemoveResource("b")
	sched.RunFor(time.Second)
	u := tr.pushes[len(tr.pushes)-1]
	if u.Full || len(u.Removed) != 1 || u.Removed[0] != "b" {
		t.Fatalf("expected delta removal of b, got %+v", u)
	}
	if snap.Get("b") != nil {
		t.Fatalf("b still in snapshot after removal")
	}
}

func TestNackTriggersFullResync(t *testing.T) {
	sched, tr, srv := newTestServer(t, false)
	srv.SetResource("a", "a1", 100)
	snap := subscribe(tr, srv, "s1")

	tr.nack["s1"] = true
	srv.SetResource("a", "a2", 100)
	sched.RunFor(100 * time.Millisecond) // delta push -> NACK -> backoff
	tr.nack["s1"] = false
	sched.RunFor(time.Second) // resync

	if snap.Get("a") != "a2" {
		t.Fatalf("snapshot not recovered after NACK: a=%v", snap.Get("a"))
	}
	last := tr.pushes[len(tr.pushes)-1]
	if !last.Full {
		t.Fatalf("recovery push was not full: %+v", last)
	}
	st := srv.Stats()
	if st.Nacks != 1 || st.Resyncs != 1 {
		t.Fatalf("stats = %+v, want 1 nack + 1 resync", st)
	}
}

func TestLostConnectionResyncsOnReconnect(t *testing.T) {
	sched, tr, srv := newTestServer(t, false)
	srv.SetResource("a", "a1", 100)
	snap := subscribe(tr, srv, "s1")

	tr.down["s1"] = true
	srv.SetResource("a", "a2", 100)
	sched.RunFor(3 * time.Second)
	if snap.Get("a") != "a1" {
		t.Fatalf("snapshot advanced while down")
	}
	before := len(tr.pushes)
	if before < 2 {
		t.Fatalf("no retries while down: %d pushes", before)
	}

	tr.down["s1"] = false
	sched.RunFor(time.Second)
	if snap.Get("a") != "a2" || snap.Version != srv.Version() {
		t.Fatalf("snapshot not resynced after reconnect: a=%v", snap.Get("a"))
	}
	if st := srv.Stats(); st.Timeouts == 0 {
		t.Fatalf("stats = %+v, want timeouts > 0", st)
	}
}

func TestHoldSuppressesPushes(t *testing.T) {
	sched, tr, srv := newTestServer(t, false)
	srv.SetResource("a", "a1", 100)
	snap := subscribe(tr, srv, "s1")

	srv.SetHold(10 * time.Second)
	srv.SetResource("a", "a2", 100)
	sched.RunFor(2 * time.Second)
	if len(tr.pushes) != 0 {
		t.Fatalf("push escaped the hold")
	}
	if lag := srv.MaxLag(); lag == 0 {
		t.Fatalf("lag should accumulate under hold")
	}

	srv.SetHold(0)
	sched.RunFor(time.Second)
	if snap.Get("a") != "a2" {
		t.Fatalf("snapshot not updated after hold lifted: a=%v", snap.Get("a"))
	}
	if srv.Stats().MaxLag == 0 {
		t.Fatalf("MaxLag stat not recorded")
	}
}

func TestChangeDuringInflightCoalesces(t *testing.T) {
	sched, tr, srv := newTestServer(t, false)
	srv.SetResource("a", "a1", 100)
	snap := subscribe(tr, srv, "s1")

	srv.SetResource("a", "a2", 100)
	// The first delta departs at the debounce edge (50ms) and is in
	// flight for 10ms; stage another change while it flies.
	sched.RunFor(55 * time.Millisecond)
	srv.SetResource("b", "b1", 100)
	sched.RunFor(time.Second)
	if snap.Get("a") != "a2" || snap.Get("b") != "b1" {
		t.Fatalf("snapshot incomplete: a=%v b=%v", snap.Get("a"), snap.Get("b"))
	}
	if snap.Version != srv.Version() {
		t.Fatalf("subscriber stuck at %d, server at %d", snap.Version, srv.Version())
	}
}

func TestSnapshotNacksBaseMismatch(t *testing.T) {
	snap := NewSnapshot()
	if ok := snap.Apply(&Update{Full: true, Version: 3, Resources: []Resource{{Name: "a", Data: 1}}}); !ok {
		t.Fatalf("full apply failed")
	}
	if ok := snap.Apply(&Update{BaseVersion: 2, Version: 5}); ok {
		t.Fatalf("delta with stale base applied")
	}
	if snap.Version != 3 {
		t.Fatalf("NACKed delta mutated snapshot: version=%d", snap.Version)
	}
	if ok := snap.Apply(&Update{BaseVersion: 3, Version: 5, Removed: []string{"a"}}); !ok {
		t.Fatalf("matching delta rejected")
	}
	if snap.Get("a") != nil || snap.Version != 5 {
		t.Fatalf("delta not applied: %+v", snap)
	}
}

// Two subscribers must be pushed in subscription order every flush —
// the determinism contract the golden checks rely on.
func TestPushOrderIsSubscriptionOrder(t *testing.T) {
	sched := simnet.NewScheduler()
	var order []string
	tr := newFakeTransport(sched, time.Millisecond)
	srv := NewServer(Config{Sched: sched, Transport: orderedTransport{tr, &order}, Debounce: 10 * time.Millisecond})
	snapB := NewSnapshot()
	tr.snaps["b"] = snapB
	snapB.Apply(srv.Subscribe("b"))
	snapA := NewSnapshot()
	tr.snaps["a"] = snapA
	snapA.Apply(srv.Subscribe("a"))

	srv.SetResource("x", 1, 10)
	sched.RunFor(time.Second)
	if len(order) != 2 || order[0] != "b" || order[1] != "a" {
		t.Fatalf("push order = %v, want [b a]", order)
	}
}

type orderedTransport struct {
	inner *fakeTransport
	order *[]string
}

func (o orderedTransport) Push(sub string, u *Update, done func(bool, error)) {
	*o.order = append(*o.order, sub)
	o.inner.Push(sub, u, done)
}

// timedTransport records the virtual send time of every push.
type timedTransport struct {
	inner *fakeTransport
	times *[]time.Duration
}

func (o timedTransport) Push(sub string, u *Update, done func(bool, error)) {
	*o.times = append(*o.times, o.inner.sched.Now())
	o.inner.Push(sub, u, done)
}

// The full NACK recovery sequence, with exact virtual timings: delta ->
// NACK -> exponential backoff (200, 400, 800ms) -> full resync -> ack,
// and the attempt counter resets on ack so the next failure backs off
// from the base delay again.
func TestNackBackoffResyncAckSequence(t *testing.T) {
	sched := simnet.NewScheduler()
	tr := newFakeTransport(sched, 10*time.Millisecond)
	var times []time.Duration
	srv := NewServer(Config{
		Sched: sched, Transport: timedTransport{tr, &times},
		Debounce: 50 * time.Millisecond, ResyncDelay: 200 * time.Millisecond,
		ResyncMax: 1600 * time.Millisecond,
	})
	srv.SetResource("a", "a1", 100)
	snap := subscribe(tr, srv, "s1") // bootstraps at v1: later fulls are resyncs
	tr.nack["s1"] = true
	srv.SetResource("a", "a2", 100)
	sched.RunFor(time.Second)
	tr.nack["s1"] = false
	sched.RunFor(time.Second)

	// Delta departs at the debounce edge (50ms) and NACKs at 60ms; the
	// retries back off 200, 400, 800ms from each failure.
	want := []time.Duration{
		50 * time.Millisecond,   // delta -> NACK at 60ms
		260 * time.Millisecond,  // full resync -> NACK at 270ms
		670 * time.Millisecond,  // backoff doubled -> NACK at 680ms
		1480 * time.Millisecond, // doubled again -> ack
	}
	if len(times) != len(want) {
		t.Fatalf("push times = %v, want %v", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("push %d at %v, want %v (all: %v)", i, times[i], want[i], times)
		}
	}
	if tr.pushes[0].Full || !tr.pushes[len(tr.pushes)-1].Full {
		t.Fatalf("want delta first and full resync last: %+v", tr.pushes)
	}
	if snap.Get("a") != "a2" || !srv.Current("s1") {
		t.Fatalf("not converged after recovery: a=%v", snap.Get("a"))
	}

	// The ack reset the attempt counter: the next failure's retry uses
	// the base 200ms delay, not the backed-off 1600ms.
	tr.nack["s1"] = true
	srv.SetResource("a", "a3", 100)
	sched.RunFor(70 * time.Millisecond) // delta departs + NACKs
	tr.nack["s1"] = false
	sched.RunFor(time.Second)
	n := len(times)
	if gap := times[n-1] - times[n-2]; gap != 210*time.Millisecond {
		t.Fatalf("post-ack retry gap = %v, want 210ms (base delay again)", gap)
	}
	st := srv.Stats()
	if st.Nacks != 4 || st.Resyncs != 4 || st.Acks != 2 {
		t.Fatalf("stats = %+v, want 4 nacks, 4 resyncs, 2 acks", st)
	}
}

// SetHold mid-flight must not disturb the in-flight push, and changes
// staged under the hold stay unpushed until it lifts.
func TestHoldDuringInflightPush(t *testing.T) {
	sched, tr, srv := newTestServer(t, false)
	srv.SetResource("a", "a1", 100)
	snap := subscribe(tr, srv, "s1")

	srv.SetResource("a", "a2", 100)
	sched.RunFor(55 * time.Millisecond) // delta in flight (50ms..60ms)
	srv.SetHold(10 * time.Second)
	srv.SetResource("b", "b1", 100)
	sched.RunFor(2 * time.Second)
	if len(tr.pushes) != 1 {
		t.Fatalf("pushes under hold = %d, want just the in-flight delta", len(tr.pushes))
	}
	if snap.Get("a") != "a2" || snap.Get("b") != nil {
		t.Fatalf("in-flight delta lost or held change leaked: a=%v b=%v", snap.Get("a"), snap.Get("b"))
	}
	srv.SetHold(0)
	sched.RunFor(time.Second)
	if snap.Get("b") != "b1" || !srv.Current("s1") {
		t.Fatalf("held change not delivered after release: b=%v", snap.Get("b"))
	}
}

// OnSynced fires exactly once per catch-up: not on the bootstrap, not
// on an ack that leaves the subscriber behind, once when it reaches the
// current version.
func TestOnSyncedExactlyOncePerCatchup(t *testing.T) {
	sched := simnet.NewScheduler()
	tr := newFakeTransport(sched, 10*time.Millisecond)
	synced := make(map[string]int)
	srv := NewServer(Config{
		Sched: sched, Transport: tr, Debounce: 50 * time.Millisecond,
		ResyncDelay: 200 * time.Millisecond,
		OnSynced:    func(name string) { synced[name]++ },
	})
	subscribe(tr, srv, "s1")
	if len(synced) != 0 {
		t.Fatalf("OnSynced fired on bootstrap: %v", synced)
	}
	srv.SetResource("a", "a1", 100)
	sched.RunFor(time.Second)
	if synced["s1"] != 1 {
		t.Fatalf("OnSynced count = %d after one push, want 1", synced["s1"])
	}
	// A change staged while the push is in flight: the first ack leaves
	// the subscriber behind (no OnSynced), the follow-up completes the
	// catch-up (one OnSynced).
	srv.SetResource("a", "a2", 100)
	sched.RunFor(55 * time.Millisecond)
	srv.SetResource("b", "b1", 100)
	sched.RunFor(time.Second)
	if synced["s1"] != 2 {
		t.Fatalf("OnSynced count = %d after coalesced catch-up, want 2", synced["s1"])
	}
}

// A version bump with nothing to deliver (every change already seen
// from this subscriber's view) fast-forwards the subscriber without a
// push and still fires OnSynced.
func TestEmptyDeltaFastForwards(t *testing.T) {
	sched := simnet.NewScheduler()
	tr := newFakeTransport(sched, 10*time.Millisecond)
	synced := 0
	srv := NewServer(Config{
		Sched: sched, Transport: tr, Debounce: 50 * time.Millisecond,
		OnSynced: func(string) { synced++ },
	})
	srv.SetResource("a", "a1", 100)
	subscribe(tr, srv, "s1")

	// A version advance with no resource payload from s1's view (a
	// change staged and reverted within one epoch of history).
	srv.version++
	srv.stage()
	sched.RunFor(time.Second)
	if len(tr.pushes) != 0 {
		t.Fatalf("empty delta was pushed: %+v", tr.pushes)
	}
	if !srv.Current("s1") || srv.SubscriberVersion("s1") != srv.Version() {
		t.Fatalf("subscriber not fast-forwarded: at %d, server %d", srv.SubscriberVersion("s1"), srv.Version())
	}
	if synced != 1 {
		t.Fatalf("OnSynced count = %d, want 1", synced)
	}
}

// Crash/recovery: in-flight acks from the dead process's epoch are
// ignored, Subscribe while down returns no bootstrap, and Recover
// full-resyncs every subscriber — including the one that joined during
// the outage.
func TestCrashRecoveryResyncsEveryone(t *testing.T) {
	sched, tr, srv := newTestServer(t, false)
	srv.SetResource("a", "a1", 100)
	s1 := subscribe(tr, srv, "s1")
	s2 := subscribe(tr, srv, "s2")

	srv.SetResource("a", "a2", 100)
	sched.RunFor(55 * time.Millisecond) // both deltas in flight
	srv.Crash()
	if !srv.Down() || srv.Epoch() != 1 {
		t.Fatalf("down=%v epoch=%d after crash", srv.Down(), srv.Epoch())
	}
	sched.RunFor(time.Second) // transport settles into the dead epoch
	if st := srv.Stats(); st.Acks != 0 {
		t.Fatalf("ack from the pre-crash epoch was counted: %+v", st)
	}

	// A pod restarted during the outage: registered, no bootstrap, and
	// it keeps whatever snapshot it had (static stability).
	s3 := NewSnapshot()
	tr.snaps["s3"] = s3
	if u := srv.Subscribe("s3"); u != nil {
		t.Fatalf("Subscribe while down returned a bootstrap: %+v", u)
	}
	// Changes staged while down stay local.
	srv.SetResource("b", "b1", 100)
	sched.RunFor(time.Second)
	if got := len(tr.pushes); got != 2 {
		t.Fatalf("pushes while down: %d, want the 2 pre-crash deltas", got)
	}

	srv.Recover()
	if srv.UnsyncedCount() != 3 {
		t.Fatalf("unsynced after recover = %d, want all 3", srv.UnsyncedCount())
	}
	sched.RunFor(time.Second)
	for name, snap := range map[string]*Snapshot{"s1": s1, "s2": s2, "s3": s3} {
		if !srv.Current(name) || snap.Get("a") != "a2" || snap.Get("b") != "b1" {
			t.Fatalf("%s not resynced: a=%v b=%v", name, snap.Get("a"), snap.Get("b"))
		}
	}
	st := srv.Stats()
	// s1 and s2 resynced (they had acked state from the old process);
	// s3's full push is its delayed bootstrap, not a resync.
	if st.Crashes != 1 || st.Resyncs != 2 || st.FullPushes != 3 {
		t.Fatalf("stats = %+v, want 1 crash, 2 resyncs, 3 full pushes", st)
	}
	if st.MaxLag == 0 {
		t.Fatal("lag built up during the outage was not sampled")
	}
}

// retryDelay doubles from ResyncDelay up to ResyncMax, and jitter is a
// deterministic function of (subscriber, attempt) bounded by
// ResyncJitter*delay.
func TestRetryDelayBackoffAndJitter(t *testing.T) {
	srv := NewServer(Config{
		Sched: simnet.NewScheduler(), Transport: newFakeTransport(nil, 0),
		ResyncDelay: 100 * time.Millisecond, ResyncMax: 800 * time.Millisecond,
	})
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, 800 * time.Millisecond,
	}
	for i, w := range want {
		if got := srv.retryDelay(&subscriber{name: "s1", attempts: i + 1}); got != w {
			t.Fatalf("attempt %d delay = %v, want %v", i+1, got, w)
		}
	}

	srv.cfg.ResyncJitter = 0.5
	seen := make(map[time.Duration]bool)
	for _, name := range []string{"s1", "s2", "s3"} {
		sub := &subscriber{name: name, attempts: 2}
		d1 := srv.retryDelay(sub)
		d2 := srv.retryDelay(sub)
		if d1 != d2 {
			t.Fatalf("%s jittered delay not deterministic: %v then %v", name, d1, d2)
		}
		if d1 < 200*time.Millisecond || d1 >= 300*time.Millisecond {
			t.Fatalf("%s attempt-2 delay %v outside [200ms, 300ms)", name, d1)
		}
		seen[d1] = true
	}
	if len(seen) < 2 {
		t.Fatalf("per-subscriber jitter did not spread the fleet: %v", seen)
	}
}

// Under MaxInflightPushes, admission is oldest-lag-first with the
// subscription index breaking ties — not queue order.
func TestAdmitPrefersOldestLag(t *testing.T) {
	sched := simnet.NewScheduler()
	tr := newFakeTransport(sched, 10*time.Millisecond)
	var order []string
	srv := NewServer(Config{
		Sched: sched, Transport: orderedTransport{tr, &order},
		Debounce: 50 * time.Millisecond, FullState: true, MaxInflightPushes: 1,
	})
	subscribe(tr, srv, "a")
	subscribe(tr, srv, "b")
	subscribe(tr, srv, "c")
	srv.SetResource("r", 1, 100) // arms the flush
	// Skew the acknowledged versions before the flush fires: b is three
	// versions behind, a and c one.
	srv.version = 4
	srv.subs["a"].version = 3
	srv.subs["b"].version = 1
	srv.subs["c"].version = 3
	sched.RunFor(time.Second)

	if len(order) != 3 || order[0] != "b" || order[1] != "a" || order[2] != "c" {
		t.Fatalf("admission order = %v, want [b a c] (oldest lag, then index)", order)
	}
	if st := srv.Stats(); st.PeakInflight != 1 {
		t.Fatalf("peak inflight = %d, want 1 under the cap", st.PeakInflight)
	}
}

// MaxConcurrentResyncs bounds concurrent full resyncs, and the lease
// reclaims the slot from a subscriber whose resync wedges so waiters
// are not starved.
func TestResyncAdmissionCapAndLease(t *testing.T) {
	sched := simnet.NewScheduler()
	tr := newFakeTransport(sched, 10*time.Millisecond)
	srv := NewServer(Config{
		Sched: sched, Transport: tr, Debounce: 50 * time.Millisecond,
		ResyncDelay:          100 * time.Millisecond,
		MaxConcurrentResyncs: 1, ResyncLease: time.Second,
	})
	srv.SetResource("a", "a1", 100)
	subscribe(tr, srv, "s1")
	s2 := subscribe(tr, srv, "s2")

	tr.down["s1"] = true
	tr.down["s2"] = true
	srv.SetResource("a", "a2", 100)
	sched.RunFor(300 * time.Millisecond) // deltas time out; s1 grabs the one slot
	tr.down["s2"] = false

	// s2 is healthy but waits: s1 holds the only resync slot through its
	// endless retries.
	sched.RunFor(800 * time.Millisecond) // t=1.1s, lease expires at ~1.16s
	if srv.Current("s2") {
		t.Fatal("s2 resynced while s1 held the only admission slot")
	}
	// Lease expiry reclaims s1's slot; s2 is admitted and completes.
	sched.RunFor(400 * time.Millisecond)
	if !srv.Current("s2") || s2.Get("a") != "a2" {
		t.Fatalf("s2 not resynced after lease reclaim: a=%v", s2.Get("a"))
	}
	if srv.Current("s1") {
		t.Fatal("s1 synced while still partitioned")
	}

	tr.down["s1"] = false
	sched.RunFor(2 * time.Second)
	if srv.UnsyncedCount() != 0 {
		t.Fatalf("unsynced = %d after s1 healed, want 0", srv.UnsyncedCount())
	}
	st := srv.Stats()
	if st.PeakResyncs != 1 {
		t.Fatalf("peak concurrent resyncs = %d, want 1 (the cap)", st.PeakResyncs)
	}
	if st.Resyncs < 2 || st.ResyncBytes == 0 {
		t.Fatalf("stats = %+v, want >=2 resyncs with bytes", st)
	}
}

// Re-subscribing an existing name replaces the registration (the
// restart path) instead of panicking: the old in-flight callback is
// ignored and pushes flow to the new registration.
func TestResubscribeReplacesRegistration(t *testing.T) {
	sched, tr, srv := newTestServer(t, false)
	srv.SetResource("a", "a1", 100)
	subscribe(tr, srv, "s1")

	srv.SetResource("a", "a2", 100)
	sched.RunFor(55 * time.Millisecond) // delta in flight to the old registration
	snap2 := subscribe(tr, srv, "s1")   // the restarted proxy rejoins
	if snap2.Get("a") != "a2" || len(srv.subOrder) != 1 {
		t.Fatalf("re-subscribe bootstrap: a=%v, %d registrations", snap2.Get("a"), len(srv.subOrder))
	}
	sched.RunFor(time.Second)
	if st := srv.Stats(); st.Acks != 0 {
		t.Fatalf("the dead registration's ack was counted: %+v", st)
	}

	srv.SetResource("b", "b1", 100)
	sched.RunFor(time.Second)
	if snap2.Get("b") != "b1" || !srv.Current("s1") {
		t.Fatalf("new registration not receiving pushes: b=%v", snap2.Get("b"))
	}
	if st := srv.Stats(); st.Acks != 1 {
		t.Fatalf("stats = %+v, want exactly the new registration's ack", st)
	}

	srv.Unsubscribe("s1")
	srv.Unsubscribe("s1") // unknown name: no-op
	before := len(tr.pushes)
	srv.SetResource("c", "c1", 100)
	sched.RunFor(time.Second)
	if len(tr.pushes) != before {
		t.Fatalf("push sent to an unsubscribed name")
	}
}
