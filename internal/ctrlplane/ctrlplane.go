// Package ctrlplane models xDS-style configuration distribution as
// simulated traffic instead of shared-memory magic. A Server holds
// versioned per-service resources (endpoints, routes, policies) and
// pushes them to subscribed sidecars through a pluggable Transport:
// changes are debounced into batches, encoded as incremental deltas
// against each subscriber's last acknowledged version (or as full
// state-of-the-world updates), and retried with a full resync after a
// NACK or a lost connection — the ADS/delta-xDS state machine in
// miniature. Because updates travel over the simulated network, every
// subscriber routes on its own possibly-stale snapshot, and the
// staleness window (change staged -> change acknowledged) is a
// measurable property, exposed via ctrlplane_* metrics.
//
// The package depends only on the scheduler and the metrics registry;
// the mesh supplies resource contents and the HTTP transport.
package ctrlplane

import (
	"errors"
	"sort"
	"time"

	"meshlayer/internal/metrics"
	"meshlayer/internal/simnet"
)

// ErrPushTimeout is reported by transports when a push saw no reply
// within the push timeout (the connection is presumed lost).
var ErrPushTimeout = errors.New("ctrlplane: push timed out")

// Resource is one named versioned configuration blob — in the mesh,
// everything a sidecar needs to route calls to one service.
type Resource struct {
	Name string
	// Version is the server version at which the resource last changed.
	Version uint64
	// Bytes estimates the encoded size on the wire.
	Bytes int
	// ChangedAt is the virtual time of the last change (staleness base).
	ChangedAt time.Duration
	// Data is the opaque payload the subscriber snapshots.
	Data any
}

// Update is one push: either the full state of the world or the delta
// between the subscriber's acknowledged version and Version.
type Update struct {
	// Full marks a state-of-the-world update; deltas carry BaseVersion,
	// the subscriber version they apply on top of.
	Full        bool
	BaseVersion uint64
	// Version is the server version the update brings the subscriber to.
	Version uint64
	// Resources is sorted by name; Removed lists deleted resource names.
	Resources []Resource
	Removed   []string
	// WireBytes is the simulated encoded size.
	WireBytes int
}

// Transport delivers updates to subscribers. Push must eventually call
// done exactly once: ack=true for an acknowledged apply, ack=false with
// nil err for a NACK (delta did not apply), non-nil err for a lost or
// timed-out connection. The mesh's transport sends real simulated HTTP
// to each sidecar; tests script it directly.
type Transport interface {
	Push(subscriber string, u *Update, done func(ack bool, err error))
}

// Config assembles a Server.
type Config struct {
	Sched     *simnet.Scheduler
	Transport Transport
	// Metrics receives ctrlplane_* series (optional).
	Metrics *metrics.Registry
	// Debounce batches changes staged within the window into one push
	// (default 100ms).
	Debounce time.Duration
	// FullState forces state-of-the-world updates even for synced
	// subscribers (the xDS non-delta protocol variant).
	FullState bool
	// ResyncDelay is the backoff before re-pushing after a NACK or a
	// lost connection (default 500ms).
	ResyncDelay time.Duration
	// ResyncMax, when positive, turns the fixed ResyncDelay into an
	// exponential backoff: consecutive failed retries double the delay
	// from ResyncDelay up to ResyncMax. Zero keeps the fixed delay.
	ResyncMax time.Duration
	// ResyncJitter, when positive, adds up to ResyncJitter*delay of
	// deterministic per-subscriber jitter (FNV-1a over name+attempt) to
	// each retry so desynced subscribers do not stampede back at the
	// same virtual instant. Zero means no jitter.
	ResyncJitter float64
	// MaxInflightPushes caps updates concurrently handed to the
	// transport; excess subscribers queue and are admitted
	// oldest-lag-first as pushes settle. Zero means unlimited (every
	// flush fans out in one pass).
	MaxInflightPushes int
	// MaxConcurrentResyncs caps subscribers concurrently performing a
	// full resync: the rest wait in FIFO order for an admission slot.
	// Zero means unlimited.
	MaxConcurrentResyncs int
	// ResyncLease bounds how long one subscriber may hold a resync
	// admission slot; a stuck resync is sent to the back of the queue
	// when the lease expires (default 10s; used only when
	// MaxConcurrentResyncs > 0).
	ResyncLease time.Duration
	// OnSynced, when set, fires each time a subscriber catches up to the
	// current server version through the push path (ack or empty-delta
	// fast-forward). The mesh uses it to gate pod readiness on config
	// sync. The initial Subscribe bootstrap does not fire it.
	OnSynced func(subscriber string)
}

// Stats aggregates one server's distribution activity.
type Stats struct {
	// DeltaPushes and FullPushes count updates handed to the transport.
	DeltaPushes, FullPushes uint64
	// WireBytes sums the simulated encoded size of every push.
	WireBytes uint64
	// Acks, Nacks, and Timeouts count push outcomes.
	Acks, Nacks, Timeouts uint64
	// Resyncs counts full updates sent to recover a desynced subscriber
	// (after its initial sync); ResyncBytes sums their wire size.
	Resyncs     uint64
	ResyncBytes uint64
	// MaxLag is the widest server-to-subscriber version gap observed at
	// any flush, desync, or ack.
	MaxLag uint64
	// Crashes counts Crash calls (server process deaths).
	Crashes uint64
	// PeakInflight and PeakResyncs are high-water marks for pushes
	// concurrently in the transport and subscribers concurrently
	// holding a resync admission slot.
	PeakInflight, PeakResyncs int
}

// Pushes returns the total update count.
func (s Stats) Pushes() uint64 { return s.DeltaPushes + s.FullPushes }

type subscriber struct {
	name string
	// idx is the subscription sequence number (stable priority tiebreak).
	idx int
	// gen guards callbacks captured before an Unsubscribe: a done or
	// timer closure from a previous registration must not touch the
	// replacement subscriber's state.
	gen uint64
	// version is the last acknowledged server version.
	version uint64
	// synced is false until the first ack and after any NACK or lost
	// connection; the next update is then a full resync.
	synced   bool
	inflight bool
	// retryArmed marks a pending resync backoff timer; attempts counts
	// consecutive failures since the last ack (the backoff exponent).
	retryArmed bool
	retryTimer simnet.Timer
	attempts   int
	// queued marks membership in pushQ; resyncWait membership in
	// resyncQ; resyncHeld a held resync admission slot (leaseTimer
	// reclaims it if the resync wedges).
	queued     bool
	resyncWait bool
	resyncHeld bool
	leaseTimer simnet.Timer
}

// Server is the distribution side of the simulated control plane.
type Server struct {
	cfg       Config
	version   uint64
	resources map[string]*Resource
	resOrder  []string
	// removed maps tombstoned resource names to their removal version.
	removed map[string]uint64
	subs    map[string]*subscriber
	// subOrder fixes push order to subscription order (determinism).
	subOrder   []string
	nextIdx    int
	hold       time.Duration
	flushArmed bool
	flushTimer simnet.Timer
	// epoch increments on every Crash; down marks a crashed process.
	// Push done-callbacks capture the epoch they were sent under and
	// are ignored if the server died in between.
	epoch uint64
	down  bool
	// pushQ holds subscribers awaiting a transport slot; resyncQ holds
	// unsynced subscribers awaiting a resync admission slot (FIFO).
	pushQ     []*subscriber
	resyncQ   []*subscriber
	inflightN int
	resyncN   int
	// fullCache shares one state-of-the-world Update per version across
	// subscribers (resync waves would otherwise copy the whole resource
	// set once per subscriber).
	fullCache *Update
	stats     Stats
}

// NewServer validates cfg and returns an empty server.
func NewServer(cfg Config) *Server {
	if cfg.Sched == nil || cfg.Transport == nil {
		panic("ctrlplane: Sched and Transport required")
	}
	if cfg.Debounce <= 0 {
		cfg.Debounce = 100 * time.Millisecond
	}
	if cfg.ResyncDelay <= 0 {
		cfg.ResyncDelay = 500 * time.Millisecond
	}
	if cfg.ResyncLease <= 0 {
		cfg.ResyncLease = 10 * time.Second
	}
	return &Server{
		cfg:       cfg,
		resources: make(map[string]*Resource),
		removed:   make(map[string]uint64),
		subs:      make(map[string]*subscriber),
	}
}

// Version returns the current server version.
func (s *Server) Version() uint64 { return s.version }

// Stats snapshots distribution counters.
func (s *Server) Stats() Stats { return s.stats }

// Subscribe registers a sidecar and returns its bootstrap update: the
// current full state, which the caller applies synchronously (a proxy
// blocks on its initial xDS fetch before serving). Later changes
// arrive as debounced pushes. Re-subscribing an existing name replaces
// the old registration — a chaos-restarted pod rejoining — dropping
// its pending retries, queue entries, and in-flight callbacks. While
// the server is down, Subscribe registers the name but returns nil (no
// bootstrap is available); the caller keeps routing on whatever
// snapshot it has and is full-resynced after Recover.
func (s *Server) Subscribe(name string) *Update {
	if old := s.subs[name]; old != nil {
		s.Unsubscribe(name)
	}
	sub := &subscriber{name: name, idx: s.nextIdx}
	s.nextIdx++
	s.subs[name] = sub
	s.subOrder = append(s.subOrder, name)
	if s.down {
		s.sampleLag(sub)
		return nil
	}
	sub.version = s.version
	sub.synced = true
	s.setLagGauge(sub)
	return s.fullUpdate()
}

// Unsubscribe removes a subscriber: pending retry and lease timers are
// cancelled, queued pushes dropped, held slots released, and any
// in-flight done callback ignored. Unknown names are a no-op.
func (s *Server) Unsubscribe(name string) {
	sub := s.subs[name]
	if sub == nil {
		return
	}
	sub.gen++ // in-flight done and timer closures check this and bail
	sub.retryTimer.Cancel()
	sub.leaseTimer.Cancel()
	sub.retryArmed = false
	sub.queued = false // lazily skipped when popped from pushQ
	sub.resyncWait = false
	if sub.inflight {
		sub.inflight = false
		s.inflightN--
	}
	if sub.resyncHeld {
		sub.resyncHeld = false
		s.resyncN--
	}
	delete(s.subs, name)
	for i, n := range s.subOrder {
		if n == name {
			s.subOrder = append(s.subOrder[:i], s.subOrder[i+1:]...)
			break
		}
	}
	if !s.down {
		s.admitResyncs()
	}
}

// SubscriberVersion returns a subscriber's last acknowledged version.
func (s *Server) SubscriberVersion(name string) uint64 {
	if sub := s.subs[name]; sub != nil {
		return sub.version
	}
	return 0
}

// Current reports whether the named subscriber exists, is synced, and
// has acknowledged the current server version.
func (s *Server) Current(name string) bool {
	sub := s.subs[name]
	return sub != nil && sub.synced && sub.version == s.version
}

// SetResource stages a create-or-replace at a new server version and
// arms the debounced flush.
func (s *Server) SetResource(name string, data any, bytes int) {
	s.version++
	res := s.resources[name]
	if res == nil {
		res = &Resource{Name: name}
		s.resources[name] = res
		s.resOrder = append(s.resOrder, name)
		sort.Strings(s.resOrder)
		delete(s.removed, name)
	}
	res.Version = s.version
	res.Bytes = bytes
	res.ChangedAt = s.cfg.Sched.Now()
	res.Data = data
	s.stage()
}

// RemoveResource stages a deletion (tombstoned so deltas can carry it).
func (s *Server) RemoveResource(name string) {
	if s.resources[name] == nil {
		return
	}
	s.version++
	delete(s.resources, name)
	for i, n := range s.resOrder {
		if n == name {
			s.resOrder = append(s.resOrder[:i], s.resOrder[i+1:]...)
			break
		}
	}
	s.removed[name] = s.version
	s.stage()
}

// SetHold adds d to every flush delay — chaos push suppression: staged
// changes keep accumulating but reach no subscriber until the hold
// lifts. Clearing the hold re-arms any suppressed flush immediately.
func (s *Server) SetHold(d time.Duration) {
	if d < 0 {
		d = 0
	}
	if d == s.hold {
		return
	}
	s.hold = d
	if s.flushArmed {
		s.flushTimer.Cancel()
		s.flushArmed = false
		s.stage()
	}
}

// Flush pushes pending state now, bypassing the debounce window.
func (s *Server) Flush() { s.flush() }

// Down reports whether the server is crashed (between Crash and
// Recover); Epoch counts completed recoveries.
func (s *Server) Down() bool    { return s.down }
func (s *Server) Epoch() uint64 { return s.epoch }

// UnsyncedCount returns how many subscribers have not completed their
// (re)sync — the convergence probe experiments poll after a crash.
func (s *Server) UnsyncedCount() int {
	n := 0
	for _, name := range s.subOrder {
		if !s.subs[name].synced {
			n++
		}
	}
	return n
}

// Crash simulates control-plane process death. The resource store and
// subscriber registrations survive (they model the config source of
// truth and the set of connected proxies, both of which outlive one
// server process), but all volatile push state is lost: pending
// flushes, retry backoffs, admission queues, and in-flight pushes —
// whose done callbacks, keyed to the old epoch, are ignored when the
// transport eventually settles them. Subscribers keep routing on their
// last acknowledged snapshots (static stability).
func (s *Server) Crash() {
	if s.down {
		return
	}
	s.down = true
	s.epoch++ // pushes sent under the old epoch settle into the void
	s.stats.Crashes++
	s.flushTimer.Cancel()
	s.flushArmed = false
	for _, name := range s.subOrder {
		sub := s.subs[name]
		sub.retryTimer.Cancel()
		sub.leaseTimer.Cancel()
		sub.retryArmed = false
		sub.inflight = false
		sub.queued = false
		sub.resyncWait = false
		sub.resyncHeld = false
		sub.attempts = 0
	}
	s.pushQ = nil
	s.resyncQ = nil
	s.inflightN = 0
	s.resyncN = 0
}

// Recover restarts a crashed server into a new epoch. Every subscriber
// is considered unsynced — its last ack belonged to the dead process —
// and must full-resync through the admission window; a flush is staged
// to start the wave after the debounce.
func (s *Server) Recover() {
	if !s.down {
		return
	}
	s.down = false
	for _, name := range s.subOrder {
		sub := s.subs[name]
		sub.synced = false
		s.sampleLag(sub)
	}
	s.stage()
}

// MaxLag returns the current widest version gap across subscribers.
func (s *Server) MaxLag() uint64 {
	var max uint64
	for _, name := range s.subOrder {
		if lag := s.version - s.subs[name].version; lag > max {
			max = lag
		}
	}
	return max
}

func (s *Server) stage() {
	if s.flushArmed || s.down {
		return
	}
	s.flushArmed = true
	s.flushTimer.Cancel() // fired or cancelled when !flushArmed; cancel before re-arm
	s.flushTimer = s.cfg.Sched.After(s.cfg.Debounce+s.hold, s.flush)
}

func (s *Server) flush() {
	s.flushArmed = false
	if s.down {
		return
	}
	for _, name := range s.subOrder {
		sub := s.subs[name]
		s.sampleLag(sub)
		s.schedulePush(sub)
	}
	s.admit()
}

// schedulePush queues sub for a push if it is behind and not already
// pending somewhere (in flight, backing off, queued, or waiting for a
// resync slot). Unsynced subscribers acquire a resync admission slot
// first when MaxConcurrentResyncs caps them. Callers follow up with
// admit().
func (s *Server) schedulePush(sub *subscriber) {
	if s.down || sub.inflight || sub.retryArmed || sub.queued || sub.resyncWait {
		return
	}
	if sub.synced && sub.version == s.version {
		return
	}
	if !sub.synced && !sub.resyncHeld && s.cfg.MaxConcurrentResyncs > 0 {
		if s.resyncN >= s.cfg.MaxConcurrentResyncs {
			sub.resyncWait = true
			s.resyncQ = append(s.resyncQ, sub)
			return
		}
		s.grantResync(sub)
	}
	sub.queued = true
	s.pushQ = append(s.pushQ, sub)
}

// admit drains pushQ into the transport up to MaxInflightPushes.
// Uncapped, admission order is queue order — flush enqueues in
// subscription order, preserving the classic fan-out. Capped, the
// oldest lag goes first (lowest subscription index breaks ties).
func (s *Server) admit() {
	for len(s.pushQ) > 0 && (s.cfg.MaxInflightPushes == 0 || s.inflightN < s.cfg.MaxInflightPushes) {
		var sub *subscriber
		if s.cfg.MaxInflightPushes == 0 {
			sub = s.pushQ[0]
			s.pushQ = s.pushQ[1:]
		} else {
			best := -1
			var bestLag uint64
			for i, cand := range s.pushQ {
				if !cand.queued {
					continue // dropped while queued (unsubscribe, lease revoke)
				}
				lag := s.version - cand.version
				if best == -1 || lag > bestLag ||
					(lag == bestLag && cand.idx < s.pushQ[best].idx) {
					best, bestLag = i, lag
				}
			}
			if best == -1 {
				s.pushQ = s.pushQ[:0]
				return
			}
			sub = s.pushQ[best]
			s.pushQ = append(s.pushQ[:best], s.pushQ[best+1:]...)
		}
		if !sub.queued {
			continue
		}
		sub.queued = false
		s.pushTo(sub)
	}
	if len(s.pushQ) == 0 && s.pushQ != nil {
		s.pushQ = nil // release the drained backing array
	}
}

// grantResync hands sub a resync admission slot and arms the lease
// that reclaims it if the resync wedges (e.g. a subscriber that stays
// partitioned through every retry).
func (s *Server) grantResync(sub *subscriber) {
	sub.resyncHeld = true
	s.resyncN++
	if s.resyncN > s.stats.PeakResyncs {
		s.stats.PeakResyncs = s.resyncN
	}
	gen := sub.gen
	sub.leaseTimer.Cancel() // fired or cancelled when !resyncHeld; cancel before re-arm
	sub.leaseTimer = s.cfg.Sched.After(s.cfg.ResyncLease, func() {
		if sub.gen != gen || !sub.resyncHeld || sub.synced {
			return
		}
		// Stuck resync: free the slot and send the subscriber to the
		// back of the admission queue. An in-flight push is left to
		// settle on its own; its failure path re-queues the subscriber.
		sub.resyncHeld = false
		s.resyncN--
		if sub.queued {
			sub.queued = false // lazily skipped in admit
		}
		if !sub.inflight && !sub.retryArmed {
			sub.resyncWait = true
			s.resyncQ = append(s.resyncQ, sub)
		}
		s.admitResyncs()
	})
}

// releaseResync returns sub's admission slot (if held) and admits the
// next waiter.
func (s *Server) releaseResync(sub *subscriber) {
	if !sub.resyncHeld {
		return
	}
	sub.resyncHeld = false
	sub.leaseTimer.Cancel()
	s.resyncN--
	s.admitResyncs()
}

// admitResyncs grants freed resync slots to the FIFO queue, then lets
// the push queue admit any newly eligible work.
func (s *Server) admitResyncs() {
	for len(s.resyncQ) > 0 && (s.cfg.MaxConcurrentResyncs == 0 || s.resyncN < s.cfg.MaxConcurrentResyncs) {
		sub := s.resyncQ[0]
		s.resyncQ = s.resyncQ[1:]
		if !sub.resyncWait {
			continue
		}
		sub.resyncWait = false
		s.schedulePush(sub)
	}
	if len(s.resyncQ) == 0 && s.resyncQ != nil {
		s.resyncQ = nil
	}
	s.admit()
}

func (s *Server) pushTo(sub *subscriber) {
	if s.down || sub.inflight || sub.retryArmed {
		return // the ack/retry path re-pushes if still behind
	}
	if sub.synced && sub.version == s.version {
		return
	}
	u := s.buildUpdate(sub)
	if u == nil { // nothing changed from this subscriber's view
		sub.version = s.version
		s.sampleLag(sub)
		if s.cfg.OnSynced != nil {
			s.cfg.OnSynced(sub.name)
		}
		return
	}
	typ := "delta"
	if u.Full {
		typ = "full"
		s.stats.FullPushes++
		if sub.version > 0 && !s.cfg.FullState {
			s.stats.Resyncs++
			s.stats.ResyncBytes += uint64(u.WireBytes)
		}
	} else {
		s.stats.DeltaPushes++
	}
	s.stats.WireBytes += uint64(u.WireBytes)
	if s.cfg.Metrics != nil {
		s.cfg.Metrics.Counter(MetricPushBytesTotal, nil).Add(uint64(u.WireBytes))
	}
	sub.inflight = true
	s.inflightN++
	if s.inflightN > s.stats.PeakInflight {
		s.stats.PeakInflight = s.inflightN
	}
	epoch, gen := s.epoch, sub.gen
	s.cfg.Transport.Push(sub.name, u, func(ack bool, err error) {
		if s.epoch != epoch || sub.gen != gen {
			return // the server crashed or the subscriber re-registered since
		}
		sub.inflight = false
		s.inflightN--
		switch {
		case err != nil:
			s.stats.Timeouts++
			s.pushResult(typ, "timeout")
			s.desync(sub)
		case !ack:
			s.stats.Nacks++
			s.pushResult(typ, "nack")
			s.desync(sub)
		default:
			s.stats.Acks++
			s.pushResult(typ, "ack")
			s.observeStaleness(u, sub.version)
			sub.version = u.Version
			sub.synced = true
			sub.attempts = 0
			s.releaseResync(sub)
			s.sampleLag(sub)
			if sub.version != s.version {
				// Changes accumulated while in flight: catch up now —
				// unless a hold is suppressing pushes, in which case the
				// catch-up rides the held flush like any staged change.
				if s.hold > 0 {
					s.stage()
				} else {
					s.schedulePush(sub)
				}
			} else if s.cfg.OnSynced != nil {
				s.cfg.OnSynced(sub.name)
			}
		}
		s.admit() // a transport slot settled; admit queued work
	})
}

// desync marks the subscriber for a full resync-on-reconnect and arms
// the backoff before retrying: fixed ResyncDelay by default, doubling
// up to ResyncMax with deterministic per-subscriber jitter when the
// storm-suppression knobs are set.
func (s *Server) desync(sub *subscriber) {
	sub.synced = false
	s.sampleLag(sub)
	if s.down || sub.retryArmed {
		return
	}
	sub.attempts++
	sub.retryArmed = true
	gen := sub.gen
	sub.retryTimer.Cancel() // fired or cancelled when !retryArmed; cancel before re-arm
	sub.retryTimer = s.cfg.Sched.After(s.retryDelay(sub), func() {
		if sub.gen != gen {
			return
		}
		sub.retryArmed = false
		s.schedulePush(sub)
		s.admit()
	})
}

// retryDelay computes the backoff for sub's next resync attempt.
func (s *Server) retryDelay(sub *subscriber) time.Duration {
	d := s.cfg.ResyncDelay
	if s.cfg.ResyncMax > 0 {
		for i := 1; i < sub.attempts && d < s.cfg.ResyncMax; i++ {
			d *= 2
		}
		if d > s.cfg.ResyncMax {
			d = s.cfg.ResyncMax
		}
	}
	if s.cfg.ResyncJitter > 0 {
		d += time.Duration(s.cfg.ResyncJitter * float64(d) * jitterFrac(sub.name, sub.attempts))
	}
	return d
}

// jitterFrac maps (subscriber, attempt) to a uniform value in [0,1)
// via FNV-1a — deterministic spread with no global randomness.
func jitterFrac(name string, attempt int) float64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	h ^= uint64(attempt)
	h *= 1099511628211
	return float64(h>>11) / float64(1<<53)
}

// sampleLag records sub's current version gap in Stats.MaxLag and the
// per-subscriber lag gauge. Called on flush, desync, and ack so lag
// built up between flushes (holds, crashes) is not under-reported.
func (s *Server) sampleLag(sub *subscriber) {
	if lag := s.version - sub.version; lag > s.stats.MaxLag {
		s.stats.MaxLag = lag
	}
	s.setLagGauge(sub)
}

// buildUpdate encodes sub's catch-up: full state for unsynced
// subscribers (or in FullState mode), otherwise the delta since its
// acknowledged version. Returns nil when the delta is empty.
func (s *Server) buildUpdate(sub *subscriber) *Update {
	if !sub.synced || s.cfg.FullState {
		return s.fullUpdate()
	}
	u := &Update{BaseVersion: sub.version, Version: s.version, WireBytes: updateHeaderBytes}
	for _, name := range s.resOrder {
		if res := s.resources[name]; res.Version > sub.version {
			u.Resources = append(u.Resources, *res)
			u.WireBytes += resourceHeaderBytes + res.Bytes
		}
	}
	removed := make([]string, 0, len(s.removed))
	for name := range s.removed {
		removed = append(removed, name)
	}
	sort.Strings(removed)
	for _, name := range removed {
		if s.removed[name] > sub.version {
			u.Removed = append(u.Removed, name)
			u.WireBytes += resourceHeaderBytes + len(name)
		}
	}
	if len(u.Resources) == 0 && len(u.Removed) == 0 {
		return nil
	}
	return u
}

// fullUpdate returns the state-of-the-world update for the current
// version. The result is shared across callers (and cached until the
// next version bump): a 10k-subscriber resync wave references one
// Update instead of 10k copies of the entire resource set. Updates are
// immutable once built — receivers only read them.
func (s *Server) fullUpdate() *Update {
	if s.fullCache != nil && s.fullCache.Version == s.version {
		return s.fullCache
	}
	u := &Update{Full: true, Version: s.version, WireBytes: updateHeaderBytes}
	for _, name := range s.resOrder {
		res := s.resources[name]
		u.Resources = append(u.Resources, *res)
		u.WireBytes += resourceHeaderBytes + res.Bytes
	}
	s.fullCache = u
	return u
}

// Simulated encoding overheads (protobuf-ish framing).
const (
	updateHeaderBytes   = 64
	resourceHeaderBytes = 24
)

// Metric families (meshvet's metricdecl: names are constants, declared
// once; MetricStalenessSeconds is also read by the experiment tables).
const (
	MetricPushTotal        = "ctrlplane_push_total"
	MetricPushBytesTotal   = "ctrlplane_push_bytes_total"
	MetricStalenessSeconds = "ctrlplane_staleness_seconds"
	MetricVersionLag       = "ctrlplane_version_lag"
)

func (s *Server) pushResult(typ, result string) {
	if s.cfg.Metrics == nil {
		return
	}
	s.cfg.Metrics.Counter(MetricPushTotal, metrics.Labels{"type": typ, "result": result}).Inc()
}

// observeStaleness records, per acknowledged resource the subscriber
// had not seen before (version > its pre-apply base), how long the
// change was in flight: stage time -> ack time. This is the window
// during which the subscriber routed on the old state. Resources a
// full-state push merely re-delivers are excluded — the subscriber was
// not stale on those.
func (s *Server) observeStaleness(u *Update, base uint64) {
	if s.cfg.Metrics == nil {
		return
	}
	now := s.cfg.Sched.Now()
	for i := range u.Resources {
		if u.Resources[i].Version <= base {
			continue
		}
		s.cfg.Metrics.ObserveDuration(MetricStalenessSeconds, nil, now-u.Resources[i].ChangedAt)
	}
}

func (s *Server) setLagGauge(sub *subscriber) {
	if s.cfg.Metrics == nil {
		return
	}
	s.cfg.Metrics.Gauge(MetricVersionLag, metrics.Labels{"subscriber": sub.name}).
		Set(float64(s.version - sub.version))
}
