// Package ctrlplane models xDS-style configuration distribution as
// simulated traffic instead of shared-memory magic. A Server holds
// versioned per-service resources (endpoints, routes, policies) and
// pushes them to subscribed sidecars through a pluggable Transport:
// changes are debounced into batches, encoded as incremental deltas
// against each subscriber's last acknowledged version (or as full
// state-of-the-world updates), and retried with a full resync after a
// NACK or a lost connection — the ADS/delta-xDS state machine in
// miniature. Because updates travel over the simulated network, every
// subscriber routes on its own possibly-stale snapshot, and the
// staleness window (change staged -> change acknowledged) is a
// measurable property, exposed via ctrlplane_* metrics.
//
// The package depends only on the scheduler and the metrics registry;
// the mesh supplies resource contents and the HTTP transport.
package ctrlplane

import (
	"errors"
	"sort"
	"time"

	"meshlayer/internal/metrics"
	"meshlayer/internal/simnet"
)

// ErrPushTimeout is reported by transports when a push saw no reply
// within the push timeout (the connection is presumed lost).
var ErrPushTimeout = errors.New("ctrlplane: push timed out")

// Resource is one named versioned configuration blob — in the mesh,
// everything a sidecar needs to route calls to one service.
type Resource struct {
	Name string
	// Version is the server version at which the resource last changed.
	Version uint64
	// Bytes estimates the encoded size on the wire.
	Bytes int
	// ChangedAt is the virtual time of the last change (staleness base).
	ChangedAt time.Duration
	// Data is the opaque payload the subscriber snapshots.
	Data any
}

// Update is one push: either the full state of the world or the delta
// between the subscriber's acknowledged version and Version.
type Update struct {
	// Full marks a state-of-the-world update; deltas carry BaseVersion,
	// the subscriber version they apply on top of.
	Full        bool
	BaseVersion uint64
	// Version is the server version the update brings the subscriber to.
	Version uint64
	// Resources is sorted by name; Removed lists deleted resource names.
	Resources []Resource
	Removed   []string
	// WireBytes is the simulated encoded size.
	WireBytes int
}

// Transport delivers updates to subscribers. Push must eventually call
// done exactly once: ack=true for an acknowledged apply, ack=false with
// nil err for a NACK (delta did not apply), non-nil err for a lost or
// timed-out connection. The mesh's transport sends real simulated HTTP
// to each sidecar; tests script it directly.
type Transport interface {
	Push(subscriber string, u *Update, done func(ack bool, err error))
}

// Config assembles a Server.
type Config struct {
	Sched     *simnet.Scheduler
	Transport Transport
	// Metrics receives ctrlplane_* series (optional).
	Metrics *metrics.Registry
	// Debounce batches changes staged within the window into one push
	// (default 100ms).
	Debounce time.Duration
	// FullState forces state-of-the-world updates even for synced
	// subscribers (the xDS non-delta protocol variant).
	FullState bool
	// ResyncDelay is the backoff before re-pushing after a NACK or a
	// lost connection (default 500ms).
	ResyncDelay time.Duration
	// OnSynced, when set, fires each time a subscriber catches up to the
	// current server version through the push path (ack or empty-delta
	// fast-forward). The mesh uses it to gate pod readiness on config
	// sync. The initial Subscribe bootstrap does not fire it.
	OnSynced func(subscriber string)
}

// Stats aggregates one server's distribution activity.
type Stats struct {
	// DeltaPushes and FullPushes count updates handed to the transport.
	DeltaPushes, FullPushes uint64
	// WireBytes sums the simulated encoded size of every push.
	WireBytes uint64
	// Acks, Nacks, and Timeouts count push outcomes.
	Acks, Nacks, Timeouts uint64
	// Resyncs counts full updates sent to recover a desynced subscriber
	// (after its initial sync).
	Resyncs uint64
	// MaxLag is the widest server-to-subscriber version gap observed at
	// any flush.
	MaxLag uint64
}

// Pushes returns the total update count.
func (s Stats) Pushes() uint64 { return s.DeltaPushes + s.FullPushes }

type subscriber struct {
	name string
	// version is the last acknowledged server version.
	version uint64
	// synced is false until the first ack and after any NACK or lost
	// connection; the next update is then a full resync.
	synced   bool
	inflight bool
	// retryArmed marks a pending resync backoff timer.
	retryArmed bool
}

// Server is the distribution side of the simulated control plane.
type Server struct {
	cfg       Config
	version   uint64
	resources map[string]*Resource
	resOrder  []string
	// removed maps tombstoned resource names to their removal version.
	removed map[string]uint64
	subs    map[string]*subscriber
	// subOrder fixes push order to subscription order (determinism).
	subOrder   []string
	hold       time.Duration
	flushArmed bool
	flushTimer simnet.Timer
	stats      Stats
}

// NewServer validates cfg and returns an empty server.
func NewServer(cfg Config) *Server {
	if cfg.Sched == nil || cfg.Transport == nil {
		panic("ctrlplane: Sched and Transport required")
	}
	if cfg.Debounce <= 0 {
		cfg.Debounce = 100 * time.Millisecond
	}
	if cfg.ResyncDelay <= 0 {
		cfg.ResyncDelay = 500 * time.Millisecond
	}
	return &Server{
		cfg:       cfg,
		resources: make(map[string]*Resource),
		removed:   make(map[string]uint64),
		subs:      make(map[string]*subscriber),
	}
}

// Version returns the current server version.
func (s *Server) Version() uint64 { return s.version }

// Stats snapshots distribution counters.
func (s *Server) Stats() Stats { return s.stats }

// Subscribe registers a sidecar and returns its bootstrap update: the
// current full state, which the caller applies synchronously (a proxy
// blocks on its initial xDS fetch before serving). Later changes
// arrive as debounced pushes.
func (s *Server) Subscribe(name string) *Update {
	if _, dup := s.subs[name]; dup {
		panic("ctrlplane: duplicate subscriber " + name)
	}
	sub := &subscriber{name: name, version: s.version, synced: true}
	s.subs[name] = sub
	s.subOrder = append(s.subOrder, name)
	s.setLagGauge(sub)
	return s.fullUpdate()
}

// SubscriberVersion returns a subscriber's last acknowledged version.
func (s *Server) SubscriberVersion(name string) uint64 {
	if sub := s.subs[name]; sub != nil {
		return sub.version
	}
	return 0
}

// Current reports whether the named subscriber exists, is synced, and
// has acknowledged the current server version.
func (s *Server) Current(name string) bool {
	sub := s.subs[name]
	return sub != nil && sub.synced && sub.version == s.version
}

// SetResource stages a create-or-replace at a new server version and
// arms the debounced flush.
func (s *Server) SetResource(name string, data any, bytes int) {
	s.version++
	res := s.resources[name]
	if res == nil {
		res = &Resource{Name: name}
		s.resources[name] = res
		s.resOrder = append(s.resOrder, name)
		sort.Strings(s.resOrder)
		delete(s.removed, name)
	}
	res.Version = s.version
	res.Bytes = bytes
	res.ChangedAt = s.cfg.Sched.Now()
	res.Data = data
	s.stage()
}

// RemoveResource stages a deletion (tombstoned so deltas can carry it).
func (s *Server) RemoveResource(name string) {
	if s.resources[name] == nil {
		return
	}
	s.version++
	delete(s.resources, name)
	for i, n := range s.resOrder {
		if n == name {
			s.resOrder = append(s.resOrder[:i], s.resOrder[i+1:]...)
			break
		}
	}
	s.removed[name] = s.version
	s.stage()
}

// SetHold adds d to every flush delay — chaos push suppression: staged
// changes keep accumulating but reach no subscriber until the hold
// lifts. Clearing the hold re-arms any suppressed flush immediately.
func (s *Server) SetHold(d time.Duration) {
	if d < 0 {
		d = 0
	}
	if d == s.hold {
		return
	}
	s.hold = d
	if s.flushArmed {
		s.flushTimer.Cancel()
		s.flushArmed = false
		s.stage()
	}
}

// Flush pushes pending state now, bypassing the debounce window.
func (s *Server) Flush() { s.flush() }

// MaxLag returns the current widest version gap across subscribers.
func (s *Server) MaxLag() uint64 {
	var max uint64
	for _, name := range s.subOrder {
		if lag := s.version - s.subs[name].version; lag > max {
			max = lag
		}
	}
	return max
}

func (s *Server) stage() {
	if s.flushArmed {
		return
	}
	s.flushArmed = true
	s.flushTimer.Cancel() // fired or cancelled when !flushArmed; cancel before re-arm
	s.flushTimer = s.cfg.Sched.After(s.cfg.Debounce+s.hold, s.flush)
}

func (s *Server) flush() {
	s.flushArmed = false
	for _, name := range s.subOrder {
		sub := s.subs[name]
		if lag := s.version - sub.version; lag > s.stats.MaxLag {
			s.stats.MaxLag = lag
		}
		s.pushTo(sub)
	}
}

func (s *Server) pushTo(sub *subscriber) {
	if sub.inflight || sub.retryArmed {
		return // the ack/retry path re-pushes if still behind
	}
	if sub.synced && sub.version == s.version {
		return
	}
	u := s.buildUpdate(sub)
	if u == nil { // nothing changed from this subscriber's view
		sub.version = s.version
		s.setLagGauge(sub)
		if s.cfg.OnSynced != nil {
			s.cfg.OnSynced(sub.name)
		}
		return
	}
	typ := "delta"
	if u.Full {
		typ = "full"
		s.stats.FullPushes++
		if sub.version > 0 && !s.cfg.FullState {
			s.stats.Resyncs++
		}
	} else {
		s.stats.DeltaPushes++
	}
	s.stats.WireBytes += uint64(u.WireBytes)
	if s.cfg.Metrics != nil {
		s.cfg.Metrics.Counter(MetricPushBytesTotal, nil).Add(uint64(u.WireBytes))
	}
	sub.inflight = true
	s.cfg.Transport.Push(sub.name, u, func(ack bool, err error) {
		sub.inflight = false
		switch {
		case err != nil:
			s.stats.Timeouts++
			s.pushResult(typ, "timeout")
			s.desync(sub)
		case !ack:
			s.stats.Nacks++
			s.pushResult(typ, "nack")
			s.desync(sub)
		default:
			s.stats.Acks++
			s.pushResult(typ, "ack")
			s.observeStaleness(u, sub.version)
			sub.version = u.Version
			sub.synced = true
			s.setLagGauge(sub)
			if sub.version != s.version {
				s.pushTo(sub) // changes accumulated while in flight
			} else if s.cfg.OnSynced != nil {
				s.cfg.OnSynced(sub.name)
			}
		}
	})
}

// desync marks the subscriber for a full resync-on-reconnect and arms
// the backoff before retrying.
func (s *Server) desync(sub *subscriber) {
	sub.synced = false
	if sub.retryArmed {
		return
	}
	sub.retryArmed = true
	s.cfg.Sched.After(s.cfg.ResyncDelay, func() {
		sub.retryArmed = false
		s.pushTo(sub)
	})
}

// buildUpdate encodes sub's catch-up: full state for unsynced
// subscribers (or in FullState mode), otherwise the delta since its
// acknowledged version. Returns nil when the delta is empty.
func (s *Server) buildUpdate(sub *subscriber) *Update {
	if !sub.synced || s.cfg.FullState {
		return s.fullUpdate()
	}
	u := &Update{BaseVersion: sub.version, Version: s.version, WireBytes: updateHeaderBytes}
	for _, name := range s.resOrder {
		if res := s.resources[name]; res.Version > sub.version {
			u.Resources = append(u.Resources, *res)
			u.WireBytes += resourceHeaderBytes + res.Bytes
		}
	}
	removed := make([]string, 0, len(s.removed))
	for name := range s.removed {
		removed = append(removed, name)
	}
	sort.Strings(removed)
	for _, name := range removed {
		if s.removed[name] > sub.version {
			u.Removed = append(u.Removed, name)
			u.WireBytes += resourceHeaderBytes + len(name)
		}
	}
	if len(u.Resources) == 0 && len(u.Removed) == 0 {
		return nil
	}
	return u
}

func (s *Server) fullUpdate() *Update {
	u := &Update{Full: true, Version: s.version, WireBytes: updateHeaderBytes}
	for _, name := range s.resOrder {
		res := s.resources[name]
		u.Resources = append(u.Resources, *res)
		u.WireBytes += resourceHeaderBytes + res.Bytes
	}
	return u
}

// Simulated encoding overheads (protobuf-ish framing).
const (
	updateHeaderBytes   = 64
	resourceHeaderBytes = 24
)

// Metric families (meshvet's metricdecl: names are constants, declared
// once; MetricStalenessSeconds is also read by the experiment tables).
const (
	MetricPushTotal        = "ctrlplane_push_total"
	MetricPushBytesTotal   = "ctrlplane_push_bytes_total"
	MetricStalenessSeconds = "ctrlplane_staleness_seconds"
	MetricVersionLag       = "ctrlplane_version_lag"
)

func (s *Server) pushResult(typ, result string) {
	if s.cfg.Metrics == nil {
		return
	}
	s.cfg.Metrics.Counter(MetricPushTotal, metrics.Labels{"type": typ, "result": result}).Inc()
}

// observeStaleness records, per acknowledged resource the subscriber
// had not seen before (version > its pre-apply base), how long the
// change was in flight: stage time -> ack time. This is the window
// during which the subscriber routed on the old state. Resources a
// full-state push merely re-delivers are excluded — the subscriber was
// not stale on those.
func (s *Server) observeStaleness(u *Update, base uint64) {
	if s.cfg.Metrics == nil {
		return
	}
	now := s.cfg.Sched.Now()
	for i := range u.Resources {
		if u.Resources[i].Version <= base {
			continue
		}
		s.cfg.Metrics.ObserveDuration(MetricStalenessSeconds, nil, now-u.Resources[i].ChangedAt)
	}
}

func (s *Server) setLagGauge(sub *subscriber) {
	if s.cfg.Metrics == nil {
		return
	}
	s.cfg.Metrics.Gauge(MetricVersionLag, metrics.Labels{"subscriber": sub.name}).
		Set(float64(s.version - sub.version))
}
