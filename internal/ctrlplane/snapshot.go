package ctrlplane

// Snapshot is a subscriber's local copy of the distributed state — the
// possibly-stale view a sidecar routes on. Apply is the client half of
// the delta protocol: a delta whose BaseVersion does not match the
// snapshot's version cannot be applied soundly and must be NACKed,
// which makes the server fall back to a full resync.
type Snapshot struct {
	Version   uint64
	Resources map[string]any
}

// NewSnapshot returns an empty snapshot at version 0.
func NewSnapshot() *Snapshot {
	return &Snapshot{Resources: make(map[string]any)}
}

// Apply installs an update. It reports false (NACK) when a delta's
// base version does not match the snapshot; the snapshot is then
// unchanged.
func (s *Snapshot) Apply(u *Update) bool {
	if u.Full {
		s.Resources = make(map[string]any, len(u.Resources))
		for i := range u.Resources {
			s.Resources[u.Resources[i].Name] = u.Resources[i].Data
		}
		s.Version = u.Version
		return true
	}
	if u.BaseVersion != s.Version {
		return false
	}
	for i := range u.Resources {
		s.Resources[u.Resources[i].Name] = u.Resources[i].Data
	}
	for _, name := range u.Removed {
		delete(s.Resources, name)
	}
	s.Version = u.Version
	return true
}

// Get returns the resource payload, or nil when absent.
func (s *Snapshot) Get(name string) any { return s.Resources[name] }
