package app

import (
	"strings"
	"testing"
	"time"

	"meshlayer/internal/httpsim"
	"meshlayer/internal/trace"
)

func TestDAGValidate(t *testing.T) {
	cases := map[string]DAGSpec{
		"empty":        {},
		"no entry":     {Services: []ServiceSpec{{Name: "a"}}, Entry: "b"},
		"unnamed":      {Services: []ServiceSpec{{}}, Entry: ""},
		"duplicate":    {Services: []ServiceSpec{{Name: "a"}, {Name: "a"}}, Entry: "a"},
		"unknown call": {Services: []ServiceSpec{{Name: "a", Calls: []string{"zz"}}}, Entry: "a"},
		"self cycle":   {Services: []ServiceSpec{{Name: "a", Calls: []string{"a"}}}, Entry: "a"},
		"longer cycle": {Services: []ServiceSpec{
			{Name: "a", Calls: []string{"b"}},
			{Name: "b", Calls: []string{"c"}},
			{Name: "c", Calls: []string{"a"}},
		}, Entry: "a"},
	}
	for name, spec := range cases {
		if err := spec.Validate(); err == nil {
			t.Fatalf("%s: invalid spec accepted", name)
		}
	}
	if err := SocialNetworkSpec().Validate(); err != nil {
		t.Fatalf("social spec invalid: %v", err)
	}
}

func TestDAGBuildRejectsBadSpec(t *testing.T) {
	if _, err := BuildDAG(DAGSpec{}); err == nil {
		t.Fatal("bad spec built")
	}
}

func TestSocialNetworkEndToEnd(t *testing.T) {
	d, err := BuildDAG(SocialNetworkSpec())
	if err != nil {
		t.Fatal(err)
	}
	var got *httpsim.Response
	var lat time.Duration
	start := d.Sched.Now()
	d.Gateway.Serve(d.NewDAGRequest(), func(r *httpsim.Response, err error) {
		if err != nil {
			t.Fatal(err)
		}
		got = r
		lat = d.Sched.Now() - start
	})
	d.Sched.Run()
	if got == nil || got.Status != httpsim.StatusOK {
		t.Fatalf("response = %+v", got)
	}
	if lat == 0 || lat > 100*time.Millisecond {
		t.Fatalf("latency = %v", lat)
	}
	// All 13 services participate in the trace.
	ids := d.Mesh.Tracer().TraceIDs()
	tree := d.Mesh.Tracer().Tree(ids[0])
	seen := map[string]bool{}
	tree.Walk(func(n *trace.TreeNode, _ int) { seen[n.Span.Service] = true })
	for _, svc := range []string{"compose", "home-timeline", "graph-db", "post-db", "url-shorten", "media"} {
		if !seen[svc] {
			t.Fatalf("service %s missing from trace:\n%s", svc, tree.Format())
		}
	}
	// The deepest chain (compose -> home-timeline -> social-graph ->
	// graph-cache -> graph-db) gives 1 + 2*5 span levels.
	if tree.Depth() != 11 {
		t.Fatalf("trace depth = %d, want 11", tree.Depth())
	}
}

func TestDAGCriticalPathDecomposes(t *testing.T) {
	d, err := BuildDAG(SocialNetworkSpec())
	if err != nil {
		t.Fatal(err)
	}
	d.Gateway.Serve(d.NewDAGRequest(), func(*httpsim.Response, error) {})
	d.Sched.Run()
	ids := d.Mesh.Tracer().TraceIDs()
	tree := d.Mesh.Tracer().Tree(ids[0])
	steps := trace.CriticalPath(tree)
	if len(steps) < 5 {
		t.Fatalf("critical path too short: %d", len(steps))
	}
	var sum time.Duration
	for _, s := range steps {
		sum += s.SelfTime
	}
	if sum != tree.Span.Duration() {
		t.Fatalf("self times %v != total %v", sum, tree.Span.Duration())
	}
	if !strings.Contains(trace.FormatCriticalPath(steps), "compose") {
		t.Fatal("critical path missing root")
	}
}

func TestDAGReplicasSpread(t *testing.T) {
	d, err := BuildDAG(SocialNetworkSpec())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		d.Gateway.Serve(d.NewDAGRequest(), func(*httpsim.Response, error) {})
		d.Sched.RunFor(100 * time.Millisecond)
	}
	d.Sched.Run()
	// compose has 2 replicas behind round robin: both must have worked.
	if d.Cluster.Pod("compose-1").Workers().Executed() == 0 ||
		d.Cluster.Pod("compose-2").Workers().Executed() == 0 {
		t.Fatal("compose replicas not both used")
	}
}
