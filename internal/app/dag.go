package app

import (
	"fmt"
	"sort"
	"time"

	"meshlayer/internal/cluster"
	"meshlayer/internal/httpsim"
	"meshlayer/internal/mesh"
	"meshlayer/internal/simnet"
)

// ServiceSpec declares one service of a DAG application.
type ServiceSpec struct {
	// Name is the service (and "app" label) name.
	Name string
	// Replicas is the pod count (default 1).
	Replicas int
	// ServiceTime is the per-request compute time.
	ServiceTime time.Duration
	// ResponseBytes is the response body size.
	ResponseBytes int
	// Calls lists downstream services invoked in parallel per request.
	Calls []string
	// Workers bounds pod concurrency (default 16).
	Workers int
	// Link overrides the pods' uplink (zero = cluster default).
	Link simnet.LinkConfig
}

// DAGSpec declares a whole application as a service DAG. Entry is the
// service external requests address.
type DAGSpec struct {
	Services []ServiceSpec
	Entry    string
	Mesh     mesh.Config
}

// DAG is an assembled DAG application.
type DAG struct {
	Sched   *simnet.Scheduler
	Cluster *cluster.Cluster
	Mesh    *mesh.Mesh
	Gateway *mesh.Gateway
	Entry   string

	specs    map[string]ServiceSpec
	nextIdx  map[string]int
	replicas map[string][]*cluster.Pod
}

// Validate checks the spec: unique names, known call targets, a known
// entry, and acyclicity (requests must terminate).
func (s DAGSpec) Validate() error {
	if len(s.Services) == 0 {
		return fmt.Errorf("app: DAG needs services")
	}
	byName := map[string]*ServiceSpec{}
	for i := range s.Services {
		svc := &s.Services[i]
		if svc.Name == "" {
			return fmt.Errorf("app: service %d has no name", i)
		}
		if _, dup := byName[svc.Name]; dup {
			return fmt.Errorf("app: duplicate service %q", svc.Name)
		}
		byName[svc.Name] = svc
	}
	if _, ok := byName[s.Entry]; !ok {
		return fmt.Errorf("app: entry service %q not declared", s.Entry)
	}
	for _, svc := range s.Services {
		for _, c := range svc.Calls {
			if _, ok := byName[c]; !ok {
				return fmt.Errorf("app: %s calls unknown service %q", svc.Name, c)
			}
		}
	}
	// Cycle check via DFS colours.
	const (
		white = 0
		grey  = 1
		black = 2
	)
	colour := map[string]int{}
	var visit func(name string) error
	visit = func(name string) error {
		switch colour[name] {
		case grey:
			return fmt.Errorf("app: call cycle through %q", name)
		case black:
			return nil
		}
		colour[name] = grey
		for _, c := range byName[name].Calls {
			if err := visit(c); err != nil {
				return err
			}
		}
		colour[name] = black
		return nil
	}
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if err := visit(n); err != nil {
			return err
		}
	}
	return nil
}

// BuildDAG assembles the application on a fresh scheduler: one pod per
// replica, one service per spec, sidecars everywhere, and handlers that
// fan out to each service's Calls in parallel and respond when all
// downstream responses are in.
func BuildDAG(spec DAGSpec) (*DAG, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	sched := simnet.NewScheduler()
	net := simnet.NewNetwork(sched)
	cl := cluster.New(net)

	gwPod := cl.AddPod(cluster.PodSpec{Name: "gateway", Labels: map[string]string{"app": "gateway"}})
	m := mesh.New(cl, spec.Mesh)
	gw := m.NewGateway(gwPod)

	d := &DAG{
		Sched: sched, Cluster: cl, Mesh: m, Gateway: gw, Entry: spec.Entry,
		specs:    make(map[string]ServiceSpec),
		nextIdx:  make(map[string]int),
		replicas: make(map[string][]*cluster.Pod),
	}
	for _, svc := range spec.Services {
		replicas := svc.Replicas
		if replicas <= 0 {
			replicas = 1
		}
		d.specs[svc.Name] = svc
		for i := 0; i < replicas; i++ {
			d.addReplica(svc.Name)
		}
		cl.AddService(svc.Name, 9080, map[string]string{"app": svc.Name})
	}
	return d, nil
}

func (d *DAG) addReplica(service string) *cluster.Pod {
	svc := d.specs[service]
	workers := svc.Workers
	if workers <= 0 {
		workers = 16
	}
	d.nextIdx[service]++
	i := d.nextIdx[service]
	pod := d.Cluster.AddPod(cluster.PodSpec{
		Name:    fmt.Sprintf("%s-%d", service, i),
		Labels:  map[string]string{"app": service, "version": fmt.Sprintf("v%d", i)},
		Workers: workers,
		Link:    svc.Link,
	})
	registerDAGHandler(d.Mesh, pod, svc)
	d.replicas[service] = append(d.replicas[service], pod)
	return pod
}

// ReadyReplicas returns the service's currently ready pod count.
func (d *DAG) ReadyReplicas(service string) int {
	n := 0
	for _, p := range d.replicas[service] {
		if p.Ready() {
			n++
		}
	}
	return n
}

// Scale adjusts a service's ready replica count at runtime: scaling up
// creates new pods (with sidecars and handlers); scaling down marks the
// newest pods unready, draining them Kubernetes-style without touching
// in-flight work. Previously drained pods are reused before new ones
// are created.
func (d *DAG) Scale(service string, replicas int) error {
	if _, ok := d.specs[service]; !ok {
		return fmt.Errorf("app: unknown service %q", service)
	}
	if replicas < 1 {
		return fmt.Errorf("app: replicas must be >= 1")
	}
	// Scale down: drain from the end.
	for i := len(d.replicas[service]) - 1; i >= 0 && d.ReadyReplicas(service) > replicas; i-- {
		if p := d.replicas[service][i]; p.Ready() {
			p.SetReady(false)
		}
	}
	// Scale up: first reactivate drained pods, then create.
	for _, p := range d.replicas[service] {
		if d.ReadyReplicas(service) >= replicas {
			break
		}
		if !p.Ready() {
			p.SetReady(true)
		}
	}
	for d.ReadyReplicas(service) < replicas {
		d.addReplica(service)
	}
	return nil
}

func registerDAGHandler(m *mesh.Mesh, pod *cluster.Pod, svc ServiceSpec) {
	sc := m.InjectSidecar(pod)
	sc.RegisterApp(func(req *httpsim.Request, respond func(*httpsim.Response)) {
		pod.Exec(svc.ServiceTime, func() {
			if len(svc.Calls) == 0 {
				out := httpsim.NewResponse(httpsim.StatusOK)
				out.BodyBytes = svc.ResponseBytes
				respond(out)
				return
			}
			remaining := len(svc.Calls)
			worst := httpsim.StatusOK
			finish := func(resp *httpsim.Response, err error) {
				if err != nil {
					worst = httpsim.StatusBadGateway
				} else if resp.Status > worst {
					worst = resp.Status
				}
				remaining--
				if remaining > 0 {
					return
				}
				out := httpsim.NewResponse(worst)
				out.BodyBytes = svc.ResponseBytes
				respond(out)
			}
			for _, target := range svc.Calls {
				sc.Call(childRequest(req, target, req.Path), finish)
			}
		})
	})
}

// NewDAGRequest builds an external request entering the DAG.
func (d *DAG) NewDAGRequest() *httpsim.Request {
	r := httpsim.NewRequest("GET", "/compose")
	r.Headers.Set(mesh.HeaderHost, d.Entry)
	return r
}

// SocialNetworkSpec is a DeathStarBench-flavoured topology: a compose
// front tier fanning out through timeline, graph, and storage tiers —
// the "fleets of microservices" of the paper's introduction.
func SocialNetworkSpec() DAGSpec {
	msec := func(n int) time.Duration { return time.Duration(n) * 100 * time.Microsecond }
	return DAGSpec{
		Entry: "compose",
		Services: []ServiceSpec{
			{Name: "compose", Replicas: 2, ServiceTime: msec(8), ResponseBytes: 16 << 10,
				Calls: []string{"home-timeline", "user-timeline", "text", "media"}},
			{Name: "home-timeline", Replicas: 2, ServiceTime: msec(5), ResponseBytes: 8 << 10,
				Calls: []string{"social-graph", "post-storage"}},
			{Name: "user-timeline", Replicas: 2, ServiceTime: msec(5), ResponseBytes: 8 << 10,
				Calls: []string{"post-storage"}},
			{Name: "social-graph", ServiceTime: msec(4), ResponseBytes: 4 << 10,
				Calls: []string{"graph-cache"}},
			{Name: "graph-cache", ServiceTime: msec(2), ResponseBytes: 2 << 10,
				Calls: []string{"graph-db"}},
			{Name: "graph-db", ServiceTime: msec(6), ResponseBytes: 4 << 10},
			{Name: "post-storage", Replicas: 2, ServiceTime: msec(4), ResponseBytes: 8 << 10,
				Calls: []string{"post-cache"}},
			{Name: "post-cache", ServiceTime: msec(2), ResponseBytes: 8 << 10,
				Calls: []string{"post-db"}},
			{Name: "post-db", ServiceTime: msec(6), ResponseBytes: 8 << 10},
			{Name: "text", ServiceTime: msec(3), ResponseBytes: 2 << 10,
				Calls: []string{"url-shorten", "user-mention"}},
			{Name: "url-shorten", ServiceTime: msec(2), ResponseBytes: 1 << 10},
			{Name: "user-mention", ServiceTime: msec(2), ResponseBytes: 1 << 10},
			{Name: "media", ServiceTime: msec(4), ResponseBytes: 32 << 10},
		},
	}
}
