package app

import (
	"fmt"
	"strings"
	"time"

	"meshlayer/internal/cluster"
	"meshlayer/internal/httpsim"
	"meshlayer/internal/mesh"
	"meshlayer/internal/simnet"
)

// Paths served by the e-library.
const (
	// PathProduct is the latency-sensitive user-facing page (the
	// bookinfo /productpage analogue).
	PathProduct = "/productpage"
	// PathAnalytics is the latency-insensitive batch scan whose
	// responses are ~200x larger.
	PathAnalytics = "/analytics"
)

// ELibraryConfig parameterizes the §4.3 testbed.
type ELibraryConfig struct {
	// LinkRate is the default inter-pod rate (paper: 15 Gbps).
	LinkRate int64
	// BottleneckRate throttles the ratings pod's uplink — the single
	// 1 Gbps bottleneck between reviews and ratings.
	BottleneckRate int64
	// ReviewsReplicas is the reviews scale-out (paper: 2, one per
	// priority pool under the optimization). Ignored when Zones > 1
	// (each zone gets one reviews replica).
	ReviewsReplicas int
	// Workers bounds per-pod compute concurrency.
	Workers int

	// Zones spreads the testbed across this many failure domains
	// ("zone-a", "zone-b", ...), one replica of every tier per zone,
	// each zone behind its own bridge and spine uplink. <= 1 keeps the
	// original single-zone topology byte-identical to before zones
	// existed. The gateway lives in zone-a.
	Zones int
	// ZoneDelay overrides the inter-zone spine propagation delay
	// (zero: cluster.DefaultZoneUplink's 250 µs).
	ZoneDelay time.Duration

	// Regions replicates the zoned testbed across this many regions
	// ("region-a", ...), each with Zones failure domains (default 2)
	// carrying a full replica set, joined by WAN links between region
	// spines. Every region gets an east-west gateway pod on its spine;
	// the ingress gateway lives in region-a's first zone. <= 1 keeps
	// the pre-federation topologies byte-identical.
	Regions int
	// WANDelay overrides the one-way WAN propagation delay (zero:
	// cluster.DefaultWANLink's 25 ms).
	WANDelay time.Duration

	// Latency-sensitive response sizes per component.
	LSDetailsBytes, LSRatingsBytes, LSReviewsBytes, LSFrontendBytes int
	// Latency-insensitive response sizes: the ratings scan dominates.
	LIRatingsBytes, LIReviewsBytes, LIFrontendBytes int

	// Service times (compute) per component.
	FrontendTime, DetailsTime, ReviewsTime, RatingsTime time.Duration
	// RatingsScanTime is the extra compute of the analytics scan.
	RatingsScanTime time.Duration

	// Mesh carries mesh-level settings (sidecar overhead, seed).
	Mesh mesh.Config
}

// DefaultELibraryConfig mirrors the paper's setup, scaled to the
// simulator: LS responses total ~10 KB, LI ratings responses are 2 MB
// (~200x), and the ratings uplink is the 1 Gbps bottleneck.
func DefaultELibraryConfig() ELibraryConfig {
	return ELibraryConfig{
		LinkRate:        15 * simnet.Gbps,
		BottleneckRate:  1 * simnet.Gbps,
		ReviewsReplicas: 2,
		Workers:         32,
		LSDetailsBytes:  2 << 10,
		LSRatingsBytes:  1 << 10,
		LSReviewsBytes:  4 << 10,
		LSFrontendBytes: 8 << 10,
		LIRatingsBytes:  2 << 20,
		LIReviewsBytes:  32 << 10,
		LIFrontendBytes: 32 << 10,
		FrontendTime:    1 * time.Millisecond,
		DetailsTime:     500 * time.Microsecond,
		ReviewsTime:     1 * time.Millisecond,
		RatingsTime:     500 * time.Microsecond,
		RatingsScanTime: 3 * time.Millisecond,
	}
}

// ELibrary is the assembled application: cluster, mesh, gateway, and
// the pods by role.
type ELibrary struct {
	Sched   *simnet.Scheduler
	Net     *simnet.Network
	Cluster *cluster.Cluster
	Mesh    *mesh.Mesh
	Gateway *mesh.Gateway
	Config  ELibraryConfig

	// Per-role pods. In single-zone mode these are the Fig. 3 pods; in
	// multi-zone mode Frontend/Details/Ratings are the zone-a replicas
	// and the *All slices hold one pod per zone in zone order.
	Frontend *cluster.Pod
	Details  *cluster.Pod
	Reviews  []*cluster.Pod
	Ratings  *cluster.Pod

	// Zones lists the zone names in creation order (nil when
	// single-zone); AllRatings holds every ratings replica.
	Zones      []string
	AllRatings []*cluster.Pod

	// Regions lists the region names in creation order and EastWest the
	// per-region east-west gateway pods (nil when single-region).
	Regions  []string
	EastWest []*cluster.Pod
}

// BuildELibrary constructs the full Fig. 3 topology on a fresh
// scheduler: ingress gateway -> frontend -> {details, reviews[i] ->
// ratings}, with the ratings uplink as the bottleneck.
func BuildELibrary(cfg ELibraryConfig) *ELibrary {
	if cfg.LinkRate == 0 {
		cfg = fillDefaults(cfg)
	}
	sched := simnet.NewScheduler()
	net := simnet.NewNetwork(sched)
	cl := cluster.New(net)

	link := simnet.LinkConfig{Rate: cfg.LinkRate, Delay: 20 * time.Microsecond}
	bottleneck := simnet.LinkConfig{Rate: cfg.BottleneckRate, Delay: 20 * time.Microsecond}

	if cfg.Regions > 1 {
		return buildFederatedELibrary(cfg, sched, net, cl, link, bottleneck)
	}
	if cfg.Zones > 1 {
		return buildZonedELibrary(cfg, sched, net, cl, link, bottleneck)
	}

	gwPod := cl.AddPod(cluster.PodSpec{Name: "gateway", Labels: map[string]string{"app": "gateway"}, Link: link})
	fePod := cl.AddPod(cluster.PodSpec{Name: "frontend-1", Labels: map[string]string{"app": "frontend"}, Link: link, Workers: cfg.Workers})
	dtPod := cl.AddPod(cluster.PodSpec{Name: "details-1", Labels: map[string]string{"app": "details"}, Link: link, Workers: cfg.Workers})
	var rvPods []*cluster.Pod
	for i := 1; i <= cfg.ReviewsReplicas; i++ {
		rvPods = append(rvPods, cl.AddPod(cluster.PodSpec{
			Name:    fmt.Sprintf("reviews-%d", i),
			Labels:  map[string]string{"app": "reviews", "version": fmt.Sprintf("v%d", i)},
			Link:    link,
			Workers: cfg.Workers,
		}))
	}
	rtPod := cl.AddPod(cluster.PodSpec{Name: "ratings-1", Labels: map[string]string{"app": "ratings"}, Link: bottleneck, Workers: cfg.Workers})

	cl.AddService("frontend", 9080, map[string]string{"app": "frontend"})
	cl.AddService("details", 9080, map[string]string{"app": "details"})
	cl.AddService("reviews", 9080, map[string]string{"app": "reviews"})
	cl.AddService("ratings", 9080, map[string]string{"app": "ratings"})

	m := mesh.New(cl, cfg.Mesh)
	gw := m.NewGateway(gwPod)

	e := &ELibrary{
		Sched: sched, Net: net, Cluster: cl, Mesh: m, Gateway: gw, Config: cfg,
		Frontend: fePod, Details: dtPod, Reviews: rvPods, Ratings: rtPod,
		AllRatings: []*cluster.Pod{rtPod},
	}
	e.registerFrontend(fePod)
	e.registerDetails(dtPod)
	for _, p := range rvPods {
		e.registerReviews(p)
	}
	e.registerRatings(rtPod)
	return e
}

// buildZonedELibrary lays the Fig. 3 application out across cfg.Zones
// failure domains: every zone carries a full replica set
// (frontend/details/reviews/ratings, each suffixed with the zone
// letter), the gateway sits in zone-a, and each ratings uplink keeps
// the bottleneck rate — so the aggregate topology is N copies of the
// paper's testbed joined at the spine.
func buildZonedELibrary(cfg ELibraryConfig, sched *simnet.Scheduler, net *simnet.Network,
	cl *cluster.Cluster, link, bottleneck simnet.LinkConfig) *ELibrary {
	uplink := cluster.DefaultZoneUplink
	if cfg.ZoneDelay > 0 {
		uplink.Delay = cfg.ZoneDelay
	}
	zones := make([]string, cfg.Zones)
	for i := range zones {
		zones[i] = "zone-" + string(rune('a'+i))
		cl.AddZone(zones[i], uplink)
	}

	e := &ELibrary{Sched: sched, Net: net, Cluster: cl, Config: cfg, Zones: zones}
	gwPod := cl.AddPod(cluster.PodSpec{
		Name: "gateway", Labels: map[string]string{"app": "gateway"}, Link: link, Zone: zones[0]})
	for i, z := range zones {
		suffix := string(rune('a' + i))
		fe := cl.AddPod(cluster.PodSpec{
			Name: "frontend-" + suffix, Labels: map[string]string{"app": "frontend"},
			Link: link, Workers: cfg.Workers, Zone: z})
		dt := cl.AddPod(cluster.PodSpec{
			Name: "details-" + suffix, Labels: map[string]string{"app": "details"},
			Link: link, Workers: cfg.Workers, Zone: z})
		rv := cl.AddPod(cluster.PodSpec{
			Name: "reviews-" + suffix, Labels: map[string]string{"app": "reviews", "version": fmt.Sprintf("v%d", i+1)},
			Link: link, Workers: cfg.Workers, Zone: z})
		rt := cl.AddPod(cluster.PodSpec{
			Name: "ratings-" + suffix, Labels: map[string]string{"app": "ratings"},
			Link: bottleneck, Workers: cfg.Workers, Zone: z})
		if i == 0 {
			e.Frontend, e.Details, e.Ratings = fe, dt, rt
		}
		e.Reviews = append(e.Reviews, rv)
		e.AllRatings = append(e.AllRatings, rt)
	}

	cl.AddService("frontend", 9080, map[string]string{"app": "frontend"})
	cl.AddService("details", 9080, map[string]string{"app": "details"})
	cl.AddService("reviews", 9080, map[string]string{"app": "reviews"})
	cl.AddService("ratings", 9080, map[string]string{"app": "ratings"})

	e.Mesh = mesh.New(cl, cfg.Mesh)
	e.Gateway = e.Mesh.NewGateway(gwPod)

	for _, z := range zones {
		for _, p := range cl.ZonePods(z) {
			switch p.Label("app") {
			case "frontend":
				e.registerFrontend(p)
			case "details":
				e.registerDetails(p)
			case "reviews":
				e.registerReviews(p)
			case "ratings":
				e.registerRatings(p)
			}
		}
	}
	return e
}

// buildFederatedELibrary replicates the zoned testbed across
// cfg.Regions regions: each region carries cfg.Zones zones (default 2),
// every zone a full replica set, and the region spines are joined by
// WAN links. One east-west gateway pod per region sits on its spine,
// fronted by the mesh.EWGatewayService(region) service; the ingress
// gateway lives in region-a's first zone, so under a region-a
// evacuation the edge itself keeps running while its upstreams drain.
func buildFederatedELibrary(cfg ELibraryConfig, sched *simnet.Scheduler, net *simnet.Network,
	cl *cluster.Cluster, link, bottleneck simnet.LinkConfig) *ELibrary {
	uplink := cluster.DefaultZoneUplink
	if cfg.ZoneDelay > 0 {
		uplink.Delay = cfg.ZoneDelay
	}
	wan := cluster.DefaultWANLink
	if cfg.WANDelay > 0 {
		wan.Delay = cfg.WANDelay
	}
	zonesPer := cfg.Zones
	if zonesPer <= 1 {
		zonesPer = 2
	}

	e := &ELibrary{Sched: sched, Net: net, Cluster: cl, Config: cfg}
	for i := 0; i < cfg.Regions; i++ {
		r := "region-" + string(rune('a'+i))
		cl.AddRegion(r, wan)
		e.Regions = append(e.Regions, r)
		for j := 1; j <= zonesPer; j++ {
			z := fmt.Sprintf("zone-%c%d", 'a'+i, j)
			cl.AddZoneInRegion(z, r, uplink)
			e.Zones = append(e.Zones, z)
		}
	}

	gwPod := cl.AddPod(cluster.PodSpec{
		Name: "gateway", Labels: map[string]string{"app": "gateway"}, Link: link, Zone: e.Zones[0]})
	for zi, z := range e.Zones {
		suffix := strings.TrimPrefix(z, "zone-")
		fe := cl.AddPod(cluster.PodSpec{
			Name: "frontend-" + suffix, Labels: map[string]string{"app": "frontend"},
			Link: link, Workers: cfg.Workers, Zone: z})
		dt := cl.AddPod(cluster.PodSpec{
			Name: "details-" + suffix, Labels: map[string]string{"app": "details"},
			Link: link, Workers: cfg.Workers, Zone: z})
		rv := cl.AddPod(cluster.PodSpec{
			Name: "reviews-" + suffix, Labels: map[string]string{"app": "reviews", "version": fmt.Sprintf("v%d", zi+1)},
			Link: link, Workers: cfg.Workers, Zone: z})
		rt := cl.AddPod(cluster.PodSpec{
			Name: "ratings-" + suffix, Labels: map[string]string{"app": "ratings"},
			Link: bottleneck, Workers: cfg.Workers, Zone: z})
		if zi == 0 {
			e.Frontend, e.Details, e.Ratings = fe, dt, rt
		}
		e.Reviews = append(e.Reviews, rv)
		e.AllRatings = append(e.AllRatings, rt)
	}

	cl.AddService("frontend", 9080, map[string]string{"app": "frontend"})
	cl.AddService("details", 9080, map[string]string{"app": "details"})
	cl.AddService("reviews", 9080, map[string]string{"app": "reviews"})
	cl.AddService("ratings", 9080, map[string]string{"app": "ratings"})

	// Federation infrastructure: one east-west gateway per region, each
	// behind its own single-pod service.
	for _, r := range e.Regions {
		name := mesh.EWGatewayService(r)
		p := cl.AddPod(cluster.PodSpec{
			Name: name, Labels: map[string]string{"app": name},
			Link: link, Workers: cfg.Workers, Region: r})
		cl.AddService(name, 9080, map[string]string{"app": name})
		e.EastWest = append(e.EastWest, p)
	}

	e.Mesh = mesh.New(cl, cfg.Mesh)
	e.Gateway = e.Mesh.NewGateway(gwPod)
	for _, p := range e.EastWest {
		e.Mesh.NewEastWestGateway(p)
	}

	for _, z := range e.Zones {
		for _, p := range cl.ZonePods(z) {
			switch p.Label("app") {
			case "frontend":
				e.registerFrontend(p)
			case "details":
				e.registerDetails(p)
			case "reviews":
				e.registerReviews(p)
			case "ratings":
				e.registerRatings(p)
			}
		}
	}
	return e
}

func fillDefaults(cfg ELibraryConfig) ELibraryConfig {
	d := DefaultELibraryConfig()
	d.Mesh = cfg.Mesh
	if cfg.ReviewsReplicas > 0 {
		d.ReviewsReplicas = cfg.ReviewsReplicas
	}
	if cfg.BottleneckRate > 0 {
		d.BottleneckRate = cfg.BottleneckRate
	}
	if cfg.LIRatingsBytes > 0 {
		d.LIRatingsBytes = cfg.LIRatingsBytes
	}
	d.Zones = cfg.Zones
	d.ZoneDelay = cfg.ZoneDelay
	d.Regions = cfg.Regions
	d.WANDelay = cfg.WANDelay
	return d
}

// isAnalytics classifies a path as the batch workload.
func isAnalytics(path string) bool { return strings.HasPrefix(path, PathAnalytics) }

// NewProductRequest builds a latency-sensitive external request.
func NewProductRequest() *httpsim.Request {
	r := httpsim.NewRequest("GET", PathProduct)
	r.Headers.Set(mesh.HeaderHost, "frontend")
	r.BodyBytes = 128
	return r
}

// NewAnalyticsRequest builds a latency-insensitive external request.
func NewAnalyticsRequest() *httpsim.Request {
	r := httpsim.NewRequest("GET", PathAnalytics)
	r.Headers.Set(mesh.HeaderHost, "frontend")
	r.BodyBytes = 256
	return r
}

// Classifier returns the ingress classifier for the e-library: user
// paths are high priority, analytics paths low — design component (1).
func Classifier() mesh.Classifier {
	return mesh.PathClassifier(map[string]string{
		PathProduct:   mesh.PriorityHigh,
		PathAnalytics: mesh.PriorityLow,
	}, mesh.PriorityHigh)
}

func (e *ELibrary) registerFrontend(pod *cluster.Pod) {
	sc := e.Mesh.InjectSidecar(pod)
	cfg := e.Config
	sc.RegisterApp(func(req *httpsim.Request, respond func(*httpsim.Response)) {
		pod.Exec(cfg.FrontendTime, func() {
			if isAnalytics(req.Path) {
				// Batch analytics: scan reviews (which consults
				// ratings) and return an aggregate.
				child := childRequest(req, "reviews", req.Path)
				// The ingress-adjacent application attaches the
				// priority bits to the requests it spawns (§4.3 (1)).
				if p := req.Headers.Get(mesh.HeaderPriority); p != "" {
					child.Headers.Set(mesh.HeaderPriority, p)
				}
				sc.Call(child, func(resp *httpsim.Response, err error) {
					if err != nil {
						respond(httpsim.NewResponse(httpsim.StatusBadGateway))
						return
					}
					out := httpsim.NewResponse(httpsim.StatusOK)
					out.BodyBytes = cfg.LIFrontendBytes
					respond(out)
				})
				return
			}
			// Product page: details and reviews in parallel.
			pendingOK := true
			remaining := 2
			finish := func(ok bool) {
				if !ok {
					pendingOK = false
				}
				remaining--
				if remaining > 0 {
					return
				}
				status := httpsim.StatusOK
				if !pendingOK {
					status = httpsim.StatusBadGateway
				}
				out := httpsim.NewResponse(status)
				out.BodyBytes = cfg.LSFrontendBytes
				respond(out)
			}
			details := childRequest(req, "details", req.Path)
			reviews := childRequest(req, "reviews", req.Path)
			for _, child := range []*httpsim.Request{details, reviews} {
				if p := req.Headers.Get(mesh.HeaderPriority); p != "" {
					child.Headers.Set(mesh.HeaderPriority, p)
				}
			}
			sc.Call(details, func(resp *httpsim.Response, err error) { finish(err == nil && resp.Status < 500) })
			sc.Call(reviews, func(resp *httpsim.Response, err error) { finish(err == nil && resp.Status < 500) })
		})
	})
}

func (e *ELibrary) registerDetails(pod *cluster.Pod) {
	sc := e.Mesh.InjectSidecar(pod)
	cfg := e.Config
	sc.RegisterApp(func(req *httpsim.Request, respond func(*httpsim.Response)) {
		pod.Exec(cfg.DetailsTime, func() {
			out := httpsim.NewResponse(httpsim.StatusOK)
			out.BodyBytes = cfg.LSDetailsBytes
			respond(out)
		})
	})
}

func (e *ELibrary) registerReviews(pod *cluster.Pod) {
	sc := e.Mesh.InjectSidecar(pod)
	cfg := e.Config
	sc.RegisterApp(func(req *httpsim.Request, respond func(*httpsim.Response)) {
		pod.Exec(cfg.ReviewsTime, func() {
			// NOTE: reviews does NOT copy the priority header — beyond
			// the ingress-adjacent hop, priority propagation is the
			// sidecar layer's provenance mechanism (§4.3 (2)).
			child := childRequest(req, "ratings", req.Path)
			sc.Call(child, func(resp *httpsim.Response, err error) {
				if err != nil {
					respond(httpsim.NewResponse(httpsim.StatusBadGateway))
					return
				}
				out := httpsim.NewResponse(httpsim.StatusOK)
				if isAnalytics(req.Path) {
					out.BodyBytes = cfg.LIReviewsBytes
				} else {
					out.BodyBytes = cfg.LSReviewsBytes
				}
				respond(out)
			})
		})
	})
}

func (e *ELibrary) registerRatings(pod *cluster.Pod) {
	sc := e.Mesh.InjectSidecar(pod)
	cfg := e.Config
	sc.RegisterApp(func(req *httpsim.Request, respond func(*httpsim.Response)) {
		t := cfg.RatingsTime
		if isAnalytics(req.Path) {
			t += cfg.RatingsScanTime
		}
		pod.Exec(t, func() {
			out := httpsim.NewResponse(httpsim.StatusOK)
			if isAnalytics(req.Path) {
				out.BodyBytes = cfg.LIRatingsBytes
			} else {
				out.BodyBytes = cfg.LSRatingsBytes
			}
			respond(out)
		})
	})
}
