package app

import (
	"fmt"
	"strings"
	"time"

	"meshlayer/internal/cluster"
	"meshlayer/internal/httpsim"
	"meshlayer/internal/mesh"
	"meshlayer/internal/simnet"
)

// Paths served by the e-library.
const (
	// PathProduct is the latency-sensitive user-facing page (the
	// bookinfo /productpage analogue).
	PathProduct = "/productpage"
	// PathAnalytics is the latency-insensitive batch scan whose
	// responses are ~200x larger.
	PathAnalytics = "/analytics"
)

// ELibraryConfig parameterizes the §4.3 testbed.
type ELibraryConfig struct {
	// LinkRate is the default inter-pod rate (paper: 15 Gbps).
	LinkRate int64
	// BottleneckRate throttles the ratings pod's uplink — the single
	// 1 Gbps bottleneck between reviews and ratings.
	BottleneckRate int64
	// ReviewsReplicas is the reviews scale-out (paper: 2, one per
	// priority pool under the optimization).
	ReviewsReplicas int
	// Workers bounds per-pod compute concurrency.
	Workers int

	// Latency-sensitive response sizes per component.
	LSDetailsBytes, LSRatingsBytes, LSReviewsBytes, LSFrontendBytes int
	// Latency-insensitive response sizes: the ratings scan dominates.
	LIRatingsBytes, LIReviewsBytes, LIFrontendBytes int

	// Service times (compute) per component.
	FrontendTime, DetailsTime, ReviewsTime, RatingsTime time.Duration
	// RatingsScanTime is the extra compute of the analytics scan.
	RatingsScanTime time.Duration

	// Mesh carries mesh-level settings (sidecar overhead, seed).
	Mesh mesh.Config
}

// DefaultELibraryConfig mirrors the paper's setup, scaled to the
// simulator: LS responses total ~10 KB, LI ratings responses are 2 MB
// (~200x), and the ratings uplink is the 1 Gbps bottleneck.
func DefaultELibraryConfig() ELibraryConfig {
	return ELibraryConfig{
		LinkRate:        15 * simnet.Gbps,
		BottleneckRate:  1 * simnet.Gbps,
		ReviewsReplicas: 2,
		Workers:         32,
		LSDetailsBytes:  2 << 10,
		LSRatingsBytes:  1 << 10,
		LSReviewsBytes:  4 << 10,
		LSFrontendBytes: 8 << 10,
		LIRatingsBytes:  2 << 20,
		LIReviewsBytes:  32 << 10,
		LIFrontendBytes: 32 << 10,
		FrontendTime:    1 * time.Millisecond,
		DetailsTime:     500 * time.Microsecond,
		ReviewsTime:     1 * time.Millisecond,
		RatingsTime:     500 * time.Microsecond,
		RatingsScanTime: 3 * time.Millisecond,
	}
}

// ELibrary is the assembled application: cluster, mesh, gateway, and
// the pods by role.
type ELibrary struct {
	Sched   *simnet.Scheduler
	Net     *simnet.Network
	Cluster *cluster.Cluster
	Mesh    *mesh.Mesh
	Gateway *mesh.Gateway
	Config  ELibraryConfig

	Frontend *cluster.Pod
	Details  *cluster.Pod
	Reviews  []*cluster.Pod
	Ratings  *cluster.Pod
}

// BuildELibrary constructs the full Fig. 3 topology on a fresh
// scheduler: ingress gateway -> frontend -> {details, reviews[i] ->
// ratings}, with the ratings uplink as the bottleneck.
func BuildELibrary(cfg ELibraryConfig) *ELibrary {
	if cfg.LinkRate == 0 {
		cfg = fillDefaults(cfg)
	}
	sched := simnet.NewScheduler()
	net := simnet.NewNetwork(sched)
	cl := cluster.New(net)

	link := simnet.LinkConfig{Rate: cfg.LinkRate, Delay: 20 * time.Microsecond}
	bottleneck := simnet.LinkConfig{Rate: cfg.BottleneckRate, Delay: 20 * time.Microsecond}

	gwPod := cl.AddPod(cluster.PodSpec{Name: "gateway", Labels: map[string]string{"app": "gateway"}, Link: link})
	fePod := cl.AddPod(cluster.PodSpec{Name: "frontend-1", Labels: map[string]string{"app": "frontend"}, Link: link, Workers: cfg.Workers})
	dtPod := cl.AddPod(cluster.PodSpec{Name: "details-1", Labels: map[string]string{"app": "details"}, Link: link, Workers: cfg.Workers})
	var rvPods []*cluster.Pod
	for i := 1; i <= cfg.ReviewsReplicas; i++ {
		rvPods = append(rvPods, cl.AddPod(cluster.PodSpec{
			Name:    fmt.Sprintf("reviews-%d", i),
			Labels:  map[string]string{"app": "reviews", "version": fmt.Sprintf("v%d", i)},
			Link:    link,
			Workers: cfg.Workers,
		}))
	}
	rtPod := cl.AddPod(cluster.PodSpec{Name: "ratings-1", Labels: map[string]string{"app": "ratings"}, Link: bottleneck, Workers: cfg.Workers})

	cl.AddService("frontend", 9080, map[string]string{"app": "frontend"})
	cl.AddService("details", 9080, map[string]string{"app": "details"})
	cl.AddService("reviews", 9080, map[string]string{"app": "reviews"})
	cl.AddService("ratings", 9080, map[string]string{"app": "ratings"})

	m := mesh.New(cl, cfg.Mesh)
	gw := m.NewGateway(gwPod)

	e := &ELibrary{
		Sched: sched, Net: net, Cluster: cl, Mesh: m, Gateway: gw, Config: cfg,
		Frontend: fePod, Details: dtPod, Reviews: rvPods, Ratings: rtPod,
	}
	e.registerFrontend(fePod)
	e.registerDetails(dtPod)
	for _, p := range rvPods {
		e.registerReviews(p)
	}
	e.registerRatings(rtPod)
	return e
}

func fillDefaults(cfg ELibraryConfig) ELibraryConfig {
	d := DefaultELibraryConfig()
	d.Mesh = cfg.Mesh
	if cfg.ReviewsReplicas > 0 {
		d.ReviewsReplicas = cfg.ReviewsReplicas
	}
	if cfg.BottleneckRate > 0 {
		d.BottleneckRate = cfg.BottleneckRate
	}
	if cfg.LIRatingsBytes > 0 {
		d.LIRatingsBytes = cfg.LIRatingsBytes
	}
	return d
}

// isAnalytics classifies a path as the batch workload.
func isAnalytics(path string) bool { return strings.HasPrefix(path, PathAnalytics) }

// NewProductRequest builds a latency-sensitive external request.
func NewProductRequest() *httpsim.Request {
	r := httpsim.NewRequest("GET", PathProduct)
	r.Headers.Set(mesh.HeaderHost, "frontend")
	r.BodyBytes = 128
	return r
}

// NewAnalyticsRequest builds a latency-insensitive external request.
func NewAnalyticsRequest() *httpsim.Request {
	r := httpsim.NewRequest("GET", PathAnalytics)
	r.Headers.Set(mesh.HeaderHost, "frontend")
	r.BodyBytes = 256
	return r
}

// Classifier returns the ingress classifier for the e-library: user
// paths are high priority, analytics paths low — design component (1).
func Classifier() mesh.Classifier {
	return mesh.PathClassifier(map[string]string{
		PathProduct:   mesh.PriorityHigh,
		PathAnalytics: mesh.PriorityLow,
	}, mesh.PriorityHigh)
}

func (e *ELibrary) registerFrontend(pod *cluster.Pod) {
	sc := e.Mesh.InjectSidecar(pod)
	cfg := e.Config
	sc.RegisterApp(func(req *httpsim.Request, respond func(*httpsim.Response)) {
		pod.Exec(cfg.FrontendTime, func() {
			if isAnalytics(req.Path) {
				// Batch analytics: scan reviews (which consults
				// ratings) and return an aggregate.
				child := childRequest(req, "reviews", req.Path)
				// The ingress-adjacent application attaches the
				// priority bits to the requests it spawns (§4.3 (1)).
				if p := req.Headers.Get(mesh.HeaderPriority); p != "" {
					child.Headers.Set(mesh.HeaderPriority, p)
				}
				sc.Call(child, func(resp *httpsim.Response, err error) {
					if err != nil {
						respond(httpsim.NewResponse(httpsim.StatusBadGateway))
						return
					}
					out := httpsim.NewResponse(httpsim.StatusOK)
					out.BodyBytes = cfg.LIFrontendBytes
					respond(out)
				})
				return
			}
			// Product page: details and reviews in parallel.
			pendingOK := true
			remaining := 2
			finish := func(ok bool) {
				if !ok {
					pendingOK = false
				}
				remaining--
				if remaining > 0 {
					return
				}
				status := httpsim.StatusOK
				if !pendingOK {
					status = httpsim.StatusBadGateway
				}
				out := httpsim.NewResponse(status)
				out.BodyBytes = cfg.LSFrontendBytes
				respond(out)
			}
			details := childRequest(req, "details", req.Path)
			reviews := childRequest(req, "reviews", req.Path)
			for _, child := range []*httpsim.Request{details, reviews} {
				if p := req.Headers.Get(mesh.HeaderPriority); p != "" {
					child.Headers.Set(mesh.HeaderPriority, p)
				}
			}
			sc.Call(details, func(resp *httpsim.Response, err error) { finish(err == nil && resp.Status < 500) })
			sc.Call(reviews, func(resp *httpsim.Response, err error) { finish(err == nil && resp.Status < 500) })
		})
	})
}

func (e *ELibrary) registerDetails(pod *cluster.Pod) {
	sc := e.Mesh.InjectSidecar(pod)
	cfg := e.Config
	sc.RegisterApp(func(req *httpsim.Request, respond func(*httpsim.Response)) {
		pod.Exec(cfg.DetailsTime, func() {
			out := httpsim.NewResponse(httpsim.StatusOK)
			out.BodyBytes = cfg.LSDetailsBytes
			respond(out)
		})
	})
}

func (e *ELibrary) registerReviews(pod *cluster.Pod) {
	sc := e.Mesh.InjectSidecar(pod)
	cfg := e.Config
	sc.RegisterApp(func(req *httpsim.Request, respond func(*httpsim.Response)) {
		pod.Exec(cfg.ReviewsTime, func() {
			// NOTE: reviews does NOT copy the priority header — beyond
			// the ingress-adjacent hop, priority propagation is the
			// sidecar layer's provenance mechanism (§4.3 (2)).
			child := childRequest(req, "ratings", req.Path)
			sc.Call(child, func(resp *httpsim.Response, err error) {
				if err != nil {
					respond(httpsim.NewResponse(httpsim.StatusBadGateway))
					return
				}
				out := httpsim.NewResponse(httpsim.StatusOK)
				if isAnalytics(req.Path) {
					out.BodyBytes = cfg.LIReviewsBytes
				} else {
					out.BodyBytes = cfg.LSReviewsBytes
				}
				respond(out)
			})
		})
	})
}

func (e *ELibrary) registerRatings(pod *cluster.Pod) {
	sc := e.Mesh.InjectSidecar(pod)
	cfg := e.Config
	sc.RegisterApp(func(req *httpsim.Request, respond func(*httpsim.Response)) {
		t := cfg.RatingsTime
		if isAnalytics(req.Path) {
			t += cfg.RatingsScanTime
		}
		pod.Exec(t, func() {
			out := httpsim.NewResponse(httpsim.StatusOK)
			if isAnalytics(req.Path) {
				out.BodyBytes = cfg.LIRatingsBytes
			} else {
				out.BodyBytes = cfg.LSRatingsBytes
			}
			respond(out)
		})
	})
}
