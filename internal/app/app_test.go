package app

import (
	"testing"
	"time"

	"meshlayer/internal/httpsim"
	"meshlayer/internal/mesh"
	"meshlayer/internal/trace"
)

func TestELibraryProductPage(t *testing.T) {
	e := BuildELibrary(DefaultELibraryConfig())
	var got *httpsim.Response
	var lat time.Duration
	start := e.Sched.Now()
	e.Gateway.Serve(NewProductRequest(), func(r *httpsim.Response, err error) {
		if err != nil {
			t.Fatal(err)
		}
		got = r
		lat = e.Sched.Now() - start
	})
	e.Sched.Run()
	if got == nil || got.Status != httpsim.StatusOK {
		t.Fatalf("response = %+v", got)
	}
	if got.BodyBytes != e.Config.LSFrontendBytes {
		t.Fatalf("body = %d", got.BodyBytes)
	}
	// Unloaded product page: a handful of ms (service times + proxies).
	if lat > 50*time.Millisecond {
		t.Fatalf("unloaded latency = %v", lat)
	}
}

func TestELibraryAnalytics(t *testing.T) {
	e := BuildELibrary(DefaultELibraryConfig())
	var got *httpsim.Response
	var lat time.Duration
	start := e.Sched.Now()
	e.Gateway.Serve(NewAnalyticsRequest(), func(r *httpsim.Response, err error) {
		if err != nil {
			t.Fatal(err)
		}
		got = r
		lat = e.Sched.Now() - start
	})
	e.Sched.Run()
	if got == nil || got.Status != httpsim.StatusOK {
		t.Fatalf("response = %+v", got)
	}
	// The 2MB ratings scan must traverse the 1 Gbps bottleneck:
	// serialization alone is ~16ms.
	if lat < 16*time.Millisecond {
		t.Fatalf("analytics latency %v too fast for a 2MB response over 1Gbps", lat)
	}
}

func TestELibraryCallTree(t *testing.T) {
	e := BuildELibrary(DefaultELibraryConfig())
	e.Gateway.SetClassifier(Classifier())
	e.Gateway.Serve(NewProductRequest(), func(*httpsim.Response, error) {})
	e.Sched.Run()
	ids := e.Mesh.Tracer().TraceIDs()
	if len(ids) != 1 {
		t.Fatalf("traces = %d", len(ids))
	}
	tree := e.Mesh.Tracer().Tree(ids[0])
	if tree == nil {
		t.Fatal("no tree")
	}
	// Services on the path: gateway, frontend, details, reviews,
	// ratings must all appear.
	seen := map[string]bool{}
	tree.Walk(func(n *trace.TreeNode, _ int) { seen[n.Span.Service] = true })
	for _, svc := range []string{"ingress-gateway", "frontend", "details", "reviews", "ratings"} {
		if !seen[svc] {
			t.Fatalf("service %s missing from trace:\n%s", svc, tree.Format())
		}
	}
	// Provenance: the root span carries the priority classification.
	if got := e.Mesh.Tracer().RootTag(ids[0], "priority"); got != mesh.PriorityHigh {
		t.Fatalf("root priority tag = %q", got)
	}
}

func TestELibraryReviewsSpreadAcrossReplicas(t *testing.T) {
	e := BuildELibrary(DefaultELibraryConfig())
	for i := 0; i < 6; i++ {
		e.Gateway.Serve(NewProductRequest(), func(*httpsim.Response, error) {})
		e.Sched.RunFor(200 * time.Millisecond)
	}
	e.Sched.Run()
	// With round robin and no routing rule, both replicas served.
	for _, p := range e.Reviews {
		if p.Workers().Executed() == 0 {
			t.Fatalf("replica %s never used", p.Name())
		}
	}
}

func TestELibraryBottleneckConfigured(t *testing.T) {
	e := BuildELibrary(DefaultELibraryConfig())
	if got := e.Ratings.Uplink().Config().Rate; got != e.Config.BottleneckRate {
		t.Fatalf("ratings uplink = %d, want bottleneck %d", got, e.Config.BottleneckRate)
	}
	if got := e.Frontend.Uplink().Config().Rate; got != e.Config.LinkRate {
		t.Fatalf("frontend uplink = %d", got)
	}
}

func TestChainDepthResponse(t *testing.T) {
	for _, depth := range []int{1, 4, 8} {
		c := BuildChain(ChainConfig{Depth: depth})
		var ok bool
		c.Gateway.Serve(NewChainRequest(), func(r *httpsim.Response, err error) {
			if err != nil {
				t.Fatalf("depth %d: %v", depth, err)
			}
			ok = r.Status == httpsim.StatusOK
		})
		c.Sched.Run()
		if !ok {
			t.Fatalf("depth %d: no OK response", depth)
		}
		ids := c.Mesh.Tracer().TraceIDs()
		tree := c.Mesh.Tracer().Tree(ids[0])
		// Each hop contributes a client+server span pair.
		wantDepth := 1 + 2*depth
		if tree.Depth() != wantDepth {
			t.Fatalf("depth %d: trace depth = %d, want %d", depth, tree.Depth(), wantDepth)
		}
	}
}

func TestChainLatencyGrowsWithDepth(t *testing.T) {
	lat := func(depth int) time.Duration {
		c := BuildChain(ChainConfig{Depth: depth, Mesh: mesh.Config{Seed: 9}})
		var l time.Duration
		start := c.Sched.Now()
		c.Gateway.Serve(NewChainRequest(), func(*httpsim.Response, error) { l = c.Sched.Now() - start })
		c.Sched.Run()
		return l
	}
	l2, l16 := lat(2), lat(16)
	if l16 < 4*l2 {
		t.Fatalf("depth16 %v not clearly above depth2 %v", l16, l2)
	}
}

func TestChainValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("depth 0 accepted")
		}
	}()
	BuildChain(ChainConfig{Depth: 0})
}

func TestECommerceStorefront(t *testing.T) {
	ec := BuildECommerce(ECommerceConfig{Seed: 4})
	okCount := 0
	for i := 0; i < 10; i++ {
		ec.Gateway.Serve(NewStorefrontRequest(), func(r *httpsim.Response, err error) {
			if err == nil && r.Status == httpsim.StatusOK {
				okCount++
			}
		})
		ec.Sched.RunFor(500 * time.Millisecond)
	}
	ec.Sched.Run()
	if okCount != 10 {
		t.Fatalf("ok = %d/10", okCount)
	}
	// db is shared by cart and recs: it must have served both.
	if ec.Cluster.Pod("db-1").Workers().Executed() < 20 {
		t.Fatalf("db executions = %d, want >= 20", ec.Cluster.Pod("db-1").Workers().Executed())
	}
}

func TestCopyTrace(t *testing.T) {
	parent := httpsim.NewRequest("GET", "/p")
	parent.Headers.Set(trace.HeaderRequestID, "req-1")
	parent.Headers.Set(trace.HeaderSpanID, "ab")
	child := httpsim.NewRequest("GET", "/c")
	CopyTrace(parent, child)
	if child.Headers.Get(trace.HeaderRequestID) != "req-1" || child.Headers.Get(trace.HeaderSpanID) != "ab" {
		t.Fatal("trace context not copied")
	}
	// No trace context: nothing copied, no panic.
	CopyTrace(httpsim.NewRequest("GET", "/x"), child)
}
