package app

import (
	"fmt"
	"time"

	"meshlayer/internal/cluster"
	"meshlayer/internal/httpsim"
	"meshlayer/internal/mesh"
	"meshlayer/internal/simnet"
)

// Chain is a linear microservice pipeline svc-0 -> svc-1 -> ... ->
// svc-(n-1): the topology for studying how per-hop sidecar overhead
// accumulates in "latency-sensitive apps involving tens of hops among
// microservices" (§3.6).
type Chain struct {
	Sched   *simnet.Scheduler
	Cluster *cluster.Cluster
	Mesh    *mesh.Mesh
	Gateway *mesh.Gateway
	Depth   int
}

// ChainConfig parameterizes BuildChain.
type ChainConfig struct {
	// Depth is the number of chained services (>= 1).
	Depth int
	// ServiceTime is each hop's compute time.
	ServiceTime time.Duration
	// ResponseBytes is each hop's response size.
	ResponseBytes int
	// Mesh carries mesh-level settings.
	Mesh mesh.Config
}

// BuildChain constructs the chain on a fresh scheduler. External
// requests enter at the gateway addressed to "svc-0"; each service
// calls the next; the last one answers.
func BuildChain(cfg ChainConfig) *Chain {
	if cfg.Depth < 1 {
		panic("app: chain depth must be >= 1")
	}
	if cfg.ServiceTime == 0 {
		cfg.ServiceTime = 200 * time.Microsecond
	}
	if cfg.ResponseBytes == 0 {
		cfg.ResponseBytes = 2 << 10
	}
	sched := simnet.NewScheduler()
	net := simnet.NewNetwork(sched)
	cl := cluster.New(net)

	gwPod := cl.AddPod(cluster.PodSpec{Name: "gateway", Labels: map[string]string{"app": "gateway"}})
	pods := make([]*cluster.Pod, cfg.Depth)
	for i := 0; i < cfg.Depth; i++ {
		name := fmt.Sprintf("svc-%d", i)
		pods[i] = cl.AddPod(cluster.PodSpec{Name: name + "-1", Labels: map[string]string{"app": name}})
		cl.AddService(name, 9080, map[string]string{"app": name})
	}

	m := mesh.New(cl, cfg.Mesh)
	gw := m.NewGateway(gwPod)

	for i := 0; i < cfg.Depth; i++ {
		i := i
		pod := pods[i]
		sc := m.InjectSidecar(pod)
		sc.RegisterApp(func(req *httpsim.Request, respond func(*httpsim.Response)) {
			pod.Exec(cfg.ServiceTime, func() {
				if i == cfg.Depth-1 {
					out := httpsim.NewResponse(httpsim.StatusOK)
					out.BodyBytes = cfg.ResponseBytes
					respond(out)
					return
				}
				child := childRequest(req, fmt.Sprintf("svc-%d", i+1), req.Path)
				sc.Call(child, func(resp *httpsim.Response, err error) {
					if err != nil {
						respond(httpsim.NewResponse(httpsim.StatusBadGateway))
						return
					}
					out := httpsim.NewResponse(httpsim.StatusOK)
					out.BodyBytes = cfg.ResponseBytes
					respond(out)
				})
			})
		})
	}
	return &Chain{Sched: sched, Cluster: cl, Mesh: m, Gateway: gw, Depth: cfg.Depth}
}

// NewChainRequest builds an external request entering the chain.
func NewChainRequest() *httpsim.Request {
	r := httpsim.NewRequest("GET", "/chain")
	r.Headers.Set(mesh.HeaderHost, "svc-0")
	return r
}
