// Package app contains the sample microservice applications that run on
// the mesh: the e-library of the paper's prototype (Istio's bookinfo
// reshaped, §4.3), a linear chain for hop-depth studies, and a deeper
// e-commerce tree used by the examples.
//
// Application handlers follow the paper's division of labour: they
// propagate the trace headers (x-request-id / x-span-id) onto child
// requests — "which is propagated to those requests by the application
// to enable existing service mesh functionality" — while priority
// propagation beyond the front end is the mesh's job (internal/core).
package app

import (
	"meshlayer/internal/httpsim"
	"meshlayer/internal/mesh"
	"meshlayer/internal/trace"
)

// CopyTrace copies the distributed-tracing context headers from an
// inbound request onto a child request, as the application must for
// the mesh's tracing (and thus provenance) to work.
func CopyTrace(parent, child *httpsim.Request) {
	if v := parent.Headers.Get(trace.HeaderRequestID); v != "" {
		child.Headers.Set(trace.HeaderRequestID, v)
	}
	if v := parent.Headers.Get(trace.HeaderSpanID); v != "" {
		child.Headers.Set(trace.HeaderSpanID, v)
	}
}

// childRequest builds a child request to a service, carrying the trace
// context of the parent.
func childRequest(parent *httpsim.Request, service, path string) *httpsim.Request {
	r := httpsim.NewRequest("GET", path)
	r.Headers.Set(mesh.HeaderHost, service)
	CopyTrace(parent, r)
	return r
}
