package app

import (
	"math/rand"
	"time"

	"meshlayer/internal/cluster"
	"meshlayer/internal/httpsim"
	"meshlayer/internal/mesh"
	"meshlayer/internal/simnet"
)

// ECommerce is a deeper microservice tree used by the examples and the
// redundancy/hedging study:
//
//	gateway -> storefront -> catalog (2 replicas)
//	                      -> recs (2 replicas, high-variance latency) -> db
//	                      -> cart -> db
type ECommerce struct {
	Sched   *simnet.Scheduler
	Cluster *cluster.Cluster
	Mesh    *mesh.Mesh
	Gateway *mesh.Gateway
}

// ECommerceConfig parameterizes BuildECommerce.
type ECommerceConfig struct {
	// RecsSlowProb is the probability a recs call hits its slow path
	// (GC pause / cache miss), making tail latency hedging-worthy.
	RecsSlowProb float64
	// RecsSlowTime is the slow-path service time.
	RecsSlowTime time.Duration
	// Seed drives the app's service-time randomness.
	Seed int64
	// Mesh carries mesh-level settings.
	Mesh mesh.Config
}

// BuildECommerce constructs the tree on a fresh scheduler.
func BuildECommerce(cfg ECommerceConfig) *ECommerce {
	if cfg.RecsSlowProb == 0 {
		cfg.RecsSlowProb = 0.05
	}
	if cfg.RecsSlowTime == 0 {
		cfg.RecsSlowTime = 100 * time.Millisecond
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))

	sched := simnet.NewScheduler()
	net := simnet.NewNetwork(sched)
	cl := cluster.New(net)

	gwPod := cl.AddPod(cluster.PodSpec{Name: "gateway", Labels: map[string]string{"app": "gateway"}})
	sfPod := cl.AddPod(cluster.PodSpec{Name: "storefront-1", Labels: map[string]string{"app": "storefront"}})
	cat1 := cl.AddPod(cluster.PodSpec{Name: "catalog-1", Labels: map[string]string{"app": "catalog"}})
	cat2 := cl.AddPod(cluster.PodSpec{Name: "catalog-2", Labels: map[string]string{"app": "catalog"}})
	rec1 := cl.AddPod(cluster.PodSpec{Name: "recs-1", Labels: map[string]string{"app": "recs"}})
	rec2 := cl.AddPod(cluster.PodSpec{Name: "recs-2", Labels: map[string]string{"app": "recs"}})
	cartPod := cl.AddPod(cluster.PodSpec{Name: "cart-1", Labels: map[string]string{"app": "cart"}})
	dbPod := cl.AddPod(cluster.PodSpec{Name: "db-1", Labels: map[string]string{"app": "db"}})

	cl.AddService("storefront", 9080, map[string]string{"app": "storefront"})
	cl.AddService("catalog", 9080, map[string]string{"app": "catalog"})
	cl.AddService("recs", 9080, map[string]string{"app": "recs"})
	cl.AddService("cart", 9080, map[string]string{"app": "cart"})
	cl.AddService("db", 9080, map[string]string{"app": "db"})

	m := mesh.New(cl, cfg.Mesh)
	gw := m.NewGateway(gwPod)

	leaf := func(pod *cluster.Pod, svcTime time.Duration, bytes int) {
		sc := m.InjectSidecar(pod)
		sc.RegisterApp(func(req *httpsim.Request, respond func(*httpsim.Response)) {
			pod.Exec(svcTime, func() {
				out := httpsim.NewResponse(httpsim.StatusOK)
				out.BodyBytes = bytes
				respond(out)
			})
		})
	}
	leaf(cat1, 500*time.Microsecond, 4<<10)
	leaf(cat2, 500*time.Microsecond, 4<<10)
	leaf(dbPod, 300*time.Microsecond, 1<<10)

	// recs: calls db, occasionally hits a slow path.
	for _, pod := range []*cluster.Pod{rec1, rec2} {
		pod := pod
		sc := m.InjectSidecar(pod)
		sc.RegisterApp(func(req *httpsim.Request, respond func(*httpsim.Response)) {
			t := time.Millisecond
			if rng.Float64() < cfg.RecsSlowProb {
				t = cfg.RecsSlowTime
			}
			pod.Exec(t, func() {
				child := childRequest(req, "db", "/recs-features")
				sc.Call(child, func(resp *httpsim.Response, err error) {
					out := httpsim.NewResponse(httpsim.StatusOK)
					out.BodyBytes = 8 << 10
					respond(out)
				})
			})
		})
	}

	// cart: calls db.
	{
		sc := m.InjectSidecar(cartPod)
		sc.RegisterApp(func(req *httpsim.Request, respond func(*httpsim.Response)) {
			cartPod.Exec(400*time.Microsecond, func() {
				child := childRequest(req, "db", "/cart-items")
				sc.Call(child, func(resp *httpsim.Response, err error) {
					out := httpsim.NewResponse(httpsim.StatusOK)
					out.BodyBytes = 2 << 10
					respond(out)
				})
			})
		})
	}

	// storefront: fans out to catalog, recs, cart.
	{
		sc := m.InjectSidecar(sfPod)
		sc.RegisterApp(func(req *httpsim.Request, respond func(*httpsim.Response)) {
			sfPod.Exec(800*time.Microsecond, func() {
				remaining := 3
				worst := httpsim.StatusOK
				finish := func(resp *httpsim.Response, err error) {
					if err != nil {
						worst = httpsim.StatusBadGateway
					} else if resp.Status > worst {
						worst = resp.Status
					}
					remaining--
					if remaining > 0 {
						return
					}
					out := httpsim.NewResponse(worst)
					out.BodyBytes = 16 << 10
					respond(out)
				}
				for _, svc := range []string{"catalog", "recs", "cart"} {
					sc.Call(childRequest(req, svc, "/"+svc), finish)
				}
			})
		})
	}

	_ = simnet.MarkDefault
	return &ECommerce{Sched: sched, Cluster: cl, Mesh: m, Gateway: gw}
}

// NewStorefrontRequest builds an external storefront page request.
func NewStorefrontRequest() *httpsim.Request {
	r := httpsim.NewRequest("GET", "/store")
	r.Headers.Set(mesh.HeaderHost, "storefront")
	return r
}
