package chaos

import (
	"fmt"
)

// This file holds correlated-failure faults: whole failure domains
// (zones) going dark, partitioning, or degrading together. These are
// the scenarios zone-aware failover exists for — per-endpoint defenses
// (PR 2) see N independent failures, but the mesh layer can see one
// correlated event and shift traffic across the zone boundary.

// ZoneOutage crashes every pod in a zone at once (power loss, a bad
// rollout pinned to one failure domain). Each pod blackholes and its
// connections die, exactly as in PodCrash; Except lists pods spared
// (e.g. the ingress gateway, which in real deployments is replicated
// outside the failing zone).
type ZoneOutage struct {
	Zone   string
	Except []string
}

// Name implements Fault.
func (f ZoneOutage) Name() string { return "zone-outage/" + f.Zone }

// Inject implements Fault.
func (f ZoneOutage) Inject(t *Target) {
	for _, pod := range t.Cluster.ZonePods(f.Zone) {
		if f.spared(pod.Name()) {
			continue
		}
		pod.Partition(true)
		pod.Host().ResetConns()
	}
}

// Revert implements Fault.
func (f ZoneOutage) Revert(t *Target) {
	for _, pod := range t.Cluster.ZonePods(f.Zone) {
		if f.spared(pod.Name()) {
			continue
		}
		pod.Partition(false)
	}
}

func (f ZoneOutage) spared(name string) bool {
	for _, e := range f.Except {
		if e == name {
			return true
		}
	}
	return false
}

func (f ZoneOutage) validate(t *Target) error { return needZone(t, f.Zone) }

// ZonePartition severs a zone's spine uplink: every pod in the zone
// stays up and keeps talking to its zone-local peers, but all
// cross-zone traffic blackholes — the classic network partition that
// looks like a total outage from outside and like a remote outage from
// inside.
type ZonePartition struct {
	Zone string
}

// Name implements Fault.
func (f ZonePartition) Name() string { return "zone-partition/" + f.Zone }

// Inject implements Fault.
func (f ZonePartition) Inject(t *Target) { t.Cluster.ZoneUplink(f.Zone).SetDown(true) }

// Revert implements Fault.
func (f ZonePartition) Revert(t *Target) { t.Cluster.ZoneUplink(f.Zone).SetDown(false) }

func (f ZonePartition) validate(t *Target) error {
	if err := needZone(t, f.Zone); err != nil {
		return err
	}
	if t.Cluster.ZoneUplink(f.Zone) == nil {
		return fmt.Errorf("zone-partition/%s: zone has no uplink", f.Zone)
	}
	return nil
}

// SlowZone inflates service times for every pod in a zone — the
// correlated gray failure (an overloaded shared node, a thermal
// throttle, a noisy neighbor on the zone's storage) where the whole
// domain keeps answering, slowly.
type SlowZone struct {
	Zone   string
	Factor float64
}

// Name implements Fault.
func (f SlowZone) Name() string { return "slow-zone/" + f.Zone }

// Inject implements Fault.
func (f SlowZone) Inject(t *Target) {
	for _, pod := range t.Cluster.ZonePods(f.Zone) {
		pod.SetExecFactor(f.Factor)
	}
}

// Revert implements Fault.
func (f SlowZone) Revert(t *Target) {
	for _, pod := range t.Cluster.ZonePods(f.Zone) {
		pod.SetExecFactor(1)
	}
}

func (f SlowZone) validate(t *Target) error {
	if err := needZone(t, f.Zone); err != nil {
		return err
	}
	if f.Factor < 1 {
		return fmt.Errorf("slow-zone/%s: Factor must be >= 1", f.Zone)
	}
	return nil
}

func needZone(t *Target, zone string) error {
	if len(t.Cluster.ZonePods(zone)) == 0 {
		return fmt.Errorf("unknown or empty zone %q", zone)
	}
	return nil
}
