package chaos

import (
	"fmt"
	"time"

	"meshlayer/internal/mesh"
	"meshlayer/internal/simnet"
)

// PodCrash kills a pod for the event's duration: its sockets die with
// the process and its network blackholes until the restart. The
// orchestrator is deliberately not told (no readiness flip): detecting
// the loss is the mesh's job, via timeouts, circuit breakers, and
// active health checks.
type PodCrash struct {
	Pod string
}

// Name implements Fault.
func (f PodCrash) Name() string { return "pod-crash/" + f.Pod }

// Inject implements Fault.
func (f PodCrash) Inject(t *Target) {
	pod := t.Cluster.Pod(f.Pod)
	pod.Partition(true)
	// A crashed process takes its connections with it. Without this,
	// the pod's half-open peers would keep retransmitting responses
	// nobody wants and flood the network when the partition heals.
	pod.Host().ResetConns()
}

// Revert implements Fault.
func (f PodCrash) Revert(t *Target) { t.Cluster.Pod(f.Pod).Partition(false) }

func (f PodCrash) validate(t *Target) error { return needPod(t, f.Pod) }

// LinkFlap repeatedly takes a pod's uplink down for DownFor out of
// every Period — the flapping-interface failure that defeats naive
// "mark dead on first error" logic. Use a pointer in scenarios: the
// flap loop lives on the value.
type LinkFlap struct {
	Pod string
	// Period is the flap cycle length.
	Period time.Duration
	// DownFor is how long the link stays down each cycle (< Period).
	DownFor time.Duration

	active bool
}

// Name implements Fault.
func (f *LinkFlap) Name() string { return "link-flap/" + f.Pod }

// Inject implements Fault.
func (f *LinkFlap) Inject(t *Target) {
	f.active = true
	f.cycle(t)
}

// Revert implements Fault.
func (f *LinkFlap) Revert(t *Target) {
	f.active = false
	setLinkDown(t, f.Pod, false)
}

// cycle takes the link down, schedules it back up after DownFor, and
// re-arms for the next period while the fault is active.
func (f *LinkFlap) cycle(t *Target) {
	if !f.active {
		return
	}
	setLinkDown(t, f.Pod, true)
	t.Sched.After(f.DownFor, func() {
		if f.active {
			setLinkDown(t, f.Pod, false)
		}
	})
	t.Sched.After(f.Period, func() { f.cycle(t) })
}

func (f *LinkFlap) validate(t *Target) error {
	if err := needPod(t, f.Pod); err != nil {
		return err
	}
	if f.Period <= 0 || f.DownFor <= 0 || f.DownFor >= f.Period {
		return fmt.Errorf("link-flap/%s: need 0 < DownFor < Period", f.Pod)
	}
	return nil
}

// setLinkDown blackholes (or restores) both directions of the pod's
// uplink via a LossProb-1 impairment.
func setLinkDown(t *Target, pod string, down bool) {
	l := t.Cluster.Pod(pod).Uplink()
	var cfg simnet.Impairment
	if down {
		cfg = simnet.Impairment{LossProb: 1}
	}
	l.A().Impair(cfg)
	l.B().Impair(cfg)
}

// LossBurst degrades a pod's uplink with random loss and jitter in
// both directions — the congested/flaky-path failure the transport
// layer absorbs with retransmissions at a latency cost.
type LossBurst struct {
	Pod string
	// Loss is the per-packet drop probability in [0, 1].
	Loss float64
	// Jitter adds U(0, Jitter) propagation delay per packet.
	Jitter time.Duration
	// Seed drives the impairment PRNGs.
	Seed int64
}

// Name implements Fault.
func (f LossBurst) Name() string { return "loss-burst/" + f.Pod }

// Inject implements Fault.
func (f LossBurst) Inject(t *Target) {
	l := t.Cluster.Pod(f.Pod).Uplink()
	l.A().Impair(simnet.Impairment{LossProb: f.Loss, JitterMax: f.Jitter, Seed: f.Seed})
	l.B().Impair(simnet.Impairment{LossProb: f.Loss, JitterMax: f.Jitter, Seed: f.Seed + 1})
}

// Revert implements Fault.
func (f LossBurst) Revert(t *Target) {
	l := t.Cluster.Pod(f.Pod).Uplink()
	l.A().Impair(simnet.Impairment{})
	l.B().Impair(simnet.Impairment{})
}

func (f LossBurst) validate(t *Target) error {
	if err := needPod(t, f.Pod); err != nil {
		return err
	}
	if f.Loss < 0 || f.Loss > 1 {
		return fmt.Errorf("loss-burst/%s: Loss must be in [0, 1]", f.Pod)
	}
	return nil
}

// SlowPod inflates a pod's service times by Factor — the gray failure
// where a sick replica keeps answering 200s, slowly. Active health
// probes (answered by the sidecar) stay green; only latency-aware
// outlier detection sees it.
type SlowPod struct {
	Pod    string
	Factor float64
}

// Name implements Fault.
func (f SlowPod) Name() string { return "slow-pod/" + f.Pod }

// Inject implements Fault.
func (f SlowPod) Inject(t *Target) { t.Cluster.Pod(f.Pod).SetExecFactor(f.Factor) }

// Revert implements Fault.
func (f SlowPod) Revert(t *Target) { t.Cluster.Pod(f.Pod).SetExecFactor(1) }

func (f SlowPod) validate(t *Target) error {
	if err := needPod(t, f.Pod); err != nil {
		return err
	}
	if f.Factor < 1 {
		return fmt.Errorf("slow-pod/%s: Factor must be >= 1", f.Pod)
	}
	return nil
}

// ErrorRate makes a pod's application answer a fraction of requests
// with an error status (optionally after a stall) — the intermittent
// 5xx gray failure. Health probes keep passing by design; success-rate
// outlier detection is the defense that catches it.
type ErrorRate struct {
	Pod string
	// Prob is the per-request error probability.
	Prob float64
	// Status is the injected code (default 500).
	Status int
	// Delay stalls each injected error.
	Delay time.Duration
	// Seed drives the fault's PRNG.
	Seed int64
}

// Name implements Fault.
func (f ErrorRate) Name() string { return "error-rate/" + f.Pod }

// Inject implements Fault.
func (f ErrorRate) Inject(t *Target) {
	t.Mesh.Sidecar(f.Pod).SetServerFault(mesh.ServerFault{
		Prob: f.Prob, Status: f.Status, Delay: f.Delay, Seed: f.Seed,
	})
}

// Revert implements Fault.
func (f ErrorRate) Revert(t *Target) {
	t.Mesh.Sidecar(f.Pod).SetServerFault(mesh.ServerFault{})
}

func (f ErrorRate) validate(t *Target) error {
	if err := needPod(t, f.Pod); err != nil {
		return err
	}
	if t.Mesh.Sidecar(f.Pod) == nil {
		return fmt.Errorf("error-rate/%s: pod has no sidecar", f.Pod)
	}
	if f.Prob <= 0 || f.Prob > 1 {
		return fmt.Errorf("error-rate/%s: Prob must be in (0, 1]", f.Pod)
	}
	return nil
}

// Restart models one step of a rolling deploy: the pod is drained
// (readiness off — a discovery change the control plane must
// propagate), killed after Grace (partition + connection reset, as in
// PodCrash), and comes back ready when the event reverts. Sidecars
// with fresh discovery stop routing to the pod during the drain;
// sidecars on stale snapshots keep dialing it through the kill.
type Restart struct {
	Pod string
	// Grace is the drain window between readiness-off and the kill.
	Grace time.Duration
	// Resubscribe re-registers the pod's sidecar with the distributing
	// control plane when the pod comes back — the fresh proxy process
	// of a real restart rejoins instead of riding the old subscription.
	// Off by default (pre-survivability behavior); a no-op in
	// instant-propagation mode.
	Resubscribe bool
}

// Name implements Fault.
func (f Restart) Name() string { return "restart/" + f.Pod }

// Inject implements Fault.
func (f Restart) Inject(t *Target) {
	pod := t.Cluster.Pod(f.Pod)
	pod.SetReady(false)
	t.Sched.After(f.Grace, func() {
		if pod.Ready() {
			return // already reverted
		}
		pod.Partition(true)
		pod.Host().ResetConns()
	})
}

// Revert implements Fault.
func (f Restart) Revert(t *Target) {
	pod := t.Cluster.Pod(f.Pod)
	pod.Partition(false)
	pod.SetReady(true)
	if f.Resubscribe {
		t.Mesh.ControlPlane().ResubscribePod(f.Pod)
	}
}

func (f Restart) validate(t *Target) error { return needPod(t, f.Pod) }

// ControlPlaneCrash kills the distributing control plane for the
// event's duration: the control-plane pod partitions, in-flight
// pushes die with its sockets, and the server process loses all
// volatile push state. Sidecars keep routing on their last-good
// snapshots — static stability, the property that makes this fault
// survivable at all. On revert the control plane restarts into a new
// epoch and every subscriber must full-resync: the resync storm the
// ctrlplane backoff/backpressure/admission knobs exist to suppress.
type ControlPlaneCrash struct{}

// Name implements Fault.
func (f ControlPlaneCrash) Name() string { return "ctrlplane-crash" }

// Inject implements Fault.
func (f ControlPlaneCrash) Inject(t *Target) { t.Mesh.ControlPlane().CrashDistribution() }

// Revert implements Fault.
func (f ControlPlaneCrash) Revert(t *Target) { t.Mesh.ControlPlane().RecoverDistribution() }

func (f ControlPlaneCrash) validate(t *Target) error {
	if !t.Mesh.ControlPlane().Distributed() {
		return fmt.Errorf("ctrlplane-crash: distribution not enabled")
	}
	return nil
}

// CPStale delays control-plane configuration propagation — the stale
// xDS failure where operators' pushes take effect long after they were
// applied. Policies already in force keep working; only changes lag.
// With the distributing control plane enabled, the delay is realized
// as genuine push suppression: staged updates are held back and every
// sidecar keeps routing on its last-acknowledged snapshot.
type CPStale struct {
	Delay time.Duration
}

// Name implements Fault.
func (f CPStale) Name() string { return fmt.Sprintf("cp-stale/%v", f.Delay) }

// Inject implements Fault.
func (f CPStale) Inject(t *Target) { t.Mesh.ControlPlane().SetPushDelay(f.Delay) }

// Revert implements Fault.
func (f CPStale) Revert(t *Target) { t.Mesh.ControlPlane().SetPushDelay(0) }

func needPod(t *Target, name string) error {
	if t.Cluster.Pod(name) == nil {
		return fmt.Errorf("unknown pod %q", name)
	}
	return nil
}
