package chaos

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"meshlayer/internal/cluster"
	"meshlayer/internal/mesh"
	"meshlayer/internal/simnet"
)

// zonedTarget builds a two-zone cluster: alpha/beta in zone-a,
// gamma in zone-b.
func zonedTarget(t *testing.T) *Target {
	t.Helper()
	sched := simnet.NewScheduler()
	net := simnet.NewNetwork(sched)
	cl := cluster.New(net)
	cl.AddZone("zone-a", simnet.LinkConfig{})
	cl.AddZone("zone-b", simnet.LinkConfig{})
	a := cl.AddPod(cluster.PodSpec{Name: "alpha", Labels: map[string]string{"app": "alpha"}, Zone: "zone-a"})
	b := cl.AddPod(cluster.PodSpec{Name: "beta", Labels: map[string]string{"app": "beta"}, Zone: "zone-a"})
	g := cl.AddPod(cluster.PodSpec{Name: "gamma", Labels: map[string]string{"app": "gamma"}, Zone: "zone-b"})
	m := mesh.New(cl, mesh.Config{Seed: 1})
	m.InjectSidecar(a)
	m.InjectSidecar(b)
	m.InjectSidecar(g)
	return &Target{Sched: sched, Cluster: cl, Mesh: m}
}

func TestZoneOutageCrashesAllButSpared(t *testing.T) {
	tg := zonedTarget(t)
	f := ZoneOutage{Zone: "zone-a", Except: []string{"beta"}}
	f.Inject(tg)
	if !tg.Cluster.Pod("alpha").Partitioned() {
		t.Fatal("alpha survived its zone's outage")
	}
	if tg.Cluster.Pod("beta").Partitioned() {
		t.Fatal("spared pod was crashed")
	}
	if tg.Cluster.Pod("gamma").Partitioned() {
		t.Fatal("outage leaked into another zone")
	}
	f.Revert(tg)
	if tg.Cluster.Pod("alpha").Partitioned() {
		t.Fatal("alpha not restored")
	}
}

func TestZonePartitionTogglesUplink(t *testing.T) {
	tg := zonedTarget(t)
	f := ZonePartition{Zone: "zone-b"}
	f.Inject(tg)
	if !tg.Cluster.ZoneUplink("zone-b").Down() {
		t.Fatal("uplink not severed")
	}
	// Pods inside the partitioned zone stay up.
	if tg.Cluster.Pod("gamma").Partitioned() {
		t.Fatal("partition crashed a pod")
	}
	f.Revert(tg)
	if tg.Cluster.ZoneUplink("zone-b").Down() {
		t.Fatal("uplink not restored")
	}
}

func TestSlowZoneScalesExecOfWholeZone(t *testing.T) {
	tg := zonedTarget(t)
	f := SlowZone{Zone: "zone-a", Factor: 10}
	f.Inject(tg)
	if got := tg.Cluster.Pod("alpha").ExecFactor(); got != 10 {
		t.Fatalf("alpha exec factor = %v, want 10", got)
	}
	if got := tg.Cluster.Pod("gamma").ExecFactor(); got != 1 {
		t.Fatalf("gamma exec factor = %v, want 1 (other zone)", got)
	}
	f.Revert(tg)
	if got := tg.Cluster.Pod("alpha").ExecFactor(); got != 1 {
		t.Fatalf("alpha exec factor after revert = %v", got)
	}
}

func TestZoneFaultValidation(t *testing.T) {
	cases := []struct {
		fault Fault
		want  string
	}{
		{ZoneOutage{Zone: "zone-x"}, "unknown or empty zone"},
		{ZonePartition{Zone: "zone-x"}, "unknown or empty zone"},
		{SlowZone{Zone: "zone-a", Factor: 0.5}, "Factor must be >= 1"},
	}
	for _, c := range cases {
		tg := zonedTarget(t)
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("Schedule(%s) accepted invalid fault", c.fault.Name())
					return
				}
				if msg := fmt.Sprint(r); !strings.Contains(msg, c.want) {
					t.Errorf("Schedule(%s) panic = %q, want containing %q", c.fault.Name(), msg, c.want)
				}
			}()
			NewEngine(tg).Schedule(Scenario{Name: "v", Events: []Event{
				{At: time.Millisecond, Fault: c.fault},
			}})
		}()
	}
	// A well-formed zone scenario schedules cleanly.
	tg := zonedTarget(t)
	NewEngine(tg).Schedule(Scenario{Name: "ok", Events: []Event{
		{At: time.Millisecond, Duration: time.Millisecond, Fault: ZoneOutage{Zone: "zone-a"}},
		{At: time.Millisecond, Duration: time.Millisecond, Fault: ZonePartition{Zone: "zone-b"}},
		{At: time.Millisecond, Duration: time.Millisecond, Fault: SlowZone{Zone: "zone-b", Factor: 2}},
	}})
	tg.Sched.Run()
}

func TestRecorderCounts(t *testing.T) {
	r := NewRecorder(100 * time.Millisecond)
	r.Observe(50*time.Millisecond, time.Millisecond, false)
	r.Observe(150*time.Millisecond, time.Millisecond, true)
	r.Observe(250*time.Millisecond, time.Millisecond, false)
	ok, fail := r.Counts(0, 200*time.Millisecond)
	if ok != 1 || fail != 1 {
		t.Fatalf("Counts[0,200ms) = (%d,%d), want (1,1)", ok, fail)
	}
	ok, fail = r.Counts(0, 300*time.Millisecond)
	if ok != 2 || fail != 1 {
		t.Fatalf("Counts[0,300ms) = (%d,%d), want (2,1)", ok, fail)
	}
}
