package chaos

import (
	"strings"
	"testing"
	"time"

	"meshlayer/internal/cluster"
	"meshlayer/internal/mesh"
	"meshlayer/internal/simnet"
)

// testTarget builds a two-pod cluster with a mesh, enough substrate
// for every fault type.
func testTarget(t *testing.T) *Target {
	t.Helper()
	sched := simnet.NewScheduler()
	net := simnet.NewNetwork(sched)
	cl := cluster.New(net)
	a := cl.AddPod(cluster.PodSpec{Name: "alpha", Labels: map[string]string{"app": "alpha"}})
	b := cl.AddPod(cluster.PodSpec{Name: "beta", Labels: map[string]string{"app": "beta"}})
	m := mesh.New(cl, mesh.Config{Seed: 1})
	m.InjectSidecar(a)
	m.InjectSidecar(b)
	return &Target{Sched: sched, Cluster: cl, Mesh: m}
}

// fakeFault records its injection/reversion times.
type fakeFault struct {
	injected, reverted []time.Duration
}

func (f *fakeFault) Name() string     { return "fake" }
func (f *fakeFault) Inject(t *Target) { f.injected = append(f.injected, t.Sched.Now()) }
func (f *fakeFault) Revert(t *Target) { f.reverted = append(f.reverted, t.Sched.Now()) }

func TestEngineSchedulesAndReverts(t *testing.T) {
	tg := testTarget(t)
	e := NewEngine(tg)
	f := &fakeFault{}
	perm := &fakeFault{}
	e.Schedule(Scenario{Name: "s", Events: []Event{
		{At: 100 * time.Millisecond, Duration: 50 * time.Millisecond, Fault: f},
		{At: 10 * time.Millisecond, Fault: perm}, // Duration 0: never reverted
	}})
	tg.Sched.Run()
	if len(f.injected) != 1 || f.injected[0] != 100*time.Millisecond {
		t.Fatalf("injected at %v", f.injected)
	}
	if len(f.reverted) != 1 || f.reverted[0] != 150*time.Millisecond {
		t.Fatalf("reverted at %v", f.reverted)
	}
	if len(perm.injected) != 1 || len(perm.reverted) != 0 {
		t.Fatalf("permanent fault: injected %v reverted %v", perm.injected, perm.reverted)
	}
	log := strings.Join(e.Log(), "\n")
	if !strings.Contains(log, "inject fake") || !strings.Contains(log, "revert fake") {
		t.Fatalf("log missing entries:\n%s", log)
	}
}

func TestScheduleValidatesFaults(t *testing.T) {
	tg := testTarget(t)
	e := NewEngine(tg)
	defer func() {
		if recover() == nil {
			t.Fatal("unknown pod accepted")
		}
	}()
	e.Schedule(Scenario{Name: "bad", Events: []Event{
		{At: 0, Fault: PodCrash{Pod: "nope"}},
	}})
}

func TestPodCrashPartitionsAndRestores(t *testing.T) {
	tg := testTarget(t)
	e := NewEngine(tg)
	e.Schedule(Scenario{Events: []Event{
		{At: time.Second, Duration: time.Second, Fault: PodCrash{Pod: "alpha"}},
	}})
	pod := tg.Cluster.Pod("alpha")
	tg.Sched.At(1500*time.Millisecond, func() {
		if !pod.Partitioned() {
			t.Error("pod not partitioned during fault")
		}
	})
	tg.Sched.Run()
	if pod.Partitioned() {
		t.Fatal("pod still partitioned after revert")
	}
}

func TestLinkFlapToggles(t *testing.T) {
	tg := testTarget(t)
	e := NewEngine(tg)
	e.Schedule(Scenario{Events: []Event{
		{At: 0, Duration: time.Second, Fault: &LinkFlap{
			Pod: "alpha", Period: 200 * time.Millisecond, DownFor: 50 * time.Millisecond,
		}},
	}})
	nic := tg.Cluster.Pod("alpha").Uplink().A()
	downs, ups := 0, 0
	// Sample mid-down (t % 200 in [0,50)) and mid-up windows.
	for i := 0; i < 5; i++ {
		base := time.Duration(i) * 200 * time.Millisecond
		tg.Sched.At(base+25*time.Millisecond, func() {
			if nic.Impaired() {
				downs++
			}
		})
		tg.Sched.At(base+125*time.Millisecond, func() {
			if !nic.Impaired() {
				ups++
			}
		})
	}
	tg.Sched.Run()
	if downs != 5 || ups != 5 {
		t.Fatalf("downs=%d ups=%d, want 5/5", downs, ups)
	}
	if nic.Impaired() {
		t.Fatal("link still impaired after revert")
	}
}

func TestLossBurstAppliesBothDirections(t *testing.T) {
	tg := testTarget(t)
	f := LossBurst{Pod: "beta", Loss: 0.1, Jitter: time.Millisecond, Seed: 9}
	f.Inject(tg)
	l := tg.Cluster.Pod("beta").Uplink()
	if !l.A().Impaired() || !l.B().Impaired() {
		t.Fatal("impairment not applied to both directions")
	}
	f.Revert(tg)
	if l.A().Impaired() || l.B().Impaired() {
		t.Fatal("impairment not cleared")
	}
}

func TestSlowPodScalesExec(t *testing.T) {
	tg := testTarget(t)
	f := SlowPod{Pod: "alpha", Factor: 8}
	f.Inject(tg)
	if got := tg.Cluster.Pod("alpha").ExecFactor(); got != 8 {
		t.Fatalf("exec factor = %v", got)
	}
	f.Revert(tg)
	if got := tg.Cluster.Pod("alpha").ExecFactor(); got != 1 {
		t.Fatalf("exec factor after revert = %v", got)
	}
}

func TestCPStaleDelaysPush(t *testing.T) {
	tg := testTarget(t)
	e := NewEngine(tg)
	e.Schedule(Scenario{Events: []Event{
		{At: 0, Duration: time.Second, Fault: CPStale{Delay: 500 * time.Millisecond}},
	}})
	cp := tg.Mesh.ControlPlane()
	tg.Sched.At(100*time.Millisecond, func() {
		cp.SetLBPolicy("beta", mesh.LBRandom)
		if cp.LBPolicyFor("beta") != mesh.LBRoundRobin {
			t.Error("policy applied immediately under CP staleness")
		}
	})
	tg.Sched.At(700*time.Millisecond, func() {
		if cp.LBPolicyFor("beta") != mesh.LBRandom {
			t.Error("policy never arrived")
		}
	})
	tg.Sched.Run()
}

func TestRecorderErrorRateAndRecovery(t *testing.T) {
	r := NewRecorder(100 * time.Millisecond)
	// Buckets 0-4: bucket 1 and 2 have failures, rest clean.
	r.Observe(50*time.Millisecond, time.Millisecond, false)
	r.Observe(150*time.Millisecond, time.Millisecond, true)
	r.Observe(160*time.Millisecond, time.Millisecond, false)
	r.Observe(250*time.Millisecond, time.Millisecond, true)
	r.Observe(350*time.Millisecond, time.Millisecond, false)
	r.Observe(450*time.Millisecond, time.Millisecond, false)

	if got := r.ErrorRate(0, 500*time.Millisecond); got != 2.0/6.0 {
		t.Fatalf("ErrorRate = %v", got)
	}
	if got := r.ErrorRate(300*time.Millisecond, 500*time.Millisecond); got != 0 {
		t.Fatalf("clean-window ErrorRate = %v", got)
	}
	// Fault at 150ms: first clean run of 2 buckets starts at bucket 3
	// (300ms) → TTR = 150ms.
	ttr, ok := r.RecoveryTime(150*time.Millisecond, 2)
	if !ok || ttr != 150*time.Millisecond {
		t.Fatalf("RecoveryTime = %v, %v", ttr, ok)
	}
	// Never-recovered stream.
	r2 := NewRecorder(100 * time.Millisecond)
	r2.Observe(50*time.Millisecond, 0, true)
	if _, ok := r2.RecoveryTime(0, 2); ok {
		t.Fatal("recovery reported for all-failing stream")
	}
}
