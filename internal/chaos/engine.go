// Package chaos is a deterministic fault-injection harness for the
// simulated mesh: scenarios schedule composable faults (pod crashes,
// link flaps, loss bursts, gray failures, control-plane staleness) on
// the virtual clock and revert them after their duration, while a
// recorder tracks availability and recovery. Everything is driven by
// the simulation scheduler and seeded PRNGs, so a scenario replays
// bit-identically — the property the determinism golden check in CI
// enforces.
//
// The package exists to answer the paper's implicit question (§3.4):
// if the mesh layer owns resilience, does it actually keep the
// application up when the substrate misbehaves? E15 runs these
// scenarios against increasing defense levels to find out.
package chaos

import (
	"fmt"
	"time"

	"meshlayer/internal/cluster"
	"meshlayer/internal/mesh"
	"meshlayer/internal/simnet"
)

// Target is everything a fault may manipulate.
type Target struct {
	Sched   *simnet.Scheduler
	Cluster *cluster.Cluster
	Mesh    *mesh.Mesh
}

// Fault is one revertible failure mode. Inject and Revert are invoked
// by the engine on the virtual clock; a Fault must restore the exact
// pre-injection state on Revert.
type Fault interface {
	Name() string
	Inject(t *Target)
	Revert(t *Target)
}

// validator is implemented by faults that can sanity-check their
// configuration against the target before the scenario starts.
type validator interface {
	validate(t *Target) error
}

// Event schedules one fault within a scenario.
type Event struct {
	// At is the absolute virtual time of injection.
	At time.Duration
	// Duration is how long the fault persists before the engine
	// reverts it. Zero means the fault is never reverted (a permanent
	// failure for the run).
	Duration time.Duration
	Fault    Fault
}

// Scenario is a named, ordered set of fault events — the DSL a chaos
// suite is written in.
type Scenario struct {
	Name   string
	Events []Event
}

// Engine arms a scenario's events on the scheduler and keeps a
// human-readable log of every injection and reversion.
type Engine struct {
	target *Target
	log    []string
}

// NewEngine builds an engine over a fully-populated target.
func NewEngine(t *Target) *Engine {
	if t == nil || t.Sched == nil || t.Cluster == nil || t.Mesh == nil {
		panic("chaos: engine target needs Sched, Cluster, and Mesh")
	}
	return &Engine{target: t}
}

// Schedule validates the scenario and arms every event. Call before
// running the scheduler; injection/reversion then happen at their
// virtual times.
func (e *Engine) Schedule(s Scenario) {
	for i, ev := range s.Events {
		if ev.Fault == nil {
			panic(fmt.Sprintf("chaos: scenario %q event %d has no fault", s.Name, i))
		}
		if ev.At < 0 || ev.Duration < 0 {
			panic(fmt.Sprintf("chaos: scenario %q event %d has negative time", s.Name, i))
		}
		if v, ok := ev.Fault.(validator); ok {
			if err := v.validate(e.target); err != nil {
				panic(fmt.Sprintf("chaos: scenario %q event %d: %v", s.Name, i, err))
			}
		}
		ev := ev
		e.target.Sched.At(ev.At, func() {
			e.logf("%v inject %s", e.target.Sched.Now(), ev.Fault.Name())
			ev.Fault.Inject(e.target)
		})
		if ev.Duration > 0 {
			e.target.Sched.At(ev.At+ev.Duration, func() {
				e.logf("%v revert %s", e.target.Sched.Now(), ev.Fault.Name())
				ev.Fault.Revert(e.target)
			})
		}
	}
}

// Log returns the injection/reversion history so far.
func (e *Engine) Log() []string { return e.log }

func (e *Engine) logf(format string, args ...any) {
	e.log = append(e.log, fmt.Sprintf(format, args...))
}
