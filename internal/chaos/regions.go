package chaos

import (
	"fmt"
	"time"

	"meshlayer/internal/simnet"
)

// This file holds WAN-scale correlated faults: whole regions going
// dark, the WAN links between them partitioning or degrading, and the
// operational event that motivates priority failover ladders — a
// region being drained on purpose. Zone faults (zones.go) stress the
// intra-region spine; these stress the federation layer above it.

// RegionOutage crashes every pod in a region at once (regional power
// event, a control-plane-wide bad rollout). Except lists pods spared —
// typically the region's east-west gateway when the experiment wants
// the WAN path itself to stay observable.
type RegionOutage struct {
	Region string
	Except []string
}

// Name implements Fault.
func (f RegionOutage) Name() string { return "region-outage/" + f.Region }

// Inject implements Fault.
func (f RegionOutage) Inject(t *Target) {
	for _, pod := range t.Cluster.RegionPods(f.Region) {
		if containsName(f.Except, pod.Name()) {
			continue
		}
		pod.Partition(true)
		pod.Host().ResetConns()
	}
}

// Revert implements Fault.
func (f RegionOutage) Revert(t *Target) {
	for _, pod := range t.Cluster.RegionPods(f.Region) {
		if containsName(f.Except, pod.Name()) {
			continue
		}
		pod.Partition(false)
	}
}

func (f RegionOutage) validate(t *Target) error { return needRegion(t, f.Region) }

// WANPartition severs every WAN link touching a region: the region
// keeps serving its local traffic, but cross-region calls blackhole
// and its control plane stops exchanging capacity summaries — the
// split-brain case where each side routes on a frozen view of the
// other.
type WANPartition struct {
	Region string
}

// Name implements Fault.
func (f WANPartition) Name() string { return "wan-partition/" + f.Region }

// Inject implements Fault.
func (f WANPartition) Inject(t *Target) { f.setDown(t, true) }

// Revert implements Fault.
func (f WANPartition) Revert(t *Target) { f.setDown(t, false) }

func (f WANPartition) setDown(t *Target, down bool) {
	for _, peer := range t.Cluster.Regions() {
		if peer == f.Region {
			continue
		}
		if l := t.Cluster.WANLink(f.Region, peer); l != nil {
			l.SetDown(down)
		}
	}
}

func (f WANPartition) validate(t *Target) error {
	if err := needRegion(t, f.Region); err != nil {
		return err
	}
	if len(t.Cluster.Regions()) < 2 {
		return fmt.Errorf("wan-partition/%s: cluster has no WAN links", f.Region)
	}
	return nil
}

// SlowWAN degrades every WAN link touching a region without severing
// it: up to Extra additional one-way delay (uniform, so reordering
// emerges) and optional random loss. The WAN gray failure — congested
// backbone, a flapping long-haul path — where cross-region calls still
// complete, slowly and lossily.
type SlowWAN struct {
	Region string
	Extra  time.Duration
	Loss   float64
	Seed   int64
}

// Name implements Fault.
func (f SlowWAN) Name() string { return "slow-wan/" + f.Region }

// Inject implements Fault.
func (f SlowWAN) Inject(t *Target) {
	i := 0
	for _, peer := range t.Cluster.Regions() {
		if peer == f.Region {
			continue
		}
		l := t.Cluster.WANLink(f.Region, peer)
		if l == nil {
			continue
		}
		// Distinct seeds per direction keep the two flows' loss draws
		// independent and the whole fault deterministic.
		l.A().Impair(simnet.Impairment{LossProb: f.Loss, JitterMax: f.Extra, Seed: f.Seed + int64(2*i)})
		l.B().Impair(simnet.Impairment{LossProb: f.Loss, JitterMax: f.Extra, Seed: f.Seed + int64(2*i+1)})
		i++
	}
}

// Revert implements Fault.
func (f SlowWAN) Revert(t *Target) {
	for _, peer := range t.Cluster.Regions() {
		if peer == f.Region {
			continue
		}
		if l := t.Cluster.WANLink(f.Region, peer); l != nil {
			l.A().Impair(simnet.Impairment{})
			l.B().Impair(simnet.Impairment{})
		}
	}
}

func (f SlowWAN) validate(t *Target) error {
	if err := needRegion(t, f.Region); err != nil {
		return err
	}
	if f.Loss < 0 || f.Loss > 1 {
		return fmt.Errorf("slow-wan/%s: Loss must be in [0, 1]", f.Region)
	}
	if len(t.Cluster.Regions()) < 2 {
		return fmt.Errorf("slow-wan/%s: cluster has no WAN links", f.Region)
	}
	return nil
}

// RegionEvacuate drains a region the way an operator would: pods are
// marked unready one at a time, staggered evenly across Window, so
// discovery and the failover ladder absorb a moving target rather than
// a step function. Except lists pods never drained (gateways, the
// regional control plane — infrastructure that outlives the
// evacuation). Revert cancels any pending drain timers and restores
// readiness for pods already drained.
type RegionEvacuate struct {
	Region string
	Window time.Duration
	Except []string

	timers  []simnet.Timer
	drained []string
}

// Name implements Fault.
func (f *RegionEvacuate) Name() string { return "region-evacuate/" + f.Region }

// Inject implements Fault.
func (f *RegionEvacuate) Inject(t *Target) {
	var victims []string
	for _, pod := range t.Cluster.RegionPods(f.Region) {
		if !containsName(f.Except, pod.Name()) && pod.Ready() {
			victims = append(victims, pod.Name())
		}
	}
	if len(victims) == 0 {
		return
	}
	step := f.Window / time.Duration(len(victims))
	for k, name := range victims {
		name := name
		fire := func() {
			t.Cluster.Pod(name).SetReady(false)
			f.drained = append(f.drained, name)
		}
		if k == 0 {
			fire()
			continue
		}
		f.timers = append(f.timers, t.Sched.After(time.Duration(k)*step, fire))
	}
}

// Revert implements Fault.
func (f *RegionEvacuate) Revert(t *Target) {
	for _, timer := range f.timers {
		timer.Cancel()
	}
	f.timers = nil
	for _, name := range f.drained {
		t.Cluster.Pod(name).SetReady(true)
	}
	f.drained = nil
}

func (f *RegionEvacuate) validate(t *Target) error {
	if err := needRegion(t, f.Region); err != nil {
		return err
	}
	if f.Window <= 0 {
		return fmt.Errorf("region-evacuate/%s: Window must be positive", f.Region)
	}
	return nil
}

func needRegion(t *Target, region string) error {
	if len(t.Cluster.RegionPods(region)) == 0 {
		return fmt.Errorf("unknown or empty region %q", region)
	}
	return nil
}

func containsName(names []string, name string) bool {
	for _, n := range names {
		if n == name {
			return true
		}
	}
	return false
}
