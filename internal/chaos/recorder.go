package chaos

import "time"

// Recorder buckets request completions on the virtual clock so a
// scenario can be scored for availability and time-to-recovery. Its
// Observe matches the workload package's observer signature — plug it
// into a workload's OnComplete / MixedConfig observer.
type Recorder struct {
	bucket  time.Duration
	buckets map[int]*bucketCounts
	maxIdx  int
}

type bucketCounts struct {
	ok   uint64
	fail uint64
}

// NewRecorder builds a recorder with the given bucket width.
func NewRecorder(bucket time.Duration) *Recorder {
	if bucket <= 0 {
		panic("chaos: recorder bucket must be > 0")
	}
	return &Recorder{bucket: bucket, buckets: make(map[int]*bucketCounts)}
}

// Bucket returns the bucket width.
func (r *Recorder) Bucket() time.Duration { return r.bucket }

// Observe records one request completion at virtual time at.
func (r *Recorder) Observe(at, latency time.Duration, failed bool) {
	_ = latency
	i := int(at / r.bucket)
	b := r.buckets[i]
	if b == nil {
		b = &bucketCounts{}
		r.buckets[i] = b
	}
	if failed {
		b.fail++
	} else {
		b.ok++
	}
	if i > r.maxIdx {
		r.maxIdx = i
	}
}

// Counts returns the (ok, failed) completion totals over [from, to) —
// the raw numbers behind ErrorRate, for availability computations that
// need to weight windows by their traffic.
func (r *Recorder) Counts(from, to time.Duration) (ok, fail uint64) {
	for i := int(from / r.bucket); time.Duration(i)*r.bucket < to; i++ {
		if b := r.buckets[i]; b != nil {
			ok += b.ok
			fail += b.fail
		}
	}
	return ok, fail
}

// ErrorRate returns failed/total over [from, to) (0 when no samples).
func (r *Recorder) ErrorRate(from, to time.Duration) float64 {
	var ok, fail uint64
	for i := int(from / r.bucket); time.Duration(i)*r.bucket < to; i++ {
		if b := r.buckets[i]; b != nil {
			ok += b.ok
			fail += b.fail
		}
	}
	if ok+fail == 0 {
		return 0
	}
	return float64(fail) / float64(ok+fail)
}

// RecoveryTime returns how long after `from` the stream first shows
// `clean` consecutive failure-free buckets — the scenario's
// time-to-recovery for a fault injected at `from`. Buckets with no
// samples count as clean. ok=false means service never recovered
// within the recorded window.
func (r *Recorder) RecoveryTime(from time.Duration, clean int) (time.Duration, bool) {
	if clean <= 0 {
		clean = 1
	}
	start := int(from / r.bucket)
	run := 0
	for i := start; i <= r.maxIdx; i++ {
		b := r.buckets[i]
		if b == nil || b.fail == 0 {
			run++
			if run >= clean {
				// Recovery is the start of the clean run.
				head := i - clean + 1
				d := time.Duration(head)*r.bucket - from
				if d < 0 {
					d = 0
				}
				return d, true
			}
		} else {
			run = 0
		}
	}
	return 0, false
}
