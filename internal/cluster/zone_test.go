package cluster

import (
	"testing"
	"time"

	"meshlayer/internal/simnet"
	"meshlayer/internal/transport"
)

// Tests for multi-zone topology: zone bridges, uplinks, pod placement,
// and the single-zone degenerate case.

func TestZoneTopologyAndLookups(t *testing.T) {
	_, c := newCluster(t)
	c.AddZone("zone-a", simnet.LinkConfig{})
	c.AddZone("zone-b", DefaultZoneUplink)

	a1 := c.AddPod(PodSpec{Name: "a1", Zone: "zone-a"})
	b1 := c.AddPod(PodSpec{Name: "b1", Zone: "zone-b"})
	b2 := c.AddPod(PodSpec{Name: "b2", Zone: "zone-b"})
	free := c.AddPod(PodSpec{Name: "free"})

	if got := c.Zones(); len(got) != 2 || got[0] != "zone-a" || got[1] != "zone-b" {
		t.Fatalf("Zones() = %v", got)
	}
	if a1.Zone() != "zone-a" || free.Zone() != "" {
		t.Fatal("pod zone accessor wrong")
	}
	if a1.Label(ZoneLabel) != "zone-a" {
		t.Fatal("zone label not applied to pod")
	}
	if got := c.ZonePods("zone-b"); len(got) != 2 || got[0] != b1 || got[1] != b2 {
		t.Fatalf("ZonePods(zone-b) = %v", got)
	}
	if got := c.ZonePods("zone-x"); len(got) != 0 {
		t.Fatalf("unknown zone returned pods: %v", got)
	}
	if c.ZoneUplink("zone-a") == nil || c.ZoneBridge("zone-a") == nil {
		t.Fatal("zone infrastructure missing")
	}
	// Zero-rate uplink config selects the default spine link.
	if got := c.ZoneUplink("zone-a").Config().Rate; got != DefaultZoneUplink.Rate {
		t.Fatalf("default uplink rate = %d, want %d", got, DefaultZoneUplink.Rate)
	}
}

func TestZoneLazyCreationOnPodAdd(t *testing.T) {
	_, c := newCluster(t)
	// A pod naming an undeclared zone creates it with default uplink.
	c.AddPod(PodSpec{Name: "p", Zone: "zone-z"})
	if got := c.Zones(); len(got) != 1 || got[0] != "zone-z" {
		t.Fatalf("Zones() = %v", got)
	}
	if c.ZoneUplink("zone-z") == nil {
		t.Fatal("lazily created zone has no uplink")
	}
}

func TestDuplicateZonePanics(t *testing.T) {
	_, c := newCluster(t)
	c.AddZone("zone-a", simnet.LinkConfig{})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate zone accepted")
		}
	}()
	c.AddZone("zone-a", simnet.LinkConfig{})
}

func TestCrossZoneTrafficTraversesSpine(t *testing.T) {
	s, c := newCluster(t)
	c.AddZone("zone-a", simnet.LinkConfig{})
	c.AddZone("zone-b", simnet.LinkConfig{})
	a := c.AddPod(PodSpec{Name: "a", Zone: "zone-a"})
	b := c.AddPod(PodSpec{Name: "b", Zone: "zone-b"})

	// Cross-zone connectivity: a reaches b through bridge-a -> root ->
	// bridge-b; severing zone-b's uplink blackholes the path; reverting
	// restores it.
	got := 0
	b.Host().Listen(80, func(conn *transport.Conn) {
		conn.SetOnMessage(func(any, int) { got++ })
	})
	ping := func(at time.Duration) {
		s.At(at, func() {
			conn := a.Host().Dial(b.Addr(), 80, transport.Options{})
			conn.SendMessage("x", 1000)
		})
	}
	ping(0)
	s.At(400*time.Millisecond, func() {
		if got != 1 {
			t.Errorf("cross-zone packet not delivered (got=%d)", got)
		}
		c.ZoneUplink("zone-b").SetDown(true)
	})
	ping(500 * time.Millisecond)
	s.At(900*time.Millisecond, func() {
		if got != 1 {
			t.Errorf("packet crossed a downed zone uplink (got=%d)", got)
		}
		if !c.ZoneUplink("zone-b").Down() {
			t.Error("uplink not reporting down")
		}
		c.ZoneUplink("zone-b").SetDown(false)
	})
	ping(time.Second)
	s.RunUntil(2 * time.Second)
	// After restore both the new ping AND the retransmitted in-flight
	// message land: the downed window only delayed, never dropped, the
	// reliable transport.
	if got != 3 {
		t.Fatalf("restored uplink still black-holing (got=%d)", got)
	}
}
