// Package cluster models the container-orchestration substrate the mesh
// runs on: pods attached to a host bridge through virtual links (the
// KIND-style veth topology of the paper's testbed), label-selected
// services with replica endpoints, and per-pod worker pools bounding
// compute concurrency.
package cluster

import (
	"fmt"
	"sort"
	"time"

	"meshlayer/internal/simnet"
	"meshlayer/internal/transport"
)

// DefaultLink mirrors the paper's testbed: 15 Gbps inter-pod links with
// a small propagation delay standing in for the veth/bridge traversal.
var DefaultLink = simnet.LinkConfig{Rate: 15 * simnet.Gbps, Delay: 20 * time.Microsecond}

// DefaultZoneUplink connects a zone's bridge to the cluster's root
// bridge: a fat spine link whose propagation delay models the
// inter-zone RTT cost that makes locality-aware routing worth having.
var DefaultZoneUplink = simnet.LinkConfig{Rate: 40 * simnet.Gbps, Delay: 250 * time.Microsecond}

// DefaultWANLink joins two region spines: an order of magnitude less
// capacity than the intra-cluster spine and a 25 ms one-way delay
// (~50 ms RTT), the geography that makes cross-region failover a last
// resort rather than free capacity.
var DefaultWANLink = simnet.LinkConfig{Rate: 10 * simnet.Gbps, Delay: 25 * time.Millisecond}

// ZoneLabel is the well-known pod label carrying the pod's zone, set
// automatically from PodSpec.Zone (topology.kubernetes.io/zone in
// Kubernetes terms, shortened for the simulator).
const ZoneLabel = "zone"

// RegionLabel is the well-known pod label carrying the pod's region,
// set automatically from PodSpec.Region
// (topology.kubernetes.io/region in Kubernetes terms).
const RegionLabel = "region"

// PodSpec describes a pod to create.
type PodSpec struct {
	Name   string
	Labels map[string]string
	// Link overrides the pod's uplink to the bridge; zero Rate selects
	// DefaultLink. The paper's bottleneck is expressed by giving the
	// ratings pod a 1 Gbps uplink.
	Link simnet.LinkConfig
	// Workers bounds concurrent request execution in the pod
	// (container CPU concurrency). <= 0 means effectively unbounded.
	Workers int
	// Zone places the pod behind that zone's bridge instead of the root
	// bridge, creating the zone (with DefaultZoneUplink) on first use.
	// Empty keeps the single-zone topology unchanged.
	Zone string
	// Region places the pod's zone (or, with no Zone, the pod itself)
	// under that region's spine instead of the root bridge, creating the
	// region (with DefaultWANLink to every earlier region) on first use.
	// Empty keeps the single-region topology unchanged: zero-value specs
	// reproduce the pre-federation wiring exactly.
	Region string
}

// Pod is one scheduled workload instance with its own network identity.
type Pod struct {
	name        string
	labels      map[string]string
	node        *simnet.Node
	host        *transport.Host
	uplink      *simnet.Link
	workers     *WorkerPool
	zone        string
	region      string
	notReady    bool
	partitioned bool
	execFactor  float64 // 0 or 1 = nominal speed
	// topoChanged, installed by the cluster, reports discovery-relevant
	// changes (readiness flips) to the topology hook.
	topoChanged func()
}

// Name returns the pod name.
func (p *Pod) Name() string { return p.name }

// Labels returns the pod's label map (callers must not mutate).
func (p *Pod) Labels() map[string]string { return p.labels }

// Label returns one label value ("" if absent).
func (p *Pod) Label(k string) string { return p.labels[k] }

// Zone returns the pod's zone ("" when the pod sits on the root
// bridge of a single-zone cluster).
func (p *Pod) Zone() string { return p.zone }

// Region returns the pod's region ("" in a single-region cluster).
func (p *Pod) Region() string { return p.region }

// Node returns the pod's simnet node.
func (p *Pod) Node() *simnet.Node { return p.node }

// Addr returns the pod IP.
func (p *Pod) Addr() simnet.Addr { return p.node.Addr() }

// Host returns the pod's transport endpoint.
func (p *Pod) Host() *transport.Host { return p.host }

// Uplink returns the pod-to-bridge link (where TC qdiscs are installed:
// the pod-side NIC is "the sidecar container's virtual interface").
func (p *Pod) Uplink() *simnet.Link { return p.uplink }

// NIC returns the pod-side NIC of the uplink.
func (p *Pod) NIC() *simnet.NIC { return p.uplink.A() }

// Exec runs fn after acquiring a worker and holding it for
// serviceTime — the pod's compute model. The time is scaled by the
// pod's exec factor, which chaos scenarios inflate to model gray
// degradation (CPU throttling, lock contention, a sick disk).
func (p *Pod) Exec(serviceTime time.Duration, fn func()) {
	if f := p.execFactor; f > 0 && f != 1 {
		serviceTime = time.Duration(float64(serviceTime) * f)
	}
	p.workers.Run(serviceTime, fn)
}

// ExecFactor returns the pod's service-time multiplier (1 = nominal).
func (p *Pod) ExecFactor() float64 {
	if p.execFactor <= 0 {
		return 1
	}
	return p.execFactor
}

// SetExecFactor scales all subsequent Exec service times by f. Values
// <= 0 reset to nominal speed. In-flight executions are unaffected —
// the degradation applies to work admitted after the fault starts,
// matching how real gray failures creep in.
func (p *Pod) SetExecFactor(f float64) {
	if f <= 0 {
		f = 1
	}
	p.execFactor = f
}

// Ready reports whether the pod passes its readiness probe. Unready
// pods are excluded from service endpoints (Kubernetes semantics), but
// existing connections keep working.
func (p *Pod) Ready() bool { return !p.notReady }

// SetReady flips the pod's readiness. Marking a pod unready drains new
// traffic away without disturbing in-flight work. Actual flips notify
// the cluster's topology hook (discovery churn).
func (p *Pod) SetReady(ready bool) {
	if p.notReady == !ready {
		return
	}
	p.notReady = !ready
	if p.topoChanged != nil {
		p.topoChanged()
	}
}

// Partitioned reports whether the pod is network-partitioned.
func (p *Pod) Partitioned() bool { return p.partitioned }

// Partition cuts (or restores) the pod's network: inbound packets are
// blackholed, modeling a partition or a hung host rather than a clean
// process exit. Callers' retries, timeouts, and circuit breakers are
// what recover service — exactly the failure the mesh's resilience
// machinery exists for.
func (p *Pod) Partition(cut bool) {
	p.partitioned = cut
	if cut {
		p.node.SetDeliver(func(*simnet.Packet) {})
	} else {
		p.host.Attach()
	}
}

// Workers returns the pod's worker pool.
func (p *Pod) Workers() *WorkerPool { return p.workers }

// Cluster owns pods and services on one simulated host.
type Cluster struct {
	net         *simnet.Network
	sched       *simnet.Scheduler
	bridge      *simnet.Node
	pods        map[string]*Pod
	podOrder    []string
	services    map[string]*Service
	zones       map[string]*zone
	zoneOrder   []string
	regions     map[string]*region
	regionOrder []string
	// onTopology, if set, runs after every discovery-relevant change:
	// a pod added or a readiness flip. The simulated control plane
	// subscribes here to learn about churn.
	onTopology func()
}

// zone is one failure domain: its own bridge node, uplinked to the
// root bridge (or, in a federated cluster, to its region's spine) so
// inter-zone traffic crosses exactly one spine link.
type zone struct {
	name   string
	region string
	bridge *simnet.Node
	uplink *simnet.Link
}

// region is one geography: a spine node its zones uplink to, joined to
// every other region's spine by a dedicated WAN link. The spines form a
// full mesh so chaos can sever one region pair without touching the
// rest; there is deliberately no path through the root bridge — a
// severed WAN link is a real partition, not a detour.
type region struct {
	name  string
	spine *simnet.Node
	// wan holds this region's WAN links keyed by peer region name; the
	// same *Link appears in both endpoints' maps.
	wan map[string]*simnet.Link
}

// New builds a cluster with a bridge node named "bridge".
func New(net *simnet.Network) *Cluster {
	return &Cluster{
		net:      net,
		sched:    net.Scheduler(),
		bridge:   net.AddNode("bridge"),
		pods:     make(map[string]*Pod),
		services: make(map[string]*Service),
		zones:    make(map[string]*zone),
		regions:  make(map[string]*region),
	}
}

// Network returns the underlying simnet network.
func (c *Cluster) Network() *simnet.Network { return c.net }

// Scheduler returns the simulation scheduler.
func (c *Cluster) Scheduler() *simnet.Scheduler { return c.sched }

// Bridge returns the host bridge node.
func (c *Cluster) Bridge() *simnet.Node { return c.bridge }

// AddZone creates a zone with an explicit uplink configuration. Zones
// are otherwise created lazily with DefaultZoneUplink by the first
// AddPod naming them; use AddZone first to override the spine link.
func (c *Cluster) AddZone(name string, uplink simnet.LinkConfig) {
	c.addZone(name, "", uplink)
}

// AddZoneInRegion creates a zone whose bridge uplinks to the region's
// spine instead of the root bridge. The region is created lazily (with
// DefaultWANLink) on first use.
func (c *Cluster) AddZoneInRegion(name, region string, uplink simnet.LinkConfig) {
	c.addZone(name, region, uplink)
}

func (c *Cluster) addZone(name, region string, uplink simnet.LinkConfig) {
	if name == "" {
		panic("cluster: zone needs a name")
	}
	if _, dup := c.zones[name]; dup {
		panic(fmt.Sprintf("cluster: duplicate zone %q", name))
	}
	if uplink.Rate == 0 {
		uplink = DefaultZoneUplink
	}
	parent := c.bridge
	if region != "" {
		parent = c.regionFor(region).spine
	}
	bridge := c.net.AddNode("bridge-" + name)
	z := &zone{name: name, region: region, bridge: bridge,
		uplink: c.net.Connect(bridge, parent, uplink)}
	c.zones[name] = z
	c.zoneOrder = append(c.zoneOrder, name)
}

func (c *Cluster) zoneFor(name, region string) *zone {
	if z := c.zones[name]; z != nil {
		if region != "" && z.region != region {
			panic(fmt.Sprintf("cluster: zone %q is in region %q, not %q",
				name, z.region, region))
		}
		return z
	}
	c.addZone(name, region, DefaultZoneUplink)
	return c.zones[name]
}

// AddRegion creates a region with an explicit WAN link configuration
// used for the links joining its spine to every earlier region's spine.
// Regions are otherwise created lazily with DefaultWANLink by the first
// AddPod (or zone) naming them.
func (c *Cluster) AddRegion(name string, wan simnet.LinkConfig) {
	if name == "" {
		panic("cluster: region needs a name")
	}
	if _, dup := c.regions[name]; dup {
		panic(fmt.Sprintf("cluster: duplicate region %q", name))
	}
	if wan.Rate == 0 {
		wan = DefaultWANLink
	}
	spine := c.net.AddNode("spine-" + name)
	r := &region{name: name, spine: spine, wan: make(map[string]*simnet.Link)}
	for _, peerName := range c.regionOrder {
		peer := c.regions[peerName]
		l := c.net.Connect(spine, peer.spine, wan)
		r.wan[peerName] = l
		peer.wan[name] = l
	}
	c.regions[name] = r
	c.regionOrder = append(c.regionOrder, name)
}

func (c *Cluster) regionFor(name string) *region {
	if r := c.regions[name]; r != nil {
		return r
	}
	c.AddRegion(name, DefaultWANLink)
	return c.regions[name]
}

// Regions returns region names in creation order.
func (c *Cluster) Regions() []string {
	return append([]string(nil), c.regionOrder...)
}

// RegionPods returns the region's pods in creation order.
func (c *Cluster) RegionPods(region string) []*Pod {
	var out []*Pod
	for _, n := range c.podOrder {
		if p := c.pods[n]; p.region == region {
			out = append(out, p)
		}
	}
	return out
}

// RegionSpine returns the region's spine node, or nil for an unknown
// region.
func (c *Cluster) RegionSpine(region string) *simnet.Node {
	if r := c.regions[region]; r != nil {
		return r.spine
	}
	return nil
}

// WANLink returns the link joining two regions' spines (symmetric in
// its arguments), or nil if either region is unknown. WAN-scale chaos
// severs or impairs these.
func (c *Cluster) WANLink(a, b string) *simnet.Link {
	if r := c.regions[a]; r != nil {
		return r.wan[b]
	}
	return nil
}

// ZoneRegion returns the region a zone belongs to ("" for a zone on
// the root bridge or an unknown zone).
func (c *Cluster) ZoneRegion(zone string) string {
	if z := c.zones[zone]; z != nil {
		return z.region
	}
	return ""
}

// Zones returns zone names in creation order.
func (c *Cluster) Zones() []string {
	return append([]string(nil), c.zoneOrder...)
}

// ZonePods returns the zone's pods in creation order.
func (c *Cluster) ZonePods(zone string) []*Pod {
	var out []*Pod
	for _, n := range c.podOrder {
		if p := c.pods[n]; p.zone == zone {
			out = append(out, p)
		}
	}
	return out
}

// ZoneUplink returns the zone's spine link to the root bridge, or nil
// for an unknown zone. Correlated-failure scenarios sever it with
// simnet.Link.SetDown to partition the whole zone at once.
func (c *Cluster) ZoneUplink(zone string) *simnet.Link {
	if z := c.zones[zone]; z != nil {
		return z.uplink
	}
	return nil
}

// ZoneBridge returns the zone's bridge node, or nil for an unknown zone.
func (c *Cluster) ZoneBridge(zone string) *simnet.Node {
	if z := c.zones[zone]; z != nil {
		return z.bridge
	}
	return nil
}

// AddPod creates a pod per the spec and attaches it to the bridge.
func (c *Cluster) AddPod(spec PodSpec) *Pod {
	if spec.Name == "" {
		panic("cluster: pod needs a name")
	}
	if _, dup := c.pods[spec.Name]; dup {
		panic(fmt.Sprintf("cluster: duplicate pod %q", spec.Name))
	}
	link := spec.Link
	if link.Rate == 0 {
		link = DefaultLink
	}
	bridge := c.bridge
	region := spec.Region
	switch {
	case spec.Zone != "":
		z := c.zoneFor(spec.Zone, spec.Region)
		bridge = z.bridge
		// A pod inherits its zone's region: placement in a regional zone
		// IS placement in that region.
		region = z.region
	case spec.Region != "":
		bridge = c.regionFor(spec.Region).spine
	}
	node := c.net.AddNode(spec.Name)
	l := c.net.Connect(node, bridge, link)
	labels := spec.Labels
	if labels == nil {
		labels = map[string]string{}
	}
	if spec.Zone != "" {
		labels[ZoneLabel] = spec.Zone
	}
	if region != "" {
		labels[RegionLabel] = region
	}
	p := &Pod{
		name:    spec.Name,
		labels:  labels,
		node:    node,
		host:    transport.NewHost(node),
		uplink:  l,
		zone:    spec.Zone,
		region:  region,
		workers: NewWorkerPool(c.sched, spec.Workers),
	}
	p.topoChanged = c.notifyTopology
	c.pods[spec.Name] = p
	c.podOrder = append(c.podOrder, spec.Name)
	c.notifyTopology()
	return p
}

// SetTopologyHook installs fn, called after every discovery-relevant
// change (pod added, readiness flipped). Nil clears the hook.
func (c *Cluster) SetTopologyHook(fn func()) { c.onTopology = fn }

func (c *Cluster) notifyTopology() {
	if c.onTopology != nil {
		c.onTopology()
	}
}

// Pod returns the named pod, or nil.
func (c *Cluster) Pod(name string) *Pod { return c.pods[name] }

// Pods returns all pods in creation order.
func (c *Cluster) Pods() []*Pod {
	out := make([]*Pod, 0, len(c.podOrder))
	for _, n := range c.podOrder {
		out = append(out, c.pods[n])
	}
	return out
}

// ConnectPods adds a direct pod-to-pod link (e.g. an SDN-managed
// alternate path) bypassing the bridge.
func (c *Cluster) ConnectPods(a, b *Pod, cfg simnet.LinkConfig) *simnet.Link {
	return c.net.Connect(a.node, b.node, cfg)
}

// AddUplink attaches an additional pod-to-bridge link (a second NIC),
// giving the pod parallel paths that SDN-style traffic engineering can
// spread flows across. Destination-based routing keeps using the first
// uplink; the extra path only carries flows pinned to it.
func (c *Cluster) AddUplink(p *Pod, cfg simnet.LinkConfig) *simnet.Link {
	if cfg.Rate == 0 {
		cfg = DefaultLink
	}
	return c.net.Connect(p.node, c.bridge, cfg)
}

// Service groups pods selected by labels under one name and port.
type Service struct {
	name     string
	port     uint16
	selector map[string]string
	cluster  *Cluster
}

// AddService registers a service selecting pods whose labels include
// every selector entry.
func (c *Cluster) AddService(name string, port uint16, selector map[string]string) *Service {
	if _, dup := c.services[name]; dup {
		panic(fmt.Sprintf("cluster: duplicate service %q", name))
	}
	s := &Service{name: name, port: port, selector: selector, cluster: c}
	c.services[name] = s
	return s
}

// Service returns the named service, or nil.
func (c *Cluster) Service(name string) *Service { return c.services[name] }

// Services returns all services sorted by name.
func (c *Cluster) Services() []*Service {
	names := make([]string, 0, len(c.services))
	for n := range c.services {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Service, 0, len(names))
	for _, n := range names {
		out = append(out, c.services[n])
	}
	return out
}

// Name returns the service name.
func (s *Service) Name() string { return s.name }

// Port returns the service port.
func (s *Service) Port() uint16 { return s.port }

// Endpoints returns ready pods matching the selector, in pod creation
// order (deterministic). Unready pods are excluded, mirroring
// Kubernetes endpoint semantics.
func (s *Service) Endpoints() []*Pod {
	var out []*Pod
	for _, p := range s.cluster.Pods() {
		if p.Ready() && matches(p.labels, s.selector) {
			out = append(out, p)
		}
	}
	return out
}

// Subset returns endpoints additionally matching one label — the mesh's
// destination-subset mechanism (e.g. version=v1 vs v2, or the
// cross-layer controller's priority pools).
func (s *Service) Subset(key, value string) []*Pod {
	var out []*Pod
	for _, p := range s.Endpoints() {
		if p.labels[key] == value {
			out = append(out, p)
		}
	}
	return out
}

func matches(labels, selector map[string]string) bool {
	for k, v := range selector {
		if labels[k] != v {
			return false
		}
	}
	return true
}
