package cluster

import (
	"time"

	"meshlayer/internal/simnet"
)

// WorkerPool bounds concurrent execution inside a pod: each Run
// occupies one worker for its service time; excess work queues FIFO.
// It is the compute analogue of the network queues — under overload,
// requests wait here, which is exactly the queueing the paper's §5
// "other resources beyond the network" remark points at.
type WorkerPool struct {
	sched    *simnet.Scheduler
	capacity int // <= 0: unbounded
	busy     int
	queue    []queued

	peakQueue int
	executed  uint64
}

type queued struct {
	serviceTime time.Duration
	fn          func()
}

// NewWorkerPool returns a pool with the given concurrency.
func NewWorkerPool(sched *simnet.Scheduler, capacity int) *WorkerPool {
	return &WorkerPool{sched: sched, capacity: capacity}
}

// Run acquires a worker (queueing if none free), holds it for
// serviceTime, then invokes fn and releases the worker.
func (w *WorkerPool) Run(serviceTime time.Duration, fn func()) {
	if w.capacity <= 0 {
		w.executed++
		w.sched.After(serviceTime, fn)
		return
	}
	if w.busy < w.capacity {
		w.start(serviceTime, fn)
		return
	}
	w.queue = append(w.queue, queued{serviceTime, fn})
	if len(w.queue) > w.peakQueue {
		w.peakQueue = len(w.queue)
	}
}

func (w *WorkerPool) start(serviceTime time.Duration, fn func()) {
	w.busy++
	w.executed++
	w.sched.After(serviceTime, func() {
		w.busy--
		fn()
		w.drain()
	})
}

func (w *WorkerPool) drain() {
	for w.busy < w.capacity && len(w.queue) > 0 {
		q := w.queue[0]
		w.queue = w.queue[1:]
		w.start(q.serviceTime, q.fn)
	}
}

// Busy returns the number of occupied workers.
func (w *WorkerPool) Busy() int { return w.busy }

// Capacity returns the pool's concurrency bound (0 = unbounded).
func (w *WorkerPool) Capacity() int {
	if w.capacity <= 0 {
		return 0
	}
	return w.capacity
}

// QueueLen returns the number of queued (not yet started) executions.
func (w *WorkerPool) QueueLen() int { return len(w.queue) }

// PeakQueue returns the high-water mark of the queue.
func (w *WorkerPool) PeakQueue() int { return w.peakQueue }

// Executed returns the number of executions started.
func (w *WorkerPool) Executed() uint64 { return w.executed }
