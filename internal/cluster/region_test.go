package cluster

import (
	"testing"

	"meshlayer/internal/simnet"
)

// Tests for the region tier: spines, WAN links, zone->region
// membership, and the zero-value single-region degenerate case.

func TestRegionTopologyAndLookups(t *testing.T) {
	_, c := newCluster(t)
	c.AddRegion("region-a", DefaultWANLink)
	c.AddRegion("region-b", simnet.LinkConfig{})
	c.AddZoneInRegion("zone-a1", "region-a", simnet.LinkConfig{})
	c.AddZoneInRegion("zone-b1", "region-b", simnet.LinkConfig{})

	// Zone membership implies region membership: a pod placed only by
	// zone inherits the zone's region, label included.
	zoned := c.AddPod(PodSpec{Name: "zoned", Zone: "zone-a1"})
	if zoned.Region() != "region-a" || zoned.Label(RegionLabel) != "region-a" {
		t.Fatalf("zone-placed pod region = %q label %q, want region-a",
			zoned.Region(), zoned.Label(RegionLabel))
	}
	// Region-only placement hangs the pod off the spine, zoneless.
	spined := c.AddPod(PodSpec{Name: "spined", Region: "region-b"})
	if spined.Region() != "region-b" || spined.Zone() != "" {
		t.Fatalf("spine pod region = %q zone = %q", spined.Region(), spined.Zone())
	}

	if got := c.Regions(); len(got) != 2 || got[0] != "region-a" || got[1] != "region-b" {
		t.Fatalf("Regions() = %v", got)
	}
	if got := c.RegionPods("region-a"); len(got) != 1 || got[0] != zoned {
		t.Fatalf("RegionPods(region-a) = %v", got)
	}
	if c.RegionSpine("region-a") == nil || c.RegionSpine("region-x") != nil {
		t.Fatal("RegionSpine lookup wrong")
	}
	if c.ZoneRegion("zone-b1") != "region-b" || c.ZoneRegion("zone-x") != "" {
		t.Fatalf("ZoneRegion = %q / %q", c.ZoneRegion("zone-b1"), c.ZoneRegion("zone-x"))
	}
	// WAN links are symmetric lookups over one physical link.
	ab, ba := c.WANLink("region-a", "region-b"), c.WANLink("region-b", "region-a")
	if ab == nil || ab != ba {
		t.Fatalf("WANLink lookup not symmetric: %v vs %v", ab, ba)
	}
	if c.WANLink("region-a", "region-x") != nil {
		t.Fatal("WANLink to unknown region should be nil")
	}
}

func TestRegionLazyCreationAndZeroValue(t *testing.T) {
	_, c := newCluster(t)
	// Zero value: no regions anywhere, all lookups empty.
	p := c.AddPod(PodSpec{Name: "flat"})
	if p.Region() != "" || len(c.Regions()) != 0 || c.WANLink("a", "b") != nil {
		t.Fatal("regionless cluster leaked region state")
	}

	// Naming an unknown region in a pod spec creates it lazily with the
	// default WAN profile — and wires it to every earlier region.
	c.AddRegion("region-a", DefaultWANLink)
	lazy := c.AddPod(PodSpec{Name: "lazy", Region: "region-z"})
	if lazy.Region() != "region-z" {
		t.Fatalf("lazy pod region = %q", lazy.Region())
	}
	if c.WANLink("region-a", "region-z") == nil {
		t.Fatal("lazily created region has no WAN link to existing region")
	}
}
