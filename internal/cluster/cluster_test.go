package cluster

import (
	"testing"
	"time"

	"meshlayer/internal/simnet"
	"meshlayer/internal/transport"
)

func newCluster(t *testing.T) (*simnet.Scheduler, *Cluster) {
	t.Helper()
	s := simnet.NewScheduler()
	n := simnet.NewNetwork(s)
	return s, New(n)
}

func TestPodCreationAndLookup(t *testing.T) {
	_, c := newCluster(t)
	p := c.AddPod(PodSpec{Name: "frontend", Labels: map[string]string{"app": "frontend"}})
	if c.Pod("frontend") != p {
		t.Fatal("lookup failed")
	}
	if p.Addr() == 0 {
		t.Fatal("pod has no address")
	}
	if p.Label("app") != "frontend" || p.Label("missing") != "" {
		t.Fatal("labels wrong")
	}
	if p.NIC() == nil || p.Uplink() == nil || p.Host() == nil {
		t.Fatal("pod infrastructure incomplete")
	}
	if got := p.Uplink().Config().Rate; got != DefaultLink.Rate {
		t.Fatalf("default link rate = %d", got)
	}
}

func TestCustomLinkForBottleneckPod(t *testing.T) {
	_, c := newCluster(t)
	p := c.AddPod(PodSpec{
		Name: "ratings",
		Link: simnet.LinkConfig{Rate: simnet.Gbps, Delay: 20 * time.Microsecond},
	})
	if p.Uplink().Config().Rate != simnet.Gbps {
		t.Fatal("custom link rate not applied")
	}
}

func TestDuplicatePodPanics(t *testing.T) {
	_, c := newCluster(t)
	c.AddPod(PodSpec{Name: "a"})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate pod accepted")
		}
	}()
	c.AddPod(PodSpec{Name: "a"})
}

func TestServiceSelectionAndSubsets(t *testing.T) {
	_, c := newCluster(t)
	c.AddPod(PodSpec{Name: "reviews-1", Labels: map[string]string{"app": "reviews", "version": "v1"}})
	c.AddPod(PodSpec{Name: "reviews-2", Labels: map[string]string{"app": "reviews", "version": "v2"}})
	c.AddPod(PodSpec{Name: "details-1", Labels: map[string]string{"app": "details"}})
	svc := c.AddService("reviews", 9080, map[string]string{"app": "reviews"})

	eps := svc.Endpoints()
	if len(eps) != 2 || eps[0].Name() != "reviews-1" || eps[1].Name() != "reviews-2" {
		t.Fatalf("endpoints = %v", eps)
	}
	v2 := svc.Subset("version", "v2")
	if len(v2) != 1 || v2[0].Name() != "reviews-2" {
		t.Fatalf("subset v2 = %v", v2)
	}
	if got := svc.Subset("version", "v9"); len(got) != 0 {
		t.Fatalf("nonexistent subset returned %v", got)
	}
	if c.Service("reviews") != svc || c.Service("nope") != nil {
		t.Fatal("service lookup broken")
	}
	if len(c.Services()) != 1 {
		t.Fatal("services list wrong")
	}
}

func TestPodToPodTrafficViaBridge(t *testing.T) {
	s, c := newCluster(t)
	a := c.AddPod(PodSpec{Name: "a"})
	b := c.AddPod(PodSpec{Name: "b"})
	var got bool
	b.Host().Listen(80, func(conn *transport.Conn) {
		conn.SetOnMessage(func(any, int) { got = true })
	})
	conn := a.Host().Dial(b.Addr(), 80, transport.Options{})
	conn.SendMessage("x", 1000)
	s.Run()
	if !got {
		t.Fatal("pod-to-pod message not delivered through bridge")
	}
}

func TestConnectPodsDirectPath(t *testing.T) {
	s, c := newCluster(t)
	a := c.AddPod(PodSpec{Name: "a"})
	b := c.AddPod(PodSpec{Name: "b"})
	direct := c.ConnectPods(a, b, simnet.LinkConfig{Rate: simnet.Gbps})
	c.Network().ComputeRoutes()
	var got bool
	b.Host().Listen(80, func(conn *transport.Conn) {
		conn.SetOnMessage(func(any, int) { got = true })
	})
	conn := a.Host().Dial(b.Addr(), 80, transport.Options{})
	conn.SendMessage("x", 1000)
	s.Run()
	if !got {
		t.Fatal("message not delivered")
	}
	// Direct link (1 hop) should beat the bridge (2 hops).
	if direct.A().TxPackets() == 0 && direct.B().TxPackets() == 0 {
		t.Fatal("direct pod link unused")
	}
}

func TestWorkerPoolBoundsConcurrency(t *testing.T) {
	s := simnet.NewScheduler()
	w := NewWorkerPool(s, 2)
	var done []int
	for i := 0; i < 5; i++ {
		i := i
		w.Run(10*time.Millisecond, func() { done = append(done, i) })
	}
	if w.Busy() != 2 || w.QueueLen() != 3 {
		t.Fatalf("busy=%d queued=%d, want 2/3", w.Busy(), w.QueueLen())
	}
	s.Run()
	if len(done) != 5 {
		t.Fatalf("executed %d, want 5", len(done))
	}
	// 5 jobs, 2 workers, 10ms each: finishes at 30ms.
	if s.Now() != 30*time.Millisecond {
		t.Fatalf("completed at %v, want 30ms", s.Now())
	}
	if w.PeakQueue() != 3 {
		t.Fatalf("peak queue = %d", w.PeakQueue())
	}
	if w.Executed() != 5 {
		t.Fatalf("executed counter = %d", w.Executed())
	}
}

func TestWorkerPoolUnbounded(t *testing.T) {
	s := simnet.NewScheduler()
	w := NewWorkerPool(s, 0)
	n := 0
	for i := 0; i < 10; i++ {
		w.Run(10*time.Millisecond, func() { n++ })
	}
	s.Run()
	if n != 10 {
		t.Fatalf("ran %d", n)
	}
	// All parallel: wall time is one service time.
	if s.Now() != 10*time.Millisecond {
		t.Fatalf("completed at %v, want 10ms", s.Now())
	}
}

func TestWorkerPoolFIFO(t *testing.T) {
	s := simnet.NewScheduler()
	w := NewWorkerPool(s, 1)
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		w.Run(time.Millisecond, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestReadinessExcludesFromEndpoints(t *testing.T) {
	_, c := newCluster(t)
	p1 := c.AddPod(PodSpec{Name: "w-1", Labels: map[string]string{"app": "w"}})
	c.AddPod(PodSpec{Name: "w-2", Labels: map[string]string{"app": "w"}})
	svc := c.AddService("w", 80, map[string]string{"app": "w"})
	if len(svc.Endpoints()) != 2 {
		t.Fatal("initial endpoints")
	}
	p1.SetReady(false)
	eps := svc.Endpoints()
	if len(eps) != 1 || eps[0].Name() != "w-2" {
		t.Fatalf("unready pod still listed: %v", eps)
	}
	p1.SetReady(true)
	if len(svc.Endpoints()) != 2 {
		t.Fatal("readiness restore")
	}
}

func TestPartitionBlackholesAndRestores(t *testing.T) {
	s, c := newCluster(t)
	a := c.AddPod(PodSpec{Name: "a"})
	b := c.AddPod(PodSpec{Name: "b"})
	got := 0
	b.Host().Listen(80, func(conn *transport.Conn) {
		conn.SetOnMessage(func(any, int) { got++ })
	})
	b.Partition(true)
	conn := a.Host().Dial(b.Addr(), 80, transport.Options{})
	conn.SendMessage("x", 100)
	s.RunFor(2 * time.Second)
	if got != 0 {
		t.Fatal("partitioned pod received a message")
	}
	b.Partition(false)
	// SYN retry will get through now.
	s.RunFor(30 * time.Second)
	if got != 1 {
		t.Fatalf("message not delivered after heal: %d", got)
	}
}

func TestAddUplinkCreatesSecondNIC(t *testing.T) {
	_, c := newCluster(t)
	p := c.AddPod(PodSpec{Name: "multi"})
	l := c.AddUplink(p, simnet.LinkConfig{Rate: simnet.Gbps})
	if len(p.Node().NICs()) != 2 {
		t.Fatalf("NICs = %d", len(p.Node().NICs()))
	}
	if l.A().Node() != p.Node() {
		t.Fatal("uplink A side not the pod")
	}
	// Default config variant.
	l2 := c.AddUplink(p, simnet.LinkConfig{})
	if l2.Config().Rate != DefaultLink.Rate {
		t.Fatal("default uplink rate")
	}
}

func TestServicePortAndName(t *testing.T) {
	_, c := newCluster(t)
	c.AddPod(PodSpec{Name: "x-1", Labels: map[string]string{"app": "x"}})
	svc := c.AddService("x", 1234, map[string]string{"app": "x"})
	if svc.Name() != "x" || svc.Port() != 1234 {
		t.Fatal("accessors")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate service accepted")
		}
	}()
	c.AddService("x", 1, nil)
}

func TestPodsOrderStable(t *testing.T) {
	_, c := newCluster(t)
	names := []string{"z", "a", "m"}
	for _, n := range names {
		c.AddPod(PodSpec{Name: n})
	}
	pods := c.Pods()
	for i, n := range names {
		if pods[i].Name() != n {
			t.Fatalf("creation order broken: %v", pods)
		}
	}
	if c.Bridge() == nil || c.Network() == nil || c.Scheduler() == nil {
		t.Fatal("cluster accessors")
	}
}

func TestEmptyPodNamePanics(t *testing.T) {
	_, c := newCluster(t)
	defer func() {
		if recover() == nil {
			t.Fatal("empty name accepted")
		}
	}()
	c.AddPod(PodSpec{})
}
