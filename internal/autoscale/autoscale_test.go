package autoscale

import (
	"testing"
	"time"

	"meshlayer/internal/app"
	"meshlayer/internal/httpsim"
	"meshlayer/internal/workload"
)

// bed builds a single-service DAG whose service time makes utilization
// easy to push around: 4 workers per pod, 20ms service time.
func bed(t *testing.T) *app.DAG {
	t.Helper()
	d, err := app.BuildDAG(app.DAGSpec{
		Entry: "api",
		Services: []app.ServiceSpec{{
			Name:          "api",
			Replicas:      1,
			Workers:       4,
			ServiceTime:   20 * time.Millisecond,
			ResponseBytes: 2 << 10,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestValidation(t *testing.T) {
	d := bed(t)
	bad := []Config{
		{},
		{Cluster: d.Cluster, Scaler: d},
		{Cluster: d.Cluster, Scaler: d, Targets: []Target{{Service: "api", Min: 0, Max: 3, Utilization: 0.5}}},
		{Cluster: d.Cluster, Scaler: d, Targets: []Target{{Service: "api", Min: 2, Max: 1, Utilization: 0.5}}},
		{Cluster: d.Cluster, Scaler: d, Targets: []Target{{Service: "api", Min: 1, Max: 3, Utilization: 1.5}}},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("bad config %d accepted", i)
				}
			}()
			New(cfg)
		}()
	}
}

func TestScalesUpUnderLoad(t *testing.T) {
	d := bed(t)
	ctrl := New(Config{
		Cluster:  d.Cluster,
		Scaler:   d,
		Targets:  []Target{{Service: "api", Min: 1, Max: 8, Utilization: 0.6}},
		Interval: 2 * time.Second,
	})
	ctrl.Start()

	// One pod: capacity 4 workers / 20ms = 200 RPS. Offer 600 RPS:
	// needs ~3+ pods at 60% target.
	workload.Start(d.Sched, d.Gateway, workload.Spec{
		Name: "load", Rate: 600, Seed: 1,
		NewRequest: d.NewDAGRequest,
		Warmup:     time.Second, Measure: 25 * time.Second, Cooldown: time.Second,
	})
	d.Sched.RunUntil(20 * time.Second)
	got := d.ReadyReplicas("api")
	if got < 3 {
		t.Fatalf("replicas = %d after sustained overload, want >= 3", got)
	}
	if ctrl.ScaleUps() == 0 {
		t.Fatal("no scale-up recorded")
	}
	ctrl.Stop()
}

func TestScalesDownWhenIdle(t *testing.T) {
	d := bed(t)
	d.Scale("api", 6)
	ctrl := New(Config{
		Cluster:           d.Cluster,
		Scaler:            d,
		Targets:           []Target{{Service: "api", Min: 2, Max: 8, Utilization: 0.6}},
		Interval:          2 * time.Second,
		ScaleDownCooldown: 4 * time.Second,
	})
	ctrl.Start()
	// Trickle of load far below capacity.
	workload.Start(d.Sched, d.Gateway, workload.Spec{
		Name: "trickle", Rate: 5, Seed: 2,
		NewRequest: d.NewDAGRequest,
		Warmup:     time.Second, Measure: 40 * time.Second, Cooldown: time.Second,
	})
	d.Sched.RunUntil(40 * time.Second)
	got := d.ReadyReplicas("api")
	if got != 2 {
		t.Fatalf("replicas = %d after sustained idle, want min=2", got)
	}
	if ctrl.ScaleDowns() == 0 {
		t.Fatal("no scale-down recorded")
	}
	ctrl.Stop()
}

func TestRespectsMax(t *testing.T) {
	d := bed(t)
	ctrl := New(Config{
		Cluster:  d.Cluster,
		Scaler:   d,
		Targets:  []Target{{Service: "api", Min: 1, Max: 2, Utilization: 0.5}},
		Interval: time.Second,
	})
	ctrl.Start()
	workload.Start(d.Sched, d.Gateway, workload.Spec{
		Name: "flood", Rate: 800, Seed: 3,
		NewRequest: d.NewDAGRequest,
		Warmup:     time.Second, Measure: 15 * time.Second, Cooldown: time.Second,
	})
	d.Sched.RunUntil(15 * time.Second)
	if got := d.ReadyReplicas("api"); got > 2 {
		t.Fatalf("replicas = %d exceeds max 2", got)
	}
	ctrl.Stop()
}

func TestDAGScaleDirect(t *testing.T) {
	d := bed(t)
	if err := d.Scale("api", 3); err != nil {
		t.Fatal(err)
	}
	if d.ReadyReplicas("api") != 3 {
		t.Fatalf("replicas = %d", d.ReadyReplicas("api"))
	}
	if err := d.Scale("api", 1); err != nil {
		t.Fatal(err)
	}
	if d.ReadyReplicas("api") != 1 {
		t.Fatalf("after down: %d", d.ReadyReplicas("api"))
	}
	// Scale back up: drained pods are reused before new ones appear.
	podsBefore := len(d.Cluster.Pods())
	if err := d.Scale("api", 3); err != nil {
		t.Fatal(err)
	}
	if len(d.Cluster.Pods()) != podsBefore {
		t.Fatal("scale-up created pods instead of reusing drained ones")
	}
	if err := d.Scale("nope", 2); err == nil {
		t.Fatal("unknown service accepted")
	}
	if err := d.Scale("api", 0); err == nil {
		t.Fatal("zero replicas accepted")
	}
}

// TestScaledReplicasServeTraffic: traffic actually reaches pods created
// at runtime.
func TestScaledReplicasServeTraffic(t *testing.T) {
	d := bed(t)
	d.Scale("api", 2)
	for i := 0; i < 8; i++ {
		d.Gateway.Serve(d.NewDAGRequest(), func(*httpsim.Response, error) {})
		d.Sched.RunFor(100 * time.Millisecond)
	}
	d.Sched.Run()
	if d.Cluster.Pod("api-2").Workers().Executed() == 0 {
		t.Fatal("runtime-created replica never served")
	}
}
