// Package autoscale implements a horizontal pod autoscaler over the
// simulated cluster: it periodically samples each target service's
// worker utilization and adjusts replica counts toward a utilization
// setpoint, HPA-style. Scaling actuation is delegated to the
// application (e.g. app.DAG.Scale), since new replicas need handlers.
//
// A scale event changes the cluster's endpoint sets, and how fast
// sidecars learn about it depends on the mesh's propagation mode:
// instant by default, but with ControlPlane.EnableDistribution the
// change is debounced, versioned, and pushed — new capacity (and
// removals) reach each sidecar only when its snapshot is updated.
// E18 measures that propagation delay under churn.
package autoscale

import (
	"fmt"
	"math"
	"time"

	"meshlayer/internal/cluster"
	"meshlayer/internal/simnet"
)

// Target configures autoscaling for one service.
type Target struct {
	// Service is the service name.
	Service string
	// Min and Max bound the ready replica count.
	Min, Max int
	// Utilization is the busy-worker fraction setpoint in (0, 1),
	// e.g. 0.6 — the HPA target.
	Utilization float64
}

// Scaler actuates replica changes; app.DAG satisfies it.
type Scaler interface {
	Scale(service string, replicas int) error
	ReadyReplicas(service string) int
}

// Config assembles a Controller.
type Config struct {
	Cluster *cluster.Cluster
	Scaler  Scaler
	Targets []Target
	// Interval is the evaluation period (default 5s).
	Interval time.Duration
	// Tolerance suppresses scaling when |desired/current - 1| is
	// within it (default 0.1, as in Kubernetes).
	Tolerance float64
	// ScaleDownCooldown delays scale-downs after any scaling action
	// (default 30s) to prevent flapping.
	ScaleDownCooldown time.Duration
}

// Controller is a running autoscaler.
type Controller struct {
	cfg     Config
	sched   *simnet.Scheduler
	running bool

	lastChange map[string]time.Duration
	scaleUps   uint64
	scaleDowns uint64
}

// New validates the config and returns a stopped controller.
func New(cfg Config) *Controller {
	if cfg.Cluster == nil || cfg.Scaler == nil {
		panic("autoscale: cluster and scaler required")
	}
	if len(cfg.Targets) == 0 {
		panic("autoscale: no targets")
	}
	for _, t := range cfg.Targets {
		if t.Service == "" || t.Min < 1 || t.Max < t.Min {
			panic(fmt.Sprintf("autoscale: bad target %+v", t))
		}
		if t.Utilization <= 0 || t.Utilization >= 1 {
			panic(fmt.Sprintf("autoscale: utilization must be in (0,1): %+v", t))
		}
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 5 * time.Second
	}
	if cfg.Tolerance == 0 {
		cfg.Tolerance = 0.1
	}
	if cfg.ScaleDownCooldown == 0 {
		cfg.ScaleDownCooldown = 30 * time.Second
	}
	return &Controller{
		cfg:        cfg,
		sched:      cfg.Cluster.Scheduler(),
		lastChange: make(map[string]time.Duration),
	}
}

// Start begins periodic evaluation.
func (c *Controller) Start() {
	if c.running {
		return
	}
	c.running = true
	c.tick()
}

// Stop halts evaluation after the current period.
func (c *Controller) Stop() { c.running = false }

// ScaleUps and ScaleDowns report actuation counts.
func (c *Controller) ScaleUps() uint64 { return c.scaleUps }

// ScaleDowns reports the number of scale-down actions taken.
func (c *Controller) ScaleDowns() uint64 { return c.scaleDowns }

func (c *Controller) tick() {
	if !c.running {
		return
	}
	for _, t := range c.cfg.Targets {
		c.evaluate(t)
	}
	c.sched.After(c.cfg.Interval, c.tick)
}

// utilization samples the mean busy fraction across the service's
// ready pods. Pods with unbounded workers report via queue pressure
// instead (busy/1+queue heuristic is meaningless there, so they are
// skipped).
func (c *Controller) utilization(service string) (float64, int) {
	ready := 0
	var sum float64
	for _, p := range c.cfg.Cluster.Pods() {
		if p.Label("app") != service || !p.Ready() {
			continue
		}
		ready++
		w := p.Workers()
		if cap := w.Capacity(); cap > 0 {
			// Queued work counts as demand beyond capacity, so a
			// backlogged pod reads >1.0 and drives a proportional
			// scale-up in one step.
			sum += (float64(w.Busy()) + float64(w.QueueLen())) / float64(cap)
		}
	}
	if ready == 0 {
		return 0, 0
	}
	return sum / float64(ready), ready
}

func (c *Controller) evaluate(t Target) {
	util, ready := c.utilization(t.Service)
	if ready == 0 {
		return
	}
	desired := int(math.Ceil(float64(ready) * util / t.Utilization))
	if desired < t.Min {
		desired = t.Min
	}
	if desired > t.Max {
		desired = t.Max
	}
	if desired == ready {
		return
	}
	ratio := float64(desired) / float64(ready)
	if math.Abs(ratio-1) <= c.cfg.Tolerance {
		return
	}
	now := c.sched.Now()
	if desired < ready {
		if now-c.lastChange[t.Service] < c.cfg.ScaleDownCooldown {
			return
		}
		c.scaleDowns++
	} else {
		c.scaleUps++
	}
	if err := c.cfg.Scaler.Scale(t.Service, desired); err != nil {
		return
	}
	c.lastChange[t.Service] = now
}
