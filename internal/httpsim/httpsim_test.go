package httpsim

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"meshlayer/internal/simnet"
	"meshlayer/internal/transport"
)

type env struct {
	sched  *simnet.Scheduler
	net    *simnet.Network
	ha, hb *transport.Host
}

func newEnv(t *testing.T, cfg simnet.LinkConfig) *env {
	t.Helper()
	s := simnet.NewScheduler()
	n := simnet.NewNetwork(s)
	a := n.AddNode("client")
	b := n.AddNode("server")
	n.Connect(a, b, cfg)
	return &env{sched: s, net: n, ha: transport.NewHost(a), hb: transport.NewHost(b)}
}

func TestHeaderBasics(t *testing.T) {
	h := make(Header)
	h.Set("X-Request-Id", "abc")
	if h.Get("x-request-id") != "abc" || h.Get("X-REQUEST-ID") != "abc" {
		t.Fatal("case-insensitive get failed")
	}
	if !h.Has("X-Request-Id") {
		t.Fatal("Has failed")
	}
	h.Del("X-REQUEST-ID")
	if h.Has("x-request-id") {
		t.Fatal("Del failed")
	}
}

func TestHeaderClone(t *testing.T) {
	h := make(Header)
	h.Set("a", "1")
	c := h.Clone()
	c.Set("a", "2")
	if h.Get("a") != "1" {
		t.Fatal("clone shares storage")
	}
	var nilH Header
	if got := nilH.Clone(); got == nil || len(got) != 0 {
		t.Fatal("nil clone not usable")
	}
}

func TestHeaderStringDeterministic(t *testing.T) {
	h := make(Header)
	h.Set("b", "2")
	h.Set("a", "1")
	want := "a: 1\r\nb: 2\r\n"
	for i := 0; i < 10; i++ {
		if h.String() != want {
			t.Fatalf("String() = %q, want %q", h.String(), want)
		}
	}
}

func TestWireSizeIncludesEverything(t *testing.T) {
	req := NewRequest("GET", "/product")
	base := req.WireSize()
	req.Headers.Set("x-request-id", "1234")
	if req.WireSize() <= base {
		t.Fatal("headers not counted in wire size")
	}
	withHeaders := req.WireSize()
	req.BodyBytes = 1000
	if req.WireSize() != withHeaders+1000 {
		t.Fatal("body not counted in wire size")
	}
	resp := NewResponse(StatusOK)
	if resp.WireSize() <= 0 {
		t.Fatal("response wire size must be positive")
	}
}

func TestRequestResponseRoundTrip(t *testing.T) {
	e := newEnv(t, simnet.LinkConfig{Rate: 100 * simnet.Mbps, Delay: time.Millisecond})
	srv, err := NewServer(e.hb, 8080, func(ctx Ctx, req *Request, respond func(*Response)) {
		if req.Path != "/hello" {
			t.Fatalf("path = %s", req.Path)
		}
		if req.Headers.Get("x-test") != "yes" {
			t.Fatal("request headers lost in transit")
		}
		resp := NewResponse(StatusOK)
		resp.Headers.Set("x-served-by", "b")
		resp.BodyBytes = 5000
		respond(resp)
	})
	if err != nil {
		t.Fatal(err)
	}
	cl := NewClient(e.ha, e.hb.Node().Addr(), 8080, transport.Options{})
	req := NewRequest("GET", "/hello")
	req.Headers.Set("x-test", "yes")
	var got *Response
	cl.Do(req, func(r *Response, err error) {
		if err != nil {
			t.Fatal(err)
		}
		got = r
	})
	e.sched.Run()
	if got == nil {
		t.Fatal("no response")
	}
	if got.Status != StatusOK || got.BodyBytes != 5000 || got.Headers.Get("x-served-by") != "b" {
		t.Fatalf("response = %+v", got)
	}
	if srv.Served() != 1 {
		t.Fatalf("served = %d", srv.Served())
	}
}

func TestConcurrentRequestsMatchByID(t *testing.T) {
	e := newEnv(t, simnet.LinkConfig{Rate: 100 * simnet.Mbps, Delay: time.Millisecond})
	// Respond to even requests after a delay so responses come back
	// out of submission order.
	NewServer(e.hb, 8080, func(ctx Ctx, req *Request, respond func(*Response)) {
		resp := NewResponse(StatusOK)
		resp.Headers.Set("x-echo", req.Headers.Get("x-id"))
		if req.Headers.Get("x-id") == "0" {
			e.sched.After(100*time.Millisecond, func() { respond(resp) })
		} else {
			respond(resp)
		}
	})
	cl := NewClient(e.ha, e.hb.Node().Addr(), 8080, transport.Options{})
	got := map[string]string{}
	for i := 0; i < 4; i++ {
		req := NewRequest("GET", "/")
		id := string(rune('0' + i))
		req.Headers.Set("x-id", id)
		cl.Do(req, func(r *Response, err error) {
			if err != nil {
				t.Fatal(err)
			}
			got[id] = r.Headers.Get("x-echo")
		})
	}
	e.sched.Run()
	if len(got) != 4 {
		t.Fatalf("got %d responses", len(got))
	}
	for id, echo := range got {
		if id != echo {
			t.Fatalf("response for %s matched to %s", id, echo)
		}
	}
}

func TestLargeBodyTransferTime(t *testing.T) {
	// A 1 MB response over 8 Mbps takes ≈ 1.08s (with header overhead);
	// confirm bodies are accounted on the wire.
	e := newEnv(t, simnet.LinkConfig{Rate: 8 * simnet.Mbps, Delay: 0})
	NewServer(e.hb, 8080, func(ctx Ctx, req *Request, respond func(*Response)) {
		resp := NewResponse(StatusOK)
		resp.BodyBytes = 1 << 20
		respond(resp)
	})
	cl := NewClient(e.ha, e.hb.Node().Addr(), 8080, transport.Options{})
	var done time.Duration
	cl.Do(NewRequest("GET", "/big"), func(r *Response, err error) { done = e.sched.Now() })
	e.sched.RunUntil(30 * time.Second)
	if done == 0 {
		t.Fatal("no response")
	}
	if done < time.Second || done > 3*time.Second {
		t.Fatalf("1MB over 8Mbps took %v, want ~1.1s", done)
	}
}

func TestClientCloseFailsPending(t *testing.T) {
	e := newEnv(t, simnet.LinkConfig{Rate: simnet.Gbps, Delay: time.Millisecond})
	NewServer(e.hb, 8080, func(ctx Ctx, req *Request, respond func(*Response)) {
		// Never respond.
	})
	cl := NewClient(e.ha, e.hb.Node().Addr(), 8080, transport.Options{})
	var gotErr error
	cl.Do(NewRequest("GET", "/"), func(r *Response, err error) { gotErr = err })
	e.sched.RunFor(time.Second)
	cl.Conn().Abort()
	e.sched.Run()
	if gotErr == nil {
		t.Fatal("pending request not failed on close")
	}
}

func TestDoOnClosedClient(t *testing.T) {
	e := newEnv(t, simnet.LinkConfig{Rate: simnet.Gbps})
	NewServer(e.hb, 8080, func(ctx Ctx, req *Request, respond func(*Response)) {
		respond(NewResponse(StatusOK))
	})
	cl := NewClient(e.ha, e.hb.Node().Addr(), 8080, transport.Options{})
	e.sched.RunFor(time.Second)
	cl.Conn().Abort()
	var gotErr error
	cl.Do(NewRequest("GET", "/"), func(r *Response, err error) { gotErr = err })
	e.sched.Run()
	if gotErr != ErrConnClosed {
		t.Fatalf("err = %v, want ErrConnClosed", gotErr)
	}
}

func TestRespondTwicePanics(t *testing.T) {
	e := newEnv(t, simnet.LinkConfig{Rate: simnet.Gbps})
	NewServer(e.hb, 8080, func(ctx Ctx, req *Request, respond func(*Response)) {
		respond(NewResponse(StatusOK))
		defer func() {
			if recover() == nil {
				t.Fatal("double respond did not panic")
			}
		}()
		respond(NewResponse(StatusOK))
	})
	cl := NewClient(e.ha, e.hb.Node().Addr(), 8080, transport.Options{})
	cl.Do(NewRequest("GET", "/"), func(*Response, error) {})
	e.sched.Run()
}

func TestCtxConnExposed(t *testing.T) {
	e := newEnv(t, simnet.LinkConfig{Rate: simnet.Gbps})
	var gotConn *transport.Conn
	NewServer(e.hb, 8080, func(ctx Ctx, req *Request, respond func(*Response)) {
		gotConn = ctx.Conn
		ctx.Conn.SetMark(simnet.MarkHigh)
		respond(NewResponse(StatusOK))
	})
	cl := NewClient(e.ha, e.hb.Node().Addr(), 8080, transport.Options{})
	cl.Do(NewRequest("GET", "/"), func(*Response, error) {})
	e.sched.Run()
	if gotConn == nil {
		t.Fatal("handler saw no conn")
	}
	if gotConn.Mark() != simnet.MarkHigh {
		t.Fatal("conn mark not settable from handler")
	}
}

func TestServerDuplicatePort(t *testing.T) {
	e := newEnv(t, simnet.LinkConfig{Rate: simnet.Gbps})
	h := func(ctx Ctx, req *Request, respond func(*Response)) { respond(NewResponse(StatusOK)) }
	if _, err := NewServer(e.hb, 8080, h); err != nil {
		t.Fatal(err)
	}
	if _, err := NewServer(e.hb, 8080, h); err == nil {
		t.Fatal("duplicate port accepted")
	}
	if _, err := NewServer(e.hb, 8081, nil); err == nil {
		t.Fatal("nil handler accepted")
	}
}

// TestPropertyHeadersSurviveTransit: arbitrary header maps and body
// sizes arrive intact at the server, and the response's headers and
// sizes return intact, over a lossy link.
func TestPropertyHeadersSurviveTransit(t *testing.T) {
	f := func(seed int64, nHdr uint8, body uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		e := newEnv(t, simnet.LinkConfig{Rate: 50 * simnet.Mbps, Delay: time.Millisecond})
		e.net.Node("client").NICs()[0].Impair(simnet.Impairment{LossProb: 0.05, Seed: seed})

		want := make(Header)
		n := int(nHdr)%10 + 1
		for i := 0; i < n; i++ {
			want.Set(fmt.Sprintf("x-k%d", i), fmt.Sprintf("v%d", rng.Intn(1000)))
		}

		ok := true
		NewServer(e.hb, 8080, func(ctx Ctx, req *Request, respond func(*Response)) {
			for k, v := range want {
				if req.Headers.Get(k) != v {
					ok = false
				}
			}
			if req.BodyBytes != int(body) {
				ok = false
			}
			resp := NewResponse(StatusOK)
			resp.Headers = want.Clone()
			resp.BodyBytes = int(body) * 2
			respond(resp)
		})
		cl := NewClient(e.ha, e.hb.Node().Addr(), 8080, transport.Options{MinRTO: 20 * time.Millisecond})
		req := NewRequest("GET", "/prop")
		req.Headers = want.Clone()
		req.BodyBytes = int(body)
		done := false
		cl.Do(req, func(resp *Response, err error) {
			done = true
			if err != nil || resp.BodyBytes != int(body)*2 {
				ok = false
				return
			}
			for k, v := range want {
				if resp.Headers.Get(k) != v {
					ok = false
				}
			}
		})
		e.sched.RunUntil(time.Minute)
		return ok && done
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}
