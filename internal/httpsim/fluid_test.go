package httpsim

import (
	"testing"
	"time"

	"meshlayer/internal/simnet"
	"meshlayer/internal/transport"
)

// TestLargeBodyFluidFidelity reruns the large-body timing check under
// flow and hybrid fidelity: the response must arrive at the same
// rate-determined time (within tolerance) while costing a fraction of
// the scheduler events — the tentpole property, observed end-to-end
// through the HTTP layer.
func TestLargeBodyFluidFidelity(t *testing.T) {
	run := func(fid simnet.Fidelity) (done time.Duration, steps uint64) {
		e := newEnv(t, simnet.LinkConfig{Rate: 8 * simnet.Mbps, Delay: 0})
		e.net.SetFidelity(fid)
		NewServer(e.hb, 8080, func(ctx Ctx, req *Request, respond func(*Response)) {
			resp := NewResponse(StatusOK)
			resp.BodyBytes = 1 << 20
			respond(resp)
		})
		cl := NewClient(e.ha, e.hb.Node().Addr(), 8080, transport.Options{})
		cl.Do(NewRequest("GET", "/big"), func(r *Response, err error) {
			if err != nil {
				t.Fatalf("%v: %v", fid, err)
			}
			done = e.sched.Now()
		})
		e.sched.RunUntil(30 * time.Second)
		return done, e.sched.Steps()
	}

	pktDone, pktSteps := run(simnet.FidelityPacket)
	for _, fid := range []simnet.Fidelity{simnet.FidelityFlow, simnet.FidelityHybrid} {
		fluDone, fluSteps := run(fid)
		if fluDone == 0 {
			t.Fatalf("%v: no response", fid)
		}
		// Rate fidelity: within 15% of the packet-mode completion.
		lo, hi := pktDone*85/100, pktDone*115/100
		if fluDone < lo || fluDone > hi {
			t.Fatalf("%v: done at %v, packet mode %v (want within 15%%)", fid, fluDone, pktDone)
		}
		// Event economy: at least 10x fewer scheduler steps.
		if fluSteps*10 > pktSteps {
			t.Fatalf("%v: %d steps vs packet %d — want >=10x fewer", fid, fluSteps, pktSteps)
		}
	}
}
