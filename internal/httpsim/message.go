// Package httpsim models HTTP-style request/response exchanges over the
// simulated transport. Messages carry real header maps — the substrate
// for the paper's provenance mechanism, which is header rewriting — while
// bodies are represented by their byte counts and accounted on the wire
// without being materialized.
//
// Multiple requests may be outstanding on one connection; the byte
// stream serializes them in order (head-of-line blocking included,
// faithfully to a multiplexed sidecar channel), and responses are
// matched to requests by ID.
package httpsim

import (
	"fmt"
	"sort"
	"strings"
)

// Header is a case-insensitive single-valued header map. Keys are
// canonicalized to lower case, mirroring HTTP/2 practice.
type Header map[string]string

// Set stores the value under the lower-cased key.
func (h Header) Set(key, value string) { h[strings.ToLower(key)] = value }

// Get returns the value for the lower-cased key ("" if absent).
func (h Header) Get(key string) string { return h[strings.ToLower(key)] }

// Has reports whether the key is present.
func (h Header) Has(key string) bool { _, ok := h[strings.ToLower(key)]; return ok }

// Del removes the key.
func (h Header) Del(key string) { delete(h, strings.ToLower(key)) }

// Clone returns a deep copy. Cloning a nil Header returns an empty one.
func (h Header) Clone() Header {
	c := make(Header, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

// wireSize approximates the serialized size: "key: value\r\n".
func (h Header) wireSize() int {
	n := 0
	for k, v := range h {
		n += len(k) + len(v) + 4
	}
	return n
}

// String renders headers deterministically (sorted) for logs and tests.
func (h Header) String() string {
	keys := make([]string, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s: %s\r\n", k, h[k])
	}
	return b.String()
}

// Request is an HTTP-style request. BodyBytes is the body's wire size.
type Request struct {
	Method  string
	Path    string
	Headers Header
	// BodyBytes is the request body size in bytes (not materialized).
	BodyBytes int
}

// NewRequest builds a request with an initialized header map.
func NewRequest(method, path string) *Request {
	return &Request{Method: method, Path: path, Headers: make(Header)}
}

// Clone deep-copies the request (sidecars forward modified copies).
func (r *Request) Clone() *Request {
	return &Request{Method: r.Method, Path: r.Path, Headers: r.Headers.Clone(), BodyBytes: r.BodyBytes}
}

// WireSize returns the request's total on-wire bytes.
func (r *Request) WireSize() int {
	// "METHOD path HTTP/1.1\r\n" + headers + blank line + body.
	return len(r.Method) + len(r.Path) + 12 + r.Headers.wireSize() + 2 + r.BodyBytes
}

// String renders a compact one-line description.
func (r *Request) String() string {
	return fmt.Sprintf("%s %s (%dB)", r.Method, r.Path, r.BodyBytes)
}

// Response is an HTTP-style response.
type Response struct {
	Status  int
	Headers Header
	// BodyBytes is the response body size in bytes (not materialized).
	BodyBytes int
}

// NewResponse builds a response with an initialized header map.
func NewResponse(status int) *Response {
	return &Response{Status: status, Headers: make(Header)}
}

// Clone deep-copies the response.
func (r *Response) Clone() *Response {
	return &Response{Status: r.Status, Headers: r.Headers.Clone(), BodyBytes: r.BodyBytes}
}

// WireSize returns the response's total on-wire bytes.
func (r *Response) WireSize() int {
	// "HTTP/1.1 200 OK\r\n" + headers + blank line + body.
	return 17 + r.Headers.wireSize() + 2 + r.BodyBytes
}

// String renders a compact one-line description.
func (r *Response) String() string {
	return fmt.Sprintf("%d (%dB)", r.Status, r.BodyBytes)
}

// Common status codes used across the mesh.
const (
	StatusOK                  = 200
	StatusForbidden           = 403
	StatusNotFound            = 404
	StatusConflict            = 409
	StatusTooManyRequests     = 429
	StatusInternalServerError = 500
	StatusBadGateway          = 502
	StatusServiceUnavailable  = 503
	StatusGatewayTimeout      = 504
)
