package httpsim

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"meshlayer/internal/simnet"
	"meshlayer/internal/transport"
)

// wireMsg is the transport-level frame: a request or a response tagged
// with the request ID it belongs to. Recycled through wireMsgPool
// below; retention past freeWireMsg is enforced away by meshvet's
// poolescape analyzer.
//
//meshvet:pooled
type wireMsg struct {
	id   uint64
	req  *Request
	resp *Response
}

// wireMsgPool recycles the per-message framing structs. The receiver
// frees a frame as soon as it has extracted the request/response it
// wraps; the sender's retransmission bookkeeping may still reference a
// freed frame, but stale boundary metadata is discarded by the
// transport's delivery watermark without ever being dereferenced. A
// sync.Pool (rather than a per-run free list) keeps the recycling safe
// when experiment sweeps run many simulations in parallel.
var wireMsgPool = sync.Pool{New: func() any { return new(wireMsg) }}

func allocWireMsg() *wireMsg { return wireMsgPool.Get().(*wireMsg) }

func freeWireMsg(m *wireMsg) {
	*m = wireMsg{}
	wireMsgPool.Put(m)
}

// ErrConnClosed is delivered to callbacks whose connection died before
// the response arrived.
var ErrConnClosed = errors.New("httpsim: connection closed")

// Client issues requests over a single transport connection. Multiple
// requests may be in flight; responses are matched by ID.
type Client struct {
	conn    *transport.Conn
	pending map[uint64]func(*Response, error)
	nextID  uint64
	closed  bool
}

// NewClient dials dst:port and returns a client ready for Do.
func NewClient(h *transport.Host, dst simnet.Addr, port uint16, opts transport.Options) *Client {
	c := &Client{pending: make(map[uint64]func(*Response, error))}
	c.conn = h.Dial(dst, port, opts)
	c.conn.SetOnMessage(c.onMessage)
	c.conn.SetOnClose(c.onClose)
	return c
}

// Conn exposes the underlying transport connection (for marks and
// congestion-control swaps by the cross-layer controller).
func (c *Client) Conn() *transport.Conn { return c.conn }

// Pending returns the number of requests awaiting responses.
func (c *Client) Pending() int { return len(c.pending) }

// Closed reports whether the client's connection is gone.
func (c *Client) Closed() bool { return c.closed }

// Do sends the request; cb fires with the response or an error. The
// request object must not be mutated by the caller afterwards.
func (c *Client) Do(req *Request, cb func(*Response, error)) {
	if c.closed {
		cb(nil, ErrConnClosed)
		return
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = cb
	m := allocWireMsg()
	m.id, m.req = id, req
	if err := c.conn.SendMessage(m, req.WireSize()); err != nil {
		delete(c.pending, id)
		freeWireMsg(m)
		cb(nil, err)
	}
}

// Close tears the connection down after pending data flushes.
func (c *Client) Close() { c.conn.Close() }

func (c *Client) onMessage(meta any, _ int) {
	m, ok := meta.(*wireMsg)
	if !ok || m.resp == nil {
		return
	}
	id, resp := m.id, m.resp
	freeWireMsg(m)
	cb, ok := c.pending[id]
	if !ok {
		return
	}
	delete(c.pending, id)
	cb(resp, nil)
}

func (c *Client) onClose(err error) {
	c.closed = true
	if err == nil {
		err = ErrConnClosed
	}
	// Fail pending requests in issue order: map iteration order would
	// leak nondeterminism into retry scheduling when a torn-down
	// connection had several requests in flight.
	ids := make([]uint64, 0, len(c.pending))
	for id := range c.pending {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		cb := c.pending[id]
		delete(c.pending, id)
		cb(nil, err)
	}
}

// Ctx carries per-request server-side context: most importantly the
// transport connection the request arrived on, which the mesh sidecar
// re-marks and re-schedules per the request's priority (response bytes
// dominate the wire, and they flow on this connection).
type Ctx struct {
	Conn *transport.Conn
}

// Handler serves a request and eventually calls respond exactly once.
// Handlers may respond asynchronously (after issuing upstream calls).
type Handler func(ctx Ctx, req *Request, respond func(*Response))

// Server accepts connections on a port and dispatches requests to a
// handler.
type Server struct {
	host     *transport.Host
	listener *transport.Listener
	handler  Handler
	served   uint64
}

// NewServer starts listening on h:port with the handler.
func NewServer(h *transport.Host, port uint16, handler Handler) (*Server, error) {
	if handler == nil {
		return nil, fmt.Errorf("httpsim: nil handler")
	}
	s := &Server{host: h, handler: handler}
	l, err := h.Listen(port, s.accept)
	if err != nil {
		return nil, err
	}
	s.listener = l
	return s, nil
}

// Served returns the number of requests dispatched.
func (s *Server) Served() uint64 { return s.served }

// Close stops accepting connections.
func (s *Server) Close() { s.listener.Close() }

func (s *Server) accept(conn *transport.Conn) {
	conn.SetOnMessage(func(meta any, _ int) {
		m, ok := meta.(*wireMsg)
		if !ok || m.req == nil {
			return
		}
		s.served++
		id, req := m.id, m.req
		freeWireMsg(m)
		responded := false
		s.handler(Ctx{Conn: conn}, req, func(resp *Response) {
			if responded {
				panic("httpsim: respond called twice")
			}
			responded = true
			if conn.Closed() {
				return // client went away; nothing to do
			}
			if resp.Headers == nil {
				resp.Headers = make(Header)
			}
			rm := allocWireMsg()
			rm.id, rm.resp = id, resp
			conn.SendMessage(rm, resp.WireSize())
		})
	})
}
