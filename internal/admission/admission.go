// Package admission implements priority-aware admission control and
// overload protection for the mesh's sidecars — the fourth cross-layer
// optimization keyed on the paper's carried priority provenance.
//
// The paper's prioritization (§4.2) protects latency-sensitive (LS)
// requests from *bandwidth* contention, but offers no defense when
// demand exceeds *service capacity*: sidecars accept unbounded work,
// queues grow without limit, and both classes degrade together. This
// package supplies the three missing mechanisms:
//
//  1. A bounded two-class priority queue per sidecar with CoDel-style
//     queue-delay shedding: when a class's queueing delay stays above
//     its target for a full interval, waiting requests of that class
//     are shed. The latency-insensitive (LI) class has a tight target
//     and is shed first; the LS class has a far looser target and is
//     shed only as a last resort.
//
//  2. An adaptive concurrency limiter (gradient/AIMD on observed
//     service latency) replacing the implicit unbounded inflight
//     window: the limit additively grows while latency stays near the
//     no-load floor and multiplicatively shrinks — scaled by the
//     overshoot gradient — when it does not, keeping the server at the
//     knee of its latency/throughput curve. A Little's-law capacity
//     estimate (limit / mean latency) is exposed for telemetry.
//
//  3. End-to-end deadline propagation: the gateway stamps a total
//     budget, each hop decrements it by its observed queue + service
//     time, and requests whose remaining budget is exhausted are
//     rejected at inbound or cancelled before the downstream call, so
//     wasted work is cut at the earliest possible hop. The Deadlines
//     index keys remaining budget on the request's trace ID — the same
//     provenance mechanism internal/core uses for priorities.
//
// The package is pure policy/state: it never touches the network or
// the scheduler. The mesh wires it into Sidecar inbound handling and
// Sidecar.Call, with configuration pushed from the ControlPlane
// (mesh.AdmissionPolicy).
package admission

import "time"

// Class is a request's admission priority class, derived from the
// carried priority provenance (mesh.HeaderPriority).
type Class int

// The two classes, in strict service order.
const (
	// LS is the latency-sensitive (high-priority) class: served first,
	// shed only as a last resort.
	LS Class = iota
	// LI is the latency-insensitive (low-priority) class: served after
	// LS and shed first under overload.
	LI

	numClasses
)

// String names the class for labels and logs.
func (c Class) String() string {
	if c == LS {
		return "ls"
	}
	return "li"
}

// Reason explains why a request was shed rather than served.
type Reason int

// Shed reasons.
const (
	// ShedQueueFull: the bounded queue had no room (and, for an LS
	// arrival, no LI request could be displaced).
	ShedQueueFull Reason = iota
	// ShedQueueDelay: CoDel-style shedding — the class's queueing delay
	// exceeded its target for a full interval.
	ShedQueueDelay
	// ShedDeadline: the request's deadline budget was already exhausted.
	ShedDeadline
)

// String names the reason for metric labels.
func (r Reason) String() string {
	switch r {
	case ShedQueueFull:
		return "queue_full"
	case ShedQueueDelay:
		return "queue_delay"
	default:
		return "deadline"
	}
}

// Item is one request offered for admission. Exactly one of Run or
// Shed is eventually invoked, synchronously from Offer, Pop, or a
// subsequent Done that dequeues it.
type Item struct {
	// Class selects the priority class.
	Class Class
	// Enqueued is the arrival time (set by the caller to "now").
	Enqueued time.Duration
	// Expiry is the absolute deadline (0 = none): items past it are
	// shed with ShedDeadline instead of being served.
	Expiry time.Duration
	// Run dispatches the admitted request.
	Run func()
	// Shed rejects the request with the given reason.
	Shed func(Reason)
}
