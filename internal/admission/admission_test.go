package admission

import (
	"testing"
	"time"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

type recorder struct {
	ran  int
	shed map[Reason]int
}

func newRecorder() *recorder { return &recorder{shed: map[Reason]int{}} }

func (r *recorder) item(c Class, enq, expiry time.Duration) Item {
	return Item{
		Class:    c,
		Enqueued: enq,
		Expiry:   expiry,
		Run:      func() { r.ran++ },
		Shed:     func(why Reason) { r.shed[why]++ },
	}
}

func TestQueueServesLSFirst(t *testing.T) {
	q := NewQueue(QueueConfig{})
	var order []Class
	push := func(c Class) {
		q.Push(Item{Class: c, Enqueued: 0,
			Run:  func() { order = append(order, c) },
			Shed: func(Reason) { t.Fatalf("unexpected shed of %v", c) },
		}, 0)
	}
	push(LI)
	push(LS)
	push(LI)
	push(LS)
	for {
		it, ok := q.Pop(ms(1))
		if !ok {
			break
		}
		it.Run()
	}
	want := []Class{LS, LS, LI, LI}
	for i, c := range want {
		if order[i] != c {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestQueueFullShedsLIFirst(t *testing.T) {
	rec := newRecorder()
	q := NewQueue(QueueConfig{Limit: 2})
	q.Push(rec.item(LI, 0, 0), 0)
	q.Push(rec.item(LI, 0, 0), 0)
	// LS arrival displaces the newest LI rather than being shed.
	if !q.Push(rec.item(LS, 0, 0), 0) {
		t.Fatal("LS arrival shed while LI was queued")
	}
	if rec.shed[ShedQueueFull] != 1 {
		t.Fatalf("LI displaced = %d, want 1", rec.shed[ShedQueueFull])
	}
	if q.Depth(LS) != 1 || q.Depth(LI) != 1 {
		t.Fatalf("depths LS=%d LI=%d", q.Depth(LS), q.Depth(LI))
	}
	// LI arrival to a full queue is shed outright.
	if q.Push(rec.item(LI, 0, 0), 0) {
		t.Fatal("LI arrival admitted to a full queue")
	}
	// Another LS displaces the remaining LI; with none left to
	// displace, a full queue sheds even LS — the last resort.
	q.Push(rec.item(LS, 0, 0), 0)
	if q.Push(rec.item(LS, 0, 0), 0) {
		t.Fatal("LS arrival admitted past the bound")
	}
	if rec.shed[ShedQueueFull] != 4 {
		t.Fatalf("total full-queue sheds = %d, want 4", rec.shed[ShedQueueFull])
	}
}

func TestQueueCoDelShedsAfterInterval(t *testing.T) {
	rec := newRecorder()
	q := NewQueue(QueueConfig{Target: ms(5), Interval: ms(100)})
	for i := 0; i < 10; i++ {
		q.Push(rec.item(LI, 0, 0), 0)
	}
	// Sojourn above target but interval not yet elapsed: still served.
	if it, ok := q.Pop(ms(20)); !ok {
		t.Fatal("empty pop")
	} else {
		it.Run()
	}
	if it, ok := q.Pop(ms(60)); !ok {
		t.Fatal("empty pop")
	} else {
		it.Run()
	}
	// Past the armed interval (20+100): shed down to the target.
	it, ok := q.Pop(ms(200))
	if ok {
		it.Run()
	}
	if rec.shed[ShedQueueDelay] != 8 {
		t.Fatalf("delay sheds = %d, want 8 (drained to target)", rec.shed[ShedQueueDelay])
	}
	// Fresh items under target are served again and the state resets.
	q.Push(rec.item(LI, ms(200), 0), ms(200))
	if it, ok := q.Pop(ms(201)); !ok {
		t.Fatal("fresh item not served")
	} else {
		it.Run()
	}
	if rec.ran != 3 {
		t.Fatalf("ran = %d, want 3", rec.ran)
	}
}

func TestQueueLSShedOnlyPastLooseTarget(t *testing.T) {
	rec := newRecorder()
	q := NewQueue(QueueConfig{Target: ms(5), LSTarget: ms(100), Interval: ms(50)})
	for i := 0; i < 4; i++ {
		q.Push(rec.item(LS, 0, 0), 0)
	}
	// 20ms sojourn: far over the LI target but under the LS target —
	// every LS request is served.
	for {
		it, ok := q.Pop(ms(20))
		if !ok {
			break
		}
		it.Run()
	}
	if rec.ran != 4 || rec.shed[ShedQueueDelay] != 0 {
		t.Fatalf("ran=%d sheds=%v; LS must not shed under its target", rec.ran, rec.shed)
	}
	// Past the LS target for a full interval: last resort kicks in.
	for i := 0; i < 4; i++ {
		q.Push(rec.item(LS, ms(100), 0), ms(100))
	}
	if it, ok := q.Pop(ms(250)); ok { // arms the interval
		it.Run()
	}
	if it, ok := q.Pop(ms(350)); ok {
		it.Run()
	}
	if rec.shed[ShedQueueDelay] == 0 {
		t.Fatal("LS never shed even past its loose target")
	}
}

func TestQueueShedsExpiredOnPop(t *testing.T) {
	rec := newRecorder()
	q := NewQueue(QueueConfig{})
	q.Push(rec.item(LS, 0, ms(10)), 0)
	q.Push(rec.item(LS, 0, 0), 0)
	it, ok := q.Pop(ms(20))
	if !ok {
		t.Fatal("live item not served")
	}
	it.Run()
	if rec.shed[ShedDeadline] != 1 || rec.ran != 1 {
		t.Fatalf("deadline sheds = %d ran = %d", rec.shed[ShedDeadline], rec.ran)
	}
	_, _, dl := q.ShedCounts()
	if dl != 1 {
		t.Fatalf("ShedCounts deadline = %d", dl)
	}
}

func TestLimiterGrowsWhenSaturatedAndHealthy(t *testing.T) {
	l := NewLimiter(LimiterConfig{Initial: 2, Window: 4})
	if !l.Acquire() || !l.Acquire() {
		t.Fatal("initial slots unavailable")
	}
	if l.Acquire() {
		t.Fatal("limit not enforced")
	}
	// A window of flat latency while saturated: additive growth. The
	// second window never hits the raised limit, so no further growth.
	for w := 0; w < 2; w++ {
		for i := 0; i < 4; i++ {
			l.Acquire()
			l.Release(ms(10), true)
		}
	}
	if l.Limit() != 3 {
		t.Fatalf("limit = %d, want 3 (one +1 step)", l.Limit())
	}
	if l.NoLoad() != ms(10) {
		t.Fatalf("noload = %v", l.NoLoad())
	}
}

func TestLimiterBacksOffOnLatency(t *testing.T) {
	l := NewLimiter(LimiterConfig{Initial: 20, Window: 4, Tolerance: 1.5})
	// Establish a 10ms floor.
	for i := 0; i < 4; i++ {
		l.Acquire()
		l.Release(ms(10), true)
	}
	before := l.Limit()
	// Latency blows past tolerance: multiplicative decrease, scaled by
	// the gradient (15ms band / 40ms mean = 0.5 floor).
	for i := 0; i < 4; i++ {
		l.Acquire()
		l.Release(ms(40), true)
	}
	if l.Limit() >= before {
		t.Fatalf("limit %d did not shrink from %d", l.Limit(), before)
	}
	if l.Limit() != before/2 {
		t.Fatalf("limit = %d, want gradient-floor halving to %d", l.Limit(), before/2)
	}
	if l.EstimatedCapacity() <= 0 {
		t.Fatal("capacity estimate missing")
	}
}

func TestLimiterDoesNotGrowUnsaturated(t *testing.T) {
	l := NewLimiter(LimiterConfig{Initial: 8, Window: 4})
	for i := 0; i < 8; i++ {
		l.Acquire()
		l.Release(ms(10), true)
	}
	if l.Limit() != 8 {
		t.Fatalf("limit = %d; must not grow while the limit is not binding", l.Limit())
	}
}

func TestLimiterFailuresReleaseWithoutSample(t *testing.T) {
	l := NewLimiter(LimiterConfig{Initial: 4, Window: 2})
	l.Acquire()
	l.Release(ms(1000), false)
	if l.Inflight() != 0 {
		t.Fatalf("inflight = %d", l.Inflight())
	}
	if l.NoLoad() != 0 {
		t.Fatal("failed request contributed a latency sample")
	}
}

func TestControllerAdmitsQueuesAndPumps(t *testing.T) {
	now := time.Duration(0)
	c := New(Config{
		Limiter: LimiterConfig{Initial: 1},
		Now:     func() time.Duration { return now },
	})
	rec := newRecorder()
	c.Offer(rec.item(LS, now, 0))
	if rec.ran != 1 {
		t.Fatal("first offer not admitted immediately")
	}
	c.Offer(rec.item(LI, now, 0))
	c.Offer(rec.item(LS, now, 0))
	if rec.ran != 1 || c.Queue().Len() != 2 {
		t.Fatalf("ran=%d queued=%d", rec.ran, c.Queue().Len())
	}
	// Completion frees the slot; the queued LS runs before the LI.
	now = ms(1)
	c.Done(ms(1), true)
	if rec.ran != 2 || c.Queue().Depth(LS) != 0 || c.Queue().Depth(LI) != 1 {
		t.Fatalf("pump order wrong: ran=%d LS=%d LI=%d", rec.ran, c.Queue().Depth(LS), c.Queue().Depth(LI))
	}
	now = ms(2)
	c.Done(ms(1), true)
	if rec.ran != 3 || c.Queue().Len() != 0 {
		t.Fatalf("queue not drained: ran=%d len=%d", rec.ran, c.Queue().Len())
	}
	// Inflight bookkeeping survived the pump cycles.
	if got := c.Limiter().Inflight(); got != 1 {
		t.Fatalf("inflight = %d, want 1", got)
	}
}

func TestControllerShedsExpiredOnOffer(t *testing.T) {
	now := ms(100)
	c := New(Config{Now: func() time.Duration { return now }})
	rec := newRecorder()
	c.Offer(rec.item(LS, now, ms(50)))
	if rec.shed[ShedDeadline] != 1 || rec.ran != 0 {
		t.Fatalf("expired offer not shed: %+v", rec.shed)
	}
}

func TestControllerRequiresClock(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil clock accepted")
		}
	}()
	New(Config{})
}

func TestDeadlinesObserveAndRemaining(t *testing.T) {
	d := NewDeadlines()
	d.Observe("t1", ms(100), 0)
	if r, ok := d.Remaining("t1", ms(40)); !ok || r != ms(60) {
		t.Fatalf("remaining = %v %v", r, ok)
	}
	// A later, looser observation must not extend the budget.
	d.Observe("t1", ms(500), 0)
	if e, _ := d.Expiry("t1"); e != ms(100) {
		t.Fatalf("expiry widened to %v", e)
	}
	// A tighter one shrinks it.
	d.Observe("t1", ms(80), 0)
	if e, _ := d.Expiry("t1"); e != ms(80) {
		t.Fatalf("expiry = %v, want 80ms", e)
	}
	if _, ok := d.Remaining("unknown", 0); ok {
		t.Fatal("unknown id reported a deadline")
	}
}

func TestDeadlinesSweepExpired(t *testing.T) {
	d := NewDeadlines()
	d.Observe("old", ms(1), 0)
	// Push past the sweep threshold well after "old" + grace expired.
	late := 2 * time.Second
	for i := 0; i < sweepEvery; i++ {
		d.Observe(string(rune('a'+i%26))+string(rune('0'+i%10)), late+ms(1000+i), late)
	}
	if _, ok := d.Expiry("old"); ok {
		t.Fatal("expired record survived the sweep")
	}
	if d.Len() == 0 {
		t.Fatal("live records swept")
	}
}
