package admission

import "time"

// Config assembles a Controller.
type Config struct {
	Queue   QueueConfig
	Limiter LimiterConfig
	// Now supplies the clock (required) — the simulation scheduler's
	// Now in the mesh.
	Now func() time.Duration
}

// Controller is one sidecar's admission state: the bounded two-class
// queue behind the adaptive concurrency limiter. Offer admits, queues,
// or sheds a request; Done releases a slot and pumps the queue.
type Controller struct {
	cfg     Config
	queue   *Queue
	limiter *Limiter
}

// New builds a controller. It panics without a clock: admission
// decisions are meaningless off the simulation timeline.
func New(cfg Config) *Controller {
	if cfg.Now == nil {
		panic("admission: Config.Now is required")
	}
	return &Controller{
		cfg:     cfg,
		queue:   NewQueue(cfg.Queue),
		limiter: NewLimiter(cfg.Limiter),
	}
}

// Queue exposes the controller's queue (telemetry and tests).
func (c *Controller) Queue() *Queue { return c.queue }

// Limiter exposes the controller's limiter (telemetry and tests).
func (c *Controller) Limiter() *Limiter { return c.limiter }

// Offer admits the item immediately when a concurrency slot is free
// and nothing is queued ahead of it, enqueues it otherwise, and sheds
// it when its deadline is exhausted or the queue rejects it. Exactly
// one of it.Run / it.Shed is invoked, possibly later from Done.
func (c *Controller) Offer(it Item) {
	now := c.cfg.Now()
	if it.Expiry > 0 && now >= it.Expiry {
		c.queue.shedDeadline++
		it.Shed(ShedDeadline)
		return
	}
	if c.queue.Len() == 0 && c.limiter.Acquire() {
		it.Run()
		return
	}
	c.queue.Push(it, now)
}

// Done completes one admitted request: the slot is released, the
// latency sample feeds the limiter, and freed capacity dispatches
// queued requests (LS first, shedding stale ones on the way out).
func (c *Controller) Done(latency time.Duration, ok bool) {
	c.limiter.Release(latency, ok)
	for c.queue.Len() > 0 {
		if !c.limiter.Acquire() {
			return
		}
		it, served := c.queue.Pop(c.cfg.Now())
		if !served {
			c.limiter.Forget()
			return
		}
		it.Run()
	}
}
