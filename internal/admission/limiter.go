package admission

import "time"

// LimiterConfig tunes the adaptive concurrency limiter. Zero fields
// select the defaults.
type LimiterConfig struct {
	// Initial is the starting concurrency limit (default 16).
	Initial int
	// Min and Max clamp the limit (defaults 1 and 1024).
	Min, Max int
	// Tolerance is the acceptable latency multiple over the no-load
	// floor before the limit shrinks (default 1.5).
	Tolerance float64
	// Window is the number of latency samples per adjustment step
	// (default 32).
	Window int
}

func (c LimiterConfig) withDefaults() LimiterConfig {
	if c.Initial <= 0 {
		c.Initial = 16
	}
	if c.Min <= 0 {
		c.Min = 1
	}
	if c.Max <= 0 {
		c.Max = 1024
	}
	if c.Tolerance <= 1 {
		c.Tolerance = 1.5
	}
	if c.Window <= 0 {
		c.Window = 32
	}
	return c
}

// noloadWindows is how many adjustment windows the no-load latency
// floor remembers; the floor is the minimum over them, so it can
// recover upward when the service genuinely slows.
const noloadWindows = 10

// Limiter adaptively bounds a sidecar's inflight requests using a
// gradient/AIMD law on observed service latency:
//
//   - while the window's mean latency stays within Tolerance of the
//     no-load floor AND the limit was actually reached, grow the limit
//     additively (+1) — classic slow probing for headroom;
//   - when the mean exceeds the tolerance band, shrink the limit
//     multiplicatively, scaled by the overshoot gradient
//     (tolerance*floor / mean, clamped to [0.5, 0.98]) — the further
//     past the knee, the harder the backoff.
//
// The no-load floor is the minimum per-window latency over the last
// noloadWindows windows. EstimatedCapacity derives a requests/second
// capacity from Little's law (limit / mean latency).
type Limiter struct {
	cfg      LimiterConfig
	limit    float64
	inflight int

	winCount  int
	winSum    time.Duration
	winMin    time.Duration
	saturated bool // limit was hit during the current window

	minima   [noloadWindows]time.Duration
	minIdx   int
	minCount int

	lastMean time.Duration
}

// NewLimiter returns a limiter at its initial limit.
func NewLimiter(cfg LimiterConfig) *Limiter {
	cfg = cfg.withDefaults()
	return &Limiter{cfg: cfg, limit: float64(cfg.Initial)}
}

// Limit returns the current concurrency limit.
func (l *Limiter) Limit() int { return int(l.limit) }

// Inflight returns the currently admitted requests.
func (l *Limiter) Inflight() int { return l.inflight }

// Acquire takes an inflight slot if one is free.
func (l *Limiter) Acquire() bool {
	if l.inflight >= l.Limit() {
		l.saturated = true
		return false
	}
	l.inflight++
	return true
}

// Forget releases a slot acquired for a dispatch that never happened
// (e.g. the queue turned out to hold nothing servable). No latency
// sample is recorded.
func (l *Limiter) Forget() {
	if l.inflight > 0 {
		l.inflight--
	}
}

// Release returns a slot and records the request's observed service
// latency. Failed requests release their slot but contribute no
// sample — error fast-paths would otherwise drag the estimate down.
func (l *Limiter) Release(latency time.Duration, ok bool) {
	if l.inflight > 0 {
		l.inflight--
	}
	if !ok || latency <= 0 {
		return
	}
	l.winCount++
	l.winSum += latency
	if l.winMin == 0 || latency < l.winMin {
		l.winMin = latency
	}
	if l.winCount >= l.cfg.Window {
		l.adjust()
	}
}

// adjust applies one gradient/AIMD step from the completed window.
func (l *Limiter) adjust() {
	l.minima[l.minIdx] = l.winMin
	l.minIdx = (l.minIdx + 1) % noloadWindows
	if l.minCount < noloadWindows {
		l.minCount++
	}

	mean := l.winSum / time.Duration(l.winCount)
	l.lastMean = mean
	floor := l.NoLoad()

	band := time.Duration(l.cfg.Tolerance * float64(floor))
	if floor > 0 && mean > band {
		gradient := float64(band) / float64(mean)
		if gradient < 0.5 {
			gradient = 0.5
		}
		if gradient > 0.98 {
			gradient = 0.98
		}
		l.limit *= gradient
		if l.limit < float64(l.cfg.Min) {
			l.limit = float64(l.cfg.Min)
		}
	} else if l.saturated {
		l.limit++
		if l.limit > float64(l.cfg.Max) {
			l.limit = float64(l.cfg.Max)
		}
	}

	l.winCount, l.winSum, l.winMin, l.saturated = 0, 0, 0, false
}

// NoLoad returns the current no-load latency floor estimate (0 before
// the first full window).
func (l *Limiter) NoLoad() time.Duration {
	var floor time.Duration
	for i := 0; i < l.minCount; i++ {
		if m := l.minima[i]; m > 0 && (floor == 0 || m < floor) {
			floor = m
		}
	}
	return floor
}

// EstimatedCapacity returns the Little's-law capacity estimate in
// requests per second: limit / mean latency of the last window (0
// before the first full window).
func (l *Limiter) EstimatedCapacity() float64 {
	if l.lastMean <= 0 {
		return 0
	}
	return l.limit / l.lastMean.Seconds()
}
