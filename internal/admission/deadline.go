package admission

import "time"

// sweepEvery bounds how many inserts may pass between garbage-
// collection sweeps of expired records.
const sweepEvery = 256

// sweepGrace keeps an expired record around briefly so late child
// calls of an already-expired request still observe "expired" (and are
// cancelled) rather than "unknown" (and sent).
const sweepGrace = time.Second

// Deadlines is a sidecar's provenance-keyed deadline index: the
// remaining-budget expiry of every inbound request currently (or
// recently) being served, keyed by trace ID — the same provenance
// mechanism internal/core uses to carry priorities. Inbound handling
// records each request's expiry (arrival + remaining budget); the
// outbound path looks the expiry up by the child request's trace ID to
// decrement the budget or cancel the call. Records self-expire: a
// periodic sweep deletes entries past expiry+grace, so the index stays
// bounded by arrival rate × budget without explicit removal.
type Deadlines struct {
	m       map[string]time.Duration
	inserts int
}

// NewDeadlines returns an empty index.
func NewDeadlines() *Deadlines {
	return &Deadlines{m: make(map[string]time.Duration)}
}

// Observe records the expiry for a trace ID. When the ID is already
// present the earlier expiry wins: a retry or hedge of the same
// logical request must not extend the original budget.
func (d *Deadlines) Observe(id string, expiry, now time.Duration) {
	if id == "" || expiry <= 0 {
		return
	}
	if prev, ok := d.m[id]; !ok || expiry < prev {
		d.m[id] = expiry
	}
	d.inserts++
	if d.inserts >= sweepEvery {
		d.inserts = 0
		d.sweep(now)
	}
}

// Expiry returns the recorded expiry for a trace ID.
func (d *Deadlines) Expiry(id string) (time.Duration, bool) {
	e, ok := d.m[id]
	return e, ok
}

// Remaining returns the budget left for a trace ID (possibly negative)
// and whether a deadline is recorded at all.
func (d *Deadlines) Remaining(id string, now time.Duration) (time.Duration, bool) {
	e, ok := d.m[id]
	if !ok {
		return 0, false
	}
	return e - now, true
}

// Len returns the number of live records (tests).
func (d *Deadlines) Len() int { return len(d.m) }

func (d *Deadlines) sweep(now time.Duration) {
	for id, e := range d.m {
		if now > e+sweepGrace {
			delete(d.m, id)
		}
	}
}
