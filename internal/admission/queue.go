package admission

import "time"

// QueueConfig bounds the two-class queue and tunes its CoDel-style
// delay shedding. Zero fields select the defaults.
type QueueConfig struct {
	// Limit caps the total queued requests across both classes
	// (default 256). An LS arrival to a full queue displaces the
	// newest queued LI request; only when no LI request remains is
	// the LS arrival itself shed.
	Limit int
	// Target is the LI class's sojourn-time target (default 5ms).
	Target time.Duration
	// LSTarget is the LS class's sojourn-time target (default
	// 20*Target) — the "last resort" threshold.
	LSTarget time.Duration
	// Interval is how long a class's delay must stay above its target
	// before shedding starts (default 100ms).
	Interval time.Duration
}

func (c QueueConfig) withDefaults() QueueConfig {
	if c.Limit <= 0 {
		c.Limit = 256
	}
	if c.Target <= 0 {
		c.Target = 5 * time.Millisecond
	}
	if c.LSTarget <= 0 {
		c.LSTarget = 20 * c.Target
	}
	if c.Interval <= 0 {
		c.Interval = 100 * time.Millisecond
	}
	return c
}

// codelState is the per-class delay-shedding state: the CoDel trigger
// ("sojourn above target continuously for an interval") with a
// drain-to-target drop law — once triggered, queued requests are shed
// until the head's sojourn falls back under the target. Shedding a
// request is a cheap fast-fail (unlike dropping a packet), so draining
// promptly beats CoDel's gentler sqrt pacing here.
type codelState struct {
	// firstAbove is when shedding would begin if the sojourn stays
	// above target (0 = currently below target).
	firstAbove time.Duration
	// sheds counts requests shed by the delay law (telemetry/tests).
	sheds uint64
}

// Queue is the bounded two-class priority queue: LS is always served
// before LI, LI is shed first under pressure. Not safe for concurrent
// use — the simulator is single-threaded (see metrics.Registry for the
// shared invariant).
type Queue struct {
	cfg   QueueConfig
	q     [numClasses][]Item
	head  [numClasses]int
	codel [numClasses]codelState

	shedFull     uint64
	shedDeadline uint64
}

// NewQueue returns an empty queue with defaults filled.
func NewQueue(cfg QueueConfig) *Queue {
	return &Queue{cfg: cfg.withDefaults()}
}

// Len returns the total queued requests.
func (q *Queue) Len() int {
	n := 0
	for c := Class(0); c < numClasses; c++ {
		n += q.Depth(c)
	}
	return n
}

// Depth returns the queued requests of one class.
func (q *Queue) Depth(c Class) int { return len(q.q[c]) - q.head[c] }

// ShedCounts reports cumulative sheds by cause (delay, full, deadline).
func (q *Queue) ShedCounts() (delay, full, deadline uint64) {
	return q.codel[LS].sheds + q.codel[LI].sheds, q.shedFull, q.shedDeadline
}

// Push enqueues the item, shedding as needed to respect the bound. It
// returns false when the pushed item itself was shed.
func (q *Queue) Push(it Item, now time.Duration) bool {
	if it.Expiry > 0 && now >= it.Expiry {
		q.shedDeadline++
		it.Shed(ShedDeadline)
		return false
	}
	if q.Len() >= q.cfg.Limit {
		// Full: displace the newest LI request for an LS arrival (LI
		// sheds first); otherwise shed the arrival itself.
		if it.Class == LS && q.Depth(LI) > 0 {
			tail := q.q[LI][len(q.q[LI])-1]
			q.q[LI] = q.q[LI][:len(q.q[LI])-1]
			q.shedFull++
			tail.Shed(ShedQueueFull)
		} else {
			q.shedFull++
			it.Shed(ShedQueueFull)
			return false
		}
	}
	q.q[it.Class] = append(q.q[it.Class], it)
	return true
}

// Pop dequeues the next servable request: LS strictly before LI, with
// expired items shed and the per-class delay law applied. It returns
// false when nothing remains to serve.
func (q *Queue) Pop(now time.Duration) (Item, bool) {
	for c := Class(0); c < numClasses; c++ {
		for q.Depth(c) > 0 {
			it := q.popHead(c)
			if it.Expiry > 0 && now >= it.Expiry {
				q.shedDeadline++
				it.Shed(ShedDeadline)
				continue
			}
			sojourn := now - it.Enqueued
			st := &q.codel[c]
			target := q.cfg.Target
			if c == LS {
				target = q.cfg.LSTarget
			}
			if sojourn < target {
				st.firstAbove = 0
				return it, true
			}
			if st.firstAbove == 0 {
				// First sojourn above target: arm the interval but
				// still serve — transient bursts must not shed.
				st.firstAbove = now + q.cfg.Interval
				return it, true
			}
			if now < st.firstAbove {
				return it, true
			}
			// Above target for a full interval: shed and keep draining
			// until the head is back under target.
			st.sheds++
			it.Shed(ShedQueueDelay)
		}
	}
	return Item{}, false
}

// popHead removes and returns the class's head item, compacting the
// backing slice once the dead prefix dominates.
func (q *Queue) popHead(c Class) Item {
	it := q.q[c][q.head[c]]
	q.q[c][q.head[c]] = Item{} // release closures for GC
	q.head[c]++
	if q.head[c] > 32 && q.head[c]*2 >= len(q.q[c]) {
		n := copy(q.q[c], q.q[c][q.head[c]:])
		q.q[c] = q.q[c][:n]
		q.head[c] = 0
	}
	return it
}
