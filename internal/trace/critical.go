package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// CriticalStep is one span's contribution to a request's critical path.
type CriticalStep struct {
	Span *Span
	// SelfTime is the part of the request's end-to-end latency
	// attributable to this span alone (its duration minus the critical
	// child's overlap).
	SelfTime time.Duration
}

// CriticalPath walks a call tree from the root, at each level following
// the child whose completion gates the parent (the latest-ending child
// overlapping the parent's tail), and attributes self time to each
// span. The sum of SelfTime equals the root's duration — a standard
// decomposition for answering "where did this request's latency go?"
// (the §3.2 visibility use case).
func CriticalPath(root *TreeNode) []CriticalStep {
	if root == nil {
		return nil
	}
	var steps []CriticalStep
	node := root
	for {
		// The gating child is the one that ends last; ties break to
		// the earlier-starting child (longer involvement).
		var gating *TreeNode
		for _, c := range node.Children {
			if gating == nil || c.Span.End > gating.Span.End ||
				(c.Span.End == gating.Span.End && c.Span.Start < gating.Span.Start) {
				gating = c
			}
		}
		if gating == nil {
			steps = append(steps, CriticalStep{Span: node.Span, SelfTime: node.Span.Duration()})
			break
		}
		self := node.Span.Duration() - gating.Span.Duration()
		if self < 0 {
			self = 0
		}
		steps = append(steps, CriticalStep{Span: node.Span, SelfTime: self})
		node = gating
	}
	return steps
}

// FormatCriticalPath renders the decomposition with percentages.
func FormatCriticalPath(steps []CriticalStep) string {
	if len(steps) == 0 {
		return ""
	}
	total := steps[0].Span.Duration()
	var b strings.Builder
	fmt.Fprintf(&b, "critical path (total %v):\n", total)
	for _, s := range steps {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(s.SelfTime) / float64(total)
		}
		fmt.Fprintf(&b, "  %-20s %-28s self=%-12v (%.1f%%)\n", s.Span.Service, s.Span.Name, s.SelfTime, pct)
	}
	return b.String()
}

// SlowestTraces returns the n trace IDs with the largest root-span
// durations — the troubleshooting entry point.
func (c *Collector) SlowestTraces(n int) []string {
	type td struct {
		id string
		d  time.Duration
	}
	var all []td
	for _, id := range c.TraceIDs() {
		if t := c.Tree(id); t != nil {
			all = append(all, td{id, t.Span.Duration()})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].d != all[j].d {
			return all[i].d > all[j].d
		}
		return all[i].id < all[j].id
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].id
	}
	return out
}

// ServiceTotals aggregates, across every recorded span, per-service
// span counts and total busy time — the mesh-level "which service is
// hot" view.
func (c *Collector) ServiceTotals() map[string]ServiceTotal {
	out := make(map[string]ServiceTotal)
	for _, s := range c.spans {
		t := out[s.Service]
		t.Spans++
		t.TotalTime += s.Duration()
		out[s.Service] = t
	}
	return out
}

// ServiceTotal is one service's aggregate tracing footprint.
type ServiceTotal struct {
	Spans     int
	TotalTime time.Duration
}
