// Package trace implements the mesh's distributed tracing: spans tied
// together by a request ID propagated in HTTP headers (Istio's
// x-request-id mechanism), a collector, and call-tree reconstruction.
//
// Tracing is the provenance substrate of the paper's case study: the
// sidecar knows which outgoing requests were spawned by which incoming
// one *because* they share the trace ID, and the cross-layer controller
// keys priority propagation off exactly that association (§4.3
// component 2).
package trace

import (
	"fmt"
	"sort"
	"time"
)

// Header names used for context propagation, mirroring Istio/Envoy.
const (
	// HeaderRequestID carries the trace (request) ID end to end.
	HeaderRequestID = "x-request-id"
	// HeaderSpanID carries the caller's span ID, becoming the parent of
	// spans the callee creates.
	HeaderSpanID = "x-span-id"
)

// Span records one operation's execution window within a service.
type Span struct {
	TraceID  string
	SpanID   uint64
	ParentID uint64 // 0 for root spans
	Service  string
	Name     string
	Start    time.Duration
	End      time.Duration
	Tags     map[string]string
}

// Duration returns the span's elapsed time.
func (s *Span) Duration() time.Duration { return s.End - s.Start }

// SetTag attaches a key/value annotation.
func (s *Span) SetTag(k, v string) {
	if s.Tags == nil {
		s.Tags = make(map[string]string)
	}
	s.Tags[k] = v
}

// Tag returns an annotation ("" if absent).
func (s *Span) Tag(k string) string { return s.Tags[k] }

// String renders a compact description.
func (s *Span) String() string {
	return fmt.Sprintf("[%s] %s %s %v (span=%d parent=%d)", s.TraceID, s.Service, s.Name, s.Duration(), s.SpanID, s.ParentID)
}

// Collector stores finished spans, indexed by trace.
type Collector struct {
	spans   []*Span
	byTrace map[string][]*Span
	nextID  uint64
	seq     uint64
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{byTrace: make(map[string][]*Span)}
}

// NewTraceID mints a process-unique trace ID (deterministic across
// runs: IDs are sequence numbers, not random UUIDs).
func (c *Collector) NewTraceID() string {
	c.seq++
	return fmt.Sprintf("req-%08d", c.seq)
}

// NewSpanID mints a span ID (never zero; zero means "no parent").
func (c *Collector) NewSpanID() uint64 {
	c.nextID++
	return c.nextID
}

// Record stores a finished span.
func (c *Collector) Record(s *Span) {
	c.spans = append(c.spans, s)
	c.byTrace[s.TraceID] = append(c.byTrace[s.TraceID], s)
}

// Len returns the number of recorded spans.
func (c *Collector) Len() int { return len(c.spans) }

// Trace returns all spans of a trace, in recording order.
func (c *Collector) Trace(id string) []*Span { return c.byTrace[id] }

// TraceIDs returns all known trace IDs, sorted.
func (c *Collector) TraceIDs() []string {
	ids := make([]string, 0, len(c.byTrace))
	for id := range c.byTrace {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// TreeNode is a span with its children, forming the distributed call
// tree of one request.
type TreeNode struct {
	Span     *Span
	Children []*TreeNode
}

// Tree reconstructs the call tree of a trace from parent span IDs.
// Returns nil for unknown traces or traces with no root.
func (c *Collector) Tree(id string) *TreeNode {
	spans := c.byTrace[id]
	if len(spans) == 0 {
		return nil
	}
	nodes := make(map[uint64]*TreeNode, len(spans))
	for _, s := range spans {
		nodes[s.SpanID] = &TreeNode{Span: s}
	}
	var root *TreeNode
	for _, s := range spans {
		n := nodes[s.SpanID]
		if s.ParentID == 0 {
			root = n
			continue
		}
		if p, ok := nodes[s.ParentID]; ok {
			p.Children = append(p.Children, n)
		} else if root == nil {
			// Orphan span (parent not recorded): tolerate partial traces.
			root = n
		}
	}
	if root != nil {
		sortTree(root)
	}
	return root
}

func sortTree(n *TreeNode) {
	sort.Slice(n.Children, func(i, j int) bool { return n.Children[i].Span.Start < n.Children[j].Span.Start })
	for _, c := range n.Children {
		sortTree(c)
	}
}

// Depth returns the maximum depth of the tree (a single span is 1).
func (n *TreeNode) Depth() int {
	if n == nil {
		return 0
	}
	d := 0
	for _, c := range n.Children {
		if cd := c.Depth(); cd > d {
			d = cd
		}
	}
	return d + 1
}

// Walk visits the tree pre-order.
func (n *TreeNode) Walk(fn func(*TreeNode, int)) { n.walk(fn, 0) }

func (n *TreeNode) walk(fn func(*TreeNode, int), depth int) {
	if n == nil {
		return
	}
	fn(n, depth)
	for _, c := range n.Children {
		c.walk(fn, depth+1)
	}
}

// Format renders the tree as an indented outline.
func (n *TreeNode) Format() string {
	out := ""
	n.Walk(func(t *TreeNode, depth int) {
		for i := 0; i < depth; i++ {
			out += "  "
		}
		out += fmt.Sprintf("%s %s (%v)\n", t.Span.Service, t.Span.Name, t.Span.Duration())
	})
	return out
}

// RootTag returns the value of tag k on the trace's root span — the
// provenance query "what class of request ultimately caused this work".
func (c *Collector) RootTag(id, k string) string {
	t := c.Tree(id)
	if t == nil {
		return ""
	}
	return t.Span.Tag(k)
}
