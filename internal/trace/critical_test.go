package trace

import (
	"strings"
	"testing"
	"time"
)

func TestCriticalPathLinear(t *testing.T) {
	c := NewCollector()
	root := mkSpan(c, "t1", 0, "a", 0, 100*time.Millisecond)
	mid := mkSpan(c, "t1", root.SpanID, "b", 10*time.Millisecond, 90*time.Millisecond)
	mkSpan(c, "t1", mid.SpanID, "c", 20*time.Millisecond, 60*time.Millisecond)

	steps := CriticalPath(c.Tree("t1"))
	if len(steps) != 3 {
		t.Fatalf("steps = %d", len(steps))
	}
	// Self times: a = 100-80 = 20ms, b = 80-40 = 40ms, c = 40ms.
	var sum time.Duration
	for _, s := range steps {
		sum += s.SelfTime
	}
	if sum != root.Duration() {
		t.Fatalf("self times sum to %v, want %v", sum, root.Duration())
	}
	if steps[0].SelfTime != 20*time.Millisecond || steps[1].SelfTime != 40*time.Millisecond {
		t.Fatalf("self times: %v / %v", steps[0].SelfTime, steps[1].SelfTime)
	}
}

func TestCriticalPathPicksGatingChild(t *testing.T) {
	c := NewCollector()
	root := mkSpan(c, "t2", 0, "frontend", 0, 100*time.Millisecond)
	mkSpan(c, "t2", root.SpanID, "details", 5*time.Millisecond, 20*time.Millisecond)
	slow := mkSpan(c, "t2", root.SpanID, "reviews", 5*time.Millisecond, 95*time.Millisecond)
	_ = slow
	steps := CriticalPath(c.Tree("t2"))
	if len(steps) != 2 {
		t.Fatalf("steps = %d", len(steps))
	}
	if steps[1].Span.Service != "reviews" {
		t.Fatalf("critical child = %s, want reviews", steps[1].Span.Service)
	}
}

func TestCriticalPathNil(t *testing.T) {
	if CriticalPath(nil) != nil {
		t.Fatal("nil tree should yield nil path")
	}
	if FormatCriticalPath(nil) != "" {
		t.Fatal("empty format expected")
	}
}

func TestFormatCriticalPath(t *testing.T) {
	c := NewCollector()
	root := mkSpan(c, "t3", 0, "a", 0, 10*time.Millisecond)
	mkSpan(c, "t3", root.SpanID, "b", 1*time.Millisecond, 9*time.Millisecond)
	out := FormatCriticalPath(CriticalPath(c.Tree("t3")))
	if !strings.Contains(out, "critical path") || !strings.Contains(out, "%") {
		t.Fatalf("format: %s", out)
	}
}

func TestSlowestTraces(t *testing.T) {
	c := NewCollector()
	mkSpan(c, "fast", 0, "s", 0, time.Millisecond)
	mkSpan(c, "slow", 0, "s", 0, time.Second)
	mkSpan(c, "mid", 0, "s", 0, 100*time.Millisecond)
	got := c.SlowestTraces(2)
	if len(got) != 2 || got[0] != "slow" || got[1] != "mid" {
		t.Fatalf("slowest = %v", got)
	}
	if len(c.SlowestTraces(10)) != 3 {
		t.Fatal("over-asking should clamp")
	}
}

func TestServiceTotals(t *testing.T) {
	c := NewCollector()
	mkSpan(c, "a", 0, "x", 0, 10*time.Millisecond)
	mkSpan(c, "b", 0, "x", 0, 20*time.Millisecond)
	mkSpan(c, "c", 0, "y", 0, 5*time.Millisecond)
	totals := c.ServiceTotals()
	if totals["x"].Spans != 2 || totals["x"].TotalTime != 30*time.Millisecond {
		t.Fatalf("x totals = %+v", totals["x"])
	}
	if totals["y"].Spans != 1 {
		t.Fatalf("y totals = %+v", totals["y"])
	}
}
