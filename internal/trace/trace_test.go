package trace

import (
	"strings"
	"testing"
	"time"
)

func mkSpan(c *Collector, trace string, parent uint64, svc string, start, end time.Duration) *Span {
	s := &Span{
		TraceID:  trace,
		SpanID:   c.NewSpanID(),
		ParentID: parent,
		Service:  svc,
		Name:     "GET /",
		Start:    start,
		End:      end,
	}
	c.Record(s)
	return s
}

func TestIDsUnique(t *testing.T) {
	c := NewCollector()
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := c.NewTraceID()
		if seen[id] {
			t.Fatalf("duplicate trace id %s", id)
		}
		seen[id] = true
	}
	if c.NewSpanID() == 0 {
		t.Fatal("span id 0 is reserved for 'no parent'")
	}
}

func TestTreeReconstruction(t *testing.T) {
	c := NewCollector()
	root := mkSpan(c, "t1", 0, "gateway", 0, 100*time.Millisecond)
	fe := mkSpan(c, "t1", root.SpanID, "frontend", 5*time.Millisecond, 95*time.Millisecond)
	mkSpan(c, "t1", fe.SpanID, "details", 10*time.Millisecond, 30*time.Millisecond)
	rv := mkSpan(c, "t1", fe.SpanID, "reviews", 10*time.Millisecond, 80*time.Millisecond)
	mkSpan(c, "t1", rv.SpanID, "ratings", 20*time.Millisecond, 60*time.Millisecond)

	tree := c.Tree("t1")
	if tree == nil || tree.Span.Service != "gateway" {
		t.Fatal("root not found")
	}
	if tree.Depth() != 4 {
		t.Fatalf("depth = %d, want 4", tree.Depth())
	}
	if len(tree.Children) != 1 || tree.Children[0].Span.Service != "frontend" {
		t.Fatal("frontend not child of gateway")
	}
	feNode := tree.Children[0]
	if len(feNode.Children) != 2 {
		t.Fatalf("frontend children = %d, want 2", len(feNode.Children))
	}
	// Children sorted by start time: details and reviews start equal,
	// then ratings under reviews.
	count := 0
	tree.Walk(func(n *TreeNode, depth int) { count++ })
	if count != 5 {
		t.Fatalf("walked %d nodes, want 5", count)
	}
	f := tree.Format()
	if !strings.Contains(f, "ratings") || !strings.Contains(f, "gateway") {
		t.Fatalf("format missing services:\n%s", f)
	}
}

func TestRootTagProvenance(t *testing.T) {
	c := NewCollector()
	root := mkSpan(c, "t2", 0, "gateway", 0, time.Second)
	root.SetTag("priority", "high")
	leaf := mkSpan(c, "t2", root.SpanID, "ratings", 0, time.Second)
	_ = leaf
	if got := c.RootTag("t2", "priority"); got != "high" {
		t.Fatalf("RootTag = %q, want high", got)
	}
	if got := c.RootTag("missing", "priority"); got != "" {
		t.Fatalf("RootTag for unknown trace = %q", got)
	}
}

func TestOrphanTraceTolerated(t *testing.T) {
	c := NewCollector()
	mkSpan(c, "t3", 999, "svc", 0, time.Millisecond) // parent never recorded
	tree := c.Tree("t3")
	if tree == nil {
		t.Fatal("orphan trace produced nil tree")
	}
}

func TestUnknownTrace(t *testing.T) {
	c := NewCollector()
	if c.Tree("nope") != nil {
		t.Fatal("unknown trace returned a tree")
	}
	if len(c.Trace("nope")) != 0 {
		t.Fatal("unknown trace returned spans")
	}
}

func TestTraceIDsSorted(t *testing.T) {
	c := NewCollector()
	mkSpan(c, "b", 0, "s", 0, 1)
	mkSpan(c, "a", 0, "s", 0, 1)
	ids := c.TraceIDs()
	if len(ids) != 2 || ids[0] != "a" || ids[1] != "b" {
		t.Fatalf("ids = %v", ids)
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestSpanAccessors(t *testing.T) {
	s := &Span{Start: time.Millisecond, End: 3 * time.Millisecond}
	if s.Duration() != 2*time.Millisecond {
		t.Fatalf("duration = %v", s.Duration())
	}
	s.SetTag("k", "v")
	if s.Tag("k") != "v" || s.Tag("missing") != "" {
		t.Fatal("tags broken")
	}
}
