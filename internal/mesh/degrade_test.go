package mesh

import (
	"testing"
	"time"

	"meshlayer/internal/cluster"
	"meshlayer/internal/httpsim"
	"meshlayer/internal/metrics"
)

// Tests for graceful degradation (fallback synthesis, the fallback
// deadline) and the retry-budget double-charge regression.

func TestFallbackSynthesizesOnTerminalFailure(t *testing.T) {
	tb := buildBed(t, Config{Seed: 3}, countingBackend(map[string]int{}, func(*cluster.Pod) bool {
		return true // every backend call 500s
	}))
	cp := tb.m.ControlPlane()
	cp.SetRetryPolicy("backend", RetryPolicy{MaxRetries: 1, RetryOn5xx: true})
	cp.SetFallbackPolicy("backend", FallbackPolicy{Enabled: true, BodyBytes: 64})

	var got *httpsim.Response
	var gotErr error
	tb.gw.Serve(extReq("/x"), func(resp *httpsim.Response, err error) { got, gotErr = resp, err })
	tb.sched.Run()

	if gotErr != nil || got == nil || got.Status != httpsim.StatusOK {
		t.Fatalf("resp=%v err=%v, want synthesized 200", got, gotErr)
	}
	if got.Headers.Get(HeaderDegraded) != "backend" {
		t.Fatalf("%s = %q, want backend", HeaderDegraded, got.Headers.Get(HeaderDegraded))
	}
	if n := tb.m.Metrics().CounterTotal("mesh_fallback_served_total"); n != 1 {
		t.Fatalf("fallbacks = %d, want 1", n)
	}
	if n := tb.m.Metrics().CounterTotal("gateway_degraded_total"); n != 1 {
		t.Fatalf("gateway degraded count = %d, want 1", n)
	}
}

func TestFallbackDeadlineBeatsRetryLadder(t *testing.T) {
	// Both backends black-holed: without the fallback deadline the call
	// only fails after MaxRetries x PerTryTimeout = 3s; the deadline
	// must serve degraded at ~200ms instead.
	tb := buildBed(t, Config{Seed: 4}, countingBackend(map[string]int{}, nil))
	cp := tb.m.ControlPlane()
	cp.SetRetryPolicy("backend", RetryPolicy{MaxRetries: 2, PerTryTimeout: time.Second})
	cp.SetFallbackPolicy("backend", FallbackPolicy{Enabled: true, After: 200 * time.Millisecond})
	tb.cl.Pod("backend-1").Partition(true)
	tb.cl.Pod("backend-2").Partition(true)

	var done time.Duration
	var got *httpsim.Response
	tb.gw.Serve(extReq("/x"), func(resp *httpsim.Response, err error) {
		done, got = tb.sched.Now(), resp
	})
	tb.sched.RunUntil(5 * time.Second)

	if got == nil || got.Status != httpsim.StatusOK {
		t.Fatalf("resp = %v, want degraded 200", got)
	}
	if done > 400*time.Millisecond {
		t.Fatalf("degraded response took %v, want ~200ms (deadline did not fire)", done)
	}
}

func TestFallbackDisabledLeavesErrors(t *testing.T) {
	tb := buildBed(t, Config{Seed: 5}, countingBackend(map[string]int{}, func(*cluster.Pod) bool {
		return true
	}))
	tb.m.ControlPlane().SetRetryPolicy("backend", RetryPolicy{MaxRetries: 0})

	var got *httpsim.Response
	tb.gw.Serve(extReq("/x"), func(resp *httpsim.Response, err error) { got = resp })
	tb.sched.Run()
	// buildBed's frontend translates child-call errors to 502; either
	// way, no fallback means no 200 and no degraded stamp.
	if got != nil && got.Status < 500 {
		t.Fatalf("resp = %v, want failure without fallback policy", got)
	}
	if n := tb.m.Metrics().CounterTotal("mesh_fallback_served_total"); n != 0 {
		t.Fatalf("fallbacks = %d, want 0", n)
	}
}

// TestHedgedFailureSpendsOneRetryToken is the regression test for the
// double-charge bug: a hedged call whose two in-flight attempts both
// fail must spend exactly ONE budget token and schedule exactly ONE
// retry — previously each settling attempt charged the budget and
// scheduled its own retry.
func TestHedgedFailureSpendsOneRetryToken(t *testing.T) {
	var tb *testbed
	tb = buildBed(t, Config{Seed: 6}, func(pod *cluster.Pod, req *httpsim.Request, respond func(*httpsim.Response)) {
		// Delay the failure so the hedge launches while the original is
		// still in flight, then both settle failed within the backoff
		// window.
		tb.sched.After(30*time.Millisecond, func() {
			respond(httpsim.NewResponse(httpsim.StatusInternalServerError))
		})
	})
	cp := tb.m.ControlPlane()
	cp.SetRetryPolicy("backend", RetryPolicy{
		MaxRetries: 2, RetryOn5xx: true,
		BackoffBase: 50 * time.Millisecond, BackoffMax: 50 * time.Millisecond,
		BudgetRatio: 0.001, BudgetBurst: 1, // exactly one token available
	})
	cp.SetHedgePolicy("backend", HedgePolicy{Delay: 5 * time.Millisecond})
	// No gateway-side retries: each frontend retry would spawn a fresh
	// logical backend call and muddy the budget accounting under test.
	cp.SetRetryPolicy("frontend", RetryPolicy{MaxRetries: 0})

	tb.gw.Serve(extReq("/x"), func(*httpsim.Response, error) {})
	tb.sched.RunUntil(2 * time.Second)

	// One token, so one retry fires; the concurrent hedge failure must
	// neither burn the budget (no exhaustion) nor add a second retry.
	// (Assert per-service: the gateway's own frontend call retries the
	// resulting 502 under its default policy.)
	reg := tb.m.Metrics()
	if n := reg.Counter("mesh_retries_total", metrics.Labels{"service": "backend"}).Value(); n != 1 {
		t.Fatalf("backend retries = %d, want exactly 1", n)
	}
	if n := reg.Counter("mesh_retry_budget_exhausted_total", metrics.Labels{"service": "backend"}).Value(); n != 0 {
		t.Fatalf("backend budget exhausted %d times: hedge failure double-charged the budget", n)
	}
}
