package mesh

import (
	"math"
	"math/rand"
	"sort"
	"time"

	"meshlayer/internal/cluster"
	"meshlayer/internal/httpsim"
	"meshlayer/internal/metrics"
	"meshlayer/internal/simnet"
	"meshlayer/internal/transport"
)

// This file holds the mesh's self-healing machinery: active health
// checking, passive outlier detection, token-bucket retry budgets, and
// the server-side fault hook the chaos engine drives. Everything runs
// on scheduler timers with deterministic iteration orders, so runs
// with equal seeds are bit-identical.

// healthConnClass keeps probe traffic on its own pooled connection so
// probes neither contend with nor are blocked by request traffic
// (Envoy gives the health checker its own connection pool too).
var healthConnClass = ConnClass{Name: "health", Options: transport.Options{CC: "reno"}}

// ensureDefenses lazily starts the health-check and outlier loops for
// an upstream service once its policies are pushed. Called on every
// outbound Call; a stopped loop restarts here if the policy returns.
func (sc *Sidecar) ensureDefenses(service string) {
	if !sc.healthCheckFor(service).IsZero() && !sc.hcActive[service] {
		sc.hcActive[service] = true
		sc.healthTick(service)
	}
	if !sc.outlierFor(service).IsZero() && !sc.outlierActive[service] {
		sc.outlierActive[service] = true
		p := sc.outlierFor(service).withDefaults()
		sc.mesh.sched.After(p.Interval, func() { sc.outlierSweep(service) })
	}
}

// healthTick probes every current endpoint of the service and
// re-arms itself. The loop exits (and clears its active mark) when
// the policy is withdrawn.
func (sc *Sidecar) healthTick(service string) {
	p := sc.healthCheckFor(service)
	if p.IsZero() {
		sc.hcActive[service] = false
		return
	}
	p = p.withDefaults()
	if eps, ok := sc.discoverEndpoints(service); ok {
		for _, ep := range eps {
			sc.probe(service, ep.Addr(), p)
		}
	}
	sc.mesh.sched.After(p.Interval, func() { sc.healthTick(service) })
}

// probe sends one health-check request to an endpoint and applies the
// verdict to its LB state.
func (sc *Sidecar) probe(service string, addr simnet.Addr, p HealthCheckPolicy) {
	m := sc.mesh
	req := httpsim.NewRequest("GET", "/healthz")
	req.Headers.Set(HeaderHost, service)
	req.Headers.Set(HeaderHealth, "1")
	sc.stampIdentity(req)

	client := sc.clientForAddr(addr, healthConnClass)
	settled := false
	timer := m.sched.After(p.Timeout, func() {
		if settled {
			return
		}
		settled = true
		// A timed-out probe condemns the probe connection so the next
		// round re-dials rather than waiting out RTO backoff to a
		// possibly-partitioned peer.
		sc.probeResult(service, addr, false, p)
		client.Conn().Abort()
	})
	client.Do(req, func(resp *httpsim.Response, err error) {
		if settled {
			return
		}
		settled = true
		timer.Cancel()
		sc.probeResult(service, addr, err == nil && resp.Status < 500, p)
	})
}

// probeResult folds one probe verdict into the endpoint's health via
// the consecutive-success/failure thresholds.
func (sc *Sidecar) probeResult(service string, addr simnet.Addr, ok bool, p HealthCheckPolicy) {
	m := sc.mesh
	st := sc.epState(addr)
	result := "fail"
	if ok {
		result = "ok"
	}
	m.metrics.Counter(MetricHealthProbeTotal,
		metrics.Labels{"service": service, "result": result}).Inc()
	if ok {
		st.hcFails = 0
		st.hcOKs++
		if st.unhealthy && st.hcOKs >= p.HealthyThreshold {
			st.unhealthy = false
			if p.SlowStart > 0 {
				now := m.sched.Now()
				st.warmSince, st.warmUntil = now, now+p.SlowStart
			}
			m.metrics.Counter(MetricHealthTransitionsTotal,
				metrics.Labels{"service": service, "to": "healthy"}).Inc()
		}
		return
	}
	st.hcOKs = 0
	st.hcFails++
	if !st.unhealthy && st.hcFails >= p.UnhealthyThreshold {
		st.unhealthy = true
		m.metrics.Counter(MetricHealthTransitionsTotal,
			metrics.Labels{"service": service, "to": "unhealthy"}).Inc()
		// Envoy's close_connections_on_host_health_failure: tear down
		// request connections to the failed host so in-flight attempts
		// fail fast into the retry path instead of waiting out their
		// per-try timeout against a dead peer.
		sc.abortConnsTo(service, addr)
	}
}

// abortConnsTo aborts every pooled request connection to addr (probe
// connections manage their own lifecycle). Pools are visited in sorted
// class order so equal-seed runs stay bit-identical.
func (sc *Sidecar) abortConnsTo(service string, addr simnet.Addr) {
	var classes []string
	for key, cl := range sc.pools {
		if key.addr == addr && key.class != healthConnClass.Name && !cl.Closed() {
			classes = append(classes, key.class)
		}
	}
	sort.Strings(classes)
	for _, class := range classes {
		sc.mesh.metrics.Counter(MetricHealthConnAbortsTotal,
			metrics.Labels{"service": service}).Inc()
		sc.pools[poolKey{addr: addr, class: class}].Conn().Abort()
	}
}

// evictPool drops the pooled connection for key if it is still cl, so
// the next attempt re-dials while cl's in-flight requests keep
// draining. The identity check keeps a late timer from evicting a
// replacement connection.
func (sc *Sidecar) evictPool(key poolKey, cl *httpsim.Client) {
	if cur, ok := sc.pools[key]; ok && cur == cl {
		delete(sc.pools, key)
	}
}

// clientForAddr is clientFor keyed by address (probes target endpoints
// that may have left the endpoint list).
func (sc *Sidecar) clientForAddr(addr simnet.Addr, class ConnClass) *httpsim.Client {
	key := poolKey{addr: addr, class: class.Name}
	cl, ok := sc.pools[key]
	if !ok || cl.Closed() {
		cl = httpsim.NewClient(sc.pod.Host(), addr, InboundPort, class.Options)
		sc.pools[key] = cl
		if sc.connHook != nil {
			sc.connHook(cl.Conn(), class)
		}
	}
	return cl
}

// outlierSweep judges every endpoint's request window and re-arms
// itself, exiting when the policy is withdrawn.
func (sc *Sidecar) outlierSweep(service string) {
	p := sc.outlierFor(service)
	if p.IsZero() {
		sc.outlierActive[service] = false
		return
	}
	p = p.withDefaults()
	if eps, ok := sc.discoverEndpoints(service); ok {
		sc.sweepOutliers(service, eps, p)
	}
	sc.mesh.sched.After(p.Interval, func() { sc.outlierSweep(service) })
}

// sweepOutliers ejects endpoints whose window failed too often or ran
// far slower than the best peer, subject to the panic threshold.
func (sc *Sidecar) sweepOutliers(service string, eps []*cluster.Pod, p OutlierPolicy) {
	m := sc.mesh
	now := m.sched.Now()

	// Best peer latency EWMA among non-ejected endpoints, for the
	// latency-factor criterion.
	bestEwma := 0.0
	available := 0
	for _, ep := range eps {
		st := sc.epState(ep.Addr())
		if st.unhealthy || now < st.ejectedUntil {
			continue
		}
		available++
		if st.ewma > 0 && (bestEwma == 0 || st.ewma < bestEwma) {
			bestEwma = st.ewma
		}
	}
	floor := int(math.Ceil(p.PanicThreshold * float64(len(eps))))

	for _, ep := range eps {
		st := sc.epState(ep.Addr())
		total, fail := st.winTotal, st.winFail
		st.winTotal, st.winFail = 0, 0
		if now < st.ejectedUntil || total < p.MinRequests {
			continue
		}
		reason := ""
		switch {
		case float64(fail) >= p.FailureThreshold*float64(total):
			reason = "failure_rate"
		case p.LatencyFactor > 0 && bestEwma > 0 && st.ewma > p.LatencyFactor*bestEwma:
			reason = "latency"
		}
		if reason == "" {
			continue
		}
		if p.PanicThreshold > 0 && available-1 < floor {
			m.metrics.Counter(MetricOutlierPanicTotal,
				metrics.Labels{"service": service}).Inc()
			continue
		}
		st.ejectedUntil = now + p.BaseEjection
		available--
		m.metrics.Counter(MetricOutlierEjectionsTotal,
			metrics.Labels{"service": service, "reason": reason}).Inc()
	}
}

// --- retry budgets ---

// retryBudget is a Finagle-style token bucket: each new logical call
// deposits BudgetRatio tokens, each retry spends one, and the bucket
// is capped (and initially filled) at the burst size. Sustained retry
// traffic is thereby bounded to BudgetRatio of request traffic, which
// is what kills retry storms.
type retryBudget struct {
	tokens float64
}

// depositRetryTokens credits the budget for one new logical call.
func (sc *Sidecar) depositRetryTokens(service string, p RetryPolicy) {
	if p.BudgetRatio <= 0 {
		return
	}
	b := sc.budgets[service]
	if b == nil {
		b = &retryBudget{tokens: p.budgetBurst()}
		sc.budgets[service] = b
	}
	b.tokens += p.BudgetRatio
	if cap := p.budgetBurst(); b.tokens > cap {
		b.tokens = cap
	}
}

// spendRetryToken authorizes one retry; false means the budget is
// exhausted and the caller must surface the failure instead.
func (sc *Sidecar) spendRetryToken(service string, p RetryPolicy) bool {
	if p.BudgetRatio <= 0 {
		return true
	}
	b := sc.budgets[service]
	if b == nil {
		b = &retryBudget{tokens: p.budgetBurst()}
		sc.budgets[service] = b
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// --- server-side fault injection (driven by internal/chaos) ---

// ServerFault configures an error-rate gray failure at a pod: its
// "application" answers a fraction of requests with an error status
// (after an optional stall) while the sidecar's health probes keep
// passing.
type ServerFault struct {
	// Prob is the per-request error probability.
	Prob float64
	// Status is the injected response code (default 500).
	Status int
	// Delay stalls the injected error, modeling a struggling rather
	// than fast-failing process.
	Delay time.Duration
	// Seed drives the fault's private PRNG.
	Seed int64
}

type serverFaultState struct {
	cfg ServerFault
	rng *rand.Rand
}

func (s *serverFaultState) status() int {
	if s.cfg.Status == 0 {
		return httpsim.StatusInternalServerError
	}
	return s.cfg.Status
}

// SetServerFault installs (Prob > 0) or clears (Prob <= 0) the pod's
// injected gray failure.
func (sc *Sidecar) SetServerFault(f ServerFault) {
	if f.Prob <= 0 {
		sc.serverFault = nil
		return
	}
	if f.Prob > 1 {
		f.Prob = 1
	}
	sc.serverFault = &serverFaultState{cfg: f, rng: rand.New(rand.NewSource(f.Seed))}
}
