package mesh

import (
	"time"

	"meshlayer/internal/httpsim"
	"meshlayer/internal/metrics"
)

// FaultPolicy injects faults into calls to a service at the caller's
// sidecar (Istio's VirtualService fault injection): a fixed delay
// and/or an immediate abort, each applied with a probability.
type FaultPolicy struct {
	// DelayProb injects Delay before the call with this probability.
	DelayProb float64
	Delay     time.Duration
	// AbortProb short-circuits the call with AbortStatus.
	AbortProb   float64
	AbortStatus int
}

// IsZero reports whether the policy injects nothing.
func (f FaultPolicy) IsZero() bool { return f.DelayProb == 0 && f.AbortProb == 0 }

// MirrorPolicy duplicates a sampled fraction of requests to a shadow
// service, fire-and-forget (Istio's traffic mirroring). The caller
// never sees the mirror's response.
type MirrorPolicy struct {
	// To is the shadow service name.
	To string
	// Fraction of requests mirrored, in [0, 1].
	Fraction float64
}

// RateLimitPolicy bounds a service's inbound request rate with a token
// bucket enforced at the server-side sidecar; excess requests get 429.
// This is the sidecar-level backpressure §3.6 alludes to.
type RateLimitPolicy struct {
	// RPS is the sustained refill rate. Zero disables the limit.
	RPS float64
	// Burst is the bucket depth in requests (default: ceil(RPS)).
	Burst int
}

// SetFaultPolicy installs fault injection for calls to a service.
func (cp *ControlPlane) SetFaultPolicy(service string, p FaultPolicy) {
	if p.AbortProb > 0 && p.AbortStatus == 0 {
		p.AbortStatus = httpsim.StatusServiceUnavailable
	}
	cp.apply(service, func() { cp.fault[service] = p })
}

// FaultPolicyFor returns the service's fault policy (zero by default).
func (cp *ControlPlane) FaultPolicyFor(service string) FaultPolicy { return cp.fault[service] }

// SetMirrorPolicy installs traffic mirroring for calls to a service.
func (cp *ControlPlane) SetMirrorPolicy(service string, p MirrorPolicy) {
	if p.Fraction < 0 || p.Fraction > 1 {
		panic("mesh: mirror fraction must be in [0,1]")
	}
	cp.apply(service, func() { cp.mirror[service] = p })
}

// MirrorPolicyFor returns the service's mirror policy.
func (cp *ControlPlane) MirrorPolicyFor(service string) MirrorPolicy { return cp.mirror[service] }

// SetRateLimit installs an inbound rate limit on a service.
func (cp *ControlPlane) SetRateLimit(service string, p RateLimitPolicy) {
	if p.RPS > 0 && p.Burst == 0 {
		p.Burst = int(p.RPS + 1)
	}
	cp.apply(service, func() { cp.rate[service] = p })
}

// RateLimitFor returns the service's rate limit (disabled by default).
func (cp *ControlPlane) RateLimitFor(service string) RateLimitPolicy { return cp.rate[service] }

// tokenBucket is the sidecar-local rate limiter state.
type tokenBucket struct {
	tokens float64
	last   time.Duration
}

// admit consumes one token if available, refilling at p.RPS.
func (tb *tokenBucket) admit(p RateLimitPolicy, now time.Duration) bool {
	if p.RPS <= 0 {
		return true
	}
	if now > tb.last {
		tb.tokens += p.RPS * (now - tb.last).Seconds()
		tb.last = now
		if tb.tokens > float64(p.Burst) {
			tb.tokens = float64(p.Burst)
		}
	}
	if tb.tokens >= 1 {
		tb.tokens--
		return true
	}
	return false
}

// applyInboundRateLimit enforces the service's limit; it returns false
// (and responds 429) when the request must be rejected.
func (sc *Sidecar) applyInboundRateLimit(respond func(*httpsim.Response)) bool {
	p := sc.rateLimitFor(sc.service)
	if p.RPS <= 0 {
		return true
	}
	if sc.bucket == nil {
		sc.bucket = &tokenBucket{tokens: float64(p.Burst), last: sc.mesh.sched.Now()}
	}
	if sc.bucket.admit(p, sc.mesh.sched.Now()) {
		return true
	}
	sc.mesh.metrics.Counter(MetricRequestsTotal,
		metrics.Labels{"service": sc.service, "direction": "inbound", "code": "429"}).Inc()
	respond(httpsim.NewResponse(httpsim.StatusTooManyRequests))
	return false
}

// maybeMirror fire-and-forgets a copy of req to the shadow service.
func (sc *Sidecar) maybeMirror(service string, req *httpsim.Request) {
	p := sc.mirrorPolicyFor(service)
	if p.To == "" || p.Fraction <= 0 || sc.mesh.rng.Float64() >= p.Fraction {
		return
	}
	shadow := req.Clone()
	shadow.Headers.Set(HeaderHost, p.To)
	shadow.Headers.Set(HeaderShadow, "true")
	sc.mesh.metrics.Counter(MetricMirroredTotal, metrics.Labels{"service": service, "to": p.To}).Inc()
	sc.Call(shadow, func(*httpsim.Response, error) {})
}
