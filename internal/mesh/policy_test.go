package mesh

import (
	"testing"
	"time"

	"meshlayer/internal/cluster"
	"meshlayer/internal/httpsim"
)

func TestFaultInjectionAbort(t *testing.T) {
	tb := buildBed(t, Config{Seed: 5}, echoBackend)
	tb.m.ControlPlane().SetFaultPolicy("backend", FaultPolicy{AbortProb: 1})
	tb.m.ControlPlane().SetRetryPolicy("backend", RetryPolicy{}) // aborts are terminal here
	var got *httpsim.Response
	tb.gw.Serve(extReq("/x"), func(r *httpsim.Response, err error) { got = r })
	tb.sched.Run()
	// The injected 503 propagates back (the frontend echoes upstream
	// responses verbatim).
	if got == nil || got.Status != httpsim.StatusServiceUnavailable {
		t.Fatalf("got %+v, want injected 503", got)
	}
}

func TestFaultInjectionAbortProbability(t *testing.T) {
	tb := buildBed(t, Config{Seed: 6}, echoBackend)
	tb.m.ControlPlane().SetFaultPolicy("backend", FaultPolicy{AbortProb: 0.5, AbortStatus: httpsim.StatusInternalServerError})
	tb.m.ControlPlane().SetRetryPolicy("backend", RetryPolicy{})
	tb.m.ControlPlane().SetRetryPolicy("frontend", RetryPolicy{})
	ok, bad := 0, 0
	for i := 0; i < 60; i++ {
		tb.gw.Serve(extReq("/x"), func(r *httpsim.Response, err error) {
			if err == nil && r.Status == httpsim.StatusOK {
				ok++
			} else {
				bad++
			}
		})
		tb.sched.RunFor(50 * time.Millisecond)
	}
	tb.sched.Run()
	if ok == 0 || bad == 0 {
		t.Fatalf("ok=%d bad=%d: 50%% abort should split outcomes", ok, bad)
	}
	if ok < 15 || bad < 15 {
		t.Fatalf("ok=%d bad=%d: far from 50/50", ok, bad)
	}
}

func TestFaultInjectionDelay(t *testing.T) {
	tb := buildBed(t, Config{Seed: 7, SidecarDelayMean: -1}, echoBackend)
	tb.m.ControlPlane().SetFaultPolicy("backend", FaultPolicy{DelayProb: 1, Delay: 300 * time.Millisecond})
	var lat time.Duration
	start := tb.sched.Now()
	tb.gw.Serve(extReq("/x"), func(r *httpsim.Response, err error) { lat = tb.sched.Now() - start })
	tb.sched.Run()
	if lat < 300*time.Millisecond {
		t.Fatalf("latency %v, want >= 300ms injected delay", lat)
	}
}

func TestMirroringShadowsTraffic(t *testing.T) {
	// Mirror backend calls to a shadow service; primary responses are
	// unaffected and the shadow sees the copies.
	shadowSeen := 0
	tb := buildBed(t, Config{Seed: 8}, echoBackend)
	shadowPod := tb.cl.AddPod(cluster.PodSpec{Name: "shadow-1", Labels: map[string]string{"app": "shadow"}})
	tb.cl.AddService("shadow", 9080, map[string]string{"app": "shadow"})
	ssc := tb.m.InjectSidecar(shadowPod)
	ssc.RegisterApp(func(req *httpsim.Request, respond func(*httpsim.Response)) {
		if req.Headers.Get(HeaderShadow) != "true" {
			t.Fatal("shadow header missing")
		}
		shadowSeen++
		respond(httpsim.NewResponse(httpsim.StatusOK))
	})
	tb.m.ControlPlane().SetMirrorPolicy("backend", MirrorPolicy{To: "shadow", Fraction: 1})

	ok := 0
	for i := 0; i < 10; i++ {
		tb.gw.Serve(extReq("/x"), func(r *httpsim.Response, err error) {
			if err == nil && r.Status == httpsim.StatusOK {
				ok++
			}
		})
		tb.sched.RunFor(100 * time.Millisecond)
	}
	tb.sched.Run()
	if ok != 10 {
		t.Fatalf("primary path broken by mirroring: ok=%d", ok)
	}
	if shadowSeen != 10 {
		t.Fatalf("shadow saw %d, want 10", shadowSeen)
	}
	if tb.m.Metrics().CounterTotal("mesh_mirrored_total") != 10 {
		t.Fatal("mirror telemetry missing")
	}
}

func TestMirrorFractionValidation(t *testing.T) {
	tb := buildBed(t, Config{}, echoBackend)
	defer func() {
		if recover() == nil {
			t.Fatal("fraction > 1 accepted")
		}
	}()
	tb.m.ControlPlane().SetMirrorPolicy("backend", MirrorPolicy{To: "x", Fraction: 2})
}

func TestRateLimitRejectsExcess(t *testing.T) {
	tb := buildBed(t, Config{Seed: 9}, echoBackend)
	tb.m.ControlPlane().SetRateLimit("frontend", RateLimitPolicy{RPS: 5, Burst: 2})
	tb.m.ControlPlane().SetRetryPolicy("frontend", RetryPolicy{}) // don't retry 429s away
	ok, limited := 0, 0
	// Burst 20 requests instantly: only the bucket depth passes.
	for i := 0; i < 20; i++ {
		tb.gw.Serve(extReq("/x"), func(r *httpsim.Response, err error) {
			switch {
			case err == nil && r.Status == httpsim.StatusOK:
				ok++
			case err == nil && r.Status == httpsim.StatusTooManyRequests:
				limited++
			}
		})
	}
	tb.sched.Run()
	if limited == 0 {
		t.Fatal("no requests rate-limited")
	}
	if ok == 0 || ok > 5 {
		t.Fatalf("ok = %d, want 1..5 (bucket depth 2 + slight refill)", ok)
	}
}

func TestRateLimitRefills(t *testing.T) {
	tb := buildBed(t, Config{Seed: 10}, echoBackend)
	tb.m.ControlPlane().SetRateLimit("frontend", RateLimitPolicy{RPS: 10, Burst: 1})
	tb.m.ControlPlane().SetRetryPolicy("frontend", RetryPolicy{})
	ok := 0
	// One request every 200ms at 10 RPS refill: all admitted.
	for i := 0; i < 10; i++ {
		tb.gw.Serve(extReq("/x"), func(r *httpsim.Response, err error) {
			if err == nil && r.Status == httpsim.StatusOK {
				ok++
			}
		})
		tb.sched.RunFor(200 * time.Millisecond)
	}
	tb.sched.Run()
	if ok != 10 {
		t.Fatalf("ok = %d, want 10 (rate below limit)", ok)
	}
}
