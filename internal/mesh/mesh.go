// Package mesh implements a service mesh in the Istio/Envoy mould on
// top of the simulated cluster: a control plane holding routing rules,
// load-balancing, retry, and security policy; sidecar proxies that
// intercept every pod's inbound and outbound requests; and an ingress
// gateway admitting external traffic.
//
// The mesh is the paper's subject — "a new layer in the networking
// stack between application and transport" (§3.1). Its extension
// points (filters, connection classes, subset routing) are what the
// cross-layer prioritization controller in internal/core plugs into.
package mesh

import (
	"math/rand"
	"time"

	"meshlayer/internal/cluster"
	"meshlayer/internal/metrics"
	"meshlayer/internal/simnet"
	"meshlayer/internal/trace"
)

// InboundPort is the sidecar's service port, analogous to Envoy's
// 15006 virtual-inbound listener.
const InboundPort = 15006

// Header names live in headers.go, the mesh header registry.

// Priority header values.
const (
	PriorityHigh = "high"
	PriorityLow  = "low"
)

// Config tunes mesh-wide behaviour.
type Config struct {
	// SidecarDelayMean is the mean per-traversal proxy processing
	// delay (each request or response passing through each sidecar
	// samples one exponential delay). Zero selects DefaultSidecarDelay;
	// negative disables the overhead entirely.
	SidecarDelayMean time.Duration
	// Seed drives the mesh's private randomness (proxy jitter, random
	// LB). Runs with equal seeds are identical.
	Seed int64
}

// DefaultSidecarDelay yields ~1-3 ms of combined two-proxy overhead at
// the tail, consistent with the Istio numbers the paper cites (§3.6).
const DefaultSidecarDelay = 250 * time.Microsecond

// Mesh ties the control plane and the per-pod sidecars together.
type Mesh struct {
	cluster *cluster.Cluster
	sched   *simnet.Scheduler
	cp      *ControlPlane
	tracer  *trace.Collector
	metrics *metrics.Registry
	rng     *rand.Rand

	sidecars map[string]*Sidecar
	// eastwest holds the per-region east-west gateways (eastwest.go).
	eastwest map[string]*EastWestGateway
	delay    time.Duration

	// Degraded-response provenance (see degrade.go): trace ID -> the
	// upstream a fallback papered over, swept on a TTL.
	degraded      map[string]degradedEntry
	degSweepArmed bool
}

// New builds a mesh over the cluster.
func New(cl *cluster.Cluster, cfg Config) *Mesh {
	delay := cfg.SidecarDelayMean
	if delay == 0 {
		delay = DefaultSidecarDelay
	}
	if delay < 0 {
		delay = 0
	}
	m := &Mesh{
		cluster:  cl,
		sched:    cl.Scheduler(),
		tracer:   trace.NewCollector(),
		metrics:  metrics.NewRegistry(),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		sidecars: make(map[string]*Sidecar),
		eastwest: make(map[string]*EastWestGateway),
		delay:    delay,
		degraded: make(map[string]degradedEntry),
	}
	m.cp = newControlPlane(m)
	return m
}

// Cluster returns the underlying cluster.
func (m *Mesh) Cluster() *cluster.Cluster { return m.cluster }

// ControlPlane returns the mesh control plane.
func (m *Mesh) ControlPlane() *ControlPlane { return m.cp }

// Tracer returns the distributed-tracing collector.
func (m *Mesh) Tracer() *trace.Collector { return m.tracer }

// Metrics returns the telemetry registry.
func (m *Mesh) Metrics() *metrics.Registry { return m.metrics }

// Scheduler returns the simulation scheduler.
func (m *Mesh) Scheduler() *simnet.Scheduler { return m.sched }

// Sidecar returns the sidecar injected into the named pod, or nil.
func (m *Mesh) Sidecar(podName string) *Sidecar { return m.sidecars[podName] }

// Sidecars returns all sidecars (pod creation order).
func (m *Mesh) Sidecars() []*Sidecar {
	var out []*Sidecar
	for _, p := range m.cluster.Pods() {
		if sc, ok := m.sidecars[p.Name()]; ok {
			out = append(out, sc)
		}
	}
	return out
}

// proxyDelay samples one sidecar-traversal processing delay.
func (m *Mesh) proxyDelay() time.Duration {
	if m.delay == 0 {
		return 0
	}
	return time.Duration(m.rng.ExpFloat64() * float64(m.delay))
}
