package mesh

// This file is the mesh metric-name registry: every family the mesh
// and gateway subsystems register is declared here, once, as a named
// constant. The meshvet metricdecl analyzer enforces it — an inline
// literal at a Counter/Gauge/Histogram/ObserveDuration call is a lint
// error, and two constants spelling the same family (or one family
// registered as two kinds) are caught across packages via facts.
//
// Naming convention (also machine-checked): subsystem prefix (mesh_,
// gateway_, ctrlplane_) plus lowercase snake_case; counters end in
// _total, histograms in _duration or _seconds; gauges name a level.

// Counter families.
const (
	MetricRequestsTotal           = "mesh_requests_total"
	MetricRetriesTotal            = "mesh_retries_total"
	MetricRetryBudgetExhausted    = "mesh_retry_budget_exhausted_total"
	MetricFallbackServedTotal     = "mesh_fallback_served_total"
	MetricMirroredTotal           = "mesh_mirrored_total"
	MetricAdmissionShedTotal      = "mesh_admission_shed_total"
	MetricAdmissionCancelledTotal = "mesh_admission_cancelled_total"
	MetricCertsIssuedTotal        = "mesh_certs_issued_total"
	MetricMTLSDeniedTotal         = "mesh_mtls_denied_total"
	MetricHealthProbeTotal        = "mesh_health_probe_total"
	MetricHealthProbeAnswered     = "mesh_health_probe_answered_total"
	MetricHealthTransitionsTotal  = "mesh_health_transitions_total"
	MetricHealthConnAbortsTotal   = "mesh_health_conn_aborts_total"
	MetricOutlierEjectionsTotal   = "mesh_outlier_ejections_total"
	MetricOutlierPanicTotal       = "mesh_outlier_panic_total"
	MetricServerFaultInjected     = "mesh_server_fault_injected_total"
	MetricLBCrossZoneTotal        = "mesh_lb_cross_zone_total"
	MetricCrossRegionTotal        = "mesh_cross_region_total"
	MetricGatewayDegradedTotal    = "gateway_degraded_total"
	MetricEWIngressTotal          = "gateway_eastwest_ingress_total"
	MetricEWEgressTotal           = "gateway_eastwest_egress_total"
)

// Gauge families.
const (
	MetricAdmissionQueueDepth = "mesh_admission_queue_depth"
	MetricAdmissionLimit      = "mesh_admission_limit"
)

// Histogram families.
const (
	MetricRequestDuration        = "mesh_request_duration"
	MetricGatewayRequestDuration = "gateway_request_duration"
)
