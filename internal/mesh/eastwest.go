package mesh

import (
	"sort"
	"strings"
	"time"

	"meshlayer/internal/cluster"
	"meshlayer/internal/httpsim"
	"meshlayer/internal/metrics"
)

// This file implements east-west (cross-region) gateways: the
// federation data path. A request whose failover ladder picks a remote
// region never dials the remote pod directly — it traverses an
// egress -> ingress gateway pair, exactly one WAN crossing between the
// two gateways:
//
//	caller sidecar -> eastwest-<local> (egress) -> eastwest-<target>
//	(ingress) -> destination service, restricted to the target region
//
// The caller therefore needs to know only its local gateway and a
// summarized "region X has N endpoints for svc" entry; remote pod
// identities stay inside their region, which is what lets each region
// run its own control plane (distrib.go).

// Federation header names (HeaderEWService, HeaderEWRegion,
// HeaderLocalOnly, HeaderRegion) live in headers.go, the registry.

// EWServicePrefix prefixes the per-region east-west gateway services.
const EWServicePrefix = "eastwest-"

// EWForwardTimeout is the default per-try timeout on the gateway's WAN
// forward leg (egress gateway -> remote ingress gateway). The timeout's
// pool eviction is what matters more than the deadline itself: without
// it, forwards to a partitioned region pile up behind a connection
// stuck in retransmission backoff and keep failing long after the WAN
// heals, and a congested peer's head-of-line-blocked pipeline keeps
// serving 2 MB responses to callers that already gave up. The value
// must sit above a legitimate cold-start bulk transfer across the WAN
// (hundreds of milliseconds) — tight enough to reset a wedged pipe,
// loose enough never to abort a healthy one.
const EWForwardTimeout = time.Second

// EWGatewayService returns the service name of a region's east-west
// gateway.
func EWGatewayService(region string) string { return EWServicePrefix + region }

// isEWService reports whether a service name is an east-west gateway —
// gateway-to-gateway legs must never re-enter the failover ladder.
func isEWService(service string) bool { return strings.HasPrefix(service, EWServicePrefix) }

// RemoteEndpoints summarizes one remote region's capacity for a
// service as exchanged between regional control planes: federated
// gateways advertise an endpoint count, not pod identities.
type RemoteEndpoints struct {
	Region string
	Count  int
}

// ewSummaryTable is one regional control plane's learned view of every
// peer region's capacity — the east-west routing state sidecars'
// ladders spill onto. All mutation goes through apply, the summary
// push path; meshvet's ctlwrite analyzer enforces that nothing else
// writes it, so a WAN partition freezes the table rather than letting
// some shortcut read fresh state.
type ewSummaryTable struct {
	// counts maps region -> service -> advertised endpoint count.
	counts map[string]map[string]int
}

func newEWSummaryTable() *ewSummaryTable {
	return &ewSummaryTable{counts: make(map[string]map[string]int)}
}

// apply replaces one region's advertisement and returns the sorted
// service names whose count changed (the resources to re-stage).
func (t *ewSummaryTable) apply(region string, counts map[string]int) []string {
	old := t.counts[region]
	changed := make(map[string]bool)
	for svc, n := range counts {
		if old[svc] != n {
			changed[svc] = true
		}
	}
	for svc := range old {
		if _, still := counts[svc]; !still {
			changed[svc] = true
		}
	}
	cpy := make(map[string]int, len(counts))
	for svc, n := range counts {
		cpy[svc] = n
	}
	t.counts[region] = cpy
	out := make([]string, 0, len(changed))
	for svc := range changed {
		out = append(out, svc)
	}
	sort.Strings(out)
	return out
}

// remoteFor lists the regions advertising capacity for a service, in
// the given region order (deterministic). Regions with no capacity are
// omitted.
func (t *ewSummaryTable) remoteFor(service string, order []string) []RemoteEndpoints {
	var out []RemoteEndpoints
	for _, r := range order {
		if n := t.counts[r][service]; n > 0 {
			out = append(out, RemoteEndpoints{Region: r, Count: n})
		}
	}
	return out
}

// EastWestGateway is one region's cross-region gateway: a mesh pod
// whose application forwards rather than serves. It plays both halves
// of the pair depending on the request's target region.
type EastWestGateway struct {
	mesh   *Mesh
	sc     *Sidecar
	region string
}

// NewEastWestGateway installs an east-west gateway on the pod (which
// receives a sidecar if it does not have one yet). The pod must live in
// a region; its gateway service — EWGatewayService(region), selecting
// the pod — is how sidecars and peer gateways reach it.
func (m *Mesh) NewEastWestGateway(pod *cluster.Pod) *EastWestGateway {
	region := pod.Region()
	if region == "" {
		panic("mesh: east-west gateway pod needs a region")
	}
	if _, dup := m.eastwest[region]; dup {
		panic("mesh: region " + region + " already has an east-west gateway")
	}
	sc := m.sidecars[pod.Name()]
	if sc == nil {
		sc = m.InjectSidecar(pod)
	}
	g := &EastWestGateway{mesh: m, sc: sc, region: region}
	sc.RegisterApp(g.handle)
	m.eastwest[region] = g
	// The WAN forward leg ships with a per-try timeout (no retries — the
	// original caller owns end-to-end retry) so a wedged cross-region
	// connection is evicted and re-dialed instead of queuing forwards
	// forever; see EWForwardTimeout.
	m.cp.SetRetryPolicy(EWGatewayService(region), RetryPolicy{PerTryTimeout: EWForwardTimeout})
	return g
}

// EastWestGateway returns the region's gateway, or nil.
func (m *Mesh) EastWestGateway(region string) *EastWestGateway { return m.eastwest[region] }

// Sidecar returns the gateway's sidecar.
func (g *EastWestGateway) Sidecar() *Sidecar { return g.sc }

// Region returns the region this gateway fronts.
func (g *EastWestGateway) Region() string { return g.region }

// handle is the gateway application: it inspects the federation
// headers and either forwards across the WAN (egress half) or
// terminates the pair and calls the real service locally (ingress
// half). The trace identity travels untouched, so degraded-response
// provenance (degrade.go) keeps alternating between header and
// request-id map across both hops.
func (g *EastWestGateway) handle(req *httpsim.Request, respond func(*httpsim.Response)) {
	service := req.Headers.Get(HeaderEWService)
	target := req.Headers.Get(HeaderEWRegion)
	if service == "" || target == "" {
		// Not a federation request: nothing is served here.
		respond(httpsim.NewResponse(httpsim.StatusNotFound))
		return
	}
	m := g.mesh
	if target == g.region {
		// Ingress half: strip the federation headers, pin the final leg
		// to this region, and call the real service.
		m.metrics.Counter(MetricEWIngressTotal,
			metrics.Labels{"region": g.region, "service": service}).Inc()
		fwd := req.Clone()
		fwd.Headers.Del(HeaderEWService)
		fwd.Headers.Del(HeaderEWRegion)
		fwd.Headers.Set(HeaderHost, service)
		fwd.Headers.Set(HeaderLocalOnly, "1")
		g.sc.Call(fwd, func(resp *httpsim.Response, err error) {
			if err != nil {
				respond(httpsim.NewResponse(httpsim.StatusServiceUnavailable))
				return
			}
			// Region provenance: where the request actually landed.
			resp.Headers.Set(HeaderRegion, g.region)
			respond(resp)
		})
		return
	}
	// Egress half: one WAN crossing to the target region's gateway. The
	// federation headers ride along; the host header points the mesh
	// routing machinery at the peer gateway service.
	m.metrics.Counter(MetricEWEgressTotal,
		metrics.Labels{"region": g.region, "service": service}).Inc()
	fwd := req.Clone()
	fwd.Headers.Set(HeaderHost, EWGatewayService(target))
	g.sc.Call(fwd, func(resp *httpsim.Response, err error) {
		if err != nil {
			respond(httpsim.NewResponse(httpsim.StatusServiceUnavailable))
			return
		}
		respond(resp)
	})
}
