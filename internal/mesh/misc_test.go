package mesh

import (
	"testing"
	"time"

	"meshlayer/internal/httpsim"
)

func TestSubsetRefString(t *testing.T) {
	if (SubsetRef{}).String() != "*" {
		t.Fatal("zero subset string")
	}
	if (SubsetRef{Key: "version", Value: "v1"}).String() != "version=v1" {
		t.Fatal("subset string")
	}
	if !(SubsetRef{}).IsZero() || (SubsetRef{Key: "a"}).IsZero() {
		t.Fatal("IsZero")
	}
}

func TestNoEndpointsWhenAllUnready(t *testing.T) {
	tb := buildBed(t, Config{}, echoBackend)
	tb.cl.Pod("backend-1").SetReady(false)
	tb.cl.Pod("backend-2").SetReady(false)
	tb.m.ControlPlane().SetRetryPolicy("backend", RetryPolicy{})
	tb.m.ControlPlane().SetRetryPolicy("frontend", RetryPolicy{})
	var got *httpsim.Response
	tb.gw.Serve(extReq("/x"), func(r *httpsim.Response, err error) { got = r })
	tb.sched.Run()
	// The frontend's call fails with ErrNoEndpoints, surfacing as 502.
	if got == nil || got.Status != httpsim.StatusBadGateway {
		t.Fatalf("got %+v, want 502", got)
	}
}

func TestSidecarAccessors(t *testing.T) {
	tb := buildBed(t, Config{}, echoBackend)
	sc := tb.b1
	if sc.Pod() != tb.cl.Pod("backend-1") {
		t.Fatal("pod accessor")
	}
	if sc.ServiceName() != "backend" {
		t.Fatalf("service = %q", sc.ServiceName())
	}
	if tb.m.Sidecar("backend-1") != sc || tb.m.Sidecar("zz") != nil {
		t.Fatal("mesh sidecar lookup")
	}
	if len(tb.m.Sidecars()) != 4 {
		t.Fatalf("sidecars = %d", len(tb.m.Sidecars()))
	}
	if tb.m.Cluster() != tb.cl || tb.m.Scheduler() != tb.sched {
		t.Fatal("mesh accessors")
	}
}

func TestMeshRequestDurationRecorded(t *testing.T) {
	tb := buildBed(t, Config{}, echoBackend)
	tb.gw.Serve(extReq("/x"), func(*httpsim.Response, error) {})
	tb.sched.Run()
	h := tb.m.Metrics().Histogram("mesh_request_duration",
		map[string]string{"service": "backend", "direction": "inbound"})
	if h.Count() != 1 {
		t.Fatalf("backend inbound durations = %d", h.Count())
	}
	ho := tb.m.Metrics().Histogram("mesh_request_duration",
		map[string]string{"service": "backend", "direction": "outbound"})
	if ho.Count() != 1 {
		t.Fatalf("backend outbound durations = %d", ho.Count())
	}
}

func TestEndpointStateObserve(t *testing.T) {
	st := &endpointState{}
	cb := CircuitBreakerPolicy{ConsecutiveFailures: 2, OpenFor: time.Second}
	st.observe(10*time.Millisecond, false, false, cb, 0)
	if st.ewma == 0 {
		t.Fatal("no ewma sample")
	}
	prior := st.ewma
	st.observe(20*time.Millisecond, false, false, cb, 0)
	if st.ewma <= prior {
		t.Fatal("ewma did not move toward slower sample")
	}
	// Two failures open the breaker; a success resets the count.
	st.observe(0, true, false, cb, 100)
	st.observe(0, false, false, cb, 100)
	st.observe(0, true, false, cb, 100)
	if !st.available(100) {
		t.Fatal("breaker opened without consecutive failures")
	}
	st.observe(0, true, false, cb, 100)
	st.observe(0, true, false, cb, 100)
	if st.available(100) {
		t.Fatal("breaker did not open")
	}
	// After OpenFor the breaker goes half-open: one trial is admitted,
	// a second concurrent request is not.
	later := 100 + time.Second + 1
	if !st.available(later) {
		t.Fatal("breaker did not go half-open after OpenFor")
	}
	st.trial = true
	if st.available(later) {
		t.Fatal("second request admitted during half-open trial")
	}
	// A successful trial closes the breaker; a failed one re-opens it.
	st.observe(0, false, true, cb, later)
	if st.phase != breakerClosed || !st.available(later) {
		t.Fatal("trial success did not close breaker")
	}
}

func TestPushDelayDefersConfig(t *testing.T) {
	tb := buildBed(t, Config{}, echoBackend)
	cp := tb.m.ControlPlane()
	cp.SetPushDelay(500 * time.Millisecond)
	v := cp.Version()
	cp.SetLBPolicy("backend", LBRandom)
	// Not yet applied.
	if cp.Version() != v || cp.LBPolicyFor("backend") != LBRoundRobin {
		t.Fatal("config applied before propagation delay")
	}
	tb.sched.RunFor(time.Second)
	if cp.Version() == v || cp.LBPolicyFor("backend") != LBRandom {
		t.Fatal("config never propagated")
	}
	// Restore instantaneous mode.
	cp.SetPushDelay(0)
	cp.SetLBPolicy("backend", LBEWMA)
	if cp.LBPolicyFor("backend") != LBEWMA {
		t.Fatal("instant mode broken")
	}
	cp.SetPushDelay(-5) // clamps to 0
	cp.SetLBPolicy("backend", LBRoundRobin)
	if cp.LBPolicyFor("backend") != LBRoundRobin {
		t.Fatal("negative delay not clamped")
	}
}

func TestPushDelayedRouteRuleTakesEffectMidTraffic(t *testing.T) {
	tb := buildBed(t, Config{Seed: 30}, echoBackend)
	cp := tb.m.ControlPlane()
	cp.SetPushDelay(2 * time.Second)
	cp.SetRouteRule(RouteRule{
		Service:       "backend",
		DefaultSubset: SubsetRef{Key: "version", Value: "v2"},
	})
	byBackend := map[string]int{}
	// 4 requests before the rule lands, 4 after.
	for i := 0; i < 8; i++ {
		tb.gw.Serve(extReq("/x"), func(r *httpsim.Response, err error) {
			if err == nil {
				byBackend[r.Headers.Get("x-backend")]++
			}
		})
		tb.sched.RunFor(time.Second)
	}
	tb.sched.Run()
	// Early traffic round-robins both; later traffic pins to v2.
	if byBackend["backend-1"] == 0 {
		t.Fatalf("pre-push traffic never hit backend-1: %v", byBackend)
	}
	if byBackend["backend-2"] <= byBackend["backend-1"] {
		t.Fatalf("post-push pinning not visible: %v", byBackend)
	}
}
