package mesh

import (
	"meshlayer/internal/simnet"
	"meshlayer/internal/transport"
)

// transportOptions builds transport options with a packet mark (test
// helper).
func transportOptions(m simnet.Mark) transport.Options {
	return transport.Options{CC: "reno", Mark: m}
}
