package mesh

import (
	"math"
	"testing"
	"time"

	"meshlayer/internal/cluster"
	"meshlayer/internal/httpsim"
	"meshlayer/internal/simnet"
	"meshlayer/internal/trace"
)

// Tests for zone-aware (locality-weighted) load balancing: the pure
// priority-load math, the selection edge cases, and end-to-end traffic
// shift when a zone's endpoints die.

func TestLocalityWeights(t *testing.T) {
	cases := []struct {
		name                  string
		local, remote, ovp    float64
		wantLocal, wantRemote float64
	}{
		{"all healthy", 1, 1, 1.4, 1, 0},
		{"local fully dead", 0, 1, 1.4, 0, 1},
		{"everything dead", 0, 0, 1.4, 0, 0},
		// 50% local health x 1.4 = 0.7 stays local, 0.3 spills.
		{"half local health spills", 0.5, 1, 1.4, 0.7, 0.3},
		// Above 1/ovp health the local level still takes everything.
		{"overprovisioning absorbs", 0.8, 1, 1.4, 1, 0},
		// Both degraded: 0.2 + min(0.8, 0.3) = 0.5, normalized 2:3.
		{"both degraded normalize", 0.2, 0.3, 1, 0.4, 0.6},
		// Remote cap binds: local keeps 0.5, remote absorbs only its
		// 0.2 health, and the pair normalizes over 0.7.
		{"remote too sick to absorb", 0.5, 0.2, 1, 0.5 / 0.7, 0.2 / 0.7},
	}
	for _, c := range cases {
		gotL, gotR := LocalityWeights(c.local, c.remote, c.ovp)
		if math.Abs(gotL-c.wantLocal) > 1e-9 || math.Abs(gotR-c.wantRemote) > 1e-9 {
			t.Errorf("%s: LocalityWeights(%v,%v,%v) = (%v,%v), want (%v,%v)",
				c.name, c.local, c.remote, c.ovp, gotL, gotR, c.wantLocal, c.wantRemote)
		}
	}
}

// zonedBed wires gateway -> frontend (zone-a) -> backend x3, with
// backend-1 local to the frontend and backend-2/3 in zone-b.
type zonedBed struct {
	sched *simnet.Scheduler
	cl    *cluster.Cluster
	m     *Mesh
	gw    *Gateway
	fe    *Sidecar
	hits  map[string]int
}

func buildZonedBed(t *testing.T, backendZones map[string]string) *zonedBed {
	t.Helper()
	s := simnet.NewScheduler()
	n := simnet.NewNetwork(s)
	cl := cluster.New(n)
	cl.AddZone("zone-a", simnet.LinkConfig{})
	cl.AddZone("zone-b", simnet.LinkConfig{})

	// The gateway is deliberately zoneless (callers without a zone must
	// bypass locality); the frontend anchors priority level 0 in zone-a.
	gwPod := cl.AddPod(cluster.PodSpec{Name: "gateway", Labels: map[string]string{"app": "gateway"}})
	fePod := cl.AddPod(cluster.PodSpec{Name: "frontend-1", Labels: map[string]string{"app": "frontend"}, Zone: "zone-a"})
	bed := &zonedBed{sched: s, cl: cl, hits: map[string]int{}}
	var bPods []*cluster.Pod
	for _, name := range []string{"backend-1", "backend-2", "backend-3"} {
		bPods = append(bPods, cl.AddPod(cluster.PodSpec{
			Name: name, Labels: map[string]string{"app": "backend"}, Zone: backendZones[name],
		}))
	}
	cl.AddService("frontend", 9080, map[string]string{"app": "frontend"})
	cl.AddService("backend", 9080, map[string]string{"app": "backend"})

	m := New(cl, Config{Seed: 11})
	bed.m = m
	bed.gw = m.NewGateway(gwPod)
	bed.fe = m.InjectSidecar(fePod)
	bed.fe.RegisterApp(func(req *httpsim.Request, respond func(*httpsim.Response)) {
		child := httpsim.NewRequest("GET", req.Path)
		child.Headers.Set(HeaderHost, "backend")
		child.Headers.Set(trace.HeaderRequestID, req.Headers.Get(trace.HeaderRequestID))
		bed.fe.Call(child, func(resp *httpsim.Response, err error) {
			if err != nil {
				respond(httpsim.NewResponse(httpsim.StatusBadGateway))
				return
			}
			respond(resp.Clone())
		})
	})
	for _, p := range bPods {
		pod := p
		sc := m.InjectSidecar(pod)
		sc.RegisterApp(func(req *httpsim.Request, respond func(*httpsim.Response)) {
			bed.hits[pod.Name()]++
			respond(httpsim.NewResponse(httpsim.StatusOK))
		})
	}
	return bed
}

var defaultZones = map[string]string{
	"backend-1": "zone-a", "backend-2": "zone-b", "backend-3": "zone-b",
}

func (bed *zonedBed) fireN(t *testing.T, n int, start, gap time.Duration, failures *int) {
	t.Helper()
	for i := 0; i < n; i++ {
		bed.sched.At(start+time.Duration(i)*gap, func() {
			bed.gw.Serve(extReq("/x"), func(resp *httpsim.Response, err error) {
				if failures != nil && (err != nil || resp.Status >= 500) {
					*failures++
				}
			})
		})
	}
}

func TestLocalityStrictPinsToLocalZone(t *testing.T) {
	bed := buildZonedBed(t, defaultZones)
	bed.m.ControlPlane().SetLocalityPolicy("backend", LocalityPolicy{Mode: LocalityStrict})
	bed.fireN(t, 20, 0, 10*time.Millisecond, nil)
	bed.sched.Run()
	if bed.hits["backend-1"] != 20 || bed.hits["backend-2"]+bed.hits["backend-3"] != 0 {
		t.Fatalf("hits = %v, want all 20 on local backend-1", bed.hits)
	}
}

func TestLocalityFailoverStaysLocalWhenHealthy(t *testing.T) {
	bed := buildZonedBed(t, defaultZones)
	bed.m.ControlPlane().SetLocalityPolicy("backend", LocalityPolicy{Mode: LocalityFailover})
	bed.fireN(t, 20, 0, 10*time.Millisecond, nil)
	bed.sched.Run()
	if bed.hits["backend-1"] != 20 {
		t.Fatalf("hits = %v, want all 20 local", bed.hits)
	}
	if got := bed.m.Metrics().CounterTotal("mesh_lb_cross_zone_total"); got != 0 {
		t.Fatalf("cross-zone selections = %d, want 0", got)
	}
}

func TestLocalityFailoverSpillsWhenLocalZoneDies(t *testing.T) {
	bed := buildZonedBed(t, defaultZones)
	cp := bed.m.ControlPlane()
	cp.SetLocalityPolicy("backend", LocalityPolicy{Mode: LocalityFailover})
	cp.SetHealthCheck("backend", HealthCheckPolicy{
		Interval: 25 * time.Millisecond, Timeout: 20 * time.Millisecond,
		UnhealthyThreshold: 2, HealthyThreshold: 2,
	})
	cp.SetRetryPolicy("backend", RetryPolicy{MaxRetries: 2, PerTryTimeout: 100 * time.Millisecond})

	var failures int
	// Prime (starts health checking), then kill the only local backend.
	bed.fireN(t, 5, 0, 10*time.Millisecond, &failures)
	bed.sched.At(500*time.Millisecond, func() {
		bed.cl.Pod("backend-1").Partition(true)
		bed.cl.Pod("backend-1").Host().ResetConns()
	})
	// After the probes mark backend-1 down, traffic must cross zones.
	bed.fireN(t, 20, time.Second, 10*time.Millisecond, &failures)
	bed.sched.RunUntil(3 * time.Second)

	localBefore := 5
	if bed.hits["backend-1"] > localBefore {
		t.Fatalf("dead local backend still hit: %v", bed.hits)
	}
	if bed.hits["backend-2"]+bed.hits["backend-3"] < 20 {
		t.Fatalf("remote zone did not absorb traffic: %v", bed.hits)
	}
	if got := bed.m.Metrics().CounterTotal("mesh_lb_cross_zone_total"); got == 0 {
		t.Fatal("no cross-zone selections recorded")
	}
	if failures != 0 {
		t.Fatalf("%d requests failed during zone failover", failures)
	}
}

func TestLocalitySingleZoneDegeneratesToPlainLB(t *testing.T) {
	// Every backend in the caller's zone: selection must return the
	// full endpoint list (no remote partition), so round-robin spreads
	// exactly as without locality.
	bed := buildZonedBed(t, map[string]string{
		"backend-1": "zone-a", "backend-2": "zone-a", "backend-3": "zone-a",
	})
	bed.m.ControlPlane().SetLocalityPolicy("backend", LocalityPolicy{Mode: LocalityFailover})
	bed.fireN(t, 21, 0, 10*time.Millisecond, nil)
	bed.sched.Run()
	for _, b := range []string{"backend-1", "backend-2", "backend-3"} {
		if bed.hits[b] != 7 {
			t.Fatalf("round-robin skewed with degenerate locality: %v", bed.hits)
		}
	}
	if got := bed.m.Metrics().CounterTotal("mesh_lb_cross_zone_total"); got != 0 {
		t.Fatalf("cross-zone counted in a single-zone cluster: %d", got)
	}
}

func TestLocalityAllZonesDownFailsOpenZoneBlind(t *testing.T) {
	bed := buildZonedBed(t, defaultZones)
	cp := bed.m.ControlPlane()
	cp.SetLocalityPolicy("backend", LocalityPolicy{Mode: LocalityFailover})
	cp.SetHealthCheck("backend", HealthCheckPolicy{
		Interval: 25 * time.Millisecond, Timeout: 20 * time.Millisecond,
		UnhealthyThreshold: 2, HealthyThreshold: 2,
	})
	bed.fireN(t, 2, 0, 10*time.Millisecond, nil)
	bed.sched.At(500*time.Millisecond, func() {
		for _, b := range []string{"backend-1", "backend-2", "backend-3"} {
			bed.cl.Pod(b).Partition(true)
		}
	})
	// With every endpoint of every zone unavailable the selection must
	// hand back the full zone-blind list for the panic machinery.
	bed.sched.At(2*time.Second, func() {
		eps := bed.cl.Service("backend").Endpoints()
		got := bed.fe.localitySelect("backend", eps)
		if len(got) != len(eps) {
			t.Errorf("all-zones-down selection narrowed to %d endpoints, want %d (zone-blind)",
				len(got), len(eps))
		}
	})
	bed.sched.RunUntil(2500 * time.Millisecond)
}

func TestLocalityCallerWithoutZoneUnaffected(t *testing.T) {
	bed := buildZonedBed(t, defaultZones)
	// The gateway pod carries no zone label: even under a strict
	// policy, its selections must stay zone-blind.
	eps := bed.cl.Service("backend").Endpoints()
	bed.m.ControlPlane().SetLocalityPolicy("backend", LocalityPolicy{Mode: LocalityStrict})
	got := bed.m.Sidecar("gateway").localitySelect("backend", eps)
	if len(got) != len(eps) {
		t.Fatalf("zoneless caller narrowed endpoints to %d, want %d", len(got), len(eps))
	}
}

func TestZonelessCallerAllZonesUnhealthyFailsOpen(t *testing.T) {
	// Regression for the PR 5 edge left untested: a caller with no zone
	// label (the gateway) while every endpoint of every zone is marked
	// unhealthy. localitySelect must return the zone-blind list and
	// pickEndpoint's fail-open must still produce a pick — never nil.
	bed := buildZonedBed(t, defaultZones)
	bed.m.ControlPlane().SetLocalityPolicy("backend", LocalityPolicy{Mode: LocalityFailover})
	gw := bed.m.Sidecar("gateway")
	eps := bed.cl.Service("backend").Endpoints()
	for _, ep := range eps {
		gw.epState(ep.Addr()).unhealthy = true
	}
	if got := gw.localitySelect("backend", eps); len(got) != len(eps) {
		t.Fatalf("zoneless caller narrowed unhealthy endpoints to %d, want %d (zone-blind)",
			len(got), len(eps))
	}
	if picked := gw.pickEndpoint("backend", eps); picked == nil {
		t.Fatal("pickEndpoint returned nil: fail-open must re-admit unhealthy endpoints")
	}
}

func TestSetLocalityPolicyValidates(t *testing.T) {
	bed := buildZonedBed(t, defaultZones)
	cp := bed.m.ControlPlane()
	for _, bad := range []LocalityPolicy{
		{Mode: "nearest"},
		{Mode: LocalityFailover, OverprovisioningFactor: -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetLocalityPolicy(%+v) accepted", bad)
				}
			}()
			cp.SetLocalityPolicy("backend", bad)
		}()
	}
}
