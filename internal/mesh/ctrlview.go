package mesh

import "meshlayer/internal/cluster"

// This file is the sidecar's read path for routing state. In instant-
// propagation mode (sc.ctrl == nil) every accessor delegates straight
// to the shared control plane — byte-identical to the pre-distribution
// behavior. With distribution enabled, accessors read the sidecar's
// own pushed snapshot instead, so a sidecar acts on possibly-stale
// endpoints and policies until the next control-plane push lands.

// ctrlState returns this sidecar's snapshotted state for service and
// whether distribution is enabled at all.
func (sc *Sidecar) ctrlState(service string) (*serviceState, bool) {
	if sc.ctrl == nil {
		return nil, false
	}
	return sc.ctrl.state(service), true
}

// discoverEndpoints returns the service's endpoints as this sidecar
// currently knows them. ok=false means the service is unknown.
func (sc *Sidecar) discoverEndpoints(service string) ([]*cluster.Pod, bool) {
	if st, dist := sc.ctrlState(service); dist {
		if st == nil {
			return nil, false
		}
		return st.Eps, true
	}
	svc := sc.mesh.cluster.Service(service)
	if svc == nil {
		return nil, false
	}
	return svc.Endpoints(), true
}

func (sc *Sidecar) routeRuleFor(service string) *RouteRule {
	if st, dist := sc.ctrlState(service); dist {
		if st == nil {
			return nil
		}
		return st.Rule
	}
	return sc.mesh.cp.RouteRuleFor(service)
}

func (sc *Sidecar) lbPolicyFor(service string) LBPolicy {
	if st, dist := sc.ctrlState(service); dist {
		if st != nil && st.LB != nil {
			return *st.LB
		}
		return LBRoundRobin
	}
	return sc.mesh.cp.LBPolicyFor(service)
}

func (sc *Sidecar) retryPolicyFor(service string) RetryPolicy {
	if st, dist := sc.ctrlState(service); dist {
		if st != nil && st.Retry != nil {
			return *st.Retry
		}
		return DefaultRetryPolicy
	}
	return sc.mesh.cp.RetryPolicyFor(service)
}

func (sc *Sidecar) breakerFor(service string) CircuitBreakerPolicy {
	if st, dist := sc.ctrlState(service); dist {
		if st != nil && st.Breaker != nil {
			return *st.Breaker
		}
		return DefaultCircuitBreaker
	}
	return sc.mesh.cp.CircuitBreakerFor(service)
}

func (sc *Sidecar) hedgePolicyFor(service string) HedgePolicy {
	if st, dist := sc.ctrlState(service); dist {
		if st != nil && st.Hedge != nil {
			return *st.Hedge
		}
		return HedgePolicy{}
	}
	return sc.mesh.cp.HedgePolicyFor(service)
}

func (sc *Sidecar) faultPolicyFor(service string) FaultPolicy {
	if st, dist := sc.ctrlState(service); dist {
		if st != nil && st.Fault != nil {
			return *st.Fault
		}
		return FaultPolicy{}
	}
	return sc.mesh.cp.FaultPolicyFor(service)
}

func (sc *Sidecar) mirrorPolicyFor(service string) MirrorPolicy {
	if st, dist := sc.ctrlState(service); dist {
		if st != nil && st.Mirror != nil {
			return *st.Mirror
		}
		return MirrorPolicy{}
	}
	return sc.mesh.cp.MirrorPolicyFor(service)
}

func (sc *Sidecar) rateLimitFor(service string) RateLimitPolicy {
	if st, dist := sc.ctrlState(service); dist {
		if st != nil && st.Rate != nil {
			return *st.Rate
		}
		return RateLimitPolicy{}
	}
	return sc.mesh.cp.RateLimitFor(service)
}

func (sc *Sidecar) admissionPolicyFor(service string) AdmissionPolicy {
	if st, dist := sc.ctrlState(service); dist {
		if st != nil && st.Admission != nil {
			return *st.Admission
		}
		return AdmissionPolicy{}
	}
	return sc.mesh.cp.AdmissionPolicyFor(service)
}

func (sc *Sidecar) healthCheckFor(service string) HealthCheckPolicy {
	if st, dist := sc.ctrlState(service); dist {
		if st != nil && st.Health != nil {
			return *st.Health
		}
		return HealthCheckPolicy{}
	}
	return sc.mesh.cp.HealthCheckFor(service)
}

func (sc *Sidecar) outlierFor(service string) OutlierPolicy {
	if st, dist := sc.ctrlState(service); dist {
		if st != nil && st.Outlier != nil {
			return *st.Outlier
		}
		return OutlierPolicy{}
	}
	return sc.mesh.cp.OutlierFor(service)
}

func (sc *Sidecar) localityFor(service string) LocalityPolicy {
	if st, dist := sc.ctrlState(service); dist {
		if st != nil && st.Locality != nil {
			return *st.Locality
		}
		return LocalityPolicy{}
	}
	return sc.mesh.cp.LocalityFor(service)
}

func (sc *Sidecar) fallbackFor(service string) FallbackPolicy {
	if st, dist := sc.ctrlState(service); dist {
		if st != nil && st.Fallback != nil {
			return *st.Fallback
		}
		return FallbackPolicy{}
	}
	return sc.mesh.cp.FallbackFor(service)
}

// authorized checks the inbound allow-list for this sidecar's own
// service against the snapshot (or the shared control plane).
func (sc *Sidecar) authorized(src string) bool {
	if st, dist := sc.ctrlState(sc.service); dist {
		if st == nil || st.Authz == nil {
			return true // permissive
		}
		return st.Authz[src]
	}
	return sc.mesh.cp.Authorized(src, sc.service)
}
