package mesh

import (
	"strings"
	"testing"
	"time"

	"meshlayer/internal/cluster"
	"meshlayer/internal/httpsim"
	"meshlayer/internal/simnet"
	"meshlayer/internal/trace"
)

// testbed: gateway -> frontend -> backend (2 replicas v1/v2).
type testbed struct {
	sched *simnet.Scheduler
	cl    *cluster.Cluster
	m     *Mesh
	gw    *Gateway
	fe    *Sidecar
	b1    *Sidecar
	b2    *Sidecar
}

// buildBed wires the testbed. backendHandler runs in both replicas; it
// receives the pod so tests can tell replicas apart.
func buildBed(t *testing.T, cfg Config, backendHandler func(pod *cluster.Pod, req *httpsim.Request, respond func(*httpsim.Response))) *testbed {
	t.Helper()
	s := simnet.NewScheduler()
	n := simnet.NewNetwork(s)
	cl := cluster.New(n)

	gwPod := cl.AddPod(cluster.PodSpec{Name: "gateway", Labels: map[string]string{"app": "gateway"}})
	fePod := cl.AddPod(cluster.PodSpec{Name: "frontend-1", Labels: map[string]string{"app": "frontend"}})
	b1Pod := cl.AddPod(cluster.PodSpec{Name: "backend-1", Labels: map[string]string{"app": "backend", "version": "v1"}})
	b2Pod := cl.AddPod(cluster.PodSpec{Name: "backend-2", Labels: map[string]string{"app": "backend", "version": "v2"}})

	cl.AddService("frontend", 9080, map[string]string{"app": "frontend"})
	cl.AddService("backend", 9080, map[string]string{"app": "backend"})

	m := New(cl, cfg)
	gw := m.NewGateway(gwPod)
	fe := m.InjectSidecar(fePod)
	b1 := m.InjectSidecar(b1Pod)
	b2 := m.InjectSidecar(b2Pod)

	// Frontend forwards to backend and echoes its response.
	fe.RegisterApp(func(req *httpsim.Request, respond func(*httpsim.Response)) {
		child := httpsim.NewRequest("GET", req.Path)
		child.Headers.Set(HeaderHost, "backend")
		child.Headers.Set(trace.HeaderRequestID, req.Headers.Get(trace.HeaderRequestID))
		child.Headers.Set(trace.HeaderSpanID, req.Headers.Get(trace.HeaderSpanID))
		child.Headers.Set(HeaderPriority, req.Headers.Get(HeaderPriority))
		fe.Call(child, func(resp *httpsim.Response, err error) {
			if err != nil {
				respond(httpsim.NewResponse(httpsim.StatusBadGateway))
				return
			}
			out := resp.Clone()
			respond(out)
		})
	})

	for _, pair := range []struct {
		sc  *Sidecar
		pod *cluster.Pod
	}{{b1, b1Pod}, {b2, b2Pod}} {
		pod := pair.pod
		pair.sc.RegisterApp(func(req *httpsim.Request, respond func(*httpsim.Response)) {
			backendHandler(pod, req, respond)
		})
	}

	return &testbed{sched: s, cl: cl, m: m, gw: gw, fe: fe, b1: b1, b2: b2}
}

func echoBackend(pod *cluster.Pod, req *httpsim.Request, respond func(*httpsim.Response)) {
	resp := httpsim.NewResponse(httpsim.StatusOK)
	resp.Headers.Set("x-backend", pod.Name())
	resp.BodyBytes = 1000
	respond(resp)
}

func extReq(path string) *httpsim.Request {
	r := httpsim.NewRequest("GET", path)
	r.Headers.Set(HeaderHost, "frontend")
	return r
}

func TestEndToEndThroughMesh(t *testing.T) {
	tb := buildBed(t, Config{}, echoBackend)
	var got *httpsim.Response
	tb.gw.Serve(extReq("/hello"), func(r *httpsim.Response, err error) {
		if err != nil {
			t.Fatal(err)
		}
		got = r
	})
	tb.sched.Run()
	if got == nil || got.Status != httpsim.StatusOK {
		t.Fatalf("response = %+v", got)
	}
	if !strings.HasPrefix(got.Headers.Get("x-backend"), "backend-") {
		t.Fatalf("backend header = %q", got.Headers.Get("x-backend"))
	}
	if tb.gw.Served() != 1 {
		t.Fatal("gateway served counter wrong")
	}
}

func TestRoundRobinSpreadsLoad(t *testing.T) {
	tb := buildBed(t, Config{}, echoBackend)
	counts := map[string]int{}
	for i := 0; i < 10; i++ {
		tb.gw.Serve(extReq("/x"), func(r *httpsim.Response, err error) {
			if err != nil {
				t.Fatal(err)
			}
			counts[r.Headers.Get("x-backend")]++
		})
		tb.sched.RunFor(100 * time.Millisecond)
	}
	tb.sched.Run()
	if counts["backend-1"] != 5 || counts["backend-2"] != 5 {
		t.Fatalf("round robin uneven: %v", counts)
	}
}

func TestHeaderRouteSelectsSubset(t *testing.T) {
	tb := buildBed(t, Config{}, echoBackend)
	tb.m.ControlPlane().SetRouteRule(RouteRule{
		Service: "backend",
		HeaderRoutes: []HeaderRoute{
			{Header: HeaderPriority, Value: PriorityHigh, Subset: SubsetRef{Key: "version", Value: "v1"}},
			{Header: HeaderPriority, Value: PriorityLow, Subset: SubsetRef{Key: "version", Value: "v2"}},
		},
	})
	tb.gw.SetClassifier(PathClassifier(map[string]string{
		"/user":  PriorityHigh,
		"/batch": PriorityLow,
	}, PriorityHigh))

	results := map[string]string{}
	for _, path := range []string{"/user/1", "/batch/job", "/user/2", "/batch/x"} {
		path := path
		tb.gw.Serve(extReq(path), func(r *httpsim.Response, err error) {
			if err != nil {
				t.Fatal(err)
			}
			results[path] = r.Headers.Get("x-backend")
		})
	}
	tb.sched.Run()
	if results["/user/1"] != "backend-1" || results["/user/2"] != "backend-1" {
		t.Fatalf("high priority not pinned to v1: %v", results)
	}
	if results["/batch/job"] != "backend-2" || results["/batch/x"] != "backend-2" {
		t.Fatalf("low priority not pinned to v2: %v", results)
	}
}

func TestDefaultSubsetRoute(t *testing.T) {
	tb := buildBed(t, Config{}, echoBackend)
	tb.m.ControlPlane().SetRouteRule(RouteRule{
		Service:       "backend",
		DefaultSubset: SubsetRef{Key: "version", Value: "v2"},
	})
	for i := 0; i < 4; i++ {
		tb.gw.Serve(extReq("/x"), func(r *httpsim.Response, err error) {
			if err != nil {
				t.Fatal(err)
			}
			if r.Headers.Get("x-backend") != "backend-2" {
				t.Fatalf("default subset ignored: %s", r.Headers.Get("x-backend"))
			}
		})
	}
	tb.sched.Run()
}

func TestRetryOn5xxSucceeds(t *testing.T) {
	fails := map[string]int{}
	tb := buildBed(t, Config{}, func(pod *cluster.Pod, req *httpsim.Request, respond func(*httpsim.Response)) {
		// backend-1 always fails; backend-2 succeeds.
		if pod.Name() == "backend-1" {
			fails[pod.Name()]++
			respond(httpsim.NewResponse(httpsim.StatusInternalServerError))
			return
		}
		echoBackend(pod, req, respond)
	})
	var got *httpsim.Response
	tb.gw.Serve(extReq("/x"), func(r *httpsim.Response, err error) {
		if err != nil {
			t.Fatal(err)
		}
		got = r
	})
	tb.sched.Run()
	if got == nil || got.Status != httpsim.StatusOK {
		t.Fatalf("retry did not rescue the request: %+v", got)
	}
	if fails["backend-1"] == 0 {
		t.Fatal("test did not exercise the failing replica")
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	attempts := 0
	tb := buildBed(t, Config{}, func(pod *cluster.Pod, req *httpsim.Request, respond func(*httpsim.Response)) {
		attempts++
		respond(httpsim.NewResponse(httpsim.StatusInternalServerError))
	})
	tb.m.ControlPlane().SetRetryPolicy("backend", RetryPolicy{MaxRetries: 1, RetryOn5xx: true})
	// Disable the gateway->frontend retry so only the backend budget is
	// exercised.
	tb.m.ControlPlane().SetRetryPolicy("frontend", RetryPolicy{})
	var got *httpsim.Response
	tb.gw.Serve(extReq("/x"), func(r *httpsim.Response, err error) { got = r })
	tb.sched.Run()
	// The final 5xx is passed through once the budget is spent; the
	// frontend echoes it upstream.
	if got == nil || got.Status != httpsim.StatusInternalServerError {
		t.Fatalf("got %+v, want 500 after budget exhaustion", got)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (original + 1 retry)", attempts)
	}
}

func TestPerTryTimeoutFires(t *testing.T) {
	responded := 0
	tb := buildBed(t, Config{}, func(pod *cluster.Pod, req *httpsim.Request, respond func(*httpsim.Response)) {
		responded++
		// Never respond: the per-try timeout must fire.
	})
	tb.m.ControlPlane().SetRetryPolicy("backend", RetryPolicy{MaxRetries: 1, PerTryTimeout: 200 * time.Millisecond})
	tb.m.ControlPlane().SetRetryPolicy("frontend", RetryPolicy{})
	var got *httpsim.Response
	tb.gw.Serve(extReq("/x"), func(r *httpsim.Response, err error) { got = r })
	tb.sched.RunUntil(5 * time.Second)
	if got == nil || got.Status != httpsim.StatusBadGateway {
		t.Fatalf("timeout not surfaced: %+v", got)
	}
	if responded != 2 {
		t.Fatalf("attempts = %d, want 2 (original + 1 retry)", responded)
	}
}

func TestCircuitBreakerEjectsFailingReplica(t *testing.T) {
	calls := map[string]int{}
	tb := buildBed(t, Config{}, func(pod *cluster.Pod, req *httpsim.Request, respond func(*httpsim.Response)) {
		calls[pod.Name()]++
		if pod.Name() == "backend-1" {
			respond(httpsim.NewResponse(httpsim.StatusInternalServerError))
			return
		}
		echoBackend(pod, req, respond)
	})
	tb.m.ControlPlane().SetCircuitBreaker("backend", CircuitBreakerPolicy{ConsecutiveFailures: 3, OpenFor: time.Hour})
	tb.m.ControlPlane().SetRetryPolicy("backend", RetryPolicy{MaxRetries: 2, RetryOn5xx: true})
	ok := 0
	for i := 0; i < 20; i++ {
		tb.gw.Serve(extReq("/x"), func(r *httpsim.Response, err error) {
			if err == nil && r.Status == httpsim.StatusOK {
				ok++
			}
		})
		tb.sched.RunFor(50 * time.Millisecond)
	}
	tb.sched.Run()
	if ok != 20 {
		t.Fatalf("ok = %d, want 20 (breaker + retry should mask failures)", ok)
	}
	// After the breaker opens, backend-1 stops receiving traffic.
	if calls["backend-1"] > 8 {
		t.Fatalf("failing replica kept receiving calls: %v", calls)
	}
}

func TestHedgingCutsTail(t *testing.T) {
	// backend-1 is pathologically slow; hedging should rescue requests
	// that land on it.
	tb := buildBed(t, Config{}, func(pod *cluster.Pod, req *httpsim.Request, respond func(*httpsim.Response)) {
		if pod.Name() == "backend-1" {
			pod.Node().Network().Scheduler().After(2*time.Second, func() {
				respond(httpsim.NewResponse(httpsim.StatusOK))
			})
			return
		}
		echoBackend(pod, req, respond)
	})
	tb.m.ControlPlane().SetHedgePolicy("backend", HedgePolicy{Delay: 100 * time.Millisecond})

	var latencies []time.Duration
	for i := 0; i < 8; i++ {
		start := tb.sched.Now()
		done := false
		tb.gw.Serve(extReq("/x"), func(r *httpsim.Response, err error) {
			if err != nil {
				t.Fatal(err)
			}
			latencies = append(latencies, tb.sched.Now()-start)
			done = true
		})
		tb.sched.RunFor(3 * time.Second)
		if !done {
			t.Fatal("request never completed")
		}
	}
	for _, l := range latencies {
		if l > time.Second {
			t.Fatalf("hedging failed to cut tail: latency %v", l)
		}
	}
}

func TestAuthzDeniesUnlistedCaller(t *testing.T) {
	tb := buildBed(t, Config{}, echoBackend)
	// Restrict backend to calls from "nobody": frontend gets 403.
	tb.m.ControlPlane().AllowCalls("nobody", "backend")
	var got *httpsim.Response
	tb.gw.Serve(extReq("/x"), func(r *httpsim.Response, err error) { got = r })
	tb.sched.Run()
	// 403 is not a 5xx: no retry; frontend echoes it.
	if got == nil || got.Status != httpsim.StatusForbidden {
		t.Fatalf("got %+v, want 403", got)
	}
	// Allow frontend: traffic flows again.
	tb.m.ControlPlane().AllowCalls("frontend", "backend")
	tb.gw.Serve(extReq("/x"), func(r *httpsim.Response, err error) { got = r })
	tb.sched.Run()
	if got.Status != httpsim.StatusOK {
		t.Fatalf("got %d after allow, want 200", got.Status)
	}
}

func TestDistributedTraceReconstructs(t *testing.T) {
	tb := buildBed(t, Config{}, echoBackend)
	tb.gw.Serve(extReq("/traced"), func(r *httpsim.Response, err error) {})
	tb.sched.Run()
	ids := tb.m.Tracer().TraceIDs()
	if len(ids) != 1 {
		t.Fatalf("traces = %v", ids)
	}
	tree := tb.m.Tracer().Tree(ids[0])
	if tree == nil {
		t.Fatal("no tree")
	}
	// gateway(root) -> gateway client span -> frontend server span ->
	// frontend client span -> backend server span.
	if tree.Depth() != 5 {
		t.Fatalf("trace depth = %d, want 5\n%s", tree.Depth(), tree.Format())
	}
	if tree.Span.Service != "ingress-gateway" {
		t.Fatalf("root = %s", tree.Span.Service)
	}
}

func TestConnClassifierSplitsPools(t *testing.T) {
	tb := buildBed(t, Config{}, echoBackend)
	tb.fe.SetConnClassifier(func(req *httpsim.Request) ConnClass {
		if req.Headers.Get(HeaderPriority) == PriorityHigh {
			return ConnClass{Name: "high", Options: transportOptions(simnet.MarkHigh)}
		}
		return ConnClass{Name: "low", Options: transportOptions(simnet.MarkLow)}
	})
	tb.gw.SetClassifier(PathClassifier(map[string]string{"/hi": PriorityHigh}, PriorityLow))
	tb.gw.Serve(extReq("/hi"), func(*httpsim.Response, error) {})
	tb.gw.Serve(extReq("/lo"), func(*httpsim.Response, error) {})
	tb.sched.Run()
	// Frontend should hold pools for both classes (to one or two
	// endpoints each depending on LB spread).
	if tb.fe.PoolSize() < 2 {
		t.Fatalf("pool size = %d, want >= 2 (split by class)", tb.fe.PoolSize())
	}
}

func TestTelemetryCountsRequests(t *testing.T) {
	tb := buildBed(t, Config{}, echoBackend)
	for i := 0; i < 5; i++ {
		tb.gw.Serve(extReq("/x"), func(*httpsim.Response, error) {})
	}
	tb.sched.Run()
	total := tb.m.Metrics().CounterTotal("mesh_requests_total")
	if total == 0 {
		t.Fatal("no telemetry recorded")
	}
	h := tb.m.Metrics().Histogram("gateway_request_duration",
		map[string]string{"service": "ingress-gateway", "direction": "inbound"})
	if h.Count() != 5 {
		t.Fatalf("gateway histogram count = %d, want 5", h.Count())
	}
}

func TestSidecarOverheadDisabled(t *testing.T) {
	tb := buildBed(t, Config{SidecarDelayMean: -1}, echoBackend)
	var lat time.Duration
	start := tb.sched.Now()
	tb.gw.Serve(extReq("/x"), func(*httpsim.Response, error) { lat = tb.sched.Now() - start })
	tb.sched.Run()
	// With proxy overhead off, latency is pure network + scheduling.
	if lat == 0 || lat > 5*time.Millisecond {
		t.Fatalf("latency = %v, want sub-5ms with no proxy overhead", lat)
	}
}

func TestUnknownServiceError(t *testing.T) {
	tb := buildBed(t, Config{}, echoBackend)
	req := httpsim.NewRequest("GET", "/x")
	req.Headers.Set(HeaderHost, "no-such-service")
	var gotErr error
	tb.fe.Call(req, func(r *httpsim.Response, err error) { gotErr = err })
	tb.sched.Run()
	if gotErr != ErrNoService {
		t.Fatalf("err = %v, want ErrNoService", gotErr)
	}
	req2 := httpsim.NewRequest("GET", "/x")
	var gotErr2 error
	tb.fe.Call(req2, func(r *httpsim.Response, err error) { gotErr2 = err })
	tb.sched.Run()
	if gotErr2 != ErrNoService {
		t.Fatalf("missing host header: err = %v", gotErr2)
	}
}

func TestLBPolicies(t *testing.T) {
	for _, policy := range []LBPolicy{LBRoundRobin, LBRandom, LBLeastRequest, LBEWMA} {
		policy := policy
		t.Run(string(policy), func(t *testing.T) {
			tb := buildBed(t, Config{Seed: 42}, echoBackend)
			tb.m.ControlPlane().SetLBPolicy("backend", policy)
			ok := 0
			for i := 0; i < 12; i++ {
				tb.gw.Serve(extReq("/x"), func(r *httpsim.Response, err error) {
					if err == nil && r.Status == httpsim.StatusOK {
						ok++
					}
				})
				tb.sched.RunFor(20 * time.Millisecond)
			}
			tb.sched.Run()
			if ok != 12 {
				t.Fatalf("policy %s: ok = %d/12", policy, ok)
			}
		})
	}
}

func TestEWMAPrefersFasterReplica(t *testing.T) {
	tb := buildBed(t, Config{}, func(pod *cluster.Pod, req *httpsim.Request, respond func(*httpsim.Response)) {
		delay := 2 * time.Millisecond
		if pod.Name() == "backend-1" {
			delay = 80 * time.Millisecond // consistently slow replica
		}
		pod.Node().Network().Scheduler().After(delay, func() {
			resp := httpsim.NewResponse(httpsim.StatusOK)
			resp.Headers.Set("x-backend", pod.Name())
			respond(resp)
		})
	})
	tb.m.ControlPlane().SetLBPolicy("backend", LBEWMA)
	counts := map[string]int{}
	for i := 0; i < 30; i++ {
		tb.gw.Serve(extReq("/x"), func(r *httpsim.Response, err error) {
			if err == nil {
				counts[r.Headers.Get("x-backend")]++
			}
		})
		tb.sched.RunFor(100 * time.Millisecond)
	}
	tb.sched.Run()
	if counts["backend-2"] <= counts["backend-1"]*2 {
		t.Fatalf("EWMA did not prefer fast replica: %v", counts)
	}
}

func TestDuplicateSidecarPanics(t *testing.T) {
	tb := buildBed(t, Config{}, echoBackend)
	defer func() {
		if recover() == nil {
			t.Fatal("double injection accepted")
		}
	}()
	tb.m.InjectSidecar(tb.cl.Pod("frontend-1"))
}

func TestControlPlaneValidation(t *testing.T) {
	tb := buildBed(t, Config{}, echoBackend)
	cp := tb.m.ControlPlane()
	v := cp.Version()
	cp.SetLBPolicy("backend", LBRandom)
	if cp.Version() == v {
		t.Fatal("version not bumped")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("bad LB policy accepted")
			}
		}()
		cp.SetLBPolicy("backend", "bogus")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("empty route rule service accepted")
			}
		}()
		cp.SetRouteRule(RouteRule{})
	}()
	cp.SetRouteRule(RouteRule{Service: "backend"})
	if cp.RouteRuleFor("backend") == nil {
		t.Fatal("rule not stored")
	}
	cp.ClearRouteRule("backend")
	if cp.RouteRuleFor("backend") != nil {
		t.Fatal("rule not cleared")
	}
}
