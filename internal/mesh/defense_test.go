package mesh

import (
	"testing"
	"time"

	"meshlayer/internal/cluster"
	"meshlayer/internal/httpsim"
)

// Tests for the self-healing defenses: active health checking,
// outlier detection (failure-rate, latency, panic threshold), retry
// budgets, backoff, and the half-open circuit breaker.

// countingBackend returns a handler that tallies application hits per
// pod and answers per the fail function (nil = always succeed).
func countingBackend(hits map[string]int, fail func(pod *cluster.Pod) bool) func(*cluster.Pod, *httpsim.Request, func(*httpsim.Response)) {
	return func(pod *cluster.Pod, req *httpsim.Request, respond func(*httpsim.Response)) {
		hits[pod.Name()]++
		if fail != nil && fail(pod) {
			respond(httpsim.NewResponse(httpsim.StatusInternalServerError))
			return
		}
		resp := httpsim.NewResponse(httpsim.StatusOK)
		resp.Headers.Set("x-backend", pod.Name())
		respond(resp)
	}
}

// fire issues one gateway request at the given virtual time and tallies
// the outcome.
func fire(tb *testbed, at time.Duration, okCount, failCount *int) {
	tb.sched.At(at, func() {
		tb.gw.Serve(extReq("/x"), func(resp *httpsim.Response, err error) {
			if err == nil && resp.Status < 500 {
				*okCount++
			} else {
				*failCount++
			}
		})
	})
}

func TestHealthCheckRemovesAndRestoresEndpoint(t *testing.T) {
	hits := map[string]int{}
	tb := buildBed(t, Config{Seed: 5}, countingBackend(hits, nil))
	cp := tb.m.ControlPlane()
	cp.SetHealthCheck("backend", HealthCheckPolicy{
		Interval: 50 * time.Millisecond, Timeout: 25 * time.Millisecond,
		UnhealthyThreshold: 1, HealthyThreshold: 2,
	})
	cp.SetRetryPolicy("backend", RetryPolicy{MaxRetries: 0, PerTryTimeout: 100 * time.Millisecond})

	var ok, fail int
	// Priming request starts the frontend's health-check loop.
	fire(tb, 0, &ok, &fail)
	// Crash backend-1 at 1s; probes should remove it within ~75ms.
	tb.sched.At(time.Second, func() { tb.cl.Pod("backend-1").Partition(true) })
	var duringB1 int
	tb.sched.At(1200*time.Millisecond, func() { duringB1 = hits["backend-1"] })
	for i := 0; i < 10; i++ {
		fire(tb, 1200*time.Millisecond+time.Duration(i)*10*time.Millisecond, &ok, &fail)
	}
	var afterB1 int
	tb.sched.At(1400*time.Millisecond, func() { afterB1 = hits["backend-1"] })
	// Heal at 1.5s; two clean probes restore it by ~1.65s.
	tb.sched.At(1500*time.Millisecond, func() { tb.cl.Pod("backend-1").Partition(false) })
	for i := 0; i < 10; i++ {
		fire(tb, 2*time.Second+time.Duration(i)*10*time.Millisecond, &ok, &fail)
	}
	tb.sched.RunUntil(3 * time.Second)

	if afterB1 != duringB1 {
		t.Fatalf("backend-1 hit %d times while marked unhealthy", afterB1-duringB1)
	}
	if fail != 0 {
		t.Fatalf("%d requests failed with health checking active", fail)
	}
	if hits["backend-1"] == afterB1 {
		t.Fatal("backend-1 never restored to rotation after heal")
	}
	if got := tb.m.Metrics().CounterTotal("mesh_health_transitions_total"); got < 2 {
		t.Fatalf("health transitions = %d, want >= 2", got)
	}
}

func TestOutlierEjectsErrorRateEndpoint(t *testing.T) {
	hits := map[string]int{}
	tb := buildBed(t, Config{Seed: 6}, countingBackend(hits, nil))
	cp := tb.m.ControlPlane()
	cp.SetRetryPolicy("backend", RetryPolicy{MaxRetries: 0})
	cp.SetCircuitBreaker("backend", CircuitBreakerPolicy{ConsecutiveFailures: 1 << 30, OpenFor: time.Hour})
	cp.SetOutlierPolicy("backend", OutlierPolicy{
		Interval: 100 * time.Millisecond, MinRequests: 3,
		FailureThreshold: 0.4, BaseEjection: time.Hour,
	})
	// backend-1's application fails every request — the sidecar (and
	// its health probes) stay healthy, only passive detection sees it.
	tb.b1.SetServerFault(ServerFault{Prob: 1, Seed: 3})

	var ok, fail int
	for i := 0; i < 60; i++ {
		fire(tb, time.Duration(i)*10*time.Millisecond, &ok, &fail)
	}
	var faultsMid uint64
	tb.sched.At(450*time.Millisecond, func() {
		faultsMid = tb.m.Metrics().CounterTotal("mesh_server_fault_injected_total")
	})
	// The outlier sweep re-arms forever; drive a bounded window.
	tb.sched.RunUntil(2 * time.Second)

	if got := tb.m.Metrics().CounterTotal("mesh_outlier_ejections_total"); got == 0 {
		t.Fatal("no outlier ejection recorded")
	}
	// The first sweep ejects backend-1, so requests from 450ms on
	// never reach it (no further fault injections)...
	faultsEnd := tb.m.Metrics().CounterTotal("mesh_server_fault_injected_total")
	if faultsMid == 0 || faultsEnd != faultsMid {
		t.Fatalf("faults mid=%d end=%d: backend-1 still in rotation after ejection", faultsMid, faultsEnd)
	}
	// ...and every external request succeeds (the gateway's
	// frontend-level retry rides over pre-ejection 502s).
	if fail != 0 || ok != 60 {
		t.Fatalf("ok=%d fail=%d", ok, fail)
	}
}

// slowAwareBackend runs each request through the pod's compute model
// so SetExecFactor shows up as latency.
func slowAwareBackend(hits map[string]int) func(*cluster.Pod, *httpsim.Request, func(*httpsim.Response)) {
	return func(pod *cluster.Pod, req *httpsim.Request, respond func(*httpsim.Response)) {
		hits[pod.Name()]++
		pod.Exec(2*time.Millisecond, func() {
			respond(httpsim.NewResponse(httpsim.StatusOK))
		})
	}
}

func TestOutlierEjectsSlowPodByLatency(t *testing.T) {
	hits := map[string]int{}
	tb := buildBed(t, Config{Seed: 7}, slowAwareBackend(hits))
	cp := tb.m.ControlPlane()
	cp.SetOutlierPolicy("backend", OutlierPolicy{
		Interval: 200 * time.Millisecond, MinRequests: 3,
		FailureThreshold: 0.99, LatencyFactor: 5, BaseEjection: time.Hour,
	})
	// backend-1 is 50x slower but still answers 200s: a gray failure
	// invisible to success-rate logic.
	tb.cl.Pod("backend-1").SetExecFactor(50)

	var ok, fail int
	for i := 0; i < 60; i++ {
		fire(tb, time.Duration(i)*10*time.Millisecond, &ok, &fail)
	}
	tb.sched.RunUntil(700 * time.Millisecond)

	if got := tb.m.Metrics().CounterTotal("mesh_outlier_ejections_total"); got == 0 {
		t.Fatal("slow pod never ejected")
	}
	before := hits["backend-1"]
	// After ejection everything goes to backend-2; run a second batch
	// to prove backend-1 stays out of rotation.
	var ok2, fail2 int
	for i := 0; i < 20; i++ {
		fire(tb, 700*time.Millisecond+time.Duration(i)*10*time.Millisecond, &ok2, &fail2)
	}
	tb.sched.RunUntil(2 * time.Second)
	if hits["backend-1"] != before {
		t.Fatalf("ejected backend-1 received %d more requests", hits["backend-1"]-before)
	}
}

func TestPanicThresholdStopsEjections(t *testing.T) {
	hits := map[string]int{}
	tb := buildBed(t, Config{Seed: 8}, countingBackend(hits, nil))
	cp := tb.m.ControlPlane()
	cp.SetRetryPolicy("backend", RetryPolicy{MaxRetries: 0})
	cp.SetCircuitBreaker("backend", CircuitBreakerPolicy{ConsecutiveFailures: 1 << 30, OpenFor: time.Hour})
	cp.SetOutlierPolicy("backend", OutlierPolicy{
		Interval: 100 * time.Millisecond, MinRequests: 3,
		FailureThreshold: 0.4, BaseEjection: time.Hour, PanicThreshold: 0.6,
	})
	// Both replicas fail: ejecting either would drop availability
	// below the 60% panic floor, so neither may be ejected.
	tb.b1.SetServerFault(ServerFault{Prob: 1, Seed: 4})
	tb.b2.SetServerFault(ServerFault{Prob: 1, Seed: 5})

	var ok, fail int
	for i := 0; i < 30; i++ {
		fire(tb, time.Duration(i)*10*time.Millisecond, &ok, &fail)
	}
	tb.sched.RunUntil(time.Second)

	if got := tb.m.Metrics().CounterTotal("mesh_outlier_ejections_total"); got != 0 {
		t.Fatalf("ejections = %d despite panic threshold", got)
	}
	if got := tb.m.Metrics().CounterTotal("mesh_outlier_panic_total"); got == 0 {
		t.Fatal("panic threshold never engaged")
	}
}

func TestRetryBudgetCapsRetries(t *testing.T) {
	run := func(ratio float64) (retries, exhausted uint64) {
		hits := map[string]int{}
		tb := buildBed(t, Config{Seed: 9}, countingBackend(hits, func(*cluster.Pod) bool { return true }))
		// Disable frontend-level retries so the backend retry count is
		// exactly 30 logical calls' worth.
		tb.m.ControlPlane().SetRetryPolicy("frontend", RetryPolicy{MaxRetries: 0})
		tb.m.ControlPlane().SetRetryPolicy("backend", RetryPolicy{
			MaxRetries: 3, RetryOn5xx: true,
			BudgetRatio: ratio, BudgetBurst: 2,
		})
		tb.m.ControlPlane().SetCircuitBreaker("backend", CircuitBreakerPolicy{ConsecutiveFailures: 1 << 30, OpenFor: time.Hour})
		var ok, fail int
		for i := 0; i < 30; i++ {
			fire(tb, time.Duration(i)*10*time.Millisecond, &ok, &fail)
		}
		tb.sched.Run()
		return tb.m.Metrics().CounterTotal("mesh_retries_total"),
			tb.m.Metrics().CounterTotal("mesh_retry_budget_exhausted_total")
	}

	unbudgeted, exhausted0 := run(0)
	if unbudgeted != 90 { // 30 calls x 3 retries
		t.Fatalf("unbudgeted retries = %d, want 90", unbudgeted)
	}
	if exhausted0 != 0 {
		t.Fatalf("budget exhaustion without a budget: %d", exhausted0)
	}
	budgeted, exhausted := run(0.1)
	// Burst 2 + 30 x 0.1 deposits = at most 5 authorized retries.
	if budgeted > 5 {
		t.Fatalf("budgeted retries = %d, want <= 5", budgeted)
	}
	if budgeted >= unbudgeted {
		t.Fatalf("budget did not reduce retries: %d vs %d", budgeted, unbudgeted)
	}
	if exhausted == 0 {
		t.Fatal("no budget exhaustion recorded")
	}
}

func TestBackoffDelaysRetries(t *testing.T) {
	run := func(base time.Duration) time.Duration {
		hits := map[string]int{}
		tb := buildBed(t, Config{Seed: 10}, countingBackend(hits, func(*cluster.Pod) bool { return true }))
		tb.m.ControlPlane().SetRetryPolicy("backend", RetryPolicy{
			MaxRetries: 3, RetryOn5xx: true,
			BackoffBase: base, BackoffMax: 8 * base,
		})
		tb.m.ControlPlane().SetCircuitBreaker("backend", CircuitBreakerPolicy{ConsecutiveFailures: 1 << 30, OpenFor: time.Hour})
		var last time.Duration
		for i := 0; i < 20; i++ {
			tb.sched.At(time.Duration(i)*5*time.Millisecond, func() {
				tb.gw.Serve(extReq("/x"), func(*httpsim.Response, error) {
					last = tb.sched.Now()
				})
			})
		}
		tb.sched.Run()
		return last
	}
	immediate := run(0)
	backed := run(10 * time.Millisecond)
	// 20 calls x 3 jittered waits each: the backoff run must finish
	// measurably later than the immediate-retry run.
	if backed < immediate+10*time.Millisecond {
		t.Fatalf("backoff run finished at %v vs immediate %v", backed, immediate)
	}
}

func TestHalfOpenTrialLimitsProbes(t *testing.T) {
	hits := map[string]int{}
	healthy := false
	tb := buildBed(t, Config{Seed: 11}, countingBackend(hits, func(p *cluster.Pod) bool {
		return p.Name() == "backend-1" && !healthy
	}))
	cp := tb.m.ControlPlane()
	cp.SetRetryPolicy("backend", RetryPolicy{MaxRetries: 0})
	cp.SetCircuitBreaker("backend", CircuitBreakerPolicy{ConsecutiveFailures: 2, OpenFor: 200 * time.Millisecond})

	var ok, fail int
	// Phase 1 (0..1s): backend-1 always fails. After the breaker
	// opens, each OpenFor window admits exactly one half-open trial.
	for i := 0; i < 100; i++ {
		fire(tb, time.Duration(i)*10*time.Millisecond, &ok, &fail)
	}
	var phase1 int
	tb.sched.At(1050*time.Millisecond, func() {
		phase1 = hits["backend-1"]
		healthy = true
	})
	// Phase 2 (1.1s..1.6s): backend-1 is healthy; the next trial closes
	// the breaker and it rejoins rotation.
	for i := 0; i < 50; i++ {
		fire(tb, 1100*time.Millisecond+time.Duration(i)*10*time.Millisecond, &ok, &fail)
	}
	tb.sched.Run()

	// Breaker opens after 2 failures, then ~4 open windows fit in the
	// remaining second: 1 trial each. Without half-open the old
	// behaviour re-admitted backend-1 fully (2 hits per window).
	if phase1 < 3 || phase1 > 8 {
		t.Fatalf("backend-1 hits while failing = %d, want one trial per open window", phase1)
	}
	if hits["backend-1"]-phase1 < 10 {
		t.Fatalf("backend-1 hits after recovery = %d, breaker never closed", hits["backend-1"]-phase1)
	}
}
