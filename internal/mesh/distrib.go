package mesh

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"meshlayer/internal/cluster"
	"meshlayer/internal/ctrlplane"
	"meshlayer/internal/httpsim"
	"meshlayer/internal/simnet"
	"meshlayer/internal/transport"
)

// HeaderCtrl and HeaderFed live in headers.go, the header registry.

// CtrlPlanePod names the pod hosting the distributing control plane.
// Federated mode runs one per region, named CtrlPlanePod + "-" + region.
const CtrlPlanePod = "mesh-ctrlplane"

// FedPort is the regional control planes' summary-exchange listener.
const FedPort = 15010

// serviceState is one service's routing state as distributed to
// sidecars: the endpoint list plus whichever policies the operator has
// set (nil = unset, default semantics apply). It is the Data payload
// of a ctrlplane.Resource; sidecars route on their snapshotted copy.
type serviceState struct {
	Eps []*cluster.Pod
	// Remote summarizes per-region endpoint counts learned from peer
	// control planes (federated mode): the caller's ladder can spill to
	// a region it holds no concrete endpoints for, via the east-west
	// gateway. Nil outside federated mode. Entries follow region
	// creation order and reflect the last summary received — a WAN
	// partition freezes them (honest split-brain staleness).
	Remote    []RemoteEndpoints
	Rule      *RouteRule
	LB        *LBPolicy
	Retry     *RetryPolicy
	Breaker   *CircuitBreakerPolicy
	Hedge     *HedgePolicy
	Fault     *FaultPolicy
	Mirror    *MirrorPolicy
	Rate      *RateLimitPolicy
	Admission *AdmissionPolicy
	Health    *HealthCheckPolicy
	Outlier   *OutlierPolicy
	Locality  *LocalityPolicy
	Fallback  *FallbackPolicy
	// Authz is the allowed-source set; nil = permissive mode.
	Authz map[string]bool
}

// wireBytes estimates the encoded size (protobuf-ish costs).
func (st *serviceState) wireBytes() int {
	n := 48 + 24*len(st.Eps) + 16*len(st.Authz) + 16*len(st.Remote)
	for _, set := range []bool{
		st.LB != nil, st.Retry != nil, st.Breaker != nil, st.Hedge != nil,
		st.Fault != nil, st.Mirror != nil, st.Rate != nil, st.Admission != nil,
		st.Health != nil, st.Outlier != nil, st.Locality != nil, st.Fallback != nil,
	} {
		if set {
			n += 40
		}
	}
	if st.Rule != nil {
		n += 32 + 24*(len(st.Rule.HeaderRoutes)+len(st.Rule.Weights))
	}
	return n
}

// DistributionConfig parameterizes EnableDistribution.
type DistributionConfig struct {
	// Debounce batches changes staged within the window into one push
	// (default 100ms).
	Debounce time.Duration
	// FullState forces state-of-the-world pushes instead of deltas.
	FullState bool
	// PushTimeout gives up on an unacknowledged push and schedules a
	// resync (default 2s).
	PushTimeout time.Duration
	// ResyncDelay is the backoff before re-pushing after a NACK or a
	// lost connection (default 500ms).
	ResyncDelay time.Duration
	// ResyncMax, ResyncJitter, MaxInflightPushes, MaxConcurrentResyncs,
	// and ResyncLease are the control-plane survivability knobs, passed
	// through to ctrlplane.Config: exponential resync backoff with
	// deterministic per-subscriber jitter, a cap on pushes concurrently
	// in the transport, and an admission window (with slot lease) on
	// concurrent full resyncs. Zero values keep the classic behavior.
	ResyncMax            time.Duration
	ResyncJitter         float64
	MaxInflightPushes    int
	MaxConcurrentResyncs int
	ResyncLease          time.Duration
	// Link overrides the control-plane pod's uplink (rate, delay). The
	// zero value uses the cluster default — at 10k subscribers the CP
	// egress link is the resource resync storms contend for, so E21
	// provisions it explicitly.
	Link simnet.LinkConfig
	// Zone places the control-plane pod ("" = the root bridge). Ignored
	// in PerRegion mode, where each control-plane pod sits on its
	// region's spine.
	Zone string
	// PerRegion runs one control-plane instance per cluster region.
	// Each distributes only its own region's endpoints to local
	// sidecars, plus gateway-summarized remote entries exchanged with
	// peer control planes over the simulated WAN — so a WAN partition
	// yields split-brain staleness instead of magically-global state.
	// Requires at least one region.
	PerRegion bool
	// GateReadiness withholds a pod from distributed endpoint lists
	// until its sidecar has acknowledged a current snapshot: a
	// restarted or scaled-up pod is not routable on stale config. Off
	// by default (pre-federation behavior).
	GateReadiness bool
}

// distributor bridges the generic ctrlplane.Server to the mesh: it
// builds per-service resources from the control-plane maps plus the
// cluster's discovery state, and ships updates to each sidecar as
// simulated HTTP from the control-plane pod — so propagation delay,
// loss, and partitions are real network effects, not parameters.
type distributor struct {
	cp          *ControlPlane
	pod         *cluster.Pod
	srv         *ctrlplane.Server
	pushTimeout time.Duration
	resyncDelay time.Duration
	clients     map[string]*httpsim.Client
	// pending carries decoded updates to the receiving sidecar; the
	// wire request references them by push id (the simulated body is
	// size-only).
	pending map[uint64]*ctrlplane.Update
	nextID  uint64
	// lastEps dedups topology notifications per service.
	lastEps map[string][]*cluster.Pod

	// region scopes this instance in federated mode ("" = global): it
	// distributes only local endpoints plus summarized remote entries.
	region string
	fed    *federation
	// summary is the learned remote capacity table (federated mode).
	summary *ewSummaryTable
	// fedClients dials peer control planes, keyed by region.
	fedClients map[string]*httpsim.Client
	// lastAdv is the local capacity last advertised to peers; peerDirty
	// and peerInflight track which peers still need the current counts.
	lastAdv      map[string]int
	peerDirty    map[string]bool
	peerInflight map[string]bool

	// gate withholds pods from endpoint lists until their sidecar acks
	// a current snapshot; gated holds the pods currently withheld and
	// lastReady the readiness seen at the previous topology scan.
	gate      bool
	gated     map[string]bool
	lastReady map[string]bool
}

// federation ties the per-region distributors together: shared message
// ids for control-plane-to-control-plane summary pushes and the region
// order used for deterministic iteration.
type federation struct {
	dists    []*distributor
	byRegion map[string]*distributor
	// pending carries decoded summary messages to the receiving control
	// plane, referenced by message id (wire bodies are size-only).
	pending map[uint64]*fedMsg
	nextID  uint64
}

// fedMsg is one summarized capacity advertisement between regions.
type fedMsg struct {
	from   string
	counts map[string]int
}

// EnableDistribution switches the control plane from instantaneous
// shared state to simulated xDS-style distribution: a control-plane
// pod joins the cluster, every sidecar subscribes, and configuration
// or discovery changes reach sidecars only via debounced delta pushes
// over the simulated network. Call after the application is built and
// before the workload starts. Existing sidecars bootstrap their
// snapshots synchronously (a proxy blocks on its initial xDS fetch);
// everything later is pushed.
func (cp *ControlPlane) EnableDistribution(cfg DistributionConfig) {
	if cp.dist != nil || cp.fed != nil {
		panic("mesh: distribution already enabled")
	}
	m := cp.mesh
	if cfg.PushTimeout <= 0 {
		cfg.PushTimeout = 2 * time.Second
	}
	if cfg.ResyncDelay <= 0 {
		cfg.ResyncDelay = 500 * time.Millisecond
	}
	if !cfg.PerRegion {
		d := newDistributor(cp, cfg, "")
		cp.dist = d
		d.start(m.Sidecars())
		m.cluster.SetTopologyHook(d.topologyChanged)
		d.seedReadiness()
		return
	}

	// Federated mode: one control plane per region, each scoped to its
	// region's pods and exchanging capacity summaries with peers over
	// the simulated WAN.
	regions := m.cluster.Regions()
	if len(regions) == 0 {
		panic("mesh: PerRegion distribution requires at least one region")
	}
	fed := &federation{
		byRegion: make(map[string]*distributor),
		pending:  make(map[uint64]*fedMsg),
	}
	cp.fed = fed
	for _, r := range regions {
		d := newDistributor(cp, cfg, r)
		fed.dists = append(fed.dists, d)
		fed.byRegion[r] = d
	}
	// Bootstrap the summary tables directly — federation peering, like
	// the gateway addresses, is static configuration; only subsequent
	// changes travel the WAN.
	for _, d := range fed.dists {
		counts := d.localCounts()
		d.lastAdv = counts
		for _, peer := range fed.dists {
			if peer != d {
				peer.summary.apply(d.region, counts)
			}
		}
	}
	for _, d := range fed.dists {
		d.start(nil)
	}
	// Sidecars register with their own region's control plane.
	for _, sc := range m.Sidecars() {
		cp.distributorFor(sc.pod).register(sc)
	}
	m.cluster.SetTopologyHook(func() {
		for _, d := range fed.dists {
			d.topologyChanged()
		}
	})
	for _, d := range fed.dists {
		d.seedReadiness()
	}
}

// newDistributor builds one distribution instance: its control-plane
// pod (on the region's spine in federated mode), the ctrlplane server,
// and — in federated mode — the WAN summary-exchange listener.
func newDistributor(cp *ControlPlane, cfg DistributionConfig, region string) *distributor {
	m := cp.mesh
	name, zone := CtrlPlanePod, cfg.Zone
	if region != "" {
		name, zone = CtrlPlanePod+"-"+region, ""
	}
	pod := m.cluster.AddPod(cluster.PodSpec{
		Name:   name,
		Labels: map[string]string{"app": name},
		Zone:   zone,
		Region: region,
		Link:   cfg.Link,
	})
	d := &distributor{
		cp:          cp,
		pod:         pod,
		pushTimeout: cfg.PushTimeout,
		resyncDelay: cfg.ResyncDelay,
		clients:     make(map[string]*httpsim.Client),
		pending:     make(map[uint64]*ctrlplane.Update),
		lastEps:     make(map[string][]*cluster.Pod),
		region:      region,
		gate:        cfg.GateReadiness,
		gated:       make(map[string]bool),
		lastReady:   make(map[string]bool),
	}
	d.srv = ctrlplane.NewServer(ctrlplane.Config{
		Sched:                m.sched,
		Transport:            d,
		Metrics:              m.metrics,
		Debounce:             cfg.Debounce,
		FullState:            cfg.FullState,
		ResyncDelay:          cfg.ResyncDelay,
		ResyncMax:            cfg.ResyncMax,
		ResyncJitter:         cfg.ResyncJitter,
		MaxInflightPushes:    cfg.MaxInflightPushes,
		MaxConcurrentResyncs: cfg.MaxConcurrentResyncs,
		ResyncLease:          cfg.ResyncLease,
		OnSynced:             d.subscriberSynced,
	})
	if region != "" {
		d.fed = cp.fed
		d.summary = newEWSummaryTable()
		d.fedClients = make(map[string]*httpsim.Client)
		d.lastAdv = make(map[string]int)
		d.peerDirty = make(map[string]bool)
		d.peerInflight = make(map[string]bool)
		if _, err := httpsim.NewServer(pod.Host(), FedPort, d.handleFed); err != nil {
			panic(err)
		}
	}
	return d
}

// start stages every service resource and registers the given sidecars.
func (d *distributor) start(sidecars []*Sidecar) {
	for _, name := range d.serviceNames() {
		d.refreshService(name)
	}
	for _, sc := range sidecars {
		d.register(sc)
	}
}

// seedReadiness records current pod readiness so the first topology
// scan only gates actual flips, not pre-existing pods.
func (d *distributor) seedReadiness() {
	if !d.gate {
		return
	}
	for _, p := range d.cp.mesh.cluster.Pods() {
		if d.region != "" && p.Region() != d.region {
			continue
		}
		d.lastReady[p.Name()] = p.Ready()
	}
}

// distributorFor returns the distribution instance responsible for a
// pod: the region's control plane in federated mode, the single global
// one otherwise (nil when distribution is disabled).
func (cp *ControlPlane) distributorFor(pod *cluster.Pod) *distributor {
	if cp.fed != nil {
		d := cp.fed.byRegion[pod.Region()]
		if d == nil {
			panic("mesh: pod " + pod.Name() + " is outside every federated region")
		}
		return d
	}
	return cp.dist
}

// distributors returns every distribution instance in region order
// (one entry in single-control-plane mode, none when disabled).
func (cp *ControlPlane) distributors() []*distributor {
	if cp.fed != nil {
		return cp.fed.dists
	}
	if cp.dist != nil {
		return []*distributor{cp.dist}
	}
	return nil
}

// Distribution returns the distribution server for stats and staleness
// inspection, or nil in instant-propagation or federated mode (use
// Distributions there).
func (cp *ControlPlane) Distribution() *ctrlplane.Server {
	if cp.dist == nil {
		return nil
	}
	return cp.dist.srv
}

// Distributions returns every distribution server in region order: one
// per region in federated mode, a single server otherwise, nil when
// distribution is disabled.
func (cp *ControlPlane) Distributions() []*ctrlplane.Server {
	ds := cp.distributors()
	out := make([]*ctrlplane.Server, 0, len(ds))
	for _, d := range ds {
		out = append(out, d.srv)
	}
	return out
}

// serviceNames returns every name that needs a resource: cluster
// services plus policy-only names, sorted.
func (d *distributor) serviceNames() []string {
	seen := make(map[string]bool)
	for _, svc := range d.cp.mesh.cluster.Services() {
		seen[svc.Name()] = true
	}
	cp := d.cp
	for _, name := range policyKeys(cp) {
		seen[name] = true
	}
	names := make([]string, 0, len(seen))
	for name := range seen {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func policyKeys(cp *ControlPlane) []string {
	var names []string
	for name := range cp.rules {
		names = append(names, name)
	}
	for name := range cp.lb {
		names = append(names, name)
	}
	for name := range cp.retry {
		names = append(names, name)
	}
	for name := range cp.breaker {
		names = append(names, name)
	}
	for name := range cp.hedge {
		names = append(names, name)
	}
	for name := range cp.authz {
		names = append(names, name)
	}
	for name := range cp.fault {
		names = append(names, name)
	}
	for name := range cp.mirror {
		names = append(names, name)
	}
	for name := range cp.rate {
		names = append(names, name)
	}
	for name := range cp.admission {
		names = append(names, name)
	}
	for name := range cp.health {
		names = append(names, name)
	}
	for name := range cp.outlier {
		names = append(names, name)
	}
	for name := range cp.locality {
		names = append(names, name)
	}
	for name := range cp.fallback {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// register subscribes a sidecar and installs its bootstrapped agent.
func (d *distributor) register(sc *Sidecar) {
	agent := &sidecarAgent{snap: ctrlplane.NewSnapshot(), dist: d}
	agent.applyUpdate(d.srv.Subscribe(sc.pod.Name()))
	//meshvet:allow ctlwrite registration installs the snapshot the push path maintains
	sc.ctrl = agent
	// The bootstrap fetch is synchronous, so a pod gated at AddPod time
	// becomes routable the moment its sidecar comes up synced.
	d.subscriberSynced(sc.pod.Name())
}

// reregister re-subscribes a restarted pod's sidecar. With the
// control plane up, the fresh proxy process bootstraps a new snapshot
// synchronously; with it down, the proxy comes up on the sidecar's
// last-good snapshot (static stability) and full-resyncs after
// recovery.
func (d *distributor) reregister(sc *Sidecar) {
	u := d.srv.Subscribe(sc.pod.Name())
	if u == nil {
		return // control plane down: keep routing on the last-good snapshot
	}
	agent := &sidecarAgent{snap: ctrlplane.NewSnapshot(), dist: d}
	agent.applyUpdate(u)
	//meshvet:allow ctlwrite re-registration installs the fresh bootstrap snapshot
	sc.ctrl = agent
	d.subscriberSynced(sc.pod.Name())
}

// crash models control-plane process death: the pod partitions from
// the network, its connections die, and the server drops all volatile
// push state. Decoded updates pending delivery die with the process —
// a sidecar answering a crashed server's push gets a 404 either way.
func (d *distributor) crash() {
	d.pod.Partition(true)
	d.pod.Host().ResetConns()
	d.clients = make(map[string]*httpsim.Client)
	d.pending = make(map[uint64]*ctrlplane.Update)
	d.srv.Crash()
}

// recover rejoins the pod to the network and restarts the server into
// a new epoch (every subscriber full-resyncs).
func (d *distributor) recover() {
	d.pod.Partition(false)
	d.srv.Recover()
}

// subscriberSynced lifts the config-sync readiness gate once the pod's
// sidecar has acknowledged the current snapshot (ctrlplane.OnSynced).
func (d *distributor) subscriberSynced(name string) {
	if !d.gated[name] || !d.srv.Current(name) {
		return
	}
	delete(d.gated, name)
	d.topologyChanged() // the pod just became routable
}

// refreshService rebuilds one service's resource from the control
// plane's authoritative maps + live discovery and stages it for push.
func (d *distributor) refreshService(service string) {
	if service == "" {
		return
	}
	st := d.buildState(service)
	d.lastEps[service] = st.Eps
	d.srv.SetResource(service, st, st.wireBytes())
}

// topologyChanged reacts to discovery churn (pod added, readiness
// flip): any service whose routable endpoint list changed is
// re-staged. In federated mode, changed local capacity is also
// advertised to peer control planes.
func (d *distributor) topologyChanged() {
	if d.gate {
		d.updateGates()
	}
	for _, svc := range d.cp.mesh.cluster.Services() {
		eps := d.routableEps(svc)
		if epsEqual(d.lastEps[svc.Name()], eps) {
			continue
		}
		d.refreshService(svc.Name())
	}
	if d.region != "" {
		d.sendSummaries()
	}
}

// updateGates scans for pods newly flipped to ready whose sidecar has
// not acknowledged a current snapshot, and gates them: a restarting
// pod is not routable on stale config. Unready pods leave the gate set
// (readiness excludes them anyway).
func (d *distributor) updateGates() {
	for _, p := range d.cp.mesh.cluster.Pods() {
		if d.region != "" && p.Region() != d.region {
			continue
		}
		ready := p.Ready()
		was, seen := d.lastReady[p.Name()]
		d.lastReady[p.Name()] = ready
		if !ready {
			delete(d.gated, p.Name())
			continue
		}
		if (!seen || !was) && !d.srv.Current(p.Name()) {
			d.gated[p.Name()] = true
		}
	}
}

func epsEqual(a, b []*cluster.Pod) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// routableEps narrows a service's ready endpoints to the ones this
// instance distributes: its own region's pods in federated mode
// (east-west gateway services excepted — their cross-region addresses
// are static federation config), minus any config-sync-gated pods.
func (d *distributor) routableEps(svc *cluster.Service) []*cluster.Pod {
	eps := svc.Endpoints()
	if d.region == "" && len(d.gated) == 0 {
		return eps
	}
	regional := d.region != "" && !isEWService(svc.Name())
	out := eps[:0:0]
	for _, p := range eps {
		if regional && p.Region() != d.region {
			continue
		}
		if d.gated[p.Name()] {
			continue
		}
		out = append(out, p)
	}
	return out
}

// buildState snapshots the operator-intent maps for one service.
func (d *distributor) buildState(service string) *serviceState {
	cp := d.cp
	st := &serviceState{}
	if svc := cp.mesh.cluster.Service(service); svc != nil {
		st.Eps = d.routableEps(svc)
		if d.region != "" && !isEWService(service) {
			st.Remote = d.summary.remoteFor(service, cp.mesh.cluster.Regions())
		}
	}
	st.Rule = cp.rules[service]
	if p, ok := cp.lb[service]; ok {
		st.LB = &p
	}
	if p, ok := cp.retry[service]; ok {
		st.Retry = &p
	}
	if p, ok := cp.breaker[service]; ok {
		st.Breaker = &p
	}
	if p, ok := cp.hedge[service]; ok {
		st.Hedge = &p
	}
	if p, ok := cp.fault[service]; ok {
		st.Fault = &p
	}
	if p, ok := cp.mirror[service]; ok {
		st.Mirror = &p
	}
	if p, ok := cp.rate[service]; ok {
		st.Rate = &p
	}
	if p, ok := cp.admission[service]; ok {
		st.Admission = &p
	}
	if p, ok := cp.health[service]; ok {
		st.Health = &p
	}
	if p, ok := cp.outlier[service]; ok {
		st.Outlier = &p
	}
	if p, ok := cp.locality[service]; ok {
		st.Locality = &p
	}
	if p, ok := cp.fallback[service]; ok {
		st.Fallback = &p
	}
	if set, ok := cp.authz[service]; ok {
		cpy := make(map[string]bool, len(set))
		for src, v := range set {
			cpy[src] = v
		}
		st.Authz = cpy
	}
	return st
}

// Push implements ctrlplane.Transport: the update travels as one
// simulated HTTP request from the control-plane pod to the sidecar's
// inbound port, sized like the encoded update. ACK latency — and so
// per-sidecar propagation delay — emerges from the network topology.
func (d *distributor) Push(sub string, u *ctrlplane.Update, done func(bool, error)) {
	m := d.cp.mesh
	sc := m.sidecars[sub]
	if sc == nil {
		done(false, fmt.Errorf("ctrlplane: unknown subscriber %q", sub))
		return
	}
	d.nextID++
	id := d.nextID
	d.pending[id] = u
	req := httpsim.NewRequest("POST", "/ctrlplane/push")
	req.Headers.Set(HeaderCtrl, strconv.FormatUint(id, 10))
	req.Headers.Set(HeaderSource, CtrlPlanePod)
	req.BodyBytes = u.WireBytes
	cl := d.clientFor(sub, sc.pod.Addr())
	settled := false
	timer := m.sched.After(d.pushTimeout, func() {
		if settled {
			return
		}
		settled = true
		delete(d.pending, id)
		// Condemn the connection so the resync re-dials instead of
		// waiting out RTO backoff to a possibly-partitioned peer.
		cl.Conn().Abort()
		delete(d.clients, sub)
		done(false, ctrlplane.ErrPushTimeout)
	})
	cl.Do(req, func(resp *httpsim.Response, err error) {
		if settled {
			return
		}
		settled = true
		timer.Cancel()
		delete(d.pending, id)
		if err != nil {
			delete(d.clients, sub)
			done(false, err)
			return
		}
		done(resp.Status == httpsim.StatusOK, nil)
	})
}

func (d *distributor) clientFor(sub string, addr simnet.Addr) *httpsim.Client {
	cl := d.clients[sub]
	if cl == nil || cl.Closed() {
		cl = httpsim.NewClient(d.pod.Host(), addr, InboundPort, transport.Options{CC: "reno"})
		d.clients[sub] = cl
	}
	return cl
}

// localCounts summarizes this region's routable capacity per service —
// what peers advertise to their sidecars as Remote entries. East-west
// gateway services are excluded (static federation config, never
// summarized).
func (d *distributor) localCounts() map[string]int {
	out := make(map[string]int)
	for _, svc := range d.cp.mesh.cluster.Services() {
		if isEWService(svc.Name()) {
			continue
		}
		if n := len(d.routableEps(svc)); n > 0 {
			out[svc.Name()] = n
		}
	}
	return out
}

// sendSummaries advertises local capacity to every peer control plane
// whose view is behind. A peer that cannot be reached stays dirty and
// is retried after the resync delay — so across a WAN partition its
// table simply freezes at the last delivered summary.
func (d *distributor) sendSummaries() {
	counts := d.localCounts()
	if !countsEqual(d.lastAdv, counts) {
		d.lastAdv = counts
		for _, peer := range d.fed.dists {
			if peer != d {
				d.peerDirty[peer.region] = true
			}
		}
	}
	for _, peer := range d.fed.dists {
		if peer != d {
			d.shipSummary(peer.region)
		}
	}
}

func countsEqual(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// shipSummary sends the current advertisement to one peer region as a
// simulated HTTP request over the WAN, with the same pending-map
// indirection the sidecar push path uses.
func (d *distributor) shipSummary(peer string) {
	if d.peerInflight[peer] || !d.peerDirty[peer] {
		return
	}
	d.peerInflight[peer] = true
	d.peerDirty[peer] = false
	counts := make(map[string]int, len(d.lastAdv))
	for k, v := range d.lastAdv {
		counts[k] = v
	}
	fed := d.fed
	fed.nextID++
	id := fed.nextID
	fed.pending[id] = &fedMsg{from: d.region, counts: counts}
	req := httpsim.NewRequest("POST", "/ctrlplane/summary")
	req.Headers.Set(HeaderFed, strconv.FormatUint(id, 10))
	req.Headers.Set(HeaderSource, d.pod.Name())
	req.BodyBytes = 32 + 24*len(counts)
	m := d.cp.mesh
	cl := d.fedClientFor(peer)
	settled := false
	timer := m.sched.After(d.pushTimeout, func() {
		if settled {
			return
		}
		settled = true
		delete(fed.pending, id)
		cl.Conn().Abort()
		delete(d.fedClients, peer)
		d.summaryFailed(peer)
	})
	cl.Do(req, func(resp *httpsim.Response, err error) {
		if settled {
			return
		}
		settled = true
		timer.Cancel()
		delete(fed.pending, id)
		if err != nil || resp.Status != httpsim.StatusOK {
			if err != nil {
				delete(d.fedClients, peer)
			}
			d.summaryFailed(peer)
			return
		}
		d.peerInflight[peer] = false
		if d.peerDirty[peer] { // capacity moved again while in flight
			d.shipSummary(peer)
		}
	})
}

// summaryFailed re-arms delivery to a peer after the resync backoff.
func (d *distributor) summaryFailed(peer string) {
	d.peerInflight[peer] = false
	d.peerDirty[peer] = true
	d.cp.mesh.sched.After(d.resyncDelay, func() { d.shipSummary(peer) })
}

func (d *distributor) fedClientFor(peer string) *httpsim.Client {
	cl := d.fedClients[peer]
	if cl == nil || cl.Closed() {
		cl = httpsim.NewClient(d.pod.Host(), d.fed.byRegion[peer].pod.Addr(), FedPort, transport.Options{CC: "reno"})
		d.fedClients[peer] = cl
	}
	return cl
}

// handleFed applies one peer capacity summary to this control plane's
// table and re-stages any service whose remote view changed. 404 drops
// a message the sender has already timed out.
func (d *distributor) handleFed(_ httpsim.Ctx, req *httpsim.Request, respond func(*httpsim.Response)) {
	id, err := strconv.ParseUint(req.Headers.Get(HeaderFed), 10, 64)
	if err != nil {
		respond(httpsim.NewResponse(httpsim.StatusNotFound))
		return
	}
	msg := d.fed.pending[id]
	if msg == nil {
		respond(httpsim.NewResponse(httpsim.StatusNotFound))
		return
	}
	for _, service := range d.summary.apply(msg.from, msg.counts) {
		d.refreshService(service)
	}
	respond(httpsim.NewResponse(httpsim.StatusOK))
}

// sidecarAgent is the sidecar-local xDS client: the snapshot of
// distributed routing state this sidecar routes on. All mutation goes
// through applyUpdate — the push path; meshvet's ctlwrite analyzer
// enforces that nothing else writes it.
type sidecarAgent struct {
	snap *ctrlplane.Snapshot
	// dist is the distribution instance this sidecar subscribes to —
	// its own region's control plane in federated mode.
	dist *distributor
}

// applyUpdate installs one push; false = NACK (delta base mismatch).
func (a *sidecarAgent) applyUpdate(u *ctrlplane.Update) bool { return a.snap.Apply(u) }

// state returns the snapshotted routing state for service, or nil when
// this sidecar has never been told about it.
func (a *sidecarAgent) state(service string) *serviceState {
	if v, ok := a.snap.Resources[service]; ok {
		return v.(*serviceState)
	}
	return nil
}

// handleCtrlPush applies one control-plane push to this sidecar's
// snapshot: 200 ACKs, 409 NACKs (delta base mismatch), 404 drops a
// push the server has already timed out.
func (sc *Sidecar) handleCtrlPush(pushID string, respond func(*httpsim.Response)) {
	id, err := strconv.ParseUint(pushID, 10, 64)
	if err != nil || sc.ctrl == nil || sc.ctrl.dist == nil {
		respond(httpsim.NewResponse(httpsim.StatusNotFound))
		return
	}
	d := sc.ctrl.dist
	u := d.pending[id]
	if u == nil {
		// The server gave up on this push; a late apply would desync
		// the version bookkeeping, so drop it.
		respond(httpsim.NewResponse(httpsim.StatusNotFound))
		return
	}
	if !sc.ctrl.applyUpdate(u) {
		respond(httpsim.NewResponse(httpsim.StatusConflict))
		return
	}
	respond(httpsim.NewResponse(httpsim.StatusOK))
}
