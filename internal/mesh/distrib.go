package mesh

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"meshlayer/internal/cluster"
	"meshlayer/internal/ctrlplane"
	"meshlayer/internal/httpsim"
	"meshlayer/internal/simnet"
	"meshlayer/internal/transport"
)

// HeaderCtrl marks a control-plane push request; its value is the push
// id the receiving sidecar uses to fetch the decoded update.
const HeaderCtrl = "x-mesh-ctrl"

// CtrlPlanePod names the pod hosting the distributing control plane.
const CtrlPlanePod = "mesh-ctrlplane"

// serviceState is one service's routing state as distributed to
// sidecars: the endpoint list plus whichever policies the operator has
// set (nil = unset, default semantics apply). It is the Data payload
// of a ctrlplane.Resource; sidecars route on their snapshotted copy.
type serviceState struct {
	Eps       []*cluster.Pod
	Rule      *RouteRule
	LB        *LBPolicy
	Retry     *RetryPolicy
	Breaker   *CircuitBreakerPolicy
	Hedge     *HedgePolicy
	Fault     *FaultPolicy
	Mirror    *MirrorPolicy
	Rate      *RateLimitPolicy
	Admission *AdmissionPolicy
	Health    *HealthCheckPolicy
	Outlier   *OutlierPolicy
	Locality  *LocalityPolicy
	Fallback  *FallbackPolicy
	// Authz is the allowed-source set; nil = permissive mode.
	Authz map[string]bool
}

// wireBytes estimates the encoded size (protobuf-ish costs).
func (st *serviceState) wireBytes() int {
	n := 48 + 24*len(st.Eps) + 16*len(st.Authz)
	for _, set := range []bool{
		st.LB != nil, st.Retry != nil, st.Breaker != nil, st.Hedge != nil,
		st.Fault != nil, st.Mirror != nil, st.Rate != nil, st.Admission != nil,
		st.Health != nil, st.Outlier != nil, st.Locality != nil, st.Fallback != nil,
	} {
		if set {
			n += 40
		}
	}
	if st.Rule != nil {
		n += 32 + 24*(len(st.Rule.HeaderRoutes)+len(st.Rule.Weights))
	}
	return n
}

// DistributionConfig parameterizes EnableDistribution.
type DistributionConfig struct {
	// Debounce batches changes staged within the window into one push
	// (default 100ms).
	Debounce time.Duration
	// FullState forces state-of-the-world pushes instead of deltas.
	FullState bool
	// PushTimeout gives up on an unacknowledged push and schedules a
	// resync (default 2s).
	PushTimeout time.Duration
	// ResyncDelay is the backoff before re-pushing after a NACK or a
	// lost connection (default 500ms).
	ResyncDelay time.Duration
	// Zone places the control-plane pod ("" = the root bridge).
	Zone string
}

// distributor bridges the generic ctrlplane.Server to the mesh: it
// builds per-service resources from the control-plane maps plus the
// cluster's discovery state, and ships updates to each sidecar as
// simulated HTTP from the control-plane pod — so propagation delay,
// loss, and partitions are real network effects, not parameters.
type distributor struct {
	cp          *ControlPlane
	pod         *cluster.Pod
	srv         *ctrlplane.Server
	pushTimeout time.Duration
	clients     map[string]*httpsim.Client
	// pending carries decoded updates to the receiving sidecar; the
	// wire request references them by push id (the simulated body is
	// size-only).
	pending map[uint64]*ctrlplane.Update
	nextID  uint64
	// lastEps dedups topology notifications per service.
	lastEps map[string][]*cluster.Pod
}

// EnableDistribution switches the control plane from instantaneous
// shared state to simulated xDS-style distribution: a control-plane
// pod joins the cluster, every sidecar subscribes, and configuration
// or discovery changes reach sidecars only via debounced delta pushes
// over the simulated network. Call after the application is built and
// before the workload starts. Existing sidecars bootstrap their
// snapshots synchronously (a proxy blocks on its initial xDS fetch);
// everything later is pushed.
func (cp *ControlPlane) EnableDistribution(cfg DistributionConfig) {
	if cp.dist != nil {
		panic("mesh: distribution already enabled")
	}
	m := cp.mesh
	if cfg.PushTimeout <= 0 {
		cfg.PushTimeout = 2 * time.Second
	}
	pod := m.cluster.AddPod(cluster.PodSpec{
		Name:   CtrlPlanePod,
		Labels: map[string]string{"app": CtrlPlanePod},
		Zone:   cfg.Zone,
	})
	d := &distributor{
		cp:          cp,
		pod:         pod,
		pushTimeout: cfg.PushTimeout,
		clients:     make(map[string]*httpsim.Client),
		pending:     make(map[uint64]*ctrlplane.Update),
		lastEps:     make(map[string][]*cluster.Pod),
	}
	d.srv = ctrlplane.NewServer(ctrlplane.Config{
		Sched:     m.sched,
		Transport: d,
		Metrics:   m.metrics,
		Debounce:  cfg.Debounce,
		FullState: cfg.FullState,
		ResyncDelay: cfg.ResyncDelay,
	})
	cp.dist = d
	for _, name := range d.serviceNames() {
		d.refreshService(name)
	}
	for _, sc := range m.Sidecars() {
		d.register(sc)
	}
	m.cluster.SetTopologyHook(d.topologyChanged)
}

// Distribution returns the distribution server for stats and staleness
// inspection, or nil in instant-propagation mode.
func (cp *ControlPlane) Distribution() *ctrlplane.Server {
	if cp.dist == nil {
		return nil
	}
	return cp.dist.srv
}

// serviceNames returns every name that needs a resource: cluster
// services plus policy-only names, sorted.
func (d *distributor) serviceNames() []string {
	seen := make(map[string]bool)
	for _, svc := range d.cp.mesh.cluster.Services() {
		seen[svc.Name()] = true
	}
	cp := d.cp
	for _, name := range policyKeys(cp) {
		seen[name] = true
	}
	names := make([]string, 0, len(seen))
	for name := range seen {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func policyKeys(cp *ControlPlane) []string {
	var names []string
	for name := range cp.rules {
		names = append(names, name)
	}
	for name := range cp.lb {
		names = append(names, name)
	}
	for name := range cp.retry {
		names = append(names, name)
	}
	for name := range cp.breaker {
		names = append(names, name)
	}
	for name := range cp.hedge {
		names = append(names, name)
	}
	for name := range cp.authz {
		names = append(names, name)
	}
	for name := range cp.fault {
		names = append(names, name)
	}
	for name := range cp.mirror {
		names = append(names, name)
	}
	for name := range cp.rate {
		names = append(names, name)
	}
	for name := range cp.admission {
		names = append(names, name)
	}
	for name := range cp.health {
		names = append(names, name)
	}
	for name := range cp.outlier {
		names = append(names, name)
	}
	for name := range cp.locality {
		names = append(names, name)
	}
	for name := range cp.fallback {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// register subscribes a sidecar and installs its bootstrapped agent.
func (d *distributor) register(sc *Sidecar) {
	agent := &sidecarAgent{snap: ctrlplane.NewSnapshot()}
	agent.applyUpdate(d.srv.Subscribe(sc.pod.Name()))
	//meshvet:allow ctlwrite registration installs the snapshot the push path maintains
	sc.ctrl = agent
}

// refreshService rebuilds one service's resource from the control
// plane's authoritative maps + live discovery and stages it for push.
func (d *distributor) refreshService(service string) {
	if service == "" {
		return
	}
	st := d.buildState(service)
	d.lastEps[service] = st.Eps
	d.srv.SetResource(service, st, st.wireBytes())
}

// topologyChanged reacts to discovery churn (pod added, readiness
// flip): any service whose endpoint list changed is re-staged.
func (d *distributor) topologyChanged() {
	for _, svc := range d.cp.mesh.cluster.Services() {
		eps := svc.Endpoints()
		if epsEqual(d.lastEps[svc.Name()], eps) {
			continue
		}
		d.refreshService(svc.Name())
	}
}

func epsEqual(a, b []*cluster.Pod) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// buildState snapshots the operator-intent maps for one service.
func (d *distributor) buildState(service string) *serviceState {
	cp := d.cp
	st := &serviceState{}
	if svc := cp.mesh.cluster.Service(service); svc != nil {
		st.Eps = svc.Endpoints()
	}
	st.Rule = cp.rules[service]
	if p, ok := cp.lb[service]; ok {
		st.LB = &p
	}
	if p, ok := cp.retry[service]; ok {
		st.Retry = &p
	}
	if p, ok := cp.breaker[service]; ok {
		st.Breaker = &p
	}
	if p, ok := cp.hedge[service]; ok {
		st.Hedge = &p
	}
	if p, ok := cp.fault[service]; ok {
		st.Fault = &p
	}
	if p, ok := cp.mirror[service]; ok {
		st.Mirror = &p
	}
	if p, ok := cp.rate[service]; ok {
		st.Rate = &p
	}
	if p, ok := cp.admission[service]; ok {
		st.Admission = &p
	}
	if p, ok := cp.health[service]; ok {
		st.Health = &p
	}
	if p, ok := cp.outlier[service]; ok {
		st.Outlier = &p
	}
	if p, ok := cp.locality[service]; ok {
		st.Locality = &p
	}
	if p, ok := cp.fallback[service]; ok {
		st.Fallback = &p
	}
	if set, ok := cp.authz[service]; ok {
		cpy := make(map[string]bool, len(set))
		for src, v := range set {
			cpy[src] = v
		}
		st.Authz = cpy
	}
	return st
}

// Push implements ctrlplane.Transport: the update travels as one
// simulated HTTP request from the control-plane pod to the sidecar's
// inbound port, sized like the encoded update. ACK latency — and so
// per-sidecar propagation delay — emerges from the network topology.
func (d *distributor) Push(sub string, u *ctrlplane.Update, done func(bool, error)) {
	m := d.cp.mesh
	sc := m.sidecars[sub]
	if sc == nil {
		done(false, fmt.Errorf("ctrlplane: unknown subscriber %q", sub))
		return
	}
	d.nextID++
	id := d.nextID
	d.pending[id] = u
	req := httpsim.NewRequest("POST", "/ctrlplane/push")
	req.Headers.Set(HeaderCtrl, strconv.FormatUint(id, 10))
	req.Headers.Set(HeaderSource, CtrlPlanePod)
	req.BodyBytes = u.WireBytes
	cl := d.clientFor(sub, sc.pod.Addr())
	settled := false
	timer := m.sched.After(d.pushTimeout, func() {
		if settled {
			return
		}
		settled = true
		delete(d.pending, id)
		// Condemn the connection so the resync re-dials instead of
		// waiting out RTO backoff to a possibly-partitioned peer.
		cl.Conn().Abort()
		delete(d.clients, sub)
		done(false, ctrlplane.ErrPushTimeout)
	})
	cl.Do(req, func(resp *httpsim.Response, err error) {
		if settled {
			return
		}
		settled = true
		timer.Cancel()
		delete(d.pending, id)
		if err != nil {
			delete(d.clients, sub)
			done(false, err)
			return
		}
		done(resp.Status == httpsim.StatusOK, nil)
	})
}

func (d *distributor) clientFor(sub string, addr simnet.Addr) *httpsim.Client {
	cl := d.clients[sub]
	if cl == nil || cl.Closed() {
		cl = httpsim.NewClient(d.pod.Host(), addr, InboundPort, transport.Options{CC: "reno"})
		d.clients[sub] = cl
	}
	return cl
}

// sidecarAgent is the sidecar-local xDS client: the snapshot of
// distributed routing state this sidecar routes on. All mutation goes
// through applyUpdate — the push path; meshvet's ctlwrite analyzer
// enforces that nothing else writes it.
type sidecarAgent struct {
	snap *ctrlplane.Snapshot
}

// applyUpdate installs one push; false = NACK (delta base mismatch).
func (a *sidecarAgent) applyUpdate(u *ctrlplane.Update) bool { return a.snap.Apply(u) }

// state returns the snapshotted routing state for service, or nil when
// this sidecar has never been told about it.
func (a *sidecarAgent) state(service string) *serviceState {
	if v, ok := a.snap.Resources[service]; ok {
		return v.(*serviceState)
	}
	return nil
}

// handleCtrlPush applies one control-plane push to this sidecar's
// snapshot: 200 ACKs, 409 NACKs (delta base mismatch), 404 drops a
// push the server has already timed out.
func (sc *Sidecar) handleCtrlPush(pushID string, respond func(*httpsim.Response)) {
	d := sc.mesh.cp.dist
	id, err := strconv.ParseUint(pushID, 10, 64)
	if d == nil || err != nil || sc.ctrl == nil {
		respond(httpsim.NewResponse(httpsim.StatusNotFound))
		return
	}
	u := d.pending[id]
	if u == nil {
		// The server gave up on this push; a late apply would desync
		// the version bookkeeping, so drop it.
		respond(httpsim.NewResponse(httpsim.StatusNotFound))
		return
	}
	if !sc.ctrl.applyUpdate(u) {
		respond(httpsim.NewResponse(httpsim.StatusConflict))
		return
	}
	respond(httpsim.NewResponse(httpsim.StatusOK))
}
