package mesh

import (
	"time"

	"meshlayer/internal/cluster"
	"meshlayer/internal/httpsim"
	"meshlayer/internal/metrics"
)

// This file implements Envoy-style locality-weighted load balancing
// with priority failover: endpoints in the caller's zone form priority
// level 0 and all remote zones form level 1; traffic prefers level 0
// and spills to level 1 as the local healthy-host fraction drops,
// governed by the overprovisioning factor. When every level is
// unhealthy the selection degrades to zone-blind (all endpoints), and
// the existing panic-threshold / fail-open machinery takes over.

// LocalityMode selects how zone information influences endpoint choice.
type LocalityMode string

const (
	// LocalityDisabled ignores zones entirely (the default; identical
	// to the pre-zone load balancer).
	LocalityDisabled LocalityMode = ""
	// LocalityStrict always routes to same-zone endpoints when any
	// exist, regardless of their health — the "zone-aware but brittle"
	// rung of the E17 ladder.
	LocalityStrict LocalityMode = "strict"
	// LocalityFailover weights the local zone by its healthy-host
	// fraction times the overprovisioning factor and spills the
	// remainder to remote zones (Envoy's priority-level algorithm).
	LocalityFailover LocalityMode = "failover"
	// LocalityRegionOnly runs the failover ladder across the two local
	// tiers only — caller's zone, then the rest of the caller's region —
	// and never crosses a region boundary. The middle rung of the E19
	// ladder: it absorbs zone failures but collapses with its region.
	LocalityRegionOnly LocalityMode = "region"
	// LocalityLadder runs the full Envoy-style priority ladder: caller's
	// zone -> rest of the local region -> neighboring regions -> anywhere
	// else. The two remote tiers are reached through the east-west
	// gateway pair and are known only as gateway-summarized endpoint
	// counts, so failover decisions honestly degrade with control-plane
	// staleness under a WAN partition.
	LocalityLadder LocalityMode = "ladder"
)

// LocalityPolicy configures zone-aware endpoint selection for a
// destination service. The zero value disables locality.
type LocalityPolicy struct {
	Mode LocalityMode
	// OverprovisioningFactor scales the local healthy fraction before
	// computing spillover (Envoy's default is 1.4: traffic starts
	// shifting only once fewer than ~71% of local hosts are healthy).
	// Zero selects DefaultOverprovisioning.
	OverprovisioningFactor float64
	// PanicThreshold enables per-tier fail-open in the region/ladder
	// modes: when the chosen tier's healthy-host fraction falls below
	// the threshold, selection within the tier disregards health so the
	// residual traffic spreads over every tier host instead of
	// concentrating on the few survivors (Envoy's panic routing, applied
	// per priority level). Zero disables it.
	PanicThreshold float64
}

// DefaultOverprovisioning mirrors Envoy's default factor of 1.4.
const DefaultOverprovisioning = 1.4

// IsZero reports whether locality routing is disabled.
func (p LocalityPolicy) IsZero() bool { return p.Mode == LocalityDisabled }

// ovp returns the effective overprovisioning factor.
func (p LocalityPolicy) ovp() float64 {
	if p.OverprovisioningFactor > 0 {
		return p.OverprovisioningFactor
	}
	return DefaultOverprovisioning
}

// LocalityWeights returns the traffic split between the local priority
// level and the remote spillover level given each level's healthy-host
// fraction and the overprovisioning factor — Envoy's priority-load
// algorithm for two levels. The local level absorbs
// min(1, localFrac·ovp); the remote level takes what remains, capped
// by its own overprovisioned health; if both levels are degraded the
// weights are normalized so they still sum to 1. (0, 0) means no level
// has any healthy host — the caller must fail open zone-blind.
func LocalityWeights(localFrac, remoteFrac, ovp float64) (wLocal, wRemote float64) {
	w := LadderWeights([]float64{localFrac, remoteFrac}, ovp)
	return w[0], w[1]
}

// LadderWeights generalizes LocalityWeights to an arbitrary priority
// ladder: fracs[i] is tier i's healthy-host fraction, highest priority
// first. Each tier absorbs min(remaining, frac·ovp) of the traffic in
// order; if the ladder's total capacity is under 1 the weights are
// normalized so they still sum to 1. An all-zero result means no tier
// has any healthy host — the caller must fail open.
func LadderWeights(fracs []float64, ovp float64) []float64 {
	w := make([]float64, len(fracs))
	remaining, total := 1.0, 0.0
	for i, f := range fracs {
		h := f * ovp
		if h > 1 {
			h = 1
		}
		wi := remaining
		if wi > h {
			wi = h
		}
		w[i] = wi
		remaining -= wi
		total += wi
	}
	if total == 0 || total >= 1 {
		return w
	}
	for i := range w {
		w[i] /= total
	}
	return w
}

// localitySelect narrows eps to one priority level per the service's
// locality policy. It returns eps unchanged when locality is disabled,
// the caller has no zone, or the cluster degenerates to a single zone
// (so single-zone topologies behave — and randomize — exactly as
// before zones existed). The region/ladder modes only reach this path
// for a regionless caller, where they degrade to failover semantics;
// a zoneless regionless caller falls all the way back to the zone-blind
// pre-locality behavior.
func (sc *Sidecar) localitySelect(service string, eps []*cluster.Pod) []*cluster.Pod {
	pol := sc.localityFor(service)
	if pol.IsZero() {
		return eps
	}
	zone := sc.pod.Zone()
	if zone == "" {
		return eps
	}
	local := eps[:0:0]
	remote := eps[:0:0]
	for _, ep := range eps {
		if ep.Zone() == zone {
			local = append(local, ep)
		} else {
			remote = append(remote, ep)
		}
	}
	if len(local) == 0 || len(remote) == 0 {
		return eps
	}
	if pol.Mode == LocalityStrict {
		return local
	}
	now := sc.mesh.sched.Now()
	wLocal, wRemote := LocalityWeights(
		sc.healthyFrac(local, now), sc.healthyFrac(remote, now), pol.ovp())
	switch {
	case wLocal+wRemote == 0:
		return eps // no healthy host anywhere: zone-blind fail-open
	case wRemote == 0:
		return local
	case wLocal == 0:
	case sc.mesh.rng.Float64() < wLocal:
		return local
	}
	sc.mesh.metrics.Counter(MetricLBCrossZoneTotal,
		metrics.Labels{"service": service}).Inc()
	return remote
}

// healthyFrac returns the fraction of eps currently in LB rotation.
func (sc *Sidecar) healthyFrac(eps []*cluster.Pod, now time.Duration) float64 {
	if len(eps) == 0 {
		return 0
	}
	healthy := 0
	for _, ep := range eps {
		if sc.epState(ep.Addr()).available(now) {
			healthy++
		}
	}
	return float64(healthy) / float64(len(eps))
}

// --- the full priority ladder (region / ladder modes) ---

// ladderTier is one rung during selection: either local endpoints or
// gateway-summarized remote regions, with the rung's healthy fraction.
type ladderTier struct {
	eps    []*cluster.Pod
	remote []RemoteEndpoints
	frac   float64
}

// localOnly reports whether this request must not leave the caller's
// region: the final leg stamped by an ingress gateway, and any leg of
// the gateway pair itself (a gateway-to-gateway call re-entering the
// ladder would recurse).
func localOnly(service string, req *httpsim.Request) bool {
	return isEWService(service) ||
		req.Headers.Has(HeaderLocalOnly) || req.Headers.Has(HeaderEWRegion)
}

// pickTarget resolves one attempt's destination: a concrete endpoint,
// or ("", region) directing the attempt through the east-west gateway
// pair toward that region. Callers outside the region/ladder modes —
// and regionless callers within them — take the exact pre-federation
// path, byte-identical randomness included.
func (sc *Sidecar) pickTarget(service string, req *httpsim.Request, eps []*cluster.Pod) (*cluster.Pod, string) {
	pol := sc.localityFor(service)
	ladder := pol.Mode == LocalityRegionOnly || pol.Mode == LocalityLadder
	if !ladder || sc.pod.Region() == "" {
		if len(eps) == 0 {
			return nil, ""
		}
		return sc.pickEndpoint(service, eps), ""
	}
	tierEps, via, panicOpen := sc.ladderSelect(service, req, eps)
	if via != "" {
		sc.mesh.metrics.Counter(MetricCrossRegionTotal,
			metrics.Labels{"service": service, "region": via}).Inc()
		return nil, via
	}
	if len(tierEps) == 0 {
		return nil, ""
	}
	return sc.pickFrom(service, tierEps, panicOpen), ""
}

// ladderSelect walks the priority ladder: caller's zone, rest of the
// local region, then (ladder mode, unless the request is pinned local)
// neighboring regions and anywhere else. Local rungs are weighted by
// observed health; remote rungs are known only as summarized endpoint
// counts and weigh in at full health — the caller cannot see WAN-side
// sickness until its attempts fail.
func (sc *Sidecar) ladderSelect(service string, req *httpsim.Request, eps []*cluster.Pod) (tierEps []*cluster.Pod, via string, panicOpen bool) {
	pol := sc.localityFor(service)
	region := sc.pod.Region()
	zone := sc.pod.Zone()
	var zoneEps, regionEps []*cluster.Pod
	for _, ep := range eps {
		switch {
		case ep.Region() != region:
			// Remote pods visible to an instant-propagation caller are
			// folded into the summarized remote rungs below.
		case zone != "" && ep.Zone() == zone:
			zoneEps = append(zoneEps, ep)
		default:
			regionEps = append(regionEps, ep)
		}
	}
	now := sc.mesh.sched.Now()
	var tiers []ladderTier
	if len(zoneEps) > 0 {
		tiers = append(tiers, ladderTier{eps: zoneEps, frac: sc.healthyFrac(zoneEps, now)})
	}
	if len(regionEps) > 0 {
		tiers = append(tiers, ladderTier{eps: regionEps, frac: sc.healthyFrac(regionEps, now)})
	}
	var remoteAll []RemoteEndpoints
	if pol.Mode == LocalityLadder && !localOnly(service, req) {
		// Remote rungs are weighted by the health of the WAN path to
		// each region — learned from this sidecar's own failed attempts,
		// since the summarized counts keep advertising a partitioned
		// region at full strength until its control plane is reachable
		// again.
		neighbor, far := sc.remoteTiers(service, eps)
		if len(neighbor) > 0 {
			tiers = append(tiers, ladderTier{remote: neighbor, frac: sc.regionPathFrac(neighbor, now)})
		}
		if len(far) > 0 {
			tiers = append(tiers, ladderTier{remote: far, frac: sc.regionPathFrac(far, now)})
		}
		remoteAll = append(append(remoteAll, neighbor...), far...)
	}
	if len(tiers) == 0 {
		return nil, "", false
	}
	fracs := make([]float64, len(tiers))
	for i := range tiers {
		fracs[i] = tiers[i].frac
	}
	w := LadderWeights(fracs, pol.ovp())
	total := 0.0
	for _, wi := range w {
		total += wi
	}
	if total == 0 {
		// No rung has a healthy host: fail open across everything the
		// caller can reach without a gateway — or, when the local region
		// has nothing left at all, through the gateways regardless of
		// path health (a dark path still beats a guaranteed failure).
		all := append(append(eps[:0:0], zoneEps...), regionEps...)
		if len(all) == 0 && len(remoteAll) > 0 {
			return nil, sc.pickRemoteRegion(remoteAll), false
		}
		return all, "", true
	}
	r := sc.mesh.rng.Float64() * total
	idx := len(tiers) - 1 // float rounding: the last rung absorbs the residue
	acc := 0.0
	for i, wi := range w {
		acc += wi
		if r < acc {
			idx = i
			break
		}
	}
	t := tiers[idx]
	if t.remote != nil {
		return nil, sc.pickRemoteRegion(t.remote), false
	}
	if idx > 0 && len(zoneEps) > 0 {
		sc.mesh.metrics.Counter(MetricLBCrossZoneTotal,
			metrics.Labels{"service": service}).Inc()
	}
	return t.eps, "", pol.PanicThreshold > 0 && t.frac < pol.PanicThreshold
}

// remoteTiers summarizes the service's out-of-region capacity, split
// into the neighbor rung and the anywhere rung. Regions form a ring in
// creation order (the cluster's geography); a region's ring neighbors
// are one hop away, everything else is "anywhere". Counts merge what
// the caller can see directly (instant-propagation mode) with the
// gateway-summarized entries its regional control plane pushed.
func (sc *Sidecar) remoteTiers(service string, eps []*cluster.Pod) (neighbor, far []RemoteEndpoints) {
	own := sc.pod.Region()
	counts := make(map[string]int)
	for _, ep := range eps {
		if r := ep.Region(); r != own && r != "" {
			counts[r]++
		}
	}
	if st, dist := sc.ctrlState(service); dist && st != nil {
		for _, re := range st.Remote {
			if re.Region != own && re.Count > 0 {
				counts[re.Region] += re.Count
			}
		}
	}
	regions := sc.mesh.cluster.Regions()
	ownIdx := -1
	for i, r := range regions {
		if r == own {
			ownIdx = i
		}
	}
	for i, r := range regions {
		c := counts[r]
		if c == 0 || r == own {
			continue
		}
		d := i - ownIdx
		if d < 0 {
			d = -d
		}
		if ownIdx >= 0 && (d == 1 || d == len(regions)-1) {
			neighbor = append(neighbor, RemoteEndpoints{Region: r, Count: c})
		} else {
			far = append(far, RemoteEndpoints{Region: r, Count: c})
		}
	}
	return neighbor, far
}

// regionPathFrac is the summarized-endpoint-weighted fraction of a
// remote rung whose WAN paths are currently admitting traffic.
func (sc *Sidecar) regionPathFrac(rs []RemoteEndpoints, now time.Duration) float64 {
	total, avail := 0, 0
	for _, r := range rs {
		total += r.Count
		if sc.regionPath(r.Region).available(now) {
			avail += r.Count
		}
	}
	if total == 0 {
		return 0
	}
	return float64(avail) / float64(total)
}

// pickRemoteRegion draws a region proportionally to its summarized
// endpoint count, among regions whose WAN path is admitting traffic;
// when every path is dark it fails open across all of them.
func (sc *Sidecar) pickRemoteRegion(rs []RemoteEndpoints) string {
	now := sc.mesh.sched.Now()
	live := rs[:0:0]
	for _, r := range rs {
		if sc.regionPath(r.Region).available(now) {
			live = append(live, r)
		}
	}
	if len(live) == 0 {
		live = rs
	}
	if len(live) == 1 {
		return live[0].Region
	}
	total := 0
	for _, r := range live {
		total += r.Count
	}
	n := sc.mesh.rng.Intn(total)
	for _, r := range live {
		n -= r.Count
		if n < 0 {
			return r.Region
		}
	}
	return live[len(live)-1].Region
}
