package mesh

import (
	"time"

	"meshlayer/internal/cluster"
	"meshlayer/internal/metrics"
)

// This file implements Envoy-style locality-weighted load balancing
// with priority failover: endpoints in the caller's zone form priority
// level 0 and all remote zones form level 1; traffic prefers level 0
// and spills to level 1 as the local healthy-host fraction drops,
// governed by the overprovisioning factor. When every level is
// unhealthy the selection degrades to zone-blind (all endpoints), and
// the existing panic-threshold / fail-open machinery takes over.

// LocalityMode selects how zone information influences endpoint choice.
type LocalityMode string

const (
	// LocalityDisabled ignores zones entirely (the default; identical
	// to the pre-zone load balancer).
	LocalityDisabled LocalityMode = ""
	// LocalityStrict always routes to same-zone endpoints when any
	// exist, regardless of their health — the "zone-aware but brittle"
	// rung of the E17 ladder.
	LocalityStrict LocalityMode = "strict"
	// LocalityFailover weights the local zone by its healthy-host
	// fraction times the overprovisioning factor and spills the
	// remainder to remote zones (Envoy's priority-level algorithm).
	LocalityFailover LocalityMode = "failover"
)

// LocalityPolicy configures zone-aware endpoint selection for a
// destination service. The zero value disables locality.
type LocalityPolicy struct {
	Mode LocalityMode
	// OverprovisioningFactor scales the local healthy fraction before
	// computing spillover (Envoy's default is 1.4: traffic starts
	// shifting only once fewer than ~71% of local hosts are healthy).
	// Zero selects DefaultOverprovisioning.
	OverprovisioningFactor float64
}

// DefaultOverprovisioning mirrors Envoy's default factor of 1.4.
const DefaultOverprovisioning = 1.4

// IsZero reports whether locality routing is disabled.
func (p LocalityPolicy) IsZero() bool { return p.Mode == LocalityDisabled }

// ovp returns the effective overprovisioning factor.
func (p LocalityPolicy) ovp() float64 {
	if p.OverprovisioningFactor > 0 {
		return p.OverprovisioningFactor
	}
	return DefaultOverprovisioning
}

// LocalityWeights returns the traffic split between the local priority
// level and the remote spillover level given each level's healthy-host
// fraction and the overprovisioning factor — Envoy's priority-load
// algorithm for two levels. The local level absorbs
// min(1, localFrac·ovp); the remote level takes what remains, capped
// by its own overprovisioned health; if both levels are degraded the
// weights are normalized so they still sum to 1. (0, 0) means no level
// has any healthy host — the caller must fail open zone-blind.
func LocalityWeights(localFrac, remoteFrac, ovp float64) (wLocal, wRemote float64) {
	hl := localFrac * ovp
	if hl > 1 {
		hl = 1
	}
	hr := remoteFrac * ovp
	if hr > 1 {
		hr = 1
	}
	wLocal = hl
	wRemote = 1 - hl
	if wRemote > hr {
		wRemote = hr
	}
	total := wLocal + wRemote
	if total == 0 {
		return 0, 0
	}
	if total < 1 {
		wLocal /= total
		wRemote /= total
	}
	return wLocal, wRemote
}

// localitySelect narrows eps to one priority level per the service's
// locality policy. It returns eps unchanged when locality is disabled,
// the caller has no zone, or the cluster degenerates to a single zone
// (so single-zone topologies behave — and randomize — exactly as
// before zones existed).
func (sc *Sidecar) localitySelect(service string, eps []*cluster.Pod) []*cluster.Pod {
	pol := sc.localityFor(service)
	if pol.IsZero() {
		return eps
	}
	zone := sc.pod.Zone()
	if zone == "" {
		return eps
	}
	local := eps[:0:0]
	remote := eps[:0:0]
	for _, ep := range eps {
		if ep.Zone() == zone {
			local = append(local, ep)
		} else {
			remote = append(remote, ep)
		}
	}
	if len(local) == 0 || len(remote) == 0 {
		return eps
	}
	if pol.Mode == LocalityStrict {
		return local
	}
	now := sc.mesh.sched.Now()
	wLocal, wRemote := LocalityWeights(
		sc.healthyFrac(local, now), sc.healthyFrac(remote, now), pol.ovp())
	switch {
	case wLocal+wRemote == 0:
		return eps // no healthy host anywhere: zone-blind fail-open
	case wRemote == 0:
		return local
	case wLocal == 0:
	case sc.mesh.rng.Float64() < wLocal:
		return local
	}
	sc.mesh.metrics.Counter("mesh_lb_cross_zone_total",
		metrics.Labels{"service": service}).Inc()
	return remote
}

// healthyFrac returns the fraction of eps currently in LB rotation.
func (sc *Sidecar) healthyFrac(eps []*cluster.Pod, now time.Duration) float64 {
	healthy := 0
	for _, ep := range eps {
		if sc.epState(ep.Addr()).available(now) {
			healthy++
		}
	}
	return float64(healthy) / float64(len(eps))
}
