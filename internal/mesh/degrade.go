package mesh

import (
	"time"

	"meshlayer/internal/httpsim"
	"meshlayer/internal/metrics"
	"meshlayer/internal/trace"
)

// This file implements sidecar-level graceful degradation: per-route
// fallback policies let a caller serve a partial (degraded) response
// when an upstream is unavailable, instead of failing the whole call
// tree. Degraded responses are stamped with HeaderDegraded naming the
// service that was papered over, and the stamp is carried back through
// the tree with the same provenance mechanism the paper uses for
// priorities (internal/core): applications compose fresh responses and
// drop child headers, so each sidecar records (x-request-id -> origin)
// when a degraded child response arrives and restores the header onto
// the response its own application sends upstream.

// FallbackPolicy configures graceful degradation for calls to a
// destination service: when a call fails terminally (retries and
// budget exhausted, or no endpoint reachable), the calling sidecar
// synthesizes a degraded response instead of surfacing the error.
type FallbackPolicy struct {
	// Enabled turns the fallback on.
	Enabled bool
	// Status is the synthesized response's status (default 200: the
	// caller's application proceeds with the partial content).
	Status int
	// BodyBytes is the synthesized body size — typically far smaller
	// than the real response (an empty ratings list, a cached stub).
	BodyBytes int
	// After bounds how long the call chases a real response before the
	// sidecar serves the degraded one (the Hystrix-style fallback
	// deadline). Without it a dead upstream only fails after the full
	// retry ladder (MaxRetries x PerTryTimeout), by which time the
	// callers up the tree have timed out themselves and the fallback
	// saves nothing. Zero selects DefaultFallbackAfter; it must sit
	// below the callers' per-try timeouts to be useful.
	After time.Duration
}

// DefaultFallbackAfter is the fallback deadline when After is unset.
const DefaultFallbackAfter = 300 * time.Millisecond

// IsZero reports whether degradation is disabled.
func (p FallbackPolicy) IsZero() bool { return !p.Enabled }

// after returns the effective fallback deadline.
func (p FallbackPolicy) after() time.Duration {
	if p.After > 0 {
		return p.After
	}
	return DefaultFallbackAfter
}

// status returns the effective synthesized status.
func (p FallbackPolicy) status() int {
	if p.Status == 0 {
		return httpsim.StatusOK
	}
	return p.Status
}

// degradedEntry is one degraded-provenance record: which upstream was
// papered over for a request ID, plus its last sighting for GC.
type degradedEntry struct {
	origin string
	seen   time.Duration
}

// degradedTTL bounds how long an idle record is kept; the sweep runs
// every degradedSweepInterval and disarms itself when the map drains
// (so an idle mesh leaves the event queue empty).
const (
	degradedTTL           = 2 * time.Minute
	degradedSweepInterval = 30 * time.Second
)

// recordDegraded remembers that the trace tid saw a degraded response
// originating at origin.
func (m *Mesh) recordDegraded(tid, origin string) {
	if tid == "" || origin == "" {
		return
	}
	m.degraded[tid] = degradedEntry{origin: origin, seen: m.sched.Now()}
	m.armDegradedSweep()
}

// takeDegraded returns and clears the trace's degraded origin. The
// record alternates with the header on the way up the tree: recorded
// from a child response at one hop, restored onto the parent response
// at the next.
func (m *Mesh) takeDegraded(tid string) (string, bool) {
	e, ok := m.degraded[tid]
	if !ok {
		return "", false
	}
	delete(m.degraded, tid)
	return e.origin, true
}

// armDegradedSweep schedules the provenance GC while records exist,
// mirroring internal/core's priority-provenance sweep.
func (m *Mesh) armDegradedSweep() {
	if m.degSweepArmed {
		return
	}
	m.degSweepArmed = true
	m.sched.After(degradedSweepInterval, func() {
		m.degSweepArmed = false
		now := m.sched.Now()
		for id, e := range m.degraded {
			if now-e.seen > degradedTTL {
				delete(m.degraded, id)
			}
		}
		if len(m.degraded) > 0 {
			m.armDegradedSweep()
		}
	})
}

// maybeFallback intercepts a terminally-failed call: when the
// destination has a fallback policy it synthesizes the degraded
// response and clears the error. Returns the response to deliver.
func (c *call) maybeFallback(resp *httpsim.Response, err error) (*httpsim.Response, error) {
	m := c.sc.mesh
	failed := err != nil || resp == nil || resp.Status >= 500
	if failed {
		if p := c.sc.fallbackFor(c.service); !p.IsZero() {
			resp = httpsim.NewResponse(p.status())
			resp.BodyBytes = p.BodyBytes
			resp.Headers.Set(HeaderDegraded, c.service)
			err = nil
			m.metrics.Counter(MetricFallbackServedTotal,
				metrics.Labels{"service": c.service}).Inc()
			if c.span != nil {
				c.span.SetTag("degraded", c.service)
			}
		}
	}
	// Whether synthesized here or answered degraded by the upstream,
	// remember the stamp so this pod's own response restores it.
	if resp != nil {
		if origin := resp.Headers.Get(HeaderDegraded); origin != "" {
			m.recordDegraded(c.req.Headers.Get(trace.HeaderRequestID), origin)
		}
	}
	return resp, err
}
