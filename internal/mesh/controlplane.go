package mesh

import (
	"fmt"
	"time"
)

// SubsetRef selects a labeled subset of a service's endpoints, e.g.
// {Key: "version", Value: "v1"}. The zero value means "all endpoints".
type SubsetRef struct {
	Key, Value string
}

// IsZero reports whether the reference selects all endpoints.
func (s SubsetRef) IsZero() bool { return s.Key == "" }

// String renders the subset for logs.
func (s SubsetRef) String() string {
	if s.IsZero() {
		return "*"
	}
	return fmt.Sprintf("%s=%s", s.Key, s.Value)
}

// HeaderRoute routes requests whose header matches a value to a subset
// — the mesh-level mechanism behind the paper's priority routing
// (optimization 3a: forward to the high- or low-priority pod).
type HeaderRoute struct {
	Header string
	Value  string
	Subset SubsetRef
}

// WeightedSubset assigns a share of traffic to a subset — the canary /
// traffic-shifting primitive.
type WeightedSubset struct {
	Subset SubsetRef
	Weight int // relative weight, > 0
}

// RouteRule is the routing configuration for one service. Matching
// order: HeaderRoutes first, then Weights (random split), then
// DefaultSubset.
type RouteRule struct {
	Service       string
	HeaderRoutes  []HeaderRoute
	Weights       []WeightedSubset
	DefaultSubset SubsetRef
}

// RetryPolicy controls sidecar-level resilience for a service.
type RetryPolicy struct {
	// MaxRetries bounds re-attempts after the first try.
	MaxRetries int
	// PerTryTimeout aborts an attempt that has not answered in time.
	// Zero disables the timeout.
	PerTryTimeout time.Duration
	// RetryOn5xx also retries server errors (not just transport
	// failures).
	RetryOn5xx bool
}

// DefaultRetryPolicy mirrors a conservative Envoy default.
var DefaultRetryPolicy = RetryPolicy{MaxRetries: 2, PerTryTimeout: 10 * time.Second, RetryOn5xx: true}

// CircuitBreakerPolicy ejects underperforming endpoints: after
// ConsecutiveFailures errors an endpoint is skipped for OpenFor.
type CircuitBreakerPolicy struct {
	ConsecutiveFailures int
	OpenFor             time.Duration
}

// DefaultCircuitBreaker is applied to services with no explicit policy.
var DefaultCircuitBreaker = CircuitBreakerPolicy{ConsecutiveFailures: 5, OpenFor: 30 * time.Second}

// HedgePolicy issues a redundant request to a second replica if the
// first has not answered within Delay — the "low latency via
// redundancy" technique (§3.4, ref [50]). Zero Delay disables hedging.
type HedgePolicy struct {
	Delay time.Duration
}

// LBPolicy names a load-balancing algorithm.
type LBPolicy string

// Supported load-balancing policies.
const (
	LBRoundRobin   LBPolicy = "round_robin"
	LBRandom       LBPolicy = "random"
	LBLeastRequest LBPolicy = "least_request"
	LBEWMA         LBPolicy = "ewma" // latency-aware adaptive replica selection (§3.4, ref [30])
)

// ControlPlane is the mesh's centralized configuration authority:
// service discovery (via the cluster), traffic policy, and security
// policy, pushed to sidecars (modeled as shared versioned state).
type ControlPlane struct {
	mesh    *Mesh
	rules   map[string]*RouteRule
	lb      map[string]LBPolicy
	retry   map[string]RetryPolicy
	breaker map[string]CircuitBreakerPolicy
	hedge   map[string]HedgePolicy
	// authz[dst] = set of allowed source services; absent dst = allow
	// all (permissive mode).
	authz     map[string]map[string]bool
	fault     map[string]FaultPolicy
	mirror    map[string]MirrorPolicy
	rate      map[string]RateLimitPolicy
	admission map[string]AdmissionPolicy

	certs      map[uint64]*Cert
	certSerial uint64
	strictMTLS bool

	// pushDelay models configuration propagation: mutations made
	// through the Set* methods take effect this long after the call
	// (0 = instantaneous, the default).
	pushDelay time.Duration

	version uint64
}

func newControlPlane(m *Mesh) *ControlPlane {
	return &ControlPlane{
		mesh:      m,
		rules:     make(map[string]*RouteRule),
		lb:        make(map[string]LBPolicy),
		retry:     make(map[string]RetryPolicy),
		breaker:   make(map[string]CircuitBreakerPolicy),
		hedge:     make(map[string]HedgePolicy),
		authz:     make(map[string]map[string]bool),
		fault:     make(map[string]FaultPolicy),
		mirror:    make(map[string]MirrorPolicy),
		rate:      make(map[string]RateLimitPolicy),
		admission: make(map[string]AdmissionPolicy),
		certs:     make(map[uint64]*Cert),
	}
}

// Version returns the configuration version (bumped on every change).
func (cp *ControlPlane) Version() uint64 { return cp.version }

func (cp *ControlPlane) bump() { cp.version++ }

// SetPushDelay makes subsequent configuration changes take effect only
// after d — the xDS-style propagation lag between "operator applied
// config" and "every sidecar acts on it". Zero restores instantaneous
// application.
func (cp *ControlPlane) SetPushDelay(d time.Duration) {
	if d < 0 {
		d = 0
	}
	cp.pushDelay = d
}

// apply runs a validated mutation now or after the push delay.
func (cp *ControlPlane) apply(mutate func()) {
	if cp.pushDelay <= 0 {
		mutate()
		cp.bump()
		return
	}
	cp.mesh.sched.After(cp.pushDelay, func() {
		mutate()
		cp.bump()
	})
}

// SetRouteRule installs (replacing) the routing rule for a service.
func (cp *ControlPlane) SetRouteRule(r RouteRule) {
	if r.Service == "" {
		panic("mesh: route rule needs a service")
	}
	for _, w := range r.Weights {
		if w.Weight <= 0 {
			panic("mesh: route weights must be positive")
		}
	}
	cp.apply(func() { cp.rules[r.Service] = &r })
}

// RouteRuleFor returns the service's rule, or nil.
func (cp *ControlPlane) RouteRuleFor(service string) *RouteRule { return cp.rules[service] }

// ClearRouteRule removes a service's routing rule.
func (cp *ControlPlane) ClearRouteRule(service string) {
	cp.apply(func() { delete(cp.rules, service) })
}

// SetLBPolicy selects the load balancer for a service.
func (cp *ControlPlane) SetLBPolicy(service string, p LBPolicy) {
	switch p {
	case LBRoundRobin, LBRandom, LBLeastRequest, LBEWMA:
	default:
		panic(fmt.Sprintf("mesh: unknown LB policy %q", p))
	}
	cp.apply(func() { cp.lb[service] = p })
}

// LBPolicyFor returns the service's LB policy (round robin by default).
func (cp *ControlPlane) LBPolicyFor(service string) LBPolicy {
	if p, ok := cp.lb[service]; ok {
		return p
	}
	return LBRoundRobin
}

// SetRetryPolicy configures retries for a service.
func (cp *ControlPlane) SetRetryPolicy(service string, p RetryPolicy) {
	cp.apply(func() { cp.retry[service] = p })
}

// RetryPolicyFor returns the service's retry policy.
func (cp *ControlPlane) RetryPolicyFor(service string) RetryPolicy {
	if p, ok := cp.retry[service]; ok {
		return p
	}
	return DefaultRetryPolicy
}

// SetCircuitBreaker configures ejection for a service's endpoints.
func (cp *ControlPlane) SetCircuitBreaker(service string, p CircuitBreakerPolicy) {
	cp.apply(func() { cp.breaker[service] = p })
}

// CircuitBreakerFor returns the service's circuit-breaker policy.
func (cp *ControlPlane) CircuitBreakerFor(service string) CircuitBreakerPolicy {
	if p, ok := cp.breaker[service]; ok {
		return p
	}
	return DefaultCircuitBreaker
}

// SetHedgePolicy configures redundant requests for a service.
func (cp *ControlPlane) SetHedgePolicy(service string, p HedgePolicy) {
	cp.apply(func() { cp.hedge[service] = p })
}

// HedgePolicyFor returns the service's hedging policy (disabled by
// default).
func (cp *ControlPlane) HedgePolicyFor(service string) HedgePolicy { return cp.hedge[service] }

// AllowCalls authorizes src to call dst. The first AllowCalls for a dst
// switches it from permissive (allow all) to an explicit allow-list.
func (cp *ControlPlane) AllowCalls(src, dst string) {
	cp.apply(func() {
		set := cp.authz[dst]
		if set == nil {
			set = make(map[string]bool)
			cp.authz[dst] = set
		}
		set[src] = true
	})
}

// Authorized reports whether src may call dst under current policy.
func (cp *ControlPlane) Authorized(src, dst string) bool {
	set, restricted := cp.authz[dst]
	if !restricted {
		return true
	}
	return set[src]
}
