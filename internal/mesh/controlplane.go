package mesh

import (
	"fmt"
	"time"
)

// SubsetRef selects a labeled subset of a service's endpoints, e.g.
// {Key: "version", Value: "v1"}. The zero value means "all endpoints".
type SubsetRef struct {
	Key, Value string
}

// IsZero reports whether the reference selects all endpoints.
func (s SubsetRef) IsZero() bool { return s.Key == "" }

// String renders the subset for logs.
func (s SubsetRef) String() string {
	if s.IsZero() {
		return "*"
	}
	return fmt.Sprintf("%s=%s", s.Key, s.Value)
}

// HeaderRoute routes requests whose header matches a value to a subset
// — the mesh-level mechanism behind the paper's priority routing
// (optimization 3a: forward to the high- or low-priority pod).
type HeaderRoute struct {
	Header string
	Value  string
	Subset SubsetRef
}

// WeightedSubset assigns a share of traffic to a subset — the canary /
// traffic-shifting primitive.
type WeightedSubset struct {
	Subset SubsetRef
	Weight int // relative weight, > 0
}

// RouteRule is the routing configuration for one service. Matching
// order: HeaderRoutes first, then Weights (random split), then
// DefaultSubset.
type RouteRule struct {
	Service       string
	HeaderRoutes  []HeaderRoute
	Weights       []WeightedSubset
	DefaultSubset SubsetRef
}

// RetryPolicy controls sidecar-level resilience for a service.
type RetryPolicy struct {
	// MaxRetries bounds re-attempts after the first try.
	MaxRetries int
	// PerTryTimeout aborts an attempt that has not answered in time.
	// Zero disables the timeout.
	PerTryTimeout time.Duration
	// RetryOn5xx also retries server errors (not just transport
	// failures).
	RetryOn5xx bool

	// BackoffBase, when > 0, spaces retries with full-jitter
	// exponential backoff: attempt n waits U(0, min(Base<<(n-1), Max)]
	// instead of re-firing immediately, de-synchronizing retry waves
	// under overload. Zero keeps the legacy immediate retry.
	BackoffBase time.Duration
	// BackoffMax caps the backoff window. Zero with a non-zero
	// BackoffBase means 10× the base.
	BackoffMax time.Duration

	// BudgetRatio, when > 0, enables a Finagle-style token-bucket
	// retry budget: every new logical call deposits BudgetRatio tokens
	// and each retry spends one, so sustained retry traffic is capped
	// at that fraction of request traffic. Denied retries surface the
	// underlying failure. Zero disables the budget (unlimited retries
	// up to MaxRetries).
	BudgetRatio float64
	// BudgetBurst caps accumulated tokens (and is the initial fill).
	// Zero with a non-zero BudgetRatio means 3.
	BudgetBurst float64
}

// backoffFor returns the wait before retry attempt n (1-based), or 0
// for an immediate retry.
func (p RetryPolicy) backoffFor(n int) time.Duration {
	if p.BackoffBase <= 0 || n < 1 {
		return 0
	}
	max := p.BackoffMax
	if max <= 0 {
		max = 10 * p.BackoffBase
	}
	d := p.BackoffBase
	for i := 1; i < n && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return d
}

// budgetBurst returns the effective token cap.
func (p RetryPolicy) budgetBurst() float64 {
	if p.BudgetBurst > 0 {
		return p.BudgetBurst
	}
	return 3
}

// DefaultRetryPolicy mirrors a conservative Envoy default.
var DefaultRetryPolicy = RetryPolicy{MaxRetries: 2, PerTryTimeout: 10 * time.Second, RetryOn5xx: true}

// CircuitBreakerPolicy ejects underperforming endpoints: after
// ConsecutiveFailures errors an endpoint is skipped for OpenFor.
type CircuitBreakerPolicy struct {
	ConsecutiveFailures int
	OpenFor             time.Duration
}

// DefaultCircuitBreaker is applied to services with no explicit policy.
var DefaultCircuitBreaker = CircuitBreakerPolicy{ConsecutiveFailures: 5, OpenFor: 30 * time.Second}

// HealthCheckPolicy enables active health checking for a service:
// every sidecar probes each endpoint on a timer and removes endpoints
// failing UnhealthyThreshold consecutive probes from LB rotation until
// HealthyThreshold consecutive probes succeed — Envoy's HTTP health
// checker. Probes are answered by the destination sidecar itself, so
// they detect crashes and partitions but deliberately not gray
// application failures (that is outlier detection's job).
type HealthCheckPolicy struct {
	// Interval between probes of each endpoint.
	Interval time.Duration
	// Timeout fails a probe that has not answered in time. Zero means
	// half the interval.
	Timeout time.Duration
	// UnhealthyThreshold consecutive failures mark an endpoint
	// unhealthy (default 2).
	UnhealthyThreshold int
	// HealthyThreshold consecutive successes restore it (default 2).
	HealthyThreshold int
	// SlowStart, when > 0, ramps a freshly-recovered endpoint's traffic
	// share linearly over this window instead of returning it to full
	// rotation at once (Envoy's LB slow-start mode). Without it, a
	// recovered endpoint is slammed with a full load burst over cold
	// connections, and the resulting queue spike shows up as a latency
	// wave across the whole service.
	SlowStart time.Duration
}

// IsZero reports whether health checking is disabled.
func (p HealthCheckPolicy) IsZero() bool { return p.Interval <= 0 }

// withDefaults fills unset fields.
func (p HealthCheckPolicy) withDefaults() HealthCheckPolicy {
	if p.Timeout <= 0 {
		p.Timeout = p.Interval / 2
	}
	if p.UnhealthyThreshold <= 0 {
		p.UnhealthyThreshold = 2
	}
	if p.HealthyThreshold <= 0 {
		p.HealthyThreshold = 2
	}
	return p
}

// OutlierPolicy enables passive (success-rate and latency) outlier
// detection: each sidecar periodically sweeps its per-endpoint request
// windows and temporarily ejects endpoints that fail too often or run
// far slower than their best peer — Envoy's outlier detection, the
// mesh's answer to gray failures that active probes cannot see.
type OutlierPolicy struct {
	// Interval between sweeps.
	Interval time.Duration
	// MinRequests is the minimum window size to judge an endpoint
	// (default 5).
	MinRequests int
	// FailureThreshold ejects an endpoint whose windowed failure ratio
	// reaches this value (default 0.5).
	FailureThreshold float64
	// LatencyFactor, when > 0, also ejects an endpoint whose latency
	// EWMA exceeds this multiple of the best peer's — catching
	// slow-pod gray failures that still answer 200s.
	LatencyFactor float64
	// BaseEjection is how long an ejected endpoint stays out of
	// rotation (default 10s).
	BaseEjection time.Duration
	// PanicThreshold stops ejections (and re-admits everything for
	// routing) when the available fraction of endpoints would drop
	// below it — Envoy's panic routing, trading failure isolation for
	// capacity when most of the fleet looks bad (default 0, disabled).
	PanicThreshold float64
}

// IsZero reports whether outlier detection is disabled.
func (p OutlierPolicy) IsZero() bool { return p.Interval <= 0 }

// withDefaults fills unset fields.
func (p OutlierPolicy) withDefaults() OutlierPolicy {
	if p.MinRequests <= 0 {
		p.MinRequests = 5
	}
	if p.FailureThreshold <= 0 {
		p.FailureThreshold = 0.5
	}
	if p.BaseEjection <= 0 {
		p.BaseEjection = 10 * time.Second
	}
	return p
}

// HedgePolicy issues a redundant request to a second replica if the
// first has not answered within Delay — the "low latency via
// redundancy" technique (§3.4, ref [50]). Zero Delay disables hedging.
type HedgePolicy struct {
	Delay time.Duration
}

// LBPolicy names a load-balancing algorithm.
type LBPolicy string

// Supported load-balancing policies.
const (
	LBRoundRobin   LBPolicy = "round_robin"
	LBRandom       LBPolicy = "random"
	LBLeastRequest LBPolicy = "least_request"
	LBEWMA         LBPolicy = "ewma" // latency-aware adaptive replica selection (§3.4, ref [30])
)

// ControlPlane is the mesh's centralized configuration authority:
// service discovery (via the cluster), traffic policy, and security
// policy, pushed to sidecars. By default propagation is instantaneous
// shared state; EnableDistribution switches to xDS-style simulated
// pushes where each sidecar routes on its own possibly-stale snapshot.
type ControlPlane struct {
	mesh    *Mesh
	rules   map[string]*RouteRule
	lb      map[string]LBPolicy
	retry   map[string]RetryPolicy
	breaker map[string]CircuitBreakerPolicy
	hedge   map[string]HedgePolicy
	// authz[dst] = set of allowed source services; absent dst = allow
	// all (permissive mode).
	authz     map[string]map[string]bool
	fault     map[string]FaultPolicy
	mirror    map[string]MirrorPolicy
	rate      map[string]RateLimitPolicy
	admission map[string]AdmissionPolicy
	health    map[string]HealthCheckPolicy
	outlier   map[string]OutlierPolicy
	locality  map[string]LocalityPolicy
	fallback  map[string]FallbackPolicy

	certs      map[uint64]*Cert
	certSerial uint64
	strictMTLS bool

	// pushDelay models configuration propagation: mutations made
	// through the Set* methods take effect this long after the call
	// (0 = instantaneous, the default). With distribution enabled the
	// delay is expressed as real push suppression instead (see
	// SetPushDelay).
	pushDelay time.Duration

	// dist is non-nil once EnableDistribution has switched the mesh to
	// simulated config propagation; fed replaces it in per-region
	// (federated) mode.
	dist *distributor
	fed  *federation

	version uint64
}

func newControlPlane(m *Mesh) *ControlPlane {
	return &ControlPlane{
		mesh:      m,
		rules:     make(map[string]*RouteRule),
		lb:        make(map[string]LBPolicy),
		retry:     make(map[string]RetryPolicy),
		breaker:   make(map[string]CircuitBreakerPolicy),
		hedge:     make(map[string]HedgePolicy),
		authz:     make(map[string]map[string]bool),
		fault:     make(map[string]FaultPolicy),
		mirror:    make(map[string]MirrorPolicy),
		rate:      make(map[string]RateLimitPolicy),
		admission: make(map[string]AdmissionPolicy),
		health:    make(map[string]HealthCheckPolicy),
		outlier:   make(map[string]OutlierPolicy),
		locality:  make(map[string]LocalityPolicy),
		fallback:  make(map[string]FallbackPolicy),
		certs:     make(map[uint64]*Cert),
	}
}

// Version returns the configuration version (bumped on every change).
func (cp *ControlPlane) Version() uint64 { return cp.version }

func (cp *ControlPlane) bump() { cp.version++ }

// SetPushDelay models control-plane staleness: in instant-propagation
// mode, subsequent configuration changes take effect only after d —
// the xDS-style lag between "operator applied config" and "every
// sidecar acts on it". With distribution enabled, the delay becomes
// real push suppression: the distributor holds staged updates back by
// d, so sidecars keep routing on their old snapshots. Zero restores
// normal propagation.
func (cp *ControlPlane) SetPushDelay(d time.Duration) {
	if d < 0 {
		d = 0
	}
	if ds := cp.distributors(); len(ds) > 0 {
		for _, dist := range ds {
			dist.srv.SetHold(d)
		}
		return
	}
	cp.pushDelay = d
}

// Distributed reports whether simulated config distribution is
// enabled (single or federated).
func (cp *ControlPlane) Distributed() bool { return len(cp.distributors()) > 0 }

// CrashDistribution kills every distributing control-plane process:
// the pod drops off the network, in-flight push connections die with
// its sockets, and the ctrlplane server loses all volatile push state
// (ctrlplane.Server.Crash). Sidecars keep routing on their
// last-acknowledged snapshots — static stability — while
// configuration changes made during the outage accumulate in the
// resource store for the recovery resync.
func (cp *ControlPlane) CrashDistribution() {
	for _, d := range cp.distributors() {
		d.crash()
	}
}

// RecoverDistribution restarts crashed control-plane processes into a
// new epoch: the pods rejoin the network and every subscriber is
// full-resynced through the admission window.
func (cp *ControlPlane) RecoverDistribution() {
	for _, d := range cp.distributors() {
		d.recover()
	}
}

// ResubscribePod re-registers a restarted pod's sidecar with its
// distributing control plane — the fresh proxy process of a real
// restart re-subscribes (idempotently replacing the old registration)
// and blocks on a new bootstrap fetch. When the control plane is down
// the proxy comes up on the sidecar's last-good snapshot instead and
// is resynced after recovery. No-op in instant-propagation mode or
// for pods without sidecars.
func (cp *ControlPlane) ResubscribePod(name string) {
	sc := cp.mesh.sidecars[name]
	if sc == nil || !cp.Distributed() {
		return
	}
	cp.distributorFor(sc.pod).reregister(sc)
}

// apply runs a validated mutation for service now or after the push
// delay, then redistributes the service's resource when distribution
// is enabled.
func (cp *ControlPlane) apply(service string, mutate func()) {
	run := func() {
		mutate()
		cp.bump()
		for _, d := range cp.distributors() {
			d.refreshService(service)
		}
	}
	if cp.pushDelay <= 0 {
		run()
		return
	}
	cp.mesh.sched.After(cp.pushDelay, run)
}

// SetRouteRule installs (replacing) the routing rule for a service.
func (cp *ControlPlane) SetRouteRule(r RouteRule) {
	if r.Service == "" {
		panic("mesh: route rule needs a service")
	}
	for _, w := range r.Weights {
		if w.Weight <= 0 {
			panic("mesh: route weights must be positive")
		}
	}
	cp.apply(r.Service, func() { cp.rules[r.Service] = &r })
}

// RouteRuleFor returns the service's rule, or nil.
func (cp *ControlPlane) RouteRuleFor(service string) *RouteRule { return cp.rules[service] }

// ClearRouteRule removes a service's routing rule.
func (cp *ControlPlane) ClearRouteRule(service string) {
	cp.apply(service, func() { delete(cp.rules, service) })
}

// SetLBPolicy selects the load balancer for a service.
func (cp *ControlPlane) SetLBPolicy(service string, p LBPolicy) {
	switch p {
	case LBRoundRobin, LBRandom, LBLeastRequest, LBEWMA:
	default:
		panic(fmt.Sprintf("mesh: unknown LB policy %q", p))
	}
	cp.apply(service, func() { cp.lb[service] = p })
}

// LBPolicyFor returns the service's LB policy (round robin by default).
func (cp *ControlPlane) LBPolicyFor(service string) LBPolicy {
	if p, ok := cp.lb[service]; ok {
		return p
	}
	return LBRoundRobin
}

// SetRetryPolicy configures retries for a service.
func (cp *ControlPlane) SetRetryPolicy(service string, p RetryPolicy) {
	cp.apply(service, func() { cp.retry[service] = p })
}

// RetryPolicyFor returns the service's retry policy.
func (cp *ControlPlane) RetryPolicyFor(service string) RetryPolicy {
	if p, ok := cp.retry[service]; ok {
		return p
	}
	return DefaultRetryPolicy
}

// SetCircuitBreaker configures ejection for a service's endpoints.
func (cp *ControlPlane) SetCircuitBreaker(service string, p CircuitBreakerPolicy) {
	cp.apply(service, func() { cp.breaker[service] = p })
}

// CircuitBreakerFor returns the service's circuit-breaker policy.
func (cp *ControlPlane) CircuitBreakerFor(service string) CircuitBreakerPolicy {
	if p, ok := cp.breaker[service]; ok {
		return p
	}
	return DefaultCircuitBreaker
}

// SetHealthCheck configures active health checking for a service's
// endpoints. A zero policy disables it.
func (cp *ControlPlane) SetHealthCheck(service string, p HealthCheckPolicy) {
	if p.Interval < 0 {
		panic("mesh: health-check interval must be >= 0")
	}
	cp.apply(service, func() { cp.health[service] = p })
}

// HealthCheckFor returns the service's health-check policy (disabled
// by default).
func (cp *ControlPlane) HealthCheckFor(service string) HealthCheckPolicy {
	return cp.health[service]
}

// SetOutlierPolicy configures passive outlier detection for a
// service's endpoints. A zero policy disables it.
func (cp *ControlPlane) SetOutlierPolicy(service string, p OutlierPolicy) {
	if p.FailureThreshold < 0 || p.FailureThreshold > 1 {
		panic("mesh: outlier FailureThreshold must be in [0, 1]")
	}
	if p.PanicThreshold < 0 || p.PanicThreshold > 1 {
		panic("mesh: outlier PanicThreshold must be in [0, 1]")
	}
	cp.apply(service, func() { cp.outlier[service] = p })
}

// OutlierFor returns the service's outlier policy (disabled by
// default).
func (cp *ControlPlane) OutlierFor(service string) OutlierPolicy {
	return cp.outlier[service]
}

// SetLocalityPolicy configures zone-aware endpoint selection for a
// service. A zero policy disables locality (the default).
func (cp *ControlPlane) SetLocalityPolicy(service string, p LocalityPolicy) {
	switch p.Mode {
	case LocalityDisabled, LocalityStrict, LocalityFailover,
		LocalityRegionOnly, LocalityLadder:
	default:
		panic(fmt.Sprintf("mesh: unknown locality mode %q", p.Mode))
	}
	if p.OverprovisioningFactor < 0 {
		panic("mesh: locality OverprovisioningFactor must be >= 0")
	}
	if p.PanicThreshold < 0 || p.PanicThreshold > 1 {
		panic("mesh: locality PanicThreshold must be in [0, 1]")
	}
	cp.apply(service, func() { cp.locality[service] = p })
}

// LocalityFor returns the service's locality policy (disabled by
// default).
func (cp *ControlPlane) LocalityFor(service string) LocalityPolicy {
	return cp.locality[service]
}

// SetFallbackPolicy configures graceful degradation for calls to a
// service. A zero policy disables it.
func (cp *ControlPlane) SetFallbackPolicy(service string, p FallbackPolicy) {
	cp.apply(service, func() { cp.fallback[service] = p })
}

// FallbackFor returns the service's fallback policy (disabled by
// default).
func (cp *ControlPlane) FallbackFor(service string) FallbackPolicy {
	return cp.fallback[service]
}

// SetHedgePolicy configures redundant requests for a service.
func (cp *ControlPlane) SetHedgePolicy(service string, p HedgePolicy) {
	cp.apply(service, func() { cp.hedge[service] = p })
}

// HedgePolicyFor returns the service's hedging policy (disabled by
// default).
func (cp *ControlPlane) HedgePolicyFor(service string) HedgePolicy { return cp.hedge[service] }

// AllowCalls authorizes src to call dst. The first AllowCalls for a dst
// switches it from permissive (allow all) to an explicit allow-list.
func (cp *ControlPlane) AllowCalls(src, dst string) {
	cp.apply(dst, func() {
		set := cp.authz[dst]
		if set == nil {
			set = make(map[string]bool)
			cp.authz[dst] = set
		}
		set[src] = true
	})
}

// Authorized reports whether src may call dst under current policy.
func (cp *ControlPlane) Authorized(src, dst string) bool {
	set, restricted := cp.authz[dst]
	if !restricted {
		return true
	}
	return set[src]
}
