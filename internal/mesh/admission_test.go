package mesh

import (
	"strconv"
	"testing"
	"time"

	"meshlayer/internal/cluster"
	"meshlayer/internal/httpsim"
	"meshlayer/internal/metrics"
	"meshlayer/internal/trace"
)

func TestAdmissionShedsOverload(t *testing.T) {
	tb := buildBed(t, Config{SidecarDelayMean: -1}, func(pod *cluster.Pod, req *httpsim.Request, respond func(*httpsim.Response)) {
		pod.Exec(20*time.Millisecond, func() { respond(httpsim.NewResponse(httpsim.StatusOK)) })
	})
	cp := tb.m.ControlPlane()
	// Sheds are deliberate fast-fails; retrying them re-amplifies load.
	cp.SetRetryPolicy("frontend", RetryPolicy{})
	cp.SetAdmissionPolicy("frontend", AdmissionPolicy{
		Enabled:            true,
		InitialConcurrency: 1,
		MaxConcurrency:     1,
		QueueLimit:         2,
		QueueTarget:        time.Second, // delay law out of the way
	})

	codes := map[int]int{}
	for i := 0; i < 10; i++ {
		tb.gw.Serve(extReq("/x"), func(r *httpsim.Response, err error) {
			if err != nil {
				t.Fatal(err)
			}
			codes[r.Status]++
		})
	}
	tb.sched.Run()

	// 1 inflight + 2 queued survive; the rest shed as queue-full.
	if codes[httpsim.StatusOK] != 3 || codes[httpsim.StatusServiceUnavailable] != 7 {
		t.Fatalf("codes = %v, want 3x200 7x503", codes)
	}
	shed := tb.m.Metrics().Counter("mesh_admission_shed_total",
		metrics.Labels{"service": "frontend", "class": "ls", "reason": "queue_full"}).Value()
	if shed != 7 {
		t.Fatalf("shed counter = %d, want 7", shed)
	}
}

func TestAdmissionLSDisplacesQueuedLI(t *testing.T) {
	tb := buildBed(t, Config{SidecarDelayMean: -1}, func(pod *cluster.Pod, req *httpsim.Request, respond func(*httpsim.Response)) {
		pod.Exec(50*time.Millisecond, func() { respond(httpsim.NewResponse(httpsim.StatusOK)) })
	})
	cp := tb.m.ControlPlane()
	cp.SetRetryPolicy("frontend", RetryPolicy{})
	cp.SetAdmissionPolicy("frontend", AdmissionPolicy{
		Enabled:            true,
		InitialConcurrency: 1,
		MaxConcurrency:     1,
		QueueLimit:         1,
		QueueTarget:        time.Second,
	})

	serve := func(at time.Duration, prio string, got map[string]int) {
		tb.sched.At(at, func() {
			r := extReq("/x")
			if prio != "" {
				r.Headers.Set(HeaderPriority, prio)
			}
			tb.gw.Serve(r, func(resp *httpsim.Response, err error) {
				if err != nil {
					t.Fatal(err)
				}
				got[prio+":"+strconv.Itoa(resp.Status)]++
			})
		})
	}
	got := map[string]int{}
	serve(0, PriorityLow, got)                   // dispatched (slot free)
	serve(1*time.Millisecond, PriorityLow, got)  // queued
	serve(2*time.Millisecond, PriorityHigh, got) // full: displaces the queued LI
	tb.sched.Run()

	if got["low:200"] != 1 || got["low:503"] != 1 || got["high:200"] != 1 {
		t.Fatalf("got = %v; want the queued LI displaced by the LS arrival", got)
	}
}

func TestDeadlineCancelsChildCall(t *testing.T) {
	backendSaw := 0
	tb := buildBed(t, Config{SidecarDelayMean: -1}, func(pod *cluster.Pod, req *httpsim.Request, respond func(*httpsim.Response)) {
		backendSaw++
		respond(httpsim.NewResponse(httpsim.StatusOK))
	})
	// Frontend burns 10ms before calling backend; the 5ms budget is
	// spent by then, so the sidecar cancels the child call locally.
	tb.fe.RegisterApp(func(req *httpsim.Request, respond func(*httpsim.Response)) {
		tb.sched.After(10*time.Millisecond, func() {
			child := httpsim.NewRequest("GET", req.Path)
			child.Headers.Set(HeaderHost, "backend")
			child.Headers.Set(trace.HeaderRequestID, req.Headers.Get(trace.HeaderRequestID))
			tb.fe.Call(child, func(resp *httpsim.Response, err error) {
				if err != nil {
					respond(httpsim.NewResponse(httpsim.StatusBadGateway))
					return
				}
				respond(resp.Clone())
			})
		})
	})
	// No retries: a deadline 504 would otherwise be retried by the
	// gateway, re-running the cancel.
	tb.m.ControlPlane().SetRetryPolicy("frontend", RetryPolicy{})
	tb.m.ControlPlane().SetAdmissionPolicy("frontend", AdmissionPolicy{Budget: 5 * time.Millisecond})

	var status int
	tb.gw.Serve(extReq("/x"), func(r *httpsim.Response, err error) {
		if err != nil {
			t.Fatal(err)
		}
		status = r.Status
	})
	tb.sched.Run()

	if status != httpsim.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", status)
	}
	if backendSaw != 0 {
		t.Fatalf("backend saw %d requests; the cancelled call must never leave the sidecar", backendSaw)
	}
	cancelled := tb.m.Metrics().Counter("mesh_admission_cancelled_total",
		metrics.Labels{"service": "frontend", "upstream": "backend"}).Value()
	if cancelled != 1 {
		t.Fatalf("cancelled counter = %d, want 1", cancelled)
	}
}

func TestBudgetDecrementsAcrossHops(t *testing.T) {
	var backendBudget string
	tb := buildBed(t, Config{}, func(pod *cluster.Pod, req *httpsim.Request, respond func(*httpsim.Response)) {
		backendBudget = req.Headers.Get(HeaderBudget)
		respond(httpsim.NewResponse(httpsim.StatusOK))
	})
	budget := 500 * time.Millisecond
	tb.m.ControlPlane().SetAdmissionPolicy("frontend", AdmissionPolicy{Budget: budget})

	var status int
	tb.gw.Serve(extReq("/x"), func(r *httpsim.Response, err error) {
		if err != nil {
			t.Fatal(err)
		}
		status = r.Status
	})
	tb.sched.Run()

	if status != httpsim.StatusOK {
		t.Fatalf("status = %d", status)
	}
	if backendBudget == "" {
		t.Fatal("backend saw no budget header")
	}
	us, err := strconv.ParseInt(backendBudget, 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	if us <= 0 || us >= budget.Microseconds() {
		t.Fatalf("backend budget = %dus; want decremented below %dus but positive", us, budget.Microseconds())
	}
}
