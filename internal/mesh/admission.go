package mesh

import (
	"fmt"
	"strconv"
	"time"

	"meshlayer/internal/admission"
	"meshlayer/internal/httpsim"
	"meshlayer/internal/metrics"
	"meshlayer/internal/trace"
)

// AdmissionPolicy configures a service's overload protection: the
// bounded two-class priority queue, the adaptive concurrency limiter,
// and the end-to-end deadline budget stamped at the ingress. Zero
// numeric fields select the admission package defaults. The policy is
// pushed per destination service, like every other traffic policy.
type AdmissionPolicy struct {
	// Enabled turns queueing + concurrency limiting on for the
	// service's sidecars. Deadline propagation works regardless: any
	// request carrying a budget header is tracked and cancelled when
	// exhausted, so budgets can be deployed before (or without)
	// admission control proper.
	Enabled bool

	// QueueLimit bounds the total queued requests per sidecar.
	QueueLimit int
	// QueueTarget is the low-importance (LI) sojourn-time target for
	// CoDel-style delay shedding.
	QueueTarget time.Duration
	// QueueLSTarget is the latency-sensitive (LS) class's last-resort
	// sojourn target (default 20x QueueTarget).
	QueueLSTarget time.Duration
	// QueueInterval is how long a class's queue delay must stay above
	// target before shedding starts.
	QueueInterval time.Duration

	// InitialConcurrency seeds the adaptive limiter; Min/MaxConcurrency
	// clamp it.
	InitialConcurrency int
	MinConcurrency     int
	MaxConcurrency     int
	// Tolerance is the latency multiple over the no-load floor the
	// limiter accepts before backing off.
	Tolerance float64
	// Window is the limiter's samples-per-adjustment count.
	Window int

	// Budget is the end-to-end deadline the gateway stamps on external
	// requests bound for this service. Zero disables stamping.
	Budget time.Duration
}

// SetAdmissionPolicy installs (replacing) the admission policy for a
// service. Like all policy pushes it honours the control plane's push
// delay.
func (cp *ControlPlane) SetAdmissionPolicy(service string, p AdmissionPolicy) {
	if service == "" {
		panic("mesh: admission policy needs a service")
	}
	cp.apply(service, func() { cp.admission[service] = p })
}

// AdmissionPolicyFor returns the service's admission policy (disabled
// zero value by default).
func (cp *ControlPlane) AdmissionPolicyFor(service string) AdmissionPolicy {
	return cp.admission[service]
}

// classOf maps the request's provenance-carried priority to an
// admission class: explicitly low-priority traffic is load-sheddable
// (LI); everything else — including unclassified traffic — is treated
// as latency-sensitive (LS), matching the fail-open posture of the
// ingress classifier.
func classOf(req *httpsim.Request) admission.Class {
	if req.Headers.Get(HeaderPriority) == PriorityLow {
		return admission.LI
	}
	return admission.LS
}

// admissionFor returns the controller matching the pushed policy,
// rebuilding it when the policy changed, or nil when admission is
// disabled. Rebuilding discards learned limiter state — acceptable,
// since policy pushes are rare operator actions.
func (sc *Sidecar) admissionFor(p AdmissionPolicy) *admission.Controller {
	if !p.Enabled {
		sc.admitCtl, sc.admitPol = nil, p
		return nil
	}
	if sc.admitCtl == nil || sc.admitPol != p {
		sc.admitPol = p
		sc.admitCtl = admission.New(admission.Config{
			Queue: admission.QueueConfig{
				Limit:    p.QueueLimit,
				Target:   p.QueueTarget,
				LSTarget: p.QueueLSTarget,
				Interval: p.QueueInterval,
			},
			Limiter: admission.LimiterConfig{
				Initial:   p.InitialConcurrency,
				Min:       p.MinConcurrency,
				Max:       p.MaxConcurrency,
				Tolerance: p.Tolerance,
				Window:    p.Window,
			},
			Now: sc.mesh.sched.Now,
		})
	}
	return sc.admitCtl
}

// recordInboundDeadline reads the remaining-budget header stamped by
// the previous hop and records the absolute expiry under the request's
// trace ID, so this sidecar's outbound path can decrement (or cancel)
// the child calls of this request. Returns the effective expiry (0 =
// no deadline). The earliest observation for a trace wins: retries and
// hedges must not refresh the budget.
func (sc *Sidecar) recordInboundDeadline(req *httpsim.Request) time.Duration {
	b := req.Headers.Get(HeaderBudget)
	if b == "" {
		return 0
	}
	us, err := strconv.ParseInt(b, 10, 64)
	if err != nil {
		return 0
	}
	now := sc.mesh.sched.Now()
	expiry := now + time.Duration(us)*time.Microsecond
	if us <= 0 {
		expiry = now
	}
	if tid := req.Headers.Get(trace.HeaderRequestID); tid != "" {
		sc.deadlines.Observe(tid, expiry, now)
		if e, ok := sc.deadlines.Expiry(tid); ok {
			expiry = e
		}
	}
	return expiry
}

// applyOutboundDeadline enforces the end-to-end budget on one outbound
// call: when the calling request's budget is exhausted the call is
// cancelled locally with 504 — the wasted downstream work the paper's
// cross-layer view is meant to avoid — and otherwise the budget header
// is rewritten to the remaining amount so the next hop sees a budget
// net of this hop's queueing and service time. Reports whether the
// call may proceed.
func (sc *Sidecar) applyOutboundDeadline(c *call) bool {
	tid := c.req.Headers.Get(trace.HeaderRequestID)
	if tid == "" {
		return true
	}
	now := sc.mesh.sched.Now()
	rem, ok := sc.deadlines.Remaining(tid, now)
	if !ok {
		return true
	}
	if rem <= 0 {
		sc.mesh.metrics.Counter(MetricAdmissionCancelledTotal,
			metrics.Labels{"service": sc.service, "upstream": c.service}).Inc()
		c.finish(httpsim.NewResponse(httpsim.StatusGatewayTimeout), nil)
		return false
	}
	c.req.Headers.Set(HeaderBudget, strconv.FormatInt(rem.Microseconds(), 10))
	return true
}

// shedInbound fast-fails a request the admission controller refused:
// 503 for load sheds, 504 for exhausted deadlines.
func (sc *Sidecar) shedInbound(cls admission.Class, why admission.Reason, respond func(*httpsim.Response)) {
	status := httpsim.StatusServiceUnavailable
	if why == admission.ShedDeadline {
		status = httpsim.StatusGatewayTimeout
	}
	m := sc.mesh
	m.metrics.Counter(MetricAdmissionShedTotal,
		metrics.Labels{"service": sc.service, "class": cls.String(), "reason": why.String()}).Inc()
	m.metrics.Counter(MetricRequestsTotal,
		metrics.Labels{"service": sc.service, "direction": "inbound", "code": fmt.Sprint(status)}).Inc()
	respond(httpsim.NewResponse(status))
}

// observeAdmission exports the controller's queue depths and current
// concurrency limit as gauges.
func (sc *Sidecar) observeAdmission(ctl *admission.Controller) {
	m := sc.mesh
	for _, cls := range []admission.Class{admission.LS, admission.LI} {
		m.metrics.Gauge(MetricAdmissionQueueDepth,
			metrics.Labels{"service": sc.service, "class": cls.String()}).
			Set(float64(ctl.Queue().Depth(cls)))
	}
	m.metrics.Gauge(MetricAdmissionLimit,
		metrics.Labels{"service": sc.service}).Set(float64(ctl.Limiter().Limit()))
}

// AdmissionController exposes the sidecar's live controller (nil when
// admission is disabled) — introspection for tests and meshbench.
func (sc *Sidecar) AdmissionController() *admission.Controller { return sc.admitCtl }
