package mesh

import (
	"testing"
	"time"

	"meshlayer/internal/cluster"
	"meshlayer/internal/httpsim"
)

func TestServeWithDeadlineFires(t *testing.T) {
	tb := buildBed(t, Config{}, func(pod *cluster.Pod, req *httpsim.Request, respond func(*httpsim.Response)) {
		// Never respond: the external deadline must fire.
	})
	// Disable mesh retries so only the caller's deadline applies.
	tb.m.ControlPlane().SetRetryPolicy("backend", RetryPolicy{})
	tb.m.ControlPlane().SetRetryPolicy("frontend", RetryPolicy{})
	var gotErr error
	fired := time.Duration(0)
	tb.gw.ServeWithDeadline(extReq("/x"), 500*time.Millisecond, func(r *httpsim.Response, err error) {
		gotErr = err
		fired = tb.sched.Now()
	})
	tb.sched.RunUntil(10 * time.Second)
	if gotErr != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", gotErr)
	}
	if fired != 500*time.Millisecond {
		t.Fatalf("deadline fired at %v", fired)
	}
}

func TestServeWithDeadlineFastResponseWins(t *testing.T) {
	tb := buildBed(t, Config{}, echoBackend)
	var got *httpsim.Response
	calls := 0
	tb.gw.ServeWithDeadline(extReq("/x"), 5*time.Second, func(r *httpsim.Response, err error) {
		calls++
		if err != nil {
			t.Fatal(err)
		}
		got = r
	})
	tb.sched.Run()
	if got == nil || got.Status != httpsim.StatusOK {
		t.Fatalf("got %+v", got)
	}
	if calls != 1 {
		t.Fatalf("callback fired %d times", calls)
	}
}

func TestPathClassifierLongestPrefixWins(t *testing.T) {
	c := PathClassifier(map[string]string{
		"/api":       PriorityLow,
		"/api/users": PriorityHigh,
	}, "")
	req := httpsim.NewRequest("GET", "/api/users/42")
	c(req)
	if got := req.Headers.Get(HeaderPriority); got != PriorityHigh {
		t.Fatalf("priority = %q, want high (longest prefix)", got)
	}
	req2 := httpsim.NewRequest("GET", "/api/batch")
	c(req2)
	if got := req2.Headers.Get(HeaderPriority); got != PriorityLow {
		t.Fatalf("priority = %q, want low", got)
	}
	req3 := httpsim.NewRequest("GET", "/other")
	c(req3)
	if req3.Headers.Has(HeaderPriority) {
		t.Fatal("unmatched path got a priority with empty default")
	}
}

func TestGatewayAssignsUniqueTraceIDs(t *testing.T) {
	tb := buildBed(t, Config{}, echoBackend)
	seen := map[string]bool{}
	for i := 0; i < 5; i++ {
		req := extReq("/x")
		tb.gw.Serve(req, func(*httpsim.Response, error) {})
		id := req.Headers.Get("x-request-id")
		if id == "" || seen[id] {
			t.Fatalf("trace id %q missing or duplicated", id)
		}
		seen[id] = true
	}
	tb.sched.Run()
}
