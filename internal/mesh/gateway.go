package mesh

import (
	"sort"
	"strconv"
	"strings"
	"time"

	"meshlayer/internal/cluster"
	"meshlayer/internal/httpsim"
	"meshlayer/internal/metrics"
	"meshlayer/internal/trace"
)

// Classifier assigns the performance objective of an external request
// at the ingress — the paper's design component (1). It typically sets
// HeaderPriority from the request's path or source.
type Classifier func(req *httpsim.Request)

// Gateway is the mesh's ingress: external requests enter here, get a
// trace identity and a classification, and are routed into the mesh.
type Gateway struct {
	mesh       *Mesh
	sc         *Sidecar
	classifier Classifier
	served     uint64
}

// NewGateway installs an ingress gateway on the pod (which receives a
// sidecar if it does not have one yet).
func (m *Mesh) NewGateway(pod *cluster.Pod) *Gateway {
	sc := m.sidecars[pod.Name()]
	if sc == nil {
		sc = m.InjectSidecar(pod)
	}
	return &Gateway{mesh: m, sc: sc}
}

// Sidecar returns the gateway's sidecar.
func (g *Gateway) Sidecar() *Sidecar { return g.sc }

// SetClassifier installs the ingress classifier.
func (g *Gateway) SetClassifier(c Classifier) { g.classifier = c }

// Served returns the number of external requests admitted.
func (g *Gateway) Served() uint64 { return g.served }

// Serve admits an external request: it mints the x-request-id that
// ties the whole distributed trace (and the provenance chain) together,
// runs the classifier, records the root span, and routes the request
// to the service named by its "host" header. cb fires exactly once
// with the final response or error.
func (g *Gateway) Serve(req *httpsim.Request, cb func(*httpsim.Response, error)) {
	m := g.mesh
	g.served++

	traceID := m.tracer.NewTraceID()
	req.Headers.Set(trace.HeaderRequestID, traceID)
	if g.classifier != nil {
		g.classifier(req)
	}
	// Stamp the end-to-end deadline budget (unless the external caller
	// supplied one) from the destination service's admission policy.
	if !req.Headers.Has(HeaderBudget) {
		if b := g.sc.admissionPolicyFor(req.Headers.Get(HeaderHost)).Budget; b > 0 {
			req.Headers.Set(HeaderBudget, strconv.FormatInt(b.Microseconds(), 10))
		}
	}

	root := &trace.Span{
		TraceID: traceID,
		SpanID:  m.tracer.NewSpanID(),
		Service: "ingress-gateway",
		Name:    req.Method + " " + req.Path,
		Start:   m.sched.Now(),
	}
	root.SetTag("direction", "server")
	if p := req.Headers.Get(HeaderPriority); p != "" {
		root.SetTag("priority", p)
	}
	req.Headers.Set(trace.HeaderSpanID, formatSpanID(root.SpanID))

	start := m.sched.Now()
	g.sc.Call(req, func(resp *httpsim.Response, err error) {
		root.End = m.sched.Now()
		m.tracer.Record(root)
		labels := metrics.Labels{"service": "ingress-gateway", "direction": "inbound"}
		if p := req.Headers.Get(HeaderPriority); p != "" {
			labels["priority"] = p
		}
		m.metrics.ObserveDuration(MetricGatewayRequestDuration, labels, m.sched.Now()-start)
		// Degraded-but-served accounting at the edge: the provenance
		// header distinguishes a full success from a response some
		// fallback papered over (E17's degraded-response fraction).
		if err == nil && resp.Headers.Get(HeaderDegraded) != "" {
			m.metrics.Counter(MetricGatewayDegradedTotal,
				metrics.Labels{"origin": resp.Headers.Get(HeaderDegraded)}).Inc()
		}
		cb(resp, err)
	})
}

// PathClassifier returns a classifier assigning priorities by path
// prefix, defaulting to def for unmatched paths. It is the common
// concrete form of ingress classification: user-facing paths are
// latency-sensitive, batch/analytics paths are not.
func PathClassifier(prefixes map[string]string, def string) Classifier {
	// Longest-prefix-first, ties broken lexicographically, so matching
	// is deterministic regardless of map iteration order.
	ordered := make([]string, 0, len(prefixes))
	for p := range prefixes {
		ordered = append(ordered, p)
	}
	sort.Slice(ordered, func(i, j int) bool {
		if len(ordered[i]) != len(ordered[j]) {
			return len(ordered[i]) > len(ordered[j])
		}
		return ordered[i] < ordered[j]
	})
	return func(req *httpsim.Request) {
		for _, prefix := range ordered {
			if strings.HasPrefix(req.Path, prefix) {
				req.Headers.Set(HeaderPriority, prefixes[prefix])
				return
			}
		}
		if def != "" {
			req.Headers.Set(HeaderPriority, def)
		}
	}
}

// Deadline wraps cb so it fires with ErrTimeout if no response arrives
// within d — the external client's patience, independent of mesh retry
// policy.
func (g *Gateway) ServeWithDeadline(req *httpsim.Request, d time.Duration, cb func(*httpsim.Response, error)) {
	done := false
	timer := g.mesh.sched.After(d, func() {
		if !done {
			done = true
			cb(nil, ErrTimeout)
		}
	})
	g.Serve(req, func(resp *httpsim.Response, err error) {
		if done {
			return
		}
		done = true
		timer.Cancel()
		cb(resp, err)
	})
}
