package mesh

import (
	"math"
	"sort"
	"testing"
	"time"

	"meshlayer/internal/cluster"
	"meshlayer/internal/httpsim"
	"meshlayer/internal/simnet"
	"meshlayer/internal/trace"
)

// Tests for the priority failover ladder and the east-west gateway
// data path: tier ordering, per-tier panic fail-open, degradation for
// callers without locality labels, and end-to-end provenance across
// the gateway pair.

func TestLadderWeightsMultiTier(t *testing.T) {
	cases := []struct {
		name  string
		fracs []float64
		ovp   float64
		want  []float64
	}{
		{"first tier healthy takes all", []float64{1, 1, 1, 1}, 1.4, []float64{1, 0, 0, 0}},
		{"dead tiers are skipped", []float64{0, 0, 1, 1}, 1.4, []float64{0, 0, 1, 0}},
		{"spill cascades in order", []float64{0.5, 1, 1, 1}, 1.4, []float64{0.7, 0.3, 0, 0}},
		{"each tier absorbs its health", []float64{0.5, 0.3, 1, 1}, 1, []float64{0.5, 0.3, 0.2, 0}},
		{"ladder exhausted normalizes", []float64{0.2, 0.1, 0, 0}, 1, []float64{2.0 / 3, 1.0 / 3, 0, 0}},
		{"everything dead", []float64{0, 0, 0, 0}, 1.4, []float64{0, 0, 0, 0}},
	}
	for _, c := range cases {
		got := LadderWeights(c.fracs, c.ovp)
		for i := range c.want {
			if math.Abs(got[i]-c.want[i]) > 1e-9 {
				t.Errorf("%s: LadderWeights(%v, %v) = %v, want %v", c.name, c.fracs, c.ovp, got, c.want)
				break
			}
		}
	}
}

// fedBed wires gateway -> frontend (region-a/zone-a1) -> backends
// spread over three regions, each region with an east-west gateway.
// Region-a holds zones zone-a1 and zone-a2; regions b and c hold
// zone-b1 and zone-c1.
type fedBed struct {
	sched *simnet.Scheduler
	cl    *cluster.Cluster
	m     *Mesh
	gw    *Gateway
	fe    *Sidecar
	hits  map[string]int
}

var fedRegions = []string{"region-a", "region-b", "region-c"}

func regionOfZone(zone string) string {
	switch zone[len("zone-")] {
	case 'a':
		return "region-a"
	case 'b':
		return "region-b"
	default:
		return "region-c"
	}
}

func buildFedBed(t *testing.T, backendZones map[string]string) *fedBed {
	t.Helper()
	s := simnet.NewScheduler()
	n := simnet.NewNetwork(s)
	cl := cluster.New(n)
	for _, r := range fedRegions {
		cl.AddRegion(r, cluster.DefaultWANLink)
	}
	for _, z := range []string{"zone-a1", "zone-a2", "zone-b1", "zone-c1"} {
		cl.AddZoneInRegion(z, regionOfZone(z), simnet.LinkConfig{})
	}

	// Unlike the zoned bed, the gateway must live inside a region: the
	// root bridge has no path to region spines (a severed WAN link is a
	// real partition), so a regionless pod would be unreachable.
	gwPod := cl.AddPod(cluster.PodSpec{Name: "gateway", Labels: map[string]string{"app": "gateway"}, Zone: "zone-a1"})
	fePod := cl.AddPod(cluster.PodSpec{Name: "frontend-1", Labels: map[string]string{"app": "frontend"}, Zone: "zone-a1"})
	bed := &fedBed{sched: s, cl: cl, hits: map[string]int{}}
	names := make([]string, 0, len(backendZones))
	for name := range backendZones {
		names = append(names, name)
	}
	sort.Strings(names)
	var bPods []*cluster.Pod
	for _, name := range names {
		bPods = append(bPods, cl.AddPod(cluster.PodSpec{
			Name: name, Labels: map[string]string{"app": "backend"}, Zone: backendZones[name],
		}))
	}
	var ewPods []*cluster.Pod
	for _, r := range fedRegions {
		svc := EWGatewayService(r)
		ewPods = append(ewPods, cl.AddPod(cluster.PodSpec{
			Name: svc, Labels: map[string]string{"app": svc}, Region: r,
		}))
		cl.AddService(svc, 9080, map[string]string{"app": svc})
	}
	cl.AddService("frontend", 9080, map[string]string{"app": "frontend"})
	cl.AddService("backend", 9080, map[string]string{"app": "backend"})

	m := New(cl, Config{Seed: 11})
	bed.m = m
	bed.gw = m.NewGateway(gwPod)
	bed.fe = m.InjectSidecar(fePod)
	bed.fe.RegisterApp(func(req *httpsim.Request, respond func(*httpsim.Response)) {
		child := httpsim.NewRequest("GET", req.Path)
		child.Headers.Set(HeaderHost, "backend")
		child.Headers.Set(trace.HeaderRequestID, req.Headers.Get(trace.HeaderRequestID))
		bed.fe.Call(child, func(resp *httpsim.Response, err error) {
			if err != nil {
				respond(httpsim.NewResponse(httpsim.StatusBadGateway))
				return
			}
			respond(resp.Clone())
		})
	})
	for _, p := range bPods {
		pod := p
		sc := m.InjectSidecar(pod)
		sc.RegisterApp(func(req *httpsim.Request, respond func(*httpsim.Response)) {
			bed.hits[pod.Name()]++
			respond(httpsim.NewResponse(httpsim.StatusOK))
		})
	}
	for _, p := range ewPods {
		m.NewEastWestGateway(p)
	}
	return bed
}

var defaultFedZones = map[string]string{
	"backend-a1": "zone-a1", "backend-a2": "zone-a2",
	"backend-b": "zone-b1", "backend-c": "zone-c1",
}

func (bed *fedBed) fireN(t *testing.T, n int, start, gap time.Duration, failures *int) {
	t.Helper()
	for i := 0; i < n; i++ {
		bed.sched.At(start+time.Duration(i)*gap, func() {
			bed.gw.Serve(extReq("/x"), func(resp *httpsim.Response, err error) {
				if failures != nil && (err != nil || resp.Status >= 500) {
					*failures++
				}
			})
		})
	}
}

func TestLadderPrefersCallerZone(t *testing.T) {
	bed := buildFedBed(t, defaultFedZones)
	bed.m.ControlPlane().SetLocalityPolicy("backend", LocalityPolicy{Mode: LocalityLadder})
	bed.fireN(t, 20, 0, 10*time.Millisecond, nil)
	bed.sched.Run()
	if bed.hits["backend-a1"] != 20 {
		t.Fatalf("hits = %v, want all 20 on the caller-zone backend", bed.hits)
	}
	if got := bed.m.Metrics().CounterTotal("mesh_cross_region_total"); got != 0 {
		t.Fatalf("cross-region selections = %d, want 0 with a healthy local zone", got)
	}
}

func TestLadderZoneDrainedStaysInRegion(t *testing.T) {
	bed := buildFedBed(t, defaultFedZones)
	bed.m.ControlPlane().SetLocalityPolicy("backend", LocalityPolicy{Mode: LocalityLadder})
	bed.cl.Pod("backend-a1").SetReady(false)
	bed.fireN(t, 20, 0, 10*time.Millisecond, nil)
	bed.sched.Run()
	if bed.hits["backend-a2"] != 20 {
		t.Fatalf("hits = %v, want all 20 on the same-region backend", bed.hits)
	}
	if got := bed.m.Metrics().CounterTotal("mesh_cross_region_total"); got != 0 {
		t.Fatalf("cross-region selections = %d, want 0 while the region has capacity", got)
	}
}

func TestLadderRegionDrainedCrossesWAN(t *testing.T) {
	bed := buildFedBed(t, defaultFedZones)
	bed.m.ControlPlane().SetLocalityPolicy("backend", LocalityPolicy{Mode: LocalityLadder})
	bed.cl.Pod("backend-a1").SetReady(false)
	bed.cl.Pod("backend-a2").SetReady(false)
	var failures, regionStamped int
	for i := 0; i < 20; i++ {
		bed.sched.At(time.Duration(i)*10*time.Millisecond, func() {
			bed.gw.Serve(extReq("/x"), func(resp *httpsim.Response, err error) {
				if err != nil || resp.Status >= 500 {
					failures++
					return
				}
				if resp.Headers.Get(HeaderRegion) != "" {
					regionStamped++
				}
			})
		})
	}
	bed.sched.Run()
	if failures != 0 {
		t.Fatalf("%d requests failed during region failover", failures)
	}
	if got := bed.hits["backend-b"] + bed.hits["backend-c"]; got != 20 {
		t.Fatalf("hits = %v, want all 20 absorbed by remote regions", bed.hits)
	}
	if bed.hits["backend-b"] == 0 || bed.hits["backend-c"] == 0 {
		t.Fatalf("hits = %v, want spread over both remote regions", bed.hits)
	}
	if regionStamped != 20 {
		t.Fatalf("%d/20 responses carried %s provenance", regionStamped, HeaderRegion)
	}
	mtr := bed.m.Metrics()
	if got := mtr.CounterTotal("mesh_cross_region_total"); got == 0 {
		t.Fatal("no cross-region selections recorded")
	}
	if mtr.CounterTotal("gateway_eastwest_egress_total") == 0 ||
		mtr.CounterTotal("gateway_eastwest_ingress_total") == 0 {
		t.Fatal("east-west gateway counters did not move")
	}
}

func TestRegionOnlyModeCollapsesWithRegion(t *testing.T) {
	bed := buildFedBed(t, defaultFedZones)
	bed.m.ControlPlane().SetLocalityPolicy("backend", LocalityPolicy{Mode: LocalityRegionOnly})
	bed.cl.Pod("backend-a1").SetReady(false)
	bed.cl.Pod("backend-a2").SetReady(false)
	var failures int
	bed.fireN(t, 10, 0, 10*time.Millisecond, &failures)
	bed.sched.Run()
	if failures != 10 {
		t.Fatalf("%d/10 requests failed, want all: region mode must not cross regions", failures)
	}
	if got := bed.m.Metrics().CounterTotal("mesh_cross_region_total"); got != 0 {
		t.Fatalf("cross-region selections = %d, want 0 in region-only mode", got)
	}
	if got := bed.hits["backend-b"] + bed.hits["backend-c"]; got != 0 {
		t.Fatalf("remote backends hit in region-only mode: %v", bed.hits)
	}
}

func TestLadderPanicThresholdFailsOpenWithinTier(t *testing.T) {
	// zone-a1 holds two backends, one marked unhealthy: its tier frac is
	// 0.5. With PanicThreshold 0.6 the tier fails open, so the sick host
	// keeps receiving its round-robin share; without it the sick host
	// must see nothing.
	zones := map[string]string{
		"backend-a1": "zone-a1", "backend-a1b": "zone-a1", "backend-a2": "zone-a2",
	}
	for _, panicOn := range []bool{true, false} {
		bed := buildFedBed(t, zones)
		pol := LocalityPolicy{Mode: LocalityLadder, OverprovisioningFactor: 1}
		if panicOn {
			pol.PanicThreshold = 0.6
		}
		bed.m.ControlPlane().SetLocalityPolicy("backend", pol)
		bed.fe.epState(bed.cl.Pod("backend-a1b").Addr()).unhealthy = true
		bed.fireN(t, 40, 0, 10*time.Millisecond, nil)
		bed.sched.Run()
		if panicOn && bed.hits["backend-a1b"] == 0 {
			t.Fatalf("panic fail-open sent nothing to the sick host: %v", bed.hits)
		}
		if !panicOn && bed.hits["backend-a1b"] != 0 {
			t.Fatalf("health filtering leaked %d hits to the sick host: %v",
				bed.hits["backend-a1b"], bed.hits)
		}
	}
}

func TestLadderRegionlessCallerDegradesZoneBlind(t *testing.T) {
	// A caller with neither zone nor region: even under the full ladder
	// policy its selection must take the exact pre-federation path —
	// zone-blind list, no gateway hops. (Selection only; such a pod has
	// no network path into the regions.)
	bed := buildFedBed(t, defaultFedZones)
	bed.m.ControlPlane().SetLocalityPolicy("backend", LocalityPolicy{Mode: LocalityLadder})
	probe := bed.m.InjectSidecar(bed.cl.AddPod(cluster.PodSpec{Name: "probe", Labels: map[string]string{"app": "probe"}}))
	eps := bed.cl.Service("backend").Endpoints()
	if got := probe.localitySelect("backend", eps); len(got) != len(eps) {
		t.Fatalf("regionless caller narrowed endpoints to %d, want %d (zone-blind)", len(got), len(eps))
	}
	ep, via := probe.pickTarget("backend", extReq("/x"), eps)
	if via != "" {
		t.Fatalf("regionless caller routed via region %q, want direct", via)
	}
	if ep == nil {
		t.Fatal("regionless caller got no endpoint")
	}
	if got := bed.m.Metrics().CounterTotal("mesh_cross_region_total"); got != 0 {
		t.Fatalf("cross-region selections = %d, want 0 for a regionless caller", got)
	}
}

func TestDegradedProvenanceAcrossGatewayHops(t *testing.T) {
	// Satellite check: a fallback synthesized on the far side of the
	// east-west pair must reach the edge with both its degraded and its
	// region provenance intact. Region-a's capacity is drained, so the
	// ladder sends traffic to region-b, where the serving backend's own
	// sidecar papers over a dead ratings dependency — the degraded
	// stamp then has to survive the ingress and egress gateway hops on
	// the way back (the header <-> request-id map alternation of
	// degrade.go, twice more than in PR 5).
	bed := buildFedBed(t, map[string]string{
		"backend-a1": "zone-a1", "backend-b": "zone-b1",
	})
	cp := bed.m.ControlPlane()
	cp.SetLocalityPolicy("backend", LocalityPolicy{Mode: LocalityLadder})
	cp.SetFallbackPolicy("ratings", FallbackPolicy{Enabled: true, After: 50 * time.Millisecond, BodyBytes: 64})
	bed.cl.Pod("backend-a1").SetReady(false)

	rtPod := bed.cl.AddPod(cluster.PodSpec{
		Name: "ratings-b", Labels: map[string]string{"app": "ratings"}, Zone: "zone-b1"})
	bed.cl.AddService("ratings", 9080, map[string]string{"app": "ratings"})
	bed.m.InjectSidecar(rtPod).RegisterApp(func(req *httpsim.Request, respond func(*httpsim.Response)) {
		respond(httpsim.NewResponse(httpsim.StatusOK))
	})
	rtPod.Partition(true)

	// backend-b consults ratings and composes a fresh response — its
	// sidecar must restore the degraded stamp it recorded.
	bsc := bed.m.Sidecar("backend-b")
	bsc.RegisterApp(func(req *httpsim.Request, respond func(*httpsim.Response)) {
		child := httpsim.NewRequest("GET", req.Path)
		child.Headers.Set(HeaderHost, "ratings")
		child.Headers.Set(trace.HeaderRequestID, req.Headers.Get(trace.HeaderRequestID))
		bsc.Call(child, func(resp *httpsim.Response, err error) {
			if err != nil {
				respond(httpsim.NewResponse(httpsim.StatusBadGateway))
				return
			}
			respond(httpsim.NewResponse(httpsim.StatusOK))
		})
	})

	var got *httpsim.Response
	bed.sched.At(0, func() {
		bed.gw.Serve(extReq("/x"), func(resp *httpsim.Response, err error) {
			if err != nil {
				t.Errorf("edge error: %v", err)
				return
			}
			got = resp
		})
	})
	bed.sched.RunUntil(5 * time.Second)
	if got == nil {
		t.Fatal("no response reached the edge")
	}
	if got.Status != httpsim.StatusOK {
		t.Fatalf("edge status = %d, want 200 (degraded)", got.Status)
	}
	if origin := got.Headers.Get(HeaderDegraded); origin != "ratings" {
		t.Fatalf("%s = %q, want ratings: degraded provenance lost across the gateway pair", HeaderDegraded, origin)
	}
	if r := got.Headers.Get(HeaderRegion); r != "region-b" {
		t.Fatalf("%s = %q, want region-b", HeaderRegion, r)
	}
	if bed.m.Metrics().CounterTotal("mesh_fallback_served_total") == 0 {
		t.Fatal("fallback counter did not move")
	}
}
