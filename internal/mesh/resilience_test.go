package mesh

import (
	"errors"
	"testing"
	"time"

	"meshlayer/internal/cluster"
	"meshlayer/internal/httpsim"
	"meshlayer/internal/simnet"
	"meshlayer/internal/transport"
)

func TestWeightedCanaryRouting(t *testing.T) {
	tb := buildBed(t, Config{Seed: 21}, echoBackend)
	tb.m.ControlPlane().SetRouteRule(RouteRule{
		Service: "backend",
		Weights: []WeightedSubset{
			{Subset: SubsetRef{Key: "version", Value: "v1"}, Weight: 90},
			{Subset: SubsetRef{Key: "version", Value: "v2"}, Weight: 10},
		},
	})
	counts := map[string]int{}
	for i := 0; i < 200; i++ {
		tb.gw.Serve(extReq("/x"), func(r *httpsim.Response, err error) {
			if err == nil {
				counts[r.Headers.Get("x-backend")]++
			}
		})
		tb.sched.RunFor(20 * time.Millisecond)
	}
	tb.sched.Run()
	v1, v2 := counts["backend-1"], counts["backend-2"]
	if v1+v2 != 200 {
		t.Fatalf("total %d", v1+v2)
	}
	share := float64(v2) / 200
	if share < 0.04 || share > 0.20 {
		t.Fatalf("canary share = %.2f, want ~0.10", share)
	}
}

func TestWeightedRouteHeaderOverrides(t *testing.T) {
	tb := buildBed(t, Config{Seed: 22}, echoBackend)
	tb.m.ControlPlane().SetRouteRule(RouteRule{
		Service: "backend",
		HeaderRoutes: []HeaderRoute{
			{Header: HeaderPriority, Value: PriorityHigh, Subset: SubsetRef{Key: "version", Value: "v1"}},
		},
		Weights: []WeightedSubset{
			{Subset: SubsetRef{Key: "version", Value: "v2"}, Weight: 1},
		},
	})
	tb.gw.SetClassifier(func(req *httpsim.Request) {
		req.Headers.Set(HeaderPriority, PriorityHigh)
	})
	for i := 0; i < 5; i++ {
		tb.gw.Serve(extReq("/x"), func(r *httpsim.Response, err error) {
			if err != nil {
				t.Fatal(err)
			}
			if got := r.Headers.Get("x-backend"); got != "backend-1" {
				t.Fatalf("header route lost to weights: %s", got)
			}
		})
		tb.sched.RunFor(50 * time.Millisecond)
	}
	tb.sched.Run()
}

func TestWeightValidation(t *testing.T) {
	tb := buildBed(t, Config{}, echoBackend)
	defer func() {
		if recover() == nil {
			t.Fatal("zero weight accepted")
		}
	}()
	tb.m.ControlPlane().SetRouteRule(RouteRule{
		Service: "backend",
		Weights: []WeightedSubset{{Subset: SubsetRef{Key: "a", Value: "b"}, Weight: 0}},
	})
}

func TestStrictMTLSBlocksForgedIdentity(t *testing.T) {
	tb := buildBed(t, Config{Seed: 23}, echoBackend)
	cp := tb.m.ControlPlane()
	cp.RequireMTLS(true)

	// Normal traffic works: sidecars hold real certs.
	var got *httpsim.Response
	tb.gw.Serve(extReq("/x"), func(r *httpsim.Response, err error) { got = r })
	tb.sched.Run()
	if got == nil || got.Status != httpsim.StatusOK {
		t.Fatalf("legit mTLS traffic failed: %+v", got)
	}

	// A request with a forged identity header but no valid cert is
	// rejected at the backend inbound.
	denied := tb.m.Metrics().CounterTotal("mesh_mtls_denied_total")
	req := httpsim.NewRequest("GET", "/x")
	req.Headers.Set(HeaderHost, "backend")
	cl := httpsim.NewClient(tb.cl.Pod("gateway").Host(), tb.cl.Pod("backend-1").Addr(), InboundPort, transportOptions(0))
	req.Headers.Set(HeaderSource, "frontend") // forged
	var forged *httpsim.Response
	cl.Do(req, func(r *httpsim.Response, err error) { forged = r })
	tb.sched.Run()
	if forged == nil || forged.Status != httpsim.StatusForbidden {
		t.Fatalf("forged identity got %+v, want 403", forged)
	}
	if tb.m.Metrics().CounterTotal("mesh_mtls_denied_total") <= denied {
		t.Fatal("denial not counted")
	}
}

func TestCertRotationAfterRevocation(t *testing.T) {
	tb := buildBed(t, Config{Seed: 24}, echoBackend)
	cp := tb.m.ControlPlane()
	cp.RequireMTLS(true)

	// Prime the frontend's cert.
	tb.gw.Serve(extReq("/x"), func(*httpsim.Response, error) {})
	tb.sched.Run()
	serial := tb.fe.cert().Serial
	cp.RevokeCert(serial)

	// Next call rotates automatically and succeeds.
	var got *httpsim.Response
	tb.gw.Serve(extReq("/x"), func(r *httpsim.Response, err error) { got = r })
	tb.sched.Run()
	if got == nil || got.Status != httpsim.StatusOK {
		t.Fatalf("post-revocation traffic failed: %+v", got)
	}
	if tb.fe.cert().Serial == serial {
		t.Fatal("cert was not rotated after revocation")
	}
}

func TestCertValidation(t *testing.T) {
	var c *Cert
	if c.Valid("x", 0) {
		t.Fatal("nil cert valid")
	}
	c = &Cert{Service: "a", Serial: 1, NotAfter: 100}
	if !c.Valid("a", 50) || c.Valid("b", 50) || c.Valid("a", 150) {
		t.Fatal("validity rules wrong")
	}
	c.revoked = true
	if c.Valid("a", 50) {
		t.Fatal("revoked cert valid")
	}
}

func TestUnreadyPodDrained(t *testing.T) {
	tb := buildBed(t, Config{Seed: 25}, echoBackend)
	tb.cl.Pod("backend-1").SetReady(false)
	counts := map[string]int{}
	for i := 0; i < 8; i++ {
		tb.gw.Serve(extReq("/x"), func(r *httpsim.Response, err error) {
			if err == nil {
				counts[r.Headers.Get("x-backend")]++
			}
		})
		tb.sched.RunFor(50 * time.Millisecond)
	}
	tb.sched.Run()
	if counts["backend-1"] != 0 {
		t.Fatalf("unready pod served traffic: %v", counts)
	}
	if counts["backend-2"] != 8 {
		t.Fatalf("remaining pod did not absorb load: %v", counts)
	}
	// Readiness restored: traffic returns.
	tb.cl.Pod("backend-1").SetReady(true)
	for i := 0; i < 4; i++ {
		tb.gw.Serve(extReq("/x"), func(r *httpsim.Response, err error) {
			if err == nil {
				counts[r.Headers.Get("x-backend")]++
			}
		})
		tb.sched.RunFor(50 * time.Millisecond)
	}
	tb.sched.Run()
	if counts["backend-1"] == 0 {
		t.Fatalf("pod never served after readiness restored: %v", counts)
	}
}

func TestPartitionedPodRecoveredByRetries(t *testing.T) {
	tb := buildBed(t, Config{Seed: 26}, echoBackend)
	tb.m.ControlPlane().SetRetryPolicy("backend", RetryPolicy{MaxRetries: 2, PerTryTimeout: 300 * time.Millisecond})
	tb.m.ControlPlane().SetCircuitBreaker("backend", CircuitBreakerPolicy{ConsecutiveFailures: 2, OpenFor: time.Hour})
	tb.cl.Pod("backend-1").Partition(true)

	ok := 0
	for i := 0; i < 10; i++ {
		tb.gw.Serve(extReq("/x"), func(r *httpsim.Response, err error) {
			if err == nil && r.Status == httpsim.StatusOK {
				ok++
			}
		})
		tb.sched.RunFor(2 * time.Second)
	}
	tb.sched.Run()
	if ok != 10 {
		t.Fatalf("ok = %d/10; retries+breaker should mask the partition", ok)
	}
	if !tb.cl.Pod("backend-1").Partitioned() {
		t.Fatal("partition flag lost")
	}
	// Heal the partition; breaker eventually lets traffic back (not
	// asserted: OpenFor is an hour). Basic restore sanity:
	tb.cl.Pod("backend-1").Partition(false)
	if tb.cl.Pod("backend-1").Partitioned() {
		t.Fatal("partition not cleared")
	}
}

// --- httpsim timeout / ErrTimeout interplay with retries and hedging ---

func TestPerTryTimeoutRetryRecovers(t *testing.T) {
	// backend-1 swallows requests; the per-try timeout surfaces
	// ErrTimeout and the retry lands on backend-2.
	tb := buildBed(t, Config{Seed: 27}, func(pod *cluster.Pod, req *httpsim.Request, respond func(*httpsim.Response)) {
		if pod.Name() == "backend-1" {
			return // never responds
		}
		echoBackend(pod, req, respond)
	})
	tb.m.ControlPlane().SetRetryPolicy("backend", RetryPolicy{MaxRetries: 2, PerTryTimeout: 100 * time.Millisecond})

	var got *httpsim.Response
	tb.gw.Serve(extReq("/x"), func(r *httpsim.Response, err error) {
		if err != nil {
			t.Fatalf("retry did not mask the timeout: %v", err)
		}
		got = r
	})
	tb.sched.Run()
	if got == nil || got.Status != httpsim.StatusOK {
		t.Fatalf("response = %+v", got)
	}
	if got.Headers.Get("x-backend") != "backend-2" {
		t.Fatalf("served by %s, want the healthy replica", got.Headers.Get("x-backend"))
	}
}

func TestPerTryTimeoutExhaustionReturnsErrTimeout(t *testing.T) {
	// Every replica swallows; once retries are exhausted the caller
	// sees ErrTimeout (wrapped or not — errors.Is must hold).
	tb := buildBed(t, Config{Seed: 28}, func(pod *cluster.Pod, req *httpsim.Request, respond func(*httpsim.Response)) {})
	tb.m.ControlPlane().SetRetryPolicy("backend", RetryPolicy{MaxRetries: 1, PerTryTimeout: 50 * time.Millisecond})

	var gotErr error
	fired := 0
	tb.gw.Serve(extReq("/x"), func(r *httpsim.Response, err error) {
		fired++
		gotErr = err
	})
	tb.sched.Run()
	if fired != 1 {
		t.Fatalf("callback fired %d times", fired)
	}
	// The frontend's app maps the upstream error to 502 before the
	// gateway sees it, so probe the frontend sidecar directly.
	child := httpsim.NewRequest("GET", "/probe")
	child.Headers.Set(HeaderHost, "backend")
	var direct error
	tb.fe.Call(child, func(r *httpsim.Response, err error) { direct = err })
	tb.sched.Run()
	if !errors.Is(direct, ErrTimeout) {
		t.Fatalf("direct call error = %v, want ErrTimeout", direct)
	}
	_ = gotErr
}

func TestHedgeRacesSlowReplica(t *testing.T) {
	// backend-1 answers after 1s, backend-2 immediately. With a 100ms
	// hedge the redundant attempt wins long before the slow reply.
	tb := buildBed(t, Config{Seed: 29}, func(pod *cluster.Pod, req *httpsim.Request, respond func(*httpsim.Response)) {
		if pod.Name() == "backend-1" {
			pod.Exec(time.Second, func() { echoBackend(pod, req, respond) })
			return
		}
		echoBackend(pod, req, respond)
	})
	tb.m.ControlPlane().SetRetryPolicy("backend", RetryPolicy{})
	tb.m.ControlPlane().SetHedgePolicy("backend", HedgePolicy{Delay: 100 * time.Millisecond})

	var got *httpsim.Response
	var done time.Duration
	fired := 0
	tb.gw.Serve(extReq("/x"), func(r *httpsim.Response, err error) {
		if err != nil {
			t.Fatal(err)
		}
		fired++
		got = r
		done = tb.sched.Now()
	})
	tb.sched.Run()
	if fired != 1 || got == nil || got.Status != httpsim.StatusOK {
		t.Fatalf("fired=%d response=%+v", fired, got)
	}
	if got.Headers.Get("x-backend") != "backend-2" {
		t.Fatalf("served by %s, want the hedged fast replica", got.Headers.Get("x-backend"))
	}
	if done >= time.Second {
		t.Fatalf("finished at %v; hedge did not beat the slow replica", done)
	}
}

func TestTimeoutCondemnsPooledConnection(t *testing.T) {
	// A per-try timeout aborts the pooled connection; the next call
	// must transparently re-dial rather than reuse the dead conn.
	seen := 0
	tb := buildBed(t, Config{Seed: 30}, func(pod *cluster.Pod, req *httpsim.Request, respond func(*httpsim.Response)) {
		seen++
		if seen == 1 {
			return // swallow the first request -> client times out
		}
		echoBackend(pod, req, respond)
	})
	cp := tb.m.ControlPlane()
	// Pin to backend-1 so both requests share one pooled connection.
	cp.SetRouteRule(RouteRule{Service: "backend", DefaultSubset: SubsetRef{Key: "version", Value: "v1"}})
	cp.SetRetryPolicy("backend", RetryPolicy{MaxRetries: 0, PerTryTimeout: 100 * time.Millisecond})

	first := httpsim.NewRequest("GET", "/a")
	first.Headers.Set(HeaderHost, "backend")
	var firstErr error
	tb.fe.Call(first, func(r *httpsim.Response, err error) { firstErr = err })
	tb.sched.Run()
	if !errors.Is(firstErr, ErrTimeout) {
		t.Fatalf("first call error = %v, want ErrTimeout", firstErr)
	}
	var condemned *transport.Conn
	tb.fe.ForEachPool(func(class string, dst simnet.Addr, conn *transport.Conn) { condemned = conn })

	second := httpsim.NewRequest("GET", "/b")
	second.Headers.Set(HeaderHost, "backend")
	var got *httpsim.Response
	tb.fe.Call(second, func(r *httpsim.Response, err error) {
		if err != nil {
			t.Fatalf("second call failed: %v", err)
		}
		got = r
	})
	tb.sched.Run()
	if got == nil || got.Status != httpsim.StatusOK {
		t.Fatalf("second response = %+v", got)
	}
	var fresh *transport.Conn
	tb.fe.ForEachPool(func(class string, dst simnet.Addr, conn *transport.Conn) { fresh = conn })
	if fresh == condemned {
		t.Fatal("condemned connection was reused")
	}
	if tb.fe.PoolSize() != 1 {
		t.Fatalf("pool size = %d, want the dead conn replaced in place", tb.fe.PoolSize())
	}
}

func TestClientDeadlinePreemptsRetries(t *testing.T) {
	// The external client's deadline fires while the mesh is still
	// burning retries; the late mesh outcome must not re-fire the cb.
	tb := buildBed(t, Config{Seed: 31}, func(pod *cluster.Pod, req *httpsim.Request, respond func(*httpsim.Response)) {})
	tb.m.ControlPlane().SetRetryPolicy("backend", RetryPolicy{MaxRetries: 5, PerTryTimeout: 200 * time.Millisecond})

	fired := 0
	var gotErr error
	var at time.Duration
	tb.gw.ServeWithDeadline(extReq("/x"), 300*time.Millisecond, func(r *httpsim.Response, err error) {
		fired++
		gotErr = err
		at = tb.sched.Now()
	})
	tb.sched.Run()
	if fired != 1 {
		t.Fatalf("callback fired %d times", fired)
	}
	if !errors.Is(gotErr, ErrTimeout) {
		t.Fatalf("error = %v, want ErrTimeout", gotErr)
	}
	if at != 300*time.Millisecond {
		t.Fatalf("deadline fired at %v, want exactly 300ms", at)
	}
}

// --- Partition(false) restore semantics + E12 x E14 interplay ---

func TestPartitionRestoreRecoversInFlightConnection(t *testing.T) {
	// A request issued into a partition hangs on transport
	// retransmission; healing the partition must let the SAME pooled
	// connection deliver it — no mesh-level retry, no timeout, no
	// re-dial.
	tb := buildBed(t, Config{Seed: 33}, echoBackend)
	cp := tb.m.ControlPlane()
	cp.SetRouteRule(RouteRule{Service: "backend", DefaultSubset: SubsetRef{Key: "version", Value: "v1"}})
	cp.SetRetryPolicy("backend", RetryPolicy{MaxRetries: 0}) // no PerTryTimeout either

	tb.cl.Pod("backend-1").Partition(true)
	tb.sched.At(500*time.Millisecond, func() { tb.cl.Pod("backend-1").Partition(false) })

	var got *httpsim.Response
	var gotErr error
	var doneAt time.Duration
	tb.gw.Serve(extReq("/inflight"), func(r *httpsim.Response, err error) {
		got, gotErr, doneAt = r, err, tb.sched.Now()
	})
	tb.sched.Run()

	if gotErr != nil || got == nil || got.Status != httpsim.StatusOK {
		t.Fatalf("response = %+v err = %v", got, gotErr)
	}
	if doneAt < 500*time.Millisecond {
		t.Fatalf("completed at %v, before the partition healed", doneAt)
	}
	if doneAt > 3*time.Second {
		t.Fatalf("completed at %v, retransmission should recover within ~2 RTOs", doneAt)
	}

	// Subsequent requests ride the same restored connection.
	var conn0 *transport.Conn
	tb.fe.ForEachPool(func(class string, dst simnet.Addr, c *transport.Conn) { conn0 = c })
	got = nil
	tb.gw.Serve(extReq("/later"), func(r *httpsim.Response, err error) { got, gotErr = r, err })
	tb.sched.Run()
	if gotErr != nil || got == nil || got.Status != httpsim.StatusOK {
		t.Fatalf("post-heal response = %+v err = %v", got, gotErr)
	}
	var conn1 *transport.Conn
	pools := 0
	tb.fe.ForEachPool(func(class string, dst simnet.Addr, c *transport.Conn) { conn1 = c; pools++ })
	if pools != 1 || conn1 != conn0 {
		t.Fatalf("pools = %d, conn reused = %v; restore must not re-dial", pools, conn1 == conn0)
	}
}

func TestAdmissionShedsWhenPartitionConcentratesLoad(t *testing.T) {
	// E12 x E14 interplay: partitioning one replica concentrates the
	// offered load on the survivor, whose admission control starts
	// shedding — overload protection backstopping the resilience path.
	tb := buildBed(t, Config{Seed: 34}, func(pod *cluster.Pod, req *httpsim.Request, respond func(*httpsim.Response)) {
		pod.Exec(5*time.Millisecond, func() { respond(httpsim.NewResponse(httpsim.StatusOK)) })
	})
	cp := tb.m.ControlPlane()
	cp.SetRetryPolicy("backend", RetryPolicy{MaxRetries: 2, PerTryTimeout: 50 * time.Millisecond, RetryOn5xx: true})
	cp.SetCircuitBreaker("backend", CircuitBreakerPolicy{ConsecutiveFailures: 2, OpenFor: time.Hour})
	cp.SetAdmissionPolicy("backend", AdmissionPolicy{
		Enabled: true, QueueLimit: 4,
		InitialConcurrency: 1, MinConcurrency: 1, MaxConcurrency: 1,
	})

	// 250 req/s split over two replicas is under capacity (5ms service,
	// concurrency 1); after the partition the survivor sees all of it.
	for i := 0; i < 250; i++ {
		at := time.Duration(i) * 4 * time.Millisecond
		tb.sched.At(at, func() {
			tb.gw.Serve(extReq("/load"), func(*httpsim.Response, error) {})
		})
	}
	var shedBefore uint64
	tb.sched.At(300*time.Millisecond, func() {
		shedBefore = tb.m.Metrics().CounterTotal("mesh_admission_shed_total")
		tb.cl.Pod("backend-2").Partition(true)
	})
	tb.sched.Run()

	shedAfter := tb.m.Metrics().CounterTotal("mesh_admission_shed_total")
	if shedBefore != 0 {
		t.Fatalf("shed %d requests before the partition (load should fit)", shedBefore)
	}
	if shedAfter == 0 {
		t.Fatal("no sheds after the partition concentrated load on one replica")
	}
}
