package mesh

import (
	"testing"
	"time"

	"meshlayer/internal/httpsim"
)

func TestWeightedCanaryRouting(t *testing.T) {
	tb := buildBed(t, Config{Seed: 21}, echoBackend)
	tb.m.ControlPlane().SetRouteRule(RouteRule{
		Service: "backend",
		Weights: []WeightedSubset{
			{Subset: SubsetRef{Key: "version", Value: "v1"}, Weight: 90},
			{Subset: SubsetRef{Key: "version", Value: "v2"}, Weight: 10},
		},
	})
	counts := map[string]int{}
	for i := 0; i < 200; i++ {
		tb.gw.Serve(extReq("/x"), func(r *httpsim.Response, err error) {
			if err == nil {
				counts[r.Headers.Get("x-backend")]++
			}
		})
		tb.sched.RunFor(20 * time.Millisecond)
	}
	tb.sched.Run()
	v1, v2 := counts["backend-1"], counts["backend-2"]
	if v1+v2 != 200 {
		t.Fatalf("total %d", v1+v2)
	}
	share := float64(v2) / 200
	if share < 0.04 || share > 0.20 {
		t.Fatalf("canary share = %.2f, want ~0.10", share)
	}
}

func TestWeightedRouteHeaderOverrides(t *testing.T) {
	tb := buildBed(t, Config{Seed: 22}, echoBackend)
	tb.m.ControlPlane().SetRouteRule(RouteRule{
		Service: "backend",
		HeaderRoutes: []HeaderRoute{
			{Header: HeaderPriority, Value: PriorityHigh, Subset: SubsetRef{Key: "version", Value: "v1"}},
		},
		Weights: []WeightedSubset{
			{Subset: SubsetRef{Key: "version", Value: "v2"}, Weight: 1},
		},
	})
	tb.gw.SetClassifier(func(req *httpsim.Request) {
		req.Headers.Set(HeaderPriority, PriorityHigh)
	})
	for i := 0; i < 5; i++ {
		tb.gw.Serve(extReq("/x"), func(r *httpsim.Response, err error) {
			if err != nil {
				t.Fatal(err)
			}
			if got := r.Headers.Get("x-backend"); got != "backend-1" {
				t.Fatalf("header route lost to weights: %s", got)
			}
		})
		tb.sched.RunFor(50 * time.Millisecond)
	}
	tb.sched.Run()
}

func TestWeightValidation(t *testing.T) {
	tb := buildBed(t, Config{}, echoBackend)
	defer func() {
		if recover() == nil {
			t.Fatal("zero weight accepted")
		}
	}()
	tb.m.ControlPlane().SetRouteRule(RouteRule{
		Service: "backend",
		Weights: []WeightedSubset{{Subset: SubsetRef{Key: "a", Value: "b"}, Weight: 0}},
	})
}

func TestStrictMTLSBlocksForgedIdentity(t *testing.T) {
	tb := buildBed(t, Config{Seed: 23}, echoBackend)
	cp := tb.m.ControlPlane()
	cp.RequireMTLS(true)

	// Normal traffic works: sidecars hold real certs.
	var got *httpsim.Response
	tb.gw.Serve(extReq("/x"), func(r *httpsim.Response, err error) { got = r })
	tb.sched.Run()
	if got == nil || got.Status != httpsim.StatusOK {
		t.Fatalf("legit mTLS traffic failed: %+v", got)
	}

	// A request with a forged identity header but no valid cert is
	// rejected at the backend inbound.
	denied := tb.m.Metrics().CounterTotal("mesh_mtls_denied_total")
	req := httpsim.NewRequest("GET", "/x")
	req.Headers.Set(HeaderHost, "backend")
	cl := httpsim.NewClient(tb.cl.Pod("gateway").Host(), tb.cl.Pod("backend-1").Addr(), InboundPort, transportOptions(0))
	req.Headers.Set(HeaderSource, "frontend") // forged
	var forged *httpsim.Response
	cl.Do(req, func(r *httpsim.Response, err error) { forged = r })
	tb.sched.Run()
	if forged == nil || forged.Status != httpsim.StatusForbidden {
		t.Fatalf("forged identity got %+v, want 403", forged)
	}
	if tb.m.Metrics().CounterTotal("mesh_mtls_denied_total") <= denied {
		t.Fatal("denial not counted")
	}
}

func TestCertRotationAfterRevocation(t *testing.T) {
	tb := buildBed(t, Config{Seed: 24}, echoBackend)
	cp := tb.m.ControlPlane()
	cp.RequireMTLS(true)

	// Prime the frontend's cert.
	tb.gw.Serve(extReq("/x"), func(*httpsim.Response, error) {})
	tb.sched.Run()
	serial := tb.fe.cert().Serial
	cp.RevokeCert(serial)

	// Next call rotates automatically and succeeds.
	var got *httpsim.Response
	tb.gw.Serve(extReq("/x"), func(r *httpsim.Response, err error) { got = r })
	tb.sched.Run()
	if got == nil || got.Status != httpsim.StatusOK {
		t.Fatalf("post-revocation traffic failed: %+v", got)
	}
	if tb.fe.cert().Serial == serial {
		t.Fatal("cert was not rotated after revocation")
	}
}

func TestCertValidation(t *testing.T) {
	var c *Cert
	if c.Valid("x", 0) {
		t.Fatal("nil cert valid")
	}
	c = &Cert{Service: "a", Serial: 1, NotAfter: 100}
	if !c.Valid("a", 50) || c.Valid("b", 50) || c.Valid("a", 150) {
		t.Fatal("validity rules wrong")
	}
	c.revoked = true
	if c.Valid("a", 50) {
		t.Fatal("revoked cert valid")
	}
}

func TestUnreadyPodDrained(t *testing.T) {
	tb := buildBed(t, Config{Seed: 25}, echoBackend)
	tb.cl.Pod("backend-1").SetReady(false)
	counts := map[string]int{}
	for i := 0; i < 8; i++ {
		tb.gw.Serve(extReq("/x"), func(r *httpsim.Response, err error) {
			if err == nil {
				counts[r.Headers.Get("x-backend")]++
			}
		})
		tb.sched.RunFor(50 * time.Millisecond)
	}
	tb.sched.Run()
	if counts["backend-1"] != 0 {
		t.Fatalf("unready pod served traffic: %v", counts)
	}
	if counts["backend-2"] != 8 {
		t.Fatalf("remaining pod did not absorb load: %v", counts)
	}
	// Readiness restored: traffic returns.
	tb.cl.Pod("backend-1").SetReady(true)
	for i := 0; i < 4; i++ {
		tb.gw.Serve(extReq("/x"), func(r *httpsim.Response, err error) {
			if err == nil {
				counts[r.Headers.Get("x-backend")]++
			}
		})
		tb.sched.RunFor(50 * time.Millisecond)
	}
	tb.sched.Run()
	if counts["backend-1"] == 0 {
		t.Fatalf("pod never served after readiness restored: %v", counts)
	}
}

func TestPartitionedPodRecoveredByRetries(t *testing.T) {
	tb := buildBed(t, Config{Seed: 26}, echoBackend)
	tb.m.ControlPlane().SetRetryPolicy("backend", RetryPolicy{MaxRetries: 2, PerTryTimeout: 300 * time.Millisecond})
	tb.m.ControlPlane().SetCircuitBreaker("backend", CircuitBreakerPolicy{ConsecutiveFailures: 2, OpenFor: time.Hour})
	tb.cl.Pod("backend-1").Partition(true)

	ok := 0
	for i := 0; i < 10; i++ {
		tb.gw.Serve(extReq("/x"), func(r *httpsim.Response, err error) {
			if err == nil && r.Status == httpsim.StatusOK {
				ok++
			}
		})
		tb.sched.RunFor(2 * time.Second)
	}
	tb.sched.Run()
	if ok != 10 {
		t.Fatalf("ok = %d/10; retries+breaker should mask the partition", ok)
	}
	if !tb.cl.Pod("backend-1").Partitioned() {
		t.Fatal("partition flag lost")
	}
	// Heal the partition; breaker eventually lets traffic back (not
	// asserted: OpenFor is an hour). Basic restore sanity:
	tb.cl.Pod("backend-1").Partition(false)
	if tb.cl.Pod("backend-1").Partitioned() {
		t.Fatal("partition not cleared")
	}
}
