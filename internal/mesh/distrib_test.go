package mesh

import (
	"testing"
	"time"

	"meshlayer/internal/cluster"
	"meshlayer/internal/httpsim"
)

// serveOK drives one gateway request and returns the responding
// backend pod name ("" on failure).
func serveOK(t *testing.T, tb *testbed) string {
	t.Helper()
	req := httpsim.NewRequest("GET", "/p")
	req.Headers.Set(HeaderHost, "frontend")
	backend := ""
	tb.gw.Serve(req, func(resp *httpsim.Response, err error) {
		if err == nil && resp.Status == httpsim.StatusOK {
			backend = resp.Headers.Get("x-backend")
		}
	})
	tb.sched.RunFor(2 * time.Second)
	return backend
}

func TestDistributionPolicyPropagatesViaPush(t *testing.T) {
	tb := buildBed(t, Config{Seed: 1}, echoBackend)
	cp := tb.m.ControlPlane()
	cp.EnableDistribution(DistributionConfig{Debounce: 50 * time.Millisecond})

	// A route rule pinning backend to v2 must not take effect until the
	// push lands: stage it and serve immediately (round-robin would
	// alternate pods), then after propagation every request goes to v2.
	cp.SetRouteRule(RouteRule{Service: "backend", DefaultSubset: SubsetRef{Key: "version", Value: "v2"}})
	if tb.fe.routeRuleFor("backend") != nil {
		t.Fatalf("route rule visible before the push landed")
	}
	tb.sched.RunFor(time.Second)
	if tb.fe.routeRuleFor("backend") == nil {
		t.Fatalf("route rule never propagated")
	}
	for i := 0; i < 4; i++ {
		if got := serveOK(t, tb); got != "backend-2" {
			t.Fatalf("request %d went to %q, want backend-2", i, got)
		}
	}
	srv := cp.Distribution()
	if srv == nil || srv.Stats().Acks == 0 {
		t.Fatalf("no acknowledged pushes recorded: %+v", srv)
	}
}

func TestDistributionEndpointChurnPropagates(t *testing.T) {
	tb := buildBed(t, Config{Seed: 1}, echoBackend)
	cp := tb.m.ControlPlane()
	cp.EnableDistribution(DistributionConfig{Debounce: 20 * time.Millisecond})

	// Drain backend-1: discovery changes, and after the push the
	// frontend's snapshot must no longer list it.
	tb.cl.Pod("backend-1").SetReady(false)
	st, _ := tb.fe.ctrlState("backend")
	if len(st.Eps) != 2 {
		t.Fatalf("snapshot updated before any push: %d eps", len(st.Eps))
	}
	tb.sched.RunFor(time.Second)
	st, _ = tb.fe.ctrlState("backend")
	if len(st.Eps) != 1 || st.Eps[0].Name() != "backend-2" {
		t.Fatalf("drain did not propagate: %v", names(st.Eps))
	}

	// A new replica appears: AddPod + sidecar injection must subscribe
	// the new pod and re-push the endpoint set to everyone.
	b3 := tb.cl.AddPod(cluster.PodSpec{Name: "backend-3", Labels: map[string]string{"app": "backend", "version": "v3"}})
	sc3 := tb.m.InjectSidecar(b3)
	sc3.RegisterApp(func(req *httpsim.Request, respond func(*httpsim.Response)) {
		echoBackend(b3, req, respond)
	})
	if sc3.ctrl == nil {
		t.Fatalf("new sidecar not subscribed to the control plane")
	}
	tb.sched.RunFor(time.Second)
	st, _ = tb.fe.ctrlState("backend")
	if len(st.Eps) != 2 {
		t.Fatalf("scale-up did not propagate: %v", names(st.Eps))
	}
}

func TestPushDelaySuppressesDistribution(t *testing.T) {
	tb := buildBed(t, Config{Seed: 1}, echoBackend)
	cp := tb.m.ControlPlane()
	cp.EnableDistribution(DistributionConfig{Debounce: 20 * time.Millisecond})

	// Chaos CPStale: under a hold, staged changes reach nobody; the
	// sidecars keep routing on the old snapshot. Lifting it flushes.
	cp.SetPushDelay(time.Hour)
	cp.SetRouteRule(RouteRule{Service: "backend", DefaultSubset: SubsetRef{Key: "version", Value: "v1"}})
	tb.sched.RunFor(2 * time.Second)
	if tb.fe.routeRuleFor("backend") != nil {
		t.Fatalf("push escaped the hold")
	}
	if lag := cp.Distribution().MaxLag(); lag == 0 {
		t.Fatalf("version lag should accumulate under the hold")
	}
	cp.SetPushDelay(0)
	tb.sched.RunFor(time.Second)
	if tb.fe.routeRuleFor("backend") == nil {
		t.Fatalf("rule never propagated after the hold lifted")
	}
}

func TestDistributionResyncAfterPartition(t *testing.T) {
	tb := buildBed(t, Config{Seed: 1}, echoBackend)
	cp := tb.m.ControlPlane()
	cp.EnableDistribution(DistributionConfig{
		Debounce: 20 * time.Millisecond, PushTimeout: 200 * time.Millisecond,
		ResyncDelay: 100 * time.Millisecond,
	})

	// Partition the frontend, change config: pushes to it time out and
	// it stays on its old snapshot. Healing the partition resyncs it.
	tb.cl.Pod("frontend-1").Partition(true)
	cp.SetLBPolicy("backend", LBRandom)
	tb.sched.RunFor(2 * time.Second)
	if tb.fe.lbPolicyFor("backend") != LBRoundRobin {
		t.Fatalf("partitioned sidecar saw the change")
	}
	srv := cp.Distribution()
	if srv.Stats().Timeouts == 0 {
		t.Fatalf("no push timeouts recorded against the partitioned sidecar")
	}

	tb.cl.Pod("frontend-1").Partition(false)
	tb.sched.RunFor(3 * time.Second)
	if tb.fe.lbPolicyFor("backend") != LBRandom {
		t.Fatalf("sidecar not resynced after partition healed")
	}
	if srv.SubscriberVersion("frontend-1") != srv.Version() {
		t.Fatalf("frontend version %d != server %d after resync",
			srv.SubscriberVersion("frontend-1"), srv.Version())
	}
}

func names(eps []*cluster.Pod) []string {
	out := make([]string, len(eps))
	for i, p := range eps {
		out[i] = p.Name()
	}
	return out
}
