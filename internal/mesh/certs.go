package mesh

import (
	"fmt"
	"time"

	"meshlayer/internal/httpsim"
	"meshlayer/internal/metrics"
)

// Cert is a workload identity credential issued by the control plane —
// the stand-in for the SPIFFE/mTLS certificates an Istio control plane
// provisions (the "certificate management" box of the paper's Fig. 1).
type Cert struct {
	Service  string
	Serial   uint64
	NotAfter time.Duration // simulated expiry; zero = never expires
	revoked  bool
}

// Valid reports whether the cert authenticates the named service at
// the given time.
func (c *Cert) Valid(service string, now time.Duration) bool {
	if c == nil || c.revoked || c.Service != service {
		return false
	}
	return c.NotAfter == 0 || now < c.NotAfter
}

// HeaderCert (the certificate-serial header) lives in headers.go, the
// header registry.

// DefaultCertTTL is the issued-certificate lifetime (Istio default:
// 24h; scaled down so rotation is observable in short simulations).
const DefaultCertTTL = time.Hour

// IssueCert mints a certificate for a service. Sidecars request one at
// injection time and after revocation.
func (cp *ControlPlane) IssueCert(service string) *Cert {
	cp.certSerial++
	c := &Cert{
		Service:  service,
		Serial:   cp.certSerial,
		NotAfter: cp.mesh.sched.Now() + DefaultCertTTL,
	}
	cp.certs[c.Serial] = c
	cp.bump()
	return c
}

// RevokeCert invalidates a certificate immediately.
func (cp *ControlPlane) RevokeCert(serial uint64) {
	if c, ok := cp.certs[serial]; ok {
		c.revoked = true
		cp.bump()
	}
}

// VerifyCert checks a presented serial against the CA state.
func (cp *ControlPlane) VerifyCert(serial uint64, service string, now time.Duration) bool {
	return cp.certs[serial].Valid(service, now)
}

// RequireMTLS makes every inbound check demand a valid peer
// certificate, not just a claimed identity header (strict mTLS mode).
func (cp *ControlPlane) RequireMTLS(on bool) {
	cp.strictMTLS = on
	cp.bump()
}

// MTLSRequired reports whether strict mode is on.
func (cp *ControlPlane) MTLSRequired() bool { return cp.strictMTLS }

// cert returns the sidecar's current credential, requesting a fresh one
// if missing or no longer valid (automatic rotation).
func (sc *Sidecar) cert() *Cert {
	now := sc.mesh.sched.Now()
	if sc.identity.Valid(sc.service, now) {
		return sc.identity
	}
	sc.identity = sc.mesh.cp.IssueCert(sc.service)
	sc.mesh.metrics.Counter(MetricCertsIssuedTotal, metrics.Labels{"service": sc.service}).Inc()
	return sc.identity
}

// stampIdentity attaches the caller's identity (and cert) to an
// outbound request.
func (sc *Sidecar) stampIdentity(req *httpsim.Request) {
	req.Headers.Set(HeaderSource, sc.service)
	req.Headers.Set(HeaderCert, fmt.Sprintf("%d", sc.cert().Serial))
}

// verifyPeer authenticates an inbound request's claimed identity under
// the current mTLS mode. In permissive mode the claim is accepted; in
// strict mode the presented cert must verify.
func (sc *Sidecar) verifyPeer(req *httpsim.Request) bool {
	if !sc.mesh.cp.MTLSRequired() {
		return true
	}
	src := req.Headers.Get(HeaderSource)
	var serial uint64
	fmt.Sscanf(req.Headers.Get(HeaderCert), "%d", &serial)
	if sc.mesh.cp.VerifyCert(serial, src, sc.mesh.sched.Now()) {
		return true
	}
	sc.mesh.metrics.Counter(MetricMTLSDeniedTotal, metrics.Labels{"service": sc.service}).Inc()
	return false
}
