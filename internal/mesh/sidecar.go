package mesh

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"meshlayer/internal/admission"
	"meshlayer/internal/cluster"
	"meshlayer/internal/httpsim"
	"meshlayer/internal/metrics"
	"meshlayer/internal/simnet"
	"meshlayer/internal/trace"
	"meshlayer/internal/transport"
)

// AppHandler is the application's request handler, invoked by its
// sidecar for inbound requests. The application responds exactly once,
// possibly after spawning child requests through Sidecar.Call.
type AppHandler func(req *httpsim.Request, respond func(*httpsim.Response))

// ConnClass selects the transport treatment of an outbound request:
// which pooled connection group it uses and with what congestion
// control and packet mark. The cross-layer controller installs a
// classifier mapping priorities to classes; the default is one
// best-effort class for everything.
type ConnClass struct {
	Name    string
	Options transport.Options
}

// DefaultConnClass is the single best-effort class.
var DefaultConnClass = ConnClass{Name: "default", Options: transport.Options{CC: "reno"}}

// InboundFilter observes and may mutate an inbound request before the
// application sees it. ctx carries the server-side connection, whose
// mark/congestion control govern the response bytes.
type InboundFilter func(ctx httpsim.Ctx, req *httpsim.Request)

// OutboundFilter observes and may mutate an outbound request before
// routing.
type OutboundFilter func(req *httpsim.Request)

// Errors surfaced by Sidecar.Call.
var (
	ErrNoService   = errors.New("mesh: unknown destination service")
	ErrNoEndpoints = errors.New("mesh: service has no endpoints")
	ErrTimeout     = errors.New("mesh: request timed out")
)

type poolKey struct {
	addr  simnet.Addr
	class string
}

// Sidecar is the per-pod proxy handling all of the pod's inbound and
// outbound communication.
type Sidecar struct {
	mesh    *Mesh
	pod     *cluster.Pod
	service string
	server  *httpsim.Server
	app     AppHandler

	pools       map[poolKey]*httpsim.Client
	endpoints   map[simnet.Addr]*endpointState
	regionPaths map[string]*endpointState
	rrCounters  map[string]uint64

	inboundFilters  []InboundFilter
	outboundFilters []OutboundFilter
	connClassifier  func(*httpsim.Request) ConnClass
	connHook        func(*transport.Conn, ConnClass)
	bucket          *tokenBucket
	identity        *Cert

	// Overload protection (internal/admission): the controller is built
	// lazily from the pushed AdmissionPolicy; the deadline index tracks
	// every budget-carrying request regardless of whether admission is
	// enabled.
	admitCtl  *admission.Controller
	admitPol  AdmissionPolicy
	deadlines *admission.Deadlines

	// Self-healing defenses: lazily started health-check and outlier
	// loops per upstream service, token-bucket retry budgets, and the
	// chaos engine's server-side fault state (nil = healthy).
	hcActive      map[string]bool
	outlierActive map[string]bool
	budgets       map[string]*retryBudget
	serverFault   *serverFaultState

	// ctrl is this sidecar's local snapshot of distributed routing
	// state (nil in instant-propagation mode). Only the control-plane
	// push path may mutate it — enforced by meshvet's ctlwrite.
	ctrl *sidecarAgent
}

// InjectSidecar pairs a sidecar with the pod. The pod's service
// identity is its "app" label (falling back to the pod name).
func (m *Mesh) InjectSidecar(pod *cluster.Pod) *Sidecar {
	if _, dup := m.sidecars[pod.Name()]; dup {
		panic(fmt.Sprintf("mesh: pod %q already has a sidecar", pod.Name()))
	}
	service := pod.Label("app")
	if service == "" {
		service = pod.Name()
	}
	sc := &Sidecar{
		mesh:          m,
		pod:           pod,
		service:       service,
		pools:         make(map[poolKey]*httpsim.Client),
		endpoints:     make(map[simnet.Addr]*endpointState),
		regionPaths:   make(map[string]*endpointState),
		rrCounters:    make(map[string]uint64),
		deadlines:     admission.NewDeadlines(),
		hcActive:      make(map[string]bool),
		outlierActive: make(map[string]bool),
		budgets:       make(map[string]*retryBudget),
	}
	srv, err := httpsim.NewServer(pod.Host(), InboundPort, sc.handleInbound)
	if err != nil {
		panic(err)
	}
	sc.server = srv
	m.sidecars[pod.Name()] = sc
	if d := m.cp.distributorFor(pod); d != nil {
		d.register(sc)
	}
	return sc
}

// Pod returns the pod this sidecar serves.
func (sc *Sidecar) Pod() *cluster.Pod { return sc.pod }

// ServiceName returns the sidecar's service identity.
func (sc *Sidecar) ServiceName() string { return sc.service }

// RegisterApp installs the application handler for inbound requests.
func (sc *Sidecar) RegisterApp(h AppHandler) { sc.app = h }

// AddInboundFilter appends an inbound filter (run in order).
func (sc *Sidecar) AddInboundFilter(f InboundFilter) {
	sc.inboundFilters = append(sc.inboundFilters, f)
}

// AddOutboundFilter appends an outbound filter (run in order).
func (sc *Sidecar) AddOutboundFilter(f OutboundFilter) {
	sc.outboundFilters = append(sc.outboundFilters, f)
}

// SetConnClassifier installs the per-request connection-class chooser.
func (sc *Sidecar) SetConnClassifier(f func(*httpsim.Request) ConnClass) {
	sc.connClassifier = f
}

// SetConnHook installs a callback invoked whenever the sidecar opens a
// new upstream connection — the cross-layer controller uses it to
// announce flows (and their priorities) to the SDN controller out of
// band (§4.2 optimization d).
func (sc *Sidecar) SetConnHook(f func(*transport.Conn, ConnClass)) { sc.connHook = f }

// --- inbound path ---

func (sc *Sidecar) handleInbound(ctx httpsim.Ctx, req *httpsim.Request, respond func(*httpsim.Response)) {
	m := sc.mesh
	m.sched.After(m.proxyDelay(), func() {
		// Control-plane pushes terminate at the proxy: apply to the
		// local snapshot and ACK/NACK.
		if id := req.Headers.Get(HeaderCtrl); id != "" {
			sc.handleCtrlPush(id, respond)
			return
		}
		// Health probes are answered by the proxy itself: they prove
		// the pod is reachable and its sidecar alive, nothing more.
		if req.Headers.Get(HeaderHealth) != "" {
			m.metrics.Counter(MetricHealthProbeAnswered,
				metrics.Labels{"service": sc.service}).Inc()
			respond(httpsim.NewResponse(httpsim.StatusOK))
			return
		}
		// Chaos-injected gray failure: the "application" intermittently
		// errors (after an optional stall) while probes above keep
		// passing — exactly the failure shape outlier detection exists
		// to catch.
		if sf := sc.serverFault; sf != nil && sf.rng.Float64() < sf.cfg.Prob {
			m.metrics.Counter(MetricServerFaultInjected,
				metrics.Labels{"service": sc.service}).Inc()
			resp := httpsim.NewResponse(sf.status())
			if sf.cfg.Delay > 0 {
				m.sched.After(sf.cfg.Delay, func() { respond(resp) })
			} else {
				respond(resp)
			}
			return
		}
		if !sc.applyInboundRateLimit(respond) {
			return
		}
		src := req.Headers.Get(HeaderSource)
		if !sc.verifyPeer(req) || !sc.authorized(src) {
			m.metrics.Counter(MetricRequestsTotal,
				metrics.Labels{"service": sc.service, "direction": "inbound", "code": "403"}).Inc()
			resp := httpsim.NewResponse(httpsim.StatusForbidden)
			respond(resp)
			return
		}

		// Server span: adopt the caller's span as parent, then make
		// this span the parent of anything the app spawns.
		var span *trace.Span
		start := m.sched.Now()
		if tid := req.Headers.Get(trace.HeaderRequestID); tid != "" {
			span = &trace.Span{
				TraceID:  tid,
				SpanID:   m.tracer.NewSpanID(),
				ParentID: parseSpanID(req.Headers.Get(trace.HeaderSpanID)),
				Service:  sc.service,
				Name:     req.Method + " " + req.Path,
				Start:    start,
			}
			span.SetTag("direction", "server")
			if p := req.Headers.Get(HeaderPriority); p != "" {
				span.SetTag("priority", p)
			}
			req.Headers.Set(trace.HeaderSpanID, formatSpanID(span.SpanID))
		}

		for _, f := range sc.inboundFilters {
			f(ctx, req)
		}

		// Deadline propagation: remember this request's remaining
		// budget so outbound child calls can decrement or cancel.
		expiry := sc.recordInboundDeadline(req)

		respondFinal := func(resp *httpsim.Response) {
			m.sched.After(m.proxyDelay(), func() {
				// Degraded provenance: the application composed this
				// response from child calls and dropped their headers;
				// restore the degraded stamp recorded from any child so
				// it keeps travelling toward the edge.
				if tid := req.Headers.Get(trace.HeaderRequestID); tid != "" {
					if origin, ok := m.takeDegraded(tid); ok {
						resp.Headers.Set(HeaderDegraded, origin)
					}
				}
				if span != nil {
					span.End = m.sched.Now()
					span.SetTag("status", fmt.Sprint(resp.Status))
					m.tracer.Record(span)
				}
				m.metrics.ObserveDuration(MetricRequestDuration,
					metrics.Labels{"service": sc.service, "direction": "inbound"},
					m.sched.Now()-start)
				respond(resp)
			})
		}

		app := sc.app
		if app == nil {
			m.metrics.Counter(MetricRequestsTotal,
				metrics.Labels{"service": sc.service, "direction": "inbound", "code": "ok"}).Inc()
			respond(httpsim.NewResponse(httpsim.StatusNotFound))
			return
		}

		ctl := sc.admissionFor(sc.admissionPolicyFor(sc.service))
		if ctl == nil {
			m.metrics.Counter(MetricRequestsTotal,
				metrics.Labels{"service": sc.service, "direction": "inbound", "code": "ok"}).Inc()
			app(req, respondFinal)
			return
		}

		// Admission enabled: route the dispatch through the bounded
		// priority queue + concurrency limiter. Exactly one of Run/Shed
		// fires, possibly later when a slot frees.
		cls := classOf(req)
		ctl.Offer(admission.Item{
			Class:    cls,
			Enqueued: m.sched.Now(),
			Expiry:   expiry,
			Run: func() {
				m.metrics.Counter(MetricRequestsTotal,
					metrics.Labels{"service": sc.service, "direction": "inbound", "code": "ok"}).Inc()
				sc.observeAdmission(ctl)
				dispatched := m.sched.Now()
				app(req, func(resp *httpsim.Response) {
					// Queue wait is excluded from the limiter's latency
					// sample: the limiter tracks service time, not its
					// own queueing.
					ctl.Done(m.sched.Now()-dispatched, resp.Status < 500)
					sc.observeAdmission(ctl)
					respondFinal(resp)
				})
			},
			Shed: func(why admission.Reason) {
				sc.shedInbound(cls, why, respondFinal)
			},
		})
	})
}

// --- outbound path ---

// call tracks one logical outbound request across attempts.
type call struct {
	sc       *Sidecar
	service  string
	req      *httpsim.Request
	cb       func(*httpsim.Response, error)
	span     *trace.Span
	retry    RetryPolicy
	breaker  CircuitBreakerPolicy
	attempts int
	done     bool
	start    time.Duration
	hedged   bool
	// retryPending is set while a retry is scheduled but has not yet
	// launched. It stops concurrent attempt failures (a hedge pair, or
	// an original racing its replacement) from each spending a budget
	// token and each scheduling a retry for the same logical call.
	retryPending bool
	// fbTimer is the armed fallback deadline (degrade.go), cancelled
	// when the call settles first.
	fbTimer simnet.Timer
}

// Call routes req to the service named by its "host" header through
// the mesh: route rules select a subset, the LB picks an endpoint,
// and the request goes out on a pooled connection of its class, with
// retries, hedging, and circuit breaking per control-plane policy.
// cb fires exactly once.
func (sc *Sidecar) Call(req *httpsim.Request, cb func(*httpsim.Response, error)) {
	m := sc.mesh
	service := req.Headers.Get(HeaderHost)
	if service == "" {
		cb(nil, ErrNoService)
		return
	}
	sc.stampIdentity(req)

	var span *trace.Span
	if tid := req.Headers.Get(trace.HeaderRequestID); tid != "" {
		span = &trace.Span{
			TraceID:  tid,
			SpanID:   m.tracer.NewSpanID(),
			ParentID: parseSpanID(req.Headers.Get(trace.HeaderSpanID)),
			Service:  sc.service,
			Name:     "call " + service + " " + req.Path,
			Start:    m.sched.Now(),
		}
		span.SetTag("direction", "client")
		span.SetTag("upstream", service)
		req.Headers.Set(trace.HeaderSpanID, formatSpanID(span.SpanID))
	}

	c := &call{
		sc:      sc,
		service: service,
		req:     req,
		cb:      cb,
		span:    span,
		retry:   sc.retryPolicyFor(service),
		breaker: sc.breakerFor(service),
		start:   m.sched.Now(),
	}
	sc.ensureDefenses(service)
	sc.depositRetryTokens(service, c.retry)

	m.sched.After(m.proxyDelay(), func() {
		for _, f := range sc.outboundFilters {
			f(req)
		}
		// End-to-end deadline: cancel the call when the calling
		// request's budget is already spent, otherwise forward the
		// decremented budget.
		if !sc.applyOutboundDeadline(c) {
			return
		}
		sc.maybeMirror(service, req)

		// Graceful degradation: with a fallback configured, bound how
		// long this call may chase a real response. Retry ladders
		// against a dead upstream outlast the callers' own timeouts;
		// serving degraded at the deadline keeps the whole tree alive.
		if p := sc.fallbackFor(service); !p.IsZero() {
			c.fbTimer.Cancel() // no-op on a fresh call; meshvet: cancel before re-arm
			c.fbTimer = m.sched.After(p.after(), func() {
				if !c.done {
					c.finish(nil, ErrTimeout)
				}
			})
		}

		start := func() {
			c.launch()
			if h := sc.hedgePolicyFor(service); h.Delay > 0 {
				m.sched.After(h.Delay, func() {
					if !c.done && !c.hedged {
						c.hedged = true
						c.launch()
					}
				})
			}
		}
		// Fault injection (client-side, once per logical call).
		if f := sc.faultPolicyFor(service); !f.IsZero() {
			if f.AbortProb > 0 && m.rng.Float64() < f.AbortProb {
				c.finish(httpsim.NewResponse(f.AbortStatus), nil)
				return
			}
			if f.DelayProb > 0 && m.rng.Float64() < f.DelayProb {
				m.sched.After(f.Delay, start)
				return
			}
		}
		start()
	})
}

// endpointsFor resolves the service through this sidecar's discovery
// view (live cluster state, or the pushed snapshot with distribution
// enabled) and applies routing rules.
func (sc *Sidecar) endpointsFor(service string, req *httpsim.Request) ([]*cluster.Pod, error) {
	all, ok := sc.discoverEndpoints(service)
	if !ok {
		return nil, ErrNoService
	}
	subset := SubsetRef{}
	if rule := sc.routeRuleFor(service); rule != nil {
		subset = rule.DefaultSubset
		matched := false
		for _, hr := range rule.HeaderRoutes {
			if req.Headers.Get(hr.Header) == hr.Value {
				subset = hr.Subset
				matched = true
				break
			}
		}
		if !matched && len(rule.Weights) > 0 {
			subset = sc.pickWeighted(rule.Weights)
		}
	}
	eps := all
	if !subset.IsZero() {
		eps = nil
		for _, p := range all {
			if p.Label(subset.Key) == subset.Value {
				eps = append(eps, p)
			}
		}
	}
	if len(eps) == 0 {
		return nil, ErrNoEndpoints
	}
	return eps, nil
}

func (c *call) launch() {
	sc := c.sc
	m := sc.mesh
	c.attempts++

	eps, err := sc.endpointsFor(c.service, c.req)
	if err == ErrNoEndpoints {
		// The failover ladder may still reach gateway-summarized remote
		// regions; pickTarget reports ErrNoEndpoints itself otherwise.
		eps, err = nil, nil
	}
	if err != nil {
		c.finish(nil, err)
		return
	}
	// The ladder picks per attempt: a retry after a failed cross-region
	// attempt may land on a different tier (or region) than the first.
	ep, via := sc.pickTarget(c.service, c.req, eps)
	if via != "" {
		// Cross-region: the attempt dials the local egress gateway, which
		// forwards to the target region's ingress gateway over the WAN.
		gwEps, gwErr := sc.endpointsFor(EWGatewayService(sc.pod.Region()), c.req)
		if gwErr != nil {
			c.finish(nil, gwErr)
			return
		}
		ep = sc.pickEndpoint(EWGatewayService(sc.pod.Region()), gwEps)
	}
	if ep == nil {
		c.finish(nil, ErrNoEndpoints)
		return
	}
	// A cross-region attempt accounts against the WAN path to its target
	// region, not against the local egress pod every region shares: a
	// partitioned region's failures must trip that region's path breaker
	// only, or they would black-hole the healthy regions behind the same
	// gateway. The path state is what lets the data plane learn WAN-side
	// sickness the frozen control-plane summaries cannot show.
	st := sc.epState(ep.Addr())
	if via != "" {
		st = sc.regionPath(via)
	}
	st.inflight++
	// If the breaker is half-open this attempt is the single trial
	// request whose outcome decides close vs re-open.
	trial := false
	if st.phase == breakerHalfOpen && !st.trial {
		st.trial = true
		trial = true
	}

	class := DefaultConnClass
	if sc.connClassifier != nil {
		class = sc.connClassifier(c.req)
	}
	client := sc.clientFor(ep, class)

	attemptStart := m.sched.Now()
	settled := false
	var timer simnet.Timer
	settle := func(resp *httpsim.Response, err error) {
		if settled {
			return
		}
		settled = true
		timer.Cancel()
		st.inflight--
		lat := m.sched.Now() - attemptStart
		failed := err != nil || resp.Status >= 500
		st.observe(lat, failed, trial, c.breaker, m.sched.Now())
		if c.done {
			return
		}
		if failed && c.shouldRetry(resp, err) {
			if c.retryPending {
				return // a concurrent attempt already charged and scheduled this retry
			}
			if !sc.spendRetryToken(c.service, c.retry) {
				m.metrics.Counter(MetricRetryBudgetExhausted,
					metrics.Labels{"service": c.service}).Inc()
				c.finish(resp, err)
				return
			}
			c.retryPending = true
			c.scheduleRetry()
			return
		}
		c.finish(resp, err)
	}
	if c.retry.PerTryTimeout > 0 {
		timer = m.sched.After(c.retry.PerTryTimeout, func() {
			// A per-try timeout condemns the pooled connection for
			// future attempts — evict it so the next attempt re-dials
			// instead of waiting out retransmission backoff to a
			// possibly-partitioned peer — but does NOT abort it:
			// requests pipelined behind this one may be merely queued
			// behind congestion, and killing the connection would turn
			// one slow request into a batch of failures. Against a
			// truly dead peer each pipelined request times out and
			// retries on its own per-try timer.
			sc.evictPool(poolKey{addr: ep.Addr(), class: class.Name}, client)
			settle(nil, ErrTimeout)
		})
	}
	out := c.req.Clone()
	if via != "" {
		out.Headers.Set(HeaderEWService, c.service)
		out.Headers.Set(HeaderEWRegion, via)
	}
	client.Do(out, func(resp *httpsim.Response, err error) { settle(resp, err) })
}

func (c *call) shouldRetry(resp *httpsim.Response, err error) bool {
	if c.attempts > c.retry.MaxRetries {
		return false
	}
	if err != nil {
		return true
	}
	return c.retry.RetryOn5xx && resp.Status >= 500
}

// scheduleRetry launches the next attempt, after the policy's
// full-jitter exponential backoff when one is configured (retries are
// immediate otherwise, the legacy behaviour).
func (c *call) scheduleRetry() {
	m := c.sc.mesh
	m.metrics.Counter(MetricRetriesTotal,
		metrics.Labels{"service": c.service}).Inc()
	d := c.retry.backoffFor(c.attempts)
	if d <= 0 {
		c.retryPending = false
		c.launch()
		return
	}
	wait := time.Duration(m.rng.Int63n(int64(d))) + 1 // U(0, d]
	m.sched.After(wait, func() {
		c.retryPending = false
		if !c.done {
			c.launch()
		}
	})
}

func (c *call) finish(resp *httpsim.Response, err error) {
	if c.done {
		return
	}
	c.done = true
	c.fbTimer.Cancel()
	m := c.sc.mesh
	resp, err = c.maybeFallback(resp, err)
	code := "error"
	if err == nil {
		code = fmt.Sprintf("%dxx", resp.Status/100)
	}
	m.metrics.Counter(MetricRequestsTotal,
		metrics.Labels{"service": c.service, "direction": "outbound", "code": code}).Inc()
	m.metrics.ObserveDuration(MetricRequestDuration,
		metrics.Labels{"service": c.service, "direction": "outbound"},
		m.sched.Now()-c.start)
	if c.span != nil {
		c.span.End = m.sched.Now()
		c.span.SetTag("status", code)
		if c.attempts > 1 {
			c.span.SetTag("retries", fmt.Sprint(c.attempts-1))
		}
		m.tracer.Record(c.span)
	}
	c.cb(resp, err)
}

// clientFor returns (creating/replacing as needed) the pooled client
// for an endpoint and connection class.
func (sc *Sidecar) clientFor(ep *cluster.Pod, class ConnClass) *httpsim.Client {
	return sc.clientForAddr(ep.Addr(), class)
}

// PoolSize returns the number of live pooled connections (tests).
func (sc *Sidecar) PoolSize() int { return len(sc.pools) }

// ForEachPool visits every pooled upstream connection with its class
// name and destination, in (addr, class) order — introspection for
// tests and the meshbench reporting CLI.
func (sc *Sidecar) ForEachPool(fn func(class string, dst simnet.Addr, conn *transport.Conn)) {
	keys := make([]poolKey, 0, len(sc.pools))
	for key := range sc.pools {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].addr != keys[j].addr {
			return keys[i].addr < keys[j].addr
		}
		return keys[i].class < keys[j].class
	})
	for _, key := range keys {
		fn(key.class, key.addr, sc.pools[key].Conn())
	}
}

func parseSpanID(s string) uint64 {
	var id uint64
	fmt.Sscanf(s, "%x", &id)
	return id
}

func formatSpanID(id uint64) string { return fmt.Sprintf("%x", id) }
